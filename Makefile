GO ?= go

.PHONY: build test short race vet fmt-check bench-smoke bench-gate bench-baseline profile resize-demo trace-demo trace-smoke drain-churn autoscale-churn overload-demo ann-demo topo-demo scenario-demo ci

# Gate benchmarks: TailFanout (hedging), LeafBatching (cross-request
# coalescing), HotPathAllocs (per-call allocation budget), the leaf
# compute kernels — LeafScan (SoA norm-trick scan), TopK (streaming
# selection), IntersectBitset (dense-range posting-list intersection),
# IVFScan/PQScan (sub-linear ANN leaf path; setup asserts recall@10 and
# the PQ compression ratio before timing), HNSWScan (graph ANN leaf path;
# setup asserts recall@10 ≥ 0.95, a ≥25x speedup over the brute-force
# scan, and beating the IVF gate point) — and OverloadGoodput (completed
# QPS and shed fraction at 2x the measured knee with admission control
# armed; goodput-qps gates higher-is-better).
# -count=5 gives benchgate a mean per metric; -benchmem adds B/op and
# allocs/op so memory regressions gate alongside latency.
BENCH_GATE_CMD = $(GO) test -run=NONE -bench='TailFanout|LeafBatching|HotPathAllocs|LeafScan|TopK|IntersectBitset|IVFScan|PQScan|HNSWScan|OverloadGoodput' -benchtime=2s -count=5 -benchmem .

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

short:
	$(GO) test -short -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench-smoke: build
	$(GO) run ./cmd/musuite-bench -experiment tableII
	$(GO) test -run xxx -bench 'BenchmarkTailFanout' -benchtime 200x .

# Run the gate benchmarks and fail on >15% mean regression against the
# committed baseline.  The raw output goes to a file first so a non-zero
# test exit is not hidden behind a pipe.
bench-gate: build
	$(BENCH_GATE_CMD) > BENCH_ci.txt
	cat BENCH_ci.txt
	$(GO) run ./cmd/benchgate -in BENCH_ci.txt -out BENCH_ci.json -baseline BENCH_baseline.json

# Refresh the committed baseline (run on a quiet machine, then commit).
bench-baseline: build
	$(BENCH_GATE_CMD) > BENCH_baseline.txt
	cat BENCH_baseline.txt
	$(GO) run ./cmd/benchgate -in BENCH_baseline.txt -out BENCH_baseline.json

# Collect cpu/heap/mutex profiles from the gate benchmarks for hot-path
# work.  Inspect with e.g.:  go tool pprof musuite.test profile/cpu.out
profile: build
	mkdir -p profile
	$(GO) test -run=NONE -bench='TailFanout|LeafBatching|HotPathAllocs|LeafScan|TopK|IntersectBitset|IVFScan|PQScan|HNSWScan' -benchtime=2s -benchmem \
		-cpuprofile profile/cpu.out -memprofile profile/mem.out -mutexprofile profile/mutex.out .

# Watch a live resize: Router serves a steady load while a leaf group is
# added and then gracefully drained mid-window.  Jump routing keeps key
# placements stable through both transitions; the output's acceptance line
# confirms zero failed requests.
resize-demo: build
	$(GO) run ./cmd/musuite-bench -experiment resize -routing jump -window 2s -load 500

# Watch distributed tracing end to end: record every HDSearch request with
# replicated leaves and forced hedging (so abandoned-loser spans appear),
# then print the critical-path summary and the first two span trees.
trace-demo: build
	$(GO) run ./cmd/musuite-bench -services HDSearch -trace-sample 1 \
		-replicas 2 -hedge-delay 100us -trace-out trace-demo.jsonl
	$(GO) run ./cmd/traceview -dump 2 trace-demo.jsonl

# The full-stack multi-process tracing smoke (the e2e-trace-smoke CI job).
trace-smoke:
	./scripts/trace_smoke.sh

# Long-soak topology churn under the race detector (the nightly CI job).
# Override the cycle count: make drain-churn CYCLES=500
CYCLES ?= 100
drain-churn:
	MUSUITE_DRAIN_CHURN_CYCLES=$(CYCLES) $(GO) test -race -count=1 -timeout 20m \
		-run TestDrainChurnStress ./internal/core

# Autoscaler scale-up/drain churn plus the AIMD limiter property tests
# under the race detector (the nightly autoscale-churn CI job).
# Override the cycle count: make autoscale-churn CYCLES=500
autoscale-churn:
	MUSUITE_AUTOSCALE_CYCLES=$(CYCLES) $(GO) test -race -count=1 -timeout 20m \
		-run 'TestAutoscaleChurnStress|TestAIMD' ./internal/autoscale ./internal/core

# The overload saturation ramp (the overload-goodput CI job): admission
# control + autoscaler armed, driven open-loop to 3x the measured knee.
overload-demo: build
	$(GO) run ./cmd/musuite-bench -experiment overload -window 1s

# Sweep every HDSearch candidate index — LSH / kd-tree / k-means, the
# IVF family over its nprobe (probe width) and rerank (exact re-scoring
# depth) knobs, and hnsw over its efSearch beam ladder {16, 64, 128} —
# and print recall@1/@10 vs p50/p99 per configuration, gated at a 0.90
# recall@10 floor across all registered kinds (the nightly ann-recall CI
# job).
ann-demo: build
	$(GO) run ./cmd/musuite-bench -experiment indexcmp -window 1s -recall-floor 0.90

# Deploy both exemplar topology specs — nested fan-out DAGs composed
# entirely from YAML over the mid-tier framework — and drive each through
# its load shape with the timed degradation scenario armed (the topo-smoke
# CI job).  Non-zero exit on any untyped error.
topo-demo: build
	$(GO) run ./cmd/topo -topo examples/social-network.yaml
	$(GO) run ./cmd/topo -topo examples/hotel-reservation.yaml

# The cascading-failure scenario gate (the scenario CI job): a store
# slowdown mid-flash-crowd must surface only as typed admission sheds, and
# goodput must recover to ≥85% of the pre-fault baseline after the fault
# clears.
scenario-demo: build
	$(GO) run ./cmd/musuite-bench -experiment scenario -topo examples/cascade.yaml

ci: fmt-check vet build race
