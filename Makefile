GO ?= go

.PHONY: build test short race vet fmt-check bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

short:
	$(GO) test -short -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench-smoke: build
	$(GO) run ./cmd/musuite-bench -experiment tableII
	$(GO) test -run xxx -bench 'BenchmarkTailFanout' -benchtime 200x .

ci: fmt-check vet build race
