package musuite_test

import (
	"testing"
	"time"

	"musuite"
)

// TestFacadeHDSearch drives the whole public API surface for one service:
// corpus generation, cluster startup, client dialing, synchronous and
// asynchronous queries, accuracy scoring, and the open-loop load generator.
func TestFacadeHDSearch(t *testing.T) {
	corpus := musuite.NewImageCorpus(musuite.ImageCorpusConfig{
		N: 800, Dim: 24, Clusters: 8, Seed: 1,
	})
	cluster, err := musuite.StartHDSearchCluster(musuite.HDSearchClusterConfig{
		Corpus: corpus,
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.Index.Entries != 800 {
		t.Fatalf("index entries=%d", cluster.Index.Entries)
	}

	client, err := musuite.DialHDSearch(cluster.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	query := corpus.Queries(1, 2)[0]
	neighbors, err := client.Search(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(neighbors) == 0 {
		t.Fatal("no neighbors")
	}
	if acc := cluster.Accuracy(query, neighbors); acc < 0.5 {
		t.Fatalf("accuracy=%v", acc)
	}

	// Async path + open-loop generator through the facade.
	var n int
	issue := func(done chan *musuite.RPCCall) *musuite.RPCCall {
		q := corpus.Queries(1, int64(n))[0]
		n++
		return client.Go(q, 3, done)
	}
	res := musuite.RunOpenLoop(issue, musuite.OpenLoopConfig{
		QPS: 100, Duration: 300 * time.Millisecond, Seed: 3,
	})
	if res.Completed == 0 || res.Errors > 0 {
		t.Fatalf("open loop: %+v", res)
	}
	if res.Latency.Median <= 0 {
		t.Fatal("no latency recorded")
	}
}

// TestFacadeRouter covers the Router surface including the KV trace types.
func TestFacadeRouter(t *testing.T) {
	cluster, err := musuite.StartRouterCluster(musuite.RouterClusterConfig{
		Leaves: 3, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := musuite.DialRouter(cluster.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	trace := musuite.NewKVTrace(musuite.KVTraceConfig{Keys: 50, Seed: 4})
	for _, op := range trace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			t.Fatal(err)
		}
	}
	for _, op := range trace.Ops(100) {
		switch op.Kind {
		case musuite.KVGet:
			if _, found, err := client.Get(op.Key); err != nil || !found {
				t.Fatalf("get %q: found=%v err=%v", op.Key, found, err)
			}
		case musuite.KVSet:
			if err := client.Set(op.Key, op.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestFacadeExperiments runs a miniature Fig. 9 through the facade.
func TestFacadeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := musuite.SmallScale()
	s.Docs, s.Vocab = 300, 900
	s.SaturationWindow = 200 * time.Millisecond
	s.MaxConcurrency = 4
	rows, err := musuite.Fig9(s, []string{"SetAlgebra"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Throughput <= 0 {
		t.Fatalf("rows=%+v", rows)
	}
}

// TestFacadeProbe exercises the instrumentation path via the facade types.
func TestFacadeProbe(t *testing.T) {
	probe := musuite.NewProbe()
	corpus := musuite.NewDocCorpus(musuite.DocCorpusConfig{Docs: 200, VocabSize: 600, Seed: 5})
	cluster, err := musuite.StartSetAlgebraCluster(musuite.SetAlgebraClusterConfig{
		Corpus:  corpus,
		Shards:  2,
		MidTier: musuite.MidTierOptions{Workers: 2, Probe: probe},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := musuite.DialSetAlgebra(cluster.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, q := range corpus.Queries(20, 4, 6) {
		if _, err := client.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	if probe.ContextSwitches() == 0 {
		t.Fatal("probe saw no activity")
	}
}
