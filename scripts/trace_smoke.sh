#!/usr/bin/env bash
# trace_smoke.sh — full-stack distributed-tracing smoke.
#
# For each of the four μSuite services this script boots a real multi-process
# deployment (leaf processes + mid-tier, each exporting its own spans), drives
# it with loadgen at 1-in-1 sampling, shuts the tiers down to flush their span
# files, and then asserts — via traceview -check — that every exported trace
# reassembles into ONE connected span tree whose critical-path segments sum to
# the recorded end-to-end latency.  HDSearch additionally runs with replicated
# leaves and an aggressive hedge delay so abandoned hedge losers must appear
# as annotated spans, and its recorded trace file is replayed back through
# loadgen (zero failed requests required).
#
# Environment knobs (all optional):
#   TRACE_SMOKE_DIR       output directory      (default: a fresh temp dir;
#                         CI pins it to trace-smoke/ for artifact upload)
#   TRACE_SMOKE_DURATION  loadgen window per service (default: 3s)
#   TRACE_SMOKE_QPS       offered load per service   (default: 150)
#   TRACE_SMOKE_MIN       minimum connected traces   (default: 100)
set -euo pipefail

cd "$(dirname "$0")/.."

# Default into a temp dir so ad-hoc runs never strand span files and build
# output in the repo root.
OUT=${TRACE_SMOKE_DIR:-$(mktemp -d "${TMPDIR:-/tmp}/trace-smoke.XXXXXX")}
echo "trace_smoke: writing to $OUT"
DURATION=${TRACE_SMOKE_DURATION:-3s}
QPS=${TRACE_SMOKE_QPS:-150}
MIN_TRACES=${TRACE_SMOKE_MIN:-100}
BIN=$OUT/bin

rm -rf "$OUT"
mkdir -p "$BIN"

echo "== building =="
go build -o "$BIN" ./cmd/hdsearch ./cmd/router ./cmd/setalgebra ./cmd/recommend \
	./cmd/loadgen ./cmd/traceview ./cmd/topo

PIDS=()
cleanup() {
	for pid in "${PIDS[@]:-}"; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
}
trap cleanup EXIT

# wait_port host:port — poll until something accepts connections.
wait_port() {
	local hostport=$1 host=${1%:*} port=${1##*:}
	for _ in $(seq 1 100); do
		if (exec 3<>"/dev/tcp/$host/$port") 2>/dev/null; then
			exec 3>&- 3<&-
			return 0
		fi
		sleep 0.1
	done
	echo "trace_smoke: $hostport never came up" >&2
	return 1
}

# stop_stack — SIGTERM every booted tier and wait for the span files to flush.
stop_stack() {
	for pid in "${PIDS[@]:-}"; do
		kill -TERM "$pid" 2>/dev/null || true
	done
	for pid in "${PIDS[@]:-}"; do
		wait "$pid" 2>/dev/null || true
	done
	PIDS=()
}

# check_traces service [extra traceview flags...] — merge the per-process
# span files and enforce the smoke invariants.
check_traces() {
	local svc=$1
	shift
	echo "-- $svc: validating merged span files --"
	"$BIN/traceview" -check -tolerance 10us -min-traces "$MIN_TRACES" "$@" \
		"$OUT/$svc"-*.jsonl
}

run_loadgen() {
	local svc=$1 target=$2
	"$BIN/loadgen" -service "$svc" -target "$target" -mode open \
		-qps "$QPS" -duration "$DURATION" \
		-trace-sample 1 -trace-out "$OUT/$svc-loadgen.jsonl" \
		| tee "$OUT/$svc-loadgen.log"
}

# ---- HDSearch: 1 shard × 2 replicas, forced hedging → abandoned losers ----
echo "== hdsearch (replicated leaves, forced hedging) =="
"$BIN/hdsearch" -role leaf -addr 127.0.0.1:7101 -shard 0 -shards 1 \
	-trace-out "$OUT/hdsearch-leaf0.jsonl" &
PIDS+=($!)
"$BIN/hdsearch" -role leaf -addr 127.0.0.1:7102 -shard 0 -shards 1 \
	-trace-out "$OUT/hdsearch-leaf1.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7101
wait_port 127.0.0.1:7102
"$BIN/hdsearch" -role midtier -addr 127.0.0.1:7100 \
	-leaves 127.0.0.1:7101,127.0.0.1:7102 -shards 1 -replicas 2 \
	-hedge-delay 100us -retry-budget 2 \
	-trace-out "$OUT/hdsearch-mid.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7100

run_loadgen hdsearch 127.0.0.1:7100

echo "-- hdsearch: replaying the recorded arrival process at 2x --"
"$BIN/loadgen" -service hdsearch -target 127.0.0.1:7100 -mode open \
	-trace-replay "$OUT/hdsearch-loadgen.jsonl" -replay-speed 2 \
	| tee "$OUT/hdsearch-replay.log"
grep -q ' errors=0 ' "$OUT/hdsearch-replay.log" || {
	echo "trace_smoke: replay had failed requests" >&2
	exit 1
}

stop_stack
check_traces hdsearch -require-note hedge,abandoned

# ---- Router: 2-replica store ----
echo "== router =="
"$BIN/router" -role leaf -addr 127.0.0.1:7201 \
	-trace-out "$OUT/router-leaf0.jsonl" &
PIDS+=($!)
"$BIN/router" -role leaf -addr 127.0.0.1:7202 \
	-trace-out "$OUT/router-leaf1.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7201
wait_port 127.0.0.1:7202
"$BIN/router" -role midtier -addr 127.0.0.1:7200 \
	-leaves 127.0.0.1:7201,127.0.0.1:7202 -replicas 2 \
	-trace-out "$OUT/router-mid.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7200

run_loadgen router 127.0.0.1:7200
stop_stack
check_traces router

# ---- Set Algebra: 2 shards ----
echo "== setalgebra =="
"$BIN/setalgebra" -role leaf -addr 127.0.0.1:7301 -shard 0 -shards 2 \
	-trace-out "$OUT/setalgebra-leaf0.jsonl" &
PIDS+=($!)
"$BIN/setalgebra" -role leaf -addr 127.0.0.1:7302 -shard 1 -shards 2 \
	-trace-out "$OUT/setalgebra-leaf1.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7301
wait_port 127.0.0.1:7302
"$BIN/setalgebra" -role midtier -addr 127.0.0.1:7300 \
	-leaves 127.0.0.1:7301,127.0.0.1:7302 -shards 2 \
	-trace-out "$OUT/setalgebra-mid.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7300

run_loadgen setalgebra 127.0.0.1:7300
stop_stack
check_traces setalgebra

# ---- Recommend: 2 shards ----
echo "== recommend =="
"$BIN/recommend" -role leaf -addr 127.0.0.1:7401 -shard 0 -shards 2 \
	-trace-out "$OUT/recommend-leaf0.jsonl" &
PIDS+=($!)
"$BIN/recommend" -role leaf -addr 127.0.0.1:7402 -shard 1 -shards 2 \
	-trace-out "$OUT/recommend-leaf1.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7401
wait_port 127.0.0.1:7402
"$BIN/recommend" -role midtier -addr 127.0.0.1:7400 \
	-leaves 127.0.0.1:7401,127.0.0.1:7402 -shards 2 \
	-trace-out "$OUT/recommend-mid.jsonl" &
PIDS+=($!)
wait_port 127.0.0.1:7400

run_loadgen recommend 127.0.0.1:7400
stop_stack
check_traces recommend

# ---- Spec-driven topology: span parenting across a 4-deep DAG ----
# The social-network exemplar nests mid-tiers four services deep
# (frontend → compose-post → social-graph → graph-store); every sampled
# request must still reassemble into ONE connected tree whose critical
# path sums to the end-to-end latency, exactly like the two-level
# handwritten services above.
echo "== topo (4-deep spec-driven DAG) =="
"$BIN/topo" -topo examples/social-network.yaml -scenario=false \
	-topo-duration "$DURATION" -topo-qps "$QPS" \
	-trace-sample 1 -trace-out "$OUT/topo-social-all.jsonl" \
	| tee "$OUT/topo-social.log"
check_traces topo-social

echo "== trace smoke ok =="
