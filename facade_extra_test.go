package musuite_test

import (
	"testing"
	"time"

	"musuite"
)

// fakeIssue completes every request after d, with no network.
func fakeIssue(d time.Duration) musuite.IssueFunc {
	return func(done chan *musuite.RPCCall) *musuite.RPCCall {
		call := &musuite.RPCCall{Done: done}
		go func() {
			if d > 0 {
				time.Sleep(d)
			}
			call.Received = time.Now()
			done <- call
		}()
		return call
	}
}

func TestFacadeScales(t *testing.T) {
	small, paper := musuite.SmallScale(), musuite.PaperScale()
	if small.HDCorpus <= 0 || small.Shards <= 0 || len(small.Loads) == 0 {
		t.Fatalf("small scale incomplete: %+v", small)
	}
	if paper.HDCorpus <= small.HDCorpus || paper.Trials < 5 {
		t.Fatalf("paper scale not publication-sized: %+v", paper)
	}
}

func TestFacadeLoadgenWrappers(t *testing.T) {
	closed := musuite.RunClosedLoop(fakeIssue(time.Millisecond), musuite.ClosedLoopConfig{
		Concurrency: 2, Duration: 200 * time.Millisecond,
	})
	if closed.Completed == 0 {
		t.Fatal("closed loop completed nothing")
	}
	sat := musuite.FindSaturation(fakeIssue(2*time.Millisecond), musuite.SaturationConfig{
		Window: 150 * time.Millisecond, MaxConcurrency: 4,
	})
	if sat.Throughput <= 0 {
		t.Fatal("no saturation throughput")
	}
	h := musuite.NewLatencyHistogram()
	h.Record(time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("histogram wrapper broken")
	}
}

func TestFacadeSchedules(t *testing.T) {
	fc := musuite.FlashCrowd(100, 5, time.Second, 200*time.Millisecond)
	if len(fc) != 3 || fc[1].QPS != 500 {
		t.Fatalf("flash crowd: %+v", fc)
	}
	di := musuite.Diurnal(10, 100, 3, 7*time.Second)
	if len(di) != 7 || di[3].QPS != 100 {
		t.Fatalf("diurnal: %+v", di)
	}
	res := musuite.RunSchedule(fakeIssue(0), []musuite.LoadPhase{
		{Name: "only", QPS: 300, Duration: 200 * time.Millisecond},
	}, 1, 5*time.Second)
	if len(res) != 1 || res[0].Completed == 0 {
		t.Fatalf("schedule: %+v", res)
	}
}

func TestFacadeTopology(t *testing.T) {
	spec, err := musuite.ParseTopology([]byte(`
topology: facade
entry: fe
services:
  fe:
    kind: synthetic
    ops:
      q:
        calls:
          - {edge: down, method: do}
    edges:
      down: {to: leaf, timeout: 100ms}
  leaf:
    kind: compute
    work: 20us
load:
  qps: 200
  duration: 300ms
scenario:
  - {at: 0ms, for: 100ms, target: leaf, slow: 1ms}
`))
	if err != nil {
		t.Fatal(err)
	}
	kinds := musuite.TopologyKinds()
	if len(kinds) != 4 {
		t.Fatalf("registered kinds: %v", kinds)
	}
	res, err := musuite.RunTopology(spec, musuite.TopoRunOptions{
		DrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, completed, _, _, _ := res.Totals(); completed == 0 {
		t.Fatalf("run completed nothing: %+v", res)
	}
	if len(res.Events) != 2 {
		t.Fatalf("scenario log: %+v", res.Events)
	}
	if v := musuite.ScenarioViolations(res, 0); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestFacadeQueryStats(t *testing.T) {
	corpus := musuite.NewDocCorpus(musuite.DocCorpusConfig{Docs: 150, VocabSize: 500, Seed: 31})
	cluster, err := musuite.StartSetAlgebraCluster(musuite.SetAlgebraClusterConfig{
		Corpus: corpus, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	client, err := musuite.DialSetAlgebra(cluster.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, q := range corpus.Queries(5, 3, 32) {
		if _, err := client.Search(q); err != nil {
			t.Fatal(err)
		}
	}
	// A raw connection queries the reserved stats method.
	raw, err := musuite.DialRPC(cluster.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	st, err := musuite.QueryStats(raw)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "midtier" || st.Served < 5 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestFacadeCharacterizeTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := musuite.SmallScale()
	s.RouterKeys = 200
	s.Loads = []float64{60}
	s.Window = 300 * time.Millisecond
	points, err := musuite.Characterize(s, []string{"Router"}, musuite.FrameworkMode{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].Open.Completed == 0 {
		t.Fatalf("points: %+v", points)
	}
}

func TestFacadeFlashCrowdExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := musuite.SmallScale()
	s.RouterKeys = 200
	s.Window = 200 * time.Millisecond
	res, err := musuite.FlashCrowdExperiment(s, "Router", 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("phases: %d", len(res))
	}
}

func TestFacadeIndexKinds(t *testing.T) {
	corpus := musuite.NewImageCorpus(musuite.ImageCorpusConfig{N: 400, Dim: 16, Clusters: 4, Seed: 33})
	for _, kind := range []musuite.HDSearchIndexKind{
		musuite.HDSearchIndexLSH, musuite.HDSearchIndexKDTree, musuite.HDSearchIndexKMeans,
	} {
		cluster, err := musuite.StartHDSearchCluster(musuite.HDSearchClusterConfig{
			Corpus: corpus, Shards: 2, Kind: kind,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		client, err := musuite.DialHDSearch(cluster.Addr, nil)
		if err != nil {
			cluster.Close()
			t.Fatal(err)
		}
		ns, err := client.Search(corpus.Queries(1, 34)[0], 3)
		client.Close()
		cluster.Close()
		if err != nil || len(ns) == 0 {
			t.Fatalf("%s: %v (%d results)", kind, err, len(ns))
		}
	}
}
