// Package musuite is a from-scratch Go implementation of μSuite, the
// benchmark suite for microservices of Sriraman & Wenisch (IISWC 2018),
// together with the OS/network characterization harness the paper builds on
// it.
//
// The suite comprises four OLDI services, each a three-tier microservice
// deployment (front-end client → mid-tier → leaves) over this module's own
// gRPC-like RPC substrate:
//
//   - HDSearch — content-based image similarity search (LSH mid-tier,
//     distance-kernel leaves)
//   - Router — replication-based protocol routing for memcached-style
//     key-value stores (SpookyHash routing, replicated leaves)
//   - SetAlgebra — set intersections on posting lists for document search
//   - Recommend — user-based collaborative-filtering rating prediction
//     (NMF + allknn leaves)
//
// Quick start (in-process deployment):
//
//	corpus := musuite.NewImageCorpus(musuite.ImageCorpusConfig{N: 10000, Dim: 128, Seed: 1})
//	cluster, err := musuite.StartHDSearchCluster(musuite.HDSearchClusterConfig{Corpus: corpus})
//	client, err := musuite.DialHDSearch(cluster.Addr, nil)
//	neighbors, err := client.Search(corpus.Queries(1, 2)[0], 5)
//
// The experiment harness regenerates every figure of the paper's evaluation;
// see the bench aliases below, cmd/musuite-bench, and EXPERIMENTS.md.
package musuite

import (
	"time"

	"musuite/internal/ann"
	"musuite/internal/autoscale"
	"musuite/internal/bench"
	"musuite/internal/cluster"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/services/recommend"
	"musuite/internal/services/router"
	"musuite/internal/services/setalgebra"
	"musuite/internal/stats"
	"musuite/internal/telemetry"
	"musuite/internal/topo"
	"musuite/internal/trace"
	"musuite/internal/vec"
)

// --- framework (paper §IV) ---

// Framework types: the mid-tier microservice framework with blocking
// pollers, dispatch worker pools, async fan-out, and response threads.
type (
	// MidTierOptions configures a mid-tier tier (workers, response
	// threads, dispatch/wait modes, telemetry probe).
	MidTierOptions = core.Options
	// LeafOptions configures a leaf tier.
	LeafOptions = core.LeafOptions
	// DispatchMode selects dispatched or in-line request execution.
	DispatchMode = core.DispatchMode
	// WaitMode selects blocking or polling idle threads.
	WaitMode = core.WaitMode
	// TailPolicy configures tail-tolerant fan-out: hedged leaf requests,
	// retry budgets, and per-call retries across shard replicas.
	TailPolicy = core.TailPolicy
	// BatchPolicy configures adaptive cross-request coalescing of leaf
	// RPCs at the mid-tier.
	BatchPolicy = core.BatchPolicy
	// Probe is the telemetry sink reproducing the paper's eBPF/perf
	// measurements in-process.
	Probe = telemetry.Probe
	// Syscall and Overhead enumerate the probe's proxy counters and
	// OS-overhead latency classes (paper Figs. 11–18).
	Syscall  = telemetry.Syscall
	Overhead = telemetry.Overhead
	// TelemetrySnapshot is a point-in-time copy of probe counters.
	TelemetrySnapshot = telemetry.Snapshot
	// Tracer samples requests for per-stage latency attribution; Trace
	// is one sampled request.
	Tracer = trace.Tracer
	Trace  = trace.Trace
	// KernelConfig tunes a leaf compute engine (scan parallelism, the
	// reference-scalar switch, an optional probe for kernel counters).
	KernelConfig = kernel.Config
	// KernelEngine is the leaf compute engine: SoA vector stores,
	// norm-trick distance kernels, intra-request parallel scans, and
	// streaming top-k selection.  Hand one to LeafOptions.Kernel.
	KernelEngine = kernel.Engine
)

// Framework mode constants.
const (
	Dispatched = core.Dispatched
	Inline     = core.Inline
	// DispatchAuto switches between in-line and dispatched execution by
	// observed load — the §VII dynamic-adaptation proposal.
	DispatchAuto = core.DispatchAuto
	WaitBlocking = core.WaitBlocking
	WaitPolling  = core.WaitPolling
	// WaitAdaptive is the spin-then-park hybrid of the paper's §VII
	// blocking-vs-polling proposal.
	WaitAdaptive = core.WaitAdaptive
)

// NewProbe creates a telemetry probe to attach to a mid-tier under study.
func NewProbe() *Probe { return telemetry.NewProbe() }

// NewKernel builds a leaf compute engine from cfg (zero value: tuned
// kernels, NumCPU scan parallelism).
func NewKernel(cfg KernelConfig) *KernelEngine { return kernel.New(cfg) }

// NewTracer creates a 1-in-every sampler retaining keep recent traces.
func NewTracer(every, keep int) *Tracer { return trace.NewTracer(every, keep) }

// Syscalls lists the tracked syscall proxy classes in display order.
func Syscalls() []Syscall { return telemetry.Syscalls() }

// Overheads lists the OS-overhead latency classes in display order.
func Overheads() []Overhead { return telemetry.Overheads() }

// --- live cluster topology ---

// Live-topology types: the epoch-versioned leaf topology every mid-tier
// serves from, its routing strategies, and the runtime admin surface.
type (
	// ClusterTopology owns a mid-tier's leaf groups and the add/drain/
	// remove operations that resize it under load (MidTier.Topology()).
	ClusterTopology = cluster.Topology
	// ClusterView is an operator-facing description of the topology.
	ClusterView = cluster.View
	// ClusterRouter maps key hashes onto shards; ModuloRouting and
	// JumpRouting are the shipped strategies.
	ClusterRouter = cluster.Router
	// TopologyAdmin is the runtime admin listener a service binary exposes
	// with -admin; TopologyAdminClient is the operator's typed handle.
	TopologyAdmin       = cluster.AdminServer
	TopologyAdminClient = cluster.AdminClient
)

// The shipped routing strategies.
var (
	// ModuloRouting is the classic hash-mod-N placement (the default).
	ModuloRouting ClusterRouter = cluster.Modulo{}
	// JumpRouting is jump consistent hashing: only ~1/(n+1) of key
	// placements move when the shard count changes.
	JumpRouting ClusterRouter = cluster.Jump{}
)

// ParseRouting resolves a -routing flag value ("modulo", "jump") to a
// strategy.
func ParseRouting(name string) (ClusterRouter, error) { return cluster.ParseRouting(name) }

// ServeTopologyAdmin exposes a mid-tier's topology on its own admin
// listener (":0" picks a port), returning the server and bound address.
func ServeTopologyAdmin(t *ClusterTopology, addr string) (*TopologyAdmin, string, error) {
	return cluster.ServeAdmin(t, addr)
}

// DialTopologyAdmin connects an operator client to a -admin listener.
func DialTopologyAdmin(addr string) (*TopologyAdminClient, error) { return cluster.DialAdmin(addr) }

// --- datasets ---

// Dataset generators (deterministic synthetic stand-ins for the paper's
// corpora).
type (
	ImageCorpus        = dataset.ImageCorpus
	ImageCorpusConfig  = dataset.ImageCorpusConfig
	DocCorpus          = dataset.DocCorpus
	DocCorpusConfig    = dataset.DocCorpusConfig
	RatingCorpus       = dataset.RatingCorpus
	RatingCorpusConfig = dataset.RatingCorpusConfig
	KVTrace            = dataset.KVTrace
	KVTraceConfig      = dataset.KVTraceConfig
	KVOp               = dataset.KVOp
	Vector             = vec.Vector
)

// Key-value operation kinds of the Router trace.
const (
	KVGet = dataset.KVGet
	KVSet = dataset.KVSet
)

// NewImageCorpus generates the HDSearch corpus.
func NewImageCorpus(cfg ImageCorpusConfig) *ImageCorpus { return dataset.NewImageCorpus(cfg) }

// NewDocCorpus generates the Set Algebra corpus.
func NewDocCorpus(cfg DocCorpusConfig) *DocCorpus { return dataset.NewDocCorpus(cfg) }

// NewRatingCorpus generates the Recommend corpus.
func NewRatingCorpus(cfg RatingCorpusConfig) *RatingCorpus { return dataset.NewRatingCorpus(cfg) }

// NewKVTrace generates the Router workload trace.
func NewKVTrace(cfg KVTraceConfig) *KVTrace { return dataset.NewKVTrace(cfg) }

// --- services ---

// HDSearch deployment and client types.
type (
	HDSearchClusterConfig = hdsearch.ClusterConfig
	HDSearchCluster       = hdsearch.Cluster
	HDSearchClient        = hdsearch.Client
	HDSearchNeighbor      = hdsearch.Neighbor
	// HDSearchIndexKind selects the mid-tier candidate index.
	HDSearchIndexKind = hdsearch.IndexKind
	// HDSearchANNConfig tunes the leaf-resident ANN index builds for the
	// ivf* and hnsw kinds (ClusterConfig.ANN): coarse-quantizer cluster
	// count and nprobe/rerank defaults for IVF, the M/efConstruction/
	// efSearch graph knobs for HNSW, and training-sample/seed knobs.
	HDSearchANNConfig = ann.Config
)

// The available HDSearch candidate-index structures: the paper's "LSH
// tables, kd-trees, or k-means clusters" trio of mid-tier candidate
// generators, plus the leaf-resident sub-linear ANN indexes — plain IVF
// (exact float32 candidate scoring), IVF over an int8 scalar-quantized
// store, IVF over a product-quantized store (both with exact float32
// re-rank), and the HNSW proximity graph (exact scoring throughout).
const (
	HDSearchIndexLSH    = hdsearch.IndexLSH
	HDSearchIndexKDTree = hdsearch.IndexKDTree
	HDSearchIndexKMeans = hdsearch.IndexKMeans
	HDSearchIndexIVF    = hdsearch.IndexIVF
	HDSearchIndexIVFSQ  = hdsearch.IndexIVFSQ
	HDSearchIndexIVFPQ  = hdsearch.IndexIVFPQ
	HDSearchIndexHNSW   = hdsearch.IndexHNSW
)

// HDSearchIndexKinds lists every selectable candidate index in display
// order (the set the indexcmp experiment sweeps).
var HDSearchIndexKinds = hdsearch.IndexKinds

// StartHDSearchCluster launches an in-process HDSearch deployment.
func StartHDSearchCluster(cfg HDSearchClusterConfig) (*HDSearchCluster, error) {
	return hdsearch.StartCluster(cfg)
}

// DialHDSearch connects a front-end client to an HDSearch mid-tier.
func DialHDSearch(addr string, opts *RPCClientOptions) (*HDSearchClient, error) {
	return hdsearch.DialClient(addr, opts)
}

// Router deployment and client types.
type (
	RouterClusterConfig = router.ClusterConfig
	RouterCluster       = router.Cluster
	RouterClient        = router.Client
	// RouterPrefixRule pins a key-prefix namespace to a leaf pool
	// (McRouter-style prefix routing).
	RouterPrefixRule = router.PrefixRule
)

// StartRouterCluster launches an in-process Router deployment.
func StartRouterCluster(cfg RouterClusterConfig) (*RouterCluster, error) {
	return router.StartCluster(cfg)
}

// DialRouter connects a front-end client to a Router mid-tier.
func DialRouter(addr string, opts *RPCClientOptions) (*RouterClient, error) {
	return router.DialClient(addr, opts)
}

// SetAlgebra deployment and client types.
type (
	SetAlgebraClusterConfig = setalgebra.ClusterConfig
	SetAlgebraCluster       = setalgebra.Cluster
	SetAlgebraClient        = setalgebra.Client
)

// StartSetAlgebraCluster launches an in-process Set Algebra deployment.
func StartSetAlgebraCluster(cfg SetAlgebraClusterConfig) (*SetAlgebraCluster, error) {
	return setalgebra.StartCluster(cfg)
}

// DialSetAlgebra connects a front-end client to a Set Algebra mid-tier.
func DialSetAlgebra(addr string, opts *RPCClientOptions) (*SetAlgebraClient, error) {
	return setalgebra.DialClient(addr, opts)
}

// Recommend deployment and client types.
type (
	RecommendClusterConfig = recommend.ClusterConfig
	RecommendCluster       = recommend.Cluster
	RecommendClient        = recommend.Client
	// RecommendItemRating is one top-N recommendation result.
	RecommendItemRating = recommend.ItemRating
)

// StartRecommendCluster launches an in-process Recommend deployment.
func StartRecommendCluster(cfg RecommendClusterConfig) (*RecommendCluster, error) {
	return recommend.StartCluster(cfg)
}

// DialRecommend connects a front-end client to a Recommend mid-tier.
func DialRecommend(addr string, opts *RPCClientOptions) (*RecommendClient, error) {
	return recommend.DialClient(addr, opts)
}

// --- RPC substrate ---

// RPC substrate types (the gRPC stand-in).
type (
	RPCClient        = rpc.Client
	RPCClientOptions = rpc.ClientOptions
	RPCCall          = rpc.Call
	// TierStats are a framework tier's operational counters, served on
	// the reserved core.stats RPC method.
	TierStats = core.TierStats
)

// DialRPC opens a raw RPC connection to any tier (e.g. to query its
// core.stats endpoint).
func DialRPC(addr string, opts *RPCClientOptions) (*RPCClient, error) {
	return rpc.Dial(addr, opts)
}

// QueryStats fetches a tier's operational counters over a client connection.
func QueryStats(c *RPCClient) (TierStats, error) { return core.QueryStats(c) }

// --- overload control & autoscaling ---

// Admission-control and autoscaling types: the mid-tier's adaptive (AIMD)
// admission controller and the closed scaling loop that grows or shrinks
// the leaf topology from its signals.
type (
	// AdmitPolicy configures the mid-tier admission controller
	// (MidTierOptions.Admit); the zero value disables it.
	AdmitPolicy = core.AdmitPolicy
	// OverloadError is the typed shed a mid-tier returns instead of
	// queueing doomed work; it is never retried and never consumes
	// retry budget.
	OverloadError = rpc.OverloadError
	// Autoscaler runs the poll→decide→act scaling loop.
	Autoscaler = autoscale.Autoscaler
	// AutoscaleConfig tunes its hysteresis, cooldown, and bounds.
	AutoscaleConfig = autoscale.Config
	// AutoscaleTarget is the capacity surface the loop drives.
	AutoscaleTarget = autoscale.Target
	// AutoscaleFuncs adapts closures to AutoscaleTarget.
	AutoscaleFuncs = autoscale.Funcs
	// AutoscaleEvent is one scale action taken by the loop.
	AutoscaleEvent = autoscale.Event
	// SpareTarget scales a live topology over a warm-spares pool.
	SpareTarget = autoscale.SpareTarget
)

// IsOverload reports whether err is (or wraps) a typed overload shed.
func IsOverload(err error) bool { return rpc.IsOverload(err) }

// NewAutoscaler builds an autoscaler over target; Start arms it.
func NewAutoscaler(target AutoscaleTarget, cfg AutoscaleConfig) *Autoscaler {
	return autoscale.New(target, cfg)
}

// NewSpareTarget builds a warm-spares capacity surface from a stats source,
// topology actuators, and the spare address-group pool.
func NewSpareTarget(
	stats func() (TierStats, error),
	add func(addrs []string) (int, error),
	drain func(shard int) error,
	spares [][]string,
) *SpareTarget {
	return autoscale.NewSpareTarget(stats, add, drain, spares)
}

// ParseSpareGroups parses the -autoscale-spares flag syntax
// ("a:7001,b:7002;c:7003" — ';' between groups, ',' between replicas).
func ParseSpareGroups(s string) [][]string { return autoscale.ParseSpareGroups(s) }

// --- load generation & measurement (paper §V) ---

// Load-generation and measurement types.
type (
	IssueFunc        = loadgen.IssueFunc
	ClosedLoopConfig = loadgen.ClosedLoopConfig
	ClosedLoopResult = loadgen.ClosedLoopResult
	OpenLoopConfig   = loadgen.OpenLoopConfig
	OpenLoopResult   = loadgen.OpenLoopResult
	SaturationConfig = loadgen.SaturationConfig
	SaturationResult = loadgen.SaturationResult
	LoadPhase        = loadgen.LoadPhase
	PhaseResult      = loadgen.PhaseResult
	LatencySnapshot  = stats.Snapshot
	LatencyHistogram = stats.Histogram
	Violin           = stats.Violin
)

// RunClosedLoop drives a service in closed-loop mode (saturation probing).
func RunClosedLoop(issue IssueFunc, cfg ClosedLoopConfig) ClosedLoopResult {
	return loadgen.RunClosedLoop(issue, cfg)
}

// RunOpenLoop drives a service with Poisson arrivals, measuring latency
// from scheduled send time (coordinated-omission safe).
func RunOpenLoop(issue IssueFunc, cfg OpenLoopConfig) OpenLoopResult {
	return loadgen.RunOpenLoop(issue, cfg)
}

// FindSaturation discovers peak sustainable throughput (Fig. 9 methodology).
func FindSaturation(issue IssueFunc, cfg SaturationConfig) SaturationResult {
	return loadgen.FindSaturation(issue, cfg)
}

// NewLatencyHistogram creates a concurrent log-bucketed latency histogram.
func NewLatencyHistogram() *LatencyHistogram { return stats.NewHistogram() }

// RunSchedule drives a time-varying (diurnal / flash-crowd) load schedule.
func RunSchedule(issue IssueFunc, phases []LoadPhase, seed int64, drainTimeout time.Duration) []PhaseResult {
	return loadgen.RunSchedule(issue, phases, seed, drainTimeout)
}

// FlashCrowd builds a baseline→spike→recovery load schedule.
func FlashCrowd(baselineQPS, spikeFactor float64, baseline, spike time.Duration) []LoadPhase {
	return loadgen.FlashCrowd(baselineQPS, spikeFactor, baseline, spike)
}

// Diurnal builds a staircase load schedule rising to a peak and back.
func Diurnal(troughQPS, peakQPS float64, stepsPerSide int, total time.Duration) []LoadPhase {
	return loadgen.Diurnal(troughQPS, peakQPS, stepsPerSide, total)
}

// --- experiment harness ---

// Experiment harness types regenerating the paper's tables and figures.
type (
	Scale         = bench.Scale
	Instance      = bench.Instance
	FrameworkMode = bench.FrameworkMode
	Fig9Row       = bench.Fig9Row
	LoadPoint     = bench.LoadPoint
	AblationRow   = bench.AblationRow
	// ResizePhase is one window of the live-resize experiment.
	ResizePhase = bench.ResizePhase
	// OverloadResult is the saturation-ramp experiment's report.
	OverloadResult = bench.OverloadResult
	// OverloadStep is one of its ramp windows.
	OverloadStep = bench.OverloadStep
)

// ServiceNames lists the four benchmarks in the paper's order.
var ServiceNames = bench.ServiceNames

// SmallScale returns the laptop-sized experiment configuration.
func SmallScale() Scale { return bench.SmallScale() }

// PaperScale approximates the publication's experiment sizes.
func PaperScale() Scale { return bench.PaperScale() }

// StartService deploys one named benchmark for experimentation.
func StartService(name string, s Scale, mode FrameworkMode) (*Instance, error) {
	return bench.StartService(name, s, mode)
}

// Fig9 regenerates the saturation-throughput experiment.
func Fig9(s Scale, services []string) ([]Fig9Row, error) { return bench.Fig9(s, services) }

// Characterize regenerates the Figs. 10–19 measurement set.
func Characterize(s Scale, services []string, mode FrameworkMode) ([]LoadPoint, error) {
	return bench.Characterize(s, services, mode)
}

// Ablation regenerates the §VII framework-variant comparison.
func Ablation(s Scale, services []string, load float64) ([]AblationRow, error) {
	return bench.Ablation(s, services, load)
}

// ThreadPoolSweep regenerates the §VII thread-pool-sizing measurement.
func ThreadPoolSweep(s Scale, service string, workerCounts []int, load float64) ([]bench.ThreadPoolRow, error) {
	return bench.ThreadPoolSweep(s, service, workerCounts, load)
}

// FlashCrowdExperiment drives one service through a load spike.
func FlashCrowdExperiment(s Scale, service string, baselineQPS, spikeFactor float64) ([]PhaseResult, error) {
	return bench.FlashCrowdExperiment(s, service, baselineQPS, spikeFactor)
}

// ResizeExperiment measures Router latency while a leaf group is added and
// drained under steady load — the live-topology experiment.
func ResizeExperiment(s Scale, mode FrameworkMode, qps float64) ([]ResizePhase, error) {
	return bench.Resize(s, mode, qps)
}

// OverloadExperiment drives Router through the saturation ramp with
// admission control and the autoscaler armed, to 3× its measured knee.
func OverloadExperiment(s Scale, mode FrameworkMode) (*OverloadResult, error) {
	return bench.Overload(s, mode)
}

// --- declarative topologies & scenarios ---

// Declarative-topology types: YAML specs composing arbitrary service DAGs
// over the mid-tier framework, and the scenario engine that degrades them
// on a schedule (DESIGN.md §5.9).
type (
	// TopoSpec is a parsed, validated topology: services, policy edges,
	// load shape, and scenario events.
	TopoSpec = topo.Spec
	// TopoServiceSpec / TopoEventSpec are one service node and one timed
	// degradation event of a spec.
	TopoServiceSpec = topo.ServiceSpec
	TopoEventSpec   = topo.EventSpec
	// TopoBuildOptions carries cross-cutting build knobs (span recorder,
	// sampling, telemetry probe).
	TopoBuildOptions = topo.BuildOptions
	// TopoDeployment is a running instantiation of a spec; Service,
	// Entry, and Close navigate and tear it down.
	TopoDeployment = topo.Deployment
	// TopoScenario is an armed set of timed degradations
	// (Deployment.StartScenario); its Log records apply/revert events.
	TopoScenario = topo.Scenario
	// TopoRunOptions / TopoRunResult configure and report a full
	// build→load→scenario→drain run.
	TopoRunOptions = topo.RunOptions
	TopoRunResult  = topo.RunResult
)

// ParseTopology parses and validates YAML topology-spec source.
func ParseTopology(src []byte) (*TopoSpec, error) { return topo.ParseSpec(src) }

// LoadTopologyFile parses and validates a topology-spec file.
func LoadTopologyFile(path string) (*TopoSpec, error) { return topo.LoadSpecFile(path) }

// BuildTopology instantiates a validated spec as live tiers.
func BuildTopology(spec *TopoSpec, opts TopoBuildOptions) (*TopoDeployment, error) {
	return topo.Build(spec, opts)
}

// RunTopology builds a spec, offers its load shape with the scenario
// armed, and returns per-phase results plus the scenario event log.
func RunTopology(spec *TopoSpec, opts TopoRunOptions) (*TopoRunResult, error) {
	return topo.Run(spec, opts)
}

// TopologyKinds lists the registered service kinds a spec may name in
// addition to the built-in synthetic/compute/cache/store node kinds.
func TopologyKinds() []string { return topo.RegisteredKinds() }

// ScenarioViolations inspects a run for acceptance failures: untyped
// errors, unresolved requests, or (recoveryFloor > 0) final-phase goodput
// below recoveryFloor× the first phase's.
func ScenarioViolations(res *TopoRunResult, recoveryFloor float64) []string {
	return bench.ScenarioViolations(res, recoveryFloor)
}
