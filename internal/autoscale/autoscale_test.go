package autoscale

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"musuite/internal/core"
	"musuite/internal/services/router"
)

// fakeTarget is a scriptable Target: stats are whatever the test sets,
// actions mutate a leaf counter.
type fakeTarget struct {
	mu     sync.Mutex
	st     core.TierStats
	ups    int
	downs  int
	upErr  error
	dnErr  error
	leaves int
}

func (f *fakeTarget) set(st core.TierStats) {
	f.mu.Lock()
	f.st = st
	f.mu.Unlock()
}

func (f *fakeTarget) Stats() (core.TierStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	st.Leaves = f.leaves
	return st, nil
}

func (f *fakeTarget) ScaleUp() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.upErr != nil {
		return -1, f.upErr
	}
	f.ups++
	f.leaves++
	return f.leaves - 1, nil
}

func (f *fakeTarget) ScaleDown() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dnErr != nil {
		return f.dnErr
	}
	f.downs++
	f.leaves--
	return nil
}

// TestHysteresisDelaysScaleUp: a single hot poll must not act; UpAfter
// consecutive hot polls must.
func TestHysteresisDelaysScaleUp(t *testing.T) {
	ft := &fakeTarget{leaves: 2}
	a := New(ft, Config{UpAfter: 3, DownAfter: 100, UpQueueDepth: 4, MinLeaves: 2})

	hot := core.TierStats{QueueDepth: 10}
	cold := core.TierStats{}

	ft.set(hot)
	a.Poll()
	a.Poll()
	if ft.ups != 0 {
		t.Fatalf("scaled up after 2/3 hot polls")
	}
	// A cold poll resets the run.
	ft.set(cold)
	a.Poll()
	ft.set(hot)
	a.Poll()
	a.Poll()
	if ft.ups != 0 {
		t.Fatalf("hot run survived a cold poll")
	}
	a.Poll()
	if ft.ups != 1 {
		t.Fatalf("ups=%d after 3 consecutive hot polls, want 1", ft.ups)
	}
}

// TestCooldownHoldsActions: right after a scale-up, further breaches hold
// until the cooldown elapses.
func TestCooldownHoldsActions(t *testing.T) {
	ft := &fakeTarget{leaves: 1}
	a := New(ft, Config{
		UpAfter: 1, DownAfter: 100, UpQueueDepth: 4,
		Cooldown: 50 * time.Millisecond, MinLeaves: 1,
	})
	ft.set(core.TierStats{QueueDepth: 10})
	a.Poll()
	if ft.ups != 1 {
		t.Fatalf("first breach did not scale (ups=%d)", ft.ups)
	}
	a.Poll()
	a.Poll()
	if ft.ups != 1 {
		t.Fatalf("scaled during cooldown (ups=%d)", ft.ups)
	}
	if a.Stats().Holds == 0 {
		t.Fatal("cooldown holds not counted")
	}
	time.Sleep(60 * time.Millisecond)
	a.Poll()
	if ft.ups != 2 {
		t.Fatalf("did not scale after cooldown (ups=%d)", ft.ups)
	}
}

// TestScaleDownRespectsMinLeaves: sustained cold polls shrink only down to
// the floor.
func TestScaleDownRespectsMinLeaves(t *testing.T) {
	ft := &fakeTarget{leaves: 4}
	a := New(ft, Config{UpAfter: 100, DownAfter: 2, MinLeaves: 3})
	ft.set(core.TierStats{})
	for i := 0; i < 20; i++ {
		a.Poll()
	}
	if ft.leaves != 3 {
		t.Fatalf("leaves=%d, want floor 3", ft.leaves)
	}
	if ft.downs != 1 {
		t.Fatalf("downs=%d, want 1", ft.downs)
	}
}

// TestShedDeltaTriggers: the shed counters are cumulative, so only a
// *growing* count marks a poll hot.
func TestShedDeltaTriggers(t *testing.T) {
	ft := &fakeTarget{leaves: 1}
	a := New(ft, Config{UpAfter: 2, DownAfter: 100, UpQueueDepth: 1000, MinLeaves: 1})
	// A large but static shed count (accumulated before the loop began)
	// must not trigger.
	ft.set(core.TierStats{ShedLimit: 500})
	for i := 0; i < 5; i++ {
		a.Poll()
	}
	if ft.ups != 0 {
		t.Fatalf("static shed count triggered scale-up")
	}
	// Growth does.
	ft.set(core.TierStats{ShedLimit: 501})
	a.Poll()
	ft.set(core.TierStats{ShedLimit: 502})
	a.Poll()
	if ft.ups != 1 {
		t.Fatalf("ups=%d after shed growth, want 1", ft.ups)
	}
	ev := a.Events()
	if len(ev) != 1 || ev[0].Reason != "sheds" || ev[0].Dir != "up" {
		t.Fatalf("events=%+v", ev)
	}
}

// TestSpareTargetPool walks the pool through up/down cycles and the error
// edges: exhaustion, nothing-to-drain, and an actuator failure returning
// the group to the pool.
func TestSpareTargetPool(t *testing.T) {
	added := map[int][]string{}
	next := 3 // baseline shards 0..2
	var addErr, drainErr error
	st := NewSpareTarget(
		func() (core.TierStats, error) { return core.TierStats{}, nil },
		func(addrs []string) (int, error) {
			if addErr != nil {
				return -1, addErr
			}
			shard := next
			next++
			added[shard] = addrs
			return shard, nil
		},
		func(shard int) error {
			if drainErr != nil {
				return drainErr
			}
			delete(added, shard)
			return nil
		},
		[][]string{{"a:1", "a:2"}, {"b:1"}},
	)

	if st.Spares() != 2 {
		t.Fatalf("spares=%d", st.Spares())
	}
	if err := st.ScaleDown(); !errors.Is(err, ErrNothingAdded) {
		t.Fatalf("drain with nothing added: %v", err)
	}
	s1, err := st.ScaleUp()
	if err != nil {
		t.Fatal(err)
	}
	if _, err = st.ScaleUp(); err != nil {
		t.Fatal(err)
	}
	if _, err = st.ScaleUp(); !errors.Is(err, ErrNoSpares) {
		t.Fatalf("scale-up past the pool: %v", err)
	}
	// A failing drain keeps the group added.
	drainErr = errors.New("drain refused")
	if err = st.ScaleDown(); err == nil {
		t.Fatal("drain error swallowed")
	}
	drainErr = nil
	if err = st.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	if err = st.ScaleDown(); err != nil {
		t.Fatal(err)
	}
	if len(added) != 0 {
		t.Fatalf("groups left in service: %v", added)
	}
	if st.Spares() != 2 {
		t.Fatalf("pool not refilled: %d", st.Spares())
	}
	// A failing add returns the spare.
	addErr = errors.New("dial failed")
	if _, err = st.ScaleUp(); err == nil {
		t.Fatal("add error swallowed")
	}
	if st.Spares() != 2 {
		t.Fatalf("spare lost on failed add: %d", st.Spares())
	}
	_ = s1
}

func TestParseSpareGroups(t *testing.T) {
	got := ParseSpareGroups("a:7001,b:7002; c:7003 ;;")
	if len(got) != 2 || len(got[0]) != 2 || got[1][0] != "c:7003" {
		t.Fatalf("parsed %v", got)
	}
	if ParseSpareGroups("") != nil {
		t.Fatal("empty string should parse to nil")
	}
}

// churnCycles is the scale-up/drain cycle count for the churn soak, raised
// to 200 by the nightly job via MUSUITE_AUTOSCALE_CYCLES.
func churnCycles(t *testing.T) int {
	if s := os.Getenv("MUSUITE_AUTOSCALE_CYCLES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad MUSUITE_AUTOSCALE_CYCLES %q", s)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 6
}

// TestAutoscaleChurnStress runs the autoscaler against a live Router
// cluster, alternating synthetic hot/cold signals so the loop adds and
// drains real leaf nodes for N full cycles while client traffic runs —
// every request must succeed through the churn.  The nightly job runs 200
// cycles under -race.
func TestAutoscaleChurnStress(t *testing.T) {
	cycles := churnCycles(t)
	const base = 2

	cl, err := router.StartCluster(router.ClusterConfig{
		Leaves:   base,
		Replicas: 1,
		MidTier:  core.Options{Workers: 4},
		Leaf:     core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Direction state: hot until a leaf is added, cold until it drains.
	var wantUp atomic.Bool
	wantUp.Store(true)
	target := Funcs{
		StatsFn: func() (core.TierStats, error) {
			st := cl.MidTier().Stats()
			if wantUp.Load() {
				st.QueueDepth = 100 // synthetic hot signal
			} else {
				st.QueueDepth = 0
			}
			return st, nil
		},
		UpFn: cl.AddLeaf,
		DownFn: func() error {
			return cl.DrainLeaf(cl.NumLeaves()-1, 10*time.Second)
		},
	}
	a := New(target, Config{
		UpAfter: 1, DownAfter: 1,
		Cooldown:  time.Nanosecond,
		MinLeaves: base, MaxLeaves: base + 1,
	})

	// Client traffic through the whole churn.
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	clientDone := make(chan struct{})
	go func() {
		defer close(clientDone)
		client, err := router.DialClient(cl.Addr, nil)
		if err != nil {
			errCh <- err
			return
		}
		defer client.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("churn-%d", i%64)
			if err := client.Set(key, []byte("v")); err != nil {
				errCh <- fmt.Errorf("set %s: %w", key, err)
				return
			}
			if _, _, err := client.Get(key); err != nil {
				errCh <- fmt.Errorf("get %s: %w", key, err)
				return
			}
		}
	}()

	deadline := time.Now().Add(2 * time.Minute)
	for cycle := 0; cycle < cycles; cycle++ {
		wantUp.Store(true)
		for cl.NumLeaves() <= base {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: scale-up stuck at %d leaves", cycle, cl.NumLeaves())
			}
			a.Poll()
		}
		wantUp.Store(false)
		for cl.NumLeaves() > base {
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: scale-down stuck at %d leaves", cycle, cl.NumLeaves())
			}
			a.Poll()
		}
	}
	close(stop)
	<-clientDone
	select {
	case err := <-errCh:
		t.Fatalf("client traffic failed during churn: %v", err)
	default:
	}

	st := a.Stats()
	if st.Ups != uint64(cycles) || st.Downs != uint64(cycles) {
		t.Fatalf("ups=%d downs=%d, want %d each", st.Ups, st.Downs, cycles)
	}
	if err := a.LastErr(); err != nil {
		t.Fatalf("autoscaler recorded error: %v", err)
	}
}

// TestStartStopLifecycle: the background loop starts, polls, and stops
// idempotently.
func TestStartStopLifecycle(t *testing.T) {
	ft := &fakeTarget{leaves: 1}
	ft.set(core.TierStats{})
	a := New(ft, Config{Interval: time.Millisecond, MinLeaves: 1})
	a.Start()
	a.Start() // second Start is a no-op
	deadline := time.Now().Add(time.Second)
	for a.Stats().Polls == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Stats().Polls == 0 {
		t.Fatal("background loop never polled")
	}
	a.Stop()
	a.Stop() // idempotent
}
