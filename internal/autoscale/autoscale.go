// Package autoscale closes the control loop the paper's §V saturation
// methodology leaves open: it watches a mid-tier's operational counters
// (core.TierStats — queue depth, shed deltas, the admission controller's
// p99 service-time estimate) and grows or shrinks the leaf topology through
// the PR 4 admin surface (AddGroup/DrainGroup) in response.  Hysteresis —
// N consecutive breach polls before acting — and a post-action cooldown
// keep the loop from flapping on transient bursts, the failure mode that
// makes naive autoscalers amplify the load swings they exist to absorb.
package autoscale

import (
	"errors"
	"sync"
	"time"

	"musuite/internal/core"
	"musuite/internal/telemetry"
)

// Target is the capacity surface the autoscaler drives: a stats source
// plus scale-up/scale-down actuators.  Implementations: Funcs (in-process
// closures over a bench deployment), SpareTarget (a pre-provisioned spare
// pool moved in and out of a live topology via the admin RPC).
type Target interface {
	// Stats reports the observed tier's current counters.
	Stats() (core.TierStats, error)
	// ScaleUp adds one leaf group, returning its shard index.
	ScaleUp() (int, error)
	// ScaleDown drains one leaf group.
	ScaleDown() error
}

// Funcs adapts three closures to the Target interface.
type Funcs struct {
	StatsFn func() (core.TierStats, error)
	UpFn    func() (int, error)
	DownFn  func() error
}

// Stats implements Target.
func (f Funcs) Stats() (core.TierStats, error) { return f.StatsFn() }

// ScaleUp implements Target.
func (f Funcs) ScaleUp() (int, error) { return f.UpFn() }

// ScaleDown implements Target.
func (f Funcs) ScaleDown() error { return f.DownFn() }

// Config tunes the control loop.  The zero value gets workable defaults:
// 250ms polls, 4-poll cooldown, scale up after 2 consecutive hot polls,
// down after 8 consecutive cold ones.
type Config struct {
	// Interval is the stats poll period (default 250ms).
	Interval time.Duration
	// Cooldown is the minimum gap after an action before the next one
	// (default 4×Interval): capacity changes need time to show up in the
	// signals, and acting on pre-change readings double-counts.
	Cooldown time.Duration
	// UpAfter and DownAfter are the hysteresis depths: consecutive hot
	// (resp. cold) polls required before acting (defaults 2 and 8 —
	// shrinking is cheaper to delay than growing).
	UpAfter, DownAfter int
	// UpQueueDepth marks a poll hot when the dispatch queue is at least
	// this deep (default 4).  Sheds since the previous poll always mark
	// it hot.
	UpQueueDepth int
	// UpP99 marks a poll hot when the tracked p99 service time reaches
	// it (0 = ignore the latency signal).
	UpP99 time.Duration
	// MinLeaves and MaxLeaves bound the capacity the loop may reach.
	// MaxLeaves 0 means "whatever the target can provide".
	MinLeaves, MaxLeaves int
	// Probe receives scale-decision telemetry; nil disables it.
	Probe *telemetry.Probe
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 250 * time.Millisecond
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 4 * c.Interval
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 8
	}
	if c.UpQueueDepth <= 0 {
		c.UpQueueDepth = 4
	}
	if c.MinLeaves <= 0 {
		c.MinLeaves = 1
	}
	return c
}

// Event is one scale action taken by the loop, kept for reporting.
type Event struct {
	// When is the action time.
	When time.Time
	// Dir is "up" or "down".
	Dir string
	// Shard is the affected shard index (-1 when unknown, e.g. a drain
	// the target picks itself).
	Shard int
	// Leaves is the leaf count after the action.
	Leaves int
	// Reason summarizes the breached signal.
	Reason string
}

// Stats counts the loop's decisions.
type Stats struct {
	// Polls is the number of completed stat reads.
	Polls uint64
	// Ups and Downs count scale actions; Holds counts breaches withheld
	// by hysteresis, cooldown, or a capacity bound.
	Ups, Downs, Holds uint64
	// Errors counts failed polls or failed actions.
	Errors uint64
}

// Autoscaler runs the poll→decide→act loop on its own goroutine.
type Autoscaler struct {
	cfg    Config
	target Target

	mu       sync.Mutex
	events   []Event
	stats    Stats
	lastErr  error
	stopCh   chan struct{}
	doneCh   chan struct{}
	started  bool
	stopped  bool
	upRun    int
	downRun  int
	lastAct  time.Time
	prevShed uint64
	havePrev bool
}

// New builds an autoscaler over target; Start arms it.
func New(target Target, cfg Config) *Autoscaler {
	return &Autoscaler{
		cfg:    cfg.withDefaults(),
		target: target,
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
	}
}

// Start launches the control loop.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	go a.loop()
}

// Stop halts the loop and waits for it to exit.  Idempotent.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	if a.stopped {
		started := a.started
		a.mu.Unlock()
		if started {
			<-a.doneCh
		}
		return
	}
	a.stopped = true
	started := a.started
	a.mu.Unlock()
	close(a.stopCh)
	if started {
		<-a.doneCh
	}
}

// Events returns a copy of the scale actions taken so far.
func (a *Autoscaler) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, len(a.events))
	copy(out, a.events)
	return out
}

// Stats returns the decision counters.
func (a *Autoscaler) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// LastErr reports the most recent poll or action failure, nil if none.
func (a *Autoscaler) LastErr() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

func (a *Autoscaler) loop() {
	defer close(a.doneCh)
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case <-t.C:
			a.Poll()
		}
	}
}

// Poll runs one observe→decide→act cycle.  The loop calls it on every
// tick; tests (and step-driven harnesses) may call it directly on a
// non-Started autoscaler for deterministic pacing.
func (a *Autoscaler) Poll() {
	st, err := a.target.Stats()
	a.mu.Lock()
	if err != nil {
		a.stats.Errors++
		a.lastErr = err
		a.mu.Unlock()
		return
	}
	a.stats.Polls++

	// Shed deltas: any typed shed since the last poll is the strongest
	// "out of capacity" signal — the admission controller is refusing
	// work the cluster should be absorbing.
	shed := st.Shed + st.ShedLimit + st.ShedDeadline
	shedDelta := uint64(0)
	if a.havePrev && shed >= a.prevShed {
		shedDelta = shed - a.prevShed
	}
	a.prevShed = shed
	a.havePrev = true

	hot := shedDelta > 0 || st.QueueDepth >= a.cfg.UpQueueDepth ||
		(a.cfg.UpP99 > 0 && st.AdmitP99 >= a.cfg.UpP99)
	cold := shedDelta == 0 && st.QueueDepth == 0 &&
		(a.cfg.UpP99 <= 0 || st.AdmitP99 < a.cfg.UpP99/2)

	reason := ""
	switch {
	case shedDelta > 0:
		reason = "sheds"
	case st.QueueDepth >= a.cfg.UpQueueDepth:
		reason = "queue-depth"
	case hot:
		reason = "p99"
	}

	if hot {
		a.upRun++
		a.downRun = 0
	} else if cold {
		a.downRun++
		a.upRun = 0
	} else {
		a.upRun, a.downRun = 0, 0
	}

	now := time.Now()
	cooling := !a.lastAct.IsZero() && now.Sub(a.lastAct) < a.cfg.Cooldown

	if hot && a.upRun >= a.cfg.UpAfter {
		if cooling || (a.cfg.MaxLeaves > 0 && st.Leaves >= a.cfg.MaxLeaves) {
			a.stats.Holds++
			a.cfg.Probe.IncScale(telemetry.ScaleHold)
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
		shard, err := a.target.ScaleUp()
		a.mu.Lock()
		if err != nil {
			a.stats.Errors++
			a.lastErr = err
		} else {
			a.stats.Ups++
			a.cfg.Probe.IncScale(telemetry.ScaleUp)
			a.events = append(a.events, Event{
				When: now, Dir: "up", Shard: shard,
				Leaves: st.Leaves + 1, Reason: reason,
			})
			a.lastAct = now
			a.upRun = 0
		}
		a.mu.Unlock()
		return
	}
	if cold && a.downRun >= a.cfg.DownAfter {
		if cooling || st.Leaves <= a.cfg.MinLeaves {
			if st.Leaves > a.cfg.MinLeaves {
				a.stats.Holds++
				a.cfg.Probe.IncScale(telemetry.ScaleHold)
			}
			a.mu.Unlock()
			return
		}
		a.mu.Unlock()
		err := a.target.ScaleDown()
		a.mu.Lock()
		if err != nil {
			a.stats.Errors++
			a.lastErr = err
		} else {
			a.stats.Downs++
			a.cfg.Probe.IncScale(telemetry.ScaleDown)
			a.events = append(a.events, Event{
				When: now, Dir: "down", Shard: -1,
				Leaves: st.Leaves - 1, Reason: "idle",
			})
			a.lastAct = now
			a.downRun = 0
		}
		a.mu.Unlock()
		return
	}
	a.mu.Unlock()
}

// ErrNoSpares reports a scale-up with the spare pool empty.
var ErrNoSpares = errors.New("autoscale: no spare leaf groups available")

// ErrNothingAdded reports a scale-down with no autoscaler-added group left.
var ErrNothingAdded = errors.New("autoscale: no added leaf group to drain")
