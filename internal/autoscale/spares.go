package autoscale

import (
	"errors"
	"strings"
	"sync"
	"time"

	"musuite/internal/cluster"
	"musuite/internal/core"
	"musuite/internal/rpc"
)

// SpareTarget scales a live topology by moving pre-provisioned spare leaf
// groups in and out of service: ScaleUp takes the next group from the spare
// pool and adds it, ScaleDown drains the most recently added group and
// returns its addresses to the pool.  This is the warm-spares model the
// service binaries use (-autoscale-spares): the spare processes are already
// running and loaded, so a scale-up is a dial + topology publish, not a
// cold start.
type SpareTarget struct {
	statsFn func() (core.TierStats, error)
	addFn   func(addrs []string) (int, error)
	drainFn func(shard int) error

	mu     sync.Mutex
	spares [][]string
	added  []addedGroup
}

type addedGroup struct {
	shard int
	addrs []string
}

// NewSpareTarget builds a SpareTarget from a stats source, topology
// actuators, and the spare address-group pool.
func NewSpareTarget(
	stats func() (core.TierStats, error),
	add func(addrs []string) (int, error),
	drain func(shard int) error,
	spares [][]string,
) *SpareTarget {
	pool := make([][]string, len(spares))
	copy(pool, spares)
	return &SpareTarget{statsFn: stats, addFn: add, drainFn: drain, spares: pool}
}

// NewAdminSpareTarget is a SpareTarget operating a *remote* mid-tier: stats
// over its serving connection (core.stats), topology mutations over its
// admin RPC, drains bounded by drainDeadline.
func NewAdminSpareTarget(admin *cluster.AdminClient, stats *rpc.Client, spares [][]string, drainDeadline time.Duration) *SpareTarget {
	if drainDeadline <= 0 {
		drainDeadline = 5 * time.Second
	}
	return NewSpareTarget(
		func() (core.TierStats, error) { return core.QueryStats(stats) },
		admin.Add,
		func(shard int) error { return admin.Drain(shard, drainDeadline) },
		spares,
	)
}

// Stats implements Target.
func (s *SpareTarget) Stats() (core.TierStats, error) { return s.statsFn() }

// Spares reports the groups still available to ScaleUp.
func (s *SpareTarget) Spares() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spares)
}

// ScaleUp places the next spare group in service.
func (s *SpareTarget) ScaleUp() (int, error) {
	s.mu.Lock()
	if len(s.spares) == 0 {
		s.mu.Unlock()
		return -1, ErrNoSpares
	}
	group := s.spares[len(s.spares)-1]
	s.spares = s.spares[:len(s.spares)-1]
	s.mu.Unlock()

	shard, err := s.addFn(group)
	if err != nil {
		s.mu.Lock()
		s.spares = append(s.spares, group)
		s.mu.Unlock()
		return -1, err
	}
	s.mu.Lock()
	s.added = append(s.added, addedGroup{shard: shard, addrs: group})
	s.mu.Unlock()
	return shard, nil
}

// ScaleDown drains the most recently added group and returns it to the
// spare pool.  Only groups this target added are ever drained: the baseline
// topology an operator configured is not the autoscaler's to shrink.
func (s *SpareTarget) ScaleDown() error {
	s.mu.Lock()
	if len(s.added) == 0 {
		s.mu.Unlock()
		return ErrNothingAdded
	}
	g := s.added[len(s.added)-1]
	s.added = s.added[:len(s.added)-1]
	s.mu.Unlock()

	err := s.drainFn(g.shard)
	if err != nil && !errors.Is(err, cluster.ErrDrainTimeout) {
		s.mu.Lock()
		s.added = append(s.added, g)
		s.mu.Unlock()
		return err
	}
	// Drained (or force-closed at the deadline, which still removes the
	// group): the addresses are idle spares again.
	s.mu.Lock()
	s.spares = append(s.spares, g.addrs)
	s.mu.Unlock()
	return nil
}

// ParseSpareGroups parses the -autoscale-spares flag syntax: groups
// separated by ';', replica addresses within a group by ','.
// "a:7001,b:7002;c:7003" → [[a:7001 b:7002] [c:7003]].
func ParseSpareGroups(s string) [][]string {
	var out [][]string
	for _, g := range strings.Split(s, ";") {
		var group []string
		for _, addr := range strings.Split(g, ",") {
			if addr = strings.TrimSpace(addr); addr != "" {
				group = append(group, addr)
			}
		}
		if len(group) > 0 {
			out = append(out, group)
		}
	}
	return out
}
