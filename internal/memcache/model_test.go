package memcache

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// modelStore is a deliberately naive reference implementation: a map plus a
// recency list, no sharding, no budget.  The real Store (configured with no
// byte budget and a single shard so eviction never fires and LRU order is
// irrelevant) must agree with it on every operation's visible result.
type modelStore struct {
	data map[string][]byte
	cas  map[string]uint64
	seq  uint64
}

func newModel() *modelStore {
	return &modelStore{data: make(map[string][]byte), cas: make(map[string]uint64)}
}

func (m *modelStore) set(key string, val []byte) {
	m.seq++
	m.data[key] = append([]byte(nil), val...)
	m.cas[key] = m.seq
}

func (m *modelStore) get(key string) ([]byte, bool) {
	v, ok := m.data[key]
	return v, ok
}

func (m *modelStore) del(key string) bool {
	_, ok := m.data[key]
	delete(m.data, key)
	delete(m.cas, key)
	return ok
}

func (m *modelStore) add(key string, val []byte) error {
	if _, ok := m.data[key]; ok {
		return ErrNotStored
	}
	m.set(key, val)
	return nil
}

func (m *modelStore) replace(key string, val []byte) error {
	if _, ok := m.data[key]; !ok {
		return ErrNotStored
	}
	m.set(key, val)
	return nil
}

// TestModelConformance runs a long random operation sequence against both
// implementations and requires identical visible behavior at every step.
func TestModelConformance(t *testing.T) {
	store := New(Config{Shards: 1})
	model := newModel()
	rng := rand.New(rand.NewSource(99))
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	val := func() []byte {
		v := make([]byte, rng.Intn(32))
		rng.Read(v)
		return v
	}

	for step := 0; step < 20000; step++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(6) {
		case 0: // set
			v := val()
			store.Set(key, v, 0)
			model.set(key, v)
		case 1: // get
			gotV, gotOK := store.Get(key)
			wantV, wantOK := model.get(key)
			if gotOK != wantOK {
				t.Fatalf("step %d: get(%q) ok=%v want %v", step, key, gotOK, wantOK)
			}
			if gotOK && string(gotV) != string(wantV) {
				t.Fatalf("step %d: get(%q)=%x want %x", step, key, gotV, wantV)
			}
		case 2: // delete
			if got, want := store.Delete(key), model.del(key); got != want {
				t.Fatalf("step %d: delete(%q)=%v want %v", step, key, got, want)
			}
		case 3: // add
			v := val()
			if got, want := store.Add(key, v, 0), model.add(key, v); got != want {
				t.Fatalf("step %d: add(%q)=%v want %v", step, key, got, want)
			}
		case 4: // replace
			v := val()
			if got, want := store.Replace(key, v, 0), model.replace(key, v); got != want {
				t.Fatalf("step %d: replace(%q)=%v want %v", step, key, got, want)
			}
		case 5: // cas round trip: gets then cas must succeed iff untouched
			v, casID, ok := store.Gets(key)
			_, wantOK := model.get(key)
			if ok != wantOK {
				t.Fatalf("step %d: gets(%q) ok=%v want %v", step, key, ok, wantOK)
			}
			if !ok {
				continue
			}
			if rng.Intn(2) == 0 {
				// Untouched: CAS must succeed.
				nv := val()
				if err := store.CAS(key, nv, casID, 0); err != nil {
					t.Fatalf("step %d: fresh cas(%q): %v", step, key, err)
				}
				model.set(key, nv)
			} else {
				// Touch the key first: CAS must conflict.
				store.Set(key, v, 0)
				model.set(key, v)
				if err := store.CAS(key, val(), casID, 0); err != ErrExists {
					t.Fatalf("step %d: stale cas(%q): %v", step, key, err)
				}
			}
		}
		// Periodic full-state audit.
		if step%2500 == 0 {
			if store.Len() != len(model.data) {
				t.Fatalf("step %d: len=%d want %d", step, store.Len(), len(model.data))
			}
			for _, k := range keys {
				gotV, gotOK := store.Get(k)
				wantV, wantOK := model.get(k)
				if gotOK != wantOK || (gotOK && string(gotV) != string(wantV)) {
					t.Fatalf("step %d: audit %q diverged", step, k)
				}
			}
		}
	}
}

// TestModelConformanceWithTTL extends the model with a fake clock and
// verifies expiry behavior matches.
func TestModelConformanceWithTTL(t *testing.T) {
	now := time.Unix(0, 0)
	store := New(Config{Shards: 1, Now: func() time.Time { return now }})
	type expEntry struct {
		val     []byte
		expires time.Time
	}
	model := make(map[string]expEntry)
	rng := rand.New(rand.NewSource(7))
	keys := []string{"a", "b", "c", "d", "e"}

	for step := 0; step < 5000; step++ {
		key := keys[rng.Intn(len(keys))]
		switch rng.Intn(3) {
		case 0:
			ttl := time.Duration(rng.Intn(20)) * time.Second // 0 = no expiry
			v := []byte(fmt.Sprintf("v%d", step))
			store.Set(key, v, ttl)
			e := expEntry{val: v}
			if ttl > 0 {
				e.expires = now.Add(ttl)
			}
			model[key] = e
		case 1:
			gotV, gotOK := store.Get(key)
			e, ok := model[key]
			wantOK := ok && (e.expires.IsZero() || !now.After(e.expires))
			if gotOK != wantOK {
				t.Fatalf("step %d: get(%q) ok=%v want %v (now=%v exp=%v)", step, key, gotOK, wantOK, now, e.expires)
			}
			if gotOK && string(gotV) != string(e.val) {
				t.Fatalf("step %d: value mismatch", step)
			}
		case 2:
			now = now.Add(time.Duration(rng.Intn(5)) * time.Second)
		}
	}
}
