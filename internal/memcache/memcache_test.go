package memcache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestGetAfterSet(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v"), 0)
	got, ok := s.Get("k")
	if !ok || string(got) != "v" {
		t.Fatalf("get=%q ok=%v", got, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("hit on missing key")
	}
}

func TestSetOverwrites(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v1"), 0)
	s.Set("k", []byte("v2"), 0)
	got, _ := s.Get("k")
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
	if s.Len() != 1 {
		t.Fatalf("len=%d", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := New(Config{})
	v := []byte("abc")
	s.Set("k", v, 0)
	v[0] = 'X' // mutating the caller's slice must not affect the store
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatalf("store aliased caller slice: %q", got)
	}
	got[0] = 'Y' // mutating the returned slice must not affect the store
	got2, _ := s.Get("k")
	if string(got2) != "abc" {
		t.Fatalf("get aliased store slice: %q", got2)
	}
}

func TestDelete(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v"), 0)
	if !s.Delete("k") {
		t.Fatal("delete missed present key")
	}
	if s.Delete("k") {
		t.Fatal("delete hit absent key")
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("get after delete hit")
	}
}

func TestAddReplaceSemantics(t *testing.T) {
	s := New(Config{})
	if err := s.Add("k", []byte("v1"), 0); err != nil {
		t.Fatalf("add to empty: %v", err)
	}
	if err := s.Add("k", []byte("v2"), 0); err != ErrNotStored {
		t.Fatalf("add to present: %v", err)
	}
	if err := s.Replace("k", []byte("v3"), 0); err != nil {
		t.Fatalf("replace present: %v", err)
	}
	if err := s.Replace("nope", []byte("v"), 0); err != ErrNotStored {
		t.Fatalf("replace absent: %v", err)
	}
	got, _ := s.Get("k")
	if string(got) != "v3" {
		t.Fatalf("got %q", got)
	}
}

func TestCASSemantics(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v1"), 0)
	_, cas, ok := s.Gets("k")
	if !ok {
		t.Fatal("gets missed")
	}
	if err := s.CAS("k", []byte("v2"), cas, 0); err != nil {
		t.Fatalf("cas with fresh token: %v", err)
	}
	// Stale token now conflicts.
	if err := s.CAS("k", []byte("v3"), cas, 0); err != ErrExists {
		t.Fatalf("stale cas: %v", err)
	}
	if err := s.CAS("missing", []byte("v"), cas, 0); err != ErrNotFound {
		t.Fatalf("cas on absent: %v", err)
	}
	got, _ := s.Get("k")
	if string(got) != "v2" {
		t.Fatalf("got %q", got)
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Config{Now: func() time.Time { return now }})
	s.Set("k", []byte("v"), time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("fresh item missed")
	}
	now = now.Add(2 * time.Second)
	if _, ok := s.Get("k"); ok {
		t.Fatal("expired item hit")
	}
	if s.Stats().Expired != 1 {
		t.Fatalf("expired=%d", s.Stats().Expired)
	}
}

func TestTouch(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Config{Now: func() time.Time { return now }})
	s.Set("k", []byte("v"), time.Second)
	if err := s.Touch("k", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	now = now.Add(5 * time.Second)
	if _, ok := s.Get("k"); !ok {
		t.Fatal("touched item expired early")
	}
	if err := s.Touch("missing", time.Second); err != ErrNotFound {
		t.Fatalf("touch absent: %v", err)
	}
}

func TestIncrDecr(t *testing.T) {
	s := New(Config{})
	s.Set("n", []byte("10"), 0)
	if v, err := s.Incr("n", 5); err != nil || v != 15 {
		t.Fatalf("incr: %d %v", v, err)
	}
	if v, err := s.Decr("n", 20); err != nil || v != 0 {
		t.Fatalf("decr clamps at zero: %d %v", v, err)
	}
	if _, err := s.Incr("missing", 1); err != ErrNotFound {
		t.Fatalf("incr absent: %v", err)
	}
	s.Set("txt", []byte("abc"), 0)
	if _, err := s.Incr("txt", 1); err != ErrNotNumeric {
		t.Fatalf("incr non-numeric: %v", err)
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	// Single shard so the LRU order is global and deterministic.
	s := New(Config{MaxBytes: 10 * (64 + 4 + 8), Shards: 1})
	for i := 0; i < 20; i++ {
		s.Set(fmt.Sprintf("key%d", i), make([]byte, 8), 0)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under byte pressure")
	}
	if st.Bytes > 10*(64+4+8) {
		t.Fatalf("bytes=%d exceeds budget", st.Bytes)
	}
	// The most recently set key must have survived.
	if _, ok := s.Get("key19"); !ok {
		t.Fatal("most recent key evicted")
	}
	// The oldest key must be gone.
	if _, ok := s.Get("key0"); ok {
		t.Fatal("oldest key survived past budget")
	}
}

func TestLRURecencyOnGet(t *testing.T) {
	s := New(Config{MaxBytes: 3 * (64 + 1 + 4), Shards: 1})
	s.Set("a", []byte("1234"), 0)
	s.Set("b", []byte("1234"), 0)
	s.Set("c", []byte("1234"), 0)
	s.Get("a") // refresh a
	s.Set("d", []byte("1234"), 0)
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently read key evicted")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("least recently used key survived")
	}
}

func TestFlush(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("k%d", i), []byte("v"), 0)
	}
	s.Flush()
	if s.Len() != 0 {
		t.Fatalf("len after flush=%d", s.Len())
	}
	if st := s.Stats(); st.Bytes != 0 || st.Items != 0 {
		t.Fatalf("stats after flush=%+v", st)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(Config{})
	s.Set("k", []byte("v"), 0)
	s.Get("k")
	s.Get("k")
	s.Get("missing")
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Items != 1 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	s := New(Config{MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%100)
				switch i % 4 {
				case 0:
					s.Set(key, []byte(fmt.Sprintf("g%d-%d", g, i)), 0)
				case 1:
					s.Get(key)
				case 2:
					s.Delete(key)
				case 3:
					s.Gets(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: get-after-set always returns the set value (no TTL, no budget).
func TestQuickGetAfterSet(t *testing.T) {
	s := New(Config{})
	f := func(key string, value []byte) bool {
		s.Set(key, value, 0)
		got, ok := s.Get(key)
		if !ok || len(got) != len(value) {
			return false
		}
		for i := range value {
			if got[i] != value[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the store never exceeds its byte budget.
func TestQuickBudgetInvariant(t *testing.T) {
	const budget = 32 << 10
	s := New(Config{MaxBytes: budget, Shards: 4})
	f := func(key string, value []byte) bool {
		if len(value) > 1024 {
			value = value[:1024]
		}
		s.Set(key, value, 0)
		return s.Stats().Bytes <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGetHit(b *testing.B) {
	s := New(Config{})
	s.Set("bench-key", make([]byte, 128), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get("bench-key")
	}
}

func BenchmarkSet(b *testing.B) {
	s := New(Config{})
	val := make([]byte, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set("bench-key", val, 0)
	}
}

func BenchmarkConcurrentGet(b *testing.B) {
	s := New(Config{})
	for i := 0; i < 1000; i++ {
		s.Set(fmt.Sprintf("k%d", i), make([]byte, 64), 0)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.Get(fmt.Sprintf("k%d", i%1000))
			i++
		}
	})
}
