package memcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded adjustable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestSweeperReclaimsExpired(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1000, 0)}
	s := New(Config{Now: clock.Now})
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("ttl-%d", i), []byte("v"), time.Second)
	}
	for i := 0; i < 20; i++ {
		s.Set(fmt.Sprintf("forever-%d", i), []byte("v"), 0)
	}
	sw := s.StartSweeper(20 * time.Millisecond)
	defer sw.Stop()

	clock.Advance(5 * time.Second)
	// Wait for at least two sweep passes without any Get traffic.
	deadline := time.Now().Add(5 * time.Second)
	for sw.Passes() < 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.Len(); got != 20 {
		t.Fatalf("len=%d want 20 (expired items not swept)", got)
	}
	if st := s.Stats(); st.Expired != 100 {
		t.Fatalf("expired=%d want 100", st.Expired)
	}
	// Unexpired items untouched.
	if _, ok := s.Get("forever-0"); !ok {
		t.Fatal("sweeper removed a live item")
	}
}

func TestSweeperStopIdempotentAndHaltsWork(t *testing.T) {
	s := New(Config{})
	sw := s.StartSweeper(5 * time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	sw.Stop()
	sw.Stop() // idempotent
	n := sw.Passes()
	time.Sleep(30 * time.Millisecond)
	if sw.Passes() != n {
		t.Fatal("sweeper kept running after Stop")
	}
}

func TestSweeperConcurrentWithTraffic(t *testing.T) {
	clock := &fakeClock{now: time.Unix(0, 0)}
	s := New(Config{Now: clock.Now})
	sw := s.StartSweeper(2 * time.Millisecond)
	defer sw.Stop()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d-%d", g, i%50)
				s.Set(key, []byte("v"), time.Duration(i%3)*time.Second)
				s.Get(key)
				if i%100 == 0 {
					clock.Advance(time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
}
