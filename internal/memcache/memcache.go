// Package memcache is an in-memory key-value store with memcached
// semantics: sharded hash tables, per-shard LRU eviction under a byte
// budget, optional TTL expiry, and the classic command set (get/gets, set,
// add, replace, cas, delete, incr/decr, flush).  Router's leaf microservice
// wraps one Store behind an RPC interface, exactly as the paper wraps a
// memcached server process.
package memcache

import (
	"container/list"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Errors mirroring memcached's protocol-level responses.
var (
	// ErrNotFound reports a miss on an operation requiring presence.
	ErrNotFound = errors.New("memcache: key not found")
	// ErrExists reports a CAS conflict (item modified since Gets).
	ErrExists = errors.New("memcache: cas conflict")
	// ErrNotStored reports an Add on a present key or Replace on absent.
	ErrNotStored = errors.New("memcache: not stored")
	// ErrNotNumeric reports Incr/Decr on a non-numeric value.
	ErrNotNumeric = errors.New("memcache: value is not a number")
)

// Config parameterizes a Store.
type Config struct {
	// MaxBytes bounds total value+key bytes; 0 means unlimited.  The
	// budget is divided evenly across shards.
	MaxBytes int64
	// Shards is the number of independent lock domains (default 16).
	Shards int
	// Now supplies time (tests inject a fake clock); default time.Now.
	Now func() time.Time
}

// Stats are cumulative operation counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Expired   uint64
	Items     int64
	Bytes     int64
}

// Store is the concurrent KV store.
type Store struct {
	shards []*shard
	now    func() time.Time

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	expired   atomic.Uint64
	casSeq    atomic.Uint64
}

type entry struct {
	key     string
	value   []byte
	expires time.Time // zero = never
	casID   uint64
	elem    *list.Element
}

type shard struct {
	mu       sync.Mutex
	items    map[string]*entry
	lru      *list.List // front = most recent
	bytes    int64
	maxBytes int64
}

// New creates a Store.
func New(cfg Config) *Store {
	nShards := cfg.Shards
	if nShards <= 0 {
		nShards = 16
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	s := &Store{shards: make([]*shard, nShards), now: now}
	perShard := int64(0)
	if cfg.MaxBytes > 0 {
		perShard = cfg.MaxBytes / int64(nShards)
		if perShard < 1 {
			perShard = 1
		}
	}
	for i := range s.shards {
		s.shards[i] = &shard{
			items:    make(map[string]*entry),
			lru:      list.New(),
			maxBytes: perShard,
		}
	}
	return s
}

// fnv1a is the shard-selection hash (key distribution only; Router's
// leaf-selection hash is SpookyHash at the mid-tier).
func fnv1a(key string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime
	}
	return h
}

func (s *Store) shardFor(key string) *shard {
	return s.shards[fnv1a(key)%uint64(len(s.shards))]
}

func entrySize(key string, value []byte) int64 {
	return int64(len(key) + len(value) + 64) // 64 ≈ bookkeeping overhead
}

// expired reports whether e is past its TTL at time t.
func (e *entry) expiredAt(t time.Time) bool {
	return !e.expires.IsZero() && t.After(e.expires)
}

// removeLocked drops e from the shard (lock held).
func (sh *shard) removeLocked(e *entry) {
	delete(sh.items, e.key)
	sh.lru.Remove(e.elem)
	sh.bytes -= entrySize(e.key, e.value)
}

// lookupLocked finds a live entry, expiring it lazily (lock held).
func (s *Store) lookupLocked(sh *shard, key string) *entry {
	e, ok := sh.items[key]
	if !ok {
		return nil
	}
	if e.expiredAt(s.now()) {
		sh.removeLocked(e)
		s.expired.Add(1)
		return nil
	}
	return e
}

// storeLocked inserts or replaces key (lock held), evicting LRU entries as
// needed to stay under the shard byte budget.
func (s *Store) storeLocked(sh *shard, key string, value []byte, ttl time.Duration) *entry {
	if old, ok := sh.items[key]; ok {
		sh.removeLocked(old)
	}
	e := &entry{key: key, value: value, casID: s.casSeq.Add(1)}
	if ttl > 0 {
		e.expires = s.now().Add(ttl)
	}
	e.elem = sh.lru.PushFront(e)
	sh.items[key] = e
	sh.bytes += entrySize(key, value)

	if sh.maxBytes > 0 {
		for sh.bytes > sh.maxBytes && sh.lru.Len() > 1 {
			victim := sh.lru.Back().Value.(*entry)
			sh.removeLocked(victim)
			s.evictions.Add(1)
		}
	}
	return e
}

// Get returns the value for key, updating recency.
func (s *Store) Get(key string) ([]byte, bool) {
	v, _, ok := s.Gets(key)
	return v, ok
}

// Gets returns the value and CAS token for key.
func (s *Store) Gets(key string) ([]byte, uint64, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e := s.lookupLocked(sh, key)
	if e == nil {
		sh.mu.Unlock()
		s.misses.Add(1)
		return nil, 0, false
	}
	sh.lru.MoveToFront(e.elem)
	val := make([]byte, len(e.value))
	copy(val, e.value)
	cas := e.casID
	sh.mu.Unlock()
	s.hits.Add(1)
	return val, cas, true
}

// View invokes visit with key's live value while holding the shard lock —
// the zero-copy read Router's leaf uses to stream a value straight into a
// reply encoder.  The slice is valid only during visit and must not be
// retained or modified.  Recency and hit/miss accounting match Get.
func (s *Store) View(key string, visit func(value []byte)) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e := s.lookupLocked(sh, key)
	if e == nil {
		sh.mu.Unlock()
		s.misses.Add(1)
		return false
	}
	sh.lru.MoveToFront(e.elem)
	visit(e.value)
	sh.mu.Unlock()
	s.hits.Add(1)
	return true
}

// Set unconditionally stores key=value with optional TTL (0 = no expiry).
func (s *Store) Set(key string, value []byte, ttl time.Duration) {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	s.storeLocked(sh, key, v, ttl)
	sh.mu.Unlock()
}

// Add stores only if key is absent.
func (s *Store) Add(key string, value []byte, ttl time.Duration) error {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.lookupLocked(sh, key) != nil {
		return ErrNotStored
	}
	s.storeLocked(sh, key, v, ttl)
	return nil
}

// Replace stores only if key is present.
func (s *Store) Replace(key string, value []byte, ttl time.Duration) error {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s.lookupLocked(sh, key) == nil {
		return ErrNotStored
	}
	s.storeLocked(sh, key, v, ttl)
	return nil
}

// CAS stores only if the item is unmodified since the Gets that returned
// casID.
func (s *Store) CAS(key string, value []byte, casID uint64, ttl time.Duration) error {
	v := make([]byte, len(value))
	copy(v, value)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := s.lookupLocked(sh, key)
	if e == nil {
		return ErrNotFound
	}
	if e.casID != casID {
		return ErrExists
	}
	s.storeLocked(sh, key, v, ttl)
	return nil
}

// Delete removes key, reporting whether it was present.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := s.lookupLocked(sh, key)
	if e == nil {
		return false
	}
	sh.removeLocked(e)
	return true
}

// Incr adds delta to a numeric value, returning the new value.  Like
// memcached, the value is an unsigned decimal string and Incr wraps.
func (s *Store) Incr(key string, delta uint64) (uint64, error) {
	return s.addDelta(key, delta, false)
}

// Decr subtracts delta, clamping at zero as memcached does.
func (s *Store) Decr(key string, delta uint64) (uint64, error) {
	return s.addDelta(key, delta, true)
}

func (s *Store) addDelta(key string, delta uint64, negative bool) (uint64, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := s.lookupLocked(sh, key)
	if e == nil {
		return 0, ErrNotFound
	}
	n, err := strconv.ParseUint(string(e.value), 10, 64)
	if err != nil {
		return 0, ErrNotNumeric
	}
	if negative {
		if delta > n {
			n = 0
		} else {
			n -= delta
		}
	} else {
		n += delta
	}
	newVal := []byte(strconv.FormatUint(n, 10))
	sh.bytes += int64(len(newVal) - len(e.value))
	e.value = newVal
	e.casID = s.casSeq.Add(1)
	sh.lru.MoveToFront(e.elem)
	return n, nil
}

// Touch updates a key's TTL without reading it.
func (s *Store) Touch(key string, ttl time.Duration) error {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := s.lookupLocked(sh, key)
	if e == nil {
		return ErrNotFound
	}
	if ttl > 0 {
		e.expires = s.now().Add(ttl)
	} else {
		e.expires = time.Time{}
	}
	return nil
}

// Flush removes every item.
func (s *Store) Flush() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.items = make(map[string]*entry)
		sh.lru.Init()
		sh.bytes = 0
		sh.mu.Unlock()
	}
}

// Len reports the number of live items (expired items may be counted until
// lazily collected).
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns cumulative counters and current occupancy.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Evictions: s.evictions.Load(),
		Expired:   s.expired.Load(),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Items += int64(len(sh.items))
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}
