package memcache

import (
	"sync"
	"time"
)

// Sweeper proactively removes expired items in the background, like
// memcached's LRU-crawler thread.  Without it, expired items are reclaimed
// only lazily on access, so a store full of written-once keys can hold dead
// memory indefinitely.
type Sweeper struct {
	store    *Store
	interval time.Duration

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
	passes   sync.Mutex // guards passCount against concurrent readers
	passN    uint64
}

// StartSweeper launches a background sweep of the whole store every
// interval (default 1s).  Call Stop to halt it.
func (s *Store) StartSweeper(interval time.Duration) *Sweeper {
	if interval <= 0 {
		interval = time.Second
	}
	sw := &Sweeper{
		store:    s,
		interval: interval,
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	go sw.run()
	return sw
}

// Stop halts the sweeper and waits for the current pass to finish.
func (sw *Sweeper) Stop() {
	sw.stopOnce.Do(func() { close(sw.stopCh) })
	<-sw.doneCh
}

// Passes reports how many full sweeps have completed.
func (sw *Sweeper) Passes() uint64 {
	sw.passes.Lock()
	defer sw.passes.Unlock()
	return sw.passN
}

func (sw *Sweeper) run() {
	defer close(sw.doneCh)
	ticker := time.NewTicker(sw.interval)
	defer ticker.Stop()
	for {
		select {
		case <-sw.stopCh:
			return
		case <-ticker.C:
			sw.sweepOnce()
			sw.passes.Lock()
			sw.passN++
			sw.passes.Unlock()
		}
	}
}

// sweepOnce scans every shard, removing expired entries.  Each shard is
// locked only for its own scan, bounding the pause any one operation sees.
func (sw *Sweeper) sweepOnce() {
	now := sw.store.now()
	for _, sh := range sw.store.shards {
		sh.mu.Lock()
		var victims []*entry
		for _, e := range sh.items {
			if e.expiredAt(now) {
				victims = append(victims, e)
			}
		}
		for _, e := range victims {
			sh.removeLocked(e)
			sw.store.expired.Add(1)
		}
		sh.mu.Unlock()
	}
}
