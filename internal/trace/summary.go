package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Summary aggregates a set of traces for reporting: how many reassembled
// into connected trees, the end-to-end latency they recorded, and the mean
// critical-path breakdown — where the end-to-end time was actually spent,
// charged per span name so hedged attempts, retries, and leaf compute each
// show their own line.
type Summary struct {
	Traces    int
	Connected int
	Spans     int
	// MeanEndToEnd / MaxEndToEnd cover connected traces only.
	MeanEndToEnd time.Duration
	MaxEndToEnd  time.Duration
	// Breakdown holds the mean critical-path self time per trace, grouped
	// by (kind, name), largest share first.  Shares sum to 1 because the
	// critical path partitions each root span exactly.
	Breakdown []BreakdownRow
}

// BreakdownRow is one critical-path line of a Summary.
type BreakdownRow struct {
	Name  string
	Kind  string
	Mean  time.Duration
	Share float64
}

// Summarize reduces built trees to a Summary.  Disconnected trees count
// toward Traces and Spans but contribute no latency or breakdown.
func Summarize(trees []*Tree) Summary {
	var sm Summary
	sm.Traces = len(trees)
	type accum struct {
		row  BreakdownRow
		self time.Duration
	}
	bySeg := make(map[string]*accum)
	var total time.Duration
	for _, t := range trees {
		sm.Spans += len(t.Spans)
		if !t.Connected() {
			continue
		}
		sm.Connected++
		e2e := t.EndToEnd()
		total += e2e
		if e2e > sm.MaxEndToEnd {
			sm.MaxEndToEnd = e2e
		}
		for _, seg := range t.CriticalPath() {
			key := seg.Kind + " " + seg.Name
			a := bySeg[key]
			if a == nil {
				a = &accum{row: BreakdownRow{Name: seg.Name, Kind: seg.Kind}}
				bySeg[key] = a
			}
			a.self += seg.Self
		}
	}
	if sm.Connected == 0 {
		return sm
	}
	sm.MeanEndToEnd = total / time.Duration(sm.Connected)
	for _, a := range bySeg {
		a.row.Mean = a.self / time.Duration(sm.Connected)
		if total > 0 {
			a.row.Share = float64(a.self) / float64(total)
		}
		sm.Breakdown = append(sm.Breakdown, a.row)
	}
	sort.Slice(sm.Breakdown, func(i, j int) bool {
		a, b := &sm.Breakdown[i], &sm.Breakdown[j]
		if a.Share != b.Share {
			return a.Share > b.Share
		}
		return a.Kind+a.Name < b.Kind+b.Name
	})
	return sm
}

// String renders the summary as a small report.
func (sm Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d traces (%d connected), %d spans\n", sm.Traces, sm.Connected, sm.Spans)
	if sm.Connected == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "end-to-end latency: mean %v, max %v\n",
		sm.MeanEndToEnd.Round(time.Microsecond), sm.MaxEndToEnd.Round(time.Microsecond))
	fmt.Fprintf(&b, "critical path (mean self time per trace):\n")
	for _, row := range sm.Breakdown {
		fmt.Fprintf(&b, "  %5.1f%%  %10v  %-6s  %s\n",
			row.Share*100, row.Mean.Round(time.Nanosecond), row.Kind, row.Name)
	}
	return b.String()
}
