package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a fixed span set covering every exported field: two
// traces, both kinds, notes, errors, and out-of-order input (WriteSpans
// must sort deterministically).
func goldenSpans() []Span {
	return []Span{
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x2, ParentID: 0x1,
			Name: "hdsearch.leafknn", Kind: KindClient, Service: "hdsearch-mid",
			Start: 1700000000000001000, Duration: 250000,
			Notes: []string{"hedge", "abandoned", "shard=1"}},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x1,
			Name: "hdsearch.search", Kind: KindClient, Service: "loadgen",
			Start: 1700000000000000000, Duration: 1000000},
		{TraceID: 0xdeadbeefcafef00d, SpanID: 0x3, ParentID: 0x1,
			Name: "hdsearch.search", Kind: KindServer, Service: "hdsearch-mid",
			Start: 1700000000000050000, Duration: 800000,
			Notes: []string{"queue=10µs", "compute=79µs"}},
		{TraceID: 0x0123456789abcdef, SpanID: 0x4,
			Name: "router.get", Kind: KindServer, Service: "router-leaf",
			Start: 1699999999999000000, Duration: 42000, Err: "shed"},
	}
}

// TestGoldenExport pins the export format byte-for-byte against a committed
// fixture: field names, hex IDs, integer timestamps, and sort order are all
// compatibility surface — replayers and external tooling parse these files,
// so any byte difference here is a format break, not a refactor.
func TestGoldenExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.jsonl")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("export format drifted from golden fixture (run with -update only for a deliberate format change)\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Round trip: the fixture decodes, and re-encoding the decoded spans
	// reproduces the fixture exactly.
	decoded, err := ReadSpans(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(goldenSpans()) {
		t.Fatalf("decoded %d spans, want %d", len(decoded), len(goldenSpans()))
	}
	var again bytes.Buffer
	if err := WriteSpans(&again, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatalf("re-encode of decoded fixture differs:\n%s", again.Bytes())
	}
}

// TestDecodeIgnoresUnknownFields pins forward compatibility: later format
// revisions may ADD fields, and current readers must skip them.
func TestDecodeIgnoresUnknownFields(t *testing.T) {
	line := `{"trace":"00000000000000aa","span":"00000000000000bb","name":"x","start":5,"dur":7,"future_field":"ignore me","another":[1,2,3]}`
	s, err := DecodeSpan([]byte(line))
	if err != nil {
		t.Fatalf("unknown fields rejected: %v", err)
	}
	if s.TraceID != 0xaa || s.SpanID != 0xbb || s.Name != "x" || s.Start != 5 || s.Duration != 7 {
		t.Fatalf("decoded %+v", s)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		`{`,
		`{}`,
		`{"trace":"0000000000000001","name":"x","start":1,"dur":1}`,                            // no span id
		`{"trace":"0000000000000001","span":"0000000000000002","start":1,"dur":1}`,             // no name
		`{"trace":"0000000000000001","span":"0000000000000002","name":"x","start":1,"dur":-1}`, // negative duration
		`{"trace":"zzzz","span":"0000000000000002","name":"x","start":1,"dur":1}`,              // bad hex id
		`{"trace":"0000000000000000","span":"0000000000000002","name":"x","start":1,"dur":1}`,  // zero trace id
	} {
		if _, err := DecodeSpan([]byte(line)); err == nil {
			t.Errorf("malformed line accepted: %s", line)
		}
	}
}

// TestReadSpansReportsLineNumbers checks a malformed mid-stream line aborts
// the import with its position.
func TestReadSpansReportsLineNumbers(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, goldenSpans()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\nnot json\n")
	_, err := ReadSpans(&buf)
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("err = %v, want line-6 position", err)
	}
}

// FuzzTraceDecode fuzzes the span-line decoder: any line that decodes must
// survive an encode/decode round trip unchanged, and no input may panic.
func FuzzTraceDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteSpans(&buf, goldenSpans()); err != nil {
		f.Fatal(err)
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) > 0 {
			f.Add(line)
		}
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"trace":12,"span":34,"name":"n","start":1,"dur":0}`)) // decimal IDs
	f.Add([]byte(`{"trace":"0", "span":"1","name":"x","start":-1,"dur":1,"notes":[""]}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		s, err := DecodeSpan(line)
		if err != nil {
			return
		}
		b, err := json.Marshal(&s)
		if err != nil {
			t.Fatalf("decoded span does not re-marshal: %v", err)
		}
		s2, err := DecodeSpan(b)
		if err != nil {
			t.Fatalf("re-decode of %s failed: %v", b, err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed span:\n%+v\n%+v", s, s2)
		}
	})
}
