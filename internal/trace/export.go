package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// JSONL trace export/import.  One span per line, stable field names, IDs as
// 16-hex-digit strings, timestamps as integer Unix nanoseconds.  Decoding
// ignores unknown fields, so the format is forward compatible: fields may
// be ADDED in later revisions, never renamed or removed — the golden-file
// test in export_test.go pins that contract.

// maxExportLine bounds one encoded span line on import.
const maxExportLine = 1 << 20

// WriteSpans encodes spans as JSONL onto w, ordered by (trace, start, span)
// so exports are deterministic given the same span set.
func WriteSpans(w io.Writer, spans []Span) error {
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := &ordered[i], &ordered[j]
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.SpanID < b.SpanID
	})
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range ordered {
		if err := enc.Encode(&ordered[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes spans as JSONL to path.
func WriteFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSpans(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DecodeSpan decodes and validates one exported span line.
func DecodeSpan(line []byte) (Span, error) {
	var s Span
	dec := json.NewDecoder(bytes.NewReader(line))
	if err := dec.Decode(&s); err != nil {
		return Span{}, err
	}
	if err := s.validate(); err != nil {
		return Span{}, err
	}
	if len(s.Notes) == 0 {
		// A present-but-empty notes array and an absent one are the same
		// span; normalize so decode→encode→decode is an exact round trip
		// (omitempty drops the empty slice on re-encode).
		s.Notes = nil
	}
	return s, nil
}

func (s *Span) validate() error {
	switch {
	case s.TraceID == 0:
		return fmt.Errorf("trace: span missing trace id")
	case s.SpanID == 0:
		return fmt.Errorf("trace: span missing span id")
	case s.Name == "":
		return fmt.Errorf("trace: span missing name")
	case s.Duration < 0:
		return fmt.Errorf("trace: span %016x has negative duration", uint64(s.SpanID))
	}
	return nil
}

// FlushFile writes r's recorded spans to path.  A nil recorder or empty
// path is a no-op, so service mains can call it unconditionally on shutdown.
func FlushFile(path string, r *Recorder) error {
	if r == nil || path == "" {
		return nil
	}
	return WriteFile(path, r.Snapshot())
}

// ReadSpans decodes a JSONL span stream.  Blank lines are skipped; any
// malformed line aborts with its line number.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxExportLine)
	var spans []Span
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		s, err := DecodeSpan(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineno, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// ReadFile reads a JSONL span file.
func ReadFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spans, err := ReadSpans(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spans, nil
}
