package trace

import (
	"sort"
	"time"
)

// Span trees and critical-path extraction.  A trace's spans reassemble into
// a tree by parent links; the critical path walks that tree backward from
// the root's finish, always descending into the child whose window bounded
// the parent's completion.  Each on-path span is charged only its self time
// — the part of its window no on-path child covers — so the per-segment
// costs partition the root's duration exactly: their sum equals the
// recorded end-to-end latency by construction, which is the invariant the
// CI smoke asserts.

// Node is one span with its resolved children.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree is every span of one trace, linked.
type Tree struct {
	TraceID ID
	Spans   []Span
	// Roots holds every parentless node: exactly one for a connected trace;
	// orphans (spans whose recorded parent is missing) surface here too.
	Roots []*Node
}

// Root returns the tree's single root when it is connected, else nil.
func (t *Tree) Root() *Node {
	if len(t.Roots) != 1 {
		return nil
	}
	return t.Roots[0]
}

// Connected reports whether the trace forms one well-rooted tree: a single
// parentless root that really is a root (ParentID zero), with every other
// span reachable from it.
func (t *Tree) Connected() bool {
	if len(t.Roots) != 1 || t.Roots[0].Span.ParentID != 0 {
		return false
	}
	return t.reachable(t.Roots[0]) == len(t.Spans)
}

// reachable counts nodes in the subtree under n, guarding against cycles a
// malformed import could introduce.
func (t *Tree) reachable(n *Node) int {
	seen := make(map[ID]bool, len(t.Spans))
	var walk func(*Node) int
	walk = func(n *Node) int {
		if seen[n.Span.SpanID] {
			return 0
		}
		seen[n.Span.SpanID] = true
		total := 1
		for _, c := range n.Children {
			total += walk(c)
		}
		return total
	}
	return walk(n)
}

// EndToEnd is the root span's duration — the recorded end-to-end latency.
func (t *Tree) EndToEnd() time.Duration {
	r := t.Root()
	if r == nil {
		return 0
	}
	return time.Duration(r.Span.Duration)
}

// BuildTrees groups spans by trace ID and links each group into a Tree.
// Trees come back ordered by root start time (unrooted trees last).
func BuildTrees(spans []Span) []*Tree {
	byTrace := make(map[ID][]Span)
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	trees := make([]*Tree, 0, len(byTrace))
	for id, group := range byTrace {
		trees = append(trees, buildTree(id, group))
	}
	sort.Slice(trees, func(i, j int) bool {
		ri, rj := trees[i].Root(), trees[j].Root()
		if ri == nil || rj == nil {
			return rj == nil && ri != nil
		}
		if ri.Span.Start != rj.Span.Start {
			return ri.Span.Start < rj.Span.Start
		}
		return trees[i].TraceID < trees[j].TraceID
	})
	return trees
}

func buildTree(id ID, spans []Span) *Tree {
	t := &Tree{TraceID: id, Spans: spans}
	nodes := make(map[ID]*Node, len(spans))
	for i := range spans {
		s := spans[i]
		if prev, dup := nodes[s.SpanID]; dup {
			// Duplicate span ID (double-recorded): keep the first, drop the
			// rest so the tree stays a tree.
			_ = prev
			continue
		}
		nodes[s.SpanID] = &Node{Span: s}
	}
	for _, n := range nodes {
		p := n.Span.ParentID
		if p == 0 || p == n.Span.SpanID {
			t.Roots = append(t.Roots, n)
			continue
		}
		if parent, ok := nodes[p]; ok {
			parent.Children = append(parent.Children, n)
		} else {
			t.Roots = append(t.Roots, n) // orphan: recorded parent missing
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Span.Start < n.Children[j].Span.Start
		})
	}
	sort.Slice(t.Roots, func(i, j int) bool {
		return t.Roots[i].Span.Start < t.Roots[j].Span.Start
	})
	return t
}

// PathSegment is one span's contribution to the critical path: Self is the
// portion of the end-to-end latency attributable to this span alone.
type PathSegment struct {
	SpanID  ID
	Name    string
	Kind    string
	Service string
	Self    time.Duration
}

// CriticalPath extracts the chain of spans that bounded the root's
// completion, charging each its self time.  Segments appear root-first and
// their Self durations sum to exactly the root span's duration.  Returns
// nil for a tree without a single root.
func (t *Tree) CriticalPath() []PathSegment {
	r := t.Root()
	if r == nil {
		return nil
	}
	return appendCritical(nil, r, r.Span.Start, r.Span.End())
}

// appendCritical charges node n for [winStart, winEnd], descending into the
// children on the bounding chain.  Walking backward from winEnd: the child
// with the latest (clamped) end was what the parent last waited on; the gap
// between that child's end and the cursor is the parent's own work.
// Children are clamped to the window so a mis-stamped or overlapping child
// can never push the accounting outside the parent's envelope.
func appendCritical(segs []PathSegment, n *Node, winStart, winEnd int64) []PathSegment {
	type window struct {
		c      *Node
		ws, we int64
	}
	kids := make([]*Node, len(n.Children))
	copy(kids, n.Children)
	sort.Slice(kids, func(i, j int) bool { return kids[i].Span.End() > kids[j].Span.End() })

	cursor := winEnd
	self := int64(0)
	var chosen []window
	for _, c := range kids {
		if cursor <= winStart {
			break
		}
		cs, ce := c.Span.Start, c.Span.End()
		if ce > cursor {
			ce = cursor
		}
		if cs < winStart {
			cs = winStart
		}
		if ce <= cs {
			continue // entirely outside the remaining window
		}
		self += cursor - ce
		chosen = append(chosen, window{c, cs, ce})
		cursor = cs
	}
	if cursor > winStart {
		self += cursor - winStart
	}
	segs = append(segs, PathSegment{
		SpanID:  n.Span.SpanID,
		Name:    n.Span.Name,
		Kind:    n.Span.Kind,
		Service: n.Span.Service,
		Self:    time.Duration(self),
	})
	// chosen is ordered latest-first; recurse earliest-first so segments
	// read in chronological order under each parent.
	for i := len(chosen) - 1; i >= 0; i-- {
		w := chosen[i]
		segs = appendCritical(segs, w.c, w.ws, w.we)
	}
	return segs
}

// PathTotal sums a critical path's self times.
func PathTotal(segs []PathSegment) time.Duration {
	var total time.Duration
	for _, s := range segs {
		total += s.Self
	}
	return total
}

// ArrivalOffsets extracts the replay schedule from recorded spans: the
// start offsets of every root span, relative to the earliest, sorted.  This
// is the arrival process loadgen's replay mode reproduces.
func ArrivalOffsets(spans []Span) []time.Duration {
	var starts []int64
	for i := range spans {
		if spans[i].ParentID == 0 {
			starts = append(starts, spans[i].Start)
		}
	}
	if len(starts) == 0 {
		return nil
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]time.Duration, len(starts))
	for i, s := range starts {
		out[i] = time.Duration(s - starts[0])
	}
	return out
}
