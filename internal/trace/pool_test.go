package trace

import (
	"sync"
	"testing"
)

// TestPooledTraceResetOnReuse pins the reuse contract: a Trace recycled
// through the pool must come back with no stamps, because first-stamp-wins
// semantics would silently keep a previous request's timestamps otherwise.
func TestPooledTraceResetOnReuse(t *testing.T) {
	tr := NewTrace()
	tr.Stamp(StageArrival)
	tr.Stamp(StageReplySent)
	PutTrace(tr)
	// The pool need not hand the same pointer back immediately; cycling a
	// few times makes reuse overwhelmingly likely on one P.
	for i := 0; i < 64; i++ {
		tr2 := NewTrace()
		for s := Stage(0); s < numStages; s++ {
			if !tr2.At(s).IsZero() {
				t.Fatalf("pooled trace carried a stale %v stamp", s)
			}
		}
		tr2.Stamp(StageArrival)
		PutTrace(tr2)
	}
}

// TestTracePoolConcurrentReuse hammers get→stamp→breakdown→put from many
// goroutines; under -race this is the regression test for the pooled-Trace
// reuse hazard (a stamp landing after PutTrace would race the next
// occupant's Reset).
func TestTracePoolConcurrentReuse(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				tr := NewTrace()
				for s := Stage(0); s < numStages; s++ {
					if !tr.At(s).IsZero() {
						t.Error("dirty trace from pool")
						return
					}
				}
				for s := Stage(0); s < numStages; s++ {
					tr.Stamp(s)
				}
				if !tr.Breakdown().Complete {
					t.Error("freshly stamped trace incomplete")
					return
				}
				PutTrace(tr)
			}
		}()
	}
	wg.Wait()
}
