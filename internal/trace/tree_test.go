package trace

import (
	"testing"
	"time"
)

func mkSpan(tid, sid, pid uint64, name, kind string, start, dur int64) Span {
	return Span{TraceID: ID(tid), SpanID: ID(sid), ParentID: ID(pid),
		Name: name, Kind: kind, Start: start, Duration: dur}
}

func TestBuildTreesGroupsAndLinks(t *testing.T) {
	spans := []Span{
		mkSpan(1, 10, 0, "root", KindClient, 100, 50),
		mkSpan(1, 12, 10, "late-child", KindClient, 130, 10),
		mkSpan(1, 11, 10, "early-child", KindServer, 110, 30),
		mkSpan(2, 20, 0, "other", KindClient, 0, 5),
	}
	trees := BuildTrees(spans)
	if len(trees) != 2 {
		t.Fatalf("built %d trees, want 2", len(trees))
	}
	// Ordered by root start: trace 2 (start 0) first.
	if trees[0].TraceID != 2 || trees[1].TraceID != 1 {
		t.Fatalf("tree order: %x, %x", trees[0].TraceID, trees[1].TraceID)
	}
	tr := trees[1]
	if !tr.Connected() {
		t.Fatal("linked trace not connected")
	}
	root := tr.Root()
	if root.Span.Name != "root" || len(root.Children) != 2 {
		t.Fatalf("root %q with %d children", root.Span.Name, len(root.Children))
	}
	// Children sorted by start.
	if root.Children[0].Span.Name != "early-child" || root.Children[1].Span.Name != "late-child" {
		t.Fatalf("children out of order: %q, %q", root.Children[0].Span.Name, root.Children[1].Span.Name)
	}
	if tr.EndToEnd() != 50 {
		t.Fatalf("end-to-end %v, want 50ns", tr.EndToEnd())
	}
}

func TestOrphanBreaksConnectivity(t *testing.T) {
	spans := []Span{
		mkSpan(1, 10, 0, "root", KindClient, 0, 100),
		mkSpan(1, 11, 99, "orphan", KindServer, 10, 20), // parent 99 never recorded
	}
	tr := BuildTrees(spans)[0]
	if tr.Connected() {
		t.Fatal("trace with an orphan reported connected")
	}
	if len(tr.Roots) != 2 {
		t.Fatalf("%d roots, want root + orphan", len(tr.Roots))
	}
	if tr.Root() != nil {
		t.Fatal("Root() resolved on a multi-rooted tree")
	}
	if tr.CriticalPath() != nil {
		t.Fatal("critical path extracted from a disconnected tree")
	}
}

// TestCriticalPathPartitionsRoot hand-builds overlapping children and checks
// each on-path span is charged exactly its uncovered self time, with the
// segment sum equal to the root duration.
func TestCriticalPathPartitionsRoot(t *testing.T) {
	spans := []Span{
		mkSpan(1, 1, 0, "root", KindClient, 0, 100),
		mkSpan(1, 2, 1, "c1", KindClient, 10, 30), // 10..40, overlaps c2
		mkSpan(1, 3, 1, "c2", KindClient, 30, 50), // 30..80
		mkSpan(1, 4, 3, "gc", KindServer, 35, 35), // 35..70 under c2
	}
	tr := BuildTrees(spans)[0]
	path := tr.CriticalPath()
	if got, want := PathTotal(path), tr.EndToEnd(); got != want {
		t.Fatalf("path total %v != end-to-end %v", got, want)
	}
	self := map[string]time.Duration{}
	for _, seg := range path {
		self[seg.Name] += seg.Self
	}
	// Walking back from 100: root owns 100-80 and 10-0 (c1's tail is covered
	// by c2's window clamp); c2 owns 80-70 and 35-30; gc owns its full 35;
	// c1 owns its clamped 10..30 window.
	want := map[string]time.Duration{"root": 30, "c2": 15, "gc": 35, "c1": 20}
	for name, d := range want {
		if self[name] != d {
			t.Fatalf("%s charged %v, want %v (path: %+v)", name, self[name], d, path)
		}
	}
	if path[0].Name != "root" {
		t.Fatalf("path starts at %q, want root first", path[0].Name)
	}
}

// TestCriticalPathClampsMisStampedChild checks a child recorded beyond its
// parent's envelope cannot push the accounting outside the root window.
func TestCriticalPathClampsMisStampedChild(t *testing.T) {
	spans := []Span{
		mkSpan(1, 1, 0, "root", KindClient, 0, 100),
		mkSpan(1, 2, 1, "overrun", KindClient, 50, 500), // ends far past root
	}
	tr := BuildTrees(spans)[0]
	path := tr.CriticalPath()
	if got, want := PathTotal(path), tr.EndToEnd(); got != want {
		t.Fatalf("path total %v != end-to-end %v with an overrunning child", got, want)
	}
	for _, seg := range path {
		if seg.Name == "overrun" && seg.Self != 50 {
			t.Fatalf("overrunning child charged %v, want 50ns (clamped)", seg.Self)
		}
	}
}

func TestArrivalOffsets(t *testing.T) {
	spans := []Span{
		mkSpan(1, 1, 0, "a", KindClient, 150, 10),
		mkSpan(2, 2, 0, "b", KindClient, 50, 10),
		mkSpan(2, 3, 2, "child", KindServer, 60, 5), // not a root: ignored
		mkSpan(3, 4, 0, "c", KindClient, 100, 10),
	}
	got := ArrivalOffsets(spans)
	want := []time.Duration{0, 50, 100}
	if len(got) != len(want) {
		t.Fatalf("offsets %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("offsets %v, want %v", got, want)
		}
	}
	if ArrivalOffsets(nil) != nil {
		t.Fatal("offsets of no spans")
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		mkSpan(1, 1, 0, "root", KindClient, 0, 100),
		mkSpan(1, 2, 1, "c", KindServer, 20, 60),
		mkSpan(2, 3, 0, "root", KindClient, 10, 200),
		mkSpan(2, 4, 1, "dangling", KindServer, 20, 60), // parent in another trace: orphan
	}
	sm := Summarize(BuildTrees(spans))
	if sm.Traces != 2 || sm.Connected != 1 || sm.Spans != 4 {
		t.Fatalf("summary %+v", sm)
	}
	if sm.MeanEndToEnd != 100 || sm.MaxEndToEnd != 100 {
		t.Fatalf("latency stats %v / %v from the single connected trace", sm.MeanEndToEnd, sm.MaxEndToEnd)
	}
	var share float64
	for _, row := range sm.Breakdown {
		share += row.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("breakdown shares sum to %v, want 1", share)
	}
	if sm.String() == "" {
		t.Fatal("empty summary render")
	}
}
