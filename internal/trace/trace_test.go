package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStampFirstWins(t *testing.T) {
	tr := &Trace{}
	early := time.Now()
	tr.StampAt(StageArrival, early)
	tr.StampAt(StageArrival, early.Add(time.Hour))
	if !tr.At(StageArrival).Equal(early) {
		t.Fatal("second stamp overwrote first")
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Stamp(StageArrival)
	tr.StampAt(StageReplySent, time.Now())
	if !tr.At(StageArrival).IsZero() {
		t.Fatal("nil trace returned a time")
	}
	b := tr.Breakdown()
	if b.Total != 0 || b.Complete {
		t.Fatalf("nil breakdown: %+v", b)
	}
}

func TestOutOfRangeStageIgnored(t *testing.T) {
	tr := &Trace{}
	tr.Stamp(Stage(-1))
	tr.Stamp(Stage(99))
	// Reaching here without panic is the property.
	if Stage(99).String() == "" || StageArrival.String() != "arrival" {
		t.Fatal("stage names wrong")
	}
}

func TestBreakdownSegments(t *testing.T) {
	base := time.Now()
	tr := &Trace{}
	tr.StampAt(StageArrival, base)
	tr.StampAt(StageEnqueued, base.Add(1*time.Microsecond))
	tr.StampAt(StageWorkerStart, base.Add(11*time.Microsecond))
	tr.StampAt(StageFanoutIssued, base.Add(31*time.Microsecond))
	tr.StampAt(StageLastLeafResponse, base.Add(131*time.Microsecond))
	tr.StampAt(StageReplySent, base.Add(141*time.Microsecond))
	b := tr.Breakdown()
	if !b.Complete {
		t.Fatal("complete trace reported incomplete")
	}
	if b.Handoff != 1*time.Microsecond || b.Queue != 10*time.Microsecond ||
		b.Compute != 20*time.Microsecond || b.LeafWait != 100*time.Microsecond ||
		b.Merge != 10*time.Microsecond || b.Total != 141*time.Microsecond {
		t.Fatalf("breakdown: %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty breakdown string")
	}
}

func TestBreakdownIncompleteAndNegativeClamped(t *testing.T) {
	base := time.Now()
	tr := &Trace{}
	tr.StampAt(StageArrival, base)
	tr.StampAt(StageReplySent, base.Add(time.Millisecond))
	b := tr.Breakdown()
	if b.Complete {
		t.Fatal("incomplete trace reported complete")
	}
	if b.Total != time.Millisecond || b.Queue != 0 {
		t.Fatalf("breakdown: %+v", b)
	}
	// Out-of-order stamps (fanout-issued after last-leaf) clamp to 0.
	tr2 := &Trace{}
	tr2.StampAt(StageFanoutIssued, base.Add(time.Second))
	tr2.StampAt(StageLastLeafResponse, base)
	if tr2.Breakdown().LeafWait != 0 {
		t.Fatal("negative segment not clamped")
	}
}

func TestTracerSamplingRate(t *testing.T) {
	tr := NewTracer(10, 8)
	sampled := 0
	for i := 0; i < 1000; i++ {
		if tr.Sample() != nil {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 1000 at 1-in-10", sampled)
	}
	// every ≤ 1 samples everything.
	all := NewTracer(0, 8)
	for i := 0; i < 50; i++ {
		if all.Sample() == nil {
			t.Fatal("rate-1 tracer skipped a request")
		}
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sample() != nil {
		t.Fatal("nil tracer sampled")
	}
	tr.Finish(&Trace{})
	if tr.Completed() != 0 || tr.Recent(5) != nil {
		t.Fatal("nil tracer returned data")
	}
	if !strings.Contains(tr.Report(), "disabled") {
		t.Fatal("nil tracer report")
	}
	if tr.StageQuantile("total", 0.5) != 0 {
		t.Fatal("nil tracer quantile")
	}
}

func TestTracerAggregation(t *testing.T) {
	tr := NewTracer(1, 4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		s := tr.Sample()
		s.StampAt(StageArrival, base)
		s.StampAt(StageEnqueued, base.Add(2*time.Microsecond))
		s.StampAt(StageWorkerStart, base.Add(12*time.Microsecond))
		s.StampAt(StageFanoutIssued, base.Add(22*time.Microsecond))
		s.StampAt(StageLastLeafResponse, base.Add(122*time.Microsecond))
		s.StampAt(StageReplySent, base.Add(132*time.Microsecond))
		tr.Finish(s)
	}
	if tr.Completed() != 10 {
		t.Fatalf("completed=%d", tr.Completed())
	}
	// Ring keeps only the last 4.
	if got := len(tr.Recent(100)); got != 4 {
		t.Fatalf("recent=%d want 4", got)
	}
	q := tr.StageQuantile("queue", 0.5)
	if q < 9*time.Microsecond || q > 11*time.Microsecond {
		t.Fatalf("queue p50=%v", q)
	}
	if tr.StageQuantile("bogus", 0.5) != 0 {
		t.Fatal("unknown segment returned data")
	}
	rep := tr.Report()
	for _, want := range []string{"handoff", "queue", "compute", "leaf-wait", "merge", "total"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestTraceConcurrentStamps(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := Stage(0); s < numStages; s++ {
				tr.Stamp(s)
			}
		}()
	}
	wg.Wait()
	if !tr.Breakdown().Complete {
		t.Fatal("concurrent stamps left gaps")
	}
}
