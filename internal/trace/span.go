package trace

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Distributed span propagation.  The stage stamps in trace.go attribute
// latency inside ONE tier; spans tie the tiers together.  A sampled request
// carries a compact SpanContext on every RPC frame (trace ID, span ID,
// parent span ID, flags), so the front-end's client span, the mid-tier's
// server span, every fan-out attempt — primary, hedge, retry, batched
// member — and each leaf's server span assemble into one tree per request.
// The tree is what makes cross-tier tail amplification explainable
// per-request instead of only in aggregate distribution form.

// Span context flag bits.
const (
	// FlagSampled marks a request selected for span recording; unsampled
	// requests travel with a zero SpanContext and the untraced frame layout,
	// keeping the hot path byte-identical and allocation-free.
	FlagSampled uint8 = 1 << 0
)

// SpanContext is the per-RPC propagation state: 25 bytes on the wire
// (3×u64 + flags).  The zero value means "not traced".
type SpanContext struct {
	TraceID  uint64
	SpanID   uint64
	ParentID uint64
	Flags    uint8
}

// Sampled reports whether the request this context rides is being recorded.
func (sc SpanContext) Sampled() bool { return sc.Flags&FlagSampled != 0 }

// Child derives the context for a sub-operation: a fresh span ID parented
// to this context's span, same trace and flags.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{
		TraceID:  sc.TraceID,
		SpanID:   NewID(),
		ParentID: sc.SpanID,
		Flags:    sc.Flags,
	}
}

// idState seeds span/trace ID generation; splitmix64 over an atomic counter
// gives collision-resistant 64-bit IDs without locks.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32)
}

// NewID returns a process-unique non-zero 64-bit identifier.
func NewID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// NewRootContext mints the context of a new sampled trace: the root span has
// no parent.
func NewRootContext() SpanContext {
	return SpanContext{TraceID: NewID(), SpanID: NewID(), Flags: FlagSampled}
}

// Sampler decides 1-in-N which requests become traces.  A nil Sampler (or
// every ≤ 0) samples nothing: Context() returns the zero SpanContext, the
// request travels untraced, and no allocation happens anywhere downstream.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler samples one of every `every` requests; every ≤ 0 disables
// sampling entirely (returns nil).
func NewSampler(every int) *Sampler {
	if every <= 0 {
		return nil
	}
	return &Sampler{every: uint64(every)}
}

// Context returns a fresh sampled root context for 1-in-N calls and the
// zero context otherwise.
func (s *Sampler) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	if s.n.Add(1)%s.every != 0 {
		return SpanContext{}
	}
	return NewRootContext()
}

// ID is a 64-bit span/trace identifier rendered as 16 hex digits in JSON —
// stable across tools that would lose precision parsing a u64 as a float.
type ID uint64

// MarshalJSON renders the ID as a quoted 16-digit hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 18)
	b = append(b, '"')
	b = appendHex16(b, uint64(id))
	b = append(b, '"')
	return b, nil
}

func appendHex16(b []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, digits[(v>>uint(shift))&0xF])
	}
	return b
}

// UnmarshalJSON accepts either a hex string (the canonical form) or a bare
// decimal number (forward tolerance for exporters that emit numbers).
func (id *ID) UnmarshalJSON(b []byte) error {
	if len(b) >= 2 && b[0] == '"' && b[len(b)-1] == '"' {
		v, err := strconv.ParseUint(string(b[1:len(b)-1]), 16, 64)
		if err != nil {
			return fmt.Errorf("trace: bad hex id %q: %v", b, err)
		}
		*id = ID(v)
		return nil
	}
	v, err := strconv.ParseUint(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("trace: bad id %q: %v", b, err)
	}
	*id = ID(v)
	return nil
}

// Span kinds.
const (
	KindClient = "client" // an outgoing RPC as timed by its issuer
	KindServer = "server" // a request's residency inside one tier
)

// Span is one recorded operation.  Start/Duration are integer nanoseconds
// (Unix epoch) so the export format needs no time-zone or layout parsing.
type Span struct {
	TraceID  ID     `json:"trace"`
	SpanID   ID     `json:"span"`
	ParentID ID     `json:"parent,omitempty"`
	Name     string `json:"name"`
	Kind     string `json:"kind,omitempty"`
	// Service labels the recording process/tier (e.g. "hdsearch-mid").
	Service  string `json:"service,omitempty"`
	Start    int64  `json:"start"`
	Duration int64  `json:"dur"`
	Err      string `json:"err,omitempty"`
	// Notes carries flat annotations: "hedge", "retry", "abandoned",
	// "batched", "shard=3", stage segments like "queue=12µs", …
	Notes []string `json:"notes,omitempty"`
}

// End is the span's finish instant in Unix nanoseconds.
func (s *Span) End() int64 { return s.Start + s.Duration }

// HasNote reports whether one of the span's notes equals note exactly.
func (s *Span) HasNote(note string) bool {
	for _, n := range s.Notes {
		if n == note {
			return true
		}
	}
	return false
}

// Recorder collects finished spans, bounded so a runaway sampler cannot
// exhaust memory; overflow increments a drop counter instead of blocking.
// All methods are safe for concurrent use; a nil *Recorder discards.
type Recorder struct {
	service string
	max     int

	mu      sync.Mutex
	spans   []Span
	dropped atomic.Uint64
}

// DefaultRecorderCap bounds a Recorder that was given no explicit capacity.
const DefaultRecorderCap = 1 << 16

// NewRecorder returns a recorder labelling spans with service; max ≤ 0
// selects DefaultRecorderCap.
func NewRecorder(service string, max int) *Recorder {
	if max <= 0 {
		max = DefaultRecorderCap
	}
	return &Recorder{service: service, max: max}
}

// Record stores one finished span, stamping the recorder's service label
// unless the span carries its own.
func (r *Recorder) Record(s Span) {
	if r == nil {
		return
	}
	if s.Service == "" {
		s.Service = r.service
	}
	r.mu.Lock()
	if len(r.spans) >= r.max {
		r.mu.Unlock()
		r.dropped.Add(1)
		return
	}
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Len reports how many spans are held.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Dropped reports how many spans overflowed the capacity bound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Snapshot copies out every recorded span.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}
