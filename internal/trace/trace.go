// Package trace provides per-request latency attribution through the
// mid-tier pipeline: arrival → dispatch hand-off → worker start → fan-out
// issued → last leaf response → reply sent.  Sampled traces decompose a
// request's residence time into the stage costs the paper's aggregate
// characterization (Figs. 15–18) observes only in distribution form —
// the per-request view a Treadmill-style attribution methodology needs.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/stats"
)

// Stage names one pipeline boundary a request crosses.
type Stage int

// The pipeline boundaries, in order of traversal.
const (
	// StageArrival — request frame fully decoded by the network poller.
	StageArrival Stage = iota
	// StageEnqueued — poller handed the request to the worker queue.
	StageEnqueued
	// StageWorkerStart — a worker began executing the handler.
	StageWorkerStart
	// StageFanoutIssued — all leaf sub-requests were sent.
	StageFanoutIssued
	// StageLastLeafResponse — the final leaf response was delivered.
	StageLastLeafResponse
	// StageReplySent — the response write to the front-end completed.
	StageReplySent
	numStages
)

// String names the stage.
func (s Stage) String() string {
	names := [...]string{
		"arrival", "enqueued", "worker-start", "fanout-issued",
		"last-leaf-response", "reply-sent",
	}
	if s < 0 || int(s) >= len(names) {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return names[s]
}

// Trace records one sampled request's stage timestamps.  Stamp may be
// called from any goroutine; each stage keeps its first stamp.
type Trace struct {
	mu sync.Mutex
	at [numStages]time.Time
}

// Stamp records the current time for stage s (first stamp wins).
func (t *Trace) Stamp(s Stage) {
	t.StampAt(s, time.Now())
}

// StampAt records an explicit instant for stage s (first stamp wins).
func (t *Trace) StampAt(s Stage, at time.Time) {
	if t == nil || s < 0 || s >= numStages {
		return
	}
	t.mu.Lock()
	if t.at[s].IsZero() {
		t.at[s] = at
	}
	t.mu.Unlock()
}

// Reset clears every stamp so a pooled Trace can carry a new request
// without inheriting its previous occupant's timestamps.  First-stamp-wins
// semantics make a stale stamp silently corrupting, so every reuse path
// must Reset before the first new Stamp.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.at = [numStages]time.Time{}
	t.mu.Unlock()
}

// clone snapshots the trace into an independent struct.
func (t *Trace) clone() *Trace {
	c := &Trace{}
	t.mu.Lock()
	c.at = t.at
	t.mu.Unlock()
	return c
}

// tracePool recycles Trace structs across sampled requests.
var tracePool = sync.Pool{New: func() any { return new(Trace) }}

// NewTrace returns a pooled, reset Trace.  Return it with PutTrace once no
// goroutine can stamp it anymore.
func NewTrace() *Trace {
	t := tracePool.Get().(*Trace)
	// Reset on get, not put: a stamp racing the put lands on a trace that
	// is wiped again before its next occupant's first stamp.
	t.Reset()
	return t
}

// PutTrace recycles t.  The caller must guarantee no further Stamp/At calls
// reach this pointer.
func PutTrace(t *Trace) {
	if t == nil {
		return
	}
	tracePool.Put(t)
}

// At returns the recorded instant of stage s (zero if never stamped).
func (t *Trace) At(s Stage) time.Time {
	if t == nil {
		return time.Time{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.at[s]
}

// Breakdown is the stage-to-stage decomposition of one request.
type Breakdown struct {
	// Handoff is poller→queue (the Block-class cost).
	Handoff time.Duration
	// Queue is time waiting for a worker (the Active-Exe-class cost).
	Queue time.Duration
	// Compute is the handler's own work before the fan-out.
	Compute time.Duration
	// LeafWait is fan-out issue → last leaf response.
	LeafWait time.Duration
	// Merge is last response → reply written.
	Merge time.Duration
	// Total is arrival → reply written.
	Total time.Duration
	// Complete reports whether every stage was stamped (an in-line or
	// non-fanout request leaves gaps).
	Complete bool
}

// Breakdown computes the decomposition.  Missing stages yield zero segments
// and Complete=false.
func (t *Trace) Breakdown() Breakdown {
	if t == nil {
		return Breakdown{}
	}
	t.mu.Lock()
	at := t.at
	t.mu.Unlock()

	var b Breakdown
	seg := func(from, to Stage) time.Duration {
		if at[from].IsZero() || at[to].IsZero() {
			return 0
		}
		d := at[to].Sub(at[from])
		if d < 0 {
			return 0
		}
		return d
	}
	b.Handoff = seg(StageArrival, StageEnqueued)
	b.Queue = seg(StageEnqueued, StageWorkerStart)
	b.Compute = seg(StageWorkerStart, StageFanoutIssued)
	b.LeafWait = seg(StageFanoutIssued, StageLastLeafResponse)
	b.Merge = seg(StageLastLeafResponse, StageReplySent)
	b.Total = seg(StageArrival, StageReplySent)
	b.Complete = true
	for s := Stage(0); s < numStages; s++ {
		if at[s].IsZero() {
			b.Complete = false
			break
		}
	}
	return b
}

// String renders the breakdown on one line.
func (b Breakdown) String() string {
	return fmt.Sprintf("handoff=%v queue=%v compute=%v leaf=%v merge=%v total=%v",
		b.Handoff, b.Queue, b.Compute, b.LeafWait, b.Merge, b.Total)
}

// Tracer samples 1-in-N requests and aggregates their stage breakdowns.
// A nil *Tracer disables tracing at zero cost.
type Tracer struct {
	every   uint64
	counter atomic.Uint64

	mu     sync.Mutex
	recent []*Trace // ring of the most recent completed traces
	next   int

	handoff, queue, compute, leaf, merge, total *stats.Histogram
	completed                                   atomic.Uint64
}

// NewTracer samples one of every `every` requests (every ≤ 1 samples all)
// and retains up to keep recent traces for inspection.
func NewTracer(every int, keep int) *Tracer {
	if every < 1 {
		every = 1
	}
	if keep < 1 {
		keep = 64
	}
	return &Tracer{
		every:   uint64(every),
		recent:  make([]*Trace, 0, keep),
		handoff: stats.NewHistogram(),
		queue:   stats.NewHistogram(),
		compute: stats.NewHistogram(),
		leaf:    stats.NewHistogram(),
		merge:   stats.NewHistogram(),
		total:   stats.NewHistogram(),
	}
}

// Sample returns a new Trace for this request, or nil if it falls outside
// the sampling rate (or the tracer itself is nil).
func (tr *Tracer) Sample() *Trace {
	if tr == nil {
		return nil
	}
	if tr.counter.Add(1)%tr.every != 0 {
		return nil
	}
	return NewTrace()
}

// Finish aggregates a completed trace.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	b := t.Breakdown()
	tr.handoff.Record(b.Handoff)
	tr.queue.Record(b.Queue)
	tr.compute.Record(b.Compute)
	tr.leaf.Record(b.LeafWait)
	tr.merge.Record(b.Merge)
	tr.total.Record(b.Total)
	tr.completed.Add(1)

	tr.mu.Lock()
	var evicted *Trace
	if len(tr.recent) < cap(tr.recent) {
		tr.recent = append(tr.recent, t)
	} else {
		evicted = tr.recent[tr.next]
		tr.recent[tr.next] = t
		tr.next = (tr.next + 1) % cap(tr.recent)
	}
	tr.mu.Unlock()
	// Recent hands out clones, never ring pointers, so the evicted trace
	// can be recycled immediately.
	PutTrace(evicted)
}

// Completed reports how many traces have finished.
func (tr *Tracer) Completed() uint64 {
	if tr == nil {
		return 0
	}
	return tr.completed.Load()
}

// Recent returns up to n of the most recently completed traces.  The
// returned traces are independent snapshots: the ring recycles its evicted
// entries, so handing out ring pointers would let a recycled trace mutate
// under the caller.
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if n > len(tr.recent) {
		n = len(tr.recent)
	}
	out := make([]*Trace, n)
	for i, t := range tr.recent[len(tr.recent)-n:] {
		out[i] = t.clone()
	}
	return out
}

// Report renders the aggregate stage decomposition at the median and p99.
func (tr *Tracer) Report() string {
	if tr == nil {
		return "tracing disabled\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "request latency attribution (%d sampled requests)\n", tr.Completed())
	fmt.Fprintf(&b, "  %-10s %-12s %-12s\n", "stage", "p50", "p99")
	for _, row := range []struct {
		name string
		h    *stats.Histogram
	}{
		{"handoff", tr.handoff},
		{"queue", tr.queue},
		{"compute", tr.compute},
		{"leaf-wait", tr.leaf},
		{"merge", tr.merge},
		{"total", tr.total},
	} {
		fmt.Fprintf(&b, "  %-10s %-12v %-12v\n", row.name, row.h.Quantile(0.5), row.h.Quantile(0.99))
	}
	return b.String()
}

// StageQuantile exposes one aggregate segment's quantile for programmatic
// assertions (segment names as in Report).
func (tr *Tracer) StageQuantile(segment string, q float64) time.Duration {
	if tr == nil {
		return 0
	}
	switch segment {
	case "handoff":
		return tr.handoff.Quantile(q)
	case "queue":
		return tr.queue.Quantile(q)
	case "compute":
		return tr.compute.Quantile(q)
	case "leaf-wait":
		return tr.leaf.Quantile(q)
	case "merge":
		return tr.merge.Quantile(q)
	case "total":
		return tr.total.Quantile(q)
	}
	return 0
}
