package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestNilProbeSafe(t *testing.T) {
	var p *Probe
	p.IncSyscall(SysFutex)
	p.AddSyscall(SysSendmsg, 10)
	p.IncContextSwitch()
	p.IncHITM()
	p.IncTCPRetransmit()
	p.ObserveOverhead(OverheadActiveExe, time.Millisecond)
	p.Reset()
	if p.SyscallCount(SysFutex) != 0 || p.ContextSwitches() != 0 || p.HITMs() != 0 || p.TCPRetransmits() != 0 {
		t.Fatal("nil probe returned non-zero")
	}
	if p.OverheadQuantile(OverheadNet, 0.5) != 0 {
		t.Fatal("nil probe quantile non-zero")
	}
	s := p.Snapshot()
	if len(s.Syscalls) != 0 {
		t.Fatal("nil probe snapshot has syscalls")
	}
}

func TestCounters(t *testing.T) {
	p := NewProbe()
	p.IncSyscall(SysFutex)
	p.IncSyscall(SysFutex)
	p.AddSyscall(SysRecvmsg, 5)
	if p.SyscallCount(SysFutex) != 2 {
		t.Errorf("futex=%d", p.SyscallCount(SysFutex))
	}
	if p.SyscallCount(SysRecvmsg) != 5 {
		t.Errorf("recvmsg=%d", p.SyscallCount(SysRecvmsg))
	}
	p.IncContextSwitch()
	p.IncHITM()
	p.IncTCPRetransmit()
	if p.ContextSwitches() != 1 || p.HITMs() != 1 || p.TCPRetransmits() != 1 {
		t.Error("scalar counters wrong")
	}
	p.Reset()
	if p.SyscallCount(SysFutex) != 0 || p.ContextSwitches() != 0 {
		t.Error("reset failed")
	}
}

func TestOverheadDistributions(t *testing.T) {
	p := NewProbe()
	for i := 1; i <= 100; i++ {
		p.ObserveOverhead(OverheadActiveExe, time.Duration(i)*time.Microsecond)
	}
	snap := p.OverheadSnapshot(OverheadActiveExe)
	if snap.Count != 100 {
		t.Fatalf("count=%d", snap.Count)
	}
	med := p.OverheadQuantile(OverheadActiveExe, 0.5)
	if med < 45*time.Microsecond || med > 55*time.Microsecond {
		t.Errorf("median=%v", med)
	}
	// Other classes remain empty.
	if p.OverheadSnapshot(OverheadRCU).Count != 0 {
		t.Error("cross-class contamination")
	}
}

func TestSnapshotDelta(t *testing.T) {
	p := NewProbe()
	p.AddSyscall(SysSendmsg, 10)
	p.IncContextSwitch()
	before := p.Snapshot()
	p.AddSyscall(SysSendmsg, 7)
	p.IncHITM()
	after := p.Snapshot()
	d := after.Delta(before)
	if d.Syscalls[SysSendmsg] != 7 {
		t.Errorf("delta sendmsg=%d", d.Syscalls[SysSendmsg])
	}
	if d.HITM != 1 || d.ContextSwitch != 0 {
		t.Errorf("delta hitm=%d cs=%d", d.HITM, d.ContextSwitch)
	}
	// Delta clamps when prev exceeds cur (after a Reset).
	p.Reset()
	clamped := p.Snapshot().Delta(after)
	if clamped.Syscalls[SysSendmsg] != 0 {
		t.Error("delta did not clamp")
	}
}

func TestSyscallAndOverheadNames(t *testing.T) {
	if SysFutex.String() != "futex" || SysEpollPwait.String() != "epoll_pwait" {
		t.Error("syscall names wrong")
	}
	if OverheadActiveExe.String() != "Active-Exe" || OverheadNetTx.String() != "Net_tx" {
		t.Error("overhead names wrong")
	}
	if Syscall(99).String() == "" || Overhead(99).String() == "" {
		t.Error("out-of-range names empty")
	}
	if len(Syscalls()) != int(numSyscalls) || len(Overheads()) != int(numOverheads) {
		t.Error("enumerations wrong length")
	}
}

func TestProbedMutexContention(t *testing.T) {
	p := NewProbe()
	m := NewMutex(p)
	// Uncontended: no HITM.
	m.Lock()
	m.Unlock()
	if p.HITMs() != 0 {
		t.Fatalf("uncontended lock counted HITM: %d", p.HITMs())
	}
	// Force contention: goroutine holds the lock while we acquire.
	m.Lock()
	done := make(chan struct{})
	go func() {
		m.Lock()
		m.Unlock()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) // let the goroutine reach the contended path
	m.Unlock()
	<-done
	if p.HITMs() == 0 {
		t.Error("contended lock did not count HITM")
	}
	if p.SyscallCount(SysFutex) == 0 {
		t.Error("contended lock did not count futex")
	}
}

func TestProbedCond(t *testing.T) {
	p := NewProbe()
	m := NewMutex(p)
	c := NewCond(m, p)
	ready := false
	done := make(chan struct{})
	go func() {
		m.Lock()
		for !ready {
			c.Wait()
		}
		m.Unlock()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	m.Lock()
	ready = true
	c.Signal()
	m.Unlock()
	<-done
	// One Wait + one Signal = at least 2 futex proxies; Wait also counts a CS.
	if p.SyscallCount(SysFutex) < 2 {
		t.Errorf("futex=%d want ≥2", p.SyscallCount(SysFutex))
	}
	if p.ContextSwitches() < 1 {
		t.Errorf("cs=%d want ≥1", p.ContextSwitches())
	}
}

func TestProbeConcurrency(t *testing.T) {
	p := NewProbe()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.IncSyscall(SysFutex)
				p.ObserveOverhead(OverheadNet, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if p.SyscallCount(SysFutex) != 8000 {
		t.Fatalf("futex=%d", p.SyscallCount(SysFutex))
	}
	if p.OverheadSnapshot(OverheadNet).Count != 8000 {
		t.Fatalf("overhead count=%d", p.OverheadSnapshot(OverheadNet).Count)
	}
}

func TestCondBroadcast(t *testing.T) {
	p := NewProbe()
	m := NewMutex(p)
	c := NewCond(m, p)
	const waiters = 4
	var wg sync.WaitGroup
	go_ := false
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Lock()
			for !go_ {
				c.Wait()
			}
			m.Unlock()
		}()
	}
	time.Sleep(5 * time.Millisecond)
	m.Lock()
	go_ = true
	c.Broadcast()
	m.Unlock()
	wg.Wait()
	if p.ContextSwitches() < waiters {
		t.Errorf("cs=%d want ≥%d", p.ContextSwitches(), waiters)
	}
}
