// Package telemetry is the in-process analog of the measurement stack the
// paper builds on eBPF (syscount, hardirqs, softirqs, runqlat, tcpretrans),
// perf (context switches), and PEBS HITM events (lock contention).
//
// Loading kernel probes is out of scope for a portable library, so instead
// the μSuite framework timestamps and counts the same events at the same
// architectural boundaries:
//
//   - Syscall-proxy counters: every socket frame write counts a sendmsg,
//     every frame read a recvmsg, every blocking read entry an epoll_pwait,
//     every condition-variable wait/signal and contended mutex a futex, and
//     every worker spawn a clone.  These are exactly the call sites where a
//     C++ thread-pool microservice issues the corresponding syscalls
//     (paper Figs. 11–14).
//   - OS-overhead latency classes (paper Figs. 15–18): Hardirq, Net_tx,
//     Net_rx, Block, Sched, RCU, Active-Exe, and Net, measured per request
//     at the boundaries documented on the Overhead constants.
//   - A context-switch proxy (every voluntary block of a framework thread)
//     and a HITM/contention proxy (every mutex acquisition that found the
//     lock held), mirroring paper Fig. 19.
package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/stats"
)

// Syscall enumerates the system calls the paper's syscount breakdown tracks
// (Figs. 11–14).  The framework increments the proxy counter at the point
// where a native thread-pool server would issue the real call.
type Syscall int

// The tracked syscall classes, in the order the paper's figures list them.
const (
	SysMprotect Syscall = iota
	SysOpenat
	SysBrk
	SysSendmsg
	SysEpollPwait
	SysWrite
	SysRead
	SysRecvmsg
	SysClose
	SysFutex
	SysClone
	SysMmap
	SysMunmap
	numSyscalls
)

// String returns the kernel name of the syscall.
func (s Syscall) String() string {
	names := [...]string{
		"mprotect", "openat", "brk", "sendmsg", "epoll_pwait", "write",
		"read", "recvmsg", "close", "futex", "clone", "mmap", "munmap",
	}
	if s < 0 || int(s) >= len(names) {
		return fmt.Sprintf("syscall(%d)", int(s))
	}
	return names[s]
}

// Syscalls lists all tracked syscall classes in display order.
func Syscalls() []Syscall {
	out := make([]Syscall, numSyscalls)
	for i := range out {
		out[i] = Syscall(i)
	}
	return out
}

// Overhead enumerates the OS-operation latency classes of paper Figs. 15–18,
// with the operational definition used by this reproduction.
type Overhead int

const (
	// OverheadHardirq — paper: interrupt-handler latency for network hard
	// IRQs.  Here: time from a frame's first byte being available to the
	// frame being fully read and decoded.
	OverheadHardirq Overhead = iota
	// OverheadNetTx — paper: soft-IRQ handler latency while sending.
	// Here: duration of the socket frame-write call.
	OverheadNetTx
	// OverheadNetRx — paper: soft-IRQ handler latency while receiving.
	// Here: duration of the non-blocking portion of a frame read.
	OverheadNetRx
	// OverheadBlock — paper: soft-IRQ latency when a thread enters the
	// blocked state.  Here: time taken to park a framework thread
	// (from deciding to block to being fully descheduled).
	OverheadBlock
	// OverheadSched — paper: soft-IRQ latency for scheduler actions.
	// Here: wakeup latency of the leaf-response collection threads
	// (signal → running).
	OverheadSched
	// OverheadRCU — paper: soft-IRQ latency for read-copy-update.
	// Here: duration of shared read-mostly state lookups (pending-call
	// table reads under RLock).
	OverheadRCU
	// OverheadActiveExe — paper: time from a thread entering the active /
	// runnable state to running on a CPU (runqlat).  Here: time from a
	// worker being signalled with new work to the worker executing it.
	// This is the class the paper finds dominates mid-tier tails (up to
	// ~87%).
	OverheadActiveExe
	// OverheadNet — paper: net mid-tier latency.  Here: total time from
	// request receipt at the mid-tier to the response write completing.
	OverheadNet
	numOverheads
)

// String returns the paper's label for the overhead class.
func (o Overhead) String() string {
	names := [...]string{"Hardirq", "Net_tx", "Net_rx", "Block", "Sched", "RCU", "Active-Exe", "Net"}
	if o < 0 || int(o) >= len(names) {
		return fmt.Sprintf("overhead(%d)", int(o))
	}
	return names[o]
}

// Overheads lists all overhead classes in the paper's display order.
func Overheads() []Overhead {
	out := make([]Overhead, numOverheads)
	for i := range out {
		out[i] = Overhead(i)
	}
	return out
}

// TailEvent enumerates the tail-tolerance actions of the hedged-request /
// retry-budget machinery, counted so the win rate (and the budget's bite)
// can be read alongside the latency distributions they reshape.
type TailEvent int

const (
	// TailHedge — a duplicate leaf request was issued after the hedge
	// delay elapsed without a response.
	TailHedge TailEvent = iota
	// TailHedgeWin — the hedge, not the primary, produced the winning
	// response.
	TailHedgeWin
	// TailRetry — a leaf call was re-issued after a retryable
	// (timeout/connection-class) failure.
	TailRetry
	// TailBudgetDenied — a wanted hedge or retry was suppressed because
	// the retry budget was exhausted.
	TailBudgetDenied
	numTailEvents
)

// String returns the event's display label.
func (e TailEvent) String() string {
	names := [...]string{"hedge", "hedge-win", "retry", "budget-denied"}
	if e < 0 || int(e) >= len(names) {
		return fmt.Sprintf("tail(%d)", int(e))
	}
	return names[e]
}

// TailEvents lists the tail-tolerance event classes in display order.
func TailEvents() []TailEvent {
	out := make([]TailEvent, numTailEvents)
	for i := range out {
		out[i] = TailEvent(i)
	}
	return out
}

// BatchEvent enumerates the cross-request leaf-batching actions of the
// mid-tier's per-replica batchers, counted so batch occupancy
// (BatchMembers / BatchCarriers) and the flush-cause mix can be read
// alongside the per-RPC overheads batching amortizes.
type BatchEvent int

const (
	// BatchCarriers — carrier RPCs (including lone-member sends) that left
	// a batcher.
	BatchCarriers BatchEvent = iota
	// BatchMembers — member calls those carriers transported.
	BatchMembers
	// BatchFlushSize — flushes triggered by the queue reaching MaxBatch.
	BatchFlushSize
	// BatchFlushDeadline — flushes triggered by the adaptive delay expiring.
	BatchFlushDeadline
	// BatchFlushShutdown — flushes triggered by batcher close.
	BatchFlushShutdown
	numBatchEvents
)

// String returns the event's display label.
func (e BatchEvent) String() string {
	names := [...]string{"carriers", "members", "flush-size", "flush-deadline", "flush-shutdown"}
	if e < 0 || int(e) >= len(names) {
		return fmt.Sprintf("batch(%d)", int(e))
	}
	return names[e]
}

// BatchEvents lists the batching event classes in display order.
func BatchEvents() []BatchEvent {
	out := make([]BatchEvent, numBatchEvents)
	for i := range out {
		out[i] = BatchEvent(i)
	}
	return out
}

// TopoEvent enumerates the cluster-topology mutations of the mid-tier's
// epoch-versioned leaf map, counted so elastic operation (groups entering
// and leaving service under load) can be read alongside the latency
// distributions the transitions may disturb.
type TopoEvent int

const (
	// TopoAdd — a leaf replica group was dialed and placed in service.
	TopoAdd TopoEvent = iota
	// TopoDrain — a leaf group was removed gracefully: routing stopped,
	// outstanding and batched calls completed, pools closed.
	TopoDrain
	// TopoRemove — a leaf group was removed forcefully, failing its
	// in-flight calls.
	TopoRemove
	// TopoDrainTimeout — a drain's quiescence wait exceeded its deadline
	// and the group was closed with work still pending.
	TopoDrainTimeout
	numTopoEvents
)

// String returns the event's display label.
func (e TopoEvent) String() string {
	names := [...]string{"add", "drain", "remove", "drain-timeout"}
	if e < 0 || int(e) >= len(names) {
		return fmt.Sprintf("topo(%d)", int(e))
	}
	return names[e]
}

// TopoEvents lists the topology event classes in display order.
func TopoEvents() []TopoEvent {
	out := make([]TopoEvent, numTopoEvents)
	for i := range out {
		out[i] = TopoEvent(i)
	}
	return out
}

// AdmitEvent enumerates the adaptive admission controller's actions: how
// many requests were admitted, how many were shed (and by which rule), and
// which way the AIMD concurrency limit last moved — counted so the overload
// experiment can read goodput and shed mix alongside the latency
// distributions admission protects.
type AdmitEvent int

const (
	// AdmitAdmitted — a request passed admission and entered the pipeline.
	AdmitAdmitted AdmitEvent = iota
	// AdmitShedLimit — a request was rejected at arrival because the
	// adaptive concurrency limit (plus any priority headroom) was full.
	AdmitShedLimit
	// AdmitShedDeadline — a request was rejected at worker pickup because
	// its remaining deadline budget could not cover the tracked p99
	// service time.
	AdmitShedDeadline
	// AdmitShedQueue — a request passed the limit but the dispatch queue
	// was full; shed with the same typed overload error.
	AdmitShedQueue
	// AdmitLimitUp — the AIMD controller raised the concurrency limit
	// (additive increase: observed latency near its EWMA floor).
	AdmitLimitUp
	// AdmitLimitDown — the AIMD controller cut the concurrency limit
	// (multiplicative decrease: observed latency above tolerance × floor).
	AdmitLimitDown
	numAdmitEvents
)

// String returns the event's display label.
func (e AdmitEvent) String() string {
	names := [...]string{"admitted", "shed-limit", "shed-deadline", "shed-queue", "limit-up", "limit-down"}
	if e < 0 || int(e) >= len(names) {
		return fmt.Sprintf("admit(%d)", int(e))
	}
	return names[e]
}

// AdmitEvents lists the admission event classes in display order.
func AdmitEvents() []AdmitEvent {
	out := make([]AdmitEvent, numAdmitEvents)
	for i := range out {
		out[i] = AdmitEvent(i)
	}
	return out
}

// ScaleEvent enumerates the autoscaler's decisions, counted so elastic
// capacity (groups added and drained by the control loop, not an operator)
// can be read alongside the shed counters it exists to suppress.
type ScaleEvent int

const (
	// ScaleUp — the autoscaler added a leaf group.
	ScaleUp ScaleEvent = iota
	// ScaleDown — the autoscaler drained a leaf group.
	ScaleDown
	// ScaleHold — a breach was observed but hysteresis, cooldown, or a
	// capacity bound withheld the action.
	ScaleHold
	numScaleEvents
)

// String returns the event's display label.
func (e ScaleEvent) String() string {
	names := [...]string{"up", "down", "hold"}
	if e < 0 || int(e) >= len(names) {
		return fmt.Sprintf("scale(%d)", int(e))
	}
	return names[e]
}

// ScaleEvents lists the autoscaler event classes in display order.
func ScaleEvents() []ScaleEvent {
	out := make([]ScaleEvent, numScaleEvents)
	for i := range out {
		out[i] = ScaleEvent(i)
	}
	return out
}

// KernelEvent enumerates the leaf compute-engine counters: how many kernel
// scans ran, how many candidate points they scored, and how long they spent
// doing it — together giving the points-scanned/s throughput that tells
// whether a leaf is compute-bound (the paper's post-RPC regime) or still
// framework-bound.
type KernelEvent int

const (
	// KernelScans — kernel invocations (one per leaf scan).
	KernelScans KernelEvent = iota
	// KernelPoints — candidate rows scored across all scans.
	KernelPoints
	// KernelNanos — wall nanoseconds spent inside the kernels.
	KernelNanos
	numKernelEvents
)

// String returns the event's display label.
func (e KernelEvent) String() string {
	names := [...]string{"scans", "points", "nanos"}
	if e < 0 || int(e) >= len(names) {
		return fmt.Sprintf("kernel(%d)", int(e))
	}
	return names[e]
}

// KernelEvents lists the kernel counter classes in display order.
func KernelEvents() []KernelEvent {
	out := make([]KernelEvent, numKernelEvents)
	for i := range out {
		out[i] = KernelEvent(i)
	}
	return out
}

// Probe collects all counters and distributions for one server under test.
// A nil *Probe is valid and makes every method a no-op, so components can be
// run uninstrumented at zero cost.
type Probe struct {
	syscalls  [numSyscalls]atomic.Uint64
	tails     [numTailEvents]atomic.Uint64
	batches   [numBatchEvents]atomic.Uint64
	topos     [numTopoEvents]atomic.Uint64
	kernels   [numKernelEvents]atomic.Uint64
	admits    [numAdmitEvents]atomic.Uint64
	scales    [numScaleEvents]atomic.Uint64
	ctxSwitch atomic.Uint64
	hitm      atomic.Uint64
	tcpRetx   atomic.Uint64

	overheads [numOverheads]*stats.Histogram
}

// NewProbe returns an empty probe.
func NewProbe() *Probe {
	p := &Probe{}
	for i := range p.overheads {
		p.overheads[i] = stats.NewHistogram()
	}
	return p
}

// IncSyscall counts one proxy invocation of s.
func (p *Probe) IncSyscall(s Syscall) {
	if p == nil {
		return
	}
	p.syscalls[s].Add(1)
}

// AddSyscall counts n proxy invocations of s.
func (p *Probe) AddSyscall(s Syscall, n uint64) {
	if p == nil {
		return
	}
	p.syscalls[s].Add(n)
}

// SyscallCount reports the proxy invocation count of s.
func (p *Probe) SyscallCount(s Syscall) uint64 {
	if p == nil {
		return 0
	}
	return p.syscalls[s].Load()
}

// IncTail counts one tail-tolerance event.
func (p *Probe) IncTail(e TailEvent) {
	if p == nil {
		return
	}
	p.tails[e].Add(1)
}

// TailCount reports the tail-tolerance event count for e.
func (p *Probe) TailCount(e TailEvent) uint64 {
	if p == nil {
		return 0
	}
	return p.tails[e].Load()
}

// IncBatch counts one batching event.
func (p *Probe) IncBatch(e BatchEvent) {
	if p == nil {
		return
	}
	p.batches[e].Add(1)
}

// AddBatch counts n batching events (member counts arrive per flush).
func (p *Probe) AddBatch(e BatchEvent, n uint64) {
	if p == nil {
		return
	}
	p.batches[e].Add(n)
}

// BatchCount reports the batching event count for e.
func (p *Probe) BatchCount(e BatchEvent) uint64 {
	if p == nil {
		return 0
	}
	return p.batches[e].Load()
}

// IncTopo counts one topology mutation.
func (p *Probe) IncTopo(e TopoEvent) {
	if p == nil {
		return
	}
	p.topos[e].Add(1)
}

// TopoCount reports the topology event count for e.
func (p *Probe) TopoCount(e TopoEvent) uint64 {
	if p == nil {
		return 0
	}
	return p.topos[e].Load()
}

// IncAdmit counts one admission event.
func (p *Probe) IncAdmit(e AdmitEvent) {
	if p == nil {
		return
	}
	p.admits[e].Add(1)
}

// AdmitCount reports the admission event count for e.
func (p *Probe) AdmitCount(e AdmitEvent) uint64 {
	if p == nil {
		return 0
	}
	return p.admits[e].Load()
}

// IncScale counts one autoscaler decision.
func (p *Probe) IncScale(e ScaleEvent) {
	if p == nil {
		return
	}
	p.scales[e].Add(1)
}

// ScaleCount reports the autoscaler event count for e.
func (p *Probe) ScaleCount(e ScaleEvent) uint64 {
	if p == nil {
		return 0
	}
	return p.scales[e].Load()
}

// AddKernel counts n kernel events (the engine adds per-scan aggregates).
func (p *Probe) AddKernel(e KernelEvent, n uint64) {
	if p == nil {
		return
	}
	p.kernels[e].Add(n)
}

// KernelCount reports the kernel counter for e.
func (p *Probe) KernelCount(e KernelEvent) uint64 {
	if p == nil {
		return 0
	}
	return p.kernels[e].Load()
}

// IncContextSwitch counts one voluntary thread block (CS proxy).
func (p *Probe) IncContextSwitch() {
	if p == nil {
		return
	}
	p.ctxSwitch.Add(1)
}

// ContextSwitches reports the CS proxy count.
func (p *Probe) ContextSwitches() uint64 {
	if p == nil {
		return 0
	}
	return p.ctxSwitch.Load()
}

// IncHITM counts one contended lock acquisition (HITM proxy).
func (p *Probe) IncHITM() {
	if p == nil {
		return
	}
	p.hitm.Add(1)
}

// HITMs reports the contention proxy count.
func (p *Probe) HITMs() uint64 {
	if p == nil {
		return 0
	}
	return p.hitm.Load()
}

// IncTCPRetransmit counts one transport-level retry (the paper reports only
// single-digit counts here; ours stays at zero on loopback unless a
// connection-level retry fires).
func (p *Probe) IncTCPRetransmit() {
	if p == nil {
		return
	}
	p.tcpRetx.Add(1)
}

// TCPRetransmits reports the transport retry count.
func (p *Probe) TCPRetransmits() uint64 {
	if p == nil {
		return 0
	}
	return p.tcpRetx.Load()
}

// ObserveOverhead records one latency observation for class o.
func (p *Probe) ObserveOverhead(o Overhead, d time.Duration) {
	if p == nil {
		return
	}
	p.overheads[o].Record(d)
}

// OverheadSnapshot returns the distribution summary for class o.
func (p *Probe) OverheadSnapshot(o Overhead) stats.Snapshot {
	if p == nil {
		return stats.Snapshot{}
	}
	return p.overheads[o].Snapshot()
}

// OverheadQuantile returns quantile q of overhead class o.
func (p *Probe) OverheadQuantile(o Overhead, q float64) time.Duration {
	if p == nil {
		return 0
	}
	return p.overheads[o].Quantile(q)
}

// Reset zeroes all counters and distributions.
func (p *Probe) Reset() {
	if p == nil {
		return
	}
	for i := range p.syscalls {
		p.syscalls[i].Store(0)
	}
	for i := range p.tails {
		p.tails[i].Store(0)
	}
	for i := range p.batches {
		p.batches[i].Store(0)
	}
	for i := range p.topos {
		p.topos[i].Store(0)
	}
	for i := range p.kernels {
		p.kernels[i].Store(0)
	}
	for i := range p.admits {
		p.admits[i].Store(0)
	}
	for i := range p.scales {
		p.scales[i].Store(0)
	}
	p.ctxSwitch.Store(0)
	p.hitm.Store(0)
	p.tcpRetx.Store(0)
	for _, h := range p.overheads {
		h.Reset()
	}
}

// Snapshot is a point-in-time copy of every probe counter, used by the
// experiment harness to difference measurement windows.
type Snapshot struct {
	Syscalls       map[Syscall]uint64
	Tail           map[TailEvent]uint64
	Batch          map[BatchEvent]uint64
	Topo           map[TopoEvent]uint64
	Kernel         map[KernelEvent]uint64
	Admit          map[AdmitEvent]uint64
	Scale          map[ScaleEvent]uint64
	ContextSwitch  uint64
	HITM           uint64
	TCPRetransmits uint64
}

// Snapshot captures the current counter values.
func (p *Probe) Snapshot() Snapshot {
	s := Snapshot{
		Syscalls: make(map[Syscall]uint64, int(numSyscalls)),
		Tail:     make(map[TailEvent]uint64, int(numTailEvents)),
		Batch:    make(map[BatchEvent]uint64, int(numBatchEvents)),
		Topo:     make(map[TopoEvent]uint64, int(numTopoEvents)),
		Kernel:   make(map[KernelEvent]uint64, int(numKernelEvents)),
		Admit:    make(map[AdmitEvent]uint64, int(numAdmitEvents)),
		Scale:    make(map[ScaleEvent]uint64, int(numScaleEvents)),
	}
	if p == nil {
		return s
	}
	for i := Syscall(0); i < numSyscalls; i++ {
		s.Syscalls[i] = p.syscalls[i].Load()
	}
	for i := TailEvent(0); i < numTailEvents; i++ {
		s.Tail[i] = p.tails[i].Load()
	}
	for i := BatchEvent(0); i < numBatchEvents; i++ {
		s.Batch[i] = p.batches[i].Load()
	}
	for i := TopoEvent(0); i < numTopoEvents; i++ {
		s.Topo[i] = p.topos[i].Load()
	}
	for i := KernelEvent(0); i < numKernelEvents; i++ {
		s.Kernel[i] = p.kernels[i].Load()
	}
	for i := AdmitEvent(0); i < numAdmitEvents; i++ {
		s.Admit[i] = p.admits[i].Load()
	}
	for i := ScaleEvent(0); i < numScaleEvents; i++ {
		s.Scale[i] = p.scales[i].Load()
	}
	s.ContextSwitch = p.ctxSwitch.Load()
	s.HITM = p.hitm.Load()
	s.TCPRetransmits = p.tcpRetx.Load()
	return s
}

// Delta returns the per-counter difference cur − prev (clamped at zero).
func (cur Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Syscalls: make(map[Syscall]uint64, len(cur.Syscalls)),
		Tail:     make(map[TailEvent]uint64, len(cur.Tail)),
		Batch:    make(map[BatchEvent]uint64, len(cur.Batch)),
		Topo:     make(map[TopoEvent]uint64, len(cur.Topo)),
		Kernel:   make(map[KernelEvent]uint64, len(cur.Kernel)),
		Admit:    make(map[AdmitEvent]uint64, len(cur.Admit)),
		Scale:    make(map[ScaleEvent]uint64, len(cur.Scale)),
	}
	for k, v := range cur.Syscalls {
		pv := prev.Syscalls[k]
		if v > pv {
			d.Syscalls[k] = v - pv
		}
	}
	for k, v := range cur.Tail {
		if pv := prev.Tail[k]; v > pv {
			d.Tail[k] = v - pv
		}
	}
	for k, v := range cur.Batch {
		if pv := prev.Batch[k]; v > pv {
			d.Batch[k] = v - pv
		}
	}
	for k, v := range cur.Topo {
		if pv := prev.Topo[k]; v > pv {
			d.Topo[k] = v - pv
		}
	}
	for k, v := range cur.Kernel {
		if pv := prev.Kernel[k]; v > pv {
			d.Kernel[k] = v - pv
		}
	}
	for k, v := range cur.Admit {
		if pv := prev.Admit[k]; v > pv {
			d.Admit[k] = v - pv
		}
	}
	for k, v := range cur.Scale {
		if pv := prev.Scale[k]; v > pv {
			d.Scale[k] = v - pv
		}
	}
	sub := func(a, b uint64) uint64 {
		if a > b {
			return a - b
		}
		return 0
	}
	d.ContextSwitch = sub(cur.ContextSwitch, prev.ContextSwitch)
	d.HITM = sub(cur.HITM, prev.HITM)
	d.TCPRetransmits = sub(cur.TCPRetransmits, prev.TCPRetransmits)
	return d
}

// Mutex is a mutual-exclusion lock that feeds the probe: a contended
// acquisition (lock already held) counts one HITM proxy event and one futex
// proxy call, matching how pthread mutexes fall back to futex(2) only under
// contention and how cross-core lock handoffs raise HITM events.
type Mutex struct {
	mu    sync.Mutex
	probe *Probe
}

// NewMutex returns a probed mutex. probe may be nil.
func NewMutex(probe *Probe) *Mutex {
	return &Mutex{probe: probe}
}

// Lock acquires the lock, recording contention if it must wait.
func (m *Mutex) Lock() {
	if m.mu.TryLock() {
		return
	}
	m.probe.IncHITM()
	m.probe.IncSyscall(SysFutex)
	m.probe.IncContextSwitch()
	m.mu.Lock()
}

// Unlock releases the lock.
func (m *Mutex) Unlock() { m.mu.Unlock() }

// Cond is a condition variable that feeds the probe: every Wait counts a
// futex call plus a context switch (the thread parks), every Signal or
// Broadcast counts a futex call (FUTEX_WAKE), and every Wait *return* counts
// a HITM proxy — the woken thread re-acquires the associated mutex, the
// cross-thread lock handoff that raises hit-Modified coherence events on
// real multicore hardware (the paper: "various threads are woken up when a
// futex returns, and they all contend ... to acquire a network socket
// lock", which is why its HITM counts exceed its CS counts).
type Cond struct {
	c     *sync.Cond
	probe *Probe
}

// NewCond returns a probed condition variable bound to a probed mutex.
func NewCond(m *Mutex, probe *Probe) *Cond {
	return &Cond{c: sync.NewCond(&m.mu), probe: probe}
}

// Wait blocks until signalled; the caller must hold the associated Mutex.
func (c *Cond) Wait() {
	c.probe.IncSyscall(SysFutex)
	c.probe.IncContextSwitch()
	c.c.Wait()
	c.probe.IncHITM()
}

// Signal wakes one waiter.
func (c *Cond) Signal() {
	c.probe.IncSyscall(SysFutex)
	c.c.Signal()
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast() {
	c.probe.IncSyscall(SysFutex)
	c.c.Broadcast()
}
