// Package kdtree implements a k-d tree index over feature vectors with a
// bounded-checks approximate k-NN search, FLANN-style.  The paper names
// "LSH tables, kd-trees, or k-means clusters" as the indexing structures
// modern k-NN algorithms use to prune the search space; this package is the
// kd-tree member of that trio, usable as a drop-in alternative to the LSH
// index in HDSearch's mid-tier.
//
// Construction recursively splits on the dimension of greatest spread at the
// median, giving balanced leaves of a configurable bucket size.  Search is
// best-first: a priority queue orders subtrees by their minimum possible
// distance to the query, and a "checks" budget bounds how many points are
// scored — the exactness/latency dial (budget ≥ n gives exact k-NN).
package kdtree

import (
	"container/heap"
	"fmt"
	"sort"

	"musuite/internal/knn"
	"musuite/internal/vec"
)

// Ref identifies an indexed point: the leaf shard storing it and its local
// point ID, mirroring lsh.Entry so HDSearch can swap indexes.
type Ref struct {
	Shard   int32
	PointID uint32
}

// Config parameterizes tree construction.
type Config struct {
	// BucketSize is the max points per leaf node (default 16).
	BucketSize int
}

// Tree is an immutable k-d tree built once over the full corpus.
type Tree struct {
	points []vec.Vector
	refs   []Ref
	root   *node
	dim    int
}

type node struct {
	// Interior node fields.
	splitDim    int
	splitVal    float32
	left, right *node
	// Leaf node field: indexes into points/refs.
	bucket []int
}

// Build constructs the tree.  points[i] is referenced by refs[i]; both
// slices are captured (not copied) and must not be mutated afterwards.
func Build(points []vec.Vector, refs []Ref, cfg Config) (*Tree, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("kdtree: empty corpus")
	}
	if len(points) != len(refs) {
		return nil, fmt.Errorf("kdtree: %d points but %d refs", len(points), len(refs))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("kdtree: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	bucket := cfg.BucketSize
	if bucket <= 0 {
		bucket = 16
	}
	t := &Tree{points: points, refs: refs, dim: dim}
	idxs := make([]int, len(points))
	for i := range idxs {
		idxs[i] = i
	}
	t.root = t.build(idxs, bucket)
	return t, nil
}

// Size reports the number of indexed points.
func (t *Tree) Size() int { return len(t.points) }

// Dim reports the indexed vector dimensionality.
func (t *Tree) Dim() int { return t.dim }

// build recursively partitions idxs.
func (t *Tree) build(idxs []int, bucket int) *node {
	if len(idxs) <= bucket {
		return &node{bucket: idxs}
	}
	// Split on the dimension with the greatest spread (cheap variance
	// proxy: max-min), at the median.
	splitDim := 0
	bestSpread := float32(-1)
	for d := 0; d < t.dim; d++ {
		lo, hi := t.points[idxs[0]][d], t.points[idxs[0]][d]
		// Sampling keeps construction O(n log n) for high dims.
		step := 1
		if len(idxs) > 256 {
			step = len(idxs) / 256
		}
		for i := 0; i < len(idxs); i += step {
			v := t.points[idxs[i]][d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if spread := hi - lo; spread > bestSpread {
			bestSpread = spread
			splitDim = d
		}
	}
	if bestSpread <= 0 {
		// All sampled points identical in every dimension: leaf it.
		return &node{bucket: idxs}
	}
	sort.Slice(idxs, func(a, b int) bool {
		return t.points[idxs[a]][splitDim] < t.points[idxs[b]][splitDim]
	})
	mid := len(idxs) / 2
	// Guard degenerate splits where the median value spans the boundary.
	for mid < len(idxs)-1 && t.points[idxs[mid]][splitDim] == t.points[idxs[mid-1]][splitDim] {
		mid++
	}
	if mid == len(idxs)-1 && t.points[idxs[mid]][splitDim] == t.points[idxs[mid-1]][splitDim] {
		return &node{bucket: idxs}
	}
	return &node{
		splitDim: splitDim,
		splitVal: t.points[idxs[mid]][splitDim],
		left:     t.build(append([]int(nil), idxs[:mid]...), bucket),
		right:    t.build(append([]int(nil), idxs[mid:]...), bucket),
	}
}

// branchHeap orders pending subtrees by their minimum possible squared
// distance to the query (best-first search).
type branch struct {
	n       *node
	minDist float32
}

type branchHeap []branch

func (h branchHeap) Len() int            { return len(h) }
func (h branchHeap) Less(i, j int) bool  { return h[i].minDist < h[j].minDist }
func (h branchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *branchHeap) Push(x interface{}) { *h = append(*h, x.(branch)) }
func (h *branchHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// Result is one scored neighbor.
type Result struct {
	Ref      Ref
	Distance float32
}

// Search returns up to k nearest refs under a budget of at most checks
// scored points (checks ≤ 0 or ≥ Size() searches exhaustively → exact).
func (t *Tree) Search(q vec.Vector, k, checks int) []Result {
	if checks <= 0 || checks > len(t.points) {
		checks = len(t.points)
	}
	cands := make([]knn.Neighbor, 0, checks)
	scored := 0

	var pending branchHeap
	heap.Push(&pending, branch{n: t.root})
	for pending.Len() > 0 && scored < checks {
		b := heap.Pop(&pending).(branch)
		n := b.n
		for n.bucket == nil {
			// Descend toward the query, deferring the far side with
			// its separation distance.
			d := q[n.splitDim] - n.splitVal
			near, far := n.left, n.right
			if d >= 0 {
				near, far = n.right, n.left
			}
			heap.Push(&pending, branch{n: far, minDist: b.minDist + d*d})
			n = near
		}
		for _, idx := range n.bucket {
			cands = append(cands, knn.Neighbor{
				ID:       uint32(idx),
				Distance: vec.SquaredEuclidean(q, t.points[idx]),
			})
			scored++
			if scored >= checks {
				break
			}
		}
	}

	top := knn.Select(cands, k)
	out := make([]Result, len(top))
	for i, n := range top {
		out[i] = Result{Ref: t.refs[n.ID], Distance: n.Distance}
	}
	return out
}

// LookupByShard returns candidate point IDs grouped by shard — the same
// shape lsh.Index.LookupByShard produces, so HDSearch's mid-tier can use a
// kd-tree interchangeably.  candidates bounds the total candidate count.
func (t *Tree) LookupByShard(q vec.Vector, candidates, checks int) map[int32][]uint32 {
	if candidates <= 0 {
		candidates = 64
	}
	results := t.Search(q, candidates, checks)
	out := make(map[int32][]uint32)
	for _, r := range results {
		out[r.Ref.Shard] = append(out[r.Ref.Shard], r.Ref.PointID)
	}
	return out
}
