package kdtree

import (
	"math/rand"
	"testing"

	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

func buildCorpusTree(t *testing.T, n, dim int) (*dataset.ImageCorpus, *Tree) {
	t.Helper()
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: n, Dim: dim, Clusters: 8, Noise: 0.12, Seed: 3,
	})
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{Shard: int32(i % 4), PointID: uint32(i)}
	}
	tree, err := Build(corpus.Vectors, refs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, tree
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Build([]vec.Vector{{1, 2}}, nil, Config{}); err == nil {
		t.Fatal("mismatched refs accepted")
	}
	if _, err := Build([]vec.Vector{{1, 2}, {1}}, make([]Ref, 2), Config{}); err == nil {
		t.Fatal("ragged dims accepted")
	}
}

// TestExhaustiveSearchIsExact: with an unlimited checks budget, the tree
// must return exactly the brute-force k-NN.
func TestExhaustiveSearchIsExact(t *testing.T) {
	corpus, tree := buildCorpusTree(t, 800, 16)
	for qi, q := range corpus.Queries(40, 5) {
		got := tree.Search(q, 5, 0)
		want := knn.BruteForce(q, corpus.Vectors, 5)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].Ref.PointID != want[i].ID || got[i].Distance != want[i].Distance {
				t.Fatalf("query %d rank %d: got %+v want %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestBoundedChecksRecall: a modest budget must still find the true NN for
// the vast majority of clustered queries (best-first descends to the right
// region first).
func TestBoundedChecksRecall(t *testing.T) {
	corpus, tree := buildCorpusTree(t, 3000, 24)
	queries := corpus.Queries(150, 7)
	hits := 0
	const checks = 300 // 10% of the corpus
	for _, q := range queries {
		truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
		for _, r := range tree.Search(q, 1, checks) {
			if r.Ref.PointID == truth {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(len(queries))
	if recall < 0.9 {
		t.Fatalf("recall@1 = %.3f with %d checks", recall, checks)
	}
	t.Logf("recall@1 = %.3f at %d/%d checks", recall, checks, tree.Size())
}

func TestMoreChecksRaiseRecall(t *testing.T) {
	corpus, tree := buildCorpusTree(t, 2000, 24)
	queries := corpus.Queries(100, 9)
	recallAt := func(checks int) float64 {
		hits := 0
		for _, q := range queries {
			truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
			for _, r := range tree.Search(q, 1, checks) {
				if r.Ref.PointID == truth {
					hits++
				}
			}
		}
		return float64(hits) / float64(len(queries))
	}
	low, high := recallAt(40), recallAt(800)
	if high < low {
		t.Fatalf("recall fell with budget: %.3f → %.3f", low, high)
	}
	if high < 0.97 {
		t.Fatalf("recall at 40%% checks = %.3f", high)
	}
}

func TestSearchResultsSorted(t *testing.T) {
	corpus, tree := buildCorpusTree(t, 500, 8)
	for _, q := range corpus.Queries(20, 11) {
		res := tree.Search(q, 10, 200)
		for i := 1; i < len(res); i++ {
			if res[i].Distance < res[i-1].Distance {
				t.Fatal("results unsorted")
			}
		}
	}
}

func TestDuplicatePointsHandled(t *testing.T) {
	// A corpus of identical points must build (degenerate splits) and
	// search without infinite recursion.
	points := make([]vec.Vector, 100)
	refs := make([]Ref, 100)
	for i := range points {
		points[i] = vec.Vector{1, 2, 3}
		refs[i] = Ref{PointID: uint32(i)}
	}
	tree, err := Build(points, refs, Config{BucketSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := tree.Search(vec.Vector{1, 2, 3}, 5, 0)
	if len(res) != 5 {
		t.Fatalf("results=%d", len(res))
	}
	for _, r := range res {
		if r.Distance != 0 {
			t.Fatalf("distance=%v", r.Distance)
		}
	}
}

func TestLookupByShardGrouping(t *testing.T) {
	corpus, tree := buildCorpusTree(t, 400, 8)
	q := corpus.Queries(1, 13)[0]
	grouped := tree.LookupByShard(q, 50, 0)
	total := 0
	for shard, ids := range grouped {
		total += len(ids)
		for _, id := range ids {
			if int32(id%4) != shard {
				t.Fatalf("point %d grouped under shard %d", id, shard)
			}
		}
	}
	if total == 0 || total > 50 {
		t.Fatalf("candidates=%d", total)
	}
}

func BenchmarkTreeSearch5K(b *testing.B) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 5000, Dim: 64, Clusters: 16, Seed: 21,
	})
	refs := make([]Ref, 5000)
	for i := range refs {
		refs[i] = Ref{Shard: int32(i % 4), PointID: uint32(i)}
	}
	tree, err := Build(corpus.Vectors, refs, Config{})
	if err != nil {
		b.Fatal(err)
	}
	q := corpus.Queries(1, 23)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Search(q, 5, 500)
	}
}

func BenchmarkTreeBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	points := make([]vec.Vector, 2000)
	refs := make([]Ref, 2000)
	for i := range points {
		v := make(vec.Vector, 32)
		for d := range v {
			v[d] = rng.Float32()
		}
		points[i] = v
		refs[i] = Ref{PointID: uint32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(points, refs, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
