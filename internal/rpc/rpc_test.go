package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"musuite/internal/telemetry"

	"musuite/internal/trace"
)

// echoServer starts a server whose "echo" method returns the payload and
// whose "fail" method returns an error, replying inline on the poller.
func echoServer(t *testing.T, probe *telemetry.Probe) (*Server, string) {
	t.Helper()
	srv := NewServer(func(req *Request) {
		switch req.Method {
		case "echo":
			req.Reply(req.Payload)
		case "fail":
			req.ReplyError(errors.New("intentional failure"))
		case "slow":
			req.DetachPayload()
			go func() {
				time.Sleep(50 * time.Millisecond)
				req.Reply(req.Payload)
			}()
		default:
			req.ReplyError(fmt.Errorf("unknown method %q", req.Method))
		}
	}, &ServerOptions{Probe: probe})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Call("echo", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "hello" {
		t.Fatalf("reply=%q", reply)
	}
}

func TestCallEmptyAndLargePayloads(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if reply, err := c.Call("echo", nil); err != nil || len(reply) != 0 {
		t.Fatalf("empty payload: reply=%v err=%v", reply, err)
	}
	big := make([]byte, 1<<20)
	rand.New(rand.NewSource(1)).Read(big)
	reply, err := c.Call("echo", big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, big) {
		t.Fatal("1MB payload corrupted")
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("fail", nil)
	if err == nil || !strings.Contains(err.Error(), "intentional failure") {
		t.Fatalf("err=%v", err)
	}
	// The connection stays usable after a remote error.
	if _, err := c.Call("echo", []byte("x")); err != nil {
		t.Fatalf("post-error call failed: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()
	_, err := c.Call("nope", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err=%v", err)
	}
}

func TestAsyncGoManyInFlight(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()

	const n = 200
	done := make(chan *Call, n)
	payloads := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("msg-%d", i)
		payloads[p] = true
		c.Go("echo", []byte(p), nil, done)
	}
	for i := 0; i < n; i++ {
		call := <-done
		if call.Err != nil {
			t.Fatal(call.Err)
		}
		if !payloads[string(call.Reply)] {
			t.Fatalf("unexpected reply %q", call.Reply)
		}
		delete(payloads, string(call.Reply))
	}
	if len(payloads) != 0 {
		t.Fatalf("%d replies missing", len(payloads))
	}
}

// TestNoCrossDelivery issues concurrent calls with distinct payloads and
// verifies each caller receives exactly its own echo — the pending-table
// correctness property.
func TestNoCrossDelivery(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				want := fmt.Sprintf("g%d-i%d", g, i)
				reply, err := c.Call("echo", []byte(want))
				if err != nil {
					errs <- err
					return
				}
				if string(reply) != want {
					errs <- fmt.Errorf("cross-delivery: want %q got %q", want, reply)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAsyncReplyFromOtherGoroutine(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()
	start := time.Now()
	reply, err := c.Call("slow", []byte("deferred"))
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "deferred" {
		t.Fatalf("reply=%q", reply)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("slow reply returned too quickly")
	}
}

func TestCallTimeout(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()
	_, err := c.CallTimeout("slow", []byte("x"), 5*time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err=%v want ErrTimeout", err)
	}
	// Late response for the abandoned call must not disturb later calls.
	time.Sleep(80 * time.Millisecond)
	reply, err := c.Call("echo", []byte("after"))
	if err != nil || string(reply) != "after" {
		t.Fatalf("post-timeout call: %q %v", reply, err)
	}
}

func TestCallTimeoutFastEnough(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()
	reply, err := c.CallTimeout("echo", []byte("quick"), time.Second)
	if err != nil || string(reply) != "quick" {
		t.Fatalf("%q %v", reply, err)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	call := c.Go("slow", []byte("x"), nil, nil)
	time.Sleep(5 * time.Millisecond)
	c.Close()
	<-call.Done
	if call.Err == nil {
		t.Fatal("pending call survived Close without error")
	}
	// Calls after Close fail immediately.
	call2 := <-c.Go("echo", nil, nil, nil).Done
	if call2.Err != ErrClientClosed {
		t.Fatalf("err=%v want ErrClientClosed", call2.Err)
	}
}

func TestServerCloseFailsClients(t *testing.T) {
	srv, addr := echoServer(t, nil)
	c, _ := Dial(addr, nil)
	defer c.Close()
	if _, err := c.Call("echo", []byte("pre")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, err := c.Call("echo", []byte("post"))
	if err == nil {
		t.Fatal("call succeeded after server close")
	}
}

func TestDialFailure(t *testing.T) {
	_, err := Dial("127.0.0.1:1", &ClientOptions{DialTimeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestPoolRoundRobin(t *testing.T) {
	_, addr := echoServer(t, nil)
	p, err := DialPool(addr, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("size=%d", p.Size())
	}
	seen := make(map[*Client]int)
	for i := 0; i < 9; i++ {
		seen[p.Pick()]++
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin used %d of 3 conns", len(seen))
	}
	for c, n := range seen {
		if n != 3 {
			t.Errorf("conn %p picked %d times", c, n)
		}
		if _, err := c.Call("echo", []byte("pool")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolDialFailureCleansUp(t *testing.T) {
	if _, err := DialPool("127.0.0.1:1", 2, &ClientOptions{DialTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("pool dial to closed port succeeded")
	}
}

func TestTelemetryCountsFlow(t *testing.T) {
	probe := telemetry.NewProbe()
	_, addr := echoServer(t, probe)
	c, _ := Dial(addr, &ClientOptions{Probe: probe})
	defer c.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := c.Call("echo", []byte("t")); err != nil {
			t.Fatal(err)
		}
	}
	// Request + response per call, both directions instrumented on the
	// same probe: ≥ 2n sendmsg.
	if got := probe.SyscallCount(telemetry.SysSendmsg); got < 2*n {
		t.Errorf("sendmsg=%d want ≥%d", got, 2*n)
	}
	if got := probe.SyscallCount(telemetry.SysRecvmsg); got == 0 {
		t.Error("recvmsg=0")
	}
	if got := probe.SyscallCount(telemetry.SysEpollPwait); got == 0 {
		t.Error("epoll_pwait=0")
	}
	if probe.SyscallCount(telemetry.SysClone) < 2 {
		t.Error("clone<2 (poller + client reader)")
	}
	if probe.OverheadSnapshot(telemetry.OverheadNetTx).Count == 0 {
		t.Error("no Net_tx observations")
	}
	if probe.OverheadSnapshot(telemetry.OverheadNet).Count != n {
		t.Errorf("Net observations=%d want %d", probe.OverheadSnapshot(telemetry.OverheadNet).Count, n)
	}
	if probe.OverheadSnapshot(telemetry.OverheadRCU).Count != n {
		t.Errorf("RCU observations=%d want %d", probe.OverheadSnapshot(telemetry.OverheadRCU).Count, n)
	}
}

func TestOnResponseHook(t *testing.T) {
	_, addr := echoServer(t, nil)
	var hookCalls int
	var mu sync.Mutex
	c, err := Dial(addr, &ClientOptions{OnResponse: func(call *Call) bool {
		mu.Lock()
		hookCalls++
		mu.Unlock()
		if call.Received.IsZero() {
			t.Error("Received not stamped before hook")
		}
		return false
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		c.Call("echo", []byte("h"))
	}
	mu.Lock()
	defer mu.Unlock()
	if hookCalls != 5 {
		t.Fatalf("hook calls=%d", hookCalls)
	}
}

func TestFrameEncodeDecodeProperty(t *testing.T) {
	f := func(id uint64, method string, payload []byte) bool {
		if len(method) > 1000 {
			method = method[:1000]
		}
		in := frame{kind: kindRequest, id: id, method: method, payload: payload}
		enc, err := appendFrame(nil, in.kind, in.id, trace.SpanContext{}, in.method, in.payload)
		if err != nil {
			return false
		}
		var out frame
		br := newTestReader(enc)
		if _, err := readFrame(br, &out, nil); err != nil {
			return false
		}
		return out.kind == in.kind && out.id == in.id && out.method == in.method &&
			bytes.Equal(out.payload, in.payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMethodTooLong(t *testing.T) {
	in := frame{kind: kindRequest, method: strings.Repeat("m", 70000)}
	if _, err := appendFrame(nil, in.kind, in.id, trace.SpanContext{}, in.method, in.payload); err == nil {
		t.Fatal("oversized method accepted")
	}
}

func TestMalformedFrameRejected(t *testing.T) {
	// Body length smaller than the fixed header must error, not panic.
	bad := []byte{2, 0, 0, 0, 1, 2}
	var f frame
	if _, err := readFrame(newTestReader(bad), &f, nil); err == nil {
		t.Fatal("malformed frame accepted")
	}
}

func BenchmarkRPCRoundTrip(b *testing.B) {
	srv := NewServer(func(req *Request) { req.Reply(req.Payload) }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRPCPipelined(b *testing.B) {
	srv := NewServer(func(req *Request) { req.Reply(req.Payload) }, nil)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	c, _ := Dial(addr, nil)
	defer c.Close()
	payload := make([]byte, 128)
	const window = 32
	done := make(chan *Call, window)
	b.ReportAllocs()
	b.ResetTimer()
	inflight := 0
	for i := 0; i < b.N; i++ {
		for inflight >= window {
			call := <-done
			if call.Err != nil {
				b.Fatal(call.Err)
			}
			inflight--
		}
		c.Go("echo", payload, nil, done)
		inflight++
	}
	for inflight > 0 {
		<-done
		inflight--
	}
}
