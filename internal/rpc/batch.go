package rpc

import (
	"fmt"
	"sync"
	"time"

	"musuite/internal/trace"
	"musuite/internal/wire"
)

// Cross-request batching.  At high load the mid-tier's fan-out issues many
// small leaf RPCs whose per-call framing, syscall, and scheduling costs
// dominate; a Batcher coalesces outstanding calls bound for the same leaf
// replica into one carrier RPC.  The carrier payload is a length-prefixed
// sequence of (method, payload) sub-messages and its reply carries a status
// byte per item, so one poisoned item fails alone without condemning its
// batch-mates or being mistaken for a transport failure.

// BatchMethod is the reserved method name of a batched carrier RPC.
const BatchMethod = "rpc.batch"

// BatchItem is one member request inside a carrier payload.
type BatchItem struct {
	Method  string
	Payload []byte
	// Trace is the member's client-span context.  When any member of a
	// carrier is sampled, the carrier encodes a per-member span-context
	// header so each member keeps its own identity across the batch.
	Trace trace.SpanContext
}

// Carrier flag bits (one flags byte follows the member count).
const (
	// batchMemberTraced — every member is prefixed with a span-context
	// header (trace ID, span ID, parent ID, flags).
	batchMemberTraced uint8 = 1 << 0
)

func anyMemberTraced(items []BatchItem) bool {
	for i := range items {
		if items[i].Trace.Sampled() {
			return true
		}
	}
	return false
}

func encodeMemberContext(enc *wire.Encoder, sc trace.SpanContext) {
	enc.Uint64(sc.TraceID)
	enc.Uint64(sc.SpanID)
	enc.Uint64(sc.ParentID)
	enc.Uint8(sc.Flags)
}

func decodeMemberContext(dec *wire.Decoder) trace.SpanContext {
	var sc trace.SpanContext
	sc.TraceID = dec.Uint64()
	sc.SpanID = dec.Uint64()
	sc.ParentID = dec.Uint64()
	sc.Flags = dec.Uint8()
	return sc
}

// Per-item status bytes in a carrier reply.
const (
	batchOK  = 0 // reply payload follows
	batchErr = 1 // error text follows
)

// BatchItemError is an application-level failure of one member of a batch:
// the leaf received the carrier, executed this item, and rejected it, while
// the carrier RPC itself (and possibly every other item) succeeded.
// Classify maps it to ClassApplication so a per-item rejection is never
// retried as if the whole batch had hit a connection failure.
type BatchItemError struct {
	// Msg is the error text produced by the remote handler for this item.
	Msg string
}

func (e *BatchItemError) Error() string { return "rpc: batch item error: " + e.Msg }

// EncodeBatch encodes member requests into a carrier payload.  Layout:
// uvarint count | u8 flags | members, each optionally prefixed with a
// span-context header when the batchMemberTraced flag is set.
func EncodeBatch(items []BatchItem) []byte {
	size := 9
	for i := range items {
		size += len(items[i].Method) + len(items[i].Payload) + 8
	}
	var flags uint8
	if anyMemberTraced(items) {
		flags |= batchMemberTraced
		size += 25 * len(items)
	}
	enc := wire.NewEncoder(size)
	enc.Uvarint(uint64(len(items)))
	enc.Uint8(flags)
	for i := range items {
		if flags&batchMemberTraced != 0 {
			encodeMemberContext(enc, items[i].Trace)
		}
		enc.String(items[i].Method)
		enc.BytesField(items[i].Payload)
	}
	return enc.Bytes()
}

// DecodeBatch decodes a carrier payload into its member requests.
func DecodeBatch(b []byte) ([]BatchItem, error) {
	dec := wire.NewDecoder(b)
	n := int(dec.Uvarint())
	flags := dec.Uint8()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > wire.MaxSliceLen {
		return nil, wire.ErrTooLarge
	}
	items := make([]BatchItem, n)
	for i := range items {
		if flags&batchMemberTraced != 0 {
			items[i].Trace = decodeMemberContext(dec)
		}
		items[i].Method = dec.String()
		items[i].Payload = dec.BytesField()
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	return items, nil
}

// DecodeBatchInto decodes a carrier payload into parallel
// method/payload/span-context slices, reusing the capacity of the scratch
// the caller passes (pass methods[:0]/payloads[:0]/spans[:0] of recycled
// slices).  spans always comes back with one entry per member — the zero
// SpanContext for untraced carriers.  Payloads are views into b, valid
// only while b is.  Method names are interned against the previous
// item — a fan-out's carrier typically repeats one method, so in steady
// state decoding a whole batch allocates nothing.
func DecodeBatchInto(b []byte, methods []string, payloads [][]byte, spans []trace.SpanContext) ([]string, [][]byte, []trace.SpanContext, error) {
	dec := wire.NewDecoder(b)
	n := int(dec.Uvarint())
	flags := dec.Uint8()
	if err := dec.Err(); err != nil {
		return methods, payloads, spans, err
	}
	if n < 0 || n > wire.MaxSliceLen {
		return methods, payloads, spans, wire.ErrTooLarge
	}
	for i := 0; i < n; i++ {
		if flags&batchMemberTraced != 0 {
			spans = append(spans, decodeMemberContext(dec))
		} else {
			spans = append(spans, trace.SpanContext{})
		}
		mview := dec.BytesView()
		if last := len(methods) - 1; last >= 0 && string(mview) == methods[last] {
			methods = append(methods, methods[last])
		} else {
			methods = append(methods, string(mview))
		}
		payloads = append(payloads, dec.BytesView())
	}
	if err := dec.Err(); err != nil {
		return methods, payloads, spans, err
	}
	return methods, payloads, spans, nil
}

// AppendBatchReplyHeader begins a streamed carrier reply of n items in enc;
// follow with exactly n AppendBatchReplyItem calls.
func AppendBatchReplyHeader(enc *wire.Encoder, n int) {
	enc.Uvarint(uint64(n))
}

// AppendBatchReplyItem encodes one item's result: reply on a nil err, the
// error text otherwise.  The leaf's streamed batch path encodes each member
// straight into the carrier encoder this way, with no per-member reply
// slice surviving the loop.
func AppendBatchReplyItem(enc *wire.Encoder, reply []byte, err error) {
	if err != nil {
		enc.Uint8(batchErr)
		enc.String(err.Error())
	} else {
		enc.Uint8(batchOK)
		enc.BytesField(reply)
	}
}

// AppendBatchReply encodes per-item results into enc — the pooled-encoder
// form of EncodeBatchReply.  replies[i] is encoded when errs[i] is nil, the
// error text otherwise; the two slices are parallel to the decoded request
// items.
func AppendBatchReply(enc *wire.Encoder, replies [][]byte, errs []error) {
	AppendBatchReplyHeader(enc, len(replies))
	for i := range replies {
		AppendBatchReplyItem(enc, replies[i], errs[i])
	}
}

// EncodeBatchReply encodes per-item results into a carrier reply.
func EncodeBatchReply(replies [][]byte, errs []error) []byte {
	size := 8
	for i := range replies {
		size += len(replies[i]) + 8
	}
	enc := wire.NewEncoder(size)
	AppendBatchReply(enc, replies, errs)
	return enc.Bytes()
}

// DecodeBatchReply decodes a carrier reply, expecting exactly want items.
// errs[i] is a *BatchItemError for items the leaf rejected; the outer error
// reports a malformed reply (a transport-class failure for the whole batch).
func DecodeBatchReply(b []byte, want int) (replies [][]byte, errs []error, err error) {
	dec := wire.NewDecoder(b)
	n := int(dec.Uvarint())
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	if n != want {
		return nil, nil, fmt.Errorf("rpc: batch reply carries %d items, want %d", n, want)
	}
	replies = make([][]byte, n)
	errs = make([]error, n)
	for i := 0; i < n; i++ {
		switch dec.Uint8() {
		case batchOK:
			replies[i] = dec.BytesField()
		case batchErr:
			errs[i] = &BatchItemError{Msg: dec.String()}
		default:
			return nil, nil, fmt.Errorf("rpc: batch reply item %d: unknown status", i)
		}
	}
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	return replies, errs, nil
}

// FlushCause says why a batch left the queue.
type FlushCause int

const (
	// FlushSize — the queue reached MaxBatch members.
	FlushSize FlushCause = iota
	// FlushDeadline — the flush delay armed at first enqueue expired.
	FlushDeadline
	// FlushShutdown — the batcher closed with members still queued.
	FlushShutdown
)

// String names the cause.
func (c FlushCause) String() string {
	switch c {
	case FlushSize:
		return "size"
	case FlushDeadline:
		return "deadline"
	case FlushShutdown:
		return "shutdown"
	}
	return "unknown"
}

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// MaxBatch caps members per carrier RPC; reaching it flushes
	// immediately.  Values below 2 degrade to per-call sends.
	MaxBatch int
	// Delay returns the flush delay armed when the queue goes from empty
	// to non-empty.  It is consulted per arm, so an adaptive policy (a
	// fraction of the tracked leaf-latency digest) takes effect without
	// reconfiguring the batcher.  nil means a fixed 50µs.
	Delay func() time.Duration
	// OnFlush, when set, observes every flush with its member count and
	// cause — the occupancy/flush-cause telemetry feed.
	OnFlush func(items int, cause FlushCause)
}

// memberSlices recycles the member slices a flush hands to its demux.
var memberSlices = sync.Pool{New: func() any { return make([]*Call, 0, 32) }}

func putMemberSlice(s []*Call) {
	for i := range s {
		s[i] = nil
	}
	memberSlices.Put(s[:0]) //nolint:staticcheck // slice header indirection is fine here
}

// Batcher coalesces calls bound for one destination pool into carrier RPCs.
// A batch is flushed by whichever comes first of MaxBatch members or the
// flush delay; member calls complete individually, exactly as if they had
// been sent alone (same OnResponse hook, same Done delivery), so fan-out
// bookkeeping, hedging, and retries upstream never see the carrier.
type Batcher struct {
	pool       *Pool
	maxBatch   int
	delay      func() time.Duration
	onFlush    func(int, FlushCause)
	onResponse func(*Call) bool
	spans      *trace.Recorder

	mu     sync.Mutex
	queue  []*Call
	timer  *time.Timer
	gen    uint64 // flush generation; disarms stale deadline timers
	closed bool
}

// NewBatcher wraps pool with a batcher.  Member completions run the pool's
// OnResponse hook, preserving the response-thread hand-off of unbatched
// calls.
func NewBatcher(pool *Pool, opts BatcherOptions) *Batcher {
	b := &Batcher{
		pool:     pool,
		maxBatch: opts.MaxBatch,
		delay:    opts.Delay,
		onFlush:  opts.OnFlush,
	}
	if b.maxBatch < 1 {
		b.maxBatch = 1
	}
	if b.delay == nil {
		b.delay = func() time.Duration { return 50 * time.Microsecond }
	}
	if pool.opts != nil {
		b.onResponse = pool.opts.OnResponse
		b.spans = pool.opts.Spans
	}
	return b
}

// Go enqueues an asynchronous call for the batcher's destination.  The
// returned Call completes like a Client.Go call; Sent is the enqueue
// instant, so observed latency includes time spent waiting for batch-mates.
// A non-nil done must be buffered, as for Client.Go.
func (b *Batcher) Go(method string, payload []byte, data any, done chan *Call) *Call {
	call := b.newCall(method, payload, data, done)
	b.enqueue(call)
	return call
}

// GoRef is Go returning a generation-stamped reference, captured before the
// call can complete (see Client.GoRef).
func (b *Batcher) GoRef(method string, payload []byte, data any, done chan *Call) CallRef {
	call := b.newCall(method, payload, data, done)
	ref := call.Ref()
	b.enqueue(call)
	return ref
}

// GoRefSpan is GoRef for a traced member: sc rides the carrier as a
// per-member span-context header (or the plain frame header if the member
// ends up flushed alone), so batching never loses a request's identity.
func (b *Batcher) GoRefSpan(method string, payload []byte, sc trace.SpanContext, data any, done chan *Call) CallRef {
	call := b.newCall(method, payload, data, done)
	call.Trace = sc
	ref := call.Ref()
	b.enqueue(call)
	return ref
}

func (b *Batcher) newCall(method string, payload []byte, data any, done chan *Call) *Call {
	call := getCall()
	call.Method, call.Payload, call.Data = method, payload, data
	if done == nil {
		done = call.ownedDone()
	} else if cap(done) == 0 {
		panic("rpc: done channel must be buffered")
	}
	call.Done = done
	call.Sent = time.Now()
	return call
}

func (b *Batcher) enqueue(call *Call) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		call.Err = ErrClientClosed
		b.complete(call)
		return
	}
	if b.queue == nil {
		b.queue = memberSlices.Get().([]*Call)
	}
	b.queue = append(b.queue, call)
	if len(b.queue) >= b.maxBatch {
		members := b.takeLocked()
		b.mu.Unlock()
		b.send(members, FlushSize)
		return
	}
	if len(b.queue) == 1 {
		gen := b.gen
		b.timer = time.AfterFunc(b.delay(), func() { b.deadlineFlush(gen) })
	}
	b.mu.Unlock()
}

// takeLocked claims the queued members and disarms the deadline timer.
func (b *Batcher) takeLocked() []*Call {
	members := b.queue
	b.queue = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return members
}

func (b *Batcher) deadlineFlush(gen uint64) {
	b.mu.Lock()
	if b.closed || gen != b.gen || len(b.queue) == 0 {
		b.mu.Unlock()
		return
	}
	members := b.takeLocked()
	b.mu.Unlock()
	b.send(members, FlushDeadline)
}

// Abandon cancels a batched call.  Valid only while the caller still owns
// the call; prefer AbandonRef when its consumer may recycle it concurrently.
func (b *Batcher) Abandon(call *Call) {
	b.AbandonRef(call.Ref())
}

// AbandonRef cancels the referenced member if its generation is still
// current.  A still-queued member is removed (and recycled) before it is
// ever sent; a member already in flight is marked cancelled so the
// demultiplexer discards its slot of the carrier reply.  Mirrors
// Client.AbandonRef for the losing side of a hedged pair.
//
// It reports whether the member was removed from the queue here — a true
// return guarantees the call will never be delivered; false means the
// member was already claimed for a carrier (its delivery or discard is the
// send/demux path's business).
func (b *Batcher) AbandonRef(r CallRef) bool {
	if r.call == nil {
		return false
	}
	r.call.cancelAt(r.gen)
	b.mu.Lock()
	for i, m := range b.queue {
		// Pointer + generation must both match: the struct may have been
		// recycled and re-enqueued here as an unrelated member.
		if m == r.call && m.gen.Load() == r.gen {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			b.mu.Unlock()
			// Never sent, removed under the lock: this goroutine is the
			// sole owner now, so the struct can go straight back.
			m.Release()
			return true
		}
	}
	b.mu.Unlock()
	return false
}

// Close flushes any queued members as a final carrier and rejects further
// enqueues.  It does not close the underlying pool.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	members := b.takeLocked()
	b.mu.Unlock()
	if len(members) > 0 {
		b.send(members, FlushShutdown)
	}
}

// send ships claimed members as one carrier RPC (or, for a lone survivor,
// as a plain call — no carrier overhead when nothing coalesced).
func (b *Batcher) send(members []*Call, cause FlushCause) {
	live := members[:0]
	for _, m := range members {
		if m.isCancelled() {
			// Cancelled after being claimed from the queue: the abandon
			// path could no longer remove it, so ownership is ours.
			m.Release()
			continue
		}
		live = append(live, m)
	}
	if len(live) == 0 {
		putMemberSlice(members)
		return
	}
	if b.onFlush != nil {
		b.onFlush(len(live), cause)
	}
	if len(live) == 1 {
		call := live[0]
		putMemberSlice(members)
		b.pool.Pick().start(call)
		return
	}
	var flags uint8
	for _, m := range live {
		if m.Trace.Sampled() {
			flags |= batchMemberTraced
			break
		}
	}
	enc := wire.GetEncoder()
	enc.Uvarint(uint64(len(live)))
	enc.Uint8(flags)
	for _, m := range live {
		if flags&batchMemberTraced != 0 {
			encodeMemberContext(enc, m.Trace)
		}
		enc.String(m.Method)
		enc.BytesField(m.Payload)
	}
	carrier := getCall()
	carrier.Method = BatchMethod
	carrier.Payload = enc.Bytes()
	carrier.onDone = func(c *Call) { b.demux(live, c) }
	b.pool.Pick().start(carrier)
	// start copies the payload into the connection's write buffer before
	// returning, so the carrier encoder can recycle immediately.
	wire.PutEncoder(enc)
}

// demux distributes a carrier completion to its member calls on the reader
// goroutine — the same goroutine unbatched completions arrive on.  Member
// replies are views into the carrier's pooled reply buffer, shared by
// reference count instead of copied per member.
func (b *Batcher) demux(members []*Call, carrier *Call) {
	received := carrier.Received
	if received.IsZero() {
		received = time.Now()
	}
	failAll := func(err error) {
		for _, m := range members {
			if m.isCancelled() {
				m.Release()
				continue
			}
			m.Err = err
			m.Received = received
			b.complete(m)
		}
	}
	if carrier.Err != nil {
		// Whole-carrier failure: a transport- or server-level error with
		// every member's fate unknown.  Each member fails with the
		// carrier's error so per-item retry policy sees its true class.
		failAll(carrier.Err)
		carrier.Release()
		putMemberSlice(members)
		return
	}
	var d wire.Decoder
	d.Reset(carrier.Reply)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		failAll(err)
		carrier.Release()
		putMemberSlice(members)
		return
	}
	if n != len(members) {
		failAll(fmt.Errorf("rpc: batch reply carries %d items, want %d", n, len(members)))
		carrier.Release()
		putMemberSlice(members)
		return
	}
	cbuf := carrier.TakeReplyBuf()
	for i, m := range members {
		var view []byte
		var merr error
		switch d.Uint8() {
		case batchOK:
			view = d.BytesView()
		case batchErr:
			merr = &BatchItemError{Msg: d.String()}
		default:
			merr = fmt.Errorf("rpc: batch reply item %d: unknown status", i)
		}
		if err := d.Err(); err != nil {
			merr, view = err, nil
		}
		if m.isCancelled() {
			m.Release()
			continue
		}
		if view != nil && cbuf != nil {
			// The member's reply aliases the carrier buffer; share it by
			// reference so the buffer survives until every member's
			// consumer has released its view.
			cbuf.Retain()
			m.replyBuf = cbuf
		}
		m.Reply = view
		m.Err = merr
		m.Received = received
		b.complete(m)
	}
	cbuf.Release()
	carrier.Release()
	putMemberSlice(members)
}

// complete mirrors Client.complete for members that never traversed a
// client of their own (carrier demux, closed-batcher rejection).
func (b *Batcher) complete(call *Call) {
	if b.spans != nil && call.Trace.Sampled() {
		recordCallSpan(b.spans, call)
	}
	if b.onResponse != nil && b.onResponse(call) {
		return
	}
	call.finish()
}
