package rpc

import (
	"testing"
	"time"
)

// TestPoolReconnectsAfterServerRestart kills the server and restarts one on
// the same address; after the backoff, the pool must transparently redial
// and serve calls again.
func TestPoolReconnectsAfterServerRestart(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply([]byte("v1")) }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := DialPool(addr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if reply, err := p.Pick().Call("m", nil); err != nil || string(reply) != "v1" {
		t.Fatalf("pre-restart: %q %v", reply, err)
	}
	srv.Close()

	// Calls fail while the destination is down.
	failedOnce := false
	for i := 0; i < 4; i++ {
		if _, err := p.Pick().Call("m", nil); err != nil {
			failedOnce = true
		}
	}
	if !failedOnce {
		t.Fatal("no failure observed while server down")
	}

	// Restart on the same address.
	srv2 := NewServer(func(req *Request) { req.Reply([]byte("v2")) }, nil)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	defer srv2.Close()

	// Within a few backoff windows every slot reconnects.
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		if reply, err := p.Pick().Call("m", nil); err == nil && string(reply) == "v2" {
			recovered = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("pool never reconnected to the restarted server")
	}
}

// TestPoolReconnectBackoffLimitsDialRate: with the destination down, Pick
// must not dial on every call — at most one attempt per slot per backoff
// window (measured indirectly: Pick stays fast).
func TestPoolReconnectBackoffLimitsDialRate(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(nil) }, nil)
	addr, _ := srv.Start("127.0.0.1:0")
	p, err := DialPool(addr, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv.Close()
	// Let the client notice the close.
	p.Pick().Call("m", nil)
	time.Sleep(50 * time.Millisecond)

	// Burst of picks inside one backoff window: at most one dial attempt
	// happens, so the total time stays well under burst×dialTimeout.
	start := time.Now()
	for i := 0; i < 50; i++ {
		p.Pick()
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("50 picks took %v — dialing without backoff?", elapsed)
	}
}

// TestClosedPoolStopsReconnecting: after Close, Pick must not redial.
func TestClosedPoolStopsReconnecting(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(nil) }, nil)
	addr, _ := srv.Start("127.0.0.1:0")
	defer srv.Close()
	p, err := DialPool(addr, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	time.Sleep(reconnectBackoff + 50*time.Millisecond)
	c := p.Pick()
	if !c.Closed() {
		t.Fatal("closed pool produced a live client")
	}
}
