package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- carrier codec ---

func TestBatchCodecRoundTrip(t *testing.T) {
	items := []BatchItem{
		{Method: "a.one", Payload: []byte("hello")},
		{Method: "b.two", Payload: nil},
		{Method: "c.three", Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
	got, err := DecodeBatch(EncodeBatch(items))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i].Method != items[i].Method || !bytes.Equal(got[i].Payload, items[i].Payload) {
			t.Fatalf("item %d: got %q/%q want %q/%q",
				i, got[i].Method, got[i].Payload, items[i].Method, items[i].Payload)
		}
	}
}

func TestBatchDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatch([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Fatal("absurd item count accepted")
	}
	if _, err := DecodeBatch([]byte{3, 'x'}); err == nil {
		t.Fatal("truncated batch accepted")
	}
}

func TestBatchReplyPerItemStatus(t *testing.T) {
	replies := [][]byte{[]byte("ok-0"), nil, []byte("ok-2")}
	errs := []error{nil, errors.New("poisoned"), nil}
	gotReplies, gotErrs, err := DecodeBatchReply(EncodeBatchReply(replies, errs), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotReplies[0], replies[0]) || !bytes.Equal(gotReplies[2], replies[2]) {
		t.Fatalf("ok replies corrupted: %q %q", gotReplies[0], gotReplies[2])
	}
	if gotErrs[0] != nil || gotErrs[2] != nil {
		t.Fatalf("ok items carry errors: %v %v", gotErrs[0], gotErrs[2])
	}
	var be *BatchItemError
	if !errors.As(gotErrs[1], &be) || be.Msg != "poisoned" {
		t.Fatalf("failed item decoded as %v, want BatchItemError(poisoned)", gotErrs[1])
	}
}

func TestBatchReplyCountMismatch(t *testing.T) {
	b := EncodeBatchReply([][]byte{nil}, []error{nil})
	if _, _, err := DecodeBatchReply(b, 2); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestClassifyBatchItemError(t *testing.T) {
	if got := Classify(&BatchItemError{Msg: "no such key"}); got != ClassApplication {
		t.Fatalf("Classify(BatchItemError) = %v, want application", got)
	}
	wrapped := fmt.Errorf("shard 2: %w", &BatchItemError{Msg: "bad"})
	if got := Classify(wrapped); got != ClassApplication {
		t.Fatalf("Classify(wrapped BatchItemError) = %v, want application", got)
	}
	if Retryable(&BatchItemError{Msg: "x"}) {
		t.Fatal("a per-item application failure must not be retryable")
	}
}

// --- batcher behaviour against a live server ---

// batchEchoServer answers plain calls with their payload and carrier calls
// with a per-item echo; payloads equal to "bad" fail their item.  It counts
// carriers and plain calls.
func batchEchoServer(t *testing.T) (addr string, carriers, plains *atomic.Uint64) {
	t.Helper()
	carriers, plains = new(atomic.Uint64), new(atomic.Uint64)
	srv := NewServer(func(req *Request) {
		if req.Method != BatchMethod {
			plains.Add(1)
			req.Reply(req.Payload)
			return
		}
		carriers.Add(1)
		items, err := DecodeBatch(req.Payload)
		if err != nil {
			req.ReplyError(err)
			return
		}
		replies := make([][]byte, len(items))
		errs := make([]error, len(items))
		for i, it := range items {
			if string(it.Payload) == "bad" {
				errs[i] = errors.New("poisoned item")
			} else {
				replies[i] = it.Payload
			}
		}
		req.Reply(EncodeBatchReply(replies, errs))
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, carriers, plains
}

func startBatcher(t *testing.T, addr string, opts BatcherOptions) *Batcher {
	t.Helper()
	p, err := DialPool(addr, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	b := NewBatcher(p, opts)
	t.Cleanup(b.Close)
	return b
}

// flushLog records OnFlush observations for ordering assertions.
type flushLog struct {
	mu      sync.Mutex
	flushes []struct {
		items int
		cause FlushCause
	}
}

func (l *flushLog) record(items int, cause FlushCause) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushes = append(l.flushes, struct {
		items int
		cause FlushCause
	}{items, cause})
}

func (l *flushLog) snapshot() []struct {
	items int
	cause FlushCause
} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append(l.flushes[:0:0], l.flushes...)
}

func waitCalls(t *testing.T, calls []*Call) {
	t.Helper()
	for i, c := range calls {
		select {
		case <-c.Done:
		case <-time.After(5 * time.Second):
			t.Fatalf("call %d never completed", i)
		}
	}
}

func TestBatcherFlushOnSize(t *testing.T) {
	addr, carriers, plains := batchEchoServer(t)
	var log flushLog
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 4,
		Delay:    func() time.Duration { return time.Hour }, // size must trigger, not time
		OnFlush:  log.record,
	})
	calls := make([]*Call, 4)
	for i := range calls {
		calls[i] = b.Go("echo", []byte{byte('a' + i)}, nil, nil)
	}
	waitCalls(t, calls)
	for i, c := range calls {
		if c.Err != nil {
			t.Fatalf("call %d: %v", i, c.Err)
		}
		if want := []byte{byte('a' + i)}; !bytes.Equal(c.Reply, want) {
			t.Fatalf("call %d reply %q, want %q: demux misordered", i, c.Reply, want)
		}
	}
	if got := carriers.Load(); got != 1 {
		t.Fatalf("%d carriers sent, want 1", got)
	}
	if got := plains.Load(); got != 0 {
		t.Fatalf("%d plain calls sent, want 0", got)
	}
	fl := log.snapshot()
	if len(fl) != 1 || fl[0].items != 4 || fl[0].cause != FlushSize {
		t.Fatalf("flush log %+v, want one size-flush of 4", fl)
	}
}

func TestBatcherFlushOnDeadline(t *testing.T) {
	addr, carriers, _ := batchEchoServer(t)
	var log flushLog
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 64, // never reached: the deadline must trigger
		Delay:    func() time.Duration { return 2 * time.Millisecond },
		OnFlush:  log.record,
	})
	c1 := b.Go("echo", []byte("x"), nil, nil)
	c2 := b.Go("echo", []byte("y"), nil, nil)
	waitCalls(t, []*Call{c1, c2})
	if c1.Err != nil || c2.Err != nil {
		t.Fatalf("errors: %v %v", c1.Err, c2.Err)
	}
	if got := carriers.Load(); got != 1 {
		t.Fatalf("%d carriers sent, want 1", got)
	}
	fl := log.snapshot()
	if len(fl) != 1 || fl[0].items != 2 || fl[0].cause != FlushDeadline {
		t.Fatalf("flush log %+v, want one deadline-flush of 2", fl)
	}
}

func TestBatcherFlushOnShutdown(t *testing.T) {
	addr, carriers, _ := batchEchoServer(t)
	var log flushLog
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 64,
		Delay:    func() time.Duration { return time.Hour },
		OnFlush:  log.record,
	})
	calls := make([]*Call, 3)
	for i := range calls {
		calls[i] = b.Go("echo", []byte{byte('0' + i)}, nil, nil)
	}
	b.Close()
	waitCalls(t, calls)
	for i, c := range calls {
		if c.Err != nil {
			t.Fatalf("call %d failed across shutdown flush: %v", i, c.Err)
		}
	}
	if got := carriers.Load(); got != 1 {
		t.Fatalf("%d carriers sent, want 1", got)
	}
	fl := log.snapshot()
	if len(fl) != 1 || fl[0].items != 3 || fl[0].cause != FlushShutdown {
		t.Fatalf("flush log %+v, want one shutdown-flush of 3", fl)
	}
	// Post-close enqueues are rejected, not silently queued.
	late := b.Go("echo", []byte("late"), nil, nil)
	waitCalls(t, []*Call{late})
	if !errors.Is(late.Err, ErrClientClosed) {
		t.Fatalf("post-close call got %v, want ErrClientClosed", late.Err)
	}
}

func TestBatcherSingletonSkipsCarrier(t *testing.T) {
	addr, carriers, plains := batchEchoServer(t)
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 8,
		Delay:    func() time.Duration { return time.Millisecond },
	})
	c := b.Go("echo", []byte("solo"), nil, nil)
	waitCalls(t, []*Call{c})
	if c.Err != nil || !bytes.Equal(c.Reply, []byte("solo")) {
		t.Fatalf("reply %q err %v", c.Reply, c.Err)
	}
	if carriers.Load() != 0 || plains.Load() != 1 {
		t.Fatalf("carriers=%d plains=%d, want a lone member sent without carrier framing",
			carriers.Load(), plains.Load())
	}
}

func TestBatcherPerItemFailureIsolated(t *testing.T) {
	addr, _, _ := batchEchoServer(t)
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 3,
		Delay:    func() time.Duration { return time.Hour },
	})
	good1 := b.Go("echo", []byte("g1"), nil, nil)
	bad := b.Go("echo", []byte("bad"), nil, nil)
	good2 := b.Go("echo", []byte("g2"), nil, nil)
	waitCalls(t, []*Call{good1, bad, good2})
	if good1.Err != nil || good2.Err != nil {
		t.Fatalf("healthy batch-mates condemned: %v %v", good1.Err, good2.Err)
	}
	var be *BatchItemError
	if !errors.As(bad.Err, &be) {
		t.Fatalf("poisoned item got %v, want BatchItemError", bad.Err)
	}
	if Classify(bad.Err) != ClassApplication {
		t.Fatal("poisoned item classified retryable")
	}
}

func TestBatcherAbandonQueuedMember(t *testing.T) {
	addr, carriers, plains := batchEchoServer(t)
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 8,
		Delay:    func() time.Duration { return 5 * time.Millisecond },
	})
	keep := b.Go("echo", []byte("keep"), nil, nil)
	drop := b.Go("echo", []byte("drop"), nil, nil)
	b.Abandon(drop)
	waitCalls(t, []*Call{keep})
	if keep.Err != nil || !bytes.Equal(keep.Reply, []byte("keep")) {
		t.Fatalf("survivor reply %q err %v", keep.Reply, keep.Err)
	}
	// The abandoned member was removed before the flush, so the lone
	// survivor went out as a plain call and the dropped one never reached
	// the wire.
	if carriers.Load() != 0 || plains.Load() != 1 {
		t.Fatalf("carriers=%d plains=%d after abandoning one of two members",
			carriers.Load(), plains.Load())
	}
	select {
	case <-drop.Done:
		t.Fatal("abandoned member delivered a completion")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestBatcherWholeCarrierFailureFailsEveryMember(t *testing.T) {
	// A server that rejects the carrier itself (application-level), so the
	// demux must fan the carrier error out to every member.
	srv := NewServer(func(req *Request) {
		req.ReplyError(errors.New("carrier refused"))
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	b := startBatcher(t, addr, BatcherOptions{
		MaxBatch: 2,
		Delay:    func() time.Duration { return time.Hour },
	})
	c1 := b.Go("echo", []byte("a"), nil, nil)
	c2 := b.Go("echo", []byte("b"), nil, nil)
	waitCalls(t, []*Call{c1, c2})
	for i, c := range []*Call{c1, c2} {
		if c.Err == nil {
			t.Fatalf("member %d succeeded under a failed carrier", i)
		}
	}
}
