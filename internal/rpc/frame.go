// Package rpc is μSuite's RPC substrate: the stdlib stand-in for gRPC.
//
// It provides length-prefixed binary framing over TCP, a server whose
// per-connection reader goroutines play the role of μSuite's network poller
// threads, and a fully asynchronous client in which no execution thread is
// associated with a particular RPC — all call state is explicit in a pending
// table, exactly as §IV of the paper describes.  Frame reads and writes feed
// the telemetry probe at the same boundaries where a native implementation
// would cross the kernel (sendmsg/recvmsg/epoll_pwait), so the syscall and
// OS-overhead characterizations of Figs. 11–18 can be regenerated.
package rpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// Frame kinds on the wire.
const (
	kindRequest  byte = 1
	kindResponse byte = 2
	kindError    byte = 3
	// kindRequestTraced is a request carrying a trace header: 25 extra
	// bytes (trace ID, span ID, parent span ID — little-endian u64 each —
	// and a flags byte) between the call ID and the method length.
	// Unsampled requests keep the kindRequest layout, so the untraced hot
	// path is byte-identical with tracing compiled in.
	kindRequestTraced byte = 4
	// kindReject is a typed shed: the server refused the request before
	// executing it (admission limit, deadline-doomed, queue full).  Same
	// layout as kindError with the shed reason as payload, but the client
	// surfaces it as an OverloadError so callers can tell load shedding
	// apart from application failures — sheds are never retried and never
	// consume retry budget.
	kindReject byte = 5
)

// traceHdrLen is the size of the span-context header on traced frames.
const traceHdrLen = 8 + 8 + 8 + 1

// MaxFrameSize bounds a single message; larger frames abort the connection.
const MaxFrameSize = 64 << 20

// ErrFrameTooLarge reports a frame exceeding MaxFrameSize.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// ErrClientClosed reports use of a closed client.
var ErrClientClosed = errors.New("rpc: client closed")

// ErrTimeout reports an RPC that exceeded its deadline.
var ErrTimeout = errors.New("rpc: call timed out")

// frame is the unit of transmission.
//
// Layout: u32 body length | u8 kind | u64 id | [trace header, traced
// requests only] | u16 method length | method bytes | payload.  For
// kindError the payload carries the error text.
type frame struct {
	kind    byte
	id      uint64
	method  string
	payload []byte
	// sc is the span context of a kindRequestTraced frame (zero otherwise).
	sc trace.SpanContext
	// buf is the full-capacity backing storage payload points into, kept
	// separately so repeated reads reuse one allocation (payload's own
	// capacity erodes by the header length on every frame).
	buf []byte
	// hdr is the length-prefix scratch; a function-local array would be
	// heap-allocated per frame once it escapes into io.ReadFull.
	hdr [4]byte
}

const frameHeaderLen = 4 + 1 + 8 + 2

// appendFrame encodes one frame onto the end of buf (reusing capacity,
// never truncating — the write coalescer accumulates several frames in one
// buffer) and returns the result.  On error buf is unmodified.
func appendFrame(buf []byte, kind byte, id uint64, sc trace.SpanContext, method string, payload []byte) ([]byte, error) {
	if len(method) > 0xFFFF {
		return buf, fmt.Errorf("rpc: method name too long (%d bytes)", len(method))
	}
	if kind == kindRequestTraced {
		// Callers pass kindRequest + a sampled context; a re-encoded
		// decoded frame normalizes back through the same rule.
		kind = kindRequest
	}
	traced := kind == kindRequest && sc.Sampled()
	body := 1 + 8 + 2 + len(method) + len(payload)
	if traced {
		kind = kindRequestTraced
		body += traceHdrLen
	}
	if body > MaxFrameSize {
		return buf, ErrFrameTooLarge
	}
	buf = append(buf, byte(body), byte(body>>8), byte(body>>16), byte(body>>24))
	buf = append(buf, kind)
	buf = append(buf,
		byte(id), byte(id>>8), byte(id>>16), byte(id>>24),
		byte(id>>32), byte(id>>40), byte(id>>48), byte(id>>56))
	if traced {
		buf = appendTraceHeader(buf, sc)
	}
	ml := len(method)
	buf = append(buf, byte(ml), byte(ml>>8))
	buf = append(buf, method...)
	buf = append(buf, payload...)
	return buf, nil
}

// appendTraceHeader encodes sc in the traced-frame header layout.
func appendTraceHeader(buf []byte, sc trace.SpanContext) []byte {
	for _, v := range [3]uint64{sc.TraceID, sc.SpanID, sc.ParentID} {
		buf = append(buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	return append(buf, sc.Flags)
}

// readTraceHeader decodes a traced-frame header from b (len ≥ traceHdrLen).
func readTraceHeader(b []byte) trace.SpanContext {
	u64 := func(p []byte) uint64 {
		return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
	}
	return trace.SpanContext{
		TraceID:  u64(b[0:8]),
		SpanID:   u64(b[8:16]),
		ParentID: u64(b[16:24]),
		Flags:    b[24],
	}
}

// writeFrame sends one frame on w under the caller's write lock, counting
// one sendmsg proxy and observing the Net_tx overhead class.  The
// uncoalesced path (-write-coalesce=false).
func writeFrame(w io.Writer, buf *[]byte, kind byte, id uint64, sc trace.SpanContext, method string, payload []byte, probe *telemetry.Probe) error {
	enc, err := appendFrame((*buf)[:0], kind, id, sc, method, payload)
	if err != nil {
		return err
	}
	*buf = enc
	start := time.Now()
	_, err = w.Write(enc)
	probe.IncSyscall(telemetry.SysSendmsg)
	probe.ObserveOverhead(telemetry.OverheadNetTx, time.Since(start))
	return err
}

// readFrame reads one frame from br into f, reusing f.payload capacity.
//
// Instrumentation: if no bytes are buffered, the reader is about to park in
// the kernel, so one epoll_pwait proxy and one context switch are counted.
// Once the first byte is available, the drain of the remaining bytes is
// timed as Net_rx and the header decode as Hardirq.  firstByte reports the
// instant data became available (the "interrupt" analog).
func readFrame(br *bufio.Reader, f *frame, probe *telemetry.Probe) (firstByte time.Time, err error) {
	if br.Buffered() == 0 {
		// The poller blocks awaiting work, as in the paper's
		// block-based front-end design.
		probe.IncSyscall(telemetry.SysEpollPwait)
		probe.IncContextSwitch()
	}
	if _, err = br.Peek(1); err != nil {
		return time.Time{}, err
	}
	firstByte = time.Now()

	if _, err = io.ReadFull(br, f.hdr[:]); err != nil {
		return firstByte, err
	}
	body := int(f.hdr[0]) | int(f.hdr[1])<<8 | int(f.hdr[2])<<16 | int(f.hdr[3])<<24
	if body < 1+8+2 {
		return firstByte, fmt.Errorf("rpc: malformed frame body length %d", body)
	}
	if body > MaxFrameSize {
		return firstByte, ErrFrameTooLarge
	}
	if cap(f.buf) < body {
		f.buf = make([]byte, body)
	}
	raw := f.buf[:body]
	if _, err = io.ReadFull(br, raw); err != nil {
		return firstByte, err
	}
	drained := time.Now()
	probe.ObserveOverhead(telemetry.OverheadNetRx, drained.Sub(firstByte))

	f.kind = raw[0]
	f.id = uint64(raw[1]) | uint64(raw[2])<<8 | uint64(raw[3])<<16 | uint64(raw[4])<<24 |
		uint64(raw[5])<<32 | uint64(raw[6])<<40 | uint64(raw[7])<<48 | uint64(raw[8])<<56
	off := 9
	if f.kind == kindRequestTraced {
		if body < 1+8+traceHdrLen+2 {
			return firstByte, fmt.Errorf("rpc: traced frame body length %d too short", body)
		}
		f.sc = readTraceHeader(raw[9 : 9+traceHdrLen])
		off += traceHdrLen
	} else {
		f.sc = trace.SpanContext{}
	}
	ml := int(raw[off]) | int(raw[off+1])<<8
	if off+2+ml > body {
		return firstByte, fmt.Errorf("rpc: method length %d exceeds frame", ml)
	}
	// Interned method: consecutive frames from one peer overwhelmingly
	// repeat the same method, and string comparison against a []byte does
	// not allocate, so the conversion runs only when the method changes.
	if mview := raw[off+2 : off+2+ml]; string(mview) != f.method {
		f.method = string(mview)
	}
	f.payload = raw[off+2+ml : body]
	probe.ObserveOverhead(telemetry.OverheadHardirq, time.Since(drained))
	return firstByte, nil
}

// countingConn wraps a net.Conn so every kernel read crossing is counted as
// a recvmsg proxy.  bufio batches reads, so at high load many frames share
// one recvmsg — reproducing the paper's per-QPS syscall economics.
type countingConn struct {
	net.Conn
	probe *telemetry.Probe
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.probe.IncSyscall(telemetry.SysRecvmsg)
	return n, err
}
