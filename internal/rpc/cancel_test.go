package rpc

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestAbandonDropsResponse(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan *Call, 1)
	call := c.Go("slow", []byte("late"), nil, done)
	if got := c.Pending(); got != 1 {
		t.Fatalf("pending=%d before abandon, want 1", got)
	}
	c.Abandon(call)
	if got := c.Pending(); got != 0 {
		t.Fatalf("pending=%d after abandon, want 0", got)
	}

	// The server replies after 50ms; the late response must be discarded,
	// not delivered or crash the read loop.
	select {
	case <-done:
		t.Fatal("abandoned call was delivered")
	case <-time.After(120 * time.Millisecond):
	}

	// The connection remains usable after discarding the late frame.
	reply, err := c.Call("echo", []byte("still alive"))
	if err != nil || string(reply) != "still alive" {
		t.Fatalf("post-abandon call: reply=%q err=%v", reply, err)
	}
}

func TestFinishDropsCancelledCall(t *testing.T) {
	// A cancelled call must be dropped by finish, not delivered.
	call := &Call{Done: make(chan *Call, 1)}
	call.cancelAt(call.gen.Load())
	call.finish()
	select {
	case <-call.Done:
		t.Fatal("cancelled call delivered")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestStaleCancelDoesNotStick(t *testing.T) {
	// A cancel aimed at generation g must not affect the call once it has
	// been recycled into generation g+1 (a late Abandon via a stale ref).
	call := getCall()
	gen := call.gen.Load()
	call.Release()
	call.cancelAt(gen) // stale: references the released generation
	if reused := getCall(); reused == call {
		if reused.isCancelled() {
			t.Fatal("stale cancel marker cancelled the recycled call")
		}
		reused.Release()
	}
}

func TestGoPanicsOnUnbufferedDone(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Go accepted an unbuffered done channel")
		}
	}()
	c.Go("echo", []byte("x"), nil, make(chan *Call))
}

func TestFinishDeliversLiveCall(t *testing.T) {
	call := &Call{Done: make(chan *Call, 1)}
	call.finish()
	select {
	case got := <-call.Done:
		if got != call {
			t.Fatal("wrong call delivered")
		}
	default:
		t.Fatal("live call not delivered on buffered channel")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrClass
	}{
		{&RemoteError{Msg: "leaf failure"}, ClassApplication},
		{fmt.Errorf("wrapped: %w", &RemoteError{Msg: "x"}), ClassApplication},
		{ErrTimeout, ClassTimeout},
		{fmt.Errorf("call: %w", ErrTimeout), ClassTimeout},
		{ErrClientClosed, ClassConnection},
		{io.EOF, ClassConnection},
		{errors.New("dial tcp: connection refused"), ClassConnection},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}

	if Retryable(nil) {
		t.Error("nil error must not be retryable")
	}
	if Retryable(&RemoteError{Msg: "x"}) {
		t.Error("application errors must not be retryable: the server already executed the request")
	}
	if !Retryable(ErrTimeout) {
		t.Error("timeouts must be retryable")
	}
	if !Retryable(io.EOF) {
		t.Error("connection errors must be retryable")
	}
}

func TestRemoteErrorUnwrapsOverWire(t *testing.T) {
	_, addr := echoServer(t, nil)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call("fail", nil)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("server-side failure did not surface as *RemoteError: %v", err)
	}
	if remote.Msg != "intentional failure" {
		t.Fatalf("Msg=%q", remote.Msg)
	}
	if Classify(err) != ClassApplication {
		t.Fatalf("wire remote error classified %v, want application", Classify(err))
	}
}
