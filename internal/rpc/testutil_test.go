package rpc

import (
	"bufio"
	"bytes"
)

// newTestReader wraps raw bytes in the bufio.Reader readFrame expects.
func newTestReader(raw []byte) *bufio.Reader {
	return bufio.NewReader(bytes.NewReader(raw))
}
