package rpc

import (
	"io"
	"time"

	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// writeQueue coalesces outgoing frames on one connection into batched
// writes — the userspace analog of writev/sendmsg gathering.  Senders append
// their encoded frame under a short lock; the sender that finds no flush in
// progress becomes the flusher and writes everything queued in one
// conn.Write (counted as a single SysSendmsg, matching the paper's
// syscalls-per-QPS accounting).  Frames that arrive while that write is in
// flight accumulate and go out in the flusher's next pass, so under
// contention N frames cost one syscall and one lock hand-off each instead
// of a serialized write apiece — the socket-lock futex/HITM source §VI
// identifies.  An uncontended sender still writes immediately; coalescing
// adds no idle latency.
type writeQueue struct {
	conn  io.Writer
	probe *telemetry.Probe
	// onError runs once, outside the lock, after the first write failure;
	// the owner uses it to tear the connection down so its reader unblocks.
	onError func(error)

	mu       *telemetry.Mutex
	buf      []byte // frames awaiting the next write
	scratch  []byte // frames currently being written (swapped with buf)
	flushing bool
	err      error
	notified bool
}

// maxIdleWriteBuf bounds how much scratch capacity an idle queue retains.
const maxIdleWriteBuf = 1 << 20

func newWriteQueue(conn io.Writer, probe *telemetry.Probe, onError func(error)) *writeQueue {
	return &writeQueue{conn: conn, probe: probe, onError: onError, mu: telemetry.NewMutex(probe)}
}

// enqueue appends one frame and flushes unless another sender already is.
// The frame is fully copied into the queue before enqueue returns, so the
// caller may immediately reuse method/payload storage.  A nil error means
// the frame was accepted — it reaches the socket on this or a concurrent
// flush, and a later write failure surfaces through onError, not here.
func (q *writeQueue) enqueue(kind byte, id uint64, sc trace.SpanContext, method string, payload []byte) error {
	q.mu.Lock()
	if q.err != nil {
		err := q.err
		q.mu.Unlock()
		return err
	}
	b, err := appendFrame(q.buf, kind, id, sc, method, payload)
	if err != nil {
		q.mu.Unlock()
		return err
	}
	q.buf = b
	if q.flushing {
		q.mu.Unlock()
		return nil
	}
	q.flushing = true
	for q.err == nil && len(q.buf) > 0 {
		q.buf, q.scratch = q.scratch[:0], q.buf
		q.mu.Unlock()
		start := time.Now()
		_, werr := q.conn.Write(q.scratch)
		q.probe.IncSyscall(telemetry.SysSendmsg)
		q.probe.ObserveOverhead(telemetry.OverheadNetTx, time.Since(start))
		q.mu.Lock()
		if werr != nil && q.err == nil {
			q.err = werr
		}
	}
	q.flushing = false
	if cap(q.scratch) > maxIdleWriteBuf {
		q.scratch = nil
	}
	var notify error
	if q.err != nil && !q.notified {
		q.notified = true
		notify = q.err
	}
	q.mu.Unlock()
	if notify != nil && q.onError != nil {
		q.onError(notify)
	}
	return nil
}
