package rpc

import (
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"musuite/internal/trace"
)

// TestServerSurvivesGarbageBytes writes random byte streams straight at the
// server socket; the server must drop the bad connections without crashing
// and keep serving well-formed clients.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	var served atomic.Int64
	srv := NewServer(func(req *Request) {
		served.Add(1)
		req.Reply(req.Payload)
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 1+rng.Intn(512))
		rng.Read(junk)
		conn.Write(junk)
		conn.Close()
	}
	// Also a frame announcing an absurd body length.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xFF, 0xFF, 0xFF, 0x7F, kindRequest})
	conn.Close()

	// A legitimate client still works.
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Call("echo", []byte("still alive"))
	if err != nil || string(reply) != "still alive" {
		t.Fatalf("post-garbage call: %q %v", reply, err)
	}
}

// TestClientSurvivesGarbageResponse points a client at a server that
// answers with garbage; the client must fail its calls rather than hang or
// panic.
func TestClientSurvivesGarbageResponse(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				buf := make([]byte, 256)
				conn.Read(buf)
				// Reply with a malformed frame: tiny body length.
				conn.Write([]byte{2, 0, 0, 0, 9, 9})
			}(conn)
		}
	}()

	c, err := Dial(lis.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.CallTimeout("anything", []byte("x"), 5*time.Second)
	if err == nil {
		t.Fatal("garbage response produced a successful call")
	}
}

// TestClientSurvivesStrayResponses: a server that answers with valid frames
// carrying unknown call IDs must not corrupt real calls.
func TestClientSurvivesStrayResponses(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Shower the client with responses for calls it never made...
		var buf []byte
		for id := uint64(1000); id < 1010; id++ {
			buf, _ = appendFrame(buf[:0], kindResponse, id, trace.SpanContext{}, "", []byte("stray"))
			conn.Write(buf)
		}
		// ...then serve its actual request (ID 1).
		hdr := make([]byte, 4)
		if _, err := readFull(conn, hdr); err != nil {
			return
		}
		body := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16 | int(hdr[3])<<24
		raw := make([]byte, body)
		if _, err := readFull(conn, raw); err != nil {
			return
		}
		buf, _ = appendFrame(buf[:0], kindResponse, 1, trace.SpanContext{}, "", []byte("real"))
		conn.Write(buf)
	}()

	c, err := Dial(lis.Addr().String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.CallTimeout("m", []byte("q"), 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "real" {
		t.Fatalf("reply=%q (stray response delivered?)", reply)
	}
}

func readFull(conn net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// TestManyConnectionsChurn opens and closes many client connections with
// traffic in between; the server must neither leak pollers nor wedge.
func TestManyConnectionsChurn(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(req.Payload) }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 40; i++ {
		c, err := Dial(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call("m", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}
