package rpc

import (
	"strings"
	"testing"
)

func TestServerStartBadAddress(t *testing.T) {
	srv := NewServer(func(req *Request) {}, nil)
	if _, err := srv.Start("256.0.0.1:99999"); err == nil {
		t.Fatal("bogus address accepted")
	}
	srv.Close()
}

func TestServerStartAfterClose(t *testing.T) {
	srv := NewServer(func(req *Request) {}, nil)
	srv.Close()
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Fatal("Start after Close succeeded")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(nil) }, nil)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestClientAddrAndClosed(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(nil) }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Addr(); !strings.HasPrefix(got, "127.0.0.1:") {
		t.Fatalf("addr=%q", got)
	}
	if c.Closed() {
		t.Fatal("fresh client reports closed")
	}
	c.Close()
	if !c.Closed() {
		t.Fatal("closed client reports open")
	}
	// Close is idempotent.
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestRequestDoubleReplyIgnored(t *testing.T) {
	srv := NewServer(func(req *Request) {
		req.Reply([]byte("first"))
		req.Reply([]byte("second"))      // ignored
		req.ReplyError(ErrFrameTooLarge) // ignored
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Call("m", nil)
	if err != nil || string(reply) != "first" {
		t.Fatalf("%q %v", reply, err)
	}
	// The connection is healthy afterwards.
	if _, err := c.Call("m", nil); err != nil {
		t.Fatal(err)
	}
}
