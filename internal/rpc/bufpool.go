package rpc

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Reply-buffer pooling.  The reader goroutine copies each response payload
// out of the connection's frame buffer (which is reused for the next frame)
// into a Buf drawn from a size-classed pool.  Whoever consumes the reply —
// the mid-tier merge path, a synchronous caller, the batch demultiplexer —
// releases the Buf once the bytes are dead, so steady-state reception
// allocates nothing.  Bufs are reference counted because one carrier reply
// can back many batch members' reply views at once.

// bufMinBits..bufMaxBits bound the pooled size classes (256 B … 1 MiB).
// Replies above the top class are plainly allocated and never pooled; one
// giant response must not pin a megabyte in every pool shard.
const (
	bufMinBits = 8
	bufMaxBits = 20
)

var bufPools [bufMaxBits - bufMinBits + 1]sync.Pool

// Buf is a pooled, reference-counted byte buffer holding one reply payload.
type Buf struct {
	b     []byte
	class int8 // pool index, -1 for unpooled oversize buffers
	refs  atomic.Int32
}

// grabBuf returns a Buf with at least n bytes of capacity, length n, and a
// reference count of one.
func grabBuf(n int) *Buf {
	cls := bufClass(n)
	if cls < 0 {
		b := &Buf{b: make([]byte, n), class: -1}
		b.refs.Store(1)
		return b
	}
	v := bufPools[cls].Get()
	if v == nil {
		b := &Buf{b: make([]byte, n, 1<<(cls+bufMinBits)), class: int8(cls)}
		b.refs.Store(1)
		return b
	}
	b := v.(*Buf)
	b.b = b.b[:n]
	b.refs.Store(1)
	return b
}

// bufClass maps a payload size to its pool index, or -1 for oversize.
func bufClass(n int) int {
	if n > 1<<bufMaxBits {
		return -1
	}
	bitsLen := bits.Len(uint(n - 1))
	if n <= 1<<bufMinBits {
		bitsLen = bufMinBits
	}
	return bitsLen - bufMinBits
}

// bytes returns the buffer's payload slice.
func (b *Buf) bytes() []byte { return b.b }

// Retain adds a reference; every Retain needs a matching Release.
func (b *Buf) Retain() { b.refs.Add(1) }

// Release drops a reference and recycles the buffer when the last one goes.
// After the caller's Release, any slice aliasing the Buf is invalid: the
// memory may back an unrelated reply on another connection.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	if b.refs.Add(-1) != 0 {
		return
	}
	if b.class < 0 {
		return
	}
	bufPools[b.class].Put(b)
}
