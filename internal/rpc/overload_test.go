package rpc

import (
	"errors"
	"fmt"
	"testing"
)

// TestOverloadRoundTrip verifies the typed-shed path end to end: a handler
// replying with an OverloadError crosses the wire as kindReject and
// surfaces at the client as an OverloadError again — overload-classified,
// not retryable, and distinguishable from application errors.
func TestOverloadRoundTrip(t *testing.T) {
	srv := NewServer(func(req *Request) {
		switch req.Method {
		case "shed":
			req.ReplyError(Overloadf("admission limit"))
		case "shed-wrapped":
			req.ReplyError(fmt.Errorf("midtier: %w", Overloadf("queue full")))
		default:
			req.ReplyError(errors.New("plain failure"))
		}
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, method := range []string{"shed", "shed-wrapped"} {
		_, err = c.Call(method, []byte("x"))
		if err == nil {
			t.Fatalf("%s: expected error", method)
		}
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("%s: got %T (%v), want *OverloadError", method, err, err)
		}
		if !IsOverload(err) {
			t.Fatalf("%s: IsOverload=false", method)
		}
		if got := Classify(err); got != ClassOverload {
			t.Fatalf("%s: Classify=%v, want overload", method, got)
		}
		if Retryable(err) {
			t.Fatalf("%s: overload shed must not be retryable", method)
		}
	}

	// A plain error still classifies as application, and the wrapped
	// overload's reason survives the wire.
	_, err = c.Call("other", nil)
	if IsOverload(err) || Classify(err) != ClassApplication {
		t.Fatalf("plain error misclassified: %v", err)
	}
	_, err = c.Call("shed", nil)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Msg != "admission limit" {
		t.Fatalf("shed reason lost: %v", err)
	}
}
