package rpc

import (
	"bufio"
	"bytes"
	"testing"

	"musuite/internal/trace"
)

// FuzzFrameRead feeds arbitrary bytes to readFrame.  Malformed input must
// surface as an error, never a panic or an out-of-bounds payload view; a
// frame that does decode must survive an appendFrame→readFrame round trip
// bit-for-bit, which pins the header layout both directions at once.
func FuzzFrameRead(f *testing.F) {
	valid, _ := appendFrame(nil, kindRequest, 42, trace.SpanContext{}, "search.knn", []byte("query-bytes"))
	f.Add(valid)
	empty, _ := appendFrame(nil, kindResponse, 1, trace.SpanContext{}, "", nil)
	f.Add(empty)
	traced, _ := appendFrame(nil, kindRequest, 7,
		trace.SpanContext{TraceID: 0xAB, SpanID: 0xCD, ParentID: 0xEF, Flags: trace.FlagSampled},
		"search.knn", []byte("q"))
	f.Add(traced)
	// Length prefix claiming far more body than follows.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1})
	// Body length below the fixed header minimum.
	f.Add([]byte{3, 0, 0, 0, 1, 2, 3})
	// Method length overrunning the declared body.
	f.Add([]byte{12, 0, 0, 0, 1, 9, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0})
	// Traced kind with a body too short to hold the trace header.
	f.Add([]byte{11, 0, 0, 0, 4, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var fr frame
		if _, err := readFrame(br, &fr, nil); err != nil {
			return
		}
		if len(fr.payload) > len(data) {
			t.Fatalf("payload %d bytes exceeds %d-byte input", len(fr.payload), len(data))
		}
		reenc, err := appendFrame(nil, fr.kind, fr.id, fr.sc, fr.method, fr.payload)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		var fr2 frame
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(reenc)), &fr2, nil); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// A traced frame whose flags lost the sampled bit re-encodes as a
		// plain request (the header only travels when sampled); everything
		// else must round trip exactly.
		wantKind, wantSC := fr.kind, fr.sc
		if fr.kind == kindRequestTraced && !fr.sc.Sampled() {
			wantKind, wantSC = kindRequest, trace.SpanContext{}
		}
		if fr2.kind != wantKind || fr2.id != fr.id || fr2.method != fr.method ||
			fr2.sc != wantSC || !bytes.Equal(fr2.payload, fr.payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", fr2, fr)
		}
	})
}
