package rpc

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzFrameRead feeds arbitrary bytes to readFrame.  Malformed input must
// surface as an error, never a panic or an out-of-bounds payload view; a
// frame that does decode must survive an appendFrame→readFrame round trip
// bit-for-bit, which pins the header layout both directions at once.
func FuzzFrameRead(f *testing.F) {
	valid, _ := appendFrame(nil, kindRequest, 42, "search.knn", []byte("query-bytes"))
	f.Add(valid)
	empty, _ := appendFrame(nil, kindResponse, 1, "", nil)
	f.Add(empty)
	// Length prefix claiming far more body than follows.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1})
	// Body length below the fixed header minimum.
	f.Add([]byte{3, 0, 0, 0, 1, 2, 3})
	// Method length overrunning the declared body.
	f.Add([]byte{12, 0, 0, 0, 1, 9, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var fr frame
		if _, err := readFrame(br, &fr, nil); err != nil {
			return
		}
		if len(fr.payload) > len(data) {
			t.Fatalf("payload %d bytes exceeds %d-byte input", len(fr.payload), len(data))
		}
		reenc, err := appendFrame(nil, fr.kind, fr.id, fr.method, fr.payload)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		var fr2 frame
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(reenc)), &fr2, nil); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if fr2.kind != fr.kind || fr2.id != fr.id || fr2.method != fr.method ||
			!bytes.Equal(fr2.payload, fr.payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", fr2, fr)
		}
	})
}
