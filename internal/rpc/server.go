package rpc

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// Request is one incoming RPC as seen by a server.  The network poller
// goroutine that read the frame hands the Request to the server's handler;
// Reply and ReplyError may be called later from any goroutine — there is no
// thread↔RPC affinity, matching μSuite's asynchronous design.
type Request struct {
	// Method names the remote procedure.
	Method string
	// Payload is the encoded request body.  It is valid until Reply or
	// ReplyError is called; handlers that dispatch asynchronously and
	// need it longer must copy it.
	Payload []byte
	// FirstByte is when the request's first byte became readable (the
	// hard-interrupt analog) and Arrival when the frame was fully
	// decoded.  The mid-tier's Net overhead is measured from Arrival.
	FirstByte time.Time
	Arrival   time.Time

	id   uint64
	conn *serverConn
	// Caller span context, packed: a server only chains from the trace
	// ID, the caller's span ID, and the flags — the caller's own parent
	// link never matters past the wire, and dropping it keeps this
	// per-request struct a whole size class smaller.
	traceID    uint64
	spanID     uint64
	traceFlags uint8
	replied    bool
	payloadBuf *Buf
}

// TraceContext returns the caller's span context as carried on the frame:
// the context of the CLIENT span that issued this RPC.  A server records
// its own span as TraceContext().Child().  Zero for untraced requests.
func (r *Request) TraceContext() trace.SpanContext {
	return trace.SpanContext{TraceID: r.traceID, SpanID: r.spanID, Flags: r.traceFlags}
}

// Reply sends a successful response.  It is safe to call from any goroutine
// but must be called exactly once per request.  The payload is copied into
// the connection's write buffer before Reply returns, so the caller may
// immediately reuse (or recycle) its storage.
func (r *Request) Reply(payload []byte) {
	if r.replied {
		return
	}
	r.replied = true
	r.conn.send(kindResponse, r.id, payload)
	r.conn.srv.probe.ObserveOverhead(telemetry.OverheadNet, time.Since(r.Arrival))
}

// ReplyError sends an error response.  An OverloadError travels as a typed
// kindReject frame so the client can distinguish a deliberate shed from an
// application failure; everything else is a kindError.
func (r *Request) ReplyError(err error) {
	if r.replied {
		return
	}
	r.replied = true
	var oe *OverloadError
	if errors.As(err, &oe) {
		r.conn.send(kindReject, r.id, []byte(oe.Msg))
	} else {
		r.conn.send(kindError, r.id, []byte(err.Error()))
	}
	r.conn.srv.probe.ObserveOverhead(telemetry.OverheadNet, time.Since(r.Arrival))
}

// DetachPayload copies the payload so the Request outlives the read buffer.
// Handlers that enqueue the request for a worker pool call this before
// returning from the poller context.
func (r *Request) DetachPayload() {
	p := make([]byte, len(r.Payload))
	copy(p, r.Payload)
	r.Payload = p
}

// DetachPayloadPooled is DetachPayload drawing from the reply-buffer pool:
// the copy costs no allocation in steady state, but the caller owes a
// ReleasePayload once the payload bytes are dead (after Reply, and after
// any slice aliasing them).  Handlers whose payload outlives the request in
// ways they do not control — e.g. fan-out sub-payloads sitting in batch
// queues — must use DetachPayload instead.
func (r *Request) DetachPayloadPooled() {
	buf := grabBuf(len(r.Payload))
	copy(buf.bytes(), r.Payload)
	r.payloadBuf = buf
	r.Payload = buf.bytes()
}

// ReleasePayload recycles the pooled payload taken by DetachPayloadPooled;
// a no-op otherwise.  The payload (and anything aliasing it) is invalid
// afterwards.
func (r *Request) ReleasePayload() {
	if r.payloadBuf != nil {
		r.payloadBuf.Release()
		r.payloadBuf = nil
		r.Payload = nil
	}
}

// Handler processes one request.  It runs on the network poller goroutine of
// the connection that received the frame; implementations that follow the
// paper's dispatch design immediately hand off to a worker pool.
type Handler func(*Request)

// ServerOptions configures a Server.
type ServerOptions struct {
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
	// DisableWriteCoalesce reverts to one write syscall per response frame
	// instead of coalescing concurrent responses into batched writes.
	DisableWriteCoalesce bool
}

// Server accepts connections and feeds decoded requests to its handler.
type Server struct {
	handler  Handler
	probe    *telemetry.Probe
	coalesce bool

	mu     sync.Mutex
	lis    net.Listener
	conns  map[*serverConn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer returns a server that invokes handler for every request.
func NewServer(handler Handler, opts *ServerOptions) *Server {
	var probe *telemetry.Probe
	coalesce := true
	if opts != nil {
		probe = opts.Probe
		coalesce = !opts.DisableWriteCoalesce
	}
	return &Server{
		handler:  handler,
		probe:    probe,
		coalesce: coalesce,
		conns:    make(map[*serverConn]struct{}),
	}
}

// Start listens on addr ("host:port"; ":0" picks a free port), serves in the
// background, and returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return "", errors.New("rpc: server already closed")
	}
	s.lis = lis
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.acceptLoop(lis)
	}()
	return lis.Addr().String(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		sc := &serverConn{
			srv:  s,
			conn: conn,
			br:   bufio.NewReaderSize(&countingConn{Conn: conn, probe: s.probe}, 64<<10),
		}
		if s.coalesce {
			sc.wq = newWriteQueue(conn, s.probe, func(error) { conn.Close() })
		} else {
			sc.wmu = telemetry.NewMutex(s.probe)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		// One network poller thread per connection; spawning it is the
		// clone(2) analog.
		s.probe.IncSyscall(telemetry.SysClone)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			sc.readLoop()
		}()
	}
}

// Close stops accepting, closes every connection, and waits for pollers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) dropConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// serverConn is one accepted connection: a blocking reader (network poller)
// plus either a coalescing write queue or (with coalescing disabled) a
// write lock shared by whichever goroutines send responses.
type serverConn struct {
	srv  *Server
	conn net.Conn
	br   *bufio.Reader

	wq   *writeQueue
	wmu  *telemetry.Mutex
	wbuf []byte
}

// readLoop is the network poller: it blocks on the socket awaiting work and
// hands each decoded request to the server handler.
func (sc *serverConn) readLoop() {
	defer func() {
		sc.conn.Close()
		sc.srv.probe.IncSyscall(telemetry.SysClose)
		sc.srv.dropConn(sc)
	}()
	var f frame
	for {
		first, err := readFrame(sc.br, &f, sc.srv.probe)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// Connection-level failure; nothing to salvage.
				_ = err
			}
			return
		}
		if f.kind != kindRequest && f.kind != kindRequestTraced {
			continue // tolerate stray frames
		}
		req := &Request{
			Method:     f.method,
			Payload:    f.payload,
			FirstByte:  first,
			Arrival:    time.Now(),
			id:         f.id,
			conn:       sc,
			traceID:    f.sc.TraceID,
			spanID:     f.sc.SpanID,
			traceFlags: f.sc.Flags,
		}
		sc.srv.handler(req)
	}
}

// send serializes one response frame onto the connection.  With coalescing,
// concurrent response threads append under a short lock and share one write
// syscall; the uncoalesced fallback contends on the write mutex per frame —
// the socket-lock futex/HITM source the paper identifies.
func (sc *serverConn) send(kind byte, id uint64, payload []byte) {
	if sc.wq != nil {
		_ = sc.wq.enqueue(kind, id, trace.SpanContext{}, "", payload)
		return
	}
	sc.wmu.Lock()
	err := writeFrame(sc.conn, &sc.wbuf, kind, id, trace.SpanContext{}, "", payload, sc.srv.probe)
	sc.wmu.Unlock()
	if err != nil {
		sc.conn.Close()
	}
}
