package rpc

import (
	"errors"
	"net"
)

// RemoteError is an application-level failure returned by the server: the
// request was received, executed, and rejected by the handler (a kindError
// frame).  It is distinct from transport failures, which leave the request's
// fate unknown.
type RemoteError struct {
	// Msg is the error text produced by the remote handler.
	Msg string
}

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// ErrClass partitions call failures by what they imply about the request's
// fate — which is what decides retry safety.  A connection-class error means
// the request may never have reached the server, so re-sending it to another
// replica is safe; a timeout means the caller stopped waiting (hedging a
// read-mostly OLDI request is safe); an application error means the server
// processed the request and rejected it, so a retry would only repeat the
// rejection.
type ErrClass int

const (
	// ClassApplication — the remote handler executed and returned an
	// error.  Not retryable.
	ClassApplication ErrClass = iota
	// ClassTimeout — the call's deadline expired before a response.
	ClassTimeout
	// ClassConnection — the transport failed (dial, reset, local close).
	ClassConnection
)

// String names the class.
func (c ErrClass) String() string {
	switch c {
	case ClassApplication:
		return "application"
	case ClassTimeout:
		return "timeout"
	case ClassConnection:
		return "connection"
	}
	return "unknown"
}

// Classify maps a call error to its ErrClass.  Unrecognized errors are
// transport failures by construction: every handler-produced error crosses
// the wire as a RemoteError — or, for one member of a batched RPC, as a
// BatchItemError — so anything else came from the connection.
func Classify(err error) ErrClass {
	var re *RemoteError
	if errors.As(err, &re) {
		return ClassApplication
	}
	// A per-item failure inside an otherwise-delivered batch: the leaf
	// executed the item and rejected it.  Without this case the default
	// below would misclassify it as a connection failure and retry work
	// the server already completed.
	var be *BatchItemError
	if errors.As(err, &be) {
		return ClassApplication
	}
	if errors.Is(err, ErrTimeout) {
		return ClassTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	return ClassConnection
}

// Retryable reports whether a failed call may safely be re-issued to
// another replica: true for timeout- and connection-class failures, false
// for application errors.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	return Classify(err) != ClassApplication
}
