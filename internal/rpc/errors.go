package rpc

import (
	"errors"
	"fmt"
	"net"
)

// RemoteError is an application-level failure returned by the server: the
// request was received, executed, and rejected by the handler (a kindError
// frame).  It is distinct from transport failures, which leave the request's
// fate unknown.
type RemoteError struct {
	// Msg is the error text produced by the remote handler.
	Msg string
}

func (e *RemoteError) Error() string { return "rpc: remote error: " + e.Msg }

// OverloadError is a typed shed: the server refused the request before
// doing its work — admission limit hit, remaining deadline budget too small
// to cover the tracked service time, or dispatch queue full.  It travels as
// a kindReject frame.  Sheds are deliberate backpressure, so they are never
// retried and never consume retry budget: retrying into an overloaded tier
// multiplies the load that caused the shed.
type OverloadError struct {
	// Msg names what was shed and why (e.g. "admission limit").
	Msg string
}

func (e *OverloadError) Error() string { return "rpc: overloaded: " + e.Msg }

// Overloadf builds an OverloadError from a format string.
func Overloadf(format string, args ...any) *OverloadError {
	return &OverloadError{Msg: fmt.Sprintf(format, args...)}
}

// IsOverload reports whether err is (or wraps) a typed shed.  Load
// generators use it to count goodput-neutral rejections separately from
// real failures.
func IsOverload(err error) bool {
	var oe *OverloadError
	return errors.As(err, &oe)
}

// ErrClass partitions call failures by what they imply about the request's
// fate — which is what decides retry safety.  A connection-class error means
// the request may never have reached the server, so re-sending it to another
// replica is safe; a timeout means the caller stopped waiting (hedging a
// read-mostly OLDI request is safe); an application error means the server
// processed the request and rejected it, so a retry would only repeat the
// rejection.
type ErrClass int

const (
	// ClassApplication — the remote handler executed and returned an
	// error.  Not retryable.
	ClassApplication ErrClass = iota
	// ClassTimeout — the call's deadline expired before a response.
	ClassTimeout
	// ClassConnection — the transport failed (dial, reset, local close).
	ClassConnection
	// ClassOverload — the server shed the request before executing it
	// (kindReject).  Not retryable: the shed is the backpressure signal,
	// and retrying would feed the overload it reports.
	ClassOverload
)

// String names the class.
func (c ErrClass) String() string {
	switch c {
	case ClassApplication:
		return "application"
	case ClassTimeout:
		return "timeout"
	case ClassConnection:
		return "connection"
	case ClassOverload:
		return "overload"
	}
	return "unknown"
}

// Classify maps a call error to its ErrClass.  Unrecognized errors are
// transport failures by construction: every handler-produced error crosses
// the wire as a RemoteError — or, for one member of a batched RPC, as a
// BatchItemError — so anything else came from the connection.
func Classify(err error) ErrClass {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return ClassOverload
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return ClassApplication
	}
	// A per-item failure inside an otherwise-delivered batch: the leaf
	// executed the item and rejected it.  Without this case the default
	// below would misclassify it as a connection failure and retry work
	// the server already completed.
	var be *BatchItemError
	if errors.As(err, &be) {
		return ClassApplication
	}
	if errors.Is(err, ErrTimeout) {
		return ClassTimeout
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return ClassTimeout
	}
	return ClassConnection
}

// Retryable reports whether a failed call may safely be re-issued to
// another replica: true for timeout- and connection-class failures, false
// for application errors and overload sheds.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	switch Classify(err) {
	case ClassApplication, ClassOverload:
		return false
	}
	return true
}
