package rpc

import (
	"bufio"
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"musuite/internal/trace"
)

// TestAbandonRecycleRaceStress drives the hedge-pair life cycle hard from
// many goroutines: two racing calls per iteration, the loser abandoned by
// ref while the reader may be completing it and the consumer recycling it,
// plus stale abandons against already-released winners.  Run under -race
// this exercises the generation-counter discipline that keeps a late cancel
// from touching a recycled Call's next occupant.
func TestAbandonRecycleRaceStress(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(req.Payload) }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 8
	iters := 300
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			payload := []byte("hedge-stress")
			for i := 0; i < iters; i++ {
				done := make(chan *Call, 2)
				ref1 := c.GoRef("echo", payload, nil, done)
				ref2 := c.GoRef("echo", payload, nil, done)
				winner := <-done
				winnerRef := winner.Ref()
				loser := ref1
				if winnerRef == ref1 {
					loser = ref2
				}
				// Cancel the loser the way the fan-out cancels a hedge
				// pair — racing its completion and recycling.
				c.AbandonRef(loser)
				if winner.Err != nil {
					t.Error(winner.Err)
					winner.Release()
					return
				}
				if !bytes.Equal(winner.Reply, payload) {
					t.Errorf("reply %q, want %q", winner.Reply, payload)
				}
				winner.Release()
				if rng.Intn(2) == 0 {
					// A stale abandon against the released winner must be
					// a no-op for the struct's next occupant.
					c.AbandonRef(winnerRef)
				}
				// If the loser's response outran the abandon it was
				// delivered; recycle it too.
				select {
				case late := <-done:
					late.Release()
				default:
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestDetachedReplySurvivesPoolReuse is the testing/quick property behind
// the DetachReply contract: once detached, a reply's bytes must stay intact
// no matter how the pool recycles buffers for later traffic.
func TestDetachedReplySurvivesPoolReuse(t *testing.T) {
	srv := NewServer(func(req *Request) { req.Reply(req.Payload) }, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prop := func(payload []byte, churn uint8) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		call := c.Go("echo", payload, nil, nil)
		<-call.Done
		if call.Err != nil {
			return false
		}
		reply := call.DetachReply()
		call.Release()
		// Churn the pools: later calls re-grab the released call struct
		// and, were the reply still pooled, its buffer too.
		filler := bytes.Repeat([]byte{0xA5}, len(payload)+1)
		for i := 0; i < int(churn%8)+1; i++ {
			if _, err := c.Call("echo", filler); err != nil {
				return false
			}
		}
		return bytes.Equal(reply, payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestBufPoolNoAliasProperty checks the reference-count invariant directly:
// as long as a reader of a pooled Buf holds a reference, a producer-side
// Release must not let a fresh grab of the same size class alias the bytes.
func TestBufPoolNoAliasProperty(t *testing.T) {
	prop := func(n uint16) bool {
		size := int(n%4096) + 1
		held := grabBuf(size)
		for i := range held.bytes() {
			held.bytes()[i] = 1
		}
		view := held.bytes() // the "live decode" into the buffer
		held.Retain()
		held.Release() // producer done; reader's reference still live
		fresh := grabBuf(size)
		for i := range fresh.bytes() {
			fresh.bytes()[i] = 2
		}
		ok := true
		for _, x := range view {
			if x != 1 {
				ok = false
			}
		}
		fresh.Release()
		held.Release()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// startRawEchoServer runs a minimal allocation-free echo peer, so the
// steady-state allocation measurement below isolates the client's own
// send/receive path from server-side handler costs.
func startRawEchoServer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReaderSize(conn, 64<<10)
				var f frame
				var out []byte
				for {
					if _, err := readFrame(br, &f, nil); err != nil {
						return
					}
					var werr error
					out, werr = appendFrame(out[:0], kindResponse, f.id, trace.SpanContext{}, "", f.payload)
					if werr != nil {
						return
					}
					if _, err := conn.Write(out); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// TestClientSteadyStateAllocFree pins the tentpole claim: a warmed client's
// complete send/receive round trip — pooled Call, pending-table insert and
// claim, coalesced write, pooled reply buffer, Done delivery, Release —
// allocates nothing.
func TestClientSteadyStateAllocFree(t *testing.T) {
	addr := startRawEchoServer(t)
	c, err := Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	payload := []byte("steady-state-payload")
	done := make(chan *Call, 1)
	roundTrip := func() {
		call := c.Go("m", payload, nil, done)
		got := <-done
		if got != call || got.Err != nil {
			t.Fatalf("call failed: %v", got.Err)
		}
		got.Release()
	}
	for i := 0; i < 200; i++ {
		roundTrip() // warm the call, buffer, and frame pools
	}
	if avg := testing.AllocsPerRun(300, roundTrip); avg > 0.5 {
		t.Fatalf("client round trip allocates %.2f objects/op in steady state; want 0", avg)
	}
}
