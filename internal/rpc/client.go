package rpc

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// Call is the explicit state of one in-flight RPC.  μSuite's asynchronous
// design keeps no thread bound to a call: the client writes the request,
// continues with other work, and a shared reader goroutine later matches the
// response to this struct through the pending table.
//
// Calls are pooled.  A call obtained from Go/GoRef may be returned to the
// pool with Release once its consumer is done with it; callers that never
// Release simply fall back to garbage collection.  After Release the Call —
// including Reply, unless detached first — must not be touched: the struct
// may immediately carry an unrelated RPC.
type Call struct {
	// Method and Payload describe the request.
	Method  string
	Payload []byte
	// Reply holds the response payload after completion.  It may alias a
	// pooled buffer owned by the Call; DetachReply keeps the bytes alive
	// past Release.
	Reply []byte
	// Err holds the failure, if any.
	Err error
	// Done receives the call exactly once upon completion.
	Done chan *Call
	// Sent is when the request hit the socket; Received when the response
	// frame was fully decoded on the reader goroutine.
	Sent     time.Time
	Received time.Time
	// Data is opaque caller state carried with the call; the mid-tier
	// framework uses it to associate a leaf response with its fan-out.
	Data any
	// Trace is the span context of this RPC's client span, propagated on
	// the wire when sampled.  Zero for untraced calls — the frame layout
	// and allocation profile are then identical to a build without tracing.
	Trace trace.SpanContext

	id uint64
	// gen counts the struct's reuses.  Every cancellation and reference is
	// stamped with the generation it was issued against, so a late Abandon
	// from a hedge loser's previous life can never touch the call's next
	// occupant.
	gen atomic.Uint32
	// cancelled holds a cancellation marker — zero for never cancelled,
	// cancelMarker(g) for a cancel issued against generation g.  Markers
	// only ever increase, so a stale cancel cannot clobber a newer one.
	cancelled atomic.Uint64

	// onDone, when set, replaces the normal completion path (OnResponse
	// hook + Done delivery).  The batcher sets it on the carrier call of a
	// batched RPC so the response is demultiplexed to the member calls
	// instead of being delivered as a call of its own.
	onDone func(*Call)

	// replyBuf is the pooled buffer backing Reply, recycled on Release.
	replyBuf *Buf
	// ownDone is the call's resident completion channel, allocated once
	// per struct lifetime and reused across recycles when the caller
	// passes done == nil.
	ownDone chan *Call
	pooled  bool
}

// callPool recycles Call structs across RPCs.
var callPool = sync.Pool{New: func() any { return &Call{pooled: true} }}

// getCall returns a zeroed pooled call.
func getCall() *Call {
	return callPool.Get().(*Call)
}

func cancelMarker(gen uint32) uint64 { return uint64(gen)<<1 | 1 }

// cancelAt records a cancellation against generation gen.  Markers are
// raised monotonically: a cancel from a stale generation is a no-op once a
// newer one (or the same) has been recorded.
func (c *Call) cancelAt(gen uint32) {
	m := cancelMarker(gen)
	for {
		cur := c.cancelled.Load()
		if cur >= m || c.cancelled.CompareAndSwap(cur, m) {
			return
		}
	}
}

// isCancelled reports whether this generation of the call was abandoned.
func (c *Call) isCancelled() bool {
	return c.cancelled.Load() == cancelMarker(c.gen.Load())
}

// Ref returns a generation-stamped reference to the call, valid for
// AbandonRef and identity comparison even after the call is released — a
// stale ref simply stops matching.  Capture it while the call is still
// owned (before Release or Done delivery).
func (c *Call) Ref() CallRef {
	return CallRef{call: c, id: c.id, gen: c.gen.Load()}
}

// CallRef is a weak, generation-stamped handle on a Call.  The zero value
// references nothing.  Refs are comparable: two refs are equal exactly when
// they name the same call in the same lifetime.
type CallRef struct {
	call *Call
	id   uint64
	gen  uint32
}

// DetachReply removes Reply from the call's pooled-buffer accounting and
// returns it: the bytes stay valid after Release (they are left to the
// garbage collector instead of the pool).
func (c *Call) DetachReply() []byte {
	b := c.Reply
	c.replyBuf = nil
	return b
}

// TakeReplyBuf detaches and returns the pooled buffer backing Reply (nil
// when the reply is unpooled or empty).  The caller assumes the buffer's
// reference and must Release it once Reply's bytes are dead — the mid-tier
// holds these across a fan-out and releases them after the merge callback
// returns.
func (c *Call) TakeReplyBuf() *Buf {
	b := c.replyBuf
	c.replyBuf = nil
	return b
}

// Release returns the call to the pool.  Only the call's consumer — whoever
// received it on Done or observed it via a consuming OnResponse hook — may
// call it, exactly once; the struct, and Reply unless detached, must not be
// touched afterwards.  Safe no-op for calls not drawn from the pool.
func (c *Call) Release() {
	if c == nil || !c.pooled {
		return
	}
	if c.replyBuf != nil {
		c.replyBuf.Release()
		c.replyBuf = nil
	}
	if c.ownDone != nil {
		// Drain a delivery nobody consumed so the next occupant starts
		// with an empty channel.
		select {
		case <-c.ownDone:
		default:
		}
	}
	c.Method = ""
	c.Payload = nil
	c.Reply = nil
	c.Err = nil
	c.Done = nil
	c.Sent = time.Time{}
	c.Received = time.Time{}
	c.Data = nil
	c.Trace = trace.SpanContext{}
	c.id = 0
	c.onDone = nil
	c.gen.Add(1)
	callPool.Put(c)
}

// ownedDone returns the call's resident buffered completion channel.
func (c *Call) ownedDone() chan *Call {
	if c.ownDone == nil {
		c.ownDone = make(chan *Call, 1)
	}
	return c.ownDone
}

func (c *Call) finish() {
	if c.isCancelled() {
		// An abandoned call (a hedge's loser, a superseded retry): nobody
		// is waiting on Done, so delivering would only confuse.
		return
	}
	select {
	case c.Done <- c:
	default:
		// Done is full: the caller shares one channel among more in-flight
		// calls than its capacity.  Go rejects unbuffered channels, so
		// this blocks the reader only against a consumer that is actively
		// draining — backpressure, not a leaked goroutine per delivery.
		c.Done <- c
	}
}

// ClientOptions configures a client connection.
type ClientOptions struct {
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// OnResponse, when set, is invoked on the reader goroutine right after
	// a call completes.  Returning true means the hook consumed the call —
	// ownership transferred, no Done delivery — which is how the mid-tier
	// hands fan-out responses to its response-thread pool.  Returning
	// false falls through to normal Done delivery.
	OnResponse func(*Call) bool
	// PendingShards is the pending-table shard count, rounded up to a
	// power of two (default 8).  More shards spread pending-table lock
	// traffic at the cost of a little memory per connection.
	PendingShards int
	// DisableWriteCoalesce reverts to one write syscall per frame instead
	// of coalescing concurrently submitted frames into batched writes.
	DisableWriteCoalesce bool
	// Spans, when set, records a client span for every sampled call this
	// connection completes.  Leave nil on tiers that record their own
	// attempt spans (the mid-tier fan-out) to avoid double counting.
	Spans *trace.Recorder
}

// defaultPendingShards balances lock spread against footprint: at 8, two
// response threads plus a burst of senders rarely collide on one shard.
const defaultPendingShards = 8

// pendingShard is one stripe of the pending table.  Padded so neighbouring
// shards' locks do not share a cache line (the HITM source striping exists
// to eliminate).
type pendingShard struct {
	mu    *telemetry.Mutex
	calls map[uint64]*Call
	_     [48]byte
}

// Client is one TCP connection multiplexing many concurrent calls.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	probe *telemetry.Probe

	// wq coalesces writes; wmu/wbuf serve the uncoalesced fallback.
	wq   *writeQueue
	wmu  *telemetry.Mutex
	wbuf []byte

	// The pending table, sharded by call ID so concurrent senders and the
	// reader contend per-stripe, with an atomic in-flight count so load
	// probes (JSQ replica selection) never touch a lock.
	shards    []pendingShard
	shardMask uint64
	nextID    atomic.Uint64
	inflight  atomic.Int64

	closed     atomic.Bool
	connClosed atomic.Bool

	onResponse func(*Call) bool
	readerDone chan struct{}
	spans      *trace.Recorder
}

// Dial connects to a μSuite RPC server at addr.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	var (
		probe      *telemetry.Probe
		timeout    = 5 * time.Second
		onResponse func(*Call) bool
		nshards    = defaultPendingShards
		coalesce   = true
		spans      *trace.Recorder
	)
	if opts != nil {
		probe = opts.Probe
		if opts.DialTimeout > 0 {
			timeout = opts.DialTimeout
		}
		onResponse = opts.OnResponse
		if opts.PendingShards > 0 {
			nshards = 1
			for nshards < opts.PendingShards {
				nshards <<= 1
			}
		}
		coalesce = !opts.DisableWriteCoalesce
		spans = opts.Spans
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Microservice RPCs are latency-critical: never nagle.
		tc.SetNoDelay(true)
	}
	c := &Client{
		conn:       conn,
		br:         bufio.NewReaderSize(&countingConn{Conn: conn, probe: probe}, 64<<10),
		probe:      probe,
		shards:     make([]pendingShard, nshards),
		shardMask:  uint64(nshards - 1),
		onResponse: onResponse,
		readerDone: make(chan struct{}),
		spans:      spans,
	}
	for i := range c.shards {
		c.shards[i].mu = telemetry.NewMutex(probe)
		c.shards[i].calls = make(map[uint64]*Call)
	}
	if coalesce {
		c.wq = newWriteQueue(conn, probe, func(error) { c.closeConn() })
	} else {
		c.wmu = telemetry.NewMutex(probe)
	}
	probe.IncSyscall(telemetry.SysClone)
	go c.readLoop()
	return c, nil
}

// Go issues an asynchronous call carrying opaque data.  done may be nil, in
// which case the call's own buffered channel is used.  A non-nil done must
// be buffered — with enough slack for every call that shares it — or Go
// panics; completion delivery must never require a goroutine per call.  The
// returned Call is delivered on done when the response (or failure)
// arrives; the OnResponse hook, if configured, fires exactly once per call
// on every completion path.
func (c *Client) Go(method string, payload []byte, data any, done chan *Call) *Call {
	call := getCall()
	call.Method, call.Payload, call.Data = method, payload, data
	if done == nil {
		done = call.ownedDone()
	} else if cap(done) == 0 {
		panic("rpc: done channel must be buffered")
	}
	call.Done = done
	c.start(call)
	return call
}

// GoRef is Go returning a generation-stamped reference alongside nothing
// else: the ref is captured before the request can complete, so it is safe
// to use for Abandon even if the response races the send and the consumer
// has already recycled the call.
func (c *Client) GoRef(method string, payload []byte, data any, done chan *Call) CallRef {
	call := getCall()
	call.Method, call.Payload, call.Data = method, payload, data
	if done == nil {
		done = call.ownedDone()
	} else if cap(done) == 0 {
		panic("rpc: done channel must be buffered")
	}
	call.Done = done
	return c.start(call)
}

// GoSpan is Go for a traced call: sc (the context of this RPC's client
// span) travels in the frame header so the server can parent its own span
// under it.  Pass a zero sc for an unsampled request — the call then
// behaves exactly like Go.
func (c *Client) GoSpan(method string, payload []byte, sc trace.SpanContext, data any, done chan *Call) *Call {
	call := getCall()
	call.Method, call.Payload, call.Data, call.Trace = method, payload, data, sc
	if done == nil {
		done = call.ownedDone()
	} else if cap(done) == 0 {
		panic("rpc: done channel must be buffered")
	}
	call.Done = done
	c.start(call)
	return call
}

// GoRefSpan is GoRef for a traced call (see GoSpan).
func (c *Client) GoRefSpan(method string, payload []byte, sc trace.SpanContext, data any, done chan *Call) CallRef {
	call := getCall()
	call.Method, call.Payload, call.Data, call.Trace = method, payload, data, sc
	if done == nil {
		done = call.ownedDone()
	} else if cap(done) == 0 {
		panic("rpc: done channel must be buffered")
	}
	call.Done = done
	return c.start(call)
}

// start registers a caller-constructed call and writes its request frame,
// returning a ref captured before the frame hits the wire.  Shared by Go
// and the batcher (which sends prebuilt carrier calls and, for
// single-member flushes, the member call itself).
func (c *Client) start(call *Call) CallRef {
	id := c.nextID.Add(1)
	call.id = id
	ref := CallRef{call: call, id: id, gen: call.gen.Load()}
	sh := &c.shards[id&c.shardMask]
	sh.mu.Lock()
	if c.closed.Load() {
		sh.mu.Unlock()
		call.Err = ErrClientClosed
		c.complete(call)
		return ref
	}
	sh.calls[id] = call
	sh.mu.Unlock()
	c.inflight.Add(1)

	call.Sent = time.Now()
	var err error
	if c.wq != nil {
		err = c.wq.enqueue(kindRequest, id, call.Trace, call.Method, call.Payload)
	} else {
		c.wmu.Lock()
		err = writeFrame(c.conn, &c.wbuf, kindRequest, id, call.Trace, call.Method, call.Payload, c.probe)
		c.wmu.Unlock()
	}
	if err != nil {
		c.failCall(id, err)
	}
	return ref
}

// complete runs the OnResponse hook (if any) and delivers the call.
func (c *Client) complete(call *Call) {
	if call.onDone != nil {
		call.onDone(call)
		return
	}
	if c.spans != nil && call.Trace.Sampled() {
		recordCallSpan(c.spans, call)
	}
	if c.onResponse != nil && c.onResponse(call) {
		return // consumed: ownership passed to the hook
	}
	call.finish()
}

// recordCallSpan emits the client span of a completed sampled call.
func recordCallSpan(rec *trace.Recorder, call *Call) {
	start := call.Sent
	if start.IsZero() {
		start = time.Now()
	}
	end := call.Received
	if end.IsZero() {
		end = time.Now()
	}
	s := trace.Span{
		TraceID:  trace.ID(call.Trace.TraceID),
		SpanID:   trace.ID(call.Trace.SpanID),
		ParentID: trace.ID(call.Trace.ParentID),
		Name:     call.Method,
		Kind:     trace.KindClient,
		Start:    start.UnixNano(),
		Duration: end.Sub(start).Nanoseconds(),
	}
	if s.Duration < 0 {
		s.Duration = 0
	}
	if call.Err != nil {
		s.Err = call.Err.Error()
	}
	rec.Record(s)
}

// Call issues a synchronous RPC and waits for the response.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	call := c.Go(method, payload, nil, nil)
	<-call.Done
	reply, err := call.DetachReply(), call.Err
	call.Release()
	return reply, err
}

// CallTimeout is Call with a deadline.  On expiry the call is abandoned
// (its late response, if any, is discarded) and ErrTimeout returned.
func (c *Client) CallTimeout(method string, payload []byte, d time.Duration) ([]byte, error) {
	call := c.Go(method, payload, nil, nil)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-call.Done:
	case <-timer.C:
		c.failCall(call.id, ErrTimeout)
		<-call.Done
		if call.Err != nil {
			call.Release()
			return nil, ErrTimeout
		}
		// The response raced the timeout and won; accept it.
	}
	reply, err := call.DetachReply(), call.Err
	call.Release()
	return reply, err
}

// Abandon cancels an outstanding call: its pending-table entry is removed,
// so a late response is silently discarded at the reader, and the call is
// never delivered on Done.  Valid only while the caller still owns the call
// (before Release); prefer AbandonRef where the call's consumer may recycle
// it concurrently.  The server may still execute the request —
// cancellation stops waiting, not remote work.
func (c *Client) Abandon(call *Call) {
	c.AbandonRef(call.Ref())
}

// AbandonRef cancels the referenced call if its generation is still
// current.  Used to cancel the losing side of a hedged request pair: the
// loser's consumer may complete and recycle it at any moment, which a stale
// ref tolerates by doing nothing.
//
// It reports whether the pending-table entry was removed here — a true
// return guarantees the call will never be delivered (no Done send, no
// OnResponse); false means delivery already happened or is in flight.
func (c *Client) AbandonRef(r CallRef) bool {
	if r.call == nil {
		return false
	}
	r.call.cancelAt(r.gen)
	if r.id == 0 {
		return false
	}
	sh := &c.shards[r.id&c.shardMask]
	sh.mu.Lock()
	_, ok := sh.calls[r.id]
	if ok {
		delete(sh.calls, r.id)
	}
	sh.mu.Unlock()
	if ok {
		// The abandoned call is never completed or released here — the
		// abandoner does not own it; the struct falls to the collector.
		c.inflight.Add(-1)
	}
	return ok
}

// Pending reports the number of in-flight calls awaiting responses.  Reads
// one atomic: the JSQ load probe costs no lock.
func (c *Client) Pending() int {
	return int(c.inflight.Load())
}

// claim removes and returns the pending call for id.
func (c *Client) claim(id uint64) (*Call, bool) {
	sh := &c.shards[id&c.shardMask]
	sh.mu.Lock()
	call, ok := sh.calls[id]
	if ok {
		delete(sh.calls, id)
	}
	sh.mu.Unlock()
	if ok {
		c.inflight.Add(-1)
	}
	return call, ok
}

// failCall completes a pending call with err, if it is still pending.
func (c *Client) failCall(id uint64, err error) {
	if call, ok := c.claim(id); ok {
		call.Err = err
		c.complete(call)
	}
}

// readLoop is the response reception thread shared by all in-flight calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var f frame
	for {
		_, err := readFrame(c.br, &f, c.probe)
		if err != nil {
			c.failAll(err)
			return
		}
		if f.kind != kindResponse && f.kind != kindError && f.kind != kindReject {
			continue
		}
		received := time.Now()

		// Pending-table lookup under the shard lock: the read-mostly
		// shared state access we classify as the RCU analog.
		lookupStart := time.Now()
		call, ok := c.claim(f.id)
		c.probe.ObserveOverhead(telemetry.OverheadRCU, time.Since(lookupStart))
		if !ok {
			continue // abandoned (timed-out) call
		}

		if f.kind == kindError {
			call.Err = &RemoteError{Msg: string(f.payload)}
		} else if f.kind == kindReject {
			call.Err = &OverloadError{Msg: string(f.payload)}
		} else {
			// Copy the payload out of the frame buffer (reused for the
			// next frame) into a pooled reply buffer owned by the call.
			buf := grabBuf(len(f.payload))
			copy(buf.bytes(), f.payload)
			call.replyBuf = buf
			call.Reply = buf.bytes()
		}
		call.Received = received
		c.complete(call)
	}
}

// failAll fails every pending call after a connection-level error.
func (c *Client) failAll(err error) {
	if errors.Is(err, net.ErrClosed) {
		err = ErrClientClosed
	}
	c.closed.Store(true)
	var calls []*Call
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, call := range sh.calls {
			calls = append(calls, call)
		}
		clear(sh.calls)
		sh.mu.Unlock()
	}
	c.inflight.Add(int64(-len(calls)))
	for _, call := range calls {
		call.Err = err
		c.complete(call)
	}
}

// closeConn closes the socket once, counting the close syscall.
func (c *Client) closeConn() error {
	if !c.connClosed.CompareAndSwap(false, true) {
		return nil
	}
	err := c.conn.Close()
	c.probe.IncSyscall(telemetry.SysClose)
	return err
}

// Close shuts the connection down and fails any in-flight calls.
func (c *Client) Close() error {
	if c.closed.Swap(true) && c.connClosed.Load() {
		<-c.readerDone
		return nil
	}
	err := c.closeConn()
	<-c.readerDone
	return err
}

// Addr reports the remote address.
func (c *Client) Addr() string { return c.conn.RemoteAddr().String() }

// Closed reports whether the connection has shut down (locally closed or
// failed).
func (c *Client) Closed() bool {
	return c.closed.Load()
}

// reconnectBackoff rate-limits per-slot redial attempts so a dead
// destination costs one failed dial per interval, not per request.
const reconnectBackoff = 250 * time.Millisecond

// Pool is a fixed set of client connections to one destination, picked
// round-robin.  Router's mid-tier opens one connection per worker thread to
// each destination; a Pool models that connection set.  Dead connections
// are redialed transparently (with backoff), so a leaf that restarts is
// picked back up without reconfiguring the mid-tier.
//
// Every slot is an atomic pointer and redials happen on a background
// goroutine, so Pick, Outstanding, and Healthy never block behind a lock —
// and in particular a dead leaf no longer stalls every caller of the pool
// behind one slot's dial.
type Pool struct {
	addr   string
	opts   *ClientOptions
	slots  []poolSlot
	next   atomic.Uint32
	closed atomic.Bool
}

// poolSlot is one connection slot: the live client, the last redial
// attempt's time, and a flag claiming the in-flight redial.
type poolSlot struct {
	client  atomic.Pointer[Client]
	lastTry atomic.Int64
	dialing atomic.Bool
}

// DialPool opens n connections to addr.
func DialPool(addr string, n int, opts *ClientOptions) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{addr: addr, opts: opts, slots: make([]poolSlot, n)}
	for i := range p.slots {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.slots[i].client.Store(c)
	}
	return p, nil
}

// Pick returns the next connection round-robin.  A slot whose connection
// has died is redialed in the background (subject to backoff) while the
// dead client is returned so its caller fails fast — nobody waits out a
// dial on the request path.
func (p *Pool) Pick() *Client {
	s := &p.slots[int(p.next.Add(1)-1)%len(p.slots)]
	c := s.client.Load()
	if p.closed.Load() || !c.Closed() {
		return c
	}
	now := time.Now().UnixNano()
	last := s.lastTry.Load()
	if now-last < int64(reconnectBackoff) || !s.lastTry.CompareAndSwap(last, now) {
		return c
	}
	if !s.dialing.CompareAndSwap(false, true) {
		return c
	}
	go p.redial(s, c)
	return c
}

// redial replaces a dead slot's client off the request path and swaps the
// replacement in.
func (p *Pool) redial(s *poolSlot, dead *Client) {
	defer s.dialing.Store(false)
	var dialOpts ClientOptions
	if p.opts != nil {
		dialOpts = *p.opts
	}
	if dialOpts.DialTimeout <= 0 || dialOpts.DialTimeout > time.Second {
		dialOpts.DialTimeout = time.Second
	}
	nc, err := Dial(p.addr, &dialOpts)
	if err != nil {
		return
	}
	if p.closed.Load() {
		nc.Close()
		return
	}
	if !s.client.CompareAndSwap(dead, nc) {
		// Someone else replaced the slot; discard ours.
		nc.Close()
		return
	}
	dead.Close() // reap the dead client's reader and descriptor
	if p.closed.Load() {
		// Close raced the swap; make sure the new client dies too.
		nc.Close()
	}
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.slots) }

// Outstanding reports the number of in-flight calls across the pool's
// connections — the load signal replica selection uses ("join the shortest
// queue").  Lock-free: one atomic load per connection.
func (p *Pool) Outstanding() int {
	n := 0
	for i := range p.slots {
		n += p.slots[i].client.Load().Pending()
	}
	return n
}

// Healthy reports whether at least one pooled connection is live.  A dead
// pool has zero outstanding calls, so replica selection must not read
// Outstanding alone — an idle-looking corpse would absorb all traffic.
func (p *Pool) Healthy() bool {
	if p.closed.Load() {
		return false
	}
	for i := range p.slots {
		if !p.slots[i].client.Load().Closed() {
			return true
		}
	}
	return false
}

// Close closes every pooled connection and stops reconnection.
func (p *Pool) Close() {
	p.closed.Store(true)
	for i := range p.slots {
		if c := p.slots[i].client.Load(); c != nil {
			c.Close()
		}
	}
}
