package rpc

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/telemetry"
)

// Call is the explicit state of one in-flight RPC.  μSuite's asynchronous
// design keeps no thread bound to a call: the client writes the request,
// continues with other work, and a shared reader goroutine later matches the
// response to this struct through the pending table.
type Call struct {
	// Method and Payload describe the request.
	Method  string
	Payload []byte
	// Reply holds the response payload after completion.
	Reply []byte
	// Err holds the failure, if any.
	Err error
	// Done receives the call exactly once upon completion.
	Done chan *Call
	// Sent is when the request hit the socket; Received when the response
	// frame was fully decoded on the reader goroutine.
	Sent     time.Time
	Received time.Time
	// Data is opaque caller state carried with the call; the mid-tier
	// framework uses it to associate a leaf response with its fan-out.
	Data any

	id        uint64
	cancelled atomic.Bool

	// onDone, when set, replaces the normal completion path (OnResponse
	// hook + Done delivery).  The batcher sets it on the carrier call of a
	// batched RPC so the response is demultiplexed to the member calls
	// instead of being delivered as a call of its own.
	onDone func(*Call)
}

func (c *Call) finish() {
	if c.cancelled.Load() {
		// An abandoned call (a hedge's loser, a superseded retry): nobody
		// is waiting on Done, so delivering — let alone spawning a
		// goroutine to deliver — would only leak.
		return
	}
	select {
	case c.Done <- c:
	default:
		if c.cancelled.Load() {
			return
		}
		// Done was under-buffered; never block the reader goroutine.
		go func() { c.Done <- c }()
	}
}

// ClientOptions configures a client connection.
type ClientOptions struct {
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
	// OnResponse, when set, is invoked on the reader goroutine right
	// after a call completes, before Done delivery.  The mid-tier
	// framework uses it to hand responses to its response-thread pool.
	OnResponse func(*Call)
}

// Client is one TCP connection multiplexing many concurrent calls.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	probe *telemetry.Probe

	wmu  *telemetry.Mutex
	wbuf []byte

	mu      sync.Mutex // guards pending, nextID, closed
	pending map[uint64]*Call
	nextID  uint64
	closed  bool

	onResponse func(*Call)
	readerDone chan struct{}
}

// Dial connects to a μSuite RPC server at addr.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	var (
		probe      *telemetry.Probe
		timeout    = 5 * time.Second
		onResponse func(*Call)
	)
	if opts != nil {
		probe = opts.Probe
		if opts.DialTimeout > 0 {
			timeout = opts.DialTimeout
		}
		onResponse = opts.OnResponse
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		// Microservice RPCs are latency-critical: never nagle.
		tc.SetNoDelay(true)
	}
	c := &Client{
		conn:       conn,
		br:         bufio.NewReaderSize(&countingConn{Conn: conn, probe: probe}, 64<<10),
		probe:      probe,
		wmu:        telemetry.NewMutex(probe),
		pending:    make(map[uint64]*Call),
		onResponse: onResponse,
		readerDone: make(chan struct{}),
	}
	probe.IncSyscall(telemetry.SysClone)
	go c.readLoop()
	return c, nil
}

// Go issues an asynchronous call carrying opaque data.  done may be nil, in
// which case a buffered channel is allocated.  The returned Call is
// delivered on done when the response (or failure) arrives; the OnResponse
// hook, if configured, fires exactly once per call on every completion path.
func (c *Client) Go(method string, payload []byte, data any, done chan *Call) *Call {
	if done == nil {
		done = make(chan *Call, 1)
	}
	call := &Call{Method: method, Payload: payload, Data: data, Done: done}
	c.start(call)
	return call
}

// start registers a caller-constructed call and writes its request frame.
// Shared by Go and the batcher (which sends prebuilt carrier calls and,
// for single-member flushes, the member call itself).
func (c *Client) start(call *Call) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		call.Err = ErrClientClosed
		c.complete(call)
		return
	}
	c.nextID++
	call.id = c.nextID
	c.pending[call.id] = call
	c.mu.Unlock()

	call.Sent = time.Now()
	c.wmu.Lock()
	err := writeFrame(c.conn, &c.wbuf, &frame{
		kind: kindRequest, id: call.id, method: call.Method, payload: call.Payload,
	}, c.probe)
	c.wmu.Unlock()
	if err != nil {
		c.failCall(call.id, err)
	}
}

// complete runs the OnResponse hook (if any) and delivers the call.
func (c *Client) complete(call *Call) {
	if call.onDone != nil {
		call.onDone(call)
		return
	}
	if c.onResponse != nil {
		c.onResponse(call)
	}
	call.finish()
}

// Call issues a synchronous RPC and waits for the response.
func (c *Client) Call(method string, payload []byte) ([]byte, error) {
	call := <-c.Go(method, payload, nil, nil).Done
	return call.Reply, call.Err
}

// CallTimeout is Call with a deadline.  On expiry the call is abandoned
// (its late response, if any, is discarded) and ErrTimeout returned.
func (c *Client) CallTimeout(method string, payload []byte, d time.Duration) ([]byte, error) {
	call := c.Go(method, payload, nil, nil)
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-call.Done:
		return call.Reply, call.Err
	case <-timer.C:
		c.failCall(call.id, ErrTimeout)
		<-call.Done
		if call.Err == nil {
			// The response raced the timeout and won; accept it.
			return call.Reply, nil
		}
		return nil, call.Err
	}
}

// Abandon cancels an outstanding call: its pending-table entry is removed,
// so a late response is silently discarded at the reader, and the call is
// never delivered on Done.  Used to cancel the losing side of a hedged
// request pair.  The server may still execute the request — cancellation
// stops waiting, not remote work.
func (c *Client) Abandon(call *Call) {
	call.cancelled.Store(true)
	c.mu.Lock()
	delete(c.pending, call.id)
	c.mu.Unlock()
}

// Pending reports the number of in-flight calls awaiting responses.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// failCall completes a pending call with err, if it is still pending.
func (c *Client) failCall(id uint64, err error) {
	c.mu.Lock()
	call, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok {
		call.Err = err
		c.complete(call)
	}
}

// readLoop is the response reception thread shared by all in-flight calls.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var f frame
	for {
		_, err := readFrame(c.br, &f, c.probe)
		if err != nil {
			c.failAll(err)
			return
		}
		if f.kind != kindResponse && f.kind != kindError {
			continue
		}
		received := time.Now()

		// Pending-table lookup under the lock: the read-mostly shared
		// state access we classify as the RCU analog.
		lookupStart := time.Now()
		c.mu.Lock()
		call, ok := c.pending[f.id]
		if ok {
			delete(c.pending, f.id)
		}
		c.mu.Unlock()
		c.probe.ObserveOverhead(telemetry.OverheadRCU, time.Since(lookupStart))
		if !ok {
			continue // abandoned (timed-out) call
		}

		if f.kind == kindError {
			call.Err = &RemoteError{Msg: string(f.payload)}
		} else {
			call.Reply = make([]byte, len(f.payload))
			copy(call.Reply, f.payload)
		}
		call.Received = received
		c.complete(call)
	}
}

// failAll fails every pending call after a connection-level error.
func (c *Client) failAll(err error) {
	if errors.Is(err, net.ErrClosed) {
		err = ErrClientClosed
	}
	c.mu.Lock()
	c.closed = true
	calls := make([]*Call, 0, len(c.pending))
	for _, call := range c.pending {
		calls = append(calls, call)
	}
	c.pending = make(map[uint64]*Call)
	c.mu.Unlock()
	for _, call := range calls {
		call.Err = err
		c.complete(call)
	}
}

// Close shuts the connection down and fails any in-flight calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	c.probe.IncSyscall(telemetry.SysClose)
	<-c.readerDone
	return err
}

// Addr reports the remote address.
func (c *Client) Addr() string { return c.conn.RemoteAddr().String() }

// Closed reports whether the connection has shut down (locally closed or
// failed).
func (c *Client) Closed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// reconnectBackoff rate-limits per-slot redial attempts so a dead
// destination costs one failed dial per interval, not per request.
const reconnectBackoff = 250 * time.Millisecond

// Pool is a fixed set of client connections to one destination, picked
// round-robin.  Router's mid-tier opens one connection per worker thread to
// each destination; a Pool models that connection set.  Dead connections
// are redialed transparently (with backoff), so a leaf that restarts is
// picked back up without reconfiguring the mid-tier.
type Pool struct {
	addr string
	opts *ClientOptions

	mu      sync.Mutex
	clients []*Client
	lastTry []time.Time
	next    int
	closed  bool
}

// DialPool opens n connections to addr.
func DialPool(addr string, n int, opts *ClientOptions) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		addr:    addr,
		opts:    opts,
		clients: make([]*Client, 0, n),
		lastTry: make([]time.Time, n),
	}
	for i := 0; i < n; i++ {
		c, err := Dial(addr, opts)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Pick returns the next connection round-robin, transparently redialing a
// slot whose connection has died (subject to backoff).  A still-dead
// destination returns the dead client, whose calls fail fast.
func (p *Pool) Pick() *Client {
	p.mu.Lock()
	i := p.next % len(p.clients)
	p.next++
	c := p.clients[i]
	if !p.closed && c.Closed() && time.Since(p.lastTry[i]) >= reconnectBackoff {
		p.lastTry[i] = time.Now()
		opts := p.opts
		// Keep the dial short: a worker is waiting on this path.
		var dialOpts ClientOptions
		if opts != nil {
			dialOpts = *opts
		}
		if dialOpts.DialTimeout <= 0 || dialOpts.DialTimeout > time.Second {
			dialOpts.DialTimeout = time.Second
		}
		if nc, err := Dial(p.addr, &dialOpts); err == nil {
			p.clients[i] = nc
			c = nc
		}
	}
	p.mu.Unlock()
	return c
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.clients)
}

// Outstanding reports the number of in-flight calls across the pool's
// connections — the load signal replica selection uses ("join the shortest
// queue").
func (p *Pool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, c := range p.clients {
		n += c.Pending()
	}
	return n
}

// Healthy reports whether at least one pooled connection is live.  A dead
// pool has zero outstanding calls, so replica selection must not read
// Outstanding alone — an idle-looking corpse would absorb all traffic.
func (p *Pool) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	for _, c := range p.clients {
		if !c.Closed() {
			return true
		}
	}
	return false
}

// Close closes every pooled connection and stops reconnection.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	clients := make([]*Client, len(p.clients))
	copy(clients, p.clients)
	p.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
}
