package hdsearch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"musuite/internal/ann"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
)

// TestHNSWSearchUnderTopologyChurn is the graph-index variant of the
// parallel-scan churn stress: an hnsw-kind cluster with multi-worker leaf
// kernels serves concurrent searches while (a) leaf groups are added and
// drained underneath the fan-out and (b) a background goroutine repeatedly
// runs fresh parallel HNSW builds over the same shard data — the
// warm-handoff picture, where a replacement leaf builds its graph while the
// drained one keeps serving read-only searches.  Run under -race this
// checks the round-synchronized build (index-stealing parallel-for,
// per-node spinlocked pending lists) against the lock-free search path;
// functionally every search must still return sorted, in-range results and
// every rebuild must reproduce the serving index's fingerprint.
func TestHNSWSearchUnderTopologyChurn(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 1200, Dim: 32, Clusters: 10, Noise: 0.12, Seed: 42,
	})
	annCfg := ann.Config{Seed: 7}
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		Kind:    IndexHNSW,
		ANN:     annCfg,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf: core.LeafOptions{
			Workers: 2,
			Kernel:  kernel.New(kernel.Config{Parallelism: 8}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// A spare leaf serving shard 0's data — with its own freshly built
	// graph — to churn in and out.
	shards := ShardCorpus(corpus, 4)
	buildCfg, _ := LeafANNConfig(IndexHNSW, annCfg)
	buildCfg.Seed = ShardSeed(annCfg.Seed, 0)
	spareIdx, err := ann.BuildKind(shards[0].Store, buildCfg)
	if err != nil {
		t.Fatal(err)
	}
	spareData := shards[0]
	spareData.ANN = spareIdx
	spare := NewLeaf(spareData, &core.LeafOptions{
		Workers: 2,
		Kernel:  kernel.New(kernel.Config{Parallelism: 8}),
	})
	spareAddr, err := spare.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(spare.Close)

	stop := make(chan struct{})
	var churnErr, buildErr error
	var wg sync.WaitGroup

	// Topology churn: the spare joins and drains in a loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			shard, err := cl.MidTier().AddLeafGroup([]string{spareAddr})
			if err != nil {
				churnErr = fmt.Errorf("add: %w", err)
				return
			}
			if err := cl.MidTier().DrainLeafGroup(shard, 10*time.Second); err != nil {
				churnErr = fmt.Errorf("drain: %w", err)
				return
			}
		}
	}()

	// Concurrent rebuilds: the parallel build machinery runs while the
	// cluster serves, and every rebuild must land on the same structure.
	wantFP := spareIdx.Fingerprint()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rebuilt, err := ann.BuildKind(shards[0].Store, buildCfg)
			if err != nil {
				buildErr = fmt.Errorf("rebuild: %w", err)
				return
			}
			if fp := rebuilt.Fingerprint(); fp != wantFP {
				buildErr = fmt.Errorf("rebuild fingerprint %x != %x", fp, wantFP)
				return
			}
		}
	}()

	queries := corpus.Queries(16, 7)
	const k = 5
	var clients sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func(g int) {
			defer clients.Done()
			client, err := DialClient(cl.Addr, nil)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				got, err := client.Search(q, k)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				for j := range got {
					if int(got[j].PointID) >= len(corpus.Vectors) {
						errs <- fmt.Errorf("goroutine %d: bogus point %d", g, got[j].PointID)
						return
					}
					if j > 0 && got[j].Distance < got[j-1].Distance {
						errs <- fmt.Errorf("goroutine %d: unsorted results", g)
						return
					}
				}
			}
		}(g)
	}
	clients.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if churnErr != nil {
		t.Fatal(churnErr)
	}
	if buildErr != nil {
		t.Fatal(buildErr)
	}
}
