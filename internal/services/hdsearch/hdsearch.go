// Package hdsearch implements μSuite's HDSearch: content-based image
// similarity search as a three-tier microservice (paper §III-A).
//
// The mid-tier holds multi-probe LSH tables whose entries reference
// {leaf shard, point ID} tuples — it stores no feature vectors.  On a query
// it looks up candidate tuples, fans one RPC per involved shard carrying the
// query vector and that shard's candidate point IDs, and merges the leaves'
// distance-sorted lists into the global top-k.  Leaves hold the sharded
// feature vectors and run the embarrassingly parallel distance kernel.
package hdsearch

import (
	"errors"
	"fmt"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/lsh"
	"musuite/internal/rpc"
	"musuite/internal/vec"
	"musuite/internal/wire"
)

// Method names on the wire.
const (
	// MethodSearch is the front-end→mid-tier query.
	MethodSearch = "hdsearch.search"
	// MethodLeafKNN is the mid-tier→leaf candidate-scoring call.
	MethodLeafKNN = "hdsearch.leafknn"
)

// Neighbor is one result: a global point ID and its squared Euclidean
// distance to the query.
type Neighbor struct {
	PointID  uint32
	Distance float32
}

// --- wire codecs ---

// EncodeSearchRequest encodes a front-end query.
func EncodeSearchRequest(query vec.Vector, k int) []byte {
	e := wire.NewEncoder(8 + 4*len(query))
	e.Uvarint(uint64(k))
	e.Float32s(query)
	return e.Bytes()
}

// DecodeSearchRequest decodes a front-end query.
func DecodeSearchRequest(b []byte) (query vec.Vector, k int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	return query, k, d.Err()
}

// EncodeLeafRequest encodes a mid-tier→leaf scoring call.
func EncodeLeafRequest(query vec.Vector, ids []uint32, k int) []byte {
	e := wire.NewEncoder(16 + 4*len(query) + 4*len(ids))
	e.Uvarint(uint64(k))
	e.Float32s(query)
	e.Uint32s(ids)
	return e.Bytes()
}

// DecodeLeafRequest decodes a mid-tier→leaf scoring call.
func DecodeLeafRequest(b []byte) (query vec.Vector, ids []uint32, k int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	ids = d.Uint32s()
	return query, ids, k, d.Err()
}

// EncodeNeighbors encodes a distance-sorted result list.
func EncodeNeighbors(ns []Neighbor) []byte {
	e := wire.NewEncoder(8 + 8*len(ns))
	e.Uvarint(uint64(len(ns)))
	for _, n := range ns {
		e.Uint32(n.PointID)
		e.Float32(n.Distance)
	}
	return e.Bytes()
}

// DecodeNeighbors decodes a result list.
func DecodeNeighbors(b []byte) ([]Neighbor, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > wire.MaxSliceLen/8 {
		return nil, wire.ErrTooLarge
	}
	out := make([]Neighbor, n)
	for i := range out {
		out[i].PointID = d.Uint32()
		out[i].Distance = d.Float32()
	}
	return out, d.Err()
}

// --- leaf ---

// LeafData is one shard's slice of the corpus: vectors indexed by local
// point ID, plus the mapping back to global IDs.
type LeafData struct {
	Vectors  []vec.Vector
	GlobalID []uint32
}

// ShardCorpus splits a corpus round-robin into n leaf shards.
func ShardCorpus(c *dataset.ImageCorpus, n int) []LeafData {
	idLists := c.Shard(n)
	out := make([]LeafData, n)
	for s, ids := range idLists {
		ld := LeafData{
			Vectors:  make([]vec.Vector, len(ids)),
			GlobalID: make([]uint32, len(ids)),
		}
		for local, global := range ids {
			ld.Vectors[local] = c.Vectors[global]
			ld.GlobalID[local] = uint32(global)
		}
		out[s] = ld
	}
	return out
}

// leafKNN runs the distance kernel for one scoring call against the shard.
func leafKNN(data LeafData, payload []byte) ([]byte, error) {
	query, ids, k, err := DecodeLeafRequest(payload)
	if err != nil {
		return nil, err
	}
	local := knn.Subset(query, data.Vectors, ids, k)
	out := make([]Neighbor, len(local))
	for i, n := range local {
		out[i] = Neighbor{PointID: data.GlobalID[n.ID], Distance: n.Distance}
	}
	return EncodeNeighbors(out), nil
}

// NewLeaf builds the HDSearch leaf microservice over one shard.  Batched
// carriers run all their distance kernels as one worker task, amortizing
// dispatch and framing across the batch; each query still fails alone.
func NewLeaf(data LeafData, opts *core.LeafOptions) *core.Leaf {
	return core.NewLeaf(func(method string, payload []byte) ([]byte, error) {
		if method != MethodLeafKNN {
			return nil, fmt.Errorf("hdsearch leaf: unknown method %q", method)
		}
		return leafKNN(data, payload)
	}, core.LeafOptionsWithBatch(opts, func(methods []string, payloads [][]byte) ([][]byte, []error) {
		replies := make([][]byte, len(methods))
		errs := make([]error, len(methods))
		for i := range methods {
			if methods[i] != MethodLeafKNN {
				errs[i] = fmt.Errorf("hdsearch leaf: unknown method %q", methods[i])
				continue
			}
			replies[i], errs[i] = leafKNN(data, payloads[i])
		}
		return replies, errs
	}))
}

// --- mid-tier ---

// IndexConfig tunes the mid-tier LSH index (see lsh.Config); zero values
// take the paper-tuned defaults targeting ≥93% accuracy.
type IndexConfig = lsh.Config

// BuildIndex constructs the mid-tier's LSH tables over the sharded corpus
// (the offline index-construction step).  Point IDs inserted are *local*
// shard IDs so the leaf can use them directly.
func BuildIndex(shards []LeafData, cfg IndexConfig) (*lsh.Index, error) {
	if len(shards) == 0 {
		return nil, errors.New("hdsearch: no shards")
	}
	cfg.Dim = len(shards[0].Vectors[0])
	idx, err := lsh.New(cfg)
	if err != nil {
		return nil, err
	}
	for s, shard := range shards {
		for local, v := range shard.Vectors {
			if err := idx.Insert(v, int32(s), uint32(local)); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}

// NewMidTier builds the HDSearch mid-tier microservice around a prebuilt
// candidate index (LSH by default; kd-tree and k-means alternatives are in
// indexes.go).  Call ConnectLeaves then Start on the result.  Leaves return
// global point IDs, so the mid-tier needs only the index.
func NewMidTier(index CandidateIndex, opts *core.Options) *core.MidTier {
	return core.NewMidTier(func(ctx *core.Ctx) {
		if ctx.Req.Method != MethodSearch {
			ctx.ReplyError(fmt.Errorf("hdsearch mid-tier: unknown method %q", ctx.Req.Method))
			return
		}
		query, k, err := DecodeSearchRequest(ctx.Req.Payload)
		if err != nil {
			ctx.ReplyError(err)
			return
		}
		if k <= 0 {
			k = 1
		}
		// Request path: LSH lookup, map point IDs → leaf shards, launch
		// clients to leaf microservers (paper Fig. 3).
		byShard := index.LookupByShard(query)
		if len(byShard) == 0 {
			ctx.Reply(EncodeNeighbors(nil))
			return
		}
		calls := make([]core.LeafCall, 0, len(byShard))
		for shard, ids := range byShard {
			calls = append(calls, core.LeafCall{
				Shard:   int(shard),
				Method:  MethodLeafKNN,
				Payload: EncodeLeafRequest(query, ids, k),
			})
		}
		// Response path: merge per-shard distance-sorted lists into the
		// final k-NN across all shards.
		ctx.Fanout(calls, func(results []core.LeafResult) {
			lists := make([][]knn.Neighbor, 0, len(results))
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
				ns, err := DecodeNeighbors(r.Reply)
				if err != nil {
					ctx.ReplyError(err)
					return
				}
				list := make([]knn.Neighbor, len(ns))
				for i, n := range ns {
					list[i] = knn.Neighbor{ID: n.PointID, Distance: n.Distance}
				}
				lists = append(lists, list)
			}
			merged := knn.Merge(lists, k)
			out := make([]Neighbor, len(merged))
			for i, n := range merged {
				out[i] = Neighbor{PointID: n.ID, Distance: n.Distance}
			}
			ctx.Reply(EncodeNeighbors(out))
		})
	}, opts)
}

// --- front-end client ---

// Client is the front-end's typed handle on an HDSearch deployment.
type Client struct {
	rpc *rpc.Client
}

// DialClient connects a front-end client to the mid-tier at addr.
func DialClient(addr string, opts *rpc.ClientOptions) (*Client, error) {
	c, err := rpc.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Search returns the k nearest neighbors of query.
func (c *Client) Search(query vec.Vector, k int) ([]Neighbor, error) {
	reply, err := c.rpc.Call(MethodSearch, EncodeSearchRequest(query, k))
	if err != nil {
		return nil, err
	}
	return DecodeNeighbors(reply)
}

// Go issues an asynchronous search (used by the load generators).
func (c *Client) Go(query vec.Vector, k int, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodSearch, EncodeSearchRequest(query, k), nil, done)
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }
