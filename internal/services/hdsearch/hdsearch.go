// Package hdsearch implements μSuite's HDSearch: content-based image
// similarity search as a three-tier microservice (paper §III-A).
//
// The mid-tier holds multi-probe LSH tables whose entries reference
// {leaf shard, point ID} tuples — it stores no feature vectors.  On a query
// it looks up candidate tuples, fans one RPC per involved shard carrying the
// query vector and that shard's candidate point IDs, and merges the leaves'
// distance-sorted lists into the global top-k.  Leaves hold the sharded
// feature vectors and run the embarrassingly parallel distance kernel.
package hdsearch

import (
	"errors"
	"fmt"
	"sync"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/lsh"
	"musuite/internal/rpc"
	"musuite/internal/vec"
	"musuite/internal/wire"
)

// Method names on the wire.
const (
	// MethodSearch is the front-end→mid-tier query.
	MethodSearch = "hdsearch.search"
	// MethodLeafKNN is the mid-tier→leaf candidate-scoring call.
	MethodLeafKNN = "hdsearch.leafknn"
)

// Neighbor is one result: a global point ID and its squared Euclidean
// distance to the query.
type Neighbor struct {
	PointID  uint32
	Distance float32
}

// --- wire codecs ---

// EncodeSearchRequest encodes a front-end query.
func EncodeSearchRequest(query vec.Vector, k int) []byte {
	e := wire.NewEncoder(8 + 4*len(query))
	e.Uvarint(uint64(k))
	e.Float32s(query)
	return e.Bytes()
}

// DecodeSearchRequest decodes a front-end query.
func DecodeSearchRequest(b []byte) (query vec.Vector, k int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	return query, k, d.Err()
}

// EncodeLeafRequest encodes a mid-tier→leaf scoring call.
func EncodeLeafRequest(query vec.Vector, ids []uint32, k int) []byte {
	e := wire.NewEncoder(16 + 4*len(query) + 4*len(ids))
	e.Uvarint(uint64(k))
	e.Float32s(query)
	e.Uint32s(ids)
	return e.Bytes()
}

// DecodeLeafRequest decodes a mid-tier→leaf scoring call.
func DecodeLeafRequest(b []byte) (query vec.Vector, ids []uint32, k int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	ids = d.Uint32s()
	return query, ids, k, d.Err()
}

// AppendNeighbors appends a distance-sorted result list to e — the
// streaming form the leaf and mid-tier reply paths use with pooled
// encoders.
func AppendNeighbors(e *wire.Encoder, ns []Neighbor) {
	e.Uvarint(uint64(len(ns)))
	for _, n := range ns {
		e.Uint32(n.PointID)
		e.Float32(n.Distance)
	}
}

// EncodeNeighbors encodes a distance-sorted result list.
func EncodeNeighbors(ns []Neighbor) []byte {
	e := wire.NewEncoder(8 + 8*len(ns))
	AppendNeighbors(e, ns)
	return e.Bytes()
}

// DecodeNeighborsInto decodes a result list, appending to dst so callers can
// reuse capacity across replies.
func DecodeNeighborsInto(dst []Neighbor, b []byte) ([]Neighbor, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return dst, err
	}
	if n > wire.MaxSliceLen/8 {
		return dst, wire.ErrTooLarge
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Neighbor{PointID: d.Uint32(), Distance: d.Float32()})
	}
	return dst, d.Err()
}

// DecodeNeighbors decodes a result list.
func DecodeNeighbors(b []byte) ([]Neighbor, error) {
	return DecodeNeighborsInto(nil, b)
}

// --- leaf ---

// LeafData is one shard's slice of the corpus: vectors indexed by local
// point ID, plus the mapping back to global IDs.
type LeafData struct {
	Vectors  []vec.Vector
	GlobalID []uint32
}

// ShardCorpus splits a corpus round-robin into n leaf shards.
func ShardCorpus(c *dataset.ImageCorpus, n int) []LeafData {
	idLists := c.Shard(n)
	out := make([]LeafData, n)
	for s, ids := range idLists {
		ld := LeafData{
			Vectors:  make([]vec.Vector, len(ids)),
			GlobalID: make([]uint32, len(ids)),
		}
		for local, global := range ids {
			ld.Vectors[local] = c.Vectors[global]
			ld.GlobalID[local] = uint32(global)
		}
		out[s] = ld
	}
	return out
}

// leafScratch recycles the decoded query vector and candidate-ID list of a
// scoring call across requests served by the same leaf worker pool.
type leafScratch struct {
	query []float32
	ids   []uint32
}

var leafScratches = sync.Pool{New: func() any { return new(leafScratch) }}

// leafKNN runs the distance kernel for one scoring call against the shard,
// streaming the distance-sorted global-ID list into reply.  The request
// decodes into pooled scratch (nothing decoded survives the call) and the
// reply bytes go straight into the leaf's pooled encoder, so a steady-state
// scoring call allocates only the top-k selection itself.
func leafKNN(data LeafData, payload []byte, reply *wire.Encoder) error {
	sc := leafScratches.Get().(*leafScratch)
	defer leafScratches.Put(sc)
	d := wire.NewDecoder(payload)
	k := int(d.Uvarint())
	sc.query = d.Float32sInto(sc.query[:0])
	sc.ids = d.Uint32sInto(sc.ids[:0])
	if err := d.Err(); err != nil {
		return err
	}
	local := knn.Subset(vec.Vector(sc.query), data.Vectors, sc.ids, k)
	reply.Uvarint(uint64(len(local)))
	for _, n := range local {
		reply.Uint32(data.GlobalID[n.ID])
		reply.Float32(n.Distance)
	}
	return nil
}

// NewLeaf builds the HDSearch leaf microservice over one shard.  The handler
// uses the encoded form, so scalar requests and batch-carrier members alike
// stream their result lists into pooled encoders; a whole carrier still runs
// as one worker task, and each query still fails alone.
func NewLeaf(data LeafData, opts *core.LeafOptions) *core.Leaf {
	return core.NewLeafEncoded(func(method string, payload []byte, reply *wire.Encoder) error {
		if method != MethodLeafKNN {
			return fmt.Errorf("hdsearch leaf: unknown method %q", method)
		}
		return leafKNN(data, payload, reply)
	}, opts)
}

// --- mid-tier ---

// IndexConfig tunes the mid-tier LSH index (see lsh.Config); zero values
// take the paper-tuned defaults targeting ≥93% accuracy.
type IndexConfig = lsh.Config

// BuildIndex constructs the mid-tier's LSH tables over the sharded corpus
// (the offline index-construction step).  Point IDs inserted are *local*
// shard IDs so the leaf can use them directly.
func BuildIndex(shards []LeafData, cfg IndexConfig) (*lsh.Index, error) {
	if len(shards) == 0 {
		return nil, errors.New("hdsearch: no shards")
	}
	cfg.Dim = len(shards[0].Vectors[0])
	idx, err := lsh.New(cfg)
	if err != nil {
		return nil, err
	}
	for s, shard := range shards {
		for local, v := range shard.Vectors {
			if err := idx.Insert(v, int32(s), uint32(local)); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}

// mergeScratch recycles the flattened candidate list the mid-tier response
// path builds from the per-shard replies.
type mergeScratch struct{ all []knn.Neighbor }

var mergeScratches = sync.Pool{New: func() any { return new(mergeScratch) }}

// appendNeighborList decodes one shard's encoded neighbor list, appending
// each entry to dst without materializing an intermediate slice.
func appendNeighborList(dst []knn.Neighbor, b []byte) ([]knn.Neighbor, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return dst, err
	}
	if n > wire.MaxSliceLen/8 {
		return dst, wire.ErrTooLarge
	}
	for i := 0; i < n; i++ {
		dst = append(dst, knn.Neighbor{ID: d.Uint32(), Distance: d.Float32()})
	}
	return dst, d.Err()
}

// NewMidTier builds the HDSearch mid-tier microservice around a prebuilt
// candidate index (LSH by default; kd-tree and k-means alternatives are in
// indexes.go).  Call ConnectLeaves then Start on the result.  Leaves return
// global point IDs, so the mid-tier needs only the index.
func NewMidTier(index CandidateIndex, opts *core.Options) *core.MidTier {
	return core.NewMidTier(func(ctx *core.Ctx) {
		if ctx.Req.Method != MethodSearch {
			ctx.ReplyError(fmt.Errorf("hdsearch mid-tier: unknown method %q", ctx.Req.Method))
			return
		}
		query, k, err := DecodeSearchRequest(ctx.Req.Payload)
		if err != nil {
			ctx.ReplyError(err)
			return
		}
		if k <= 0 {
			k = 1
		}
		// Request path: LSH lookup, map point IDs → leaf shards, launch
		// clients to leaf microservers (paper Fig. 3).
		byShard := index.LookupByShard(query)
		if len(byShard) == 0 {
			ctx.Reply(EncodeNeighbors(nil))
			return
		}
		calls := make([]core.LeafCall, 0, len(byShard))
		for shard, ids := range byShard {
			calls = append(calls, core.LeafCall{
				Shard:   int(shard),
				Method:  MethodLeafKNN,
				Payload: EncodeLeafRequest(query, ids, k),
			})
		}
		// Response path: merge per-shard distance-sorted lists into the
		// final k-NN across all shards.  The per-shard replies decode
		// straight into one pooled flat candidate list (they may alias
		// pooled reply buffers recycled when this merge returns, so each
		// entry is copied out here, by value), and the final reply streams
		// through a pooled encoder.
		ctx.Fanout(calls, func(results []core.LeafResult) {
			sc := mergeScratches.Get().(*mergeScratch)
			defer mergeScratches.Put(sc)
			sc.all = sc.all[:0]
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
				var err error
				sc.all, err = appendNeighborList(sc.all, r.Reply)
				if err != nil {
					ctx.ReplyError(err)
					return
				}
			}
			merged := knn.Select(sc.all, k)
			e := wire.GetEncoder()
			e.Uvarint(uint64(len(merged)))
			for _, n := range merged {
				e.Uint32(n.ID)
				e.Float32(n.Distance)
			}
			ctx.Reply(e.Bytes())
			wire.PutEncoder(e)
		})
	}, opts)
}

// --- front-end client ---

// Client is the front-end's typed handle on an HDSearch deployment.
type Client struct {
	rpc *rpc.Client
}

// DialClient connects a front-end client to the mid-tier at addr.
func DialClient(addr string, opts *rpc.ClientOptions) (*Client, error) {
	c, err := rpc.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Search returns the k nearest neighbors of query.
func (c *Client) Search(query vec.Vector, k int) ([]Neighbor, error) {
	reply, err := c.rpc.Call(MethodSearch, EncodeSearchRequest(query, k))
	if err != nil {
		return nil, err
	}
	return DecodeNeighbors(reply)
}

// Go issues an asynchronous search (used by the load generators).
func (c *Client) Go(query vec.Vector, k int, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodSearch, EncodeSearchRequest(query, k), nil, done)
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }
