// Package hdsearch implements μSuite's HDSearch: content-based image
// similarity search as a three-tier microservice (paper §III-A).
//
// The mid-tier holds multi-probe LSH tables whose entries reference
// {leaf shard, point ID} tuples — it stores no feature vectors.  On a query
// it looks up candidate tuples, fans one RPC per involved shard carrying the
// query vector and that shard's candidate point IDs, and merges the leaves'
// distance-sorted lists into the global top-k.  Leaves hold the sharded
// feature vectors and run the embarrassingly parallel distance kernel.
package hdsearch

import (
	"errors"
	"fmt"
	"sync"

	"musuite/internal/ann"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/lsh"
	"musuite/internal/rpc"
	"musuite/internal/trace"
	"musuite/internal/vec"
	"musuite/internal/wire"
)

// Method names on the wire.
const (
	// MethodSearch is the front-end→mid-tier query.
	MethodSearch = "hdsearch.search"
	// MethodLeafKNN is the mid-tier→leaf candidate-scoring call.
	MethodLeafKNN = "hdsearch.leafknn"
	// MethodLeafANN is the mid-tier→leaf call for leaf-resident ANN
	// indexes: no candidate IDs travel — each leaf probes its own IVF
	// index and returns its shard-local top-k under global IDs.
	MethodLeafANN = "hdsearch.leafann"
)

// Neighbor is one result: a global point ID and its squared Euclidean
// distance to the query.
type Neighbor struct {
	PointID  uint32
	Distance float32
}

// --- wire codecs ---

// EncodeSearchRequest encodes a front-end query.
func EncodeSearchRequest(query vec.Vector, k int) []byte {
	e := wire.NewEncoder(8 + 4*len(query))
	e.Uvarint(uint64(k))
	e.Float32s(query)
	return e.Bytes()
}

// DecodeSearchRequest decodes a front-end query.
func DecodeSearchRequest(b []byte) (query vec.Vector, k int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	return query, k, d.Err()
}

// EncodeLeafRequest encodes a mid-tier→leaf scoring call.
func EncodeLeafRequest(query vec.Vector, ids []uint32, k int) []byte {
	e := wire.NewEncoder(16 + 4*len(query) + 4*len(ids))
	e.Uvarint(uint64(k))
	e.Float32s(query)
	e.Uint32s(ids)
	return e.Bytes()
}

// DecodeLeafRequest decodes a mid-tier→leaf scoring call.
func DecodeLeafRequest(b []byte) (query vec.Vector, ids []uint32, k int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	ids = d.Uint32s()
	return query, ids, k, d.Err()
}

// EncodeLeafANNRequest encodes a mid-tier→leaf ANN probe: the query plus
// the breadth/rerank knobs (0 = the leaf index's build defaults).  The
// first knob slot carries the family's search breadth — nprobe for the IVF
// kinds, efSearch for hnsw — so one wire format serves every leaf-resident
// kind.  One encoding is broadcast to every shard.
func EncodeLeafANNRequest(query vec.Vector, k, nprobe, rerank int) []byte {
	e := wire.NewEncoder(16 + 4*len(query))
	e.Uvarint(uint64(k))
	e.Uvarint(uint64(nprobe))
	e.Uvarint(uint64(rerank))
	e.Float32s(query)
	return e.Bytes()
}

// DecodeLeafANNRequest decodes a mid-tier→leaf ANN probe.
func DecodeLeafANNRequest(b []byte) (query vec.Vector, k, nprobe, rerank int, err error) {
	d := wire.NewDecoder(b)
	k = int(d.Uvarint())
	nprobe = int(d.Uvarint())
	rerank = int(d.Uvarint())
	query = vec.Vector(d.Float32s())
	return query, k, nprobe, rerank, d.Err()
}

// AppendNeighbors appends a distance-sorted result list to e — the
// streaming form the leaf and mid-tier reply paths use with pooled
// encoders.
func AppendNeighbors(e *wire.Encoder, ns []Neighbor) {
	e.Uvarint(uint64(len(ns)))
	for _, n := range ns {
		e.Uint32(n.PointID)
		e.Float32(n.Distance)
	}
}

// EncodeNeighbors encodes a distance-sorted result list.
func EncodeNeighbors(ns []Neighbor) []byte {
	e := wire.NewEncoder(8 + 8*len(ns))
	AppendNeighbors(e, ns)
	return e.Bytes()
}

// DecodeNeighborsInto decodes a result list, appending to dst so callers can
// reuse capacity across replies.
func DecodeNeighborsInto(dst []Neighbor, b []byte) ([]Neighbor, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return dst, err
	}
	if n > wire.MaxSliceLen/8 {
		return dst, wire.ErrTooLarge
	}
	for i := 0; i < n; i++ {
		dst = append(dst, Neighbor{PointID: d.Uint32(), Distance: d.Float32()})
	}
	return dst, d.Err()
}

// DecodeNeighbors decodes a result list.
func DecodeNeighbors(b []byte) ([]Neighbor, error) {
	return DecodeNeighborsInto(nil, b)
}

// --- leaf ---

// LeafData is one shard's slice of the corpus: a flat structure-of-arrays
// vector store indexed by local point ID, plus the mapping back to global
// IDs.
type LeafData struct {
	Store    *kernel.Store
	GlobalID []uint32
	// ANN is the optional leaf-resident sub-linear index over Store (IVF
	// or HNSW per the build config's Kind); nil leaves serve only the
	// brute-force candidate-scoring path.
	ANN ann.Searcher
}

// ShardSeed namespaces a base build seed per shard: replicas of the same
// shard build the identical index while distinct shards initialize
// independently.  Every shard build — in-process (BuildLeafANN) and the
// distributed binary (cmd/hdsearch) — derives its seed here, which is what
// the byte-identity reproducibility test pins.
func ShardSeed(base int64, shard int) int64 {
	return base + int64(shard)*1_000_003
}

// BuildLeafANN builds each shard's leaf-resident index in place, with the
// seed namespaced per shard through ShardSeed.
func BuildLeafANN(shards []LeafData, cfg ann.Config) error {
	base := cfg.Seed
	for s := range shards {
		cfg.Seed = ShardSeed(base, s)
		idx, err := ann.BuildKind(shards[s].Store, cfg)
		if err != nil {
			return fmt.Errorf("hdsearch: shard %d ann build: %w", s, err)
		}
		shards[s].ANN = idx
	}
	return nil
}

// ShardCorpus splits a corpus round-robin into n leaf shards, copying each
// shard's vectors into a flat kernel store (the corpus is rectangular by
// construction, so the store build cannot fail).
func ShardCorpus(c *dataset.ImageCorpus, n int) []LeafData {
	idLists := c.Shard(n)
	out := make([]LeafData, n)
	vecs := make([]vec.Vector, 0)
	for s, ids := range idLists {
		vecs = vecs[:0]
		ld := LeafData{GlobalID: make([]uint32, len(ids))}
		for local, global := range ids {
			vecs = append(vecs, c.Vectors[global])
			ld.GlobalID[local] = uint32(global)
		}
		st, err := kernel.BuildStore(vecs)
		if err != nil {
			panic("hdsearch: ragged corpus: " + err.Error())
		}
		ld.Store = st
		out[s] = ld
	}
	return out
}

// leafScratch recycles the decoded query vector, candidate-ID list, and
// result buffer of a scoring call across requests served by the same leaf
// worker pool.
type leafScratch struct {
	query []float32
	ids   []uint32
	nbrs  []knn.Neighbor
}

var leafScratches = sync.Pool{New: func() any { return new(leafScratch) }}

// leafKNN runs the distance kernel for one scoring call against the shard,
// streaming the distance-sorted global-ID list into reply.  The request
// decodes into pooled scratch (nothing decoded survives the call), the scan
// runs on the leaf's compute engine (norm-trick kernel, intra-request
// parallelism), and the reply bytes go straight into the leaf's pooled
// encoder, so a steady-state scoring call allocates nothing.
func leafKNN(eng *kernel.Engine, data LeafData, payload []byte, reply *wire.Encoder) error {
	sc := leafScratches.Get().(*leafScratch)
	defer leafScratches.Put(sc)
	d := wire.NewDecoder(payload)
	k := int(d.Uvarint())
	sc.query = d.Float32sInto(sc.query[:0])
	sc.ids = d.Uint32sInto(sc.ids[:0])
	if err := d.Err(); err != nil {
		return err
	}
	// Validate the query dimension once here; the kernels assume it.
	if data.Store.Len() > 0 && len(sc.query) != data.Store.Dim() {
		return vec.ErrDimensionMismatch
	}
	local, err := eng.ScanSubset(data.Store, sc.query, sc.ids, k, sc.nbrs[:0])
	sc.nbrs = local[:0]
	if err != nil {
		return err
	}
	reply.Uvarint(uint64(len(local)))
	for _, n := range local {
		reply.Uint32(data.GlobalID[n.ID])
		reply.Float32(n.Distance)
	}
	return nil
}

// leafANN serves one ANN probe against the shard's leaf-resident index —
// IVF (coarse-quantizer probe, candidate scan, exact re-rank) or HNSW
// (graph traversal; the wire's nprobe slot carries efSearch and rerank is
// moot) — then the same streamed global-ID reply as the brute-force path,
// so the mid-tier merge cannot tell them apart.
func leafANN(eng *kernel.Engine, data LeafData, payload []byte, reply *wire.Encoder) error {
	if data.ANN == nil {
		return errors.New("hdsearch leaf: no ann index on this shard")
	}
	sc := leafScratches.Get().(*leafScratch)
	defer leafScratches.Put(sc)
	d := wire.NewDecoder(payload)
	k := int(d.Uvarint())
	nprobe := int(d.Uvarint())
	rerank := int(d.Uvarint())
	sc.query = d.Float32sInto(sc.query[:0])
	if err := d.Err(); err != nil {
		return err
	}
	local, err := data.ANN.Search(eng, sc.query, k, nprobe, rerank, sc.nbrs[:0])
	sc.nbrs = local[:0]
	if err != nil {
		return err
	}
	reply.Uvarint(uint64(len(local)))
	for _, n := range local {
		reply.Uint32(data.GlobalID[n.ID])
		reply.Float32(n.Distance)
	}
	return nil
}

// NewLeaf builds the HDSearch leaf microservice over one shard.  The handler
// uses the encoded form, so scalar requests and batch-carrier members alike
// stream their result lists into pooled encoders; a whole carrier still runs
// as one worker task, and each query still fails alone.  The shard scan runs
// on the options' compute engine (EnsureLeafKernel supplies one when unset),
// whose counters surface in the leaf's TierStats.
func NewLeaf(data LeafData, opts *core.LeafOptions) *core.Leaf {
	opts = core.EnsureLeafKernel(opts)
	eng := opts.Kernel
	return core.NewLeafEncoded(func(method string, payload []byte, reply *wire.Encoder) error {
		switch method {
		case MethodLeafKNN:
			return leafKNN(eng, data, payload, reply)
		case MethodLeafANN:
			return leafANN(eng, data, payload, reply)
		}
		return fmt.Errorf("hdsearch leaf: unknown method %q", method)
	}, opts)
}

// --- mid-tier ---

// IndexConfig tunes the mid-tier LSH index (see lsh.Config); zero values
// take the paper-tuned defaults targeting ≥93% accuracy.
type IndexConfig = lsh.Config

// BuildIndex constructs the mid-tier's LSH tables over the sharded corpus
// (the offline index-construction step).  Point IDs inserted are *local*
// shard IDs so the leaf can use them directly.
func BuildIndex(shards []LeafData, cfg IndexConfig) (*lsh.Index, error) {
	if len(shards) == 0 {
		return nil, errors.New("hdsearch: no shards")
	}
	cfg.Dim = shards[0].Store.Dim()
	idx, err := lsh.New(cfg)
	if err != nil {
		return nil, err
	}
	for s, shard := range shards {
		st := shard.Store
		for local := 0; local < st.Len(); local++ {
			if err := idx.Insert(vec.Vector(st.Row(local)), int32(s), uint32(local)); err != nil {
				return nil, err
			}
		}
	}
	return idx, nil
}

// mergeScratch recycles the streaming top-k heap and drained result list the
// mid-tier response path uses to merge per-shard replies.
type mergeScratch struct {
	top    kernel.TopK
	merged []knn.Neighbor
}

var mergeScratches = sync.Pool{New: func() any { return new(mergeScratch) }}

// considerNeighborList decodes one shard's encoded neighbor list straight
// into the streaming top-k — no flattened candidate list, no re-sort; each
// entry is considered (and copied by value) as it decodes.
func considerNeighborList(top *kernel.TopK, b []byte) error {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if n > wire.MaxSliceLen/8 {
		return wire.ErrTooLarge
	}
	for i := 0; i < n; i++ {
		top.Consider(d.Uint32(), d.Float32())
	}
	return d.Err()
}

// NewMidTier builds the HDSearch mid-tier microservice around a prebuilt
// candidate index (LSH by default; kd-tree and k-means alternatives are in
// indexes.go).  Call ConnectLeaves then Start on the result.  Leaves return
// global point IDs, so the mid-tier needs only the index.
func NewMidTier(index CandidateIndex, opts *core.Options) *core.MidTier {
	return core.NewMidTier(func(ctx *core.Ctx) {
		if ctx.Req.Method != MethodSearch {
			ctx.ReplyError(fmt.Errorf("hdsearch mid-tier: unknown method %q", ctx.Req.Method))
			return
		}
		query, k, err := DecodeSearchRequest(ctx.Req.Payload)
		if err != nil {
			ctx.ReplyError(err)
			return
		}
		if k <= 0 {
			k = 1
		}
		// Reject mis-dimensioned queries here, before they reach index
		// probes or leaf kernels that assume the corpus dimensionality.
		if dim := index.Dim(); dim > 0 && len(query) != dim {
			ctx.ReplyError(vec.ErrDimensionMismatch)
			return
		}
		// Leaf-resident ANN kinds carry no candidate IDs: broadcast the
		// query (plus the router's nprobe/rerank knobs) and let every
		// shard probe its own IVF index.
		if router, ok := index.(*LeafANN); ok {
			payload := EncodeLeafANNRequest(query, k, router.NProbe(), router.Rerank())
			ctx.FanoutAll(MethodLeafANN, payload, mergeTopK(ctx, k))
			return
		}
		// Request path: LSH lookup, map point IDs → leaf shards, launch
		// clients to leaf microservers (paper Fig. 3).
		byShard := index.LookupByShard(query)
		if len(byShard) == 0 {
			ctx.Reply(EncodeNeighbors(nil))
			return
		}
		calls := make([]core.LeafCall, 0, len(byShard))
		for shard, ids := range byShard {
			calls = append(calls, core.LeafCall{
				Shard:   int(shard),
				Method:  MethodLeafKNN,
				Payload: EncodeLeafRequest(query, ids, k),
			})
		}
		ctx.Fanout(calls, mergeTopK(ctx, k))
	}, opts)
}

// mergeTopK is the shared response path: merge per-shard distance-sorted
// lists into the final k-NN across all shards with a streaming bounded
// heap — each reply entry is considered as it decodes (and copied by value,
// since replies may alias pooled buffers recycled when the merge returns),
// so the merge is O(total·log k) with no flattened candidate list and no
// full sort.  The final reply streams through a pooled encoder.
func mergeTopK(ctx *core.Ctx, k int) func([]core.LeafResult) {
	return func(results []core.LeafResult) {
		sc := mergeScratches.Get().(*mergeScratch)
		defer mergeScratches.Put(sc)
		sc.top.Reset(k)
		for _, r := range results {
			if r.Err != nil {
				ctx.ReplyError(r.Err)
				return
			}
			if err := considerNeighborList(&sc.top, r.Reply); err != nil {
				ctx.ReplyError(err)
				return
			}
		}
		sc.merged = sc.top.AppendSorted(sc.merged[:0])
		e := wire.GetEncoder()
		e.Uvarint(uint64(len(sc.merged)))
		for _, n := range sc.merged {
			e.Uint32(n.ID)
			e.Float32(n.Distance)
		}
		ctx.Reply(e.Bytes())
		wire.PutEncoder(e)
	}
}

// --- front-end client ---

// Client is the front-end's typed handle on an HDSearch deployment.
type Client struct {
	rpc *rpc.Client
}

// DialClient connects a front-end client to the mid-tier at addr.
func DialClient(addr string, opts *rpc.ClientOptions) (*Client, error) {
	c, err := rpc.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Search returns the k nearest neighbors of query.
func (c *Client) Search(query vec.Vector, k int) ([]Neighbor, error) {
	reply, err := c.rpc.Call(MethodSearch, EncodeSearchRequest(query, k))
	if err != nil {
		return nil, err
	}
	return DecodeNeighbors(reply)
}

// Go issues an asynchronous search (used by the load generators).
func (c *Client) Go(query vec.Vector, k int, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodSearch, EncodeSearchRequest(query, k), nil, done)
}

// GoSpan issues an asynchronous search carrying a span context, tracing the
// request end to end (used by sampling load generators).
func (c *Client) GoSpan(query vec.Vector, k int, sc trace.SpanContext, done chan *rpc.Call) *rpc.Call {
	return c.rpc.GoSpan(MethodSearch, EncodeSearchRequest(query, k), sc, nil, done)
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }
