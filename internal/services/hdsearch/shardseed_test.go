package hdsearch

import (
	"testing"

	"musuite/internal/ann"
)

// leafANNKinds are the leaf-resident kinds, the set whose shard builds must
// reproduce across deployment forms.
func leafANNKinds(t *testing.T) []IndexKind {
	t.Helper()
	var out []IndexKind
	for _, kind := range IndexKinds {
		if IsLeafANN(kind) {
			out = append(out, kind)
		}
	}
	if len(out) == 0 {
		t.Fatal("no leaf-resident kinds registered")
	}
	return out
}

// TestShardBuildsReproduceAcrossDeployments pins the seed-plumbing contract
// for every leaf-resident kind: the in-process cluster path (BuildLeafANN)
// and the distributed binary's per-shard path (cmd/hdsearch: ShardSeed +
// ann.BuildKind on one shard) must produce byte-identical indexes, asserted
// through the structure fingerprints.  If either site drifts from the
// ShardSeed convention — or a new kind's build reads nondeterministic state
// — the fingerprints split.
func TestShardBuildsReproduceAcrossDeployments(t *testing.T) {
	corpus := testCorpus(t)
	const shards = 4
	const baseSeed = int64(77)
	for _, kind := range leafANNKinds(t) {
		t.Run(string(kind), func(t *testing.T) {
			cfg, ok := LeafANNConfig(kind, ann.Config{NList: 10, Seed: baseSeed})
			if !ok {
				t.Fatalf("LeafANNConfig rejected leaf kind %q", kind)
			}

			// In-process path: one call builds every shard.
			inProc := ShardCorpus(corpus, shards)
			if err := BuildLeafANN(inProc, cfg); err != nil {
				t.Fatal(err)
			}

			// Distributed path: each leaf process regenerates the corpus,
			// shards it, and builds only its own shard — exactly what
			// cmd/hdsearch does.
			for s := 0; s < shards; s++ {
				remote := ShardCorpus(corpus, shards)
				shardCfg := cfg
				shardCfg.Seed = ShardSeed(baseSeed, s)
				idx, err := ann.BuildKind(remote[s].Store, shardCfg)
				if err != nil {
					t.Fatal(err)
				}
				if got, want := idx.Fingerprint(), inProc[s].ANN.Fingerprint(); got != want {
					t.Fatalf("shard %d: distributed build fingerprint %x != in-process %x", s, got, want)
				}
			}

			// Distinct shards must not share a fingerprint (the namespacing
			// is live, not a constant seed).
			if inProc[0].ANN.Fingerprint() == inProc[1].ANN.Fingerprint() {
				t.Fatal("shards 0 and 1 built identical indexes — per-shard seed namespacing lost")
			}
		})
	}
}
