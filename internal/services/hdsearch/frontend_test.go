package hdsearch

import (
	"fmt"
	"math/rand"
	"testing"

	"musuite/internal/vec"
)

func startFrontEnd(t *testing.T) (*Cluster, *FrontEnd) {
	t.Helper()
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	fe, err := NewFrontEnd(FrontEndConfig{
		MidTierAddr: cl.Addr,
		Dim:         32,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fe.Close() })
	return cl, fe
}

func TestFrontEndExtractDeterministic(t *testing.T) {
	_, fe := startFrontEnd(t)
	img := make([]byte, 4096)
	rand.New(rand.NewSource(1)).Read(img)
	a := fe.ExtractFeatures(img)
	b := fe.ExtractFeatures(img)
	if len(a) != 32 {
		t.Fatalf("dim=%d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("extraction not deterministic")
		}
	}
	// Unit-normalized.
	if n := vec.Norm(a); n < 0.99 || n > 1.01 {
		t.Fatalf("norm=%v", n)
	}
}

func TestFrontEndCacheHitPath(t *testing.T) {
	_, fe := startFrontEnd(t)
	img := []byte("the same image twice")
	fe.ExtractFeatures(img)
	h0, m0 := fe.CacheStats()
	if h0 != 0 || m0 != 1 {
		t.Fatalf("first extract: hits=%d misses=%d", h0, m0)
	}
	fe.ExtractFeatures(img)
	h1, m1 := fe.CacheStats()
	if h1 != 1 || m1 != 1 {
		t.Fatalf("second extract: hits=%d misses=%d", h1, m1)
	}
	// Different content misses.
	fe.ExtractFeatures([]byte("different image"))
	_, m2 := fe.CacheStats()
	if m2 != 2 {
		t.Fatalf("distinct image did not miss: misses=%d", m2)
	}
}

func TestFrontEndContentSensitivity(t *testing.T) {
	_, fe := startFrontEnd(t)
	a := fe.ExtractFeatures([]byte("image A with content"))
	b := fe.ExtractFeatures([]byte("image B much differs!"))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct images extracted to identical vectors")
	}
}

func TestFrontEndSearchPipeline(t *testing.T) {
	_, fe := startFrontEnd(t)
	img := make([]byte, 1024)
	rand.New(rand.NewSource(2)).Read(img)
	results, err := fe.Search(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A synthetic projected image lies off the corpus manifold, so the
	// LSH lookup may legitimately find nothing; what matters is the
	// pipeline completes and anything returned is well-formed.
	if len(results) > 3 {
		t.Fatalf("results=%d exceed k", len(results))
	}
	for _, r := range results {
		if r.URL == "" {
			t.Fatal("missing URL")
		}
	}
	// A corpus-derived vector must return results through the same path.
	corpus := testCorpus(t)
	vres, err := fe.SearchVector(corpus.Vectors[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vres) == 0 {
		t.Fatal("corpus vector found nothing")
	}
}

func TestFrontEndURLResolution(t *testing.T) {
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	fe, err := NewFrontEnd(FrontEndConfig{MidTierAddr: cl.Addr, Dim: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	// Register URLs for half the corpus; the rest get placeholders.
	for id := 0; id < len(corpus.Vectors)/2; id++ {
		fe.RegisterURL(uint32(id), fmt.Sprintf("https://images.example/%d.jpg", id))
	}
	results, err := fe.SearchVector(corpus.Queries(1, 9)[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no vector-search results")
	}
	for _, r := range results {
		if int(r.PointID) < len(corpus.Vectors)/2 {
			want := fmt.Sprintf("https://images.example/%d.jpg", r.PointID)
			if r.URL != want {
				t.Fatalf("url=%q want %q", r.URL, want)
			}
		} else if r.URL != fmt.Sprintf("img://point/%d", r.PointID) {
			t.Fatalf("placeholder url=%q", r.URL)
		}
	}
	// Resolve on an explicit neighbor list covers both branches directly.
	rs := fe.Resolve([]Neighbor{{PointID: 0}, {PointID: uint32(len(corpus.Vectors) - 1)}})
	if rs[0].URL != "https://images.example/0.jpg" {
		t.Fatalf("resolve registered: %q", rs[0].URL)
	}
	if rs[1].URL == "" || rs[1].URL == rs[0].URL {
		t.Fatalf("resolve placeholder: %q", rs[1].URL)
	}
}

func TestFrontEndRejectsBadConfig(t *testing.T) {
	if _, err := NewFrontEnd(FrontEndConfig{MidTierAddr: "127.0.0.1:1", Dim: 0}); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := NewFrontEnd(FrontEndConfig{MidTierAddr: "127.0.0.1:1", Dim: 8}); err == nil {
		t.Fatal("dial to dead mid-tier succeeded")
	}
}
