package hdsearch

import (
	"testing"

	"musuite/internal/core"
	"musuite/internal/knn"
)

func startClusterWithIndex(t *testing.T, kind IndexKind) (*Cluster, *Client) {
	t.Helper()
	corpus := testCorpus(t)
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		Kind:    kind,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:    core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, client
}

// TestAllIndexKindsServeSearches runs the full three-tier pipeline under
// each of the paper's three indexing structures and checks recall for each.
func TestAllIndexKindsServeSearches(t *testing.T) {
	corpus := testCorpus(t)
	for _, kind := range []IndexKind{IndexLSH, IndexKDTree, IndexKMeans} {
		t.Run(string(kind), func(t *testing.T) {
			_, client := startClusterWithIndex(t, kind)
			queries := corpus.Queries(60, 17)
			hits := 0
			for _, q := range queries {
				got, err := client.Search(q, 1)
				if err != nil {
					t.Fatal(err)
				}
				truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
				if len(got) > 0 && got[0].PointID == truth {
					hits++
				}
			}
			recall := float64(hits) / float64(len(queries))
			if recall < 0.85 {
				t.Fatalf("recall@1 = %.3f", recall)
			}
			t.Logf("recall@1 = %.3f", recall)
		})
	}
}

func TestBuildCandidateIndexKinds(t *testing.T) {
	corpus := testCorpus(t)
	shards := ShardCorpus(corpus, 4)
	for _, kind := range []IndexKind{IndexLSH, IndexKDTree, IndexKMeans, ""} {
		idx, err := BuildCandidateIndex(kind, shards, 1)
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		byShard := idx.LookupByShard(corpus.Queries(1, 19)[0])
		total := 0
		for shard, ids := range byShard {
			if shard < 0 || shard >= 4 {
				t.Fatalf("%q: bad shard %d", kind, shard)
			}
			total += len(ids)
		}
		if total == 0 {
			t.Fatalf("%q: no candidates", kind)
		}
		if total > len(corpus.Vectors)/2 {
			t.Fatalf("%q: %d candidates — not pruning", kind, total)
		}
	}
	if _, err := BuildCandidateIndex("btree", shards, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := BuildCandidateIndex(IndexKDTree, nil, 1); err == nil {
		t.Fatal("empty shards accepted")
	}
}
