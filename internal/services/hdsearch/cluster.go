package hdsearch

import (
	"musuite/internal/ann"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

// ClusterConfig assembles a complete in-process HDSearch deployment: sharded
// leaves, an indexed mid-tier, and loopback TCP between all tiers.
type ClusterConfig struct {
	// Corpus is the image corpus to serve.
	Corpus *dataset.ImageCorpus
	// Shards is the leaf count (paper: 4-way for HDSearch).
	Shards int
	// LeafReplicas is the number of leaf processes serving each shard
	// (default 1).  With >1 the mid-tier load-balances, hedges, and
	// retries across the replicas of a shard.
	LeafReplicas int
	// Kind selects the candidate index (default IndexLSH; IndexKDTree and
	// IndexKMeans enable the indexing-structure ablation).
	Kind IndexKind
	// Index tunes the LSH tables when Kind is IndexLSH (zero =
	// paper-tuned defaults).
	Index IndexConfig
	// ANN tunes the leaf-resident indexes when Kind is one of the ivf* or
	// hnsw kinds (zero = ann defaults); its Kind/Quant fields are derived
	// from the cluster Kind and its Seed defaults to Index.Seed.
	ANN ann.Config
	// MidTier and Leaf configure the framework tiers.  MidTier.Probe is
	// where the experiment harness attaches its telemetry.
	MidTier core.Options
	Leaf    core.LeafOptions
}

// Cluster is a running HDSearch deployment.
type Cluster struct {
	// Addr is the mid-tier address front-ends dial.
	Addr string
	// Index is the mid-tier's LSH index (exposed for diagnostics).
	Index IndexStats

	corpus  *dataset.ImageCorpus
	leaves  []*core.Leaf
	midTier *core.MidTier
	annRt   *LeafANN
}

// ANNRouter exposes the mid-tier's ANN routing stub (nil for the
// candidate-generator kinds) so experiment sweeps can retune nprobe and
// rerank on a live cluster without rebuilding the leaf indexes.
func (c *Cluster) ANNRouter() *LeafANN { return c.annRt }

// IndexStats re-exports the LSH occupancy summary.
type IndexStats struct {
	Tables, Entries, Buckets, MaxBucketSize int
}

// StartCluster launches the leaves and mid-tier and returns the deployment.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	shards := ShardCorpus(cfg.Corpus, cfg.Shards)
	cl := &Cluster{corpus: cfg.Corpus}
	var index CandidateIndex
	if annCfg, ok := LeafANNConfig(cfg.Kind, cfg.ANN); ok {
		if annCfg.Seed == 0 {
			annCfg.Seed = cfg.Index.Seed
		}
		if err := BuildLeafANN(shards, annCfg); err != nil {
			return nil, err
		}
		knob := annCfg.NProbe
		if cfg.Kind == IndexHNSW {
			knob = annCfg.EFSearch
		}
		cl.annRt = NewLeafANN(shards[0].Store.Dim(), knob, annCfg.Rerank)
		index = cl.annRt
		cl.Index = IndexStats{Entries: len(cfg.Corpus.Vectors)}
	} else if cfg.Kind == IndexLSH || cfg.Kind == "" {
		lshIndex, err := BuildIndex(shards, cfg.Index)
		if err != nil {
			return nil, err
		}
		st := lshIndex.Stats()
		cl.Index = IndexStats{Tables: st.Tables, Entries: st.Entries, Buckets: st.Buckets, MaxBucketSize: st.MaxBucketSize}
		index = lshIndex
	} else {
		var err error
		index, err = BuildCandidateIndex(cfg.Kind, shards, cfg.Index.Seed)
		if err != nil {
			return nil, err
		}
		cl.Index = IndexStats{Entries: len(cfg.Corpus.Vectors)}
	}

	replicas := cfg.LeafReplicas
	if replicas <= 0 {
		replicas = 1
	}
	leafGroups := make([][]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		for r := 0; r < replicas; r++ {
			leafOpts := cfg.Leaf
			leaf := NewLeaf(shards[s], &leafOpts)
			addr, err := leaf.Start("127.0.0.1:0")
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.leaves = append(cl.leaves, leaf)
			leafGroups[s] = append(leafGroups[s], addr)
		}
	}

	mtOpts := cfg.MidTier
	mt := NewMidTier(index, &mtOpts)
	if err := mt.ConnectLeafGroups(leafGroups); err != nil {
		cl.Close()
		return nil, err
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		mt.Close()
		cl.Close()
		return nil, err
	}
	cl.midTier = mt
	cl.Addr = addr
	return cl, nil
}

// Accuracy scores responses against brute-force ground truth as the paper
// does: the cosine similarity between the reported nearest neighbor's
// feature vector and the true nearest neighbor's.  A perfect answer scores
// 1.0; the paper tunes LSH for a minimum accuracy of 0.93.
func (c *Cluster) Accuracy(query vec.Vector, reported []Neighbor) float32 {
	if len(reported) == 0 {
		return 0
	}
	truth := knn.BruteForce(query, c.corpus.Vectors, 1)
	if len(truth) == 0 {
		return 0
	}
	got := c.corpus.Vectors[reported[0].PointID]
	want := c.corpus.Vectors[truth[0].ID]
	return vec.CosineSimilarity(got, want)
}

// MidTier exposes the deployment's framework mid-tier — the runtime
// topology admin surface (cluster.ServeAdmin on MidTier().Topology())
// hangs off it.  HDSearch shards its LSH corpus by table position, so a
// resize shifts which vectors each shard index serves; add/drain here is
// for failure drills, not data-aware resharding.
func (c *Cluster) MidTier() *core.MidTier { return c.midTier }

// Close tears the deployment down.
func (c *Cluster) Close() {
	if c.midTier != nil {
		c.midTier.Close()
	}
	for _, l := range c.leaves {
		l.Close()
	}
}
