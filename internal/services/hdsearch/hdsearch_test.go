package hdsearch

import (
	"strings"
	"testing"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

func testCorpus(t *testing.T) *dataset.ImageCorpus {
	t.Helper()
	return dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 1200, Dim: 32, Clusters: 10, Noise: 0.12, Seed: 42,
	})
}

func startTestCluster(t *testing.T, corpus *dataset.ImageCorpus) *Cluster {
	t.Helper()
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:    core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

func TestCodecsRoundTrip(t *testing.T) {
	q := vec.Vector{1.5, -2, 0.25}
	b := EncodeSearchRequest(q, 7)
	gq, k, err := DecodeSearchRequest(b)
	if err != nil || k != 7 || len(gq) != 3 || gq[1] != -2 {
		t.Fatalf("search codec: %v %d %v", gq, k, err)
	}

	lb := EncodeLeafRequest(q, []uint32{3, 9}, 2)
	lq, ids, lk, err := DecodeLeafRequest(lb)
	if err != nil || lk != 2 || len(lq) != 3 || len(ids) != 2 || ids[1] != 9 {
		t.Fatalf("leaf codec: %v %v %d %v", lq, ids, lk, err)
	}

	ns := []Neighbor{{PointID: 5, Distance: 0.5}, {PointID: 1, Distance: 1.25}}
	gns, err := DecodeNeighbors(EncodeNeighbors(ns))
	if err != nil || len(gns) != 2 || gns[0] != ns[0] || gns[1] != ns[1] {
		t.Fatalf("neighbor codec: %v %v", gns, err)
	}
	// Empty list round-trips.
	empty, err := DecodeNeighbors(EncodeNeighbors(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty codec: %v %v", empty, err)
	}
	// Garbage is rejected, not panicked on.
	if _, err := DecodeNeighbors([]byte{0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestShardCorpusMapsGlobalIDs(t *testing.T) {
	corpus := testCorpus(t)
	shards := ShardCorpus(corpus, 4)
	total := 0
	for s, sh := range shards {
		if sh.Store.Len() != len(sh.GlobalID) {
			t.Fatal("shard arrays misaligned")
		}
		total += sh.Store.Len()
		for local, gid := range sh.GlobalID {
			if int(gid)%4 != s {
				t.Fatalf("global %d in shard %d", gid, s)
			}
			// The local row must hold the global vector's values (the
			// SoA store copies into its flat block, so compare values,
			// not addresses).
			row := sh.Store.Row(local)
			for d, v := range corpus.Vectors[gid] {
				if row[d] != v {
					t.Fatalf("shard %d row %d differs from corpus vector %d at dim %d", s, local, gid, d)
				}
			}
		}
	}
	if total != len(corpus.Vectors) {
		t.Fatalf("sharded %d of %d", total, len(corpus.Vectors))
	}
}

func TestEndToEndSearchExactTopK(t *testing.T) {
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	queries := corpus.Queries(40, 7)
	const k = 5
	for qi, q := range queries {
		got, err := client.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("query %d: empty result", qi)
		}
		if len(got) > k {
			t.Fatalf("query %d: %d results for k=%d", qi, len(got), k)
		}
		// Results must be distance-sorted and globally valid.
		for i := range got {
			if int(got[i].PointID) >= len(corpus.Vectors) {
				t.Fatalf("query %d: bogus point %d", qi, got[i].PointID)
			}
			if i > 0 && got[i].Distance < got[i-1].Distance {
				t.Fatalf("query %d: results unsorted", qi)
			}
			// Reported distance must match a recomputation.
			want := vec.SquaredEuclidean(q, corpus.Vectors[got[i].PointID])
			if diff := got[i].Distance - want; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("query %d: distance %v, recomputed %v", qi, got[i].Distance, want)
			}
		}
	}
}

// TestAccuracyFloor reproduces the paper's tuning target: ≥93% accuracy
// (cosine similarity between reported and true NN) across queries.
func TestAccuracyFloor(t *testing.T) {
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	queries := corpus.Queries(100, 9)
	sum := float32(0)
	for _, q := range queries {
		got, err := client.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		sum += cl.Accuracy(q, got)
	}
	mean := sum / float32(len(queries))
	if mean < 0.93 {
		t.Fatalf("mean accuracy %.3f < 0.93", mean)
	}
	t.Logf("mean accuracy %.4f", mean)
}

// TestRecallAgainstBruteForce: the end-to-end top-1 equals brute force for
// the overwhelming majority of queries.
func TestRecallAgainstBruteForce(t *testing.T) {
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	queries := corpus.Queries(100, 11)
	hits := 0
	for _, q := range queries {
		got, err := client.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
		if len(got) > 0 && got[0].PointID == truth {
			hits++
		}
	}
	if float64(hits)/float64(len(queries)) < 0.9 {
		t.Fatalf("recall@1 = %d/%d", hits, len(queries))
	}
}

func TestUnknownMethodsRejected(t *testing.T) {
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.rpc.Call("bogus", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err=%v", err)
	}
}

func TestMalformedQueryRejected(t *testing.T) {
	corpus := testCorpus(t)
	cl := startTestCluster(t, corpus)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.rpc.Call(MethodSearch, []byte{0x01}); err == nil {
		t.Fatal("malformed query accepted")
	}
}

func TestBuildIndexNoShards(t *testing.T) {
	if _, err := BuildIndex(nil, IndexConfig{}); err == nil {
		t.Fatal("no-shard index accepted")
	}
}
