package hdsearch

import (
	"math"
	"testing"

	"musuite/internal/ann"
	"musuite/internal/core"
	"musuite/internal/knn"
)

func startANNCluster(t *testing.T, kind IndexKind, cfg ann.Config) (*Cluster, *Client) {
	t.Helper()
	corpus := testCorpus(t)
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		Kind:    kind,
		ANN:     cfg,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:    core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, client
}

// TestANNKindsServeSearches runs the full three-tier pipeline over each
// leaf-resident ANN kind and checks end-to-end recall, mirroring the
// candidate-generator kinds' test.
func TestANNKindsServeSearches(t *testing.T) {
	corpus := testCorpus(t)
	for _, kind := range []IndexKind{IndexIVF, IndexIVFSQ, IndexIVFPQ, IndexHNSW} {
		t.Run(string(kind), func(t *testing.T) {
			cl, client := startANNCluster(t, kind, ann.Config{Seed: 11})
			if cl.ANNRouter() == nil {
				t.Fatal("no ANN router on an ANN-kind cluster")
			}
			queries := corpus.Queries(60, 17)
			hits := 0
			for _, q := range queries {
				got, err := client.Search(q, 1)
				if err != nil {
					t.Fatal(err)
				}
				truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
				if len(got) > 0 && got[0].PointID == truth {
					hits++
				}
			}
			recall := float64(hits) / float64(len(queries))
			if recall < 0.85 {
				t.Fatalf("recall@1 = %.3f", recall)
			}
			t.Logf("recall@1 = %.3f", recall)
		})
	}
}

// TestANNExhaustiveMatchesBruteForce: with the search breadth covering the
// whole corpus — every cluster probed for the ivf kinds (plus a
// corpus-covering re-rank for the compressed ones), a corpus-wide beam for
// hnsw — the distributed ANN path must reproduce brute-force results:
// distances match ground truth within float tolerance at every rank.
func TestANNExhaustiveMatchesBruteForce(t *testing.T) {
	corpus := testCorpus(t)
	for _, kind := range []IndexKind{IndexIVF, IndexIVFSQ, IndexIVFPQ, IndexHNSW} {
		t.Run(string(kind), func(t *testing.T) {
			cl, client := startANNCluster(t, kind, ann.Config{NList: 12, Seed: 13})
			if kind == IndexHNSW {
				// An efSearch covering any shard makes the beam exhaustive
				// over the shard's (connected) base layer.
				cl.ANNRouter().SetEFSearch(len(corpus.Vectors))
			} else {
				cl.ANNRouter().SetNProbe(12)
			}
			cl.ANNRouter().SetRerank(len(corpus.Vectors))
			for qi, q := range corpus.Queries(25, 19) {
				got, err := client.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				want := knn.BruteForce(q, corpus.Vectors, 5)
				if len(got) != len(want) {
					t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
				}
				for r := range want {
					if got[r].PointID == want[r].ID {
						continue
					}
					// A different ID is only acceptable on a float near-tie
					// between the two scoring kernels.
					if math.Abs(float64(got[r].Distance-want[r].Distance)) > 1e-3 {
						t.Fatalf("query %d rank %d: got point %d dist %v, want point %d dist %v",
							qi, r, got[r].PointID, got[r].Distance, want[r].ID, want[r].Distance)
					}
				}
			}
		})
	}
}

// TestANNRouterRetune: nprobe/rerank must be retunable on a live cluster —
// the indexcmp sweep depends on it — and a wider probe must not lower
// recall.
func TestANNRouterRetune(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startANNCluster(t, IndexIVFPQ, ann.Config{NList: 16, Seed: 23})
	queries := corpus.Queries(40, 29)
	recallAt := func(nprobe int) float64 {
		cl.ANNRouter().SetNProbe(nprobe)
		hits := 0
		for _, q := range queries {
			got, err := client.Search(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
			if len(got) > 0 && got[0].PointID == truth {
				hits++
			}
		}
		return float64(hits) / float64(len(queries))
	}
	narrow := recallAt(1)
	wide := recallAt(16)
	if wide < narrow {
		t.Fatalf("recall fell as probes widened: %.3f @1 vs %.3f @16", narrow, wide)
	}
	if wide < 0.85 {
		t.Fatalf("recall@1 = %.3f with all clusters probed", wide)
	}
	t.Logf("recall %.3f @nprobe=1 → %.3f @nprobe=16", narrow, wide)
}

// TestHNSWRouterRetuneEFSearch: the hnsw beam width must be retunable on a
// live cluster through the EFSearch alias of the shared knob slot, and a
// wider beam must not lower recall.
func TestHNSWRouterRetuneEFSearch(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startANNCluster(t, IndexHNSW, ann.Config{Seed: 27})
	queries := corpus.Queries(40, 31)
	recallAt := func(ef int) float64 {
		cl.ANNRouter().SetEFSearch(ef)
		hits := 0
		for _, q := range queries {
			got, err := client.Search(q, 1)
			if err != nil {
				t.Fatal(err)
			}
			truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
			if len(got) > 0 && got[0].PointID == truth {
				hits++
			}
		}
		return float64(hits) / float64(len(queries))
	}
	narrow := recallAt(1)
	wide := recallAt(128)
	if wide < narrow {
		t.Fatalf("recall fell as the beam widened: %.3f @1 vs %.3f @128", narrow, wide)
	}
	if wide < 0.85 {
		t.Fatalf("recall@1 = %.3f at efSearch=128", wide)
	}
	t.Logf("recall %.3f @efSearch=1 → %.3f @efSearch=128", narrow, wide)
}
