package hdsearch

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
)

// TestParallelScanUnderTopologyChurn drives searches through leaves whose
// kernel engine is forced to multi-worker parallel scans while leaf groups
// are added and drained underneath the fan-out.  Run under -race this checks
// the scan scratch pooling, the global helper pool, and the topology
// snapshot publishes against each other; functionally every search must
// still return sorted, in-range results.
func TestParallelScanUnderTopologyChurn(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 1200, Dim: 32, Clusters: 10, Noise: 0.12, Seed: 42,
	})
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf: core.LeafOptions{
			Workers: 2,
			Kernel:  kernel.New(kernel.Config{Parallelism: 8}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)

	// A spare leaf (serving shard 0's data) to churn in and out.
	shards := ShardCorpus(corpus, 4)
	spare := NewLeaf(shards[0], &core.LeafOptions{
		Workers: 2,
		Kernel:  kernel.New(kernel.Config{Parallelism: 8}),
	})
	spareAddr, err := spare.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(spare.Close)

	stop := make(chan struct{})
	var churnErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			shard, err := cl.MidTier().AddLeafGroup([]string{spareAddr})
			if err != nil {
				churnErr = fmt.Errorf("add: %w", err)
				return
			}
			if err := cl.MidTier().DrainLeafGroup(shard, 10*time.Second); err != nil {
				churnErr = fmt.Errorf("drain: %w", err)
				return
			}
		}
	}()

	queries := corpus.Queries(16, 7)
	const k = 5
	var clients sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func(g int) {
			defer clients.Done()
			client, err := DialClient(cl.Addr, nil)
			if err != nil {
				errs <- err
				return
			}
			defer client.Close()
			for i := 0; i < 50; i++ {
				q := queries[(g+i)%len(queries)]
				got, err := client.Search(q, k)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
				for j := range got {
					if int(got[j].PointID) >= len(corpus.Vectors) {
						errs <- fmt.Errorf("goroutine %d: bogus point %d", g, got[j].PointID)
						return
					}
					if j > 0 && got[j].Distance < got[j-1].Distance {
						errs <- fmt.Errorf("goroutine %d: unsorted results", g)
						return
					}
				}
			}
		}(g)
	}
	clients.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if churnErr != nil {
		t.Fatal(churnErr)
	}
}
