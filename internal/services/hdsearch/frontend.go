package hdsearch

import (
	"fmt"
	"sync/atomic"
	"time"

	"musuite/internal/memcache"
	"musuite/internal/vec"
	"musuite/internal/wire"
)

// FrontEnd is HDSearch's presentation microservice (paper §III-A, Fig. 2).
// The paper does not study this tier, but a complete deployment needs it:
// it accepts a raw query image, extracts a feature vector (caching the
// image→vector mapping, as the paper caches in Redis), sends the vector to
// the mid-tier, and maps the returned point IDs to response URLs through a
// second cache.
//
// The paper's feature extractor is Inception V3; no neural network belongs
// in this reproduction, so extraction is a deterministic random projection
// of the image bytes into feature space — it preserves the properties the
// tier exercises (a compute step whose result is worth caching, keyed by
// image content).
type FrontEnd struct {
	client  *Client
	dim     int
	planes  []vec.Vector // projection rows, seeded
	vecs    *memcache.Store
	urls    *memcache.Store
	hits    atomic.Uint64
	misses  atomic.Uint64
	urlBase string
}

// FrontEndConfig parameterizes the tier.
type FrontEndConfig struct {
	// MidTierAddr is the HDSearch mid-tier to query.
	MidTierAddr string
	// Dim must match the deployment's feature dimensionality.
	Dim int
	// Seed fixes the synthetic extractor's projection.
	Seed int64
	// CacheBytes bounds the feature-vector cache (0 = unlimited).
	CacheBytes int64
	// URLBase prefixes response URLs (default "img://").
	URLBase string
}

// NewFrontEnd connects a front-end tier to a mid-tier.
func NewFrontEnd(cfg FrontEndConfig) (*FrontEnd, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("hdsearch frontend: dimension %d", cfg.Dim)
	}
	client, err := DialClient(cfg.MidTierAddr, nil)
	if err != nil {
		return nil, err
	}
	if cfg.URLBase == "" {
		cfg.URLBase = "img://"
	}
	fe := &FrontEnd{
		client:  client,
		dim:     cfg.Dim,
		vecs:    memcache.New(memcache.Config{MaxBytes: cfg.CacheBytes}),
		urls:    memcache.New(memcache.Config{}),
		urlBase: cfg.URLBase,
	}
	// A fixed bank of projection rows generated from the seed via
	// SplitMix-style hashing keeps construction O(dim) per row without
	// math/rand state.
	fe.planes = make([]vec.Vector, cfg.Dim)
	state := uint64(cfg.Seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	nextF := func() float32 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		return float32(int32(uint32(z))) / float32(1<<31) // in (-1, 1)
	}
	for d := 0; d < cfg.Dim; d++ {
		row := make(vec.Vector, 64)
		for i := range row {
			row[i] = nextF()
		}
		fe.planes[d] = row
	}
	return fe, nil
}

// Close releases the mid-tier connection.
func (fe *FrontEnd) Close() error { return fe.client.Close() }

// CacheStats reports feature-cache hits and misses.
func (fe *FrontEnd) CacheStats() (hits, misses uint64) {
	return fe.hits.Load(), fe.misses.Load()
}

// ExtractFeatures computes (or recalls from cache) the feature vector of a
// raw image.  The image bytes are folded into 64 buckets and projected
// through the seeded plane bank — a stand-in for the Inception V3 forward
// pass.
func (fe *FrontEnd) ExtractFeatures(image []byte) vec.Vector {
	key := imageKey(image)
	if cached, ok := fe.vecs.Get(key); ok {
		if v, err := decodeVector(cached, fe.dim); err == nil {
			fe.hits.Add(1)
			return v
		}
	}
	fe.misses.Add(1)

	// Fold the image into a 64-bucket content summary.
	var summary [64]float32
	for i, b := range image {
		summary[i%64] += float32(b) / 255
	}
	// Project into feature space.
	out := make(vec.Vector, fe.dim)
	for d := 0; d < fe.dim; d++ {
		out[d] = vec.Dot(fe.planes[d], summary[:])
	}
	vec.Normalize(out)
	fe.vecs.Set(key, encodeVector(out), 10*time.Minute)
	return out
}

// RegisterURL records the URL backing a corpus point so responses can be
// presented (the paper's second Redis instance).
func (fe *FrontEnd) RegisterURL(pointID uint32, url string) {
	fe.urls.Set(pointKey(pointID), []byte(url), 0)
}

// Result is one presented search response: the matched point and its URL.
type Result struct {
	PointID  uint32
	Distance float32
	URL      string
}

// Search runs the full front-end pipeline on a raw query image: extract (or
// recall) features, query the mid-tier, and resolve response URLs.
func (fe *FrontEnd) Search(image []byte, k int) ([]Result, error) {
	return fe.SearchVector(fe.ExtractFeatures(image), k)
}

// SearchVector bypasses extraction for callers that already hold a feature
// vector (the path the paper's study measures).
func (fe *FrontEnd) SearchVector(query vec.Vector, k int) ([]Result, error) {
	neighbors, err := fe.client.Search(query, k)
	if err != nil {
		return nil, err
	}
	return fe.Resolve(neighbors), nil
}

// Resolve maps mid-tier neighbors to presented results, consulting the URL
// cache and synthesizing a placeholder for unregistered points.
func (fe *FrontEnd) Resolve(neighbors []Neighbor) []Result {
	out := make([]Result, len(neighbors))
	for i, n := range neighbors {
		r := Result{PointID: n.PointID, Distance: n.Distance}
		if url, ok := fe.urls.Get(pointKey(n.PointID)); ok {
			r.URL = string(url)
		} else {
			r.URL = fmt.Sprintf("%spoint/%d", fe.urlBase, n.PointID)
		}
		out[i] = r
	}
	return out
}

// imageKey derives the cache key from image content (FNV-1a, content
// addressed like the paper's image→vector map).
func imageKey(image []byte) string {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := offset
	for _, b := range image {
		h ^= uint64(b)
		h *= prime
	}
	return fmt.Sprintf("img:%016x:%d", h, len(image))
}

func pointKey(id uint32) string { return fmt.Sprintf("url:%d", id) }

func encodeVector(v vec.Vector) []byte {
	e := wire.NewEncoder(4 + 4*len(v))
	e.Float32s(v)
	return e.Bytes()
}

func decodeVector(b []byte, wantDim int) (vec.Vector, error) {
	d := wire.NewDecoder(b)
	v := vec.Vector(d.Float32s())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if len(v) != wantDim {
		return nil, fmt.Errorf("hdsearch frontend: cached vector dim %d, want %d", len(v), wantDim)
	}
	return v, nil
}
