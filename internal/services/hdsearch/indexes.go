package hdsearch

import (
	"errors"
	"fmt"
	"sync/atomic"

	"musuite/internal/ann"
	"musuite/internal/kdtree"
	"musuite/internal/kmeans"
	"musuite/internal/vec"
)

// CandidateIndex is the mid-tier's pluggable candidate source: given a query
// vector, the point IDs each leaf shard should score.  The paper's HDSearch
// uses LSH; it names kd-trees and k-means clusters as the alternative
// indexing structures, and all three are available here for the index
// ablation.  *lsh.Index satisfies this interface directly.
type CandidateIndex interface {
	LookupByShard(q vec.Vector) map[int32][]uint32
	// Dim reports the indexed vectors' dimensionality (0 when unknown), so
	// the mid-tier can reject mis-dimensioned queries before they reach
	// kernels that assume rectangular input.
	Dim() int
}

// IndexKind names a candidate-index implementation.
type IndexKind string

// The available index kinds.  The first three are mid-tier candidate
// generators (the index holds {shard, point} refs and the query ships
// candidate IDs to the leaves); the ivf* and hnsw kinds are leaf-resident —
// each leaf builds its own sub-linear index over its shard and the mid-tier
// merely broadcasts the query with the breadth/rerank knobs.
const (
	IndexLSH    IndexKind = "lsh"
	IndexKDTree IndexKind = "kdtree"
	IndexKMeans IndexKind = "kmeans"
	// IndexIVF probes IVF inverted lists and scores candidates on the
	// full float32 store — exact within the probed clusters.
	IndexIVF IndexKind = "ivf"
	// IndexIVFSQ scores candidates on the int8 scalar-quantized store
	// (~4× less memory), then re-ranks exactly.
	IndexIVFSQ IndexKind = "ivfsq"
	// IndexIVFPQ scores candidates on the product-quantized store with
	// ADC lookup tables (~16× less memory at dim 64), then re-ranks
	// exactly.
	IndexIVFPQ IndexKind = "ivfpq"
	// IndexHNSW traverses a hierarchical navigable-small-world graph with
	// exact float32 scoring throughout; the wire's nprobe knob slot
	// carries efSearch, the layer-0 beam width.
	IndexHNSW IndexKind = "hnsw"
)

// IndexKinds lists every kind, in comparison order.  Sweeps and gates
// (indexcmp, the recall floor) derive their coverage from this list, so a
// new kind registered here is automatically swept and gated.
var IndexKinds = []IndexKind{IndexLSH, IndexKDTree, IndexKMeans, IndexIVF, IndexIVFSQ, IndexIVFPQ, IndexHNSW}

// ANNQuant maps a leaf-resident IVF index kind to its candidate-store
// quantization; ok is false for the mid-tier candidate-generator kinds and
// for hnsw (whose scoring is exact-only — no compressed store, no rerank
// stage).
func ANNQuant(kind IndexKind) (q ann.Quant, ok bool) {
	switch kind {
	case IndexIVF:
		return ann.QuantNone, true
	case IndexIVFSQ:
		return ann.QuantInt8, true
	case IndexIVFPQ:
		return ann.QuantPQ, true
	}
	return 0, false
}

// IsLeafANN reports whether the kind is leaf-resident: the leaves build the
// index and the mid-tier broadcasts MethodLeafANN instead of generating
// candidates.
func IsLeafANN(kind IndexKind) bool {
	_, ivf := ANNQuant(kind)
	return ivf || kind == IndexHNSW
}

// LeafANNConfig projects a leaf-resident kind onto an ann build config:
// the family selector and quantization are set from the kind, everything
// else passes through.  ok is false for the candidate-generator kinds.
func LeafANNConfig(kind IndexKind, cfg ann.Config) (ann.Config, bool) {
	if kind == IndexHNSW {
		cfg.Kind = ann.KindHNSW
		return cfg, true
	}
	if quant, ok := ANNQuant(kind); ok {
		cfg.Kind = ann.KindIVF
		cfg.Quant = quant
		return cfg, true
	}
	return cfg, false
}

// LeafANN is the mid-tier's routing stub for the leaf-resident ANN kinds.
// It satisfies CandidateIndex so the same NewMidTier constructor serves
// every kind, but generates no candidates itself: the mid-tier recognizes
// it and broadcasts MethodLeafANN instead.  The knobs are atomically
// mutable so experiment sweeps can retune a live cluster without rebuilding
// the leaf indexes.  The first knob slot is the family's search-breadth
// control — nprobe for the IVF kinds, efSearch for hnsw — carried in the
// same wire position; the EFSearch accessors alias it under the graph
// family's name.
type LeafANN struct {
	dim    int
	nprobe atomic.Int32
	rerank atomic.Int32
}

// NewLeafANN builds the routing stub (knob zeros defer to each leaf
// index's build defaults).
func NewLeafANN(dim, nprobe, rerank int) *LeafANN {
	x := &LeafANN{dim: dim}
	x.nprobe.Store(int32(nprobe))
	x.rerank.Store(int32(rerank))
	return x
}

// LookupByShard implements CandidateIndex; the ANN path never consults it.
func (x *LeafANN) LookupByShard(vec.Vector) map[int32][]uint32 { return nil }

// Dim implements CandidateIndex.
func (x *LeafANN) Dim() int { return x.dim }

// NProbe reports the current probe width.
func (x *LeafANN) NProbe() int { return int(x.nprobe.Load()) }

// SetNProbe retunes the probe width for subsequent requests.
func (x *LeafANN) SetNProbe(n int) { x.nprobe.Store(int32(n)) }

// Rerank reports the current exact re-rank depth.
func (x *LeafANN) Rerank() int { return int(x.rerank.Load()) }

// SetRerank retunes the re-rank depth for subsequent requests.
func (x *LeafANN) SetRerank(n int) { x.rerank.Store(int32(n)) }

// EFSearch reports the current hnsw beam width (the same knob slot NProbe
// reads — the families share one wire position).
func (x *LeafANN) EFSearch() int { return int(x.nprobe.Load()) }

// SetEFSearch retunes the hnsw beam width for subsequent requests.
func (x *LeafANN) SetEFSearch(n int) { x.nprobe.Store(int32(n)) }

// KDTreeIndex adapts a kd-tree to the CandidateIndex interface.
type KDTreeIndex struct {
	Tree *kdtree.Tree
	// Candidates bounds the per-query candidate count (default 64);
	// Checks bounds scored points during traversal (default 4×Candidates).
	Candidates, Checks int
}

// LookupByShard implements CandidateIndex.
func (x *KDTreeIndex) LookupByShard(q vec.Vector) map[int32][]uint32 {
	cand := x.Candidates
	if cand <= 0 {
		cand = 64
	}
	checks := x.Checks
	if checks <= 0 {
		checks = 4 * cand
	}
	return x.Tree.LookupByShard(q, cand, checks)
}

// Dim implements CandidateIndex.
func (x *KDTreeIndex) Dim() int { return x.Tree.Dim() }

// BuildKDTreeIndex constructs a kd-tree candidate index over the shards.
func BuildKDTreeIndex(shards []LeafData, candidates int) (*KDTreeIndex, error) {
	points, refs, err := flattenShards(shards)
	if err != nil {
		return nil, err
	}
	krefs := make([]kdtree.Ref, len(refs))
	for i, r := range refs {
		krefs[i] = kdtree.Ref(r)
	}
	tree, err := kdtree.Build(points, krefs, kdtree.Config{})
	if err != nil {
		return nil, err
	}
	return &KDTreeIndex{Tree: tree, Candidates: candidates}, nil
}

// KMeansIndex adapts a k-means cluster index to the CandidateIndex
// interface.
type KMeansIndex struct {
	Index *kmeans.Index
	// Probes is how many nearest clusters contribute candidates
	// (default 3).
	Probes int
}

// LookupByShard implements CandidateIndex.
func (x *KMeansIndex) LookupByShard(q vec.Vector) map[int32][]uint32 {
	probes := x.Probes
	if probes <= 0 {
		probes = 3
	}
	return x.Index.LookupByShard(q, probes)
}

// Dim implements CandidateIndex.
func (x *KMeansIndex) Dim() int { return x.Index.Dim() }

// BuildKMeansIndex constructs a k-means candidate index over the shards.
func BuildKMeansIndex(shards []LeafData, probes int, seed int64) (*KMeansIndex, error) {
	points, refs, err := flattenShards(shards)
	if err != nil {
		return nil, err
	}
	krefs := make([]kmeans.Ref, len(refs))
	for i, r := range refs {
		krefs[i] = kmeans.Ref(r)
	}
	idx, err := kmeans.Build(points, krefs, kmeans.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &KMeansIndex{Index: idx, Probes: probes}, nil
}

// indexRef is the shared {shard, local point} reference shape.
type indexRef struct {
	Shard   int32
	PointID uint32
}

// flattenShards linearizes sharded corpora for whole-corpus index builders.
func flattenShards(shards []LeafData) ([]vec.Vector, []indexRef, error) {
	if len(shards) == 0 {
		return nil, nil, errors.New("hdsearch: no shards")
	}
	var points []vec.Vector
	var refs []indexRef
	for s, shard := range shards {
		st := shard.Store
		for local := 0; local < st.Len(); local++ {
			points = append(points, vec.Vector(st.Row(local)))
			refs = append(refs, indexRef{Shard: int32(s), PointID: uint32(local)})
		}
	}
	return points, refs, nil
}

// BuildCandidateIndex constructs the named index kind with its default
// tuning (LSH at the paper-tuned parameters, kd-tree with a 64-candidate
// budget, k-means with 3 probes).
func BuildCandidateIndex(kind IndexKind, shards []LeafData, seed int64) (CandidateIndex, error) {
	switch kind {
	case IndexLSH, "":
		return BuildIndex(shards, IndexConfig{Seed: seed})
	case IndexKDTree:
		return BuildKDTreeIndex(shards, 64)
	case IndexKMeans:
		return BuildKMeansIndex(shards, 3, seed)
	}
	return nil, fmt.Errorf("hdsearch: unknown index kind %q", kind)
}
