package hdsearch

import (
	"errors"
	"fmt"

	"musuite/internal/kdtree"
	"musuite/internal/kmeans"
	"musuite/internal/vec"
)

// CandidateIndex is the mid-tier's pluggable candidate source: given a query
// vector, the point IDs each leaf shard should score.  The paper's HDSearch
// uses LSH; it names kd-trees and k-means clusters as the alternative
// indexing structures, and all three are available here for the index
// ablation.  *lsh.Index satisfies this interface directly.
type CandidateIndex interface {
	LookupByShard(q vec.Vector) map[int32][]uint32
	// Dim reports the indexed vectors' dimensionality (0 when unknown), so
	// the mid-tier can reject mis-dimensioned queries before they reach
	// kernels that assume rectangular input.
	Dim() int
}

// IndexKind names a candidate-index implementation.
type IndexKind string

// The available index kinds.
const (
	IndexLSH    IndexKind = "lsh"
	IndexKDTree IndexKind = "kdtree"
	IndexKMeans IndexKind = "kmeans"
)

// KDTreeIndex adapts a kd-tree to the CandidateIndex interface.
type KDTreeIndex struct {
	Tree *kdtree.Tree
	// Candidates bounds the per-query candidate count (default 64);
	// Checks bounds scored points during traversal (default 4×Candidates).
	Candidates, Checks int
}

// LookupByShard implements CandidateIndex.
func (x *KDTreeIndex) LookupByShard(q vec.Vector) map[int32][]uint32 {
	cand := x.Candidates
	if cand <= 0 {
		cand = 64
	}
	checks := x.Checks
	if checks <= 0 {
		checks = 4 * cand
	}
	return x.Tree.LookupByShard(q, cand, checks)
}

// Dim implements CandidateIndex.
func (x *KDTreeIndex) Dim() int { return x.Tree.Dim() }

// BuildKDTreeIndex constructs a kd-tree candidate index over the shards.
func BuildKDTreeIndex(shards []LeafData, candidates int) (*KDTreeIndex, error) {
	points, refs, err := flattenShards(shards)
	if err != nil {
		return nil, err
	}
	krefs := make([]kdtree.Ref, len(refs))
	for i, r := range refs {
		krefs[i] = kdtree.Ref(r)
	}
	tree, err := kdtree.Build(points, krefs, kdtree.Config{})
	if err != nil {
		return nil, err
	}
	return &KDTreeIndex{Tree: tree, Candidates: candidates}, nil
}

// KMeansIndex adapts a k-means cluster index to the CandidateIndex
// interface.
type KMeansIndex struct {
	Index *kmeans.Index
	// Probes is how many nearest clusters contribute candidates
	// (default 3).
	Probes int
}

// LookupByShard implements CandidateIndex.
func (x *KMeansIndex) LookupByShard(q vec.Vector) map[int32][]uint32 {
	probes := x.Probes
	if probes <= 0 {
		probes = 3
	}
	return x.Index.LookupByShard(q, probes)
}

// Dim implements CandidateIndex.
func (x *KMeansIndex) Dim() int { return x.Index.Dim() }

// BuildKMeansIndex constructs a k-means candidate index over the shards.
func BuildKMeansIndex(shards []LeafData, probes int, seed int64) (*KMeansIndex, error) {
	points, refs, err := flattenShards(shards)
	if err != nil {
		return nil, err
	}
	krefs := make([]kmeans.Ref, len(refs))
	for i, r := range refs {
		krefs[i] = kmeans.Ref(r)
	}
	idx, err := kmeans.Build(points, krefs, kmeans.Config{Seed: seed})
	if err != nil {
		return nil, err
	}
	return &KMeansIndex{Index: idx, Probes: probes}, nil
}

// indexRef is the shared {shard, local point} reference shape.
type indexRef struct {
	Shard   int32
	PointID uint32
}

// flattenShards linearizes sharded corpora for whole-corpus index builders.
func flattenShards(shards []LeafData) ([]vec.Vector, []indexRef, error) {
	if len(shards) == 0 {
		return nil, nil, errors.New("hdsearch: no shards")
	}
	var points []vec.Vector
	var refs []indexRef
	for s, shard := range shards {
		st := shard.Store
		for local := 0; local < st.Len(); local++ {
			points = append(points, vec.Vector(st.Row(local)))
			refs = append(refs, indexRef{Shard: int32(s), PointID: uint32(local)})
		}
	}
	return points, refs, nil
}

// BuildCandidateIndex constructs the named index kind with its default
// tuning (LSH at the paper-tuned parameters, kd-tree with a 64-candidate
// budget, k-means with 3 probes).
func BuildCandidateIndex(kind IndexKind, shards []LeafData, seed int64) (CandidateIndex, error) {
	switch kind {
	case IndexLSH, "":
		return BuildIndex(shards, IndexConfig{Seed: seed})
	case IndexKDTree:
		return BuildKDTreeIndex(shards, 64)
	case IndexKMeans:
		return BuildKMeansIndex(shards, 3, seed)
	}
	return nil, fmt.Errorf("hdsearch: unknown index kind %q", kind)
}
