package router

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"musuite/internal/core"
	"musuite/internal/dataset"
)

func startTestCluster(t *testing.T, leaves, replicas int) (*Cluster, *Client) {
	t.Helper()
	cl, err := StartCluster(ClusterConfig{
		Leaves:   leaves,
		Replicas: replicas,
		MidTier:  core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:     core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, client
}

func TestCodecs(t *testing.T) {
	k, err := DecodeKey(EncodeKey("user:1"))
	if err != nil || k != "user:1" {
		t.Fatalf("key codec: %q %v", k, err)
	}
	key, val, err := DecodeKeyValue(EncodeKeyValue("k", []byte("v")))
	if err != nil || key != "k" || string(val) != "v" {
		t.Fatalf("kv codec: %q %q %v", key, val, err)
	}
	found, v, err := DecodeGetResponse(EncodeGetResponse(true, []byte("x")))
	if err != nil || !found || string(v) != "x" {
		t.Fatalf("get codec: %v %q %v", found, v, err)
	}
	f, err := DecodeFound(EncodeFound(true))
	if err != nil || !f {
		t.Fatalf("found codec: %v %v", f, err)
	}
}

func TestReplicasPlacement(t *testing.T) {
	// Distinctness and determinism.
	for _, r := range []int{1, 2, 3} {
		shards := Replicas("some-key", 8, r)
		if len(shards) != r {
			t.Fatalf("r=%d got %d shards", r, len(shards))
		}
		seen := map[int]bool{}
		for _, s := range shards {
			if s < 0 || s >= 8 || seen[s] {
				t.Fatalf("bad placement %v", shards)
			}
			seen[s] = true
		}
	}
	// Replica count clamps to the leaf count.
	if got := Replicas("k", 2, 5); len(got) != 2 {
		t.Fatalf("clamp failed: %v", got)
	}
	// Same key, same placement.
	a := Replicas("stable", 16, 3)
	b := Replicas("stable", 16, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("placement not deterministic")
		}
	}
}

func TestReplicasUniformSpread(t *testing.T) {
	// SpookyHash routing must spread primaries near-uniformly (the
	// paper's motivation for choosing it).
	const leaves, keys = 16, 8000
	counts := make([]int, leaves)
	for i := 0; i < keys; i++ {
		counts[Replicas(fmt.Sprintf("key-%d", i), leaves, 1)[0]]++
	}
	want := float64(keys) / leaves
	for s, c := range counts {
		dev := (float64(c) - want) / want
		if dev < -0.15 || dev > 0.15 {
			t.Errorf("leaf %d primary share deviates %.1f%%", s, dev*100)
		}
	}
}

func TestGetSetDeleteEndToEnd(t *testing.T) {
	_, client := startTestCluster(t, 4, 2)

	if _, found, err := client.Get("absent"); err != nil || found {
		t.Fatalf("get absent: %v %v", found, err)
	}
	if err := client.Set("k1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, found, err := client.Get("k1")
	if err != nil || !found || string(v) != "v1" {
		t.Fatalf("get after set: %q %v %v", v, found, err)
	}
	// Overwrite.
	if err := client.Set("k1", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := client.Get("k1"); string(v) != "v2" {
		t.Fatalf("overwrite lost: %q", v)
	}
	// Delete.
	found, err = client.Delete("k1")
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, found, _ := client.Get("k1"); found {
		t.Fatal("get after delete hit")
	}
	if found, _ := client.Delete("k1"); found {
		t.Fatal("double delete reported found")
	}
}

// TestReplicationInvariant: every set lands on exactly R distinct leaves,
// the ones SpookyHash names.
func TestReplicationInvariant(t *testing.T) {
	cl, client := startTestCluster(t, 5, 3)
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("rep-%d", i)
		if err := client.Set(key, []byte("x")); err != nil {
			t.Fatal(err)
		}
		holding := cl.LeafHolding(key)
		if len(holding) != 3 {
			t.Fatalf("key %q on %v (want 3 leaves)", key, holding)
		}
		want := Replicas(key, 5, 3)
		wantSet := map[int]bool{}
		for _, s := range want {
			wantSet[s] = true
		}
		for _, h := range holding {
			if !wantSet[h] {
				t.Fatalf("key %q on unexpected leaf %d (want %v)", key, h, want)
			}
		}
	}
}

// TestGetsAlwaysHitAReplica: every get for a set key succeeds regardless of
// which replica the rotation picks.
func TestGetsAlwaysHitAReplica(t *testing.T) {
	_, client := startTestCluster(t, 5, 3)
	if err := client.Set("hot", []byte("data")); err != nil {
		t.Fatal(err)
	}
	// More gets than replicas so rotation cycles through all of them.
	for i := 0; i < 12; i++ {
		v, found, err := client.Get("hot")
		if err != nil || !found || string(v) != "data" {
			t.Fatalf("get %d: %q %v %v", i, v, found, err)
		}
	}
}

func TestFaultToleranceAfterLeafDeath(t *testing.T) {
	cl, client := startTestCluster(t, 4, 3)
	if err := client.Set("survivor", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	replicas := Replicas("survivor", 4, 3)
	// Kill one replica; the other two still hold the value, so at least
	// some gets must succeed (rotation hits live replicas 2 of 3 times).
	cl.KillLeaf(replicas[0])
	successes := 0
	for i := 0; i < 9; i++ {
		if v, found, err := client.Get("survivor"); err == nil && found && string(v) == "alive" {
			successes++
		}
	}
	if successes == 0 {
		t.Fatal("no get succeeded after single-replica failure")
	}
}

func TestYCSBWorkloadA(t *testing.T) {
	_, client := startTestCluster(t, 4, 2)
	trace := dataset.NewKVTrace(dataset.KVTraceConfig{Keys: 200, ValueSize: 32, Seed: 9})
	// Warm every key so gets can hit.
	for _, op := range trace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			t.Fatal(err)
		}
	}
	hits, gets := 0, 0
	for _, op := range trace.Ops(500) {
		switch op.Kind {
		case dataset.KVSet:
			if err := client.Set(op.Key, op.Value); err != nil {
				t.Fatal(err)
			}
		case dataset.KVGet:
			gets++
			if _, found, err := client.Get(op.Key); err != nil {
				t.Fatal(err)
			} else if found {
				hits++
			}
		}
	}
	if gets == 0 {
		t.Fatal("trace produced no gets")
	}
	if hits != gets {
		t.Fatalf("%d of %d gets missed after full warmup", gets-hits, gets)
	}
}

func TestLastWriteWinsPerKey(t *testing.T) {
	_, client := startTestCluster(t, 4, 2)
	// Sequential writes to one key: the final read must see the last one
	// on every replica (gets rotate).
	for i := 0; i < 10; i++ {
		if err := client.Set("seq", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		v, found, err := client.Get("seq")
		if err != nil || !found {
			t.Fatal(err)
		}
		if !bytes.Equal(v, []byte("v9")) {
			t.Fatalf("read %q want v9 (stale replica)", v)
		}
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	_, client := startTestCluster(t, 2, 1)
	if _, err := client.rpc.Call("router.flushall", nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err=%v", err)
	}
}

func TestMalformedPayloadsRejected(t *testing.T) {
	_, client := startTestCluster(t, 2, 1)
	if _, err := client.rpc.Call(MethodSet, []byte{0xFF}); err == nil {
		t.Fatal("malformed set accepted")
	}
	if _, err := client.rpc.Call(MethodGet, []byte{0xFF}); err == nil {
		t.Fatal("malformed get accepted")
	}
}

// Property: routing get-after-set through the full stack preserves values
// for arbitrary keys and payloads.
func TestQuickEndToEndGetAfterSet(t *testing.T) {
	_, client := startTestCluster(t, 4, 2)
	f := func(key string, value []byte) bool {
		if key == "" {
			key = "empty"
		}
		if len(value) > 4096 {
			value = value[:4096]
		}
		if err := client.Set(key, value); err != nil {
			return false
		}
		got, found, err := client.Get(key)
		return err == nil && found && bytes.Equal(got, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
