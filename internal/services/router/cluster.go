package router

import (
	"time"

	"musuite/internal/core"
	"musuite/internal/memcache"
)

// ClusterConfig assembles an in-process Router deployment: N memcached-style
// leaves fronted by one replicating mid-tier (paper setup: 16-way sharded
// leaves with three replicas).
type ClusterConfig struct {
	// Leaves is the leaf count (default 4).
	Leaves int
	// Replicas is the replication pool size (default 2; paper uses 3 on
	// its 16-leaf testbed).
	Replicas int
	// StoreBytes bounds each leaf store (0 = unlimited).
	StoreBytes int64
	// PrefixRules optionally pins key namespaces to leaf pools
	// (McRouter-style prefix routing).
	PrefixRules []PrefixRule
	// SweepInterval, when positive, runs a background expiry sweeper on
	// every leaf store (memcached's LRU-crawler analog).
	SweepInterval time.Duration
	// MidTier and Leaf configure the framework tiers.
	MidTier core.Options
	Leaf    core.LeafOptions
}

// Cluster is a running Router deployment.
type Cluster struct {
	// Addr is the mid-tier address front-ends dial.
	Addr string

	stores   []*memcache.Store
	leaves   []*core.Leaf
	sweepers []*memcache.Sweeper
	midTier  *core.MidTier
}

// StartCluster launches the deployment.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 4
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > cfg.Leaves {
		cfg.Replicas = cfg.Leaves
	}
	cl := &Cluster{}
	leafAddrs := make([]string, cfg.Leaves)
	for i := 0; i < cfg.Leaves; i++ {
		store := memcache.New(memcache.Config{MaxBytes: cfg.StoreBytes})
		leafOpts := cfg.Leaf
		leaf := NewLeaf(store, &leafOpts)
		addr, err := leaf.Start("127.0.0.1:0")
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.stores = append(cl.stores, store)
		cl.leaves = append(cl.leaves, leaf)
		if cfg.SweepInterval > 0 {
			cl.sweepers = append(cl.sweepers, store.StartSweeper(cfg.SweepInterval))
		}
		leafAddrs[i] = addr
	}

	mt := NewMidTier(MidTierConfig{Replicas: cfg.Replicas, PrefixRules: cfg.PrefixRules, Core: cfg.MidTier})
	if err := mt.ConnectLeaves(leafAddrs); err != nil {
		cl.Close()
		return nil, err
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		mt.Close()
		cl.Close()
		return nil, err
	}
	cl.midTier = mt
	cl.Addr = addr
	return cl, nil
}

// StoreStats returns per-leaf store statistics (replication and balance
// diagnostics).
func (c *Cluster) StoreStats() []memcache.Stats {
	out := make([]memcache.Stats, len(c.stores))
	for i, s := range c.stores {
		out[i] = s.Stats()
	}
	return out
}

// LeafHolding reports which leaf indexes currently hold key — used by tests
// to verify replication placement.
func (c *Cluster) LeafHolding(key string) []int {
	var out []int
	for i, s := range c.stores {
		if _, ok := s.Get(key); ok {
			out = append(out, i)
		}
	}
	return out
}

// KillLeaf closes one leaf server to exercise fault paths.
func (c *Cluster) KillLeaf(i int) {
	if i >= 0 && i < len(c.leaves) {
		c.leaves[i].Close()
	}
}

// NumLeaves reports the leaf count.
func (c *Cluster) NumLeaves() int { return len(c.leaves) }

// Close tears the deployment down.
func (c *Cluster) Close() {
	if c.midTier != nil {
		c.midTier.Close()
	}
	for _, l := range c.leaves {
		l.Close()
	}
	for _, sw := range c.sweepers {
		sw.Stop()
	}
}
