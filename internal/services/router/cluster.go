package router

import (
	"errors"
	"sync"
	"time"

	"musuite/internal/cluster"
	"musuite/internal/core"
	"musuite/internal/memcache"
)

// ClusterConfig assembles an in-process Router deployment: N memcached-style
// leaves fronted by one replicating mid-tier (paper setup: 16-way sharded
// leaves with three replicas).
type ClusterConfig struct {
	// Leaves is the leaf count (default 4).
	Leaves int
	// Replicas is the replication pool size (default 2; paper uses 3 on
	// its 16-leaf testbed).
	Replicas int
	// StoreBytes bounds each leaf store (0 = unlimited).
	StoreBytes int64
	// PrefixRules optionally pins key namespaces to leaf pools
	// (McRouter-style prefix routing).
	PrefixRules []PrefixRule
	// SweepInterval, when positive, runs a background expiry sweeper on
	// every leaf store (memcached's LRU-crawler analog).
	SweepInterval time.Duration
	// MidTier and Leaf configure the framework tiers.
	MidTier core.Options
	Leaf    core.LeafOptions
}

// leafNode bundles one leaf's process-local pieces — the store, the serving
// leaf, and its optional sweeper — so runtime add/drain can manage them as a
// unit alongside the mid-tier's topology entry.
type leafNode struct {
	addr    string
	store   *memcache.Store
	leaf    *core.Leaf
	sweeper *memcache.Sweeper
}

// stop shuts the node's server and sweeper down.
func (n *leafNode) stop() {
	n.leaf.Close()
	if n.sweeper != nil {
		n.sweeper.Stop()
	}
}

// Cluster is a running Router deployment.
type Cluster struct {
	// Addr is the mid-tier address front-ends dial.
	Addr string

	cfg     ClusterConfig
	midTier *core.MidTier

	mu    sync.Mutex
	nodes []*leafNode
}

// startLeaf spawns one leaf node (store + serving leaf + optional sweeper).
func startLeaf(cfg *ClusterConfig) (*leafNode, error) {
	store := memcache.New(memcache.Config{MaxBytes: cfg.StoreBytes})
	leafOpts := cfg.Leaf
	leaf := NewLeaf(store, &leafOpts)
	addr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n := &leafNode{addr: addr, store: store, leaf: leaf}
	if cfg.SweepInterval > 0 {
		n.sweeper = store.StartSweeper(cfg.SweepInterval)
	}
	return n, nil
}

// StartCluster launches the deployment.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Leaves <= 0 {
		cfg.Leaves = 4
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Replicas > cfg.Leaves {
		cfg.Replicas = cfg.Leaves
	}
	cl := &Cluster{cfg: cfg}
	leafAddrs := make([]string, cfg.Leaves)
	for i := 0; i < cfg.Leaves; i++ {
		n, err := startLeaf(&cfg)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.nodes = append(cl.nodes, n)
		leafAddrs[i] = n.addr
	}

	mt := NewMidTier(MidTierConfig{Replicas: cfg.Replicas, PrefixRules: cfg.PrefixRules, Core: cfg.MidTier})
	if err := mt.ConnectLeaves(leafAddrs); err != nil {
		cl.Close()
		return nil, err
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		mt.Close()
		cl.Close()
		return nil, err
	}
	cl.midTier = mt
	cl.Addr = addr
	return cl, nil
}

// MidTier exposes the deployment's mid-tier — resize drivers and the admin
// surface (cluster.ServeAdmin on MidTier().Topology()) hang off it.
func (c *Cluster) MidTier() *core.MidTier { return c.midTier }

// AddLeaf spins up a whole new leaf node — store, serving leaf — and places
// it in the mid-tier's topology at runtime, returning its shard index.
func (c *Cluster) AddLeaf() (int, error) {
	n, err := startLeaf(&c.cfg)
	if err != nil {
		return 0, err
	}
	shard, err := c.midTier.AddLeafGroup([]string{n.addr})
	if err != nil {
		n.stop()
		return 0, err
	}
	c.mu.Lock()
	c.nodes = append(c.nodes, n)
	c.mu.Unlock()
	return shard, nil
}

// DrainLeaf gracefully retires shard's leaf node: the mid-tier drains the
// group (in-flight traffic finishes, pools close), then the leaf server and
// its sweeper stop.  Shards above shift down one index, mirroring the
// topology.  The node also stops on a drain timeout — the topology closed
// the group anyway — but stays up when the drain was rejected outright.
func (c *Cluster) DrainLeaf(shard int, deadline time.Duration) error {
	err := c.midTier.DrainLeafGroup(shard, deadline)
	if err != nil && !errors.Is(err, cluster.ErrDrainTimeout) {
		return err
	}
	c.mu.Lock()
	if shard >= 0 && shard < len(c.nodes) {
		n := c.nodes[shard]
		c.nodes = append(c.nodes[:shard], c.nodes[shard+1:]...)
		c.mu.Unlock()
		n.stop()
	} else {
		c.mu.Unlock()
	}
	return err
}

// StoreStats returns per-leaf store statistics (replication and balance
// diagnostics).
func (c *Cluster) StoreStats() []memcache.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]memcache.Stats, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.store.Stats()
	}
	return out
}

// LeafHolding reports which leaf indexes currently hold key — used by tests
// to verify replication placement.
func (c *Cluster) LeafHolding(key string) []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i, n := range c.nodes {
		if _, ok := n.store.Get(key); ok {
			out = append(out, i)
		}
	}
	return out
}

// KillLeaf closes one leaf server to exercise fault paths.
func (c *Cluster) KillLeaf(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i >= 0 && i < len(c.nodes) {
		c.nodes[i].leaf.Close()
	}
}

// NumLeaves reports the leaf count.
func (c *Cluster) NumLeaves() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// Close tears the deployment down.
func (c *Cluster) Close() {
	if c.midTier != nil {
		c.midTier.Close()
	}
	c.mu.Lock()
	nodes := c.nodes
	c.nodes = nil
	c.mu.Unlock()
	for _, n := range nodes {
		n.stop()
	}
}
