// Package router implements μSuite's Router: a McRouter-like
// replication-based protocol router for scaling fault-tolerant
// memcached-style key-value stores (paper §III-B).
//
// The mid-tier parses client get/set requests, hashes the key with
// SpookyHash to pick a replica pool of leaves, forwards sets to every
// replica (spreading load and providing redundancy), and balances gets
// across replicas.  Leaves wrap an in-process memcached-semantics store
// behind the RPC interface.
package router

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"

	"musuite/internal/cluster"
	"musuite/internal/core"
	"musuite/internal/memcache"
	"musuite/internal/rpc"
	"musuite/internal/spooky"
	"musuite/internal/trace"
	"musuite/internal/wire"
)

// Method names on the wire.
const (
	// MethodGet reads a key (front-end→mid-tier and mid-tier→leaf).
	MethodGet = "router.get"
	// MethodSet writes a key (front-end→mid-tier and mid-tier→leaf).
	MethodSet = "router.set"
	// MethodDelete removes a key from all replicas.
	MethodDelete = "router.delete"
)

// hashSeed fixes the SpookyHash seed so every mid-tier instance routes
// identically (required when several mid-tiers front one leaf fleet).
const hashSeed uint64 = 0x5EED0F5EED

// --- wire codecs ---

// EncodeKey encodes a get/delete request.
func EncodeKey(key string) []byte {
	e := wire.NewEncoder(2 + len(key))
	e.String(key)
	return e.Bytes()
}

// DecodeKey decodes a get/delete request.
func DecodeKey(b []byte) (string, error) {
	d := wire.NewDecoder(b)
	key := d.String()
	return key, d.Err()
}

// EncodeKeyValue encodes a set request.
func EncodeKeyValue(key string, value []byte) []byte {
	e := wire.NewEncoder(4 + len(key) + len(value))
	e.String(key)
	e.BytesField(value)
	return e.Bytes()
}

// DecodeKeyValue decodes a set request.
func DecodeKeyValue(b []byte) (string, []byte, error) {
	d := wire.NewDecoder(b)
	key := d.String()
	value := d.BytesField()
	return key, value, d.Err()
}

// EncodeGetResponse encodes a get result.
func EncodeGetResponse(found bool, value []byte) []byte {
	e := wire.NewEncoder(3 + len(value))
	e.Bool(found)
	e.BytesField(value)
	return e.Bytes()
}

// DecodeGetResponse decodes a get result.
func DecodeGetResponse(b []byte) (found bool, value []byte, err error) {
	d := wire.NewDecoder(b)
	found = d.Bool()
	value = d.BytesField()
	return found, value, d.Err()
}

// EncodeFound encodes a delete result.
func EncodeFound(found bool) []byte {
	e := wire.NewEncoder(1)
	e.Bool(found)
	return e.Bytes()
}

// DecodeFound decodes a delete result.
func DecodeFound(b []byte) (bool, error) {
	d := wire.NewDecoder(b)
	f := d.Bool()
	return f, d.Err()
}

// --- leaf ---

// applyOp executes one store operation for a leaf request, streaming the
// reply into the pooled encoder.  Set values are read by view (the store
// copies them in) and get values stream out under the store's shard lock, so
// the only steady-state allocation is the key string the store's map index
// requires.
func applyOp(store *memcache.Store, method string, payload []byte, reply *wire.Encoder) error {
	d := wire.NewDecoder(payload)
	switch method {
	case MethodGet:
		key := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		found := store.View(key, func(value []byte) {
			reply.Bool(true)
			reply.BytesField(value)
		})
		if !found {
			reply.Bool(false)
			reply.BytesField(nil)
		}
		return nil
	case MethodSet:
		key := d.String()
		value := d.BytesView()
		if err := d.Err(); err != nil {
			return err
		}
		store.Set(key, value, 0)
		return nil
	case MethodDelete:
		key := d.String()
		if err := d.Err(); err != nil {
			return err
		}
		reply.Bool(store.Delete(key))
		return nil
	}
	return fmt.Errorf("router leaf: unknown method %q", method)
}

// NewLeaf wraps a memcache store as a Router leaf microservice, rewriting
// RPC requests into local store operations exactly as the paper's leaf
// rewrites gRPC queries against its memcached process.  The handler uses the
// encoded form; a batched carrier is the multiget/multiset form, its
// operations running in order as one worker task against the store, one
// dispatch hand-off for the lot and every member reply streamed into the
// carrier's pooled encoder.
func NewLeaf(store *memcache.Store, opts *core.LeafOptions) *core.Leaf {
	return core.NewLeafEncoded(func(method string, payload []byte, reply *wire.Encoder) error {
		return applyOp(store, method, payload, reply)
	}, opts)
}

// --- mid-tier ---

// PrefixRule routes keys with a given prefix to a restricted leaf subset —
// McRouter's "prefix routing" feature (different key namespaces pinned to
// different memcached pools).
type PrefixRule struct {
	// Prefix matches keys by longest-prefix; "" matches everything.
	Prefix string
	// Leaves is the pool of leaf indexes serving matching keys.
	Leaves []int
}

// MidTierConfig parameterizes routing.
type MidTierConfig struct {
	// Replicas is the replication-pool size per key (paper: 3).  Must
	// not exceed the (pool's) leaf count.
	Replicas int
	// PrefixRules optionally partitions the key space across leaf pools
	// by longest-prefix match; keys matching no rule use all leaves.
	PrefixRules []PrefixRule
	// Core configures the framework tier.
	Core core.Options
}

// Replicas returns the leaf shards storing key given numLeaves and the
// replication factor: the SpookyHash-selected primary and the next r−1
// shards, all distinct.  The primary comes from the classic modulo
// placement; ReplicasRouted generalizes over the strategy.
func Replicas(key string, numLeaves, r int) []int {
	return ReplicasRouted(key, cluster.Modulo{}, numLeaves, r)
}

// ReplicasRouted places key on r distinct shards of numLeaves total: the
// strategy-selected primary (SpookyHash of the key fed through the routing
// strategy) and the next r−1 shard indices.  Under cluster.Jump the primary
// placement survives a resize for all but ~1/(n+1) of keys, which keeps a
// resized Router deployment's hit rate largely intact.
func ReplicasRouted(key string, router cluster.Router, numLeaves, r int) []int {
	if numLeaves <= 0 {
		return nil
	}
	if r < 1 {
		r = 1
	}
	if r > numLeaves {
		r = numLeaves
	}
	h := spooky.Hash64([]byte(key), hashSeed)
	primary := router.Shard(h, numLeaves)
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = (primary + i) % numLeaves
	}
	return out
}

// ReplicasInPool places key on r distinct members of an explicit leaf pool:
// the SpookyHash-selected primary position and the next r−1 pool positions.
func ReplicasInPool(key string, pool []int, r int) []int {
	if len(pool) == 0 {
		return nil
	}
	if r < 1 {
		r = 1
	}
	if r > len(pool) {
		r = len(pool)
	}
	h := spooky.Hash64([]byte(key), hashSeed)
	primary := int(h % uint64(len(pool)))
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = pool[(primary+i)%len(pool)]
	}
	return out
}

// routeTable is the compiled prefix-routing state.
type routeTable struct {
	rules    []PrefixRule // longest prefix first
	replicas int
}

func newRouteTable(rules []PrefixRule, replicas int) *routeTable {
	ordered := make([]PrefixRule, len(rules))
	copy(ordered, rules)
	// Longest prefix first gives longest-prefix-match by first hit.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && len(ordered[j].Prefix) > len(ordered[j-1].Prefix); j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	return &routeTable{rules: ordered, replicas: replicas}
}

// route returns the replica set for key.  Callers pass the strategy and
// leaf count read from one pinned topology snapshot, so every route
// computed for one request agrees on one epoch even while the cluster
// resizes.  Prefix-pinned pools name explicit leaf indexes and keep their
// in-pool modulo placement.
func (rt *routeTable) route(key string, router cluster.Router, numLeaves int) []int {
	for _, rule := range rt.rules {
		if strings.HasPrefix(key, rule.Prefix) && len(rule.Leaves) > 0 {
			return ReplicasInPool(key, rule.Leaves, rt.replicas)
		}
	}
	return ReplicasRouted(key, router, numLeaves, rt.replicas)
}

// NewMidTier builds the Router mid-tier.  Call ConnectLeaves then Start.
func NewMidTier(cfg MidTierConfig) *core.MidTier {
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 3
	}
	table := newRouteTable(cfg.PrefixRules, replicas)
	// pickSeq rotates gets across a key's replicas, balancing load the
	// way the paper's random replica choice does.
	var pickSeq atomic.Uint64
	return core.NewMidTier(func(ctx *core.Ctx) {
		switch ctx.Req.Method {
		case MethodSet:
			key, _, err := DecodeKeyValue(ctx.Req.Payload)
			if err != nil {
				ctx.ReplyError(err)
				return
			}
			// Forward the set to every replica in the pool so the
			// same data resides on several leaves.
			snap := ctx.Snapshot()
			shards := table.route(key, snap.Router(), snap.NumLeaves())
			calls := make([]core.LeafCall, len(shards))
			for i, s := range shards {
				calls[i] = core.LeafCall{Shard: s, Method: MethodSet, Payload: ctx.Req.Payload}
			}
			ctx.Fanout(calls, func(results []core.LeafResult) {
				for _, r := range results {
					if r.Err != nil {
						ctx.ReplyError(r.Err)
						return
					}
				}
				ctx.Reply(nil)
			})
		case MethodGet:
			key, err := DecodeKey(ctx.Req.Payload)
			if err != nil {
				ctx.ReplyError(err)
				return
			}
			snap := ctx.Snapshot()
			shards := table.route(key, snap.Router(), snap.NumLeaves())
			shard := shards[pickSeq.Add(1)%uint64(len(shards))]
			ctx.Fanout([]core.LeafCall{{Shard: shard, Method: MethodGet, Payload: ctx.Req.Payload}},
				func(results []core.LeafResult) {
					r := results[0]
					if r.Err != nil {
						ctx.ReplyError(r.Err)
						return
					}
					ctx.Reply(r.Reply)
				})
		case MethodDelete:
			key, err := DecodeKey(ctx.Req.Payload)
			if err != nil {
				ctx.ReplyError(err)
				return
			}
			snap := ctx.Snapshot()
			shards := table.route(key, snap.Router(), snap.NumLeaves())
			calls := make([]core.LeafCall, len(shards))
			for i, s := range shards {
				calls[i] = core.LeafCall{Shard: s, Method: MethodDelete, Payload: ctx.Req.Payload}
			}
			ctx.Fanout(calls, func(results []core.LeafResult) {
				found := false
				for _, r := range results {
					if r.Err != nil {
						ctx.ReplyError(r.Err)
						return
					}
					if f, err := DecodeFound(r.Reply); err == nil && f {
						found = true
					}
				}
				ctx.Reply(EncodeFound(found))
			})
		default:
			ctx.ReplyError(fmt.Errorf("router mid-tier: unknown method %q", ctx.Req.Method))
		}
	}, &cfg.Core)
}

// --- front-end client ---

// Client is the front-end's typed handle on a Router deployment.  It is the
// drop-in proxy interface the paper describes: standard get/set calls with
// routing and redundancy hidden behind it.
type Client struct {
	rpc *rpc.Client
}

// DialClient connects to the mid-tier at addr.
func DialClient(addr string, opts *rpc.ClientOptions) (*Client, error) {
	c, err := rpc.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Get reads key, reporting presence.
func (c *Client) Get(key string) ([]byte, bool, error) {
	reply, err := c.rpc.Call(MethodGet, EncodeKey(key))
	if err != nil {
		return nil, false, err
	}
	found, value, err := DecodeGetResponse(reply)
	if err != nil {
		return nil, false, err
	}
	if !found {
		return nil, false, nil
	}
	return value, true, nil
}

// Set writes key=value to the replica pool.
func (c *Client) Set(key string, value []byte) error {
	_, err := c.rpc.Call(MethodSet, EncodeKeyValue(key, value))
	return err
}

// Delete removes key from all replicas, reporting whether any held it.
func (c *Client) Delete(key string) (bool, error) {
	reply, err := c.rpc.Call(MethodDelete, EncodeKey(key))
	if err != nil {
		return false, err
	}
	return DecodeFound(reply)
}

// GoGet issues an asynchronous get (for load generators).
func (c *Client) GoGet(key string, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodGet, EncodeKey(key), nil, done)
}

// GoSet issues an asynchronous set (for load generators).
func (c *Client) GoSet(key string, value []byte, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodSet, EncodeKeyValue(key, value), nil, done)
}

// GoGetSpan issues an asynchronous get carrying a span context, tracing the
// request end to end (used by sampling load generators).
func (c *Client) GoGetSpan(key string, sc trace.SpanContext, done chan *rpc.Call) *rpc.Call {
	return c.rpc.GoSpan(MethodGet, EncodeKey(key), sc, nil, done)
}

// GoSetSpan issues an asynchronous set carrying a span context.
func (c *Client) GoSetSpan(key string, value []byte, sc trace.SpanContext, done chan *rpc.Call) *rpc.Call {
	return c.rpc.GoSpan(MethodSet, EncodeKeyValue(key, value), sc, nil, done)
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// ErrNoLeaves reports a cluster configured without leaves.
var ErrNoLeaves = errors.New("router: no leaves configured")
