package router

import (
	"fmt"
	"testing"

	"musuite/internal/cluster"
	"musuite/internal/core"
)

func TestReplicasInPool(t *testing.T) {
	pool := []int{3, 5, 9}
	got := ReplicasInPool("key", pool, 2)
	if len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	inPool := map[int]bool{3: true, 5: true, 9: true}
	for _, s := range got {
		if !inPool[s] {
			t.Fatalf("shard %d outside pool %v", s, pool)
		}
	}
	if got[0] == got[1] {
		t.Fatalf("duplicate replicas %v", got)
	}
	// Clamping and empty-pool behavior.
	if got := ReplicasInPool("k", pool, 10); len(got) != 3 {
		t.Fatalf("clamp: %v", got)
	}
	if got := ReplicasInPool("k", nil, 2); got != nil {
		t.Fatalf("empty pool: %v", got)
	}
}

func TestRouteTableLongestPrefixMatch(t *testing.T) {
	rt := newRouteTable([]PrefixRule{
		{Prefix: "sess:", Leaves: []int{0, 1}},
		{Prefix: "sess:admin:", Leaves: []int{2}},
		{Prefix: "cache:", Leaves: []int{3, 4, 5}},
	}, 1)
	cases := []struct {
		key  string
		pool map[int]bool
	}{
		{"sess:user42", map[int]bool{0: true, 1: true}},
		{"sess:admin:root", map[int]bool{2: true}},
		{"cache:page", map[int]bool{3: true, 4: true, 5: true}},
		{"other:key", map[int]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true}},
	}
	for _, c := range cases {
		shards := rt.route(c.key, cluster.Modulo{}, 6)
		for _, s := range shards {
			if !c.pool[s] {
				t.Errorf("key %q routed to %d outside pool", c.key, s)
			}
		}
	}
}

func TestRouteTableReplicationWithinPool(t *testing.T) {
	rt := newRouteTable([]PrefixRule{{Prefix: "a:", Leaves: []int{1, 3, 5}}}, 2)
	shards := rt.route("a:key", cluster.Modulo{}, 8)
	if len(shards) != 2 {
		t.Fatalf("got %v", shards)
	}
	for _, s := range shards {
		if s != 1 && s != 3 && s != 5 {
			t.Fatalf("replica %d escaped pool", s)
		}
	}
	// Replication clamps to pool size, not total leaves.
	rt1 := newRouteTable([]PrefixRule{{Prefix: "a:", Leaves: []int{2}}}, 3)
	if got := rt1.route("a:key", cluster.Modulo{}, 8); len(got) != 1 || got[0] != 2 {
		t.Fatalf("single-leaf pool: %v", got)
	}
}

func TestPrefixRoutingEndToEnd(t *testing.T) {
	cl, err := StartCluster(ClusterConfig{
		Leaves:   6,
		Replicas: 2,
		PrefixRules: []PrefixRule{
			{Prefix: "sess:", Leaves: []int{0, 1}},
			{Prefix: "cache:", Leaves: []int{2, 3, 4, 5}},
		},
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:    core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Session keys live only on leaves {0,1}.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("sess:user%d", i)
		if err := client.Set(key, []byte("s")); err != nil {
			t.Fatal(err)
		}
		for _, h := range cl.LeafHolding(key) {
			if h > 1 {
				t.Fatalf("session key %q on leaf %d", key, h)
			}
		}
		// And remain readable through the rotation.
		if _, found, err := client.Get(key); err != nil || !found {
			t.Fatalf("get %q: %v %v", key, found, err)
		}
	}
	// Cache keys live only on leaves {2..5}.
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("cache:obj%d", i)
		if err := client.Set(key, []byte("c")); err != nil {
			t.Fatal(err)
		}
		for _, h := range cl.LeafHolding(key) {
			if h < 2 {
				t.Fatalf("cache key %q on leaf %d", key, h)
			}
		}
	}
	// Unmatched keys may land anywhere; they still round-trip.
	if err := client.Set("global:x", []byte("g")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := client.Get("global:x"); err != nil || !found || string(v) != "g" {
		t.Fatalf("global get: %q %v %v", v, found, err)
	}
}
