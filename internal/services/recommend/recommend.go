// Package recommend implements μSuite's Recommend: a user-based
// collaborative-filtering recommender predicting user ratings for items
// (paper §III-D).
//
// Rating tuples are sharded across leaves; each leaf factorizes its sparse
// utility-matrix shard with NMF offline and, at query time, predicts a
// {user, item} rating with an allknn user-neighborhood over the recovered
// latent factors.  The mid-tier is primarily a forwarding service: it fans
// the query pair to every leaf and averages the ratings returned.
package recommend

import (
	"fmt"
	"math"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/matfac"
	"musuite/internal/rpc"
	"musuite/internal/trace"
	"musuite/internal/wire"
)

// Method names on the wire.
const (
	// MethodPredict is both the front-end→mid-tier and mid-tier→leaf
	// rating query.
	MethodPredict = "recommend.predict"
)

// Rating bounds on the MovieLens-style star scale.
const (
	MinRating = 1.0
	MaxRating = 5.0
)

// --- wire codecs ---

// EncodePredictRequest encodes a {user, item} query pair.
func EncodePredictRequest(user, item int) []byte {
	e := wire.NewEncoder(10)
	e.Uvarint(uint64(user))
	e.Uvarint(uint64(item))
	return e.Bytes()
}

// DecodePredictRequest decodes a query pair.
func DecodePredictRequest(b []byte) (user, item int, err error) {
	d := wire.NewDecoder(b)
	user = int(d.Uvarint())
	item = int(d.Uvarint())
	return user, item, d.Err()
}

// EncodePredictResponse encodes a leaf's (or the service's) prediction.
// ok=false means this shard cannot rate the pair (unknown user or item).
func EncodePredictResponse(rating float64, ok bool) []byte {
	e := wire.NewEncoder(10)
	e.Bool(ok)
	e.Float64(rating)
	return e.Bytes()
}

// DecodePredictResponse decodes a prediction.
func DecodePredictResponse(b []byte) (rating float64, ok bool, err error) {
	d := wire.NewDecoder(b)
	ok = d.Bool()
	rating = d.Float64()
	return rating, ok, d.Err()
}

// --- leaf ---

// LeafConfig parameterizes leaf model training.
type LeafConfig struct {
	// Users and Items are the full matrix dimensions (shared by all
	// shards under round-robin rating sharding).
	Users, Items int
	// Rank, Iterations, Seed tune the NMF (see matfac.Config).
	Rank, Iterations int
	Seed             int64
	// Neighbors is the allknn neighborhood size (default 10).
	Neighbors int
	// Core configures the serving tier.
	Core core.LeafOptions
}

// LeafModel is one shard's trained state: the NMF factors plus which users
// actually have observations in this shard (cold users keep their random
// initialization and must not contribute predictions).  The user factors are
// additionally held as a flat float32 kernel store — converted once at
// training time — so the per-query neighborhood scan runs on the compute
// engine instead of re-walking [][]float64 rows.
type LeafModel struct {
	model     *matfac.Model
	userKnown []bool
	itemKnown []bool
	ratedBy   map[int]map[int]bool // user → items rated in this shard
	users     *kernel.Store        // model.W as float32, one row per user
	eng       *kernel.Engine       // scan engine; nil falls back to kernel.Default
	neighbors int
}

// engine returns the model's compute engine, defaulting lazily so models
// built outside a serving leaf still predict.
func (lm *LeafModel) engine() *kernel.Engine {
	if lm.eng != nil {
		return lm.eng
	}
	return kernel.Default()
}

// TrainLeaf factorizes one shard of ratings (the offline step the paper's
// leaves perform).
func TrainLeaf(ratings []dataset.Rating, cfg LeafConfig) (*LeafModel, error) {
	if cfg.Users <= 0 || cfg.Items <= 0 {
		return nil, fmt.Errorf("recommend: invalid matrix shape %dx%d", cfg.Users, cfg.Items)
	}
	data := make([]matfac.Triplet, len(ratings))
	userKnown := make([]bool, cfg.Users)
	itemKnown := make([]bool, cfg.Items)
	ratedBy := make(map[int]map[int]bool)
	for i, r := range ratings {
		data[i] = matfac.Triplet{Row: r.User, Col: r.Item, Val: r.Value}
		if r.User >= 0 && r.User < cfg.Users {
			userKnown[r.User] = true
		}
		if r.Item >= 0 && r.Item < cfg.Items {
			itemKnown[r.Item] = true
		}
		if m := ratedBy[r.User]; m == nil {
			ratedBy[r.User] = map[int]bool{r.Item: true}
		} else {
			m[r.Item] = true
		}
	}
	sparse, err := matfac.NewSparse(cfg.Users, cfg.Items, data)
	if err != nil {
		return nil, err
	}
	model, err := matfac.Factorize(sparse, matfac.Config{
		Rank: cfg.Rank, Iterations: cfg.Iterations, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	nb := cfg.Neighbors
	if nb <= 0 {
		nb = 10
	}
	users, err := kernel.FromFloat64(model.W.Data, model.W.Stride)
	if err != nil {
		return nil, err
	}
	return &LeafModel{
		model:     model,
		userKnown: userKnown,
		itemKnown: itemKnown,
		ratedBy:   ratedBy,
		users:     users,
		eng:       cfg.Core.Kernel,
		neighbors: nb,
	}, nil
}

// Predict computes this shard's rating estimate for {user, item} via the
// user-neighborhood approach: find the allknn most similar known users in
// latent-factor space (cosine), then average their factor-model ratings for
// the item, weighted by similarity.  ok is false when the shard has never
// seen the user or the item.
func (lm *LeafModel) Predict(user, item int) (float64, bool) {
	if !lm.canRate(user, item) {
		return 0, false
	}
	return lm.predictWith(lm.neighborhood(user), user, item), true
}

// canRate reports whether this shard has observations for both the user and
// the item.
func (lm *LeafModel) canRate(user, item int) bool {
	return user >= 0 && user < len(lm.userKnown) &&
		item >= 0 && item < len(lm.itemKnown) &&
		lm.userKnown[user] && lm.itemKnown[item]
}

// neighborhood computes the allknn user neighborhood — the dominant cost of
// a prediction (an exhaustive scan over the shard's latent user vectors).
// The engine applies the known-users mask inline and excludes the query user
// itself, so no per-request exclusion map is built.
func (lm *LeafModel) neighborhood(user int) []knn.Neighbor {
	nbrs, err := lm.engine().CosineNeighbors(lm.users, user, lm.userKnown, lm.neighbors, nil)
	if err != nil {
		return nil
	}
	return nbrs
}

// predictWith scores item from a precomputed neighborhood of user.
func (lm *LeafModel) predictWith(neighbors []knn.Neighbor, user, item int) float64 {
	var weighted, weights float64
	for _, n := range neighbors {
		sim := 1 - float64(n.Distance) // cosine similarity
		if sim <= 0 {
			continue
		}
		weighted += sim * lm.model.Predict(int(n.ID), item)
		weights += sim
	}
	var rating float64
	if weights > 0 {
		rating = weighted / weights
	} else {
		// Degenerate neighborhood: fall back to the direct factor
		// model.
		rating = lm.model.Predict(user, item)
	}
	return clamp(rating)
}

// PredictBatch predicts many {user, item} pairs (parallel slices), running
// each distinct user's neighborhood scan once no matter how many pairs of
// the batch share the user — and all distinct users' scans through the
// engine's multi-query tile kernel, so the batch shares each factor row's
// memory traffic (the multi-pair form a batched carrier unlocks).
func (lm *LeafModel) PredictBatch(users, items []int) ([]float64, []bool) {
	ratings := make([]float64, len(users))
	oks := make([]bool, len(users))
	// Gather the distinct rateable users in first-seen order.
	hoods := make(map[int][]knn.Neighbor)
	distinct := make([]int, 0, len(users))
	for i := range users {
		user := users[i]
		if !lm.canRate(user, items[i]) {
			continue
		}
		if _, seen := hoods[user]; !seen {
			hoods[user] = nil
			distinct = append(distinct, user)
		}
	}
	if len(distinct) > 0 {
		if multi, err := lm.engine().CosineNeighborsMulti(lm.users, distinct, lm.userKnown, lm.neighbors); err == nil {
			for j, user := range distinct {
				hoods[user] = multi[j]
			}
		} else {
			for _, user := range distinct {
				hoods[user] = lm.neighborhood(user)
			}
		}
	}
	for i := range users {
		user, item := users[i], items[i]
		if !lm.canRate(user, item) {
			continue
		}
		ratings[i] = lm.predictWith(hoods[user], user, item)
		oks[i] = true
	}
	return ratings, oks
}

// DirectPredict is the pure factor-model prediction, exposed for the
// neighborhood-vs-direct ablation.
func (lm *LeafModel) DirectPredict(user, item int) (float64, bool) {
	if user < 0 || user >= len(lm.userKnown) || item < 0 || item >= len(lm.itemKnown) {
		return 0, false
	}
	if !lm.userKnown[user] || !lm.itemKnown[item] {
		return 0, false
	}
	return clamp(lm.model.Predict(user, item)), true
}

func clamp(r float64) float64 {
	if math.IsNaN(r) {
		return MinRating
	}
	if r < MinRating {
		return MinRating
	}
	if r > MaxRating {
		return MaxRating
	}
	return r
}

// NewLeaf builds the Recommend leaf microservice over a trained model.  The
// scalar handler uses the encoded form, streaming each prediction into the
// leaf's pooled reply encoder; batched carriers take the multi-pair
// prediction path, where predictions sharing a user reuse one neighborhood
// scan (PredictBatch).  The leaf and model share one compute engine: a
// model trained with an engine hands it to the leaf, and a model trained
// without one adopts the leaf's (EnsureLeafKernel supplies it), so the
// neighborhood scans feed the leaf's TierStats kernel counters either way.
func NewLeaf(lm *LeafModel, opts *core.LeafOptions) *core.Leaf {
	if opts == nil || opts.Kernel == nil {
		o := core.EnsureLeafKernel(opts)
		if lm.eng != nil {
			o.Kernel = lm.eng
		}
		opts = o
	}
	if lm.eng == nil {
		// Pre-serving, single-threaded: the model is not yet handling
		// requests when the leaf is constructed.
		lm.eng = opts.Kernel
	}
	return core.NewLeafEncoded(func(method string, payload []byte, reply *wire.Encoder) error {
		switch method {
		case MethodPredict:
			user, item, err := DecodePredictRequest(payload)
			if err != nil {
				return err
			}
			rating, ok := lm.Predict(user, item)
			reply.Bool(ok)
			reply.Float64(rating)
			return nil
		case MethodTopN:
			return lm.appendTopN(payload, reply)
		}
		return errUnknownMethod("leaf", method)
	}, core.LeafOptionsWithBatch(opts, func(methods []string, payloads [][]byte) ([][]byte, []error) {
		replies := make([][]byte, len(methods))
		errs := make([]error, len(methods))
		users := make([]int, 0, len(methods))
		items := make([]int, 0, len(methods))
		slots := make([]int, 0, len(methods)) // member index per gathered pair
		for i := range methods {
			switch methods[i] {
			case MethodPredict:
				user, item, err := DecodePredictRequest(payloads[i])
				if err != nil {
					errs[i] = err
					continue
				}
				users = append(users, user)
				items = append(items, item)
				slots = append(slots, i)
			case MethodTopN:
				replies[i], errs[i] = lm.handleTopN(payloads[i])
			default:
				errs[i] = errUnknownMethod("leaf", methods[i])
			}
		}
		ratings, oks := lm.PredictBatch(users, items)
		for j, i := range slots {
			replies[i] = EncodePredictResponse(ratings[j], oks[j])
		}
		return replies, errs
	}))
}

// --- mid-tier ---

// NewMidTier builds the Recommend mid-tier: forward the query pair to every
// leaf, average the ratings of the shards that could rate it.  Call
// ConnectLeaves then Start.
func NewMidTier(opts *core.Options) *core.MidTier {
	return core.NewMidTier(func(ctx *core.Ctx) {
		if ctx.Req.Method == MethodTopN {
			user, n, err := DecodeTopNRequest(ctx.Req.Payload)
			if err != nil {
				ctx.ReplyError(err)
				return
			}
			// Ask each leaf for a deeper local list so the merged
			// global top-n is not starved by per-shard truncation.
			perLeaf := EncodeTopNRequest(user, 2*n+10)
			ctx.FanoutAll(MethodTopN, perLeaf, func(results []core.LeafResult) {
				reply, err := mergeTopN(results, n)
				if err != nil {
					ctx.ReplyError(err)
					return
				}
				ctx.Reply(reply)
			})
			return
		}
		if ctx.Req.Method != MethodPredict {
			ctx.ReplyError(errUnknownMethod("mid-tier", ctx.Req.Method))
			return
		}
		if _, _, err := DecodePredictRequest(ctx.Req.Payload); err != nil {
			ctx.ReplyError(err)
			return
		}
		ctx.FanoutAll(MethodPredict, ctx.Req.Payload, func(results []core.LeafResult) {
			var sum float64
			var n int
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
				rating, ok, err := DecodePredictResponse(r.Reply)
				if err != nil {
					ctx.ReplyError(err)
					return
				}
				if ok {
					sum += rating
					n++
				}
			}
			e := wire.GetEncoder()
			if n == 0 {
				e.Bool(false)
				e.Float64(0)
			} else {
				e.Bool(true)
				e.Float64(sum / float64(n))
			}
			ctx.Reply(e.Bytes())
			wire.PutEncoder(e)
		})
	}, opts)
}

// --- front-end client ---

// Client is the front-end's typed handle on a Recommend deployment.
type Client struct {
	rpc *rpc.Client
}

// DialClient connects to the mid-tier at addr.
func DialClient(addr string, opts *rpc.ClientOptions) (*Client, error) {
	c, err := rpc.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Predict returns the service's rating estimate for {user, item}; ok is
// false when no shard could rate the pair.
func (c *Client) Predict(user, item int) (float64, bool, error) {
	reply, err := c.rpc.Call(MethodPredict, EncodePredictRequest(user, item))
	if err != nil {
		return 0, false, err
	}
	rating, ok, err := DecodePredictResponse(reply)
	return rating, ok, err
}

// Go issues an asynchronous prediction (for load generators).
func (c *Client) Go(user, item int, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodPredict, EncodePredictRequest(user, item), nil, done)
}

// GoSpan issues an asynchronous prediction carrying a span context, tracing
// the request end to end (used by sampling load generators).
func (c *Client) GoSpan(user, item int, sc trace.SpanContext, done chan *rpc.Call) *rpc.Call {
	return c.rpc.GoSpan(MethodPredict, EncodePredictRequest(user, item), sc, nil, done)
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }
