package recommend

import (
	"math"
	"strings"
	"testing"

	"musuite/internal/core"
	"musuite/internal/dataset"
)

func testCorpus(t *testing.T) *dataset.RatingCorpus {
	t.Helper()
	return dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: 80, Items: 100, Ratings: 4000, Rank: 4, Noise: 0.25, Seed: 21,
	})
}

func startTestCluster(t *testing.T, corpus *dataset.RatingCorpus) (*Cluster, *Client) {
	t.Helper()
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		Rank:    6,
		Seed:    3,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:    core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, client
}

func TestCodecs(t *testing.T) {
	u, i, err := DecodePredictRequest(EncodePredictRequest(42, 7))
	if err != nil || u != 42 || i != 7 {
		t.Fatalf("request codec: %d %d %v", u, i, err)
	}
	r, ok, err := DecodePredictResponse(EncodePredictResponse(3.5, true))
	if err != nil || !ok || r != 3.5 {
		t.Fatalf("response codec: %v %v %v", r, ok, err)
	}
	r, ok, err = DecodePredictResponse(EncodePredictResponse(0, false))
	if err != nil || ok || r != 0 {
		t.Fatalf("no-rating codec: %v %v %v", r, ok, err)
	}
	if _, _, err := DecodePredictRequest(nil); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestTrainLeafValidation(t *testing.T) {
	if _, err := TrainLeaf(nil, LeafConfig{Users: 0, Items: 5}); err == nil {
		t.Fatal("zero users accepted")
	}
	if _, err := TrainLeaf(nil, LeafConfig{Users: 5, Items: 5}); err == nil {
		t.Fatal("no ratings accepted (NMF needs observations)")
	}
}

func TestLeafPredictBoundsAndKnownness(t *testing.T) {
	corpus := testCorpus(t)
	lm, err := TrainLeaf(corpus.Ratings, LeafConfig{
		Users: corpus.Users, Items: corpus.Items, Rank: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Known pair: in-bounds rating.
	r := corpus.Ratings[0]
	rating, ok := lm.Predict(r.User, r.Item)
	if !ok {
		t.Fatal("known pair not rated")
	}
	if rating < MinRating || rating > MaxRating {
		t.Fatalf("rating %v outside [%v,%v]", rating, MinRating, MaxRating)
	}
	// Out-of-range pair.
	if _, ok := lm.Predict(-1, 0); ok {
		t.Fatal("negative user rated")
	}
	if _, ok := lm.Predict(0, corpus.Items+5); ok {
		t.Fatal("out-of-range item rated")
	}
	// DirectPredict agrees on knownness.
	if _, ok := lm.DirectPredict(r.User, r.Item); !ok {
		t.Fatal("direct predict unknown for known pair")
	}
}

func TestLeafPredictBeatsMeanBaseline(t *testing.T) {
	corpus := testCorpus(t)
	// Hold out the last 10% for evaluation.
	n := len(corpus.Ratings)
	train, test := corpus.Ratings[:n*9/10], corpus.Ratings[n*9/10:]
	lm, err := TrainLeaf(train, LeafConfig{
		Users: corpus.Users, Items: corpus.Items, Rank: 6, Iterations: 80, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := 0.0
	for _, r := range train {
		mean += r.Value
	}
	mean /= float64(len(train))

	var seModel, seMean float64
	evaluated := 0
	for _, r := range test {
		p, ok := lm.Predict(r.User, r.Item)
		if !ok {
			continue
		}
		evaluated++
		seModel += (p - r.Value) * (p - r.Value)
		seMean += (mean - r.Value) * (mean - r.Value)
	}
	if evaluated < 10 {
		t.Skip("too few evaluable held-out pairs")
	}
	if seModel >= seMean {
		t.Fatalf("neighborhood model (SE=%.2f) not better than mean baseline (SE=%.2f) over %d pairs",
			seModel, seMean, evaluated)
	}
	t.Logf("held-out RMSE: model %.3f, mean-baseline %.3f (%d pairs)",
		math.Sqrt(seModel/float64(evaluated)), math.Sqrt(seMean/float64(evaluated)), evaluated)
}

func TestEndToEndPredictions(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	// The paper queries empty cells only.
	pairs := corpus.QueryPairs(50, 77)
	rated := 0
	for _, p := range pairs {
		rating, ok, err := client.Predict(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			rated++
			if rating < MinRating || rating > MaxRating {
				t.Fatalf("rating %v outside bounds", rating)
			}
		}
	}
	// With 4000 ratings over 80×100, nearly every user and item is known
	// to some shard.
	if rated < len(pairs)*8/10 {
		t.Fatalf("only %d of %d pairs rated", rated, len(pairs))
	}
}

func TestMidTierAveragesLeaves(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startTestCluster(t, corpus)
	pairs := corpus.QueryPairs(20, 99)
	for _, p := range pairs {
		got, ok, err := client.Predict(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		for _, lm := range cl.Models {
			if r, lok := lm.Predict(p[0], p[1]); lok {
				sum += r
				n++
			}
		}
		if !ok {
			if n != 0 {
				t.Fatalf("mid-tier said no rating but %d leaves rated", n)
			}
			continue
		}
		want := sum / float64(n)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("pair %v: got %v want average %v of %d leaves", p, got, want, n)
		}
	}
}

func TestUnknownPairReturnsNoRating(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	_, ok, err := client.Predict(corpus.Users+10, corpus.Items+10)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("out-of-universe pair rated")
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	if _, err := client.rpc.Call("recommend.train", nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err=%v", err)
	}
}
