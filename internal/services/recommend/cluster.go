package recommend

import (
	"musuite/internal/core"
	"musuite/internal/dataset"
)

// ClusterConfig assembles an in-process Recommend deployment: rating tuples
// sharded round-robin, one NMF-trained leaf per shard, a forwarding/
// averaging mid-tier.
type ClusterConfig struct {
	// Corpus is the rating corpus to serve.
	Corpus *dataset.RatingCorpus
	// Shards is the leaf count (paper: 4-way).
	Shards int
	// Rank and Iterations tune each leaf's NMF (defaults from matfac).
	Rank, Iterations int
	// Neighbors is the allknn neighborhood size (default 10).
	Neighbors int
	// Seed controls model initialization.
	Seed int64
	// LeafReplicas is the number of leaf processes serving each shard
	// (default 1).  Replicas of a shard share the shard's trained model;
	// with >1 the mid-tier load-balances, hedges, and retries across
	// them.
	LeafReplicas int
	// MidTier and Leaf configure the framework tiers.
	MidTier core.Options
	Leaf    core.LeafOptions
}

// Cluster is a running Recommend deployment.
type Cluster struct {
	// Addr is the mid-tier address front-ends dial.
	Addr string
	// Models exposes the trained per-shard models (tests and ablations).
	Models []*LeafModel

	leaves  []*core.Leaf
	midTier *core.MidTier
}

// StartCluster trains the leaves (offline) and launches the deployment.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	shards := cfg.Corpus.ShardRoundRobin(cfg.Shards)
	cl := &Cluster{}
	replicas := cfg.LeafReplicas
	if replicas <= 0 {
		replicas = 1
	}
	leafGroups := make([][]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		lm, err := TrainLeaf(shards[s], LeafConfig{
			Users: cfg.Corpus.Users, Items: cfg.Corpus.Items,
			Rank: cfg.Rank, Iterations: cfg.Iterations,
			Neighbors: cfg.Neighbors,
			Seed:      cfg.Seed + int64(s),
			Core:      cfg.Leaf,
		})
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.Models = append(cl.Models, lm)
		for r := 0; r < replicas; r++ {
			leafOpts := cfg.Leaf
			leaf := NewLeaf(lm, &leafOpts)
			addr, err := leaf.Start("127.0.0.1:0")
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.leaves = append(cl.leaves, leaf)
			leafGroups[s] = append(leafGroups[s], addr)
		}
	}
	mtOpts := cfg.MidTier
	mt := NewMidTier(&mtOpts)
	if err := mt.ConnectLeafGroups(leafGroups); err != nil {
		cl.Close()
		return nil, err
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		mt.Close()
		cl.Close()
		return nil, err
	}
	cl.midTier = mt
	cl.Addr = addr
	return cl, nil
}

// MidTier exposes the deployment's framework mid-tier — the runtime
// topology admin surface (cluster.ServeAdmin on MidTier().Topology())
// hangs off it.  Recommend partitions its trained models per shard, so
// add/drain here is for failure drills, not data-aware resharding.
func (c *Cluster) MidTier() *core.MidTier { return c.midTier }

// Close tears the deployment down.
func (c *Cluster) Close() {
	if c.midTier != nil {
		c.midTier.Close()
	}
	for _, l := range c.leaves {
		l.Close()
	}
}
