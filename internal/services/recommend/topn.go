package recommend

import (
	"fmt"
	"sort"

	"musuite/internal/core"
	"musuite/internal/wire"
)

// MethodTopN is the top-N recommendation query — the extension §III-D
// explicitly proposes: "this algorithm can also be further extended to
// recommend items which were not rated by the user."
const MethodTopN = "recommend.topn"

// ItemRating is one recommended item with its predicted rating.
type ItemRating struct {
	Item   int
	Rating float64
}

// --- wire codecs ---

// EncodeTopNRequest encodes a {user, n} recommendation query.
func EncodeTopNRequest(user, n int) []byte {
	e := wire.NewEncoder(10)
	e.Uvarint(uint64(user))
	e.Uvarint(uint64(n))
	return e.Bytes()
}

// DecodeTopNRequest decodes a recommendation query.
func DecodeTopNRequest(b []byte) (user, n int, err error) {
	d := wire.NewDecoder(b)
	user = int(d.Uvarint())
	n = int(d.Uvarint())
	return user, n, d.Err()
}

// EncodeTopNResponse encodes a leaf's recommendations plus the items the
// user has already rated in that shard (so the mid-tier can exclude items
// the user rated in *any* shard).
func EncodeTopNResponse(recs []ItemRating, rated []uint32) []byte {
	e := wire.NewEncoder(16 + 12*len(recs) + 4*len(rated))
	e.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		e.Uvarint(uint64(r.Item))
		e.Float64(r.Rating)
	}
	e.Uint32s(rated)
	return e.Bytes()
}

// DecodeTopNResponse decodes a leaf's recommendation response.
func DecodeTopNResponse(b []byte) (recs []ItemRating, rated []uint32, err error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	if n > wire.MaxSliceLen/12 {
		return nil, nil, wire.ErrTooLarge
	}
	recs = make([]ItemRating, n)
	for i := range recs {
		recs[i].Item = int(d.Uvarint())
		recs[i].Rating = d.Float64()
	}
	rated = d.Uint32s()
	return recs, rated, d.Err()
}

// topNHeap is a bounded heap keeping the n best ItemRatings seen so far —
// rating descending, ties broken by ascending item — with the current worst
// on top for O(1) rejection, so selecting n of m items is O(m log n) instead
// of the full O(m log m) sort.  Ratings stay float64 end to end, so the
// order is identical to the sort it replaces.
type topNHeap struct {
	n int
	h []ItemRating
}

// worse reports whether a sorts after b in the final (best-first) order.
func topNWorse(a, b ItemRating) bool {
	if a.Rating != b.Rating {
		return a.Rating < b.Rating
	}
	return a.Item > b.Item
}

func (t *topNHeap) consider(x ItemRating) {
	if t.n <= 0 {
		return
	}
	if len(t.h) < t.n {
		t.h = append(t.h, x)
		i := len(t.h) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !topNWorse(t.h[i], t.h[parent]) {
				break
			}
			t.h[i], t.h[parent] = t.h[parent], t.h[i]
			i = parent
		}
		return
	}
	if !topNWorse(t.h[0], x) {
		return
	}
	t.h[0] = x
	topNSiftDown(t.h, 0)
}

func topNSiftDown(h []ItemRating, i int) {
	n := len(h)
	for {
		worst := i
		if l := 2*i + 1; l < n && topNWorse(h[l], h[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && topNWorse(h[r], h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// drainSorted empties the heap, returning its contents best-first.
func (t *topNHeap) drainSorted() []ItemRating {
	h := t.h
	t.h = nil
	for end := len(h) - 1; end > 0; end-- {
		h[0], h[end] = h[end], h[0]
		topNSiftDown(h[:end], 0)
	}
	return h
}

// TopN returns this shard's up-to-n best unrated items for user (by the
// factor model's predicted rating), plus the items the user has rated in
// this shard.  ok is false for unknown users.
func (lm *LeafModel) TopN(user, n int) (recs []ItemRating, rated []int, ok bool) {
	if user < 0 || user >= len(lm.userKnown) || !lm.userKnown[user] {
		return nil, nil, false
	}
	if n <= 0 {
		n = 10
	}
	ratedSet := lm.ratedBy[user]
	for item := range ratedSet {
		rated = append(rated, item)
	}
	sort.Ints(rated)

	top := topNHeap{n: n}
	for item, known := range lm.itemKnown {
		if !known || ratedSet[item] {
			continue
		}
		top.consider(ItemRating{Item: item, Rating: clamp(lm.model.Predict(user, item))})
	}
	return top.drainSorted(), rated, true
}

// handleTopN is the leaf-side TopN RPC.
func (lm *LeafModel) handleTopN(payload []byte) ([]byte, error) {
	user, n, err := DecodeTopNRequest(payload)
	if err != nil {
		return nil, err
	}
	recs, rated, ok := lm.TopN(user, n)
	if !ok {
		return EncodeTopNResponse(nil, nil), nil
	}
	rated32 := make([]uint32, len(rated))
	for i, item := range rated {
		rated32[i] = uint32(item)
	}
	return EncodeTopNResponse(recs, rated32), nil
}

// appendTopN is handleTopN in streaming form: the response goes straight
// into the leaf's pooled reply encoder (same wire layout as
// EncodeTopNResponse).
func (lm *LeafModel) appendTopN(payload []byte, reply *wire.Encoder) error {
	user, n, err := DecodeTopNRequest(payload)
	if err != nil {
		return err
	}
	recs, rated, _ := lm.TopN(user, n)
	reply.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		reply.Uvarint(uint64(r.Item))
		reply.Float64(r.Rating)
	}
	reply.Uvarint(uint64(len(rated)))
	for _, item := range rated {
		reply.Uint32(uint32(item))
	}
	return nil
}

// mergeTopN combines per-leaf recommendations: per-item ratings are averaged
// across the leaves that scored the item, items rated by the user in any
// shard are dropped, and the global top-n remains.
func mergeTopN(results []core.LeafResult, n int) ([]byte, error) {
	type acc struct {
		sum float64
		cnt int
	}
	perItem := make(map[int]*acc)
	ratedAnywhere := make(map[int]bool)
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		recs, rated, err := DecodeTopNResponse(r.Reply)
		if err != nil {
			return nil, err
		}
		for _, item := range rated {
			ratedAnywhere[int(item)] = true
		}
		for _, rec := range recs {
			a := perItem[rec.Item]
			if a == nil {
				a = &acc{}
				perItem[rec.Item] = a
			}
			a.sum += rec.Rating
			a.cnt++
		}
	}
	// n <= 0 means keep everything, which the bounded heap expresses as a
	// bound of len(perItem); the heapsort drain then doubles as the sort.
	bound := n
	if bound <= 0 {
		bound = len(perItem)
	}
	top := topNHeap{n: bound}
	for item, a := range perItem {
		if ratedAnywhere[item] {
			continue
		}
		top.consider(ItemRating{Item: item, Rating: a.sum / float64(a.cnt)})
	}
	return EncodeTopNResponse(top.drainSorted(), nil), nil
}

// TopN asks the service for the user's n best unrated items.
func (c *Client) TopN(user, n int) ([]ItemRating, error) {
	reply, err := c.rpc.Call(MethodTopN, EncodeTopNRequest(user, n))
	if err != nil {
		return nil, err
	}
	recs, _, err := DecodeTopNResponse(reply)
	return recs, err
}

// errUnknownMethod builds the standard rejection.
func errUnknownMethod(tier, method string) error {
	return fmt.Errorf("recommend %s: unknown method %q", tier, method)
}
