package recommend

import (
	"fmt"
	"sort"

	"musuite/internal/core"
	"musuite/internal/wire"
)

// MethodTopN is the top-N recommendation query — the extension §III-D
// explicitly proposes: "this algorithm can also be further extended to
// recommend items which were not rated by the user."
const MethodTopN = "recommend.topn"

// ItemRating is one recommended item with its predicted rating.
type ItemRating struct {
	Item   int
	Rating float64
}

// --- wire codecs ---

// EncodeTopNRequest encodes a {user, n} recommendation query.
func EncodeTopNRequest(user, n int) []byte {
	e := wire.NewEncoder(10)
	e.Uvarint(uint64(user))
	e.Uvarint(uint64(n))
	return e.Bytes()
}

// DecodeTopNRequest decodes a recommendation query.
func DecodeTopNRequest(b []byte) (user, n int, err error) {
	d := wire.NewDecoder(b)
	user = int(d.Uvarint())
	n = int(d.Uvarint())
	return user, n, d.Err()
}

// EncodeTopNResponse encodes a leaf's recommendations plus the items the
// user has already rated in that shard (so the mid-tier can exclude items
// the user rated in *any* shard).
func EncodeTopNResponse(recs []ItemRating, rated []uint32) []byte {
	e := wire.NewEncoder(16 + 12*len(recs) + 4*len(rated))
	e.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		e.Uvarint(uint64(r.Item))
		e.Float64(r.Rating)
	}
	e.Uint32s(rated)
	return e.Bytes()
}

// DecodeTopNResponse decodes a leaf's recommendation response.
func DecodeTopNResponse(b []byte) (recs []ItemRating, rated []uint32, err error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, nil, err
	}
	if n > wire.MaxSliceLen/12 {
		return nil, nil, wire.ErrTooLarge
	}
	recs = make([]ItemRating, n)
	for i := range recs {
		recs[i].Item = int(d.Uvarint())
		recs[i].Rating = d.Float64()
	}
	rated = d.Uint32s()
	return recs, rated, d.Err()
}

// TopN returns this shard's up-to-n best unrated items for user (by the
// factor model's predicted rating), plus the items the user has rated in
// this shard.  ok is false for unknown users.
func (lm *LeafModel) TopN(user, n int) (recs []ItemRating, rated []int, ok bool) {
	if user < 0 || user >= len(lm.userKnown) || !lm.userKnown[user] {
		return nil, nil, false
	}
	if n <= 0 {
		n = 10
	}
	ratedSet := lm.ratedBy[user]
	for item := range ratedSet {
		rated = append(rated, item)
	}
	sort.Ints(rated)

	for item, known := range lm.itemKnown {
		if !known || ratedSet[item] {
			continue
		}
		recs = append(recs, ItemRating{Item: item, Rating: clamp(lm.model.Predict(user, item))})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Rating != recs[j].Rating {
			return recs[i].Rating > recs[j].Rating
		}
		return recs[i].Item < recs[j].Item
	})
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs, rated, true
}

// handleTopN is the leaf-side TopN RPC.
func (lm *LeafModel) handleTopN(payload []byte) ([]byte, error) {
	user, n, err := DecodeTopNRequest(payload)
	if err != nil {
		return nil, err
	}
	recs, rated, ok := lm.TopN(user, n)
	if !ok {
		return EncodeTopNResponse(nil, nil), nil
	}
	rated32 := make([]uint32, len(rated))
	for i, item := range rated {
		rated32[i] = uint32(item)
	}
	return EncodeTopNResponse(recs, rated32), nil
}

// appendTopN is handleTopN in streaming form: the response goes straight
// into the leaf's pooled reply encoder (same wire layout as
// EncodeTopNResponse).
func (lm *LeafModel) appendTopN(payload []byte, reply *wire.Encoder) error {
	user, n, err := DecodeTopNRequest(payload)
	if err != nil {
		return err
	}
	recs, rated, _ := lm.TopN(user, n)
	reply.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		reply.Uvarint(uint64(r.Item))
		reply.Float64(r.Rating)
	}
	reply.Uvarint(uint64(len(rated)))
	for _, item := range rated {
		reply.Uint32(uint32(item))
	}
	return nil
}

// mergeTopN combines per-leaf recommendations: per-item ratings are averaged
// across the leaves that scored the item, items rated by the user in any
// shard are dropped, and the global top-n remains.
func mergeTopN(results []core.LeafResult, n int) ([]byte, error) {
	type acc struct {
		sum float64
		cnt int
	}
	perItem := make(map[int]*acc)
	ratedAnywhere := make(map[int]bool)
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		recs, rated, err := DecodeTopNResponse(r.Reply)
		if err != nil {
			return nil, err
		}
		for _, item := range rated {
			ratedAnywhere[int(item)] = true
		}
		for _, rec := range recs {
			a := perItem[rec.Item]
			if a == nil {
				a = &acc{}
				perItem[rec.Item] = a
			}
			a.sum += rec.Rating
			a.cnt++
		}
	}
	merged := make([]ItemRating, 0, len(perItem))
	for item, a := range perItem {
		if ratedAnywhere[item] {
			continue
		}
		merged = append(merged, ItemRating{Item: item, Rating: a.sum / float64(a.cnt)})
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Rating != merged[j].Rating {
			return merged[i].Rating > merged[j].Rating
		}
		return merged[i].Item < merged[j].Item
	})
	if n > 0 && len(merged) > n {
		merged = merged[:n]
	}
	return EncodeTopNResponse(merged, nil), nil
}

// TopN asks the service for the user's n best unrated items.
func (c *Client) TopN(user, n int) ([]ItemRating, error) {
	reply, err := c.rpc.Call(MethodTopN, EncodeTopNRequest(user, n))
	if err != nil {
		return nil, err
	}
	recs, _, err := DecodeTopNResponse(reply)
	return recs, err
}

// errUnknownMethod builds the standard rejection.
func errUnknownMethod(tier, method string) error {
	return fmt.Errorf("recommend %s: unknown method %q", tier, method)
}
