package recommend

import (
	"testing"
)

func TestTopNCodecs(t *testing.T) {
	u, n, err := DecodeTopNRequest(EncodeTopNRequest(9, 5))
	if err != nil || u != 9 || n != 5 {
		t.Fatalf("request codec: %d %d %v", u, n, err)
	}
	recs := []ItemRating{{Item: 3, Rating: 4.5}, {Item: 7, Rating: 2.25}}
	rated := []uint32{1, 2}
	gotRecs, gotRated, err := DecodeTopNResponse(EncodeTopNResponse(recs, rated))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRecs) != 2 || gotRecs[0] != recs[0] || gotRecs[1] != recs[1] {
		t.Fatalf("recs: %v", gotRecs)
	}
	if len(gotRated) != 2 || gotRated[1] != 2 {
		t.Fatalf("rated: %v", gotRated)
	}
	if _, _, err := DecodeTopNResponse([]byte{0xFF}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLeafTopNExcludesRatedAndSortsDesc(t *testing.T) {
	corpus := testCorpus(t)
	lm, err := TrainLeaf(corpus.Ratings, LeafConfig{
		Users: corpus.Users, Items: corpus.Items, Rank: 6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	user := corpus.Ratings[0].User
	recs, rated, ok := lm.TopN(user, 10)
	if !ok {
		t.Fatal("known user rejected")
	}
	if len(recs) == 0 || len(recs) > 10 {
		t.Fatalf("recs=%d", len(recs))
	}
	ratedSet := make(map[int]bool)
	for _, item := range rated {
		ratedSet[item] = true
	}
	for i, r := range recs {
		if ratedSet[r.Item] {
			t.Fatalf("recommended already-rated item %d", r.Item)
		}
		if r.Rating < MinRating || r.Rating > MaxRating {
			t.Fatalf("rating %v out of bounds", r.Rating)
		}
		if i > 0 && r.Rating > recs[i-1].Rating {
			t.Fatal("recommendations not sorted descending")
		}
	}
	// The rated list matches the training data for that user.
	want := 0
	for _, rt := range corpus.Ratings {
		if rt.User == user {
			want++
		}
	}
	if len(rated) != want {
		t.Fatalf("rated=%d want %d", len(rated), want)
	}
	// Unknown user.
	if _, _, ok := lm.TopN(corpus.Users+5, 3); ok {
		t.Fatal("unknown user recommended")
	}
}

// TestEndToEndTopN drives the extension through the full deployment: no
// recommended item may be rated by the user in *any* shard, and results are
// the average-merged global best.
func TestEndToEndTopN(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startTestCluster(t, corpus)

	ratedGlobal := make(map[int]map[int]bool)
	for _, r := range corpus.Ratings {
		if ratedGlobal[r.User] == nil {
			ratedGlobal[r.User] = make(map[int]bool)
		}
		ratedGlobal[r.User][r.Item] = true
	}

	for user := 0; user < 10; user++ {
		recs, err := client.TopN(user, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			t.Fatalf("user %d: no recommendations", user)
		}
		if len(recs) > 5 {
			t.Fatalf("user %d: %d recs for n=5", user, len(recs))
		}
		for i, r := range recs {
			if ratedGlobal[user][r.Item] {
				t.Fatalf("user %d: recommended globally-rated item %d", user, r.Item)
			}
			if i > 0 && r.Rating > recs[i-1].Rating {
				t.Fatalf("user %d: unsorted recs", user)
			}
			// Mid-tier averages leaf predictions; recompute.
			var sum float64
			var cnt int
			for _, lm := range cl.Models {
				lrecs, _, ok := lm.TopN(user, 2*5+10)
				if !ok {
					continue
				}
				for _, lr := range lrecs {
					if lr.Item == r.Item {
						sum += lr.Rating
						cnt++
					}
				}
			}
			if cnt > 0 {
				want := sum / float64(cnt)
				if diff := r.Rating - want; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("user %d item %d: rating %v want merged %v", user, r.Item, r.Rating, want)
				}
			}
		}
	}
}

func TestTopNUnknownUserEmpty(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	recs, err := client.TopN(corpus.Users+50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("unknown user got %d recs", len(recs))
	}
}
