// Package setalgebra implements μSuite's Set Algebra: document retrieval by
// set intersection on posting lists (paper §III-C).
//
// The corpus is sharded uniformly across leaves.  Each leaf holds an
// inverted index (with stop-listed high-frequency terms discarded at
// indexing) and intersects its local posting lists for the query terms.
// The mid-tier forwards search terms to every leaf and merges the
// intersected lists it receives via set union.
package setalgebra

import (
	"fmt"
	"sync"

	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/postlist"
	"musuite/internal/rpc"
	"musuite/internal/trace"
	"musuite/internal/wire"
)

// Method names on the wire.
const (
	// MethodSearch is the front-end→mid-tier query of search terms.
	MethodSearch = "setalgebra.search"
	// MethodIntersect is the mid-tier→leaf intersection call.
	MethodIntersect = "setalgebra.intersect"
)

// --- wire codecs ---

// EncodeTerms encodes a term-ID query.
func EncodeTerms(terms []int) []byte {
	e := wire.NewEncoder(4 + 4*len(terms))
	e.Uvarint(uint64(len(terms)))
	for _, t := range terms {
		e.Uvarint(uint64(t))
	}
	return e.Bytes()
}

// DecodeTerms decodes a term-ID query.
func DecodeTerms(b []byte) ([]int, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n > wire.MaxSliceLen/4 {
		return nil, wire.ErrTooLarge
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.Uvarint())
	}
	return out, d.Err()
}

// EncodeDocIDs encodes a posting-list result (plain fixed-width form, used
// on the front-end wire where clients decode it).
func EncodeDocIDs(ids []uint32) []byte {
	e := wire.NewEncoder(4 + 4*len(ids))
	e.Uint32s(ids)
	return e.Bytes()
}

// DecodeDocIDs decodes a posting-list result.
func DecodeDocIDs(b []byte) ([]uint32, error) {
	d := wire.NewDecoder(b)
	ids := d.Uint32s()
	return ids, d.Err()
}

// EncodeCompressedDocIDs delta+varint compresses a sorted result list for
// the leaf→mid-tier hop (§III-C's compressed posting-list representation).
// Leaf results are sorted by construction (intersection preserves order and
// global IDs are monotone in local IDs under round-robin sharding only per
// shard — so the leaf sorts before compressing).
func EncodeCompressedDocIDs(ids []uint32) ([]byte, error) {
	return postlist.CompressIDs(ids)
}

// DecodeCompressedDocIDs reverses EncodeCompressedDocIDs.
func DecodeCompressedDocIDs(b []byte) ([]uint32, error) {
	return postlist.DecompressIDs(b)
}

// --- leaf ---

// LeafData is one shard of the corpus, indexed: localDocs[i] is the word
// list of the document whose global ID is globalID[i].
type LeafData struct {
	Index    *postlist.Index
	GlobalID []uint32
}

// ShardCorpus splits the corpus round-robin and builds one inverted index
// per shard.  stopTerms is the per-shard stop-list size.
func ShardCorpus(c *dataset.DocCorpus, n, stopTerms int) []LeafData {
	idLists := c.Shard(n)
	out := make([]LeafData, n)
	for s, ids := range idLists {
		docs := make([][]int, len(ids))
		gids := make([]uint32, len(ids))
		for local, global := range ids {
			docs[local] = c.Docs[global]
			gids[local] = uint32(global)
		}
		out[s] = LeafData{
			Index:    postlist.BuildIndex(docs, postlist.IndexConfig{StopTerms: stopTerms}),
			GlobalID: gids,
		}
	}
	return out
}

// intersect runs one multi-term intersection against the shard's index —
// the slice-returning form the vectorized batch handler uses so duplicate
// payloads can share one reply.
func intersect(data LeafData, payload []byte) ([]byte, error) {
	terms, err := DecodeTerms(payload)
	if err != nil {
		return nil, err
	}
	local := data.Index.Search(terms)
	global := make([]uint32, len(local))
	for i, id := range local {
		global[i] = data.GlobalID[id]
	}
	// Local IDs are sorted; under round-robin sharding the global
	// mapping is monotone, so the list stays sorted for compression.
	return EncodeCompressedDocIDs(global)
}

// leafScratch recycles a scalar intersection's decoded term list, mapped
// global-ID list, and compressed output across requests.
type leafScratch struct {
	terms  []int
	global []uint32
	comp   []byte
}

var leafScratches = sync.Pool{New: func() any { return new(leafScratch) }}

// intersectEncoded is intersect in streaming form: the request decodes into
// pooled scratch and the compressed posting list goes straight into the
// leaf's pooled reply encoder, so a steady-state scalar intersection
// allocates only what the index search itself does.
func intersectEncoded(data LeafData, payload []byte, reply *wire.Encoder) error {
	sc := leafScratches.Get().(*leafScratch)
	defer leafScratches.Put(sc)
	d := wire.NewDecoder(payload)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return err
	}
	if n > wire.MaxSliceLen/4 {
		return wire.ErrTooLarge
	}
	sc.terms = sc.terms[:0]
	for i := 0; i < n; i++ {
		sc.terms = append(sc.terms, int(d.Uvarint()))
	}
	if err := d.Err(); err != nil {
		return err
	}
	local := data.Index.Search(sc.terms)
	sc.global = sc.global[:0]
	for _, id := range local {
		sc.global = append(sc.global, data.GlobalID[id])
	}
	comp, err := postlist.CompressIDsInto(sc.comp[:0], sc.global)
	if err != nil {
		return err
	}
	sc.comp = comp
	reply.Raw(comp)
	return nil
}

// NewLeaf builds the Set Algebra leaf microservice over one indexed shard.
// Scalar intersections take the encoded zero-copy path; a batched carrier
// intersects each member's term set as one worker task, and identical term
// payloads within the batch — common when several front-end requests query
// trending terms at once — are intersected once and their compressed result
// shared.
func NewLeaf(data LeafData, opts *core.LeafOptions) *core.Leaf {
	return core.NewLeafEncoded(func(method string, payload []byte, reply *wire.Encoder) error {
		if method != MethodIntersect {
			return fmt.Errorf("setalgebra leaf: unknown method %q", method)
		}
		return intersectEncoded(data, payload, reply)
	}, core.LeafOptionsWithBatch(opts, func(methods []string, payloads [][]byte) ([][]byte, []error) {
		replies := make([][]byte, len(methods))
		errs := make([]error, len(methods))
		seen := make(map[string]int, len(methods))
		for i := range methods {
			if methods[i] != MethodIntersect {
				errs[i] = fmt.Errorf("setalgebra leaf: unknown method %q", methods[i])
				continue
			}
			if j, dup := seen[string(payloads[i])]; dup {
				replies[i], errs[i] = replies[j], errs[j]
				continue
			}
			replies[i], errs[i] = intersect(data, payloads[i])
			seen[string(payloads[i])] = i
		}
		return replies, errs
	}))
}

// --- mid-tier ---

// mergeScratch recycles the mid-tier union's working state: the flat slice
// the per-shard compressed replies decompress into, the per-shard segment
// offsets/views over it, and the merged output.
type mergeScratch struct {
	flat  []uint32
	offs  []int
	segs  [][]uint32
	union []uint32
}

var mergeScratches = sync.Pool{New: func() any { return new(mergeScratch) }}

// NewMidTier builds the Set Algebra mid-tier: forward terms to every leaf,
// union the intersected posting lists received.  Call ConnectLeaves then
// Start.
func NewMidTier(opts *core.Options) *core.MidTier {
	return core.NewMidTier(func(ctx *core.Ctx) {
		if ctx.Req.Method != MethodSearch {
			ctx.ReplyError(fmt.Errorf("setalgebra mid-tier: unknown method %q", ctx.Req.Method))
			return
		}
		if _, err := DecodeTerms(ctx.Req.Payload); err != nil {
			ctx.ReplyError(err)
			return
		}
		// Response path: each shard's compressed list decompresses
		// straight into one pooled flat slice (the replies may alias
		// pooled buffers recycled when this merge returns, so the IDs are
		// materialized here).  Every shard's list arrives sorted — the
		// leaves sort before compressing — so the union is a linear k-way
		// merge of the segments, not a re-sort of the concatenation.
		// Segment boundaries are recorded as offsets and sliced only after
		// every decompress, since appends may reallocate the flat slice.
		ctx.FanoutAll(MethodIntersect, ctx.Req.Payload, func(results []core.LeafResult) {
			sc := mergeScratches.Get().(*mergeScratch)
			defer mergeScratches.Put(sc)
			sc.flat = sc.flat[:0]
			sc.offs = sc.offs[:0]
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
				sc.offs = append(sc.offs, len(sc.flat))
				var err error
				sc.flat, err = postlist.DecompressIDsInto(sc.flat, r.Reply)
				if err != nil {
					ctx.ReplyError(err)
					return
				}
			}
			sc.segs = sc.segs[:0]
			for i, lo := range sc.offs {
				hi := len(sc.flat)
				if i+1 < len(sc.offs) {
					hi = sc.offs[i+1]
				}
				if lo < hi {
					sc.segs = append(sc.segs, sc.flat[lo:hi])
				}
			}
			sc.union = postlist.MergeSortedInto(sc.union[:0], sc.segs)
			e := wire.GetEncoder()
			e.Uint32s(sc.union)
			ctx.Reply(e.Bytes())
			wire.PutEncoder(e)
		})
	}, opts)
}

// --- front-end client ---

// Client is the front-end's typed handle on a Set Algebra deployment.
type Client struct {
	rpc *rpc.Client
}

// DialClient connects to the mid-tier at addr.
func DialClient(addr string, opts *rpc.ClientOptions) (*Client, error) {
	c, err := rpc.Dial(addr, opts)
	if err != nil {
		return nil, err
	}
	return &Client{rpc: c}, nil
}

// Search returns the global doc IDs containing all query terms (after each
// shard's stop-list filtering), sorted ascending.
func (c *Client) Search(terms []int) ([]uint32, error) {
	reply, err := c.rpc.Call(MethodSearch, EncodeTerms(terms))
	if err != nil {
		return nil, err
	}
	return DecodeDocIDs(reply)
}

// Go issues an asynchronous search (for load generators).
func (c *Client) Go(terms []int, done chan *rpc.Call) *rpc.Call {
	return c.rpc.Go(MethodSearch, EncodeTerms(terms), nil, done)
}

// GoSpan issues an asynchronous search carrying a span context, tracing the
// request end to end (used by sampling load generators).
func (c *Client) GoSpan(terms []int, sc trace.SpanContext, done chan *rpc.Call) *rpc.Call {
	return c.rpc.GoSpan(MethodSearch, EncodeTerms(terms), sc, nil, done)
}

// Close releases the connection.
func (c *Client) Close() error { return c.rpc.Close() }

// --- cluster ---

// ClusterConfig assembles an in-process Set Algebra deployment.
type ClusterConfig struct {
	// Corpus is the document corpus to serve.
	Corpus *dataset.DocCorpus
	// Shards is the leaf count (paper: 4-way).
	Shards int
	// StopTerms is the per-shard stop-list size (default 10).
	StopTerms int
	// LeafReplicas is the number of leaf processes serving each shard
	// (default 1).  With >1 the mid-tier load-balances, hedges, and
	// retries across the replicas of a shard.
	LeafReplicas int
	// MidTier and Leaf configure the framework tiers.
	MidTier core.Options
	Leaf    core.LeafOptions
}

// Cluster is a running Set Algebra deployment.
type Cluster struct {
	// Addr is the mid-tier address front-ends dial.
	Addr string
	// Shards exposes the indexed shards (tests verify stop-listing).
	Shards []LeafData

	leaves  []*core.Leaf
	midTier *core.MidTier
}

// StartCluster launches the deployment.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.StopTerms <= 0 {
		cfg.StopTerms = 10
	}
	shards := ShardCorpus(cfg.Corpus, cfg.Shards, cfg.StopTerms)
	cl := &Cluster{Shards: shards}
	replicas := cfg.LeafReplicas
	if replicas <= 0 {
		replicas = 1
	}
	leafGroups := make([][]string, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		for r := 0; r < replicas; r++ {
			leafOpts := cfg.Leaf
			leaf := NewLeaf(shards[s], &leafOpts)
			addr, err := leaf.Start("127.0.0.1:0")
			if err != nil {
				cl.Close()
				return nil, err
			}
			cl.leaves = append(cl.leaves, leaf)
			leafGroups[s] = append(leafGroups[s], addr)
		}
	}
	mtOpts := cfg.MidTier
	mt := NewMidTier(&mtOpts)
	if err := mt.ConnectLeafGroups(leafGroups); err != nil {
		cl.Close()
		return nil, err
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		mt.Close()
		cl.Close()
		return nil, err
	}
	cl.midTier = mt
	cl.Addr = addr
	return cl, nil
}

// MidTier exposes the deployment's framework mid-tier — the runtime
// topology admin surface (cluster.ServeAdmin on MidTier().Topology())
// hangs off it.  Set Algebra partitions posting lists per shard, so
// add/drain here is for failure drills, not data-aware resharding.
func (c *Cluster) MidTier() *core.MidTier { return c.midTier }

// Close tears the deployment down.
func (c *Cluster) Close() {
	if c.midTier != nil {
		c.midTier.Close()
	}
	for _, l := range c.leaves {
		l.Close()
	}
}
