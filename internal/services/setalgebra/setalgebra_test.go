package setalgebra

import (
	"sort"
	"strings"
	"testing"

	"musuite/internal/core"
	"musuite/internal/dataset"
)

func testCorpus(t *testing.T) *dataset.DocCorpus {
	t.Helper()
	return dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: 600, VocabSize: 1500, MeanDocLen: 70, Seed: 11,
	})
}

func startTestCluster(t *testing.T, corpus *dataset.DocCorpus) (*Cluster, *Client) {
	t.Helper()
	cl, err := StartCluster(ClusterConfig{
		Corpus:  corpus,
		Shards:  4,
		MidTier: core.Options{Workers: 2, ResponseThreads: 2},
		Leaf:    core.LeafOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	client, err := DialClient(cl.Addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cl, client
}

func TestCodecs(t *testing.T) {
	terms, err := DecodeTerms(EncodeTerms([]int{3, 0, 99999}))
	if err != nil || len(terms) != 3 || terms[2] != 99999 {
		t.Fatalf("terms codec: %v %v", terms, err)
	}
	empty, err := DecodeTerms(EncodeTerms(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty terms: %v %v", empty, err)
	}
	ids, err := DecodeDocIDs(EncodeDocIDs([]uint32{1, 2, 3}))
	if err != nil || len(ids) != 3 || ids[2] != 3 {
		t.Fatalf("ids codec: %v %v", ids, err)
	}
	if _, err := DecodeTerms([]byte{0xFF}); err == nil {
		t.Fatal("garbage terms accepted")
	}
}

func TestShardCorpusCoversAllDocs(t *testing.T) {
	corpus := testCorpus(t)
	shards := ShardCorpus(corpus, 4, 5)
	seen := make(map[uint32]bool)
	for _, sh := range shards {
		if sh.Index.Docs() != len(sh.GlobalID) {
			t.Fatal("index doc count mismatches global map")
		}
		for _, gid := range sh.GlobalID {
			if seen[gid] {
				t.Fatalf("doc %d in two shards", gid)
			}
			seen[gid] = true
		}
	}
	if len(seen) != len(corpus.Docs) {
		t.Fatalf("sharded %d of %d docs", len(seen), len(corpus.Docs))
	}
}

// referenceSearch computes ground truth: docs containing every query term,
// with terms stop-listed per shard exactly as the service does.
func referenceSearch(corpus *dataset.DocCorpus, shards []LeafData, terms []int) []uint32 {
	var out []uint32
	for _, sh := range shards {
		var live []int
		for _, term := range terms {
			if !sh.Index.IsStopWord(term) {
				live = append(live, term)
			}
		}
		if len(live) == 0 {
			continue
		}
		for local, gid := range sh.GlobalID {
			_ = local
			has := make(map[int]bool)
			for _, w := range corpus.Docs[gid] {
				has[w] = true
			}
			all := true
			for _, term := range live {
				if !has[term] {
					all = false
					break
				}
			}
			if all {
				out = append(out, gid)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestEndToEndMatchesReference(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startTestCluster(t, corpus)
	queries := corpus.Queries(60, 5, 13)
	for qi, q := range queries {
		got, err := client.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceSearch(corpus, cl.Shards, q)
		if len(got) != len(want) {
			t.Fatalf("query %d (%v): got %d docs want %d", qi, q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: doc %d is %d want %d", qi, i, got[i], want[i])
			}
		}
	}
}

func TestResultsSortedAndUnique(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	for _, q := range corpus.Queries(40, 4, 17) {
		got, err := client.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("unsorted/duplicate results: %v", got)
			}
		}
	}
}

func TestSingleTermQueryReturnsAllContainingDocs(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startTestCluster(t, corpus)
	// Pick a moderately common non-stop term from shard 0's index.
	term := -1
	for w := 0; w < corpus.VocabSize; w++ {
		stopped := false
		indexedSomewhere := false
		for _, sh := range cl.Shards {
			if sh.Index.IsStopWord(w) {
				stopped = true
			}
			if sh.Index.Postings(w) != nil {
				indexedSomewhere = true
			}
		}
		if !stopped && indexedSomewhere {
			term = w
			break
		}
	}
	if term < 0 {
		t.Skip("no suitable term")
	}
	got, err := client.Search([]int{term})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceSearch(corpus, cl.Shards, []int{term})
	if len(got) != len(want) {
		t.Fatalf("got %d want %d", len(got), len(want))
	}
}

func TestEmptyAndStopOnlyQueries(t *testing.T) {
	corpus := testCorpus(t)
	cl, client := startTestCluster(t, corpus)
	got, err := client.Search(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty query: %v %v", got, err)
	}
	// Find a term stop-listed on every shard (the globally hottest word
	// is typically stopped everywhere).
	for w := 0; w < corpus.VocabSize; w++ {
		all := true
		for _, sh := range cl.Shards {
			if !sh.Index.IsStopWord(w) {
				all = false
				break
			}
		}
		if all {
			got, err := client.Search([]int{w})
			if err != nil || len(got) != 0 {
				t.Fatalf("stop-only query: %v %v", got, err)
			}
			return
		}
	}
	t.Log("no universally stopped term; skipping stop-only case")
}

func TestUnknownTermMatchesNothing(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	got, err := client.Search([]int{corpus.VocabSize + 100})
	if err != nil || len(got) != 0 {
		t.Fatalf("unknown term: %v %v", got, err)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	if _, err := client.rpc.Call("setalgebra.phrase", nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err=%v", err)
	}
}

func TestMalformedQueryRejected(t *testing.T) {
	corpus := testCorpus(t)
	_, client := startTestCluster(t, corpus)
	if _, err := client.rpc.Call(MethodSearch, []byte{0xFF}); err == nil {
		t.Fatal("malformed query accepted")
	}
}
