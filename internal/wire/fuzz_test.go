package wire

import (
	"bytes"
	"testing"
)

// FuzzWireDecoder drives the Decoder through an arbitrary op sequence over
// arbitrary input.  The contract under test is totality: no input and no
// accessor order may panic or allocate out-of-bounds views — a failed read
// sets Err() and yields zero values, nothing more.  The ops byte string
// doubles as the fuzzer's steering wheel: each byte selects the next
// accessor, so coverage feedback can explore interleavings (e.g. a Uvarint
// that leaves the offset mid-varint before a BytesView).
func FuzzWireDecoder(f *testing.F) {
	// A well-formed message touching every field shape.
	var e Encoder
	e.Uint8(7)
	e.Bool(true)
	e.Uint16(512)
	e.Uint32(1 << 20)
	e.Uint64(1 << 40)
	e.Uvarint(300)
	e.Float32(3.5)
	e.Float64(-2.25)
	e.String("method")
	e.BytesField([]byte{1, 2, 3})
	e.Float32s([]float32{1, 2})
	e.Uint32s([]uint32{9, 8})
	e.Uint64s([]uint64{5})
	f.Add(e.Bytes(), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte{}, []byte{5, 5, 5})
	// Pathological uvarint: max shift then length-prefix lies.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 1}, []byte{5, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte, ops []byte) {
		d := NewDecoder(data)
		var scratchF []float32
		var scratchU32 []uint32
		var scratchU64 []uint64
		for _, op := range ops {
			switch op % 14 {
			case 0:
				d.Uint8()
			case 1:
				d.Bool()
			case 2:
				d.Uint16()
			case 3:
				d.Uint32()
			case 4:
				d.Uint64()
			case 5:
				d.Uvarint()
			case 6:
				d.Float32()
			case 7:
				d.Float64()
			case 8:
				_ = d.String()
			case 9:
				if v := d.BytesView(); len(v) > len(data) {
					t.Fatalf("BytesView returned %d bytes from a %d-byte input", len(v), len(data))
				}
			case 10:
				scratchF = d.Float32sInto(scratchF[:0])
			case 11:
				scratchU32 = d.Uint32sInto(scratchU32[:0])
			case 12:
				scratchU64 = d.Uint64sInto(scratchU64[:0])
			case 13:
				d.BytesField()
			}
		}
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatalf("negative Remaining() with nil Err()")
		}
	})
}

// FuzzEncodeDecodeRoundTrip pins the codec pair: anything the Encoder emits
// the Decoder must read back verbatim.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint64(300), []byte("payload"), "method")
	f.Add(uint64(0), []byte{}, "")
	f.Fuzz(func(t *testing.T, v uint64, blob []byte, s string) {
		var e Encoder
		e.Uvarint(v)
		e.BytesField(blob)
		e.String(s)
		d := NewDecoder(e.Bytes())
		if got := d.Uvarint(); got != v {
			t.Fatalf("Uvarint: got %d, want %d", got, v)
		}
		if got := d.BytesField(); !bytes.Equal(got, blob) {
			t.Fatalf("BytesField: got %q, want %q", got, blob)
		}
		if got := d.String(); got != s {
			t.Fatalf("String: got %q, want %q", got, s)
		}
		if d.Err() != nil {
			t.Fatalf("round trip error: %v", d.Err())
		}
	})
}
