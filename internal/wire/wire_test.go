package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	e := NewEncoder(64)
	e.Uint8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(0xBEEF)
	e.Uint32(0xDEADBEEF)
	e.Uint64(0x0123456789ABCDEF)
	e.Int64(-42)
	e.Uvarint(0)
	e.Uvarint(127)
	e.Uvarint(128)
	e.Uvarint(math.MaxUint64)
	e.Float32(3.5)
	e.Float64(-2.25)

	d := NewDecoder(e.Bytes())
	if d.Uint8() != 0xAB || !d.Bool() || d.Bool() {
		t.Error("uint8/bool mismatch")
	}
	if d.Uint16() != 0xBEEF || d.Uint32() != 0xDEADBEEF || d.Uint64() != 0x0123456789ABCDEF {
		t.Error("fixed ints mismatch")
	}
	if d.Int64() != -42 {
		t.Error("int64 mismatch")
	}
	if d.Uvarint() != 0 || d.Uvarint() != 127 || d.Uvarint() != 128 || d.Uvarint() != math.MaxUint64 {
		t.Error("uvarint mismatch")
	}
	if d.Float32() != 3.5 || d.Float64() != -2.25 {
		t.Error("float mismatch")
	}
	if d.Err() != nil {
		t.Fatalf("err=%v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining=%d", d.Remaining())
	}
}

func TestRoundTripSlices(t *testing.T) {
	e := NewEncoder(0)
	e.BytesField([]byte{1, 2, 3})
	e.String("hello μSuite")
	e.Float32s([]float32{1.5, -2.5, 0})
	e.Uint64s([]uint64{0, 1, math.MaxUint64})
	e.Uint32s([]uint32{7, 8})
	e.Strings([]string{"a", "", "ccc"})

	d := NewDecoder(e.Bytes())
	b := d.BytesField()
	if len(b) != 3 || b[2] != 3 {
		t.Errorf("bytes=%v", b)
	}
	if s := d.String(); s != "hello μSuite" {
		t.Errorf("string=%q", s)
	}
	f := d.Float32s()
	if len(f) != 3 || f[1] != -2.5 {
		t.Errorf("float32s=%v", f)
	}
	u := d.Uint64s()
	if len(u) != 3 || u[2] != math.MaxUint64 {
		t.Errorf("uint64s=%v", u)
	}
	u32 := d.Uint32s()
	if len(u32) != 2 || u32[0] != 7 {
		t.Errorf("uint32s=%v", u32)
	}
	ss := d.Strings()
	if len(ss) != 3 || ss[1] != "" || ss[2] != "ccc" {
		t.Errorf("strings=%v", ss)
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestDecoderCopiesBytes(t *testing.T) {
	e := NewEncoder(0)
	e.BytesField([]byte{9, 9, 9})
	raw := e.Bytes()
	d := NewDecoder(raw)
	b := d.BytesField()
	raw[1] = 0 // mutate the backing buffer
	if b[0] != 9 {
		t.Fatal("BytesField aliases the input buffer")
	}
}

func TestTruncation(t *testing.T) {
	e := NewEncoder(0)
	e.Uint64(12345)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.Uint64()
		if d.Err() != ErrTruncated {
			t.Fatalf("cut=%d err=%v want ErrTruncated", cut, d.Err())
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{})
	_ = d.Uint32()
	if d.Err() == nil {
		t.Fatal("no error on empty read")
	}
	// All further reads return zero values without panicking.
	if d.Uint64() != 0 || d.String() != "" || d.Float32s() != nil {
		t.Fatal("post-error reads returned data")
	}
}

func TestOversizedLengthPrefix(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(uint64(MaxSliceLen) + 1)
	d := NewDecoder(e.Bytes())
	if d.BytesField() != nil || d.Err() != ErrTooLarge {
		t.Fatalf("oversized prefix not rejected: %v", d.Err())
	}
}

func TestMalformedVarint(t *testing.T) {
	// 10 continuation bytes exceed 64 bits.
	buf := make([]byte, 11)
	for i := range buf {
		buf[i] = 0xFF
	}
	d := NewDecoder(buf)
	_ = d.Uvarint()
	if d.Err() != ErrTooLarge {
		t.Fatalf("err=%v", d.Err())
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(8)
	e.Uint64(1)
	e.Reset()
	if e.Len() != 0 {
		t.Fatal("reset failed")
	}
	e.Uint8(5)
	if e.Len() != 1 || e.Bytes()[0] != 5 {
		t.Fatal("post-reset encode broken")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(u8 uint8, u16 uint16, u32 uint32, u64 uint64, i int64, s string, bs []byte, fs []float32, us []uint64) bool {
		e := NewEncoder(0)
		e.Uint8(u8)
		e.Uint16(u16)
		e.Uint32(u32)
		e.Uint64(u64)
		e.Int64(i)
		e.Uvarint(u64)
		e.String(s)
		e.BytesField(bs)
		e.Float32s(fs)
		e.Uint64s(us)

		d := NewDecoder(e.Bytes())
		if d.Uint8() != u8 || d.Uint16() != u16 || d.Uint32() != u32 || d.Uint64() != u64 {
			return false
		}
		if d.Int64() != i || d.Uvarint() != u64 || d.String() != s {
			return false
		}
		gb := d.BytesField()
		if len(gb) != len(bs) {
			return false
		}
		for k := range bs {
			if gb[k] != bs[k] {
				return false
			}
		}
		gf := d.Float32s()
		if len(gf) != len(fs) {
			return false
		}
		for k := range fs {
			// NaN compares unequal; compare bit patterns instead.
			if math.Float32bits(gf[k]) != math.Float32bits(fs[k]) {
				return false
			}
		}
		gu := d.Uint64s()
		if len(gu) != len(us) {
			return false
		}
		for k := range us {
			if gu[k] != us[k] {
				return false
			}
		}
		return d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		_ = d.Uvarint()
		_ = d.String()
		_ = d.Float32s()
		_ = d.Uint64s()
		_ = d.Uint32()
		_ = d.BytesField()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode1KVector(b *testing.B) {
	v := make([]float32, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(4100)
		e.Float32s(v)
	}
}

func BenchmarkDecode1KVector(b *testing.B) {
	v := make([]float32, 1024)
	e := NewEncoder(4100)
	e.Float32s(v)
	raw := e.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(raw)
		d.Float32s()
	}
}
