// Package wire implements the compact binary encoding used by the μSuite
// RPC substrate and by every service's request/response messages.  It plays
// the role protobuf serialization plays under gRPC: explicit, deterministic,
// allocation-conscious byte-level encoding with no reflection.
//
// All multi-byte integers are little-endian.  Variable-length integers use
// the unsigned LEB128 scheme (like encoding/binary's Uvarint).  Strings,
// byte slices, and typed slices are length-prefixed with a uvarint.
package wire

import (
	"errors"
	"math"
	"sync"
)

// ErrTruncated reports a decode past the end of the buffer.
var ErrTruncated = errors.New("wire: truncated message")

// ErrTooLarge reports a length prefix exceeding sanity limits.
var ErrTooLarge = errors.New("wire: length prefix too large")

// MaxSliceLen bounds any decoded slice length as a corruption guard.
const MaxSliceLen = 1 << 28

// Encoder appends encoded values to a byte slice.  The zero value is ready
// to use; Bytes returns the accumulated encoding.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// encPool recycles encoders across requests.  Handlers on the hot path
// encode every reply into a pooled encoder and return it once the bytes
// have been consumed (the RPC layer copies the reply into its write buffer
// synchronously), so steady-state encoding allocates nothing.
var encPool = sync.Pool{
	New: func() any { return &Encoder{buf: make([]byte, 0, 512)} },
}

// GetEncoder returns a reset pooled encoder.  Pair with PutEncoder once the
// encoded bytes are no longer referenced.
func GetEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder recycles e.  The caller must not touch e or any slice obtained
// from e.Bytes() afterwards.  Oversized scratch is dropped rather than
// pooled so one giant reply does not pin its buffer forever.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > 1<<20 {
		return
	}
	encPool.Put(e)
}

// Bytes returns the encoded buffer.  The slice aliases internal storage and
// is invalidated by further writes.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder, retaining capacity.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint8 appends one byte.
func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}

// Uint16 appends a little-endian uint16.
func (e *Encoder) Uint16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}

// Uint32 appends a little-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Uint64 appends a little-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Int64 appends a little-endian int64 (two's complement).
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Uvarint appends an unsigned LEB128 varint.
func (e *Encoder) Uvarint(v uint64) {
	for v >= 0x80 {
		e.buf = append(e.buf, byte(v)|0x80)
		v >>= 7
	}
	e.buf = append(e.buf, byte(v))
}

// Float32 appends an IEEE-754 float32.
func (e *Encoder) Float32(v float32) { e.Uint32(math.Float32bits(v)) }

// Float64 appends an IEEE-754 float64.
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw appends b with no length prefix — for payloads whose framing is
// already part of their own encoding (e.g. compressed posting lists).
func (e *Encoder) Raw(b []byte) {
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Float32s appends a length-prefixed []float32.
func (e *Encoder) Float32s(v []float32) {
	e.Uvarint(uint64(len(v)))
	for _, f := range v {
		e.Float32(f)
	}
}

// Uint64s appends a length-prefixed []uint64.
func (e *Encoder) Uint64s(v []uint64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Uint64(x)
	}
}

// Uint32s appends a length-prefixed []uint32.
func (e *Encoder) Uint32s(v []uint32) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Uint32(x)
	}
}

// Strings appends a length-prefixed []string.
func (e *Encoder) Strings(v []string) {
	e.Uvarint(uint64(len(v)))
	for _, s := range v {
		e.String(s)
	}
}

// Decoder consumes encoded values from a byte slice.  Decode errors are
// sticky: after the first error every subsequent read returns the zero value
// and Err reports the failure, so callers may decode a whole message and
// check once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over b.  The decoder does not copy b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Reset repoints d at b and clears any sticky error, letting callers keep a
// decoder on the stack (or in scratch) instead of allocating one per message.
func (d *Decoder) Reset(b []byte) {
	d.buf, d.off, d.err = b, 0, nil
}

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(ErrTruncated)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint8 reads one byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// Uint16 reads a little-endian uint16.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// Uint32 reads a little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Uint64 reads a little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Int64 reads a little-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Uvarint reads an unsigned LEB128 varint.
func (d *Decoder) Uvarint() uint64 {
	var v uint64
	var shift uint
	for {
		if shift > 63 {
			d.fail(ErrTooLarge)
			return 0
		}
		b := d.take(1)
		if b == nil {
			return 0
		}
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v
		}
		shift += 7
	}
}

// Float32 reads an IEEE-754 float32.
func (d *Decoder) Float32() float32 { return math.Float32frombits(d.Uint32()) }

// Float64 reads an IEEE-754 float64.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

func (d *Decoder) sliceLen() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > MaxSliceLen {
		d.fail(ErrTooLarge)
		return 0
	}
	return int(n)
}

// BytesField reads a length-prefixed byte slice.  The result is a copy.
func (d *Decoder) BytesField() []byte {
	n := d.sliceLen()
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// BytesView reads a length-prefixed byte field without copying: the result
// aliases the decoder's underlying buffer and is valid only as long as that
// buffer is.  The hot-path accessor for decode-in-place.
func (d *Decoder) BytesView() []byte {
	return d.take(d.sliceLen())
}

// prefixedLen reads a uvarint element count and validates that width×n
// bytes actually remain, so a corrupt length prefix fails with ErrTruncated
// before any allocation is sized from it.
func (d *Decoder) prefixedLen(width int) int {
	n := d.sliceLen()
	if d.err != nil {
		return 0
	}
	if n*width > d.Remaining() {
		d.fail(ErrTruncated)
		return 0
	}
	return n
}

// Float32sInto reads a length-prefixed []float32 into dst, reusing its
// capacity.  It returns the filled slice (which may be a new allocation when
// dst is too small) — the no-copy decode path for request scratch.
func (d *Decoder) Float32sInto(dst []float32) []float32 {
	n := d.prefixedLen(4)
	if d.err != nil || n == 0 {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = d.Float32()
	}
	return dst
}

// Uint32sInto reads a length-prefixed []uint32 into dst, reusing capacity.
func (d *Decoder) Uint32sInto(dst []uint32) []uint32 {
	n := d.prefixedLen(4)
	if d.err != nil || n == 0 {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]uint32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = d.Uint32()
	}
	return dst
}

// Uint64sInto reads a length-prefixed []uint64 into dst, reusing capacity.
func (d *Decoder) Uint64sInto(dst []uint64) []uint64 {
	n := d.prefixedLen(8)
	if d.err != nil || n == 0 {
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = d.Uint64()
	}
	return dst
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.sliceLen()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Float32s reads a length-prefixed []float32.
func (d *Decoder) Float32s() []float32 {
	n := d.prefixedLen(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = d.Float32()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Uint64s reads a length-prefixed []uint64.
func (d *Decoder) Uint64s() []uint64 {
	n := d.prefixedLen(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uint64()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Uint32s reads a length-prefixed []uint32.
func (d *Decoder) Uint32s() []uint32 {
	n := d.prefixedLen(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = d.Uint32()
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Strings reads a length-prefixed []string.  Each string costs at least one
// length byte, so the element count is validated against Remaining before
// the slice is sized.
func (d *Decoder) Strings() []string {
	n := d.prefixedLen(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.String()
		if d.err != nil {
			return nil
		}
	}
	return out
}
