package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 {
		t.Fatalf("empty count = %d", h.Count())
	}
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile = %v", h.Quantile(0.5))
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty summary not zero: %v %v %v", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(100 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := h.Quantile(q)
		if relErr(got, 100*time.Microsecond) > 0.02 {
			t.Errorf("q=%v got %v want ~100µs", q, got)
		}
	}
	if h.Min() != 100*time.Microsecond || h.Max() != 100*time.Microsecond {
		t.Errorf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func relErr(got, want time.Duration) float64 {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform between 1µs and 100ms: the microservice regime.
		v := time.Duration(math.Exp(rng.Float64()*math.Log(1e5)) * 1e3)
		h.Record(v)
		samples = append(samples, v)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		exact := ExactQuantile(samples, q)
		approx := h.Quantile(q)
		if relErr(approx, exact) > 0.05 {
			t.Errorf("q=%v exact=%v approx=%v err=%.3f", q, exact, approx, relErr(approx, exact))
		}
	}
}

func TestHistogramMeanMinMax(t *testing.T) {
	h := NewHistogram()
	var sum time.Duration
	for i := 1; i <= 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		h.Record(d)
		sum += d
	}
	wantMean := sum / 1000
	if relErr(h.Mean(), wantMean) > 0.001 {
		t.Errorf("mean=%v want %v", h.Mean(), wantMean)
	}
	if h.Min() != time.Microsecond {
		t.Errorf("min=%v", h.Min())
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("max=%v", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * time.Millisecond)
	if h.Count() != 1 {
		t.Fatalf("count=%d", h.Count())
	}
	if h.Max() != 0 {
		t.Fatalf("negative not clamped: max=%v", h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(time.Duration(i+1) * time.Microsecond)
		b.Record(time.Duration(i+1) * time.Millisecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count=%d", a.Count())
	}
	if a.Min() != time.Microsecond {
		t.Errorf("merged min=%v", a.Min())
	}
	if a.Max() != 100*time.Millisecond {
		t.Errorf("merged max=%v", a.Max())
	}
	// Median should fall at the boundary between the two populations.
	med := a.Quantile(0.5)
	if med < 90*time.Microsecond || med > 2*time.Millisecond {
		t.Errorf("merged median=%v", med)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatalf("reset failed: count=%d max=%v", h.Count(), h.Max())
	}
	h.Record(2 * time.Millisecond)
	if relErr(h.Quantile(0.5), 2*time.Millisecond) > 0.02 {
		t.Fatalf("post-reset quantile=%v", h.Quantile(0.5))
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(1e6)) * time.Nanosecond)
			}
		}(int64(g))
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count=%d want %d", h.Count(), goroutines*per)
	}
}

func TestBucketMonotonic(t *testing.T) {
	// Bucket index must be non-decreasing in the value, and bucketLow must
	// invert bucketIndex to within one bucket.
	prev := -1
	for v := int64(1); v < int64(1e9); v = v*5/4 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		lo := bucketLow(idx)
		if lo > v {
			t.Fatalf("bucketLow(%d)=%d exceeds value %d", idx, lo, v)
		}
		if float64(v-lo)/float64(v) > 0.04 && v > histSub {
			t.Fatalf("quantization error too large at %d: low=%d", v, lo)
		}
	}
}

func TestExactQuantileProperties(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, r := range raw {
			samples[i] = time.Duration(r % 1e9)
		}
		sorted := make([]time.Duration, len(samples))
		copy(sorted, samples)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		// Quantile must be an actual sample, bounded by min/max, monotone in q.
		q50 := ExactQuantile(samples, 0.5)
		q99 := ExactQuantile(samples, 0.99)
		if q50 < sorted[0] || q99 > sorted[len(sorted)-1] {
			return false
		}
		return q50 <= q99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExactQuantileNearestRank(t *testing.T) {
	samples := []time.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0, 10}, {0.1, 10}, {0.5, 50}, {0.95, 100}, {1, 100}, {0.25, 30},
	}
	for _, c := range cases {
		if got := ExactQuantile(samples, c.q); got != c.want {
			t.Errorf("q=%v got %v want %v", c.q, got, c.want)
		}
	}
}

func TestExactQuantileDoesNotMutate(t *testing.T) {
	samples := []time.Duration{50, 10, 40, 20, 30}
	ExactQuantile(samples, 0.5)
	want := []time.Duration{50, 10, 40, 20, 30}
	for i := range samples {
		if samples[i] != want[i] {
			t.Fatalf("input mutated at %d: %v", i, samples)
		}
	}
}

func TestViolinSummary(t *testing.T) {
	samples := make([]time.Duration, 1000)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Microsecond
	}
	v := NewViolin("test", samples, 16)
	if v.Count != 1000 {
		t.Fatalf("count=%d", v.Count)
	}
	if v.Median != 500*time.Microsecond {
		t.Errorf("median=%v", v.Median)
	}
	if v.P99 != 990*time.Microsecond {
		t.Errorf("p99=%v", v.P99)
	}
	if v.Min != time.Microsecond || v.Max != 1000*time.Microsecond {
		t.Errorf("min/max=%v/%v", v.Min, v.Max)
	}
	if len(v.Density) != 16 {
		t.Errorf("density points=%d", len(v.Density))
	}
	// Density must be normalized to peak 1.
	peak := 0.0
	for _, p := range v.Density {
		if p.Density > peak {
			peak = p.Density
		}
	}
	if math.Abs(peak-1) > 1e-9 {
		t.Errorf("density peak=%v", peak)
	}
	if v.String() == "" {
		t.Error("empty String()")
	}
}

func TestViolinEmpty(t *testing.T) {
	v := NewViolin("empty", nil, 8)
	if v.Count != 0 || v.Median != 0 || len(v.Density) != 0 {
		t.Fatalf("non-zero violin for empty input: %+v", v)
	}
}

func TestViolinOrderInvariance(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]time.Duration, len(raw))
		for i, r := range raw {
			a[i] = time.Duration(r) + 1
		}
		b := make([]time.Duration, len(a))
		copy(b, a)
		// Shuffle b deterministically.
		rng := rand.New(rand.NewSource(1))
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		va := NewViolin("a", a, 0)
		vb := NewViolin("b", b, 0)
		return va.Median == vb.Median && va.P99 == vb.P99 && va.Min == vb.Min && va.Max == vb.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTrials(t *testing.T) {
	var tr Trials
	if tr.Mean() != 0 || tr.StdDev() != 0 {
		t.Fatal("empty trials not zero")
	}
	for _, v := range []float64{10, 12, 8, 11, 9} {
		tr.Add(v)
	}
	if tr.N() != 5 {
		t.Fatalf("n=%d", tr.N())
	}
	if math.Abs(tr.Mean()-10) > 1e-9 {
		t.Errorf("mean=%v", tr.Mean())
	}
	want := math.Sqrt(2.5) // sample variance of {10,12,8,11,9} is 2.5
	if math.Abs(tr.StdDev()-want) > 1e-9 {
		t.Errorf("stddev=%v want %v", tr.StdDev(), want)
	}
	if math.Abs(tr.RelStdDev()-want/10) > 1e-9 {
		t.Errorf("relstddev=%v", tr.RelStdDev())
	}
}

func TestTrialsSingle(t *testing.T) {
	var tr Trials
	tr.Add(7)
	if tr.Mean() != 7 || tr.StdDev() != 0 {
		t.Fatalf("single trial mean=%v std=%v", tr.Mean(), tr.StdDev())
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.Record(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count=%d", s.Count)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(rng.Intn(1e8)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Quantile(0.99)
	}
}
