// Package stats provides the measurement machinery used throughout μSuite:
// log-bucketed latency histograms, exact percentile computation over raw
// samples, violin-plot summaries, and multi-trial aggregation.
//
// The paper reports latency distributions as violin plots (median bar plus
// higher-order tail whiskers) and aggregates every measurement over five
// trials.  This package reproduces both mechanisms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram is a concurrency-safe latency histogram with logarithmically
// spaced sub-bucketed bins, in the spirit of HdrHistogram.  It records
// durations between 1ns and ~1h with a relative error bounded by
// 1/subBuckets, using O(1) memory independent of the sample count.
type Histogram struct {
	mu         sync.Mutex
	counts     []uint64
	totalCount uint64
	sum        int64 // nanoseconds; may saturate only after ~292 years of samples
	min        int64
	max        int64
}

const (
	// histSubBits fixes the per-octave resolution: 2^histSubBits linear
	// sub-buckets inside every power-of-two magnitude, giving <1.6%
	// relative quantization error.
	histSubBits = 6
	histSub     = 1 << histSubBits
	// histBuckets covers magnitudes 2^0 .. 2^62 nanoseconds.
	histOctaves = 63
)

// NewHistogram returns an empty histogram ready for concurrent use.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, histOctaves*histSub),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps a positive nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	// Find the octave: position of the highest set bit.
	oct := 63 - leadingZeros64(uint64(v))
	if oct < histSubBits {
		// Small values land in the linear region: one bucket per ns
		// until values exceed histSub.
		return int(v)
	}
	// Within the octave, take the top histSubBits bits after the leader.
	sub := (v >> (uint(oct) - histSubBits)) & (histSub - 1)
	return (oct-histSubBits+1)*histSub + int(sub)
}

// bucketLow returns the lower bound of bucket i in nanoseconds.
func bucketLow(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	oct := i/histSub + histSubBits - 1
	sub := int64(i % histSub)
	return (int64(1) << uint(oct)) + (sub << (uint(oct) - histSubBits))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	h.mu.Lock()
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.totalCount++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.totalCount
}

// Mean reports the arithmetic mean of recorded durations.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.totalCount == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.totalCount))
}

// Min reports the smallest recorded duration (0 if empty).
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.totalCount == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max reports the largest recorded duration.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns the approximate q-quantile (0 ≤ q ≤ 1) of the recorded
// durations.  Quantization error is bounded by the sub-bucket width.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.totalCount == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.totalCount)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max)
}

// Merge folds other into h.  Both histograms remain usable.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := make([]uint64, len(other.counts))
	copy(counts, other.counts)
	oTotal, oSum, oMin, oMax := other.totalCount, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.totalCount += oTotal
	h.sum += oSum
	if oTotal > 0 {
		if oMin < h.min {
			h.min = oMin
		}
		if oMax > h.max {
			h.max = oMax
		}
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.totalCount = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Snapshot captures the distribution summary commonly reported by the paper:
// min / p25 / median / p75 / p90 / p99 / p99.9 / max / mean / count.
type Snapshot struct {
	Count  uint64
	Min    time.Duration
	P25    time.Duration
	Median time.Duration
	P75    time.Duration
	P90    time.Duration
	P99    time.Duration
	P999   time.Duration
	Max    time.Duration
	Mean   time.Duration
}

// Snapshot returns the current distribution summary.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:  h.Count(),
		Min:    h.Min(),
		P25:    h.Quantile(0.25),
		Median: h.Quantile(0.50),
		P75:    h.Quantile(0.75),
		P90:    h.Quantile(0.90),
		P99:    h.Quantile(0.99),
		P999:   h.Quantile(0.999),
		Max:    h.Max(),
		Mean:   h.Mean(),
	}
}

// String renders the snapshot on one line, suitable for experiment tables.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v p99.9=%v max=%v mean=%v",
		s.Count, s.Min, s.Median, s.P90, s.P99, s.P999, s.Max, s.Mean)
}

// ExactQuantile computes the q-quantile of raw duration samples using the
// nearest-rank definition.  It sorts a copy; the input is not modified.
func ExactQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	cp := make([]time.Duration, len(samples))
	copy(cp, samples)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return sortedQuantile(cp, q)
}

// sortedQuantile is the nearest-rank quantile over an already sorted slice.
func sortedQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
