package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Violin summarizes a latency distribution the way the paper's Fig. 10 and
// Figs. 15–18 violin plots do: a median bar in the violin center, quartile
// body, and a thin tail whisker up to the higher-order percentiles, plus a
// kernel-density outline sampled at fixed points.
type Violin struct {
	Label   string
	Count   int
	Min     time.Duration
	P25     time.Duration
	Median  time.Duration
	P75     time.Duration
	P99     time.Duration
	P999    time.Duration
	Max     time.Duration
	Density []DensityPoint
}

// DensityPoint is one sample of the violin outline: the latency value and
// the relative density (0..1) of observations near it.
type DensityPoint struct {
	At      time.Duration
	Density float64
}

// NewViolin builds a violin summary from raw samples.  densityPoints controls
// the outline resolution (16 is plenty for terminal rendering; 0 skips the
// outline entirely).
func NewViolin(label string, samples []time.Duration, densityPoints int) Violin {
	v := Violin{Label: label, Count: len(samples)}
	if len(samples) == 0 {
		return v
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	v.Min = sorted[0]
	v.Max = sorted[len(sorted)-1]
	v.P25 = sortedQuantile(sorted, 0.25)
	v.Median = sortedQuantile(sorted, 0.50)
	v.P75 = sortedQuantile(sorted, 0.75)
	v.P99 = sortedQuantile(sorted, 0.99)
	v.P999 = sortedQuantile(sorted, 0.999)

	if densityPoints > 0 {
		v.Density = densityOutline(sorted, densityPoints)
	}
	return v
}

// densityOutline estimates relative density with a simple histogram kernel
// over log-spaced evaluation points between min and max.
func densityOutline(sorted []time.Duration, points int) []DensityPoint {
	lo, hi := float64(sorted[0]), float64(sorted[len(sorted)-1])
	if lo <= 0 {
		lo = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	out := make([]DensityPoint, points)
	maxD := 0.0
	for i := 0; i < points; i++ {
		// Bin i covers a log-space slice [center-w/2, center+w/2].
		f0 := logLo + (logHi-logLo)*float64(i)/float64(points)
		f1 := logLo + (logHi-logLo)*float64(i+1)/float64(points)
		lo0, hi0 := time.Duration(math.Exp(f0)), time.Duration(math.Exp(f1))
		n := countRange(sorted, lo0, hi0)
		d := float64(n)
		out[i] = DensityPoint{At: time.Duration(math.Exp((f0 + f1) / 2)), Density: d}
		if d > maxD {
			maxD = d
		}
	}
	if maxD > 0 {
		for i := range out {
			out[i].Density /= maxD
		}
	}
	return out
}

// countRange counts sorted samples in [lo, hi).
func countRange(sorted []time.Duration, lo, hi time.Duration) int {
	i := sort.Search(len(sorted), func(k int) bool { return sorted[k] >= lo })
	j := sort.Search(len(sorted), func(k int) bool { return sorted[k] >= hi })
	return j - i
}

// String renders the violin as a compact ASCII sketch: the density outline
// row and the five-number summary, mirroring the information content of the
// paper's violin plots in a terminal.
func (v Violin) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s n=%-7d ", v.Label, v.Count)
	if len(v.Density) > 0 {
		glyphs := " .:-=+*#%@"
		for _, p := range v.Density {
			g := int(p.Density * float64(len(glyphs)-1))
			b.WriteByte(glyphs[g])
		}
		b.WriteByte(' ')
	}
	fmt.Fprintf(&b, "p50=%v p99=%v p99.9=%v max=%v", v.Median, v.P99, v.P999, v.Max)
	return b.String()
}

// Trials aggregates a scalar measurement over repeated runs, mirroring the
// paper's "average measurements over five trials" methodology.
type Trials struct {
	values []float64
}

// Add records one trial's value.
func (t *Trials) Add(v float64) { t.values = append(t.values, v) }

// N reports the number of trials recorded.
func (t *Trials) N() int { return len(t.values) }

// Mean reports the mean over trials (0 if none).
func (t *Trials) Mean() float64 {
	if len(t.values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range t.values {
		s += v
	}
	return s / float64(len(t.values))
}

// StdDev reports the sample standard deviation over trials.
func (t *Trials) StdDev() float64 {
	n := len(t.values)
	if n < 2 {
		return 0
	}
	m := t.Mean()
	s := 0.0
	for _, v := range t.values {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// RelStdDev reports StdDev/Mean, a unitless stability indicator.
func (t *Trials) RelStdDev() float64 {
	m := t.Mean()
	if m == 0 {
		return 0
	}
	return t.StdDev() / m
}
