// Package spooky implements Bob Jenkins' SpookyHash V2, the 128-bit
// non-cryptographic hash that μSuite's Router uses to distribute keys
// uniformly across destination memcached leaves.
//
// The paper picks SpookyHash because it (1) hashes quickly, (2) accepts any
// key type (it hashes raw bytes), and (3) has a low collision rate.  This is
// a from-scratch Go port of the published V2 algorithm: the "short" form for
// messages under 192 bytes and the 12-variable "long" form above that.
package spooky

import "math/bits"

const (
	// spookyConst is sc_const: a fractional-golden-ratio-ish constant that
	// is odd and not particularly regular, used to initialize idle state.
	spookyConst uint64 = 0xdeadbeefdeadbeef

	numVars   = 12
	blockSize = numVars * 8 // 96-byte long-form blocks
	bufSize   = 2 * blockSize
)

// Hash128 computes the 128-bit SpookyHash V2 of message with the given
// 128-bit seed, returned as two 64-bit halves.
func Hash128(message []byte, seed1, seed2 uint64) (uint64, uint64) {
	if len(message) < bufSize {
		return shortHash(message, seed1, seed2)
	}
	return longHash(message, seed1, seed2)
}

// Hash64 computes a 64-bit hash (the first half of Hash128).
func Hash64(message []byte, seed uint64) uint64 {
	h1, _ := Hash128(message, seed, seed)
	return h1
}

// Hash32 computes a 32-bit hash (the low bits of Hash64).
func Hash32(message []byte, seed uint32) uint32 {
	return uint32(Hash64(message, uint64(seed)))
}

// HashString is Hash128 over the bytes of s without an explicit copy.
func HashString(s string, seed1, seed2 uint64) (uint64, uint64) {
	return Hash128([]byte(s), seed1, seed2)
}

// le64 reads a little-endian uint64; the reference implementation assumes a
// little-endian host and we reproduce that byte order portably.
func le64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func le32(b []byte) uint64 {
	_ = b[3]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
}

// shortHash handles messages shorter than 192 bytes with a 4-variable state.
func shortHash(m []byte, seed1, seed2 uint64) (uint64, uint64) {
	length := len(m)
	remainder := length % 32
	a, b := seed1, seed2
	c, d := spookyConst, spookyConst

	p := m
	if length > 15 {
		// Consume all complete 32-byte groups.
		for len(p) >= 32 {
			c += le64(p[0:])
			d += le64(p[8:])
			a, b, c, d = shortMix(a, b, c, d)
			a += le64(p[16:])
			b += le64(p[24:])
			p = p[32:]
		}
		// Then a possible 16-byte half-group.
		if remainder >= 16 {
			c += le64(p[0:])
			d += le64(p[8:])
			a, b, c, d = shortMix(a, b, c, d)
			p = p[16:]
			remainder -= 16
		}
	}

	// Fold in the final 0..15 bytes plus the total length.
	d += uint64(length) << 56
	switch remainder {
	case 15:
		d += uint64(p[14]) << 48
		fallthrough
	case 14:
		d += uint64(p[13]) << 40
		fallthrough
	case 13:
		d += uint64(p[12]) << 32
		fallthrough
	case 12:
		d += le32(p[8:])
		c += le64(p[0:])
	case 11:
		d += uint64(p[10]) << 16
		fallthrough
	case 10:
		d += uint64(p[9]) << 8
		fallthrough
	case 9:
		d += uint64(p[8])
		fallthrough
	case 8:
		c += le64(p[0:])
	case 7:
		c += uint64(p[6]) << 48
		fallthrough
	case 6:
		c += uint64(p[5]) << 40
		fallthrough
	case 5:
		c += uint64(p[4]) << 32
		fallthrough
	case 4:
		c += le32(p[0:])
	case 3:
		c += uint64(p[2]) << 16
		fallthrough
	case 2:
		c += uint64(p[1]) << 8
		fallthrough
	case 1:
		c += uint64(p[0])
	case 0:
		c += spookyConst
		d += spookyConst
	}
	a, b, c, d = shortEnd(a, b, c, d)
	return a, b
}

// shortMix is the reversible 4-variable mixing round of the short form.
func shortMix(h0, h1, h2, h3 uint64) (uint64, uint64, uint64, uint64) {
	h2 = bits.RotateLeft64(h2, 50)
	h2 += h3
	h0 ^= h2
	h3 = bits.RotateLeft64(h3, 52)
	h3 += h0
	h1 ^= h3
	h0 = bits.RotateLeft64(h0, 30)
	h0 += h1
	h2 ^= h0
	h1 = bits.RotateLeft64(h1, 41)
	h1 += h2
	h3 ^= h1
	h2 = bits.RotateLeft64(h2, 54)
	h2 += h3
	h0 ^= h2
	h3 = bits.RotateLeft64(h3, 48)
	h3 += h0
	h1 ^= h3
	h0 = bits.RotateLeft64(h0, 38)
	h0 += h1
	h2 ^= h0
	h1 = bits.RotateLeft64(h1, 37)
	h1 += h2
	h3 ^= h1
	h2 = bits.RotateLeft64(h2, 62)
	h2 += h3
	h0 ^= h2
	h3 = bits.RotateLeft64(h3, 34)
	h3 += h0
	h1 ^= h3
	h0 = bits.RotateLeft64(h0, 5)
	h0 += h1
	h2 ^= h0
	h1 = bits.RotateLeft64(h1, 36)
	h1 += h2
	h3 ^= h1
	return h0, h1, h2, h3
}

// shortEnd finalizes the short form, achieving avalanche across all state.
func shortEnd(h0, h1, h2, h3 uint64) (uint64, uint64, uint64, uint64) {
	h3 ^= h2
	h2 = bits.RotateLeft64(h2, 15)
	h3 += h2
	h0 ^= h3
	h3 = bits.RotateLeft64(h3, 52)
	h0 += h3
	h1 ^= h0
	h0 = bits.RotateLeft64(h0, 26)
	h1 += h0
	h2 ^= h1
	h1 = bits.RotateLeft64(h1, 51)
	h2 += h1
	h3 ^= h2
	h2 = bits.RotateLeft64(h2, 28)
	h3 += h2
	h0 ^= h3
	h3 = bits.RotateLeft64(h3, 9)
	h0 += h3
	h1 ^= h0
	h0 = bits.RotateLeft64(h0, 47)
	h1 += h0
	h2 ^= h1
	h1 = bits.RotateLeft64(h1, 54)
	h2 += h1
	h3 ^= h2
	h2 = bits.RotateLeft64(h2, 32)
	h3 += h2
	h0 ^= h3
	h3 = bits.RotateLeft64(h3, 25)
	h0 += h3
	h1 ^= h0
	h0 = bits.RotateLeft64(h0, 63)
	h1 += h0
	return h0, h1, h2, h3
}

// state12 is the 12-variable internal state of the long form.
type state12 [numVars]uint64

// longHash handles messages of at least 192 bytes.
func longHash(m []byte, seed1, seed2 uint64) (uint64, uint64) {
	var h state12
	h[0], h[3], h[6], h[9] = seed1, seed1, seed1, seed1
	h[1], h[4], h[7], h[10] = seed2, seed2, seed2, seed2
	h[2], h[5], h[8], h[11] = spookyConst, spookyConst, spookyConst, spookyConst

	p := m
	var data [numVars]uint64
	for len(p) >= blockSize {
		for i := 0; i < numVars; i++ {
			data[i] = le64(p[i*8:])
		}
		mix(&h, &data)
		p = p[blockSize:]
	}

	// Zero-pad the final partial block and stamp the remainder length into
	// the last byte, exactly as the reference implementation does.
	var buf [blockSize]byte
	copy(buf[:], p)
	buf[blockSize-1] = byte(len(p))
	for i := 0; i < numVars; i++ {
		data[i] = le64(buf[i*8:])
	}
	end(&h, &data)
	return h[0], h[1]
}

// mix is the long-form block round: each input word touches three state
// variables, with rotation constants chosen for maximal diffusion.
func mix(h *state12, d *[numVars]uint64) {
	h[0] += d[0]
	h[2] ^= h[10]
	h[11] ^= h[0]
	h[0] = bits.RotateLeft64(h[0], 11)
	h[11] += h[1]
	h[1] += d[1]
	h[3] ^= h[11]
	h[0] ^= h[1]
	h[1] = bits.RotateLeft64(h[1], 32)
	h[0] += h[2]
	h[2] += d[2]
	h[4] ^= h[0]
	h[1] ^= h[2]
	h[2] = bits.RotateLeft64(h[2], 43)
	h[1] += h[3]
	h[3] += d[3]
	h[5] ^= h[1]
	h[2] ^= h[3]
	h[3] = bits.RotateLeft64(h[3], 31)
	h[2] += h[4]
	h[4] += d[4]
	h[6] ^= h[2]
	h[3] ^= h[4]
	h[4] = bits.RotateLeft64(h[4], 17)
	h[3] += h[5]
	h[5] += d[5]
	h[7] ^= h[3]
	h[4] ^= h[5]
	h[5] = bits.RotateLeft64(h[5], 28)
	h[4] += h[6]
	h[6] += d[6]
	h[8] ^= h[4]
	h[5] ^= h[6]
	h[6] = bits.RotateLeft64(h[6], 39)
	h[5] += h[7]
	h[7] += d[7]
	h[9] ^= h[5]
	h[6] ^= h[7]
	h[7] = bits.RotateLeft64(h[7], 57)
	h[6] += h[8]
	h[8] += d[8]
	h[10] ^= h[6]
	h[7] ^= h[8]
	h[8] = bits.RotateLeft64(h[8], 55)
	h[7] += h[9]
	h[9] += d[9]
	h[11] ^= h[7]
	h[8] ^= h[9]
	h[9] = bits.RotateLeft64(h[9], 54)
	h[8] += h[10]
	h[10] += d[10]
	h[0] ^= h[8]
	h[9] ^= h[10]
	h[10] = bits.RotateLeft64(h[10], 22)
	h[9] += h[11]
	h[11] += d[11]
	h[1] ^= h[9]
	h[10] ^= h[11]
	h[11] = bits.RotateLeft64(h[11], 46)
	h[10] += h[0]
}

// endPartial is one finalization round of the long form.
func endPartial(h *state12) {
	h[11] += h[1]
	h[2] ^= h[11]
	h[1] = bits.RotateLeft64(h[1], 44)
	h[0] += h[2]
	h[3] ^= h[0]
	h[2] = bits.RotateLeft64(h[2], 15)
	h[1] += h[3]
	h[4] ^= h[1]
	h[3] = bits.RotateLeft64(h[3], 34)
	h[2] += h[4]
	h[5] ^= h[2]
	h[4] = bits.RotateLeft64(h[4], 21)
	h[3] += h[5]
	h[6] ^= h[3]
	h[5] = bits.RotateLeft64(h[5], 38)
	h[4] += h[6]
	h[7] ^= h[4]
	h[6] = bits.RotateLeft64(h[6], 33)
	h[5] += h[7]
	h[8] ^= h[5]
	h[7] = bits.RotateLeft64(h[7], 10)
	h[6] += h[8]
	h[9] ^= h[6]
	h[8] = bits.RotateLeft64(h[8], 13)
	h[7] += h[9]
	h[10] ^= h[7]
	h[9] = bits.RotateLeft64(h[9], 38)
	h[8] += h[10]
	h[11] ^= h[8]
	h[10] = bits.RotateLeft64(h[10], 53)
	h[9] += h[11]
	h[0] ^= h[9]
	h[11] = bits.RotateLeft64(h[11], 42)
	h[10] += h[0]
	h[1] ^= h[10]
	h[0] = bits.RotateLeft64(h[0], 54)
}

// end folds in the final padded block (the V2 change relative to V1) and
// runs three finalization rounds.
func end(h *state12, d *[numVars]uint64) {
	for i := 0; i < numVars; i++ {
		h[i] += d[i]
	}
	endPartial(h)
	endPartial(h)
	endPartial(h)
}
