package bench

import (
	"fmt"
	"strings"
	"time"

	"musuite/internal/loadgen"
	"musuite/internal/telemetry"
)

// ThreadPoolRow is one point of the §VII thread-pool-sizing discussion:
// latency and contention at a given worker-pool size.
type ThreadPoolRow struct {
	Service string
	Workers int
	Load    float64
	Median  time.Duration
	P99     time.Duration
	// FutexPerQ and HITMPerQ quantify the contention cost of larger
	// pools (the paper: large pools contend on the front-end socket,
	// the task queue, and the response socket).
	FutexPerQ, HITMPerQ float64
	SaturationQPS       float64
}

// ThreadPoolSweep measures one service across worker-pool sizes at a fixed
// open-loop load, plus each size's closed-loop saturation — the measurement
// a dynamic thread-pool scheduler (the paper's §VII proposal) would need.
func ThreadPoolSweep(s Scale, service string, workerCounts []int, load float64) ([]ThreadPoolRow, error) {
	var out []ThreadPoolRow
	for _, w := range workerCounts {
		cfg := s
		cfg.Workers = w
		inst, err := StartService(service, cfg, FrameworkMode{})
		if err != nil {
			return nil, fmt.Errorf("threadpool %s workers=%d: %w", service, w, err)
		}
		inst.Probe.Reset()
		before := inst.Probe.Snapshot()
		open := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
			QPS: load, Duration: s.Window, Seed: s.Seed + 23,
		})
		delta := inst.Probe.Snapshot().Delta(before)
		sat := loadgen.FindSaturation(inst.Issue, loadgen.SaturationConfig{
			Window:         s.SaturationWindow,
			MaxConcurrency: s.MaxConcurrency,
		})
		inst.Close()

		row := ThreadPoolRow{
			Service: service, Workers: w, Load: load,
			Median: open.Latency.Median, P99: open.Latency.P99,
			SaturationQPS: sat.Throughput,
		}
		if open.Completed > 0 {
			row.FutexPerQ = float64(delta.Syscalls[telemetry.SysFutex]) / float64(open.Completed)
			row.HITMPerQ = float64(delta.HITM) / float64(open.Completed)
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderThreadPool prints the sweep.
func RenderThreadPool(rows []ThreadPoolRow) string {
	var b strings.Builder
	b.WriteString("§VII thread-pool sizing sweep\n")
	fmt.Fprintf(&b, "  %-11s %-8s %-12s %-12s %-10s %-10s %-12s\n",
		"service", "workers", "p50", "p99", "futex/q", "HITM/q", "sat-QPS")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %-8d %-12v %-12v %-10.2f %-10.2f %-12.0f\n",
			r.Service, r.Workers, r.Median, r.P99, r.FutexPerQ, r.HITMPerQ, r.SaturationQPS)
	}
	b.WriteString("  (larger pools raise contention per query; undersized pools queue — the\n")
	b.WriteString("   trade-off motivating the paper's dynamic thread-pool scheduler proposal)\n")
	return b.String()
}
