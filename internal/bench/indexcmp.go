package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
)

// IndexRow compares one candidate-index structure on HDSearch: recall
// against brute force and end-to-end latency under open-loop load — the
// "LSH tables, kd-trees, or k-means clusters" comparison the paper's
// related-work discussion frames.
type IndexRow struct {
	Kind   hdsearch.IndexKind
	Recall float64
	Load   float64
	P50    time.Duration
	P99    time.Duration
	Build  time.Duration
}

// IndexComparison deploys HDSearch once per index kind on an identical
// corpus, measures recall@1 over a query sample, then measures open-loop
// latency at the given load.
func IndexComparison(s Scale, load float64) ([]IndexRow, error) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: s.HDCorpus, Dim: s.HDDim, Clusters: s.HDClusters, Seed: s.Seed,
	})
	queries := corpus.Queries(s.HDQueries, s.Seed+100)
	recallSample := queries
	if len(recallSample) > 150 {
		recallSample = recallSample[:150]
	}
	truth := make([]uint32, len(recallSample))
	for i, q := range recallSample {
		truth[i] = knn.BruteForce(q, corpus.Vectors, 1)[0].ID
	}

	var out []IndexRow
	for _, kind := range []hdsearch.IndexKind{hdsearch.IndexLSH, hdsearch.IndexKDTree, hdsearch.IndexKMeans} {
		buildStart := time.Now()
		cl, err := hdsearch.StartCluster(hdsearch.ClusterConfig{
			Corpus:  corpus,
			Shards:  s.Shards,
			Kind:    kind,
			MidTier: midTierOptions(s, FrameworkMode{}, nil),
			Leaf:    leafOptions(s, FrameworkMode{}),
		})
		if err != nil {
			return nil, fmt.Errorf("indexcmp %s: %w", kind, err)
		}
		build := time.Since(buildStart)
		client, err := hdsearch.DialClient(cl.Addr, nil)
		if err != nil {
			cl.Close()
			return nil, err
		}

		hits := 0
		for i, q := range recallSample {
			got, err := client.Search(q, 1)
			if err != nil {
				client.Close()
				cl.Close()
				return nil, err
			}
			if len(got) > 0 && got[0].PointID == truth[i] {
				hits++
			}
		}

		var next atomic.Uint64
		open := loadgen.RunOpenLoop(func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			return client.Go(q, 5, done)
		}, loadgen.OpenLoopConfig{QPS: load, Duration: s.Window, Seed: s.Seed + 43})

		client.Close()
		cl.Close()
		out = append(out, IndexRow{
			Kind:   kind,
			Recall: float64(hits) / float64(len(recallSample)),
			Load:   load,
			P50:    open.Latency.Median,
			P99:    open.Latency.P99,
			Build:  build,
		})
	}
	return out, nil
}

// RenderIndexComparison prints the comparison table.
func RenderIndexComparison(rows []IndexRow) string {
	var b strings.Builder
	b.WriteString("HDSearch candidate-index comparison (LSH vs kd-tree vs k-means)\n")
	fmt.Fprintf(&b, "  %-8s %-8s %-12s %-12s %-12s\n", "index", "recall@1", "p50", "p99", "build+deploy")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %-8.3f %-12v %-12v %-12v\n",
			r.Kind, r.Recall, r.P50, r.P99, r.Build.Round(time.Millisecond))
	}
	return b.String()
}
