package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"musuite/internal/ann"
	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/vec"
)

// IndexRow compares one candidate-index configuration on HDSearch: recall
// against brute force and end-to-end latency under open-loop load.  The
// paper's related work frames the LSH / kd-tree / k-means trio; the ivf*
// and hnsw rows extend the comparison to the leaf-resident ANN indexes,
// swept over their breadth (nprobe / efSearch) and rerank (exact
// re-scoring depth) knobs.
type IndexRow struct {
	Kind hdsearch.IndexKind
	// Knob is the search-breadth setting for this row — nprobe for the
	// ivf* kinds, efSearch for hnsw, 0 for the candidate-generator kinds
	// (which have no such knob).
	Knob int
	// Rerank is the exact re-rank depth (compressed ivf kinds only).
	Rerank int
	// Recall1 and Recall10 score the returned IDs against brute-force
	// ground truth at k=1 and k=10 — compression tradeoffs invisible at
	// k=1 show up at k=10.
	Recall1, Recall10 float64
	Load              float64
	P50               time.Duration
	P99               time.Duration
	Build             time.Duration
}

// Breadth/rerank sweep points for the ANN kinds.  The rerank sweep applies
// only to the compressed ivf kinds (plain IVF and hnsw score exactly;
// rerank is moot).  hnsw sweeps its own efSearch ladder — wider than the
// nprobe one because the beam width is the graph's whole recall knob.
var (
	nprobeSweep   = []int{1, 4, 8}
	efSearchSweep = []int{16, 64, 128}
	rerankSweep   = []int{10, 200}
	sweepRerank   = 100 // rerank held here while nprobe sweeps
	sweepNProbe   = 8   // nprobe held here while rerank sweeps
)

// IndexComparison deploys HDSearch once per index kind on an identical
// corpus, measures recall@1/@10 over a query sample, then measures
// open-loop latency at the given load.  ANN kinds contribute one row per
// sweep point, retuned on the live cluster (the index builds once).
func IndexComparison(s Scale, load float64) ([]IndexRow, error) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: s.HDCorpus, Dim: s.HDDim, Clusters: s.HDClusters, Seed: s.Seed,
	})
	queries := corpus.Queries(s.HDQueries, s.Seed+100)
	sample := s.RecallSample
	if sample <= 0 {
		sample = 150
	}
	recallSample := queries
	if len(recallSample) > sample {
		recallSample = recallSample[:sample]
	}
	truth := make([][]knn.Neighbor, len(recallSample))
	for i, q := range recallSample {
		truth[i] = knn.BruteForce(q, corpus.Vectors, 10)
	}

	var out []IndexRow
	for _, kind := range hdsearch.IndexKinds {
		buildStart := time.Now()
		cl, err := hdsearch.StartCluster(hdsearch.ClusterConfig{
			Corpus:  corpus,
			Shards:  s.Shards,
			Kind:    kind,
			MidTier: midTierOptions(s, FrameworkMode{}, nil),
			Leaf:    leafOptions(s, FrameworkMode{}),
		})
		if err != nil {
			return nil, fmt.Errorf("indexcmp %s: %w", kind, err)
		}
		build := time.Since(buildStart)
		client, err := hdsearch.DialClient(cl.Addr, nil)
		if err != nil {
			cl.Close()
			return nil, err
		}

		measure := func(knob, rerank int) error {
			if rt := cl.ANNRouter(); rt != nil {
				rt.SetNProbe(knob) // same slot carries efSearch for hnsw
				rt.SetRerank(rerank)
			}
			r1, r10, err := recallAt(client, recallSample, truth)
			if err != nil {
				return err
			}
			var next atomic.Uint64
			open := loadgen.RunOpenLoop(func(done chan *rpc.Call) *rpc.Call {
				q := queries[next.Add(1)%uint64(len(queries))]
				return client.Go(q, 5, done)
			}, loadgen.OpenLoopConfig{QPS: load, Duration: s.Window, Seed: s.Seed + 43})
			out = append(out, IndexRow{
				Kind: kind, Knob: knob, Rerank: rerank,
				Recall1: r1, Recall10: r10,
				Load: load, P50: open.Latency.Median, P99: open.Latency.P99,
				Build: build,
			})
			return nil
		}

		var sweepErr error
		switch {
		case kind == hdsearch.IndexHNSW:
			// The graph kind sweeps its beam width; no rerank stage.
			for _, ef := range efSearchSweep {
				if sweepErr = measure(ef, 0); sweepErr != nil {
					break
				}
			}
		case !hdsearch.IsLeafANN(kind):
			sweepErr = measure(0, 0)
		default:
			quant, _ := hdsearch.ANNQuant(kind)
			rerank := 0
			if quant != ann.QuantNone {
				rerank = sweepRerank
			}
			for _, np := range nprobeSweep {
				if sweepErr = measure(np, rerank); sweepErr != nil {
					break
				}
			}
			if sweepErr == nil && quant != ann.QuantNone {
				for _, rr := range rerankSweep {
					if sweepErr = measure(sweepNProbe, rr); sweepErr != nil {
						break
					}
				}
			}
		}
		client.Close()
		cl.Close()
		if sweepErr != nil {
			return nil, fmt.Errorf("indexcmp %s: %w", kind, sweepErr)
		}
	}
	return out, nil
}

// recallAt scores one configuration's recall@1 and recall@10 against the
// precomputed brute-force ground truth.
func recallAt(client *hdsearch.Client, sample []vec.Vector, truth [][]knn.Neighbor) (r1, r10 float64, err error) {
	hits1, hits10, want10 := 0, 0, 0
	for i, q := range sample {
		got, err := client.Search(q, 10)
		if err != nil {
			return 0, 0, err
		}
		if len(got) > 0 && len(truth[i]) > 0 && got[0].PointID == truth[i][0].ID {
			hits1++
		}
		in := make(map[uint32]bool, len(got))
		for _, n := range got {
			in[n.PointID] = true
		}
		for _, n := range truth[i] {
			want10++
			if in[n.ID] {
				hits10++
			}
		}
	}
	return float64(hits1) / float64(len(sample)), float64(hits10) / float64(want10), nil
}

// RecallFloorViolations checks each index kind's best recall@10 across its
// sweep rows against a floor, returning one message per kind below it.  A
// kind passes if any swept configuration reaches the floor — the gate asks
// "can this index hit the recall target at all", not "does every point on
// the latency/recall frontier".  Coverage derives from the registered
// hdsearch.IndexKinds: a registered kind with no sweep rows at all is
// itself a violation, so a newly added kind cannot silently skip the gate.
func RecallFloorViolations(rows []IndexRow, floor float64) []string {
	best := make(map[hdsearch.IndexKind]float64)
	for _, r := range rows {
		if r.Recall10 > best[r.Kind] {
			best[r.Kind] = r.Recall10
		}
	}
	var out []string
	for _, kind := range hdsearch.IndexKinds {
		r10, ok := best[kind]
		switch {
		case !ok:
			out = append(out, fmt.Sprintf("%s: registered kind produced no sweep rows", kind))
		case r10 < floor:
			out = append(out, fmt.Sprintf("%s: best recall@10 %.3f < floor %.3f", kind, r10, floor))
		}
	}
	return out
}

// RenderIndexComparison prints the comparison table.
func RenderIndexComparison(rows []IndexRow) string {
	var b strings.Builder
	b.WriteString("HDSearch candidate-index comparison (LSH / kd-tree / k-means / IVF / IVF+int8 / IVF+PQ / HNSW)\n")
	fmt.Fprintf(&b, "  %-8s %-7s %-7s %-9s %-10s %-12s %-12s %-12s\n",
		"index", "knob", "rerank", "recall@1", "recall@10", "p50", "p99", "build+deploy")
	knob := func(v int) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", v)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s %-7s %-7s %-9.3f %-10.3f %-12v %-12v %-12v\n",
			r.Kind, knob(r.Knob), knob(r.Rerank), r.Recall1, r.Recall10,
			r.P50, r.P99, r.Build.Round(time.Millisecond))
	}
	return b.String()
}
