package bench

import (
	"fmt"
	"sync/atomic"

	"musuite/internal/ann"
	"musuite/internal/cluster"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/services/recommend"
	"musuite/internal/services/router"
	"musuite/internal/services/setalgebra"
	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// ServiceNames lists the four benchmarks in the paper's order.
var ServiceNames = []string{"HDSearch", "Router", "SetAlgebra", "Recommend"}

// Instance is one deployed benchmark service ready to be driven: its
// workload-issuing function and the telemetry probe attached to the mid-tier
// under study.
type Instance struct {
	// Name identifies the benchmark.
	Name string
	// Issue launches one query from the service's workload.
	Issue loadgen.IssueFunc
	// Probe instruments the mid-tier (pollers, workers, response
	// threads, leaf connections).
	Probe *telemetry.Probe

	closers []func()
}

// Close tears the instance down.
func (in *Instance) Close() {
	for i := len(in.closers) - 1; i >= 0; i-- {
		in.closers[i]()
	}
}

// FrameworkMode selects the §VII ablation variant of the mid-tier and any
// per-request attribution tracer to attach.
type FrameworkMode struct {
	Dispatch core.DispatchMode
	Wait     core.WaitMode
	// Tail configures hedged requests and retry budgets on the mid-tier
	// fan-out (zero value: disabled).
	Tail core.TailPolicy
	// Batch configures cross-request coalescing of leaf RPCs on the
	// mid-tier fan-out (zero value: disabled).
	Batch core.BatchPolicy
	// Routing selects the mid-tier's key→shard placement strategy (nil =
	// modulo).  cluster.Jump keeps placements stable through resizes.
	Routing cluster.Router
	// PendingShards overrides the mid-tier's per-connection pending-table
	// shard count (0 = default 8, rounded to a power of two).
	PendingShards int
	// DisableWriteCoalesce reverts both tiers to one write syscall per
	// frame instead of coalescing concurrent frames into batched writes.
	DisableWriteCoalesce bool
	// LeafParallelism caps the worker goroutines a leaf kernel scan may
	// recruit (0 = NumCPU, 1 = serial).
	LeafParallelism int
	// ScalarKernels pins the leaves to the reference scalar kernels — the
	// ablation baseline for the tuned SoA engine.
	ScalarKernels bool
	// Index selects HDSearch's candidate index kind ("" = LSH); the ivf*
	// and hnsw kinds build leaf-resident ANN indexes instead of a
	// mid-tier candidate generator.
	Index hdsearch.IndexKind
	// ANN carries the leaf-resident kinds' build/tuning knobs (nlist/
	// nprobe/rerank for ivf*, m/efConstruction/efSearch for hnsw; zero
	// fields take the leaf defaults).  Kind and Quant are derived from
	// Index at the build site.
	ANN ann.Config
	// Admit configures the mid-tier's adaptive admission controller
	// (zero value: disabled).
	Admit core.AdmitPolicy
	// Tracer, when set, samples requests for stage-level attribution.
	Tracer *trace.Tracer
	// Spans, when set, receives distributed-tracing spans from every tier
	// of the deployment: the front-end client's root span, the mid-tier's
	// server and leaf-attempt spans, and each leaf's server spans.
	Spans *trace.Recorder
	// SpanSample traces one of every SpanSample front-end requests when
	// Spans is set (values < 1 trace every request).
	SpanSample int
}

// sampler builds the front-end span sampler for the mode: nil (never
// sampled) when no recorder is attached, otherwise 1-in-SpanSample.
func (mode FrameworkMode) sampler() *trace.Sampler {
	if mode.Spans == nil {
		return nil
	}
	every := mode.SpanSample
	if every < 1 {
		every = 1
	}
	return trace.NewSampler(every)
}

// clientOptions builds the front-end rpc client options for the mode: the
// span recorder rides along so the client records root client spans for the
// requests it samples.
func (mode FrameworkMode) clientOptions() *rpc.ClientOptions {
	if mode.Spans == nil {
		return nil
	}
	return &rpc.ClientOptions{Spans: mode.Spans}
}

// midTierOptions builds the instrumented mid-tier options for a scale.
func midTierOptions(s Scale, mode FrameworkMode, probe *telemetry.Probe) core.Options {
	return core.Options{
		Workers:              s.Workers,
		ResponseThreads:      s.ResponseThreads,
		Dispatch:             mode.Dispatch,
		Wait:                 mode.Wait,
		LeafConnsPerShard:    s.LeafConns,
		Tail:                 mode.Tail,
		Batch:                mode.Batch,
		Routing:              mode.Routing,
		PendingShards:        mode.PendingShards,
		DisableWriteCoalesce: mode.DisableWriteCoalesce,
		Admit:                mode.Admit,
		Tracer:               mode.Tracer,
		Spans:                mode.Spans,
		Probe:                probe,
	}
}

func leafOptions(s Scale, mode FrameworkMode) core.LeafOptions {
	return core.LeafOptions{
		Workers:              s.LeafWorkers,
		DisableWriteCoalesce: mode.DisableWriteCoalesce,
		Spans:                mode.Spans,
		Kernel: kernel.New(kernel.Config{
			Parallelism: mode.LeafParallelism,
			ForceScalar: mode.ScalarKernels,
		}),
	}
}

// StartService deploys the named benchmark at the given scale and mode.
func StartService(name string, s Scale, mode FrameworkMode) (*Instance, error) {
	switch name {
	case "HDSearch":
		return StartHDSearch(s, mode)
	case "Router":
		return StartRouter(s, mode)
	case "SetAlgebra":
		return StartSetAlgebra(s, mode)
	case "Recommend":
		return StartRecommend(s, mode)
	}
	return nil, fmt.Errorf("bench: unknown service %q", name)
}

// StartHDSearch deploys HDSearch with a synthetic image corpus and a
// query stream of perturbed corpus points.
func StartHDSearch(s Scale, mode FrameworkMode) (*Instance, error) {
	probe := telemetry.NewProbe()
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: s.HDCorpus, Dim: s.HDDim, Clusters: s.HDClusters, Seed: s.Seed,
	})
	cl, err := hdsearch.StartCluster(hdsearch.ClusterConfig{
		Corpus:       corpus,
		Shards:       s.Shards,
		LeafReplicas: s.LeafReplicas,
		Kind:         mode.Index,
		ANN:          mode.ANN,
		MidTier:      midTierOptions(s, mode, probe),
		Leaf:         leafOptions(s, mode),
	})
	if err != nil {
		return nil, err
	}
	client, err := hdsearch.DialClient(cl.Addr, mode.clientOptions())
	if err != nil {
		cl.Close()
		return nil, err
	}
	queries := corpus.Queries(s.HDQueries, s.Seed+100)
	sampler := mode.sampler()
	var next atomic.Uint64
	return &Instance{
		Name:  "HDSearch",
		Probe: probe,
		Issue: func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(q, 5, sc, done)
			}
			return client.Go(q, 5, done)
		},
		closers: []func(){func() { client.Close() }, cl.Close},
	}, nil
}

// StartRouter deploys Router, warms every key, and drives it with a YCSB-A
// style 50/50 get/set mix over a Zipf key population.
func StartRouter(s Scale, mode FrameworkMode) (*Instance, error) {
	probe := telemetry.NewProbe()
	cl, err := router.StartCluster(router.ClusterConfig{
		Leaves:   s.RouterLeaves,
		Replicas: s.RouterReplicas,
		MidTier:  midTierOptions(s, mode, probe),
		Leaf:     leafOptions(s, mode),
	})
	if err != nil {
		return nil, err
	}
	client, err := router.DialClient(cl.Addr, mode.clientOptions())
	if err != nil {
		cl.Close()
		return nil, err
	}
	kvtrace := dataset.NewKVTrace(dataset.KVTraceConfig{
		Keys: s.RouterKeys, ValueSize: s.RouterValueSize, Seed: s.Seed + 200,
	})
	for _, op := range kvtrace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			client.Close()
			cl.Close()
			return nil, err
		}
	}
	// Pre-generate the op stream so issuing is allocation-light.
	ops := kvtrace.Ops(1 << 14)
	sampler := mode.sampler()
	var next atomic.Uint64
	return &Instance{
		Name:  "Router",
		Probe: probe,
		Issue: func(done chan *rpc.Call) *rpc.Call {
			op := ops[next.Add(1)%uint64(len(ops))]
			if sc := sampler.Context(); sc.Sampled() {
				if op.Kind == dataset.KVGet {
					return client.GoGetSpan(op.Key, sc, done)
				}
				return client.GoSetSpan(op.Key, op.Value, sc, done)
			}
			if op.Kind == dataset.KVGet {
				return client.GoGet(op.Key, done)
			}
			return client.GoSet(op.Key, op.Value, done)
		},
		closers: []func(){func() { client.Close() }, cl.Close},
	}, nil
}

// StartSetAlgebra deploys Set Algebra with a Zipf-worded corpus and a
// synthetic query set drawn from the word-occurrence probabilities.
func StartSetAlgebra(s Scale, mode FrameworkMode) (*Instance, error) {
	probe := telemetry.NewProbe()
	corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: s.Docs, VocabSize: s.Vocab, MeanDocLen: s.MeanDocLen, Seed: s.Seed + 300,
	})
	cl, err := setalgebra.StartCluster(setalgebra.ClusterConfig{
		Corpus:       corpus,
		Shards:       s.Shards,
		StopTerms:    s.StopTerms,
		LeafReplicas: s.LeafReplicas,
		MidTier:      midTierOptions(s, mode, probe),
		Leaf:         leafOptions(s, mode),
	})
	if err != nil {
		return nil, err
	}
	client, err := setalgebra.DialClient(cl.Addr, mode.clientOptions())
	if err != nil {
		cl.Close()
		return nil, err
	}
	// Paper: 10K synthetic queries, ≤10 words each.
	queries := corpus.Queries(10000, 10, s.Seed+301)
	sampler := mode.sampler()
	var next atomic.Uint64
	return &Instance{
		Name:  "SetAlgebra",
		Probe: probe,
		Issue: func(done chan *rpc.Call) *rpc.Call {
			q := queries[next.Add(1)%uint64(len(queries))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(q, sc, done)
			}
			return client.Go(q, done)
		},
		closers: []func(){func() { client.Close() }, cl.Close},
	}, nil
}

// StartRecommend deploys Recommend trained on a latent-factor rating corpus
// and queries only unrated {user, item} pairs, as the paper does.
func StartRecommend(s Scale, mode FrameworkMode) (*Instance, error) {
	probe := telemetry.NewProbe()
	corpus := dataset.NewRatingCorpus(dataset.RatingCorpusConfig{
		Users: s.Users, Items: s.Items, Ratings: s.Ratings, Seed: s.Seed + 400,
	})
	cl, err := recommend.StartCluster(recommend.ClusterConfig{
		Corpus:       corpus,
		Shards:       s.Shards,
		Seed:         s.Seed + 401,
		LeafReplicas: s.LeafReplicas,
		MidTier:      midTierOptions(s, mode, probe),
		Leaf:         leafOptions(s, mode),
	})
	if err != nil {
		return nil, err
	}
	client, err := recommend.DialClient(cl.Addr, mode.clientOptions())
	if err != nil {
		cl.Close()
		return nil, err
	}
	// Paper: 1K {user, item} query pairs from empty utility-matrix cells.
	pairs := corpus.QueryPairs(1000, s.Seed+402)
	sampler := mode.sampler()
	var next atomic.Uint64
	return &Instance{
		Name:  "Recommend",
		Probe: probe,
		Issue: func(done chan *rpc.Call) *rpc.Call {
			p := pairs[next.Add(1)%uint64(len(pairs))]
			if sc := sampler.Context(); sc.Sampled() {
				return client.GoSpan(p[0], p[1], sc, done)
			}
			return client.Go(p[0], p[1], done)
		},
		closers: []func(){func() { client.Close() }, cl.Close},
	}, nil
}
