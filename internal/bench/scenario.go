package bench

import (
	"fmt"
	"strings"

	"musuite/internal/topo"
)

// The scenario experiment drives a declarative topology spec through its
// own load shape and timed degradation events (musuite-bench -experiment
// scenario -topo <spec.yaml>): the spec-driven generalization of the
// flash-crowd and overload experiments, runnable against any DAG the
// topology runtime can build.

// DefaultRecoveryFloor is the acceptance threshold the CI scenario gate
// uses: after the spec's degradation windows revert, the final phase must
// recover at least this fraction of the first phase's goodput.
const DefaultRecoveryFloor = 0.85

// RunScenario builds the spec, offers its load with the scenario armed,
// and tears everything down.
func RunScenario(spec *topo.Spec, opts topo.RunOptions) (*topo.RunResult, error) {
	return topo.Run(spec, opts)
}

// RenderScenario prints the per-phase results and the scenario event log.
func RenderScenario(spec *topo.Spec, res *topo.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario run: topology %q (%d services, entry %s)\n",
		spec.Name, len(spec.Services), spec.Entry)
	fmt.Fprintf(&b, "  %-12s %-8s %-9s %-9s %-6s %-7s %-8s %-9s %-12s %-12s\n",
		"phase", "QPS", "offered", "completed", "shed", "errors", "dropped", "goodput", "p50", "p99")
	for _, r := range res.Phases {
		fmt.Fprintf(&b, "  %-12s %-8g %-9d %-9d %-6d %-7d %-8d %-9.0f %-12v %-12v\n",
			r.Phase.Name, r.Phase.QPS, r.Offered, r.Completed,
			r.Shed, r.Errors, r.Dropped, r.Goodput(),
			r.Latency.Median, r.Latency.P99)
	}
	if len(res.Events) > 0 {
		b.WriteString("  scenario events:\n")
		for _, e := range res.Events {
			fmt.Fprintf(&b, "    +%-8v %s\n", e.Offset, e.What)
		}
	}
	offered, completed, errors, shed, dropped := res.Totals()
	fmt.Fprintf(&b, "  totals: offered=%d completed=%d shed=%d errors=%d dropped=%d\n",
		offered, completed, shed, errors, dropped)
	return b.String()
}

// ScenarioViolations checks the run against the scenario acceptance
// criteria: degradation may shed load (typed backpressure), but it must
// never produce untyped errors or drops, and when recoveryFloor > 0 the
// final phase must recover that fraction of the first phase's goodput
// once the degradation windows have reverted.
func ScenarioViolations(res *topo.RunResult, recoveryFloor float64) []string {
	var v []string
	_, _, errors, _, dropped := res.Totals()
	if errors > 0 {
		v = append(v, fmt.Sprintf("%d untyped errors (every failure must be typed backpressure)", errors))
	}
	if dropped > 0 {
		v = append(v, fmt.Sprintf("%d requests unresolved at drain timeout", dropped))
	}
	if recoveryFloor > 0 && len(res.Phases) >= 2 {
		first, last := res.Phases[0], res.Phases[len(res.Phases)-1]
		if first.Goodput() > 0 && last.Goodput() < recoveryFloor*first.Goodput() {
			v = append(v, fmt.Sprintf("goodput did not recover: final phase %.0f/s < %.0f%% of first phase %.0f/s",
				last.Goodput(), recoveryFloor*100, first.Goodput()))
		}
	}
	return v
}
