package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"musuite/internal/autoscale"
	"musuite/internal/core"
	"musuite/internal/dataset"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/router"
	"musuite/internal/telemetry"
)

// OverloadMults are the offered-load multiples of the measured saturation
// point the ramp visits.  The last entry drives the deployment to 3× its
// knee — deep overload, where goodput collapses without admission control.
var OverloadMults = []float64{0.5, 1, 1.5, 2, 3}

// overloadGoodputTolerance is the acceptance bar: at and past the knee,
// goodput must hold at least this fraction of the pre-knee peak.
const overloadGoodputTolerance = 0.85

// OverloadProbeStep is one knee-probe window: offered load doubled until
// goodput detaches from it.
type OverloadProbeStep struct {
	QPS     float64
	Goodput float64
}

// OverloadStep is one ramp window's measurement.
type OverloadStep struct {
	// Mult is the offered-load multiple of the saturation QPS.
	Mult float64
	// QPS is the offered load of the window.
	QPS float64
	// Leaves is the serving leaf count when the window closed.
	Leaves int
	// AdmitLimit is the live AIMD concurrency limit when the window
	// closed.
	AdmitLimit int
	// Result is the window's open-loop measurement; Result.Shed is the
	// typed-overload rejection count.
	Result loadgen.OpenLoopResult
}

// OverloadResult is the saturation-ramp experiment's full report.
type OverloadResult struct {
	// SatQPS is the measured knee: the goodput of the last probe window
	// whose completions still tracked the offered load.
	SatQPS float64
	// Probe records the knee search's doubling steps.
	Probe []OverloadProbeStep
	// Steps are the ramp windows in OverloadMults order.
	Steps []OverloadStep
	// Events are the autoscaler's scale actions across the ramp.
	Events []autoscale.Event
	// Scaler counts the autoscaler's decisions.
	Scaler autoscale.Stats
	// PeakGoodput is the best completed QPS of the pre-knee windows
	// (Mult < 1); KneeGoodput the worst completed QPS of the windows at
	// or past the knee (Mult ≥ 1).
	PeakGoodput, KneeGoodput float64
	// Violations lists every acceptance-criterion breach; empty means
	// the ramp passed.
	Violations []string
}

// Passed reports whether the ramp met the acceptance bar.
func (r *OverloadResult) Passed() bool { return len(r.Violations) == 0 }

// Overload runs the saturation-ramp experiment: a Router deployment with
// the adaptive admission controller armed and a spare leaf behind the
// autoscaler, driven open-loop at OverloadMults multiples of its measured
// saturation throughput.  The acceptance bar is the graceful-degradation
// property overload control exists to buy: past the knee, goodput holds
// ≥ 85% of the pre-knee peak, every refused request surfaces as a *typed*
// shed (rpc.OverloadError), and nothing fails untyped or times out.
func Overload(s Scale, mode FrameworkMode) (*OverloadResult, error) {
	if mode.Admit.MaxInflight <= 0 {
		// The experiment is about the controller; arm it with a ceiling
		// well above the knee so AIMD, not the cap, sets the limit.
		mode.Admit.MaxInflight = 4 * s.MaxConcurrency
		if mode.Admit.MaxInflight <= 0 {
			mode.Admit.MaxInflight = 256
		}
	}
	probe := telemetry.NewProbe()
	cl, err := router.StartCluster(router.ClusterConfig{
		Leaves:   s.RouterLeaves,
		Replicas: s.RouterReplicas,
		MidTier:  midTierOptions(s, mode, probe),
		Leaf:     leafOptions(s, mode),
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := router.DialClient(cl.Addr, nil)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	kvtrace := dataset.NewKVTrace(dataset.KVTraceConfig{
		Keys: s.RouterKeys, ValueSize: s.RouterValueSize, Seed: s.Seed + 600,
	})
	for _, op := range kvtrace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			return nil, err
		}
	}
	ops := kvtrace.Ops(1 << 14)
	var next atomic.Uint64
	issue := func(done chan *rpc.Call) *rpc.Call {
		op := ops[next.Add(1)%uint64(len(ops))]
		if op.Kind == dataset.KVGet {
			return client.GoGet(op.Key, done)
		}
		return client.GoSet(op.Key, op.Value, done)
	}

	// Probe the knee the same way the ramp will drive it: open-loop, with
	// admission already armed.  Offered load doubles until completions
	// detach from it (goodput < 90% of offered) — a closed-loop
	// concurrency probe would overstate the knee here, because it
	// pipelines on the inline fast path without paying the open-loop
	// harness's own arrival costs, and the ramp's multiples must be
	// relative to a load this harness can actually offer.
	out := &OverloadResult{}
	for q, i := 1000.0, 0; i < 12; q, i = 2*q, i+1 {
		res := loadgen.RunOpenLoop(issue, loadgen.OpenLoopConfig{
			QPS: q, Duration: s.SaturationWindow, Seed: s.Seed + 650 + int64(i),
		})
		out.Probe = append(out.Probe, OverloadProbeStep{QPS: q, Goodput: res.AchievedQPS})
		if res.AchievedQPS > out.SatQPS {
			out.SatQPS = res.AchievedQPS
		}
		if res.AchievedQPS < 0.9*q {
			break
		}
	}
	if out.SatQPS <= 0 {
		return out, fmt.Errorf("bench: overload: saturation probe found zero throughput")
	}

	// Close the loop: the autoscaler watches the mid-tier's shed deltas
	// and queue depth, and may grow the deployment by one leaf (and give
	// it back when the ramp cools).  base is the operator topology — the
	// loop never shrinks below it.
	base := cl.NumLeaves()
	scaler := autoscale.New(autoscale.Funcs{
		StatsFn: func() (st core.TierStats, err error) { return cl.MidTier().Stats(), nil },
		UpFn:    cl.AddLeaf,
		DownFn: func() error {
			if cl.NumLeaves() <= base {
				return autoscale.ErrNothingAdded
			}
			return cl.DrainLeaf(cl.NumLeaves()-1, s.Window)
		},
	}, autoscale.Config{
		Interval:  100 * time.Millisecond,
		UpAfter:   2,
		DownAfter: 20,
		MinLeaves: base,
		MaxLeaves: base + 1,
		Probe:     probe,
	})
	scaler.Start()
	defer scaler.Stop()

	for i, mult := range OverloadMults {
		qps := mult * out.SatQPS
		res := loadgen.RunOpenLoop(issue, loadgen.OpenLoopConfig{
			QPS: qps, Duration: s.Window, Seed: s.Seed + 601 + int64(i),
		})
		st := cl.MidTier().Stats()
		out.Steps = append(out.Steps, OverloadStep{
			Mult:       mult,
			QPS:        qps,
			Leaves:     cl.NumLeaves(),
			AdmitLimit: st.AdmitLimit,
			Result:     res,
		})
	}
	scaler.Stop()
	out.Events = scaler.Events()
	out.Scaler = scaler.Stats()

	// Acceptance: goodput past the knee holds ≥ 85% of the peak, and every
	// lost request is a typed shed — zero untyped errors or drain drops.
	kneeSeen := false
	for _, st := range out.Steps {
		if st.Mult < 1 && st.Result.AchievedQPS > out.PeakGoodput {
			out.PeakGoodput = st.Result.AchievedQPS
		}
		if st.Mult >= 1 {
			if !kneeSeen || st.Result.AchievedQPS < out.KneeGoodput {
				out.KneeGoodput = st.Result.AchievedQPS
			}
			kneeSeen = true
		}
		if st.Result.Errors > 0 {
			out.Violations = append(out.Violations, fmt.Sprintf(
				"%.1fx: %d untyped errors (every refusal must be a typed shed)",
				st.Mult, st.Result.Errors))
		}
		if st.Result.Dropped > 0 {
			out.Violations = append(out.Violations, fmt.Sprintf(
				"%.1fx: %d requests dropped without a reply", st.Mult, st.Result.Dropped))
		}
	}
	if kneeSeen && out.KneeGoodput < overloadGoodputTolerance*out.PeakGoodput {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"goodput past saturation fell to %.0f QPS, below %.0f%% of the %.0f QPS peak",
			out.KneeGoodput, 100*overloadGoodputTolerance, out.PeakGoodput))
	}
	return out, nil
}

// RenderOverload formats the saturation-ramp report.
func RenderOverload(r *OverloadResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload ramp (Router, admission + autoscaler): open-loop saturation %.0f QPS (%d probe windows)\n",
		r.SatQPS, len(r.Probe))
	fmt.Fprintf(&b, "  %-6s %-9s %-9s %-9s %-7s %-8s %-7s %-6s %-7s %-12s\n",
		"mult", "offered", "goodput", "shed", "errors", "dropped", "leaves", "limit", "", "p99")
	for _, st := range r.Steps {
		r2 := st.Result
		fmt.Fprintf(&b, "  %-6.1f %-9d %-9.0f %-9d %-7d %-8d %-7d %-6d %-7s %-12v\n",
			st.Mult, r2.Offered, r2.AchievedQPS, r2.Shed, r2.Errors, r2.Dropped,
			st.Leaves, st.AdmitLimit, "", r2.Latency.P99)
	}
	fmt.Fprintf(&b, "  autoscaler: %d ups, %d downs, %d holds",
		r.Scaler.Ups, r.Scaler.Downs, r.Scaler.Holds)
	for _, ev := range r.Events {
		fmt.Fprintf(&b, "; %s(%s)->%d leaves", ev.Dir, ev.Reason, ev.Leaves)
	}
	b.WriteString("\n")
	if r.Passed() {
		fmt.Fprintf(&b, "  PASS: goodput held %.0f/%.0f QPS (>= %.0f%%) past the knee with zero untyped failures\n",
			r.KneeGoodput, r.PeakGoodput, 100*overloadGoodputTolerance)
	} else {
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  VIOLATION: %s\n", v)
		}
	}
	return b.String()
}
