package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/services/hdsearch"
	"musuite/internal/telemetry"
)

// tinyScale shrinks everything so integration tests run in seconds.
func tinyScale() Scale {
	s := SmallScale()
	s.HDCorpus, s.HDQueries = 600, 128
	s.RouterKeys = 300
	s.Docs, s.Vocab = 400, 1200
	s.Users, s.Items, s.Ratings = 40, 50, 1200
	s.Loads = []float64{40, 150}
	s.Window = 400 * time.Millisecond
	s.SaturationWindow = 300 * time.Millisecond
	s.MaxConcurrency = 8
	return s
}

func TestStartServiceAllFour(t *testing.T) {
	s := tinyScale()
	for _, name := range ServiceNames {
		inst, err := StartService(name, s, FrameworkMode{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// A few smoke queries through the full stack.
		done := make(chan *rpc.Call, 4)
		for i := 0; i < 4; i++ {
			inst.Issue(done)
		}
		for i := 0; i < 4; i++ {
			select {
			case call := <-done:
				if call.Err != nil {
					t.Errorf("%s: query failed: %v", name, call.Err)
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("%s: query hung", name)
			}
		}
		inst.Close()
	}
}

func TestStartServiceUnknown(t *testing.T) {
	if _, err := StartService("NoSuch", tinyScale(), FrameworkMode{}); err == nil {
		t.Fatal("unknown service accepted")
	}
}

func TestFig9ProducesPlausibleRows(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	rows, err := Fig9(s, []string{"Router"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Service != "Router" {
		t.Fatalf("rows=%+v", rows)
	}
	if rows[0].Throughput <= 0 {
		t.Fatal("non-positive saturation throughput")
	}
	if len(rows[0].Steps) == 0 {
		t.Fatal("no probe steps recorded")
	}
	out := RenderFig9(rows)
	if !strings.Contains(out, "Router") {
		t.Fatalf("render: %s", out)
	}
}

func TestCharacterizeProducesAllFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	points, err := Characterize(s, []string{"SetAlgebra"}, FrameworkMode{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(s.Loads) {
		t.Fatalf("points=%d want %d", len(points), len(s.Loads))
	}
	for _, p := range points {
		if p.Open.Completed == 0 {
			t.Fatalf("load %g: no completions", p.Load)
		}
		if p.Violin.Count == 0 {
			t.Fatalf("load %g: empty violin", p.Load)
		}
		// Figs 11-14: futex must be among the most-invoked syscalls —
		// the paper's central syscall observation.
		futex := p.SyscallsPerQPS[telemetry.SysFutex]
		if futex <= 0 {
			t.Fatalf("load %g: no futex proxies", p.Load)
		}
		// Figs 15-18: Active-Exe and Net classes populated.
		if p.Overheads[telemetry.OverheadActiveExe].Count == 0 {
			t.Fatalf("load %g: no Active-Exe observations", p.Load)
		}
		if p.Overheads[telemetry.OverheadNet].Count == 0 {
			t.Fatalf("load %g: no Net observations", p.Load)
		}
		// Fig 19: CS and HITM counters moved.
		if p.CS == 0 {
			t.Fatalf("load %g: no context-switch proxies", p.Load)
		}
	}
	// Fig 19 shape: absolute CS counts rise with load.
	if points[1].CS <= points[0].CS {
		t.Logf("warning: CS did not rise with load: %d → %d", points[0].CS, points[1].CS)
	}
	for _, render := range []string{
		RenderFig10(points),
		RenderFig11to14(points),
		RenderFig15to18(points),
		RenderFig19(points),
	} {
		if !strings.Contains(render, "SetAlgebra") {
			t.Fatalf("render missing service: %s", render)
		}
	}
}

func TestAblationRunsAllVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 300 * time.Millisecond
	rows, err := Ablation(s, []string{"Router"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AblationModes) {
		t.Fatalf("rows=%d want %d", len(rows), len(AblationModes))
	}
	for _, r := range rows {
		if r.Median <= 0 {
			t.Fatalf("variant %v+%v: zero median", r.Dispatch, r.Wait)
		}
	}
	out := RenderAblation(rows)
	if !strings.Contains(out, "polling") || !strings.Contains(out, "inline") {
		t.Fatalf("render: %s", out)
	}
}

func TestHostAndTableII(t *testing.T) {
	h := Host()
	if h.CPUs < 1 || h.GoVersion == "" {
		t.Fatalf("host=%+v", h)
	}
	if !strings.Contains(RenderTableII(h), "Logical CPUs") {
		t.Fatal("table II render incomplete")
	}
}

func TestThreadPoolSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 300 * time.Millisecond
	s.SaturationWindow = 200 * time.Millisecond
	s.MaxConcurrency = 4
	rows, err := ThreadPoolSweep(s, "Router", []int{1, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Median <= 0 || r.SaturationQPS <= 0 {
			t.Fatalf("empty row %+v", r)
		}
	}
	if !strings.Contains(RenderThreadPool(rows), "workers") {
		t.Fatal("render incomplete")
	}
}

func TestWriteTSV(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 300 * time.Millisecond
	points, err := Characterize(s, []string{"Router"}, FrameworkMode{})
	if err != nil {
		t.Fatal(err)
	}
	fig9 := []Fig9Row{{Service: "Router", Throughput: 1234, Concurrency: 2}}
	dir := t.TempDir()
	if err := WriteTSV(dir, fig9, points); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig9.tsv", "fig10.tsv", "fig11to14.tsv", "fig15to18.tsv", "fig19.tsv"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
		cols := len(strings.Split(lines[0], "\t"))
		for i, line := range lines {
			if got := len(strings.Split(line, "\t")); got != cols {
				t.Fatalf("%s line %d has %d columns, header has %d", name, i, got, cols)
			}
		}
	}
	// Empty inputs skip files without error.
	dir2 := t.TempDir()
	if err := WriteTSV(dir2, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "fig9.tsv")); !os.IsNotExist(err) {
		t.Fatal("empty fig9 still wrote a file")
	}
}

func TestFlashCrowdExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 300 * time.Millisecond
	results, err := FlashCrowdExperiment(s, "Router", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("phases=%d", len(results))
	}
	names := []string{"baseline", "spike", "recovery"}
	for i, r := range results {
		if r.Phase.Name != names[i] {
			t.Fatalf("phase %d named %q", i, r.Phase.Name)
		}
		if r.Completed == 0 {
			t.Fatalf("phase %q completed nothing", r.Phase.Name)
		}
	}
	if !strings.Contains(RenderFlashCrowd("Router", results), "spike") {
		t.Fatal("render incomplete")
	}
}

func TestTraceAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 300 * time.Millisecond
	tracer, err := TraceAttribution(s, "SetAlgebra", 150)
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Completed() == 0 {
		t.Fatal("no traces completed")
	}
	if tracer.StageQuantile("total", 0.5) <= 0 {
		t.Fatal("no total latency recorded")
	}
	if tracer.StageQuantile("leaf-wait", 0.5) <= 0 {
		t.Fatal("no leaf-wait recorded")
	}
}

func TestIndexComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 300 * time.Millisecond
	s.RecallSample = 60
	rows, err := IndexComparison(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[hdsearch.IndexKind]bool)
	for _, r := range rows {
		seen[r.Kind] = true
		if r.P50 <= 0 {
			t.Fatalf("%s has no latency", r.Kind)
		}
	}
	for _, kind := range hdsearch.IndexKinds {
		if !seen[kind] {
			t.Fatalf("no rows for %s", kind)
		}
	}
	// Every kind must be able to reach high recall@10 at some sweep point;
	// narrow-probe rows are allowed to trade recall away.
	if v := RecallFloorViolations(rows, 0.8); len(v) > 0 {
		t.Fatalf("recall floor violations: %v", v)
	}
	render := RenderIndexComparison(rows)
	if !strings.Contains(render, "kdtree") || !strings.Contains(render, "ivfpq") {
		t.Fatal("render incomplete")
	}
}
