package bench

import (
	"fmt"
	"strings"
	"time"

	"musuite/internal/loadgen"
	"musuite/internal/trace"
)

// FlashCrowdExperiment drives one service through a baseline→spike→recovery
// load schedule (the "flash crowds" scenario §VI-B uses to motivate
// wide-ranging load support) and reports per-phase latency.
func FlashCrowdExperiment(s Scale, service string, baselineQPS, spikeFactor float64) ([]loadgen.PhaseResult, error) {
	inst, err := StartService(service, s, FrameworkMode{})
	if err != nil {
		return nil, fmt.Errorf("flashcrowd %s: %w", service, err)
	}
	defer inst.Close()
	phases := loadgen.FlashCrowd(baselineQPS, spikeFactor, s.Window, s.Window/2)
	return loadgen.RunSchedule(inst.Issue, phases, s.Seed+31, 30*time.Second), nil
}

// RenderFlashCrowd prints the per-phase latency table.
func RenderFlashCrowd(service string, results []loadgen.PhaseResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flash-crowd scenario (%s): baseline → spike → recovery\n", service)
	fmt.Fprintf(&b, "  %-10s %-8s %-9s %-12s %-12s %-12s\n",
		"phase", "QPS", "completed", "p50", "p99", "p99.9")
	for _, r := range results {
		fmt.Fprintf(&b, "  %-10s %-8g %-9d %-12v %-12v %-12v\n",
			r.Phase.Name, r.Phase.QPS, r.Completed,
			r.Latency.Median, r.Latency.P99, r.Latency.P999)
	}
	b.WriteString("  (queue built during an over-capacity spike inflates spike and recovery tails)\n")
	return b.String()
}

// TraceAttribution deploys one service with full request tracing, drives it
// at the given open-loop load, and returns the tracer with its aggregate
// per-stage breakdown — the per-request complement to Figs. 15–18.
func TraceAttribution(s Scale, service string, load float64) (*trace.Tracer, error) {
	tracer := trace.NewTracer(1, 256)
	inst, err := StartService(service, s, FrameworkMode{Tracer: tracer})
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", service, err)
	}
	defer inst.Close()
	loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
		QPS: load, Duration: s.Window, Seed: s.Seed + 41,
	})
	return tracer, nil
}
