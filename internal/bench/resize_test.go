package bench

import (
	"strings"
	"testing"
	"time"

	"musuite/internal/cluster"
)

func TestResizeExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	s := tinyScale()
	s.Window = 400 * time.Millisecond
	phases, err := Resize(s, FrameworkMode{Routing: cluster.Jump{}}, 150)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"steady", "add", "drain", "post"}
	if len(phases) != len(names) {
		t.Fatalf("phases = %d, want %d", len(phases), len(names))
	}
	for i, p := range phases {
		if p.Phase != names[i] {
			t.Fatalf("phase %d named %q, want %q", i, p.Phase, names[i])
		}
		if p.Result.Completed == 0 {
			t.Fatalf("phase %q completed nothing", p.Phase)
		}
		// The acceptance bar: a resize must be invisible to clients.
		if p.Result.Errors != 0 || p.Result.Dropped != 0 {
			t.Fatalf("phase %q failed requests: %d errors, %d dropped",
				p.Phase, p.Result.Errors, p.Result.Dropped)
		}
	}
	if phases[1].Leaves != phases[0].Leaves+1 {
		t.Fatalf("add phase leaves = %d, want %d", phases[1].Leaves, phases[0].Leaves+1)
	}
	if phases[2].Leaves != phases[0].Leaves {
		t.Fatalf("drain phase leaves = %d, want back to %d", phases[2].Leaves, phases[0].Leaves)
	}
	if phases[2].Epoch <= phases[1].Epoch || phases[1].Epoch <= phases[0].Epoch {
		t.Fatalf("epochs did not advance: %d %d %d",
			phases[0].Epoch, phases[1].Epoch, phases[2].Epoch)
	}
	out := RenderResize(phases, 150)
	if !strings.Contains(out, "zero failed requests") {
		t.Fatalf("render missed the acceptance line:\n%s", out)
	}
}
