package bench

import (
	"errors"
	"strings"
	"time"

	"musuite/internal/loadgen"
	"musuite/internal/trace"
)

// TraceRun deploys the named service at scale s, offers an open-loop load
// while sampling one in every sample front-end requests for end-to-end
// distributed tracing, and returns the recorded spans alongside the load
// result.  The spans form complete trees: the front-end's root client span,
// the mid-tier's server and per-attempt client spans (hedges, retries, and
// abandoned losers included), and the leaves' server spans.
func TraceRun(service string, s Scale, mode FrameworkMode, qps float64, duration time.Duration, sample int) ([]trace.Span, loadgen.OpenLoopResult, error) {
	rec := trace.NewRecorder(strings.ToLower(service), trace.DefaultRecorderCap)
	mode.Spans = rec
	mode.SpanSample = sample
	inst, err := StartService(service, s, mode)
	if err != nil {
		return nil, loadgen.OpenLoopResult{}, err
	}
	defer inst.Close()
	res := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
		QPS: qps, Duration: duration, Seed: s.Seed,
	})
	return rec.Snapshot(), res, nil
}

// ReplayRun re-offers a recorded trace's arrival process (the root spans'
// start offsets) against a fresh deployment of the named service.  Request
// bodies come from the service's own workload stream — what is reproduced
// is the offered-load process, bursts included.
func ReplayRun(service string, s Scale, mode FrameworkMode, spans []trace.Span, speed float64) (loadgen.OpenLoopResult, error) {
	offsets := trace.ArrivalOffsets(spans)
	if len(offsets) == 0 {
		return loadgen.OpenLoopResult{}, errors.New("bench: trace has no root spans to replay")
	}
	inst, err := StartService(service, s, mode)
	if err != nil {
		return loadgen.OpenLoopResult{}, err
	}
	defer inst.Close()
	return loadgen.RunReplay(inst.Issue, loadgen.ReplayConfig{
		Offsets: offsets, Speed: speed,
	}), nil
}

// ServiceForTrace infers which benchmark a recorded trace belongs to from
// its span method names ("hdsearch.search" → "HDSearch"), so a replay can
// deploy the right service without being told.
func ServiceForTrace(spans []trace.Span) (string, bool) {
	byPrefix := map[string]string{
		"hdsearch":   "HDSearch",
		"router":     "Router",
		"setalgebra": "SetAlgebra",
		"recommend":  "Recommend",
	}
	for i := range spans {
		name := spans[i].Name
		if j := strings.IndexByte(name, '.'); j > 0 {
			if svc, ok := byPrefix[name[:j]]; ok {
				return svc, true
			}
		}
	}
	return "", false
}
