// Package bench is the experiment harness: it deploys each μSuite service,
// drives it with the paper's load-testing methodology, and regenerates every
// table and figure of the evaluation (Figs. 9–19, Table II).  EXPERIMENTS.md
// records the paper-vs-measured comparison for each.
package bench

import (
	"runtime"
	"time"
)

// Scale sizes an experiment.  The paper runs 500K-image / 4.3M-document
// corpora on a 40-core cluster; Small is proportioned for a laptop-class
// single host so the suite's *shape* findings reproduce in seconds, and
// Paper approaches the publication's sizes for larger hosts.
type Scale struct {
	// HDSearch: corpus size, feature dimensionality, query count.
	HDCorpus, HDDim, HDClusters, HDQueries int

	// RecallSample is how many queries the index-comparison experiment
	// scores against brute-force ground truth (0 = 150).  Ground truth is
	// O(RecallSample × HDCorpus), so paper-scale runs pick this
	// deliberately rather than scoring every query.
	RecallSample int

	// Router: key population, value size, replicas, leaf count.
	RouterKeys, RouterValueSize, RouterReplicas, RouterLeaves int

	// Set Algebra: corpus and vocabulary size, stop-list size.
	Docs, Vocab, MeanDocLen, StopTerms int

	// Recommend: utility-matrix shape and density.
	Users, Items, Ratings int

	// Shards is the leaf fan-out for HDSearch/SetAlgebra/Recommend
	// (paper: 4).
	Shards int

	// LeafReplicas is the number of leaf processes per shard for
	// HDSearch/SetAlgebra/Recommend (default 1; Router replicates at the
	// data level via RouterReplicas instead).
	LeafReplicas int

	// Framework sizing.
	Workers, ResponseThreads, LeafWorkers, LeafConns int

	// Loads are the open-loop QPS levels for Figs. 10–19 (paper: 100,
	// 1 000, 10 000).
	Loads []float64

	// Window is each open-loop measurement window.
	Window time.Duration

	// SaturationWindow and MaxConcurrency drive the Fig. 9 probe.
	SaturationWindow time.Duration
	MaxConcurrency   int

	// Trials is the repetition count (paper: 5).
	Trials int

	// Seed namespaces all dataset generation.
	Seed int64
}

// SmallScale returns a laptop-sized configuration used by tests and the
// default bench run.
func SmallScale() Scale {
	return Scale{
		HDCorpus: 2000, HDDim: 32, HDClusters: 10, HDQueries: 512,
		RecallSample: 150,
		RouterKeys:   2000, RouterValueSize: 64, RouterReplicas: 2, RouterLeaves: 4,
		Docs: 1200, Vocab: 3000, MeanDocLen: 60, StopTerms: 10,
		Users: 60, Items: 80, Ratings: 2500,
		Shards:  4,
		Workers: 2, ResponseThreads: 2, LeafWorkers: 2, LeafConns: 2,
		Loads:            []float64{50, 200, 1000},
		Window:           2 * time.Second,
		SaturationWindow: time.Second,
		MaxConcurrency:   32,
		Trials:           1,
		Seed:             1,
	}
}

// PaperScale approximates the publication's setup (500K 2048-d vectors,
// 16-way Router with 3 replicas, 100/1K/10K QPS loads, five trials).  It
// needs a many-core host and substantial memory.
func PaperScale() Scale {
	return Scale{
		HDCorpus: 500000, HDDim: 2048, HDClusters: 64, HDQueries: 10000,
		RecallSample: 1000,
		RouterKeys:   100000, RouterValueSize: 128, RouterReplicas: 3, RouterLeaves: 16,
		Docs: 4300000, Vocab: 200000, MeanDocLen: 150, StopTerms: 100,
		Users: 1000, Items: 1700, Ratings: 10000,
		Shards:  4,
		Workers: 8, ResponseThreads: 4, LeafWorkers: 18, LeafConns: 4,
		Loads:            []float64{100, 1000, 10000},
		Window:           30 * time.Second,
		SaturationWindow: 5 * time.Second,
		MaxConcurrency:   512,
		Trials:           5,
		Seed:             1,
	}
}

// HostInfo captures the Table II analog for the machine actually running
// the experiments.
type HostInfo struct {
	GoVersion string
	OS, Arch  string
	CPUs      int
}

// Host reports the current machine.
func Host() HostInfo {
	return HostInfo{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
}
