package bench

import (
	"fmt"
	"sort"
	"strings"

	"musuite/internal/telemetry"
)

// RenderTableII prints the testbed description (the Table II analog).
func RenderTableII(h HostInfo) string {
	var b strings.Builder
	b.WriteString("Table II analog: experiment host\n")
	fmt.Fprintf(&b, "  Go version       %s\n", h.GoVersion)
	fmt.Fprintf(&b, "  OS / Arch        %s / %s\n", h.OS, h.Arch)
	fmt.Fprintf(&b, "  Logical CPUs     %d\n", h.CPUs)
	b.WriteString("  (paper: 2×20-core Skylake, 64 GB, 10 Gbit/s, Linux 4.13)\n")
	return b.String()
}

// RenderFig9 prints the saturation-throughput bars of Fig. 9.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Fig. 9: saturation throughput (QPS)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-11s %10.0f QPS  (at closed-loop concurrency %d", r.Service, r.Throughput, r.Concurrency)
		if r.RelStdDev > 0 {
			fmt.Fprintf(&b, ", ±%.1f%% over trials", r.RelStdDev*100)
		}
		b.WriteString(")\n")
	}
	b.WriteString("  paper (40-core testbed): HDSearch ~11.5K, Router ~12K, SetAlgebra ~16.5K, Recommend ~13K\n")
	return b.String()
}

// RenderFig10 prints the end-to-end latency violins of Fig. 10.
func RenderFig10(points []LoadPoint) string {
	var b strings.Builder
	b.WriteString("Fig. 10: end-to-end response latency distribution vs load\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %s\n", p.Violin.String())
	}
	b.WriteString(renderMedianInversion(points))
	return b.String()
}

// renderMedianInversion reports the §VI-B claim: median latency at the
// lowest load exceeds the median at the middle load (up to 1.45× in the
// paper) because low load parks threads longer.
func renderMedianInversion(points []LoadPoint) string {
	byService := make(map[string][]LoadPoint)
	var order []string
	for _, p := range points {
		if _, ok := byService[p.Service]; !ok {
			order = append(order, p.Service)
		}
		byService[p.Service] = append(byService[p.Service], p)
	}
	var b strings.Builder
	b.WriteString("  §VI-B low-load median inflation (median@lowest / median@middle):\n")
	for _, svc := range order {
		pts := byService[svc]
		if len(pts) < 2 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Load < pts[j].Load })
		lo, mid := pts[0].Violin.Median, pts[1].Violin.Median
		if mid <= 0 {
			continue
		}
		fmt.Fprintf(&b, "    %-11s %.2fx (paper reports up to 1.45x)\n", svc, float64(lo)/float64(mid))
	}
	return b.String()
}

// RenderFig11to14 prints the per-service syscall-invocation breakdowns of
// Figs. 11–14 (counts per completed query, i.e. per QPS over the window).
func RenderFig11to14(points []LoadPoint) string {
	byService := make(map[string][]LoadPoint)
	var order []string
	for _, p := range points {
		if _, ok := byService[p.Service]; !ok {
			order = append(order, p.Service)
		}
		byService[p.Service] = append(byService[p.Service], p)
	}
	var b strings.Builder
	b.WriteString("Figs. 11-14: OS system call invocations per query (mid-tier)\n")
	for _, svc := range order {
		pts := byService[svc]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Load < pts[j].Load })
		fmt.Fprintf(&b, "  %s:\n", svc)
		fmt.Fprintf(&b, "    %-12s", "syscall")
		for _, p := range pts {
			fmt.Fprintf(&b, " load=%-8g", p.Load)
		}
		b.WriteString("\n")
		for _, sys := range telemetry.Syscalls() {
			any := false
			for _, p := range pts {
				if p.SyscallsPerQPS[sys] > 0 {
					any = true
				}
			}
			if !any {
				continue
			}
			fmt.Fprintf(&b, "    %-12s", sys.String())
			for _, p := range pts {
				fmt.Fprintf(&b, " %-13.2f", p.SyscallsPerQPS[sys])
			}
			b.WriteString("\n")
		}
	}
	b.WriteString("  (paper: futex dominates every service, with more calls per query at low load)\n")
	return b.String()
}

// RenderFig15to18 prints the OS-overhead latency breakdowns of Figs. 15–18.
func RenderFig15to18(points []LoadPoint) string {
	var b strings.Builder
	b.WriteString("Figs. 15-18: OS overhead latency breakdown (mid-tier, per class)\n")
	for _, p := range points {
		fmt.Fprintf(&b, "  %s @ %g QPS:\n", p.Service, p.Load)
		for _, o := range telemetry.Overheads() {
			snap := p.Overheads[o]
			if snap.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-11s p50=%-12v p99=%-12v max=%-12v (n=%d)\n",
				o.String(), snap.Median, snap.P99, snap.Max, snap.Count)
		}
	}
	b.WriteString("  (paper: Active-Exe — thread wakeup to execution — dominates mid-tier tails,\n")
	b.WriteString("   contributing up to ~50% HDSearch, ~75% Router, ~87% SetAlgebra, ~64% Recommend)\n")
	return b.String()
}

// ActiveExeTailShare computes, for one load point, the Active-Exe share of
// the Net (total mid-tier) tail — the paper's headline "up to ~87%" metric.
func ActiveExeTailShare(p LoadPoint) float64 {
	net := p.Overheads[telemetry.OverheadNet].P99
	ae := p.Overheads[telemetry.OverheadActiveExe].P99
	if net <= 0 {
		return 0
	}
	share := float64(ae) / float64(net)
	if share > 1 {
		share = 1
	}
	return share
}

// RenderFig19 prints the context-switch / contention counts of Fig. 19.
func RenderFig19(points []LoadPoint) string {
	var b strings.Builder
	b.WriteString("Fig. 19: context switches (CS) and lock contention (HITM proxies) per window\n")
	fmt.Fprintf(&b, "  %-11s %-10s %-12s %-12s %-10s\n", "service", "load", "CS", "HITM", "tcp-retx")
	for _, p := range points {
		fmt.Fprintf(&b, "  %-11s %-10g %-12d %-12d %-10d\n", p.Service, p.Load, p.CS, p.HITM, p.TCPRetrans)
	}
	b.WriteString("  (paper: both rise with load; HITM > CS; TCP retransmissions single-digit)\n")
	return b.String()
}

// RenderAblation prints the §VII framework-variant comparison.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("§VII ablation: blocking-vs-polling and dispatch-vs-in-line\n")
	fmt.Fprintf(&b, "  %-11s %-22s %-12s %-12s %-10s %-8s\n",
		"service", "variant", "p50", "p99", "futex/q", "cs/q")
	for _, r := range rows {
		variant := fmt.Sprintf("%s+%s", r.Dispatch, r.Wait)
		fmt.Fprintf(&b, "  %-11s %-22s %-12v %-12v %-10.2f %-8.2f\n",
			r.Service, variant, r.Median, r.P99, r.Futex, r.CSPerQ)
	}
	return b.String()
}
