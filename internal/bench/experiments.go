package bench

import (
	"fmt"
	"time"

	"musuite/internal/core"
	"musuite/internal/loadgen"
	"musuite/internal/stats"
	"musuite/internal/telemetry"
)

// Fig9Row is one bar of Fig. 9: a service's peak sustainable throughput,
// averaged over the scale's configured trials as the paper averages over
// five.
type Fig9Row struct {
	Service     string
	Throughput  float64
	RelStdDev   float64 // stddev/mean across trials (0 for one trial)
	Concurrency int
	Steps       []loadgen.SaturationStep
}

// Fig9 measures saturation throughput for each service with the closed-loop
// load generator, reproducing Fig. 9.
func Fig9(s Scale, services []string) ([]Fig9Row, error) {
	trials := s.Trials
	if trials < 1 {
		trials = 1
	}
	var out []Fig9Row
	for _, name := range services {
		inst, err := StartService(name, s, FrameworkMode{})
		if err != nil {
			return nil, fmt.Errorf("fig9 %s: %w", name, err)
		}
		var agg stats.Trials
		row := Fig9Row{Service: name}
		for t := 0; t < trials; t++ {
			res := loadgen.FindSaturation(inst.Issue, loadgen.SaturationConfig{
				Window:         s.SaturationWindow,
				MaxConcurrency: s.MaxConcurrency,
			})
			agg.Add(res.Throughput)
			// Keep the last trial's shape details.
			row.Concurrency = res.Concurrency
			row.Steps = res.Steps
		}
		inst.Close()
		row.Throughput = agg.Mean()
		row.RelStdDev = agg.RelStdDev()
		out = append(out, row)
	}
	return out, nil
}

// LoadPoint is one (service, load) measurement carrying everything Figs.
// 10–19 need: the end-to-end latency distribution, per-QPS syscall-proxy
// counts, OS-overhead latency classes, and CS/HITM proxy counts.
type LoadPoint struct {
	Service string
	Load    float64

	// Open is the raw open-loop run (latency snapshot, achieved QPS).
	Open loadgen.OpenLoopResult
	// Violin is the end-to-end latency distribution (Fig. 10).
	Violin stats.Violin

	// Syscalls holds the window's proxy invocation counts; SyscallsPerQPS
	// normalizes by completed queries (Figs. 11–14).
	Syscalls       map[telemetry.Syscall]uint64
	SyscallsPerQPS map[telemetry.Syscall]float64

	// Overheads holds per-class latency summaries (Figs. 15–18).
	Overheads map[telemetry.Overhead]stats.Snapshot

	// CS and HITM are the context-switch and contention proxy counts for
	// the window (Fig. 19); TCPRetrans mirrors the paper's tcpretrans
	// observation (expected ≈0).
	CS, HITM, TCPRetrans uint64
}

// Characterize runs the open-loop characterization at every configured load
// for every service, producing the measurement set behind Figs. 10–19.
func Characterize(s Scale, services []string, mode FrameworkMode) ([]LoadPoint, error) {
	var out []LoadPoint
	for _, name := range services {
		inst, err := StartService(name, s, mode)
		if err != nil {
			return nil, fmt.Errorf("characterize %s: %w", name, err)
		}
		for li, load := range s.Loads {
			inst.Probe.Reset()
			before := inst.Probe.Snapshot()
			open := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
				QPS:        load,
				Duration:   s.Window,
				Seed:       s.Seed + int64(li)*7919,
				CaptureRaw: true,
			})
			delta := inst.Probe.Snapshot().Delta(before)

			lp := LoadPoint{
				Service:        name,
				Load:           load,
				Open:           open,
				Violin:         stats.NewViolin(fmt.Sprintf("%s@%g", name, load), open.Raw, 16),
				Syscalls:       delta.Syscalls,
				SyscallsPerQPS: make(map[telemetry.Syscall]float64),
				Overheads:      make(map[telemetry.Overhead]stats.Snapshot),
				CS:             delta.ContextSwitch,
				HITM:           delta.HITM,
				TCPRetrans:     delta.TCPRetransmits,
			}
			completed := float64(open.Completed)
			if completed > 0 {
				for sys, n := range delta.Syscalls {
					lp.SyscallsPerQPS[sys] = float64(n) / completed
				}
			}
			for _, o := range telemetry.Overheads() {
				lp.Overheads[o] = inst.Probe.OverheadSnapshot(o)
			}
			lp.Open.Raw = nil // the violin retains the distribution shape
			out = append(out, lp)
		}
		inst.Close()
	}
	return out, nil
}

// AblationRow is one §VII framework-variant measurement.
type AblationRow struct {
	Service  string
	Dispatch core.DispatchMode
	Wait     core.WaitMode
	Load     float64
	Median   time.Duration
	P99      time.Duration
	Futex    float64 // per query
	CSPerQ   float64
}

// AblationModes are the framework variants §VII discusses: the default
// blocking+dispatch design, the polling variant, the in-line variant, and
// the adaptive spin-then-park hybrid the paper proposes exploring.
var AblationModes = []FrameworkMode{
	{Dispatch: core.Dispatched, Wait: core.WaitBlocking},
	{Dispatch: core.Dispatched, Wait: core.WaitPolling},
	{Dispatch: core.Dispatched, Wait: core.WaitAdaptive},
	{Dispatch: core.Inline, Wait: core.WaitBlocking},
	{Dispatch: core.DispatchAuto, Wait: core.WaitBlocking},
}

// Ablation measures each framework variant at the given load for each
// service, quantifying the blocking-vs-polling and dispatch-vs-in-line
// trade-offs the paper proposes exploring.
func Ablation(s Scale, services []string, load float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, name := range services {
		for _, mode := range AblationModes {
			inst, err := StartService(name, s, mode)
			if err != nil {
				return nil, fmt.Errorf("ablation %s: %w", name, err)
			}
			inst.Probe.Reset()
			before := inst.Probe.Snapshot()
			open := loadgen.RunOpenLoop(inst.Issue, loadgen.OpenLoopConfig{
				QPS: load, Duration: s.Window, Seed: s.Seed + 17,
			})
			delta := inst.Probe.Snapshot().Delta(before)
			inst.Close()
			row := AblationRow{
				Service:  name,
				Dispatch: mode.Dispatch,
				Wait:     mode.Wait,
				Load:     load,
				Median:   open.Latency.Median,
				P99:      open.Latency.P99,
			}
			if open.Completed > 0 {
				row.Futex = float64(delta.Syscalls[telemetry.SysFutex]) / float64(open.Completed)
				row.CSPerQ = float64(delta.ContextSwitch) / float64(open.Completed)
			}
			out = append(out, row)
		}
	}
	return out, nil
}
