package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"musuite/internal/telemetry"
)

// WriteTSV writes the experiment data as tab-separated files under dir (one
// per figure), the raw material for regenerating the paper's plots with any
// plotting tool.  Files: fig9.tsv, fig10.tsv, fig11to14.tsv, fig15to18.tsv,
// fig19.tsv.  Either argument may be nil/empty to skip its files.
func WriteTSV(dir string, fig9 []Fig9Row, points []LoadPoint) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bench: creating %s: %w", dir, err)
	}
	write := func(name string, build func(*strings.Builder)) error {
		var b strings.Builder
		build(&b)
		return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
	}

	if len(fig9) > 0 {
		if err := write("fig9.tsv", func(b *strings.Builder) {
			b.WriteString("service\tthroughput_qps\trel_stddev\tconcurrency\n")
			for _, r := range fig9 {
				fmt.Fprintf(b, "%s\t%.1f\t%.4f\t%d\n", r.Service, r.Throughput, r.RelStdDev, r.Concurrency)
			}
		}); err != nil {
			return err
		}
	}
	if len(points) == 0 {
		return nil
	}

	if err := write("fig10.tsv", func(b *strings.Builder) {
		b.WriteString("service\tload_qps\tcount\tp50_ns\tp99_ns\tp999_ns\tmax_ns\n")
		for _, p := range points {
			v := p.Violin
			fmt.Fprintf(b, "%s\t%g\t%d\t%d\t%d\t%d\t%d\n",
				p.Service, p.Load, v.Count, v.Median, v.P99, v.P999, v.Max)
		}
	}); err != nil {
		return err
	}

	if err := write("fig11to14.tsv", func(b *strings.Builder) {
		b.WriteString("service\tload_qps\tsyscall\tcalls_per_query\n")
		for _, p := range points {
			for _, sys := range telemetry.Syscalls() {
				if v := p.SyscallsPerQPS[sys]; v > 0 {
					fmt.Fprintf(b, "%s\t%g\t%s\t%.4f\n", p.Service, p.Load, sys, v)
				}
			}
		}
	}); err != nil {
		return err
	}

	if err := write("fig15to18.tsv", func(b *strings.Builder) {
		b.WriteString("service\tload_qps\tclass\tcount\tp50_ns\tp99_ns\tmax_ns\n")
		for _, p := range points {
			for _, o := range telemetry.Overheads() {
				snap := p.Overheads[o]
				if snap.Count == 0 {
					continue
				}
				fmt.Fprintf(b, "%s\t%g\t%s\t%d\t%d\t%d\t%d\n",
					p.Service, p.Load, o, snap.Count, snap.Median, snap.P99, snap.Max)
			}
		}
	}); err != nil {
		return err
	}

	return write("fig19.tsv", func(b *strings.Builder) {
		b.WriteString("service\tload_qps\tcontext_switches\thitm\ttcp_retransmits\n")
		for _, p := range points {
			fmt.Fprintf(b, "%s\t%g\t%d\t%d\t%d\n", p.Service, p.Load, p.CS, p.HITM, p.TCPRetrans)
		}
	})
}
