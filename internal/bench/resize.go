package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"musuite/internal/dataset"
	"musuite/internal/loadgen"
	"musuite/internal/rpc"
	"musuite/internal/services/router"
	"musuite/internal/telemetry"
)

// Resize measures service latency while the leaf fleet resizes under
// steady load — the live-topology experiment.  One Router deployment is
// driven through four back-to-back open-loop windows:
//
//	steady  — baseline at the configured leaf count
//	add     — a new leaf node joins mid-window (graceful scale-out)
//	drain   — the newest leaf group drains mid-window (graceful scale-in)
//	post    — resized steady state, back at the original leaf count
//
// The acceptance bar is zero transport failures in every phase: a resize
// must be invisible to the client beyond a latency ripple.  Router is the
// subject service because its keys re-place on a resize without data
// movement — a get routed to a fresh shard misses (found=false) and a set
// re-establishes the key, so request errors measure the framework, not
// stale partitioning.  (The data-partitioned services — HDSearch, Set
// Algebra, Recommend — pin shard data at startup, so for them runtime
// add/drain is a failure drill rather than a resharding tool.)
type ResizePhase struct {
	// Phase names the window ("steady", "add", "drain", "post").
	Phase string
	// Leaves is the serving leaf count when the window closed.
	Leaves int
	// Epoch is the topology version when the window closed.
	Epoch uint64
	// Result is the window's open-loop measurement.
	Result loadgen.OpenLoopResult
}

// Resize runs the live-resize experiment against a Router deployment at the
// given offered load.  The topology mutation of the add and drain windows
// fires a third of the way in, so each window captures before/during/after.
func Resize(s Scale, mode FrameworkMode, qps float64) ([]ResizePhase, error) {
	probe := telemetry.NewProbe()
	cl, err := router.StartCluster(router.ClusterConfig{
		Leaves:   s.RouterLeaves,
		Replicas: s.RouterReplicas,
		MidTier:  midTierOptions(s, mode, probe),
		Leaf:     leafOptions(s, mode),
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	client, err := router.DialClient(cl.Addr, nil)
	if err != nil {
		return nil, err
	}
	defer client.Close()

	kvtrace := dataset.NewKVTrace(dataset.KVTraceConfig{
		Keys: s.RouterKeys, ValueSize: s.RouterValueSize, Seed: s.Seed + 500,
	})
	for _, op := range kvtrace.WarmupSets() {
		if err := client.Set(op.Key, op.Value); err != nil {
			return nil, err
		}
	}
	ops := kvtrace.Ops(1 << 14)
	var next atomic.Uint64
	issue := func(done chan *rpc.Call) *rpc.Call {
		op := ops[next.Add(1)%uint64(len(ops))]
		if op.Kind == dataset.KVGet {
			return client.GoGet(op.Key, done)
		}
		return client.GoSet(op.Key, op.Value, done)
	}

	topo := cl.MidTier().Topology()
	var out []ResizePhase
	runPhase := func(name string, mutate func() error) error {
		var mutErr error
		mutDone := make(chan struct{})
		if mutate == nil {
			close(mutDone)
		} else {
			go func() {
				defer close(mutDone)
				time.Sleep(s.Window / 3)
				mutErr = mutate()
			}()
		}
		res := loadgen.RunOpenLoop(issue, loadgen.OpenLoopConfig{
			QPS: qps, Duration: s.Window, Seed: s.Seed + 501 + int64(len(out)),
		})
		<-mutDone
		if mutErr != nil {
			return fmt.Errorf("bench: resize %s phase: %w", name, mutErr)
		}
		out = append(out, ResizePhase{
			Phase:  name,
			Leaves: cl.NumLeaves(),
			Epoch:  topo.Stats().Epoch,
			Result: res,
		})
		return nil
	}

	steps := []struct {
		name   string
		mutate func() error
	}{
		{"steady", nil},
		{"add", func() error {
			_, err := cl.AddLeaf()
			return err
		}},
		{"drain", func() error {
			// Drain the newest (highest-index) shard: under jump routing
			// that is the minimal-movement scale-in.
			return cl.DrainLeaf(cl.NumLeaves()-1, s.Window)
		}},
		{"post", nil},
	}
	for _, st := range steps {
		if err := runPhase(st.name, st.mutate); err != nil {
			return out, err
		}
	}
	return out, nil
}

// RenderResize formats the resize experiment.
func RenderResize(phases []ResizePhase, qps float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live resize under load (Router, %g QPS offered): add and drain a leaf mid-window\n", qps)
	fmt.Fprintf(&b, "  %-8s %-7s %-6s %-9s %-9s %-7s %-8s %-12s %-12s\n",
		"phase", "leaves", "epoch", "offered", "completed", "errors", "dropped", "p50", "p99")
	failures := uint64(0)
	for _, p := range phases {
		r := p.Result
		fmt.Fprintf(&b, "  %-8s %-7d %-6d %-9d %-9d %-7d %-8d %-12v %-12v\n",
			p.Phase, p.Leaves, p.Epoch, r.Offered, r.Completed, r.Errors, r.Dropped,
			r.Latency.Median, r.Latency.P99)
		failures += r.Errors + r.Dropped
	}
	if failures == 0 {
		b.WriteString("  (zero failed requests across every phase: the resize was invisible to clients)\n")
	} else {
		fmt.Fprintf(&b, "  (WARNING: %d failed requests — the resize leaked errors to clients)\n", failures)
	}
	return b.String()
}
