package bench

import (
	"testing"
	"time"

	"musuite/internal/core"
	"musuite/internal/trace"
)

// TestTraceRunProducesConnectedTrees drives every service with span sampling
// on and checks the end-to-end tracing invariants: each sampled request
// yields a single connected span tree rooted at the front-end client span,
// and the critical path through the tree partitions the root span exactly —
// its segment sum equals the recorded end-to-end latency by construction.
func TestTraceRunProducesConnectedTrees(t *testing.T) {
	s := tinyScale()
	for _, name := range ServiceNames {
		spans, res, err := TraceRun(name, s, FrameworkMode{}, 150, 400*time.Millisecond, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Errors > 0 {
			t.Errorf("%s: %d failed requests", name, res.Errors)
		}
		if len(spans) == 0 {
			t.Fatalf("%s: no spans recorded", name)
		}
		if svc, ok := ServiceForTrace(spans); !ok || svc != name {
			t.Errorf("%s: ServiceForTrace = %q, %v", name, svc, ok)
		}
		trees := trace.BuildTrees(spans)
		if len(trees) == 0 {
			t.Fatalf("%s: no trees built from %d spans", name, len(spans))
		}
		for _, tree := range trees {
			if !tree.Connected() {
				t.Fatalf("%s: trace %x not connected (%d spans, %d roots)",
					name, tree.TraceID, len(tree.Spans), len(tree.Roots))
			}
			root := tree.Root()
			// The root must be the front-end client span, and a mid-tier
			// server span must hang off it.
			if root.Span.Kind != trace.KindClient {
				t.Errorf("%s: root kind %q, want client", name, root.Span.Kind)
			}
			if len(root.Children) == 0 {
				t.Errorf("%s: trace %x root has no server child", name, tree.TraceID)
			}
			path := tree.CriticalPath()
			if len(path) == 0 {
				t.Fatalf("%s: empty critical path", name)
			}
			if got, want := trace.PathTotal(path), tree.EndToEnd(); got != want {
				t.Errorf("%s: critical path sums to %v, end-to-end is %v", name, got, want)
			}
		}
	}
}

// TestTraceRunWithHedgingRecordsLosers forces aggressive hedging and checks
// abandoned-loser spans appear, annotated and parented into the same tree.
func TestTraceRunWithHedgingRecordsLosers(t *testing.T) {
	s := tinyScale()
	s.LeafReplicas = 2
	mode := FrameworkMode{
		Tail: core.TailPolicy{
			HedgeDelay:       50 * time.Microsecond,
			HedgeMinDelay:    50 * time.Microsecond,
			RetryBudgetRatio: 10,
			RetryBudgetBurst: 1 << 20,
		},
	}
	spans, _, err := TraceRun("HDSearch", s, mode, 200, 500*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	abandoned := 0
	for i := range spans {
		if spans[i].HasNote("abandoned") {
			abandoned++
			if spans[i].Kind != trace.KindClient {
				t.Errorf("abandoned span has kind %q, want client", spans[i].Kind)
			}
		}
	}
	if abandoned == 0 {
		t.Skip("no hedges lost in this run (timing-dependent); invariant untested")
	}
	// Abandoned spans must still parent into connected trees.
	for _, tree := range trace.BuildTrees(spans) {
		if !tree.Connected() {
			t.Fatalf("trace %x with losers not connected", tree.TraceID)
		}
	}
}

// TestReplayRunReproducesArrivals replays a recorded trace's arrival process
// and checks every replayed request completes.
func TestReplayRunReproducesArrivals(t *testing.T) {
	s := tinyScale()
	spans, _, err := TraceRun("SetAlgebra", s, FrameworkMode{}, 200, 300*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	offsets := trace.ArrivalOffsets(spans)
	if len(offsets) == 0 {
		t.Fatal("no arrivals recorded")
	}
	res, err := ReplayRun("SetAlgebra", s, FrameworkMode{}, spans, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != uint64(len(offsets)) {
		t.Errorf("replay offered %d requests, trace had %d arrivals", res.Offered, len(offsets))
	}
	if res.Errors > 0 || res.Dropped > 0 {
		t.Errorf("replay failed requests: %d errors, %d dropped", res.Errors, res.Dropped)
	}
}
