package core

import (
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/stats"
	"musuite/internal/telemetry"
)

// AdmitPolicy configures the mid-tier's adaptive admission controller: a
// gradient/AIMD concurrency limit driven by observed request latency against
// its EWMA floor, priority headroom so high-priority traffic sheds last, and
// deadline-aware shedding that rejects requests whose remaining budget
// cannot cover the tracked p99 service time.  The zero value disables
// admission entirely.
type AdmitPolicy struct {
	// MaxInflight is the upper bound on the adaptive concurrency limit
	// and the master switch: 0 disables admission.
	MaxInflight int
	// MinInflight is the lower bound the multiplicative decrease cannot
	// cross (default 1 — the controller never deadlocks a tier shut).
	MinInflight int
	// InitInflight is the starting limit (default min(16, MaxInflight)).
	InitInflight int
	// Tolerance is how far observed latency may ride above its EWMA floor
	// before the limit is cut: a window averaging > Tolerance × floor
	// triggers multiplicative decrease, at or below it additive increase.
	// Default 2.0.
	Tolerance float64
	// Slack is an absolute pad on the congestion threshold: a window only
	// counts as congested when its average exceeds floor + Slack as well
	// as Tolerance × floor.  For microsecond-floor services a pure ratio
	// trips on scheduler jitter alone and collapses the limit; the slack
	// requires queueing delay worth shedding over before the limit is
	// cut.  Default 1ms.
	Slack time.Duration
	// Deadline is the per-request latency budget used for deadline-aware
	// shedding: a dispatched request whose queue wait has already consumed
	// enough of it that the remainder is below the tracked p99 service
	// time is shed at worker pickup instead of doing doomed work.
	// 0 disables deadline shedding.
	Deadline time.Duration
	// PriorityHeadroom is the fraction of the current limit additionally
	// available to PriorityHigh requests (default 0.1), so overload sheds
	// normal-priority traffic first.
	PriorityHeadroom float64
}

func (p AdmitPolicy) enabled() bool { return p.MaxInflight > 0 }

func (p AdmitPolicy) withDefaults() AdmitPolicy {
	if p.MinInflight <= 0 {
		p.MinInflight = 1
	}
	if p.InitInflight <= 0 {
		p.InitInflight = 16
	}
	if p.InitInflight > p.MaxInflight {
		p.InitInflight = p.MaxInflight
	}
	if p.MinInflight > p.MaxInflight {
		p.MinInflight = p.MaxInflight
	}
	if p.Tolerance <= 1 {
		p.Tolerance = 2.0
	}
	if p.Slack <= 0 {
		p.Slack = time.Millisecond
	}
	if p.PriorityHeadroom <= 0 {
		p.PriorityHeadroom = 0.1
	}
	return p
}

// admitAdjustEvery is how many completions amortize one AIMD window
// evaluation, and admitP99RefreshEvery how many amortize one p99 digest
// scan — the same cheap-hot-path / amortized-quantile split the hedge
// delay uses (hedgeRefreshEvery).
const (
	admitAdjustEvery     = 64
	admitP99RefreshEvery = 128
)

// admitFloorAlpha is the EWMA weight of the newest window minimum in the
// latency floor estimate.
const admitFloorAlpha = 0.1

// admitController enforces an AdmitPolicy.  acquire/release bracket every
// admitted request; the hot path is two atomics, with the AIMD adjustment
// and the p99 refresh amortized over admitAdjustEvery completions.
type admitController struct {
	pol   AdmitPolicy
	probe *telemetry.Probe

	inflight atomic.Int64
	limit    atomic.Int64 // current AIMD concurrency limit
	headroom atomic.Int64 // extra slots for PriorityHigh, tracks limit

	// Service-time digest feeding the deadline-doomed estimate; p99Ns is
	// the cached quantile the per-dispatch check reads.
	svcLat   *stats.Histogram
	p99Ns    atomic.Int64
	obsCount atomic.Uint64

	// AIMD window state: the min and mean of the last admitAdjustEvery
	// completion latencies, folded into the EWMA floor under mu.
	mu      sync.Mutex
	winMin  time.Duration
	winSum  time.Duration
	winN    int
	floorNs atomic.Int64 // EWMA of window minima (the no-queueing baseline)

	admitted     atomic.Uint64
	shedLimit    atomic.Uint64
	shedDeadline atomic.Uint64
}

func newAdmitController(pol AdmitPolicy, probe *telemetry.Probe) *admitController {
	pol = pol.withDefaults()
	a := &admitController{pol: pol, probe: probe, svcLat: stats.NewHistogram()}
	a.setLimit(int64(pol.InitInflight))
	return a
}

// setLimit stores a clamped limit and its derived priority headroom.
func (a *admitController) setLimit(lim int64) {
	if lim < int64(a.pol.MinInflight) {
		lim = int64(a.pol.MinInflight)
	}
	if lim > int64(a.pol.MaxInflight) {
		lim = int64(a.pol.MaxInflight)
	}
	a.limit.Store(lim)
	hr := int64(float64(lim) * a.pol.PriorityHeadroom)
	if hr < 1 {
		hr = 1
	}
	a.headroom.Store(hr)
}

// acquire admits or sheds one arriving request.  It runs on the network
// poller, so the admit path is two atomic ops.  PriorityHigh requests may
// use the headroom above the limit, so normal traffic sheds first.
func (a *admitController) acquire(pri Priority) bool {
	lim := a.limit.Load()
	if pri == PriorityHigh {
		lim += a.headroom.Load()
	}
	if a.inflight.Add(1) > lim {
		a.inflight.Add(-1)
		a.shedLimit.Add(1)
		a.probe.IncAdmit(telemetry.AdmitShedLimit)
		return false
	}
	a.admitted.Add(1)
	a.probe.IncAdmit(telemetry.AdmitAdmitted)
	return true
}

// cancel releases an admitted slot without feeding the latency signal: the
// request was shed or failed before doing representative work, and its
// (short) latency would drag the floor and the p99 estimate down.
func (a *admitController) cancel() {
	a.inflight.Add(-1)
}

// release completes an admitted request, feeding its end-to-end latency to
// the AIMD window and the service-time digest.
func (a *admitController) release(d time.Duration) {
	a.inflight.Add(-1)
	a.svcLat.Record(d)
	n := a.obsCount.Add(1)
	if n%admitP99RefreshEvery == 0 {
		a.p99Ns.Store(int64(a.svcLat.Quantile(0.99)))
	}
	a.mu.Lock()
	if a.winN == 0 || d < a.winMin {
		a.winMin = d
	}
	a.winSum += d
	a.winN++
	if a.winN < admitAdjustEvery {
		a.mu.Unlock()
		return
	}
	avg := a.winSum / time.Duration(a.winN)
	floor := time.Duration(a.floorNs.Load())
	threshold := time.Duration(a.pol.Tolerance * float64(floor))
	if pad := floor + a.pol.Slack; pad > threshold {
		threshold = pad
	}
	congested := floor > 0 && avg > threshold
	if floor == 0 {
		floor = a.winMin
		a.floorNs.Store(int64(floor))
	} else if !congested {
		// The floor tracks the no-queueing baseline, so only healthy
		// windows update it: folding a congested window's minimum in
		// would re-baseline sustained overload as the new normal and let
		// the limit climb right back into it.  When intrinsic service
		// time genuinely rises, the first post-decrease uncongested
		// window carries the new minimum and the floor follows.
		floor = time.Duration((1-admitFloorAlpha)*float64(floor) + admitFloorAlpha*float64(a.winMin))
		a.floorNs.Store(int64(floor))
	}
	a.winMin, a.winSum, a.winN = 0, 0, 0
	a.mu.Unlock()

	lim := a.limit.Load()
	if congested {
		// Multiplicative decrease: latency has detached from its floor,
		// so queueing — not service time — is filling the window.
		next := lim * 9 / 10
		if next == lim {
			next = lim - 1
		}
		a.setLimit(next)
		if a.limit.Load() < lim {
			a.probe.IncAdmit(telemetry.AdmitLimitDown)
		}
	} else if lim < int64(a.pol.MaxInflight) {
		// Additive increase: probe for headroom one slot at a time.
		a.setLimit(lim + 1)
		a.probe.IncAdmit(telemetry.AdmitLimitUp)
	}
}

// doomed reports whether a request dispatched at arrival should be shed at
// worker pickup: the queue wait has eaten enough of the deadline budget
// that the remainder cannot cover the tracked p99 service time, so the
// work would complete past its deadline — burning a worker to produce a
// reply nobody can use.
func (a *admitController) doomed(arrival time.Time) bool {
	dl := a.pol.Deadline
	if dl <= 0 {
		return false
	}
	remaining := dl - time.Since(arrival)
	if remaining <= 0 {
		a.shedDeadline.Add(1)
		a.probe.IncAdmit(telemetry.AdmitShedDeadline)
		return true
	}
	if p99 := time.Duration(a.p99Ns.Load()); p99 > 0 && remaining < p99 {
		a.shedDeadline.Add(1)
		a.probe.IncAdmit(telemetry.AdmitShedDeadline)
		return true
	}
	return false
}

// currentLimit reports the live AIMD concurrency limit.
func (a *admitController) currentLimit() int { return int(a.limit.Load()) }

// currentInflight reports the admitted requests currently in flight.
func (a *admitController) currentInflight() int { return int(a.inflight.Load()) }

// p99 reports the cached p99 service-time estimate the deadline shed uses.
func (a *admitController) p99() time.Duration { return time.Duration(a.p99Ns.Load()) }
