package core

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"musuite/internal/rpc"
)

// startPinCheckMidTier wires a mid-tier whose "pincheck" handler reads the
// leaf count, does real leaf work, and reads it again — the two reads must
// agree no matter how the topology churns, because the request pinned one
// snapshot at arrival.
func startPinCheckMidTier(t *testing.T, leafAddrs []string) (string, *MidTier) {
	t.Helper()
	mt := NewMidTier(func(ctx *Ctx) {
		switch ctx.Req.Method {
		case "pincheck":
			before := ctx.NumLeaves()
			// Hit the highest shard — the one an in-flight drain targets.
			if _, err := ctx.CallLeaf(before-1, "echo", ctx.Req.Payload); err != nil {
				ctx.ReplyError(err)
				return
			}
			after := ctx.NumLeaves()
			if before != after {
				ctx.ReplyError(fmt.Errorf("leaf count changed mid-request: %d then %d", before, after))
				return
			}
			ctx.Reply([]byte(strconv.Itoa(after)))
		case "sum":
			payload := make([]byte, len(ctx.Req.Payload))
			copy(payload, ctx.Req.Payload)
			ctx.FanoutAll("double", payload, func(results []LeafResult) {
				total := 0
				for _, r := range results {
					if r.Err != nil {
						ctx.ReplyError(r.Err)
						return
					}
					n, _ := strconv.Atoi(string(r.Reply))
					total += n
				}
				ctx.Reply([]byte(strconv.Itoa(total)))
			})
		default:
			ctx.ReplyError(fmt.Errorf("unknown method %q", ctx.Req.Method))
		}
	}, nil)
	if err := mt.ConnectLeaves(leafAddrs); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	return addr, mt
}

// TestSnapshotPinnedAcrossEpochBump drives pincheck requests while leaf
// groups are added and drained underneath them.  A request that straddles an
// epoch bump must never see NumLeaves disagree with itself mid-flight (its
// snapshot is pinned at arrival), and its leaf calls must succeed even when
// they land on the group being drained.  Run under -race this also proves
// the hot path's snapshot reads are properly synchronized with publishes.
func TestSnapshotPinnedAcrossEpochBump(t *testing.T) {
	leafAddrs := make([]string, 2)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	spare, _ := startLeaf(t, nil)
	addr, mt := startPinCheckMidTier(t, leafAddrs)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := make(chan struct{})
	var churnErr error
	var churns int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			shard, err := mt.AddLeafGroup([]string{spare})
			if err != nil {
				churnErr = fmt.Errorf("add: %w", err)
				return
			}
			if err := mt.DrainLeafGroup(shard, 10*time.Second); err != nil {
				churnErr = fmt.Errorf("drain: %w", err)
				return
			}
			churns++
		}
	}()

	var clients sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Call("pincheck", []byte("x")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	clients.Wait()
	close(stop)
	wg.Wait()
	close(errs)

	for err := range errs {
		t.Fatal(err)
	}
	if churnErr != nil {
		t.Fatal(churnErr)
	}
	if churns == 0 {
		t.Fatal("no topology churn happened during the test")
	}
	st := mt.Topology().Stats()
	if st.Adds == 0 || st.Drains == 0 {
		t.Fatalf("stats show no churn: %+v", st)
	}
	if st.DrainTimeouts != 0 {
		t.Fatalf("drains timed out under short requests: %+v", st)
	}
}

// TestDrainChurnStress hammers repeated add/drain cycles under fan-out
// traffic; every request must succeed and every drain must quiesce.  The
// nightly CI job extends the cycle count via MUSUITE_DRAIN_CHURN_CYCLES.
func TestDrainChurnStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cycles := 8
	if s := os.Getenv("MUSUITE_DRAIN_CHURN_CYCLES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			cycles = n
		}
	}

	leafAddrs := make([]string, 3)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	spares := make([]string, 2)
	for i := range spares {
		spares[i], _ = startLeaf(t, nil)
	}
	addr, mt := startPinCheckMidTier(t, leafAddrs)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stop := make(chan struct{})
	var completed atomic.Int64
	errs := make(chan error, 4)
	var clients sync.WaitGroup
	for g := 0; g < 4; g++ {
		clients.Add(1)
		go func(g int) {
			defer clients.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := 1 + (g*31+i)%97
				reply, err := c.Call("sum", []byte(strconv.Itoa(n)))
				if err != nil {
					errs <- fmt.Errorf("sum under churn: %w", err)
					return
				}
				// The pinned snapshot sums 2n over however many leaves it
				// held — always a positive multiple of 2n.
				total, err := strconv.Atoi(string(reply))
				if err != nil || total <= 0 || total%(2*n) != 0 {
					errs <- fmt.Errorf("sum(%d) = %q, not a multiple of %d", n, reply, 2*n)
					return
				}
				completed.Add(1)
			}
		}(g)
	}

	for i := 0; i < cycles; i++ {
		for _, spare := range spares {
			shard, err := mt.AddLeafGroup([]string{spare})
			if err != nil {
				t.Fatalf("cycle %d add: %v", i, err)
			}
			if err := mt.DrainLeafGroup(shard, 15*time.Second); err != nil {
				t.Fatalf("cycle %d drain: %v", i, err)
			}
		}
	}
	close(stop)
	clients.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if completed.Load() == 0 {
		t.Fatal("no traffic completed during the churn")
	}
	st := mt.Topology().Stats()
	if want := uint64(cycles * len(spares)); st.Adds != want || st.Drains != want {
		t.Fatalf("stats = %+v, want %d adds and drains", st, want)
	}
	if st.DrainTimeouts != 0 {
		t.Fatalf("%d drains timed out", st.DrainTimeouts)
	}
	t.Logf("drain churn: %d cycles, %d requests completed, epoch %d",
		cycles, completed.Load(), st.Epoch)
}

// TestMidTierStatsCarryTopology checks the topology fields ride the stats
// wire format.
func TestMidTierStatsCarryTopology(t *testing.T) {
	leafAddrs := make([]string, 2)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	spare, _ := startLeaf(t, nil)
	addr, mt := startPinCheckMidTier(t, leafAddrs)

	shard, err := mt.AddLeafGroup([]string{spare})
	if err != nil {
		t.Fatal(err)
	}
	if err := mt.DrainLeafGroup(shard, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap + add + drain = epoch 3; one add and one drain on record.
	if st.Epoch != 3 || st.TopoAdds != 1 || st.TopoDrains != 1 {
		t.Fatalf("stats = %+v, want epoch 3 with 1 add and 1 drain", st)
	}
	if st.Leaves != 2 {
		t.Fatalf("leaves = %d, want 2 after add+drain", st.Leaves)
	}
}

// TestGroupAddrsRejectsDuplicates covers the bootstrap-time half of
// duplicate-address protection (Topology.AddGroup covers the runtime half).
func TestGroupAddrsRejectsDuplicates(t *testing.T) {
	if _, err := GroupAddrs([]string{"a:1", "b:1", "a:1"}, 1); err == nil {
		t.Fatal("duplicate address accepted")
	}
	groups, err := GroupAddrs([]string{"a:1", "b:1", "c:1", "d:1"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v, want 2 groups of 2", groups)
	}
}
