// Package core implements the μSuite mid-tier microservice framework of
// paper §IV: blocking network pollers feeding a dispatch-based worker pool
// through producer–consumer task queues, asynchronous RPC fan-out to leaf
// microservers, and a dedicated response thread pool that counts down and
// merges leaf responses.  The in-line and polling variants discussed in the
// paper's §VII (blocking-vs-polling, dispatch-vs-in-line) are selectable so
// the ablation experiments can be run.
package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"musuite/internal/telemetry"
)

// WaitMode selects how idle framework threads await work (§VII's
// blocking-vs-polling trade-off).
type WaitMode int

const (
	// WaitBlocking parks idle threads on a condition variable, conserving
	// CPU at the cost of OS wakeup latency — μSuite's default design.
	WaitBlocking WaitMode = iota
	// WaitPolling spins (with scheduler yields) until work arrives,
	// trading CPU burn for lower wakeup latency.
	WaitPolling
	// WaitAdaptive spins briefly and then parks — the hybrid the paper's
	// §VII proposes exploring ("policies that trade off blocking vs.
	// polling, either statically or dynamically").  At high load work
	// usually arrives within the spin budget (polling-like latency); at
	// low load the thread parks (blocking-like CPU economy).
	WaitAdaptive
)

// adaptiveSpinBudget bounds how many scheduler yields an adaptive waiter
// burns before parking.  Each yield costs roughly a context-switch quantum,
// so the budget approximates "spin for about one dispatch latency".
const adaptiveSpinBudget = 64

// String names the wait mode.
func (w WaitMode) String() string {
	switch w {
	case WaitPolling:
		return "polling"
	case WaitAdaptive:
		return "adaptive"
	}
	return "blocking"
}

// DispatchMode selects whether requests are handed to the worker pool or
// executed in-line on the network poller (§VII's dispatch-vs-in-line).
type DispatchMode int

const (
	// Dispatched hands each request to the worker pool — μSuite's default.
	Dispatched DispatchMode = iota
	// Inline runs the handler directly on the network poller thread.
	Inline
	// DispatchAuto switches per request between in-line and dispatched
	// execution based on the observed arrival rate — the "dynamic
	// adaptation system that judiciously chooses to dispatch requests"
	// the paper's §VII proposes (and its μTune successor builds).  Low
	// load runs in-line, skipping the worker wakeup that dominates
	// low-load latency; high load dispatches, keeping pollers free.
	DispatchAuto
)

// String names the dispatch mode.
func (d DispatchMode) String() string {
	switch d {
	case Inline:
		return "inline"
	case DispatchAuto:
		return "auto"
	}
	return "dispatched"
}

// ErrPoolClosed reports a submit to a stopped pool.
var ErrPoolClosed = errors.New("core: worker pool closed")

// ErrQueueFull reports a submit rejected by the queue bound — the overload
// signal a shedding mid-tier converts into a fast error, rather than letting
// queueing grow unbounded past saturation (§V: "the offered load is
// unsustainable and queuing grows unbounded").
var ErrQueueFull = errors.New("core: dispatch queue full")

// Priority orders dispatched work.  The paper's §VII notes that, unlike
// in-line designs, "dispatched models can explicitly prioritize requests" —
// this is that mechanism.
type Priority int

const (
	// PriorityNormal is the default class.
	PriorityNormal Priority = iota
	// PriorityHigh work overtakes any queued normal work.
	PriorityHigh
)

// task carries one queued unit of work and its enqueue instant, from which
// the dispatch/wakeup latency (the paper's Active-Exe analog) is measured.
// Work arrives either as a closure (fn) or, on the hot path, as a shared
// function plus argument (argFn/arg) so per-task closure allocation is
// avoided.
type task struct {
	fn       func()
	argFn    func(any)
	arg      any
	enqueued time.Time
}

// taskRing is a growable circular FIFO of tasks.  A plain slice queue
// (append at the tail, reslice [1:] at the head) erodes its backing
// capacity on every dequeue and reallocates steadily; the ring reuses one
// backing array so a steady-state enqueue/dequeue cycle allocates nothing.
type taskRing struct {
	buf  []task
	head int
	n    int
}

func (r *taskRing) len() int { return r.n }

func (r *taskRing) push(t task) {
	if r.n == len(r.buf) {
		next := make([]task, max(2*len(r.buf), 8))
		for i := 0; i < r.n; i++ {
			next[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = next, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = t
	r.n++
}

func (r *taskRing) pop() task {
	t := r.buf[r.head]
	r.buf[r.head] = task{} // drop references for the collector
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return t
}

func (r *taskRing) reset() {
	r.buf, r.head, r.n = nil, 0, 0
}

// WorkerPool is a fixed-size thread pool fed by a producer–consumer queue.
// Workers "park" and "unpark" on a condition variable (blocking mode) to
// avoid thread creation and management overheads, exactly as §IV describes.
//
// Instrumentation: every enqueue counts one write(2) proxy (the eventfd
// signal a native implementation uses), every dequeue one read(2) proxy,
// condition-variable traffic counts futexes and context switches through
// telemetry.Cond, and the enqueue→execution delay of every task is observed
// under the pool's configured overhead class (Active-Exe for request
// workers, Sched for response threads).
type WorkerPool struct {
	mu     *telemetry.Mutex
	cond   *telemetry.Cond
	queue  taskRing // normal-priority FIFO
	urgent taskRing // high-priority FIFO, always drained first
	closed bool

	mode     WaitMode
	probe    *telemetry.Probe
	overhead telemetry.Overhead
	done     chan struct{} // closed when all workers exit
	workers  int
	maxDepth int // 0 = unbounded
	shed     atomic.Uint64
}

// NewWorkerPool starts n workers.  overhead selects the telemetry class for
// the enqueue→execution latency of this pool's tasks.
func NewWorkerPool(n int, mode WaitMode, probe *telemetry.Probe, overhead telemetry.Overhead) *WorkerPool {
	return NewBoundedWorkerPool(n, 0, mode, probe, overhead)
}

// NewBoundedWorkerPool is NewWorkerPool with a queue-depth bound; submits
// beyond maxDepth queued tasks fail fast with ErrQueueFull (0 = unbounded).
func NewBoundedWorkerPool(n, maxDepth int, mode WaitMode, probe *telemetry.Probe, overhead telemetry.Overhead) *WorkerPool {
	if n < 1 {
		n = 1
	}
	p := &WorkerPool{
		mode:     mode,
		probe:    probe,
		overhead: overhead,
		done:     make(chan struct{}),
		workers:  n,
		maxDepth: maxDepth,
	}
	p.mu = telemetry.NewMutex(probe)
	p.cond = telemetry.NewCond(p.mu, probe)
	exited := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		// Spawning a worker is the clone(2) analog.
		probe.IncSyscall(telemetry.SysClone)
		go func() {
			p.run()
			exited <- struct{}{}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			<-exited
		}
		close(p.done)
	}()
	return p
}

// Workers reports the pool size.
func (p *WorkerPool) Workers() int { return p.workers }

// Shed reports how many submits the queue bound rejected.
func (p *WorkerPool) Shed() uint64 { return p.shed.Load() }

// Submit enqueues fn at normal priority.  It returns ErrPoolClosed after
// Stop.
func (p *WorkerPool) Submit(fn func()) error {
	return p.SubmitPriority(fn, PriorityNormal)
}

// SubmitPriority enqueues fn in the given class; high-priority work is
// executed before any queued normal work.
func (p *WorkerPool) SubmitPriority(fn func(), pri Priority) error {
	return p.enqueue(task{fn: fn, enqueued: time.Now()}, pri)
}

// SubmitArg enqueues fn(arg) at normal priority.  Passing a long-lived fn
// with a per-task arg avoids the closure allocation Submit would incur —
// the leaf-response hot path routes every completed call this way (a
// pointer arg boxes into the interface word without allocating).
func (p *WorkerPool) SubmitArg(fn func(any), arg any) error {
	return p.enqueue(task{argFn: fn, arg: arg, enqueued: time.Now()}, PriorityNormal)
}

// SubmitPriorityArg is SubmitArg with a priority class — the request
// dispatch hot path, where the closure SubmitPriority would allocate per
// request is replaced by one long-lived fn and the request context as arg.
func (p *WorkerPool) SubmitPriorityArg(fn func(any), arg any, pri Priority) error {
	return p.enqueue(task{argFn: fn, arg: arg, enqueued: time.Now()}, pri)
}

func (p *WorkerPool) enqueue(t task, pri Priority) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if p.maxDepth > 0 && p.queue.len()+p.urgent.len() >= p.maxDepth {
		p.mu.Unlock()
		p.shed.Add(1)
		return ErrQueueFull
	}
	if pri == PriorityHigh {
		p.urgent.push(t)
	} else {
		p.queue.push(t)
	}
	// The hand-off signal is the write(2)-on-eventfd analog.  Polling
	// workers never park, so only the modes with parked waiters signal.
	p.probe.IncSyscall(telemetry.SysWrite)
	if p.mode != WaitPolling {
		p.cond.Signal()
	}
	p.mu.Unlock()
	return nil
}

// QueueDepth reports the number of tasks waiting (diagnostics only).
func (p *WorkerPool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queue.len() + p.urgent.len()
}

// Stop drains nothing: queued but unexecuted tasks are dropped.  It blocks
// until every worker has exited.
func (p *WorkerPool) Stop() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.queue.reset()
	p.urgent.reset()
	// Wake any parked workers (blocking or adaptive); harmlessly a no-op
	// for polling workers, which observe the closed flag on their next
	// spin.
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
}

// run is the worker loop: pull a task, observe its dispatch latency, execute,
// and go back to awaiting work.
func (p *WorkerPool) run() {
	for {
		t, ok := p.next()
		if !ok {
			return
		}
		p.probe.ObserveOverhead(p.overhead, time.Since(t.enqueued))
		if t.argFn != nil {
			t.argFn(t.arg)
		} else {
			t.fn()
		}
	}
}

// next blocks (or polls) until a task or shutdown.
func (p *WorkerPool) next() (task, bool) {
	spins := 0
	for {
		p.mu.Lock()
		for p.queue.len() == 0 && p.urgent.len() == 0 && !p.closed {
			switch p.mode {
			case WaitBlocking:
				p.cond.Wait()
				continue
			case WaitAdaptive:
				if spins >= adaptiveSpinBudget {
					// Spin budget exhausted: park like a
					// blocking worker until signalled.
					p.cond.Wait()
					spins = 0
					continue
				}
				spins++
			}
			// Polling (or an adaptive spin): release the lock and
			// yield to the scheduler.  No futex, no park.
			p.mu.Unlock()
			runtime.Gosched()
			p.mu.Lock()
		}
		spins = 0
		if p.closed {
			p.mu.Unlock()
			return task{}, false
		}
		var t task
		if p.urgent.len() > 0 {
			t = p.urgent.pop()
		} else {
			t = p.queue.pop()
		}
		// Consuming the hand-off is the read(2)-on-eventfd analog.
		p.probe.IncSyscall(telemetry.SysRead)
		p.mu.Unlock()
		return t, true
	}
}
