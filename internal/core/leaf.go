package core

import (
	"fmt"
	"sync/atomic"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

// LeafHandler computes one leaf response.  It runs on a leaf worker thread
// and may take the tens-to-hundreds of microseconds that leaf computation
// (distance kernels, set intersections, kNN prediction) typically costs.
type LeafHandler func(method string, payload []byte) ([]byte, error)

// LeafOptions configures a leaf microserver.
type LeafOptions struct {
	// Workers sizes the leaf's worker pool (default 4).  The paper pins
	// leaves to fixed core counts with tasksets; the worker count is the
	// equivalent knob here.
	Workers int
	// Wait selects blocking (default) or polling idle workers.
	Wait WaitMode
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
}

// Leaf is a leaf microserver: an RPC server that dispatches requests to a
// worker pool and replies when the handler completes.  It serves multiple
// concurrent requests from several mid-tier connections.
type Leaf struct {
	server  *rpc.Server
	workers *WorkerPool
	handler LeafHandler
	served  atomic.Uint64
	closed  atomic.Bool
}

// NewLeaf creates a leaf microserver around handler.
func NewLeaf(handler LeafHandler, opts *LeafOptions) *Leaf {
	var (
		workers = 4
		wait    = WaitBlocking
		probe   *telemetry.Probe
	)
	if opts != nil {
		if opts.Workers > 0 {
			workers = opts.Workers
		}
		wait = opts.Wait
		probe = opts.Probe
	}
	l := &Leaf{handler: handler}
	l.workers = NewWorkerPool(workers, wait, probe, telemetry.OverheadActiveExe)
	l.server = rpc.NewServer(l.onRequest, &rpc.ServerOptions{Probe: probe})
	return l
}

// Start binds the leaf server and begins serving.
func (l *Leaf) Start(addr string) (string, error) { return l.server.Start(addr) }

// Served reports the number of requests completed.
func (l *Leaf) Served() uint64 { return l.served.Load() }

// Close shuts the leaf down.
func (l *Leaf) Close() {
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	l.server.Close()
	l.workers.Stop()
}

func (l *Leaf) onRequest(req *rpc.Request) {
	if req.Method == StatsMethod {
		req.Reply(encodeTierStats(l.stats()))
		return
	}
	req.DetachPayload()
	err := l.workers.Submit(func() {
		defer l.served.Add(1)
		defer func() {
			if r := recover(); r != nil {
				req.ReplyError(fmt.Errorf("leaf handler panic: %v", r))
			}
		}()
		reply, err := l.handler(req.Method, req.Payload)
		if err != nil {
			req.ReplyError(err)
		} else {
			req.Reply(reply)
		}
	})
	if err != nil {
		req.ReplyError(err)
	}
}
