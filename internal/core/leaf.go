package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

// LeafHandler computes one leaf response.  It runs on a leaf worker thread
// and may take the tens-to-hundreds of microseconds that leaf computation
// (distance kernels, set intersections, kNN prediction) typically costs.
type LeafHandler func(method string, payload []byte) ([]byte, error)

// LeafBatchHandler computes a whole carrier batch at once: parallel method
// and payload slices in, parallel reply and error slices out (same length,
// errs[i] non-nil for a rejected item).  Services install one when the
// computation has a vectorized form — shared decode state, per-user
// neighborhood caching, duplicate-payload elision — that beats running the
// scalar handler per item.
type LeafBatchHandler func(methods []string, payloads [][]byte) ([][]byte, []error)

// LeafOptions configures a leaf microserver.
type LeafOptions struct {
	// Workers sizes the leaf's worker pool (default 4).  The paper pins
	// leaves to fixed core counts with tasksets; the worker count is the
	// equivalent knob here.
	Workers int
	// Wait selects blocking (default) or polling idle workers.
	Wait WaitMode
	// BatchHandler, when set, executes batched carrier RPCs vectorized;
	// otherwise batch members run through the scalar handler one by one.
	// Either way a whole carrier is one worker task, amortizing the
	// dispatch hand-off across its members.
	BatchHandler LeafBatchHandler
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
}

// LeafOptionsWithBatch clones opts (nil allowed) and installs batch as the
// BatchHandler unless the caller already set one — the hook services use to
// default their vectorized handler while letting callers override it.
func LeafOptionsWithBatch(opts *LeafOptions, batch LeafBatchHandler) *LeafOptions {
	var out LeafOptions
	if opts != nil {
		out = *opts
	}
	if out.BatchHandler == nil {
		out.BatchHandler = batch
	}
	return &out
}

// Leaf is a leaf microserver: an RPC server that dispatches requests to a
// worker pool and replies when the handler completes.  It serves multiple
// concurrent requests from several mid-tier connections.
type Leaf struct {
	server  *rpc.Server
	workers *WorkerPool
	handler LeafHandler
	batch   LeafBatchHandler
	served  atomic.Uint64
	closed  atomic.Bool
}

// NewLeaf creates a leaf microserver around handler.
func NewLeaf(handler LeafHandler, opts *LeafOptions) *Leaf {
	var (
		workers = 4
		wait    = WaitBlocking
		probe   *telemetry.Probe
		batch   LeafBatchHandler
	)
	if opts != nil {
		if opts.Workers > 0 {
			workers = opts.Workers
		}
		wait = opts.Wait
		probe = opts.Probe
		batch = opts.BatchHandler
	}
	l := &Leaf{handler: handler, batch: batch}
	l.workers = NewWorkerPool(workers, wait, probe, telemetry.OverheadActiveExe)
	l.server = rpc.NewServer(l.onRequest, &rpc.ServerOptions{Probe: probe})
	return l
}

// Start binds the leaf server and begins serving.
func (l *Leaf) Start(addr string) (string, error) { return l.server.Start(addr) }

// Served reports the number of requests completed.
func (l *Leaf) Served() uint64 { return l.served.Load() }

// Close shuts the leaf down.
func (l *Leaf) Close() {
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	l.server.Close()
	l.workers.Stop()
}

func (l *Leaf) onRequest(req *rpc.Request) {
	if req.Method == StatsMethod {
		req.Reply(encodeTierStats(l.stats()))
		return
	}
	if req.Method == rpc.BatchMethod {
		l.onBatch(req)
		return
	}
	req.DetachPayload()
	err := l.workers.Submit(func() {
		defer l.served.Add(1)
		defer func() {
			if r := recover(); r != nil {
				req.ReplyError(fmt.Errorf("leaf handler panic: %v", r))
			}
		}()
		reply, err := l.handler(req.Method, req.Payload)
		if err != nil {
			req.ReplyError(err)
		} else {
			req.Reply(reply)
		}
	})
	if err != nil {
		req.ReplyError(err)
	}
}

// onBatch executes a batched carrier RPC.  The whole carrier is one worker
// task — the member requests share a single dispatch hand-off and a single
// reply write, which is the point of batching — and each member's result
// rides back as a per-item status, so one poisoned item fails alone.
func (l *Leaf) onBatch(req *rpc.Request) {
	req.DetachPayload()
	err := l.workers.Submit(func() {
		items, err := rpc.DecodeBatch(req.Payload)
		if err != nil {
			req.ReplyError(err)
			return
		}
		replies, errs := l.runBatch(items)
		l.served.Add(uint64(len(items)))
		req.Reply(rpc.EncodeBatchReply(replies, errs))
	})
	if err != nil {
		req.ReplyError(err)
	}
}

// runBatch executes batch members through the vectorized handler when one
// is installed, else the scalar handler per item.  A scalar panic fails
// only its item; a vectorized panic (or a mis-shaped result) fails every
// member individually — never re-executed scalar, since the vectorized run
// may already have had effects, and never a carrier-level error, which the
// mid-tier would misread as a retryable transport failure.
func (l *Leaf) runBatch(items []rpc.BatchItem) ([][]byte, []error) {
	methods := make([]string, len(items))
	payloads := make([][]byte, len(items))
	for i := range items {
		methods[i] = items[i].Method
		payloads[i] = items[i].Payload
	}
	if l.batch != nil {
		replies, errs, ok := l.runVectorized(methods, payloads)
		if ok {
			return replies, errs
		}
		replies = make([][]byte, len(items))
		errs = make([]error, len(items))
		for i := range errs {
			errs[i] = errVectorizedBatch
		}
		return replies, errs
	}
	replies := make([][]byte, len(items))
	errs := make([]error, len(items))
	for i := range items {
		replies[i], errs[i] = l.runOne(methods[i], payloads[i])
	}
	return replies, errs
}

// errVectorizedBatch marks members of a batch whose vectorized handler
// panicked or returned mis-shaped results.
var errVectorizedBatch = errors.New("leaf batch handler failed")

// runVectorized guards the vectorized handler; ok is false on panic or a
// result whose shape does not match the input.
func (l *Leaf) runVectorized(methods []string, payloads [][]byte) (replies [][]byte, errs []error, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			replies, errs, ok = nil, nil, false
		}
	}()
	replies, errs = l.batch(methods, payloads)
	if len(replies) != len(methods) || len(errs) != len(methods) {
		return nil, nil, false
	}
	return replies, errs, true
}

// runOne guards one scalar execution within a batch.
func (l *Leaf) runOne(method string, payload []byte) (reply []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("leaf handler panic: %v", r)
		}
	}()
	return l.handler(method, payload)
}
