package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/kernel"
	"musuite/internal/rpc"
	"musuite/internal/telemetry"
	"musuite/internal/trace"
	"musuite/internal/wire"
)

// LeafHandler computes one leaf response.  It runs on a leaf worker thread
// and may take the tens-to-hundreds of microseconds that leaf computation
// (distance kernels, set intersections, kNN prediction) typically costs.
// The payload is valid only for the duration of the call; the returned
// reply may alias it (the reply is copied to the wire before the payload's
// backing storage is recycled).
type LeafHandler func(method string, payload []byte) ([]byte, error)

// EncodedLeafHandler is the allocation-free form of LeafHandler: instead of
// returning a reply slice, the handler appends its encoded reply to a
// pooled encoder the leaf provides (and recycles after the reply is copied
// to the wire).  Services on the hot path implement this form so a
// steady-state leaf response allocates nothing.
type EncodedLeafHandler func(method string, payload []byte, reply *wire.Encoder) error

// LeafBatchHandler computes a whole carrier batch at once: parallel method
// and payload slices in, parallel reply and error slices out (same length,
// errs[i] non-nil for a rejected item).  Services install one when the
// computation has a vectorized form — shared decode state, per-user
// neighborhood caching, duplicate-payload elision — that beats running the
// scalar handler per item.
type LeafBatchHandler func(methods []string, payloads [][]byte) ([][]byte, []error)

// LeafOptions configures a leaf microserver.
type LeafOptions struct {
	// Workers sizes the leaf's worker pool (default 4).  The paper pins
	// leaves to fixed core counts with tasksets; the worker count is the
	// equivalent knob here.
	Workers int
	// Wait selects blocking (default) or polling idle workers.
	Wait WaitMode
	// BatchHandler, when set, executes batched carrier RPCs vectorized;
	// otherwise batch members run through the scalar handler one by one.
	// Either way a whole carrier is one worker task, amortizing the
	// dispatch hand-off across its members.
	BatchHandler LeafBatchHandler
	// DisableWriteCoalesce reverts the leaf's server to one write syscall
	// per response frame instead of coalescing concurrent responses.
	DisableWriteCoalesce bool
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
	// Kernel is the compute engine the leaf's handlers scan with; services
	// call EnsureLeafKernel so a leaf always has one, and its counters feed
	// the leaf's TierStats (KernelPoints/KernelNanos).
	Kernel *kernel.Engine
	// Spans, when set, records a server span for every sampled request
	// (and every sampled member of a batched carrier), parented to the
	// caller's client span carried on the wire.
	Spans *trace.Recorder
}

// EnsureLeafKernel clones opts (nil allowed) and fills in a compute engine
// wired to the options' probe if the caller did not supply one — the hook
// services use so every leaf owns per-leaf kernel counters.
func EnsureLeafKernel(opts *LeafOptions) *LeafOptions {
	var out LeafOptions
	if opts != nil {
		out = *opts
	}
	if out.Kernel == nil {
		out.Kernel = kernel.New(kernel.Config{Probe: out.Probe})
	}
	return &out
}

// LeafOptionsWithBatch clones opts (nil allowed) and installs batch as the
// BatchHandler unless the caller already set one — the hook services use to
// default their vectorized handler while letting callers override it.
func LeafOptionsWithBatch(opts *LeafOptions, batch LeafBatchHandler) *LeafOptions {
	var out LeafOptions
	if opts != nil {
		out = *opts
	}
	if out.BatchHandler == nil {
		out.BatchHandler = batch
	}
	return &out
}

// Leaf is a leaf microserver: an RPC server that dispatches requests to a
// worker pool and replies when the handler completes.  It serves multiple
// concurrent requests from several mid-tier connections.
type Leaf struct {
	server  *rpc.Server
	workers *WorkerPool
	handler LeafHandler
	encoded EncodedLeafHandler
	batch   LeafBatchHandler
	// runFn and batchFn are the worker-pool entry points, bound once so the
	// per-request submit carries no closure.
	runFn   func(any)
	batchFn func(any)
	kern    *kernel.Engine
	spans   *trace.Recorder
	served  atomic.Uint64
	closed  atomic.Bool
}

// NewLeaf creates a leaf microserver around handler.
func NewLeaf(handler LeafHandler, opts *LeafOptions) *Leaf {
	l := newLeaf(opts)
	l.handler = handler
	return l
}

// NewLeafEncoded creates a leaf whose handler encodes replies into a pooled
// encoder instead of returning fresh slices — the zero-allocation handler
// form.
func NewLeafEncoded(handler EncodedLeafHandler, opts *LeafOptions) *Leaf {
	l := newLeaf(opts)
	l.encoded = handler
	return l
}

func newLeaf(opts *LeafOptions) *Leaf {
	var (
		workers  = 4
		wait     = WaitBlocking
		probe    *telemetry.Probe
		batch    LeafBatchHandler
		kern     *kernel.Engine
		coalesce = true
		spans    *trace.Recorder
	)
	if opts != nil {
		if opts.Workers > 0 {
			workers = opts.Workers
		}
		wait = opts.Wait
		probe = opts.Probe
		batch = opts.BatchHandler
		kern = opts.Kernel
		coalesce = !opts.DisableWriteCoalesce
		spans = opts.Spans
	}
	l := &Leaf{batch: batch, kern: kern, spans: spans}
	l.runFn = l.runScalar
	l.batchFn = l.runBatchTask
	l.workers = NewWorkerPool(workers, wait, probe, telemetry.OverheadActiveExe)
	l.server = rpc.NewServer(l.onRequest, &rpc.ServerOptions{
		Probe:                probe,
		DisableWriteCoalesce: !coalesce,
	})
	return l
}

// Start binds the leaf server and begins serving.
func (l *Leaf) Start(addr string) (string, error) { return l.server.Start(addr) }

// Served reports the number of requests completed.
func (l *Leaf) Served() uint64 { return l.served.Load() }

// Close shuts the leaf down.
func (l *Leaf) Close() {
	if !l.closed.CompareAndSwap(false, true) {
		return
	}
	l.server.Close()
	l.workers.Stop()
}

func (l *Leaf) onRequest(req *rpc.Request) {
	if req.Method == StatsMethod {
		req.Reply(encodeTierStats(l.stats()))
		return
	}
	// The payload must outlive the poller's read buffer; a pooled copy
	// costs no steady-state allocation and is recycled once the worker has
	// replied (every reply/payload byte is copied to the wire before then).
	req.DetachPayloadPooled()
	fn := l.runFn
	if req.Method == rpc.BatchMethod {
		fn = l.batchFn
	}
	if err := l.workers.SubmitArg(fn, req); err != nil {
		if errors.Is(err, ErrQueueFull) {
			// A leaf past its queue bound sheds with the typed overload
			// error: the mid-tier's retry machinery must not re-issue
			// (or spend budget on) deliberate backpressure.
			req.ReplyError(rpc.Overloadf("leaf dispatch queue full"))
		} else {
			req.ReplyError(err)
		}
		req.ReleasePayload()
	}
}

// runScalar executes one plain request on a worker thread.
func (l *Leaf) runScalar(a any) {
	req := a.(*rpc.Request)
	defer l.served.Add(1)
	defer req.ReleasePayload()
	defer func() {
		if r := recover(); r != nil {
			req.ReplyError(fmt.Errorf("leaf handler panic: %v", r))
		}
	}()
	var handlerErr error
	if l.encoded != nil {
		e := wire.GetEncoder()
		if err := l.encoded(req.Method, req.Payload, e); err != nil {
			handlerErr = err
			req.ReplyError(err)
		} else {
			req.Reply(e.Bytes())
		}
		wire.PutEncoder(e)
	} else {
		reply, err := l.handler(req.Method, req.Payload)
		if err != nil {
			handlerErr = err
			req.ReplyError(err)
		} else {
			req.Reply(reply)
		}
	}
	l.recordServerSpan(req.TraceContext(), req.Method, req, handlerErr, false)
}

// recordServerSpan emits the leaf's server span for one sampled request:
// a child of the caller's client span, covering arrival → reply.  The
// untraced path takes one branch and allocates nothing.
func (l *Leaf) recordServerSpan(ctx trace.SpanContext, method string, req *rpc.Request, err error, batched bool) {
	if l.spans == nil || !ctx.Sampled() {
		return
	}
	child := ctx.Child()
	s := trace.Span{
		TraceID:  trace.ID(child.TraceID),
		SpanID:   trace.ID(child.SpanID),
		ParentID: trace.ID(child.ParentID),
		Name:     method,
		Kind:     trace.KindServer,
		Start:    req.Arrival.UnixNano(),
		Duration: time.Since(req.Arrival).Nanoseconds(),
	}
	if err != nil {
		s.Err = err.Error()
	}
	if batched {
		s.Notes = []string{"batch-member"}
	}
	l.spans.Record(s)
}

// batchScratch recycles the parallel method/payload slices of a decoded
// carrier across batch executions.
type batchScratch struct {
	methods  []string
	payloads [][]byte
	spans    []trace.SpanContext
}

var batchScratches = sync.Pool{New: func() any { return new(batchScratch) }}

func getBatchScratch() *batchScratch {
	sc := batchScratches.Get().(*batchScratch)
	sc.methods = sc.methods[:0]
	sc.payloads = sc.payloads[:0]
	sc.spans = sc.spans[:0]
	return sc
}

func putBatchScratch(sc *batchScratch) {
	for i := range sc.methods {
		sc.methods[i] = ""
	}
	for i := range sc.payloads {
		sc.payloads[i] = nil
	}
	batchScratches.Put(sc)
}

// runBatchTask executes a batched carrier RPC on a worker thread.  The
// whole carrier is one worker task — the member requests share a single
// dispatch hand-off and a single reply write, which is the point of
// batching — and each member's result rides back as a per-item status, so
// one poisoned item fails alone.
func (l *Leaf) runBatchTask(a any) {
	req := a.(*rpc.Request)
	defer req.ReleasePayload()
	sc := getBatchScratch()
	defer putBatchScratch(sc)
	var err error
	sc.methods, sc.payloads, sc.spans, err = rpc.DecodeBatchInto(req.Payload, sc.methods, sc.payloads, sc.spans)
	if err != nil {
		req.ReplyError(err)
		return
	}
	enc := wire.GetEncoder()
	l.appendBatchReplies(enc, sc)
	l.served.Add(uint64(len(sc.methods)))
	req.Reply(enc.Bytes())
	wire.PutEncoder(enc)
	if l.spans != nil {
		// Each sampled member gets its own server span — a child of that
		// member's client span, so the tree stays connected through the
		// carrier.  All members share the carrier's execution window.
		for i := range sc.spans {
			l.recordServerSpan(sc.spans[i], sc.methods[i], req, nil, true)
		}
	}
}

// appendBatchReplies runs every member and streams the carrier reply into
// enc.  Vectorized handlers run as before; scalar members (encoded or
// legacy) are encoded straight into the carrier so no per-member reply
// slice survives the loop.  A scalar panic fails only its item; a
// vectorized panic (or a mis-shaped result) fails every member
// individually — never re-executed scalar, since the vectorized run may
// already have had effects, and never a carrier-level error, which the
// mid-tier would misread as a retryable transport failure.
func (l *Leaf) appendBatchReplies(enc *wire.Encoder, sc *batchScratch) {
	n := len(sc.methods)
	if l.batch != nil {
		replies, errs, ok := l.runVectorized(sc.methods, sc.payloads)
		if ok {
			rpc.AppendBatchReply(enc, replies, errs)
			return
		}
		rpc.AppendBatchReplyHeader(enc, n)
		for i := 0; i < n; i++ {
			rpc.AppendBatchReplyItem(enc, nil, errVectorizedBatch)
		}
		return
	}
	rpc.AppendBatchReplyHeader(enc, n)
	if l.encoded != nil {
		member := wire.GetEncoder()
		for i := range sc.methods {
			member.Reset()
			if err := l.runOneEncoded(sc.methods[i], sc.payloads[i], member); err != nil {
				rpc.AppendBatchReplyItem(enc, nil, err)
			} else {
				rpc.AppendBatchReplyItem(enc, member.Bytes(), nil)
			}
		}
		wire.PutEncoder(member)
		return
	}
	for i := range sc.methods {
		reply, err := l.runOne(sc.methods[i], sc.payloads[i])
		rpc.AppendBatchReplyItem(enc, reply, err)
	}
}

// errVectorizedBatch marks members of a batch whose vectorized handler
// panicked or returned mis-shaped results.
var errVectorizedBatch = errors.New("leaf batch handler failed")

// runVectorized guards the vectorized handler; ok is false on panic or a
// result whose shape does not match the input.
func (l *Leaf) runVectorized(methods []string, payloads [][]byte) (replies [][]byte, errs []error, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			replies, errs, ok = nil, nil, false
		}
	}()
	replies, errs = l.batch(methods, payloads)
	if len(replies) != len(methods) || len(errs) != len(methods) {
		return nil, nil, false
	}
	return replies, errs, true
}

// runOne guards one scalar execution within a batch.
func (l *Leaf) runOne(method string, payload []byte) (reply []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("leaf handler panic: %v", r)
		}
	}()
	return l.handler(method, payload)
}

// runOneEncoded guards one encoded scalar execution within a batch.  On
// panic e may hold a partial encoding; callers must discard it.
func (l *Leaf) runOneEncoded(method string, payload []byte, e *wire.Encoder) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("leaf handler panic: %v", r)
		}
	}()
	return l.encoded(method, payload, e)
}
