package core

import (
	"sync"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/trace"
)

// startSpanLeaf is startWorkLeaf with span recording attached.
func startSpanLeaf(t *testing.T, rec *trace.Recorder, handler LeafHandler) (string, *Leaf) {
	t.Helper()
	leaf := NewLeaf(handler, &LeafOptions{Workers: 4, Spans: rec})
	addr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)
	return addr, leaf
}

func echoAfter(d time.Duration) LeafHandler {
	return func(method string, payload []byte) ([]byte, error) {
		if d > 0 {
			time.Sleep(d)
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		return out, nil
	}
}

// tracedCall issues one sampled request and waits for its reply.
func tracedCall(t *testing.T, c *rpc.Client) {
	t.Helper()
	call := c.GoSpan("work", []byte("x"), trace.NewRootContext(), nil, nil)
	<-call.Done
	if call.Err != nil {
		t.Fatal(call.Err)
	}
}

// snapshotWhen polls the recorder until cond accepts the span set (the
// mid-tier records spans in finish(), which can trail the client's reply by
// a scheduling quantum).
func snapshotWhen(t *testing.T, rec *trace.Recorder, cond func([]trace.Span) bool) []trace.Span {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		spans := rec.Snapshot()
		if cond(spans) || time.Now().After(deadline) {
			return spans
		}
		time.Sleep(time.Millisecond)
	}
}

func assertConnected(t *testing.T, spans []trace.Span) {
	t.Helper()
	for _, tree := range trace.BuildTrees(spans) {
		if !tree.Connected() {
			t.Fatalf("trace %x not connected: %d spans, %d roots",
				tree.TraceID, len(tree.Spans), len(tree.Roots))
		}
	}
}

// TestHedgeLoserSpansParented forces a hedge on every request (fixed 100µs
// hedge delay against 2ms leaves) and checks the losing attempt is
// recorded: annotated "abandoned", kind client, and parented to the same
// span as the winning attempt — so winner and loser are siblings in the
// request's tree.
func TestHedgeLoserSpansParented(t *testing.T) {
	rec := trace.NewRecorder("test", 1<<16)
	addrA, _ := startSpanLeaf(t, rec, echoAfter(2*time.Millisecond))
	addrB, _ := startSpanLeaf(t, rec, echoAfter(2*time.Millisecond))
	addr, _ := startTailMidTier(t, [][]string{{addrA, addrB}}, &Options{
		Workers: 4,
		Spans:   rec,
		Tail: TailPolicy{
			HedgeDelay:       100 * time.Microsecond,
			HedgeMinDelay:    100 * time.Microsecond,
			RetryBudgetRatio: 10,
			RetryBudgetBurst: 1 << 20,
		},
	}, nil)
	c, err := rpc.Dial(addr, &rpc.ClientOptions{Spans: rec})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const requests = 20
	for i := 0; i < requests; i++ {
		tracedCall(t, c)
	}
	spans := snapshotWhen(t, rec, func(spans []trace.Span) bool {
		n := 0
		for i := range spans {
			if spans[i].HasNote("abandoned") {
				n++
			}
		}
		return n >= requests
	})

	abandoned := 0
	for i := range spans {
		s := &spans[i]
		if !s.HasNote("abandoned") {
			continue
		}
		abandoned++
		if s.Kind != trace.KindClient {
			t.Errorf("abandoned span %s has kind %q, want client", s.Name, s.Kind)
		}
		// The winner must be a sibling: same parent, same trace, not
		// abandoned.
		winner := false
		for j := range spans {
			w := &spans[j]
			if w.TraceID == s.TraceID && w.ParentID == s.ParentID &&
				w.SpanID != s.SpanID && w.Kind == trace.KindClient && !w.HasNote("abandoned") {
				winner = true
				break
			}
		}
		if !winner {
			t.Errorf("abandoned span %x in trace %x has no winning sibling", s.SpanID, s.TraceID)
		}
	}
	// With a 100µs hedge against 2ms leaves, every request hedges and one
	// attempt always loses.
	if abandoned < requests {
		t.Errorf("recorded %d abandoned spans for %d always-hedged requests", abandoned, requests)
	}
	assertConnected(t, spans)
}

// TestRetrySpansRecorded kills one replica while traced fan-outs are in
// flight on it (retries only fire on transport-class failures, never on
// application errors) and checks both attempts surface in the trace: the
// failed attempt carrying its connection error, the re-issue annotated
// "retry", and the two parented as siblings under the request's span.
func TestRetrySpansRecorded(t *testing.T) {
	rec := trace.NewRecorder("test", 1<<16)
	slow := echoAfter(10 * time.Millisecond)
	addrA, leafA := startSpanLeaf(t, rec, slow)
	addrB, _ := startSpanLeaf(t, rec, slow)
	addr, mt := startTailMidTier(t, [][]string{{addrA, addrB}}, &Options{
		Workers: 4,
		Spans:   rec,
		Tail: TailPolicy{
			LeafRetries:      2,
			RetryBudgetRatio: 10,
			RetryBudgetBurst: 1 << 20,
		},
	}, nil)

	// Launch a burst of traced requests so join-the-shortest-queue spreads
	// in-flight attempts over both replicas, then kill replica A under
	// them.  Its pending attempts fail with a connection error, and every
	// retry lands on replica B (maybeRetry excludes the failed replica).
	const requests = 32
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rpc.Dial(addr, &rpc.ClientOptions{Spans: rec})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			call := c.GoSpan("work", []byte("x"), trace.NewRootContext(), nil, nil)
			<-call.Done
			if call.Err != nil {
				errs <- call.Err
			}
		}()
	}
	// Let every request reach a replica (leaves hold them 10ms), then kill
	// A while they are pending — closing earlier risks a request issuing
	// its primary to the already-dead replica and burning its retries on
	// the same corpse (a fresh JSQ pick favours the idle dead replica).
	time.Sleep(5 * time.Millisecond)
	leafA.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if mt.stats().Retries == 0 {
		t.Fatal("no retries fired: the leaf kill raced past the in-flight window")
	}

	spans := snapshotWhen(t, rec, func(spans []trace.Span) bool {
		for i := range spans {
			if spans[i].HasNote("retry") {
				return true
			}
		}
		return false
	})
	retries := 0
	for i := range spans {
		s := &spans[i]
		if !s.HasNote("retry") {
			continue
		}
		retries++
		if s.Kind != trace.KindClient {
			t.Errorf("retry span has kind %q, want client", s.Kind)
		}
		// The superseded attempt must be a sibling: normally recorded with
		// the transport error that triggered the retry, or — when the
		// failure races attempt registration — retired by the cancel sweep
		// as an abandoned loser.
		sibling := false
		for j := range spans {
			w := &spans[j]
			if w.TraceID == s.TraceID && w.ParentID == s.ParentID &&
				w.SpanID != s.SpanID && (w.Err != "" || w.HasNote("abandoned")) {
				sibling = true
				break
			}
		}
		if !sibling {
			t.Errorf("retry span %x in trace %x has no superseded sibling attempt", s.SpanID, s.TraceID)
		}
	}
	if retries == 0 {
		t.Fatal("retries fired but no attempt span carries the retry note")
	}
	failed := 0
	for i := range spans {
		if spans[i].Kind == trace.KindClient && spans[i].Err != "" {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no attempt span carries the connection error that forced the retries")
	}
	assertConnected(t, spans)
}

// TestBatchedMemberSpansParented runs traced requests through a coalescing
// mid-tier and checks every batched member carries its own child span,
// parented under its OWN request's span — coalescing must not reparent
// members onto the carrier's trace.
func TestBatchedMemberSpansParented(t *testing.T) {
	rec := trace.NewRecorder("test", 1<<16)
	addrA, _ := startSpanLeaf(t, rec, echoAfter(0))
	addrB, _ := startSpanLeaf(t, rec, echoAfter(0))
	addr, _ := startTailMidTier(t, [][]string{{addrA}, {addrB}}, &Options{
		Workers: 4,
		Spans:   rec,
		Batch:   BatchPolicy{MaxBatch: 8, Delay: 200 * time.Microsecond},
	}, nil)

	const goroutines, perG = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rpc.Dial(addr, &rpc.ClientOptions{Spans: rec})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				call := c.GoSpan("work", []byte("x"), trace.NewRootContext(), nil, nil)
				<-call.Done
				if call.Err != nil {
					errs <- call.Err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = goroutines * perG
	spans := snapshotWhen(t, rec, func(spans []trace.Span) bool {
		n := 0
		for i := range spans {
			if spans[i].Kind == trace.KindServer && spans[i].ParentID != 0 && spans[i].Name == "work" {
				// leaf server spans
				n++
			}
		}
		return n >= 2*total
	})

	batched := 0
	byID := make(map[[2]trace.ID]*trace.Span, len(spans))
	for i := range spans {
		byID[[2]trace.ID{spans[i].TraceID, spans[i].SpanID}] = &spans[i]
	}
	for i := range spans {
		s := &spans[i]
		if !s.HasNote("batched") {
			continue
		}
		batched++
		parent := byID[[2]trace.ID{s.TraceID, s.ParentID}]
		if parent == nil {
			t.Fatalf("batched member span %x: parent %x missing from trace %x",
				s.SpanID, s.ParentID, s.TraceID)
		}
		if parent.Kind != trace.KindServer {
			t.Errorf("batched member parented to %q span %s, want its request's server span",
				parent.Kind, parent.Name)
		}
	}
	// Every leaf call passes through the batcher in batching mode, and every
	// request fans out to both shards.
	if batched != 2*total {
		t.Errorf("%d batched member spans, want %d (one per leaf call)", batched, 2*total)
	}
	assertConnected(t, spans)
}
