package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"musuite/internal/rpc"
)

// startWorkLeaf launches a leaf whose "work" handler sleeps delay() before
// echoing, modelling a replica with an injectable latency profile.
func startWorkLeaf(t *testing.T, delay func() time.Duration) (string, *Leaf) {
	t.Helper()
	leaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
		if d := delay(); d > 0 {
			time.Sleep(d)
		}
		out := make([]byte, len(payload))
		copy(out, payload)
		return out, nil
	}, &LeafOptions{Workers: 4})
	addr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)
	return addr, leaf
}

// startTailMidTier wires a mid-tier that fans "work" to every shard and
// counts merge invocations, for hedging/cancellation assertions.
func startTailMidTier(t *testing.T, groups [][]string, opts *Options, merges *atomic.Uint64) (string, *MidTier) {
	t.Helper()
	mt := NewMidTier(func(ctx *Ctx) {
		ctx.FanoutAll("work", ctx.Req.Payload, func(results []LeafResult) {
			if merges != nil {
				merges.Add(1)
			}
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
			}
			ctx.Reply([]byte("ok"))
		})
	}, opts)
	if err := mt.ConnectLeafGroups(groups); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	return addr, mt
}

func noDelay() time.Duration { return 0 }

func p99(lat []time.Duration) time.Duration {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)*99/100]
}

func TestReplicaGroupPicksLeastOutstanding(t *testing.T) {
	fastAddr, fast := startWorkLeaf(t, noDelay)
	slowAddr, slow := startWorkLeaf(t, func() time.Duration { return 5 * time.Millisecond })
	addr, _ := startTailMidTier(t, [][]string{{fastAddr, slowAddr}}, &Options{Workers: 4}, nil)

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rpc.Dial(addr, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				if _, err := c.Call("q", []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	fastServed, slowServed := fast.Served(), slow.Served()
	if fastServed+slowServed != goroutines*perG {
		t.Fatalf("served %d+%d, want %d total", fastServed, slowServed, goroutines*perG)
	}
	// Join-the-shortest-queue must steer the bulk of concurrent traffic
	// away from the 5ms replica.
	if fastServed <= 2*slowServed {
		t.Fatalf("fast replica served %d, slow %d: least-outstanding routing not biasing", fastServed, slowServed)
	}
}

func TestHedgingReducesTailLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive tail-latency measurement")
	}
	const requests = 500

	// Three shards, two replicas each.  One replica of shard 0 stalls
	// 25ms on every 16th of its requests — an intermittently slow leaf,
	// the classic tail scenario hedging targets.
	run := func(tail TailPolicy) (time.Duration, TierStats) {
		groups := make([][]string, 3)
		for s := range groups {
			for r := 0; r < 2; r++ {
				var delay func() time.Duration
				if s == 0 && r == 1 {
					var n atomic.Uint64
					delay = func() time.Duration {
						if n.Add(1)%16 == 0 {
							return 25 * time.Millisecond
						}
						return 0
					}
				} else {
					delay = noDelay
				}
				addr, _ := startWorkLeaf(t, delay)
				groups[s] = append(groups[s], addr)
			}
		}
		addr, mt := startTailMidTier(t, groups, &Options{Workers: 4, Tail: tail}, nil)
		c, err := rpc.Dial(addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		lat := make([]time.Duration, 0, requests)
		for i := 0; i < requests; i++ {
			start := time.Now()
			if _, err := c.Call("q", []byte("x")); err != nil {
				t.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
		return p99(lat), mt.stats()
	}

	unhedgedP99, _ := run(TailPolicy{})
	hedgedP99, st := run(TailPolicy{HedgePercentile: 0.95, HedgeMinDelay: time.Millisecond})

	t.Logf("p99 unhedged=%v hedged=%v (hedges=%d wins=%d denied=%d)",
		unhedgedP99, hedgedP99, st.Hedges, st.HedgeWins, st.BudgetDenied)
	if st.Hedges == 0 {
		t.Fatal("no hedges issued under an intermittently slow replica")
	}
	if st.HedgeWins == 0 {
		t.Fatal("no hedge ever beat its 25ms-stalled primary")
	}
	if 2*hedgedP99 > unhedgedP99 {
		t.Fatalf("hedging p99=%v did not improve ≥2x over unhedged p99=%v", hedgedP99, unhedgedP99)
	}
}

func TestRetryBudgetCapsHedging(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive budget accounting")
	}
	// Both replicas always take 2ms, so with a 500µs fixed hedge delay
	// every request wants a hedge: a broadly degraded cluster where
	// unbudgeted hedging would double leaf traffic.
	slow := func() time.Duration { return 2 * time.Millisecond }
	addrA, leafA := startWorkLeaf(t, slow)
	addrB, leafB := startWorkLeaf(t, slow)
	addr, mt := startTailMidTier(t, [][]string{{addrA, addrB}}, &Options{
		Workers: 4,
		Tail: TailPolicy{
			HedgeDelay:       500 * time.Microsecond,
			RetryBudgetRatio: 0.1,
			RetryBudgetBurst: 5,
		},
	}, nil)

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const requests = 300
	for i := 0; i < requests; i++ {
		if _, err := c.Call("q", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Let abandoned hedge losers finish their server-side work before
	// reading the leaf counters.
	time.Sleep(50 * time.Millisecond)

	st := mt.stats()
	// Budget supply: 5 burst tokens + 0.1 per primary → ≤ 35 hedges.
	const maxHedges = 5 + requests/10 + 1
	if st.Hedges > maxHedges {
		t.Fatalf("%d hedges issued, budget should cap at %d", st.Hedges, maxHedges)
	}
	if st.Hedges < 20 {
		t.Fatalf("only %d hedges issued, expected the budget to admit ~%d", st.Hedges, maxHedges)
	}
	if st.BudgetDenied < 200 {
		t.Fatalf("only %d hedges denied, expected the bucket to run dry (~%d denials)", st.BudgetDenied, requests-maxHedges)
	}
	extra := leafA.Served() + leafB.Served() - requests
	if extra > maxHedges {
		t.Fatalf("leaves served %d extra calls, budget should cap recovery traffic at %d", extra, maxHedges)
	}
}

func TestHedgeCancellationNoDoubleMerge(t *testing.T) {
	// Both replicas respond after ~3ms — far beyond the 500µs hedge
	// delay — so nearly every request has two in-flight attempts and
	// both eventually produce a response.  Exactly one may win the slot;
	// the merge must run once per request.
	slow := func() time.Duration { return 3 * time.Millisecond }
	addrA, _ := startWorkLeaf(t, slow)
	addrB, _ := startWorkLeaf(t, slow)
	var merges atomic.Uint64
	addr, mt := startTailMidTier(t, [][]string{{addrA, addrB}}, &Options{
		Workers: 4,
		Tail: TailPolicy{
			HedgeDelay:       500 * time.Microsecond,
			RetryBudgetRatio: 1.0,
			RetryBudgetBurst: 1000,
		},
	}, &merges)

	const goroutines, perG = 8, 25
	var replies atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rpc.Dial(addr, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				if _, err := c.Call("q", []byte("x")); err != nil {
					t.Error(err)
					return
				}
				replies.Add(1)
			}
		}()
	}
	wg.Wait()
	// Give any erroneous duplicate deliveries time to surface.
	time.Sleep(50 * time.Millisecond)

	const total = goroutines * perG
	if got := replies.Load(); got != total {
		t.Fatalf("%d replies, want %d", got, total)
	}
	if got := merges.Load(); got != total {
		t.Fatalf("merge ran %d times for %d requests: hedge cancellation double-merged", got, total)
	}
	if st := mt.stats(); st.Hedges == 0 {
		t.Fatalf("no hedges issued: test exercised nothing (stats=%+v)", st)
	}
}
