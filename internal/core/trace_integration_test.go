package core

import (
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/trace"
)

// TestTracerCapturesFullPipeline drives traced requests through the whole
// dispatch pipeline and verifies every stage was stamped in order.
func TestTracerCapturesFullPipeline(t *testing.T) {
	leafAddrs := make([]string, 2)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	tracer := trace.NewTracer(1, 16) // sample everything
	opts := Options{Workers: 2, ResponseThreads: 2, Tracer: tracer}
	addr, _ := startMidTier(t, leafAddrs, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 25
	for i := 0; i < n; i++ {
		if _, err := c.Call("sum", []byte("3")); err != nil {
			t.Fatal(err)
		}
	}
	if got := tracer.Completed(); got != n {
		t.Fatalf("completed traces=%d want %d", got, n)
	}
	for _, tr := range tracer.Recent(16) {
		b := tr.Breakdown()
		if !b.Complete {
			t.Fatalf("incomplete trace: %s", b)
		}
		if b.Total <= 0 || b.Total > 5*time.Second {
			t.Fatalf("implausible total: %s", b)
		}
		// Stage ordering: every timestamp non-decreasing.
		prev := tr.At(trace.StageArrival)
		for s := trace.StageEnqueued; s <= trace.StageReplySent; s++ {
			at := tr.At(s)
			if at.Before(prev) {
				t.Fatalf("stage %v precedes predecessor", s)
			}
			prev = at
		}
		// The leaf round trip must account for real time.
		if b.LeafWait <= 0 {
			t.Fatalf("zero leaf wait: %s", b)
		}
	}
	// Aggregate report sanity.
	if tracer.StageQuantile("total", 0.5) <= 0 {
		t.Fatal("no aggregate total")
	}
}

// TestTracerSamplingThroughMidTier verifies 1-in-N sampling holds across
// the RPC path.
func TestTracerSamplingThroughMidTier(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	tracer := trace.NewTracer(5, 64)
	opts := Options{Workers: 2, Tracer: tracer}
	addr, _ := startMidTier(t, []string{leafAddr}, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := c.Call("echo1", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := tracer.Completed(); got != n/5 {
		t.Fatalf("completed=%d want %d", got, n/5)
	}
}

// TestTracerInlineMode: in-line requests skip the queue stages but still
// yield total latency.
func TestTracerInlineMode(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	tracer := trace.NewTracer(1, 8)
	opts := Options{Dispatch: Inline, Tracer: tracer}
	addr, _ := startMidTier(t, []string{leafAddr}, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("sum", []byte("1")); err != nil {
		t.Fatal(err)
	}
	trs := tracer.Recent(1)
	if len(trs) != 1 {
		t.Fatal("no trace")
	}
	b := trs[0].Breakdown()
	if b.Complete {
		t.Fatal("in-line trace claims the dispatch stages")
	}
	if b.Total <= 0 {
		t.Fatalf("in-line total=%v", b.Total)
	}
}
