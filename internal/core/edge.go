package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"musuite/internal/cluster"
	"musuite/internal/rpc"
	"musuite/internal/stats"
)

// DefaultEdge names the edge ConnectLeaves/ConnectLeafGroups bootstrap — the
// classic mid-tier→leaf fan-out every handwritten service uses.  Handlers
// that never name an edge keep operating on it unchanged.
const DefaultEdge = "leaves"

// EdgePolicy configures one named downstream edge of a mid-tier: where its
// calls may go and how they behave on the way.  Every knob that used to be a
// whole-tier Option (fan-out timeout, tail tolerance, batching, routing) is
// per-edge, so a node in an arbitrary service DAG can hedge aggressively
// toward its cache tier while calling its store tier plainly.
type EdgePolicy struct {
	// Timeout bounds each fan-out on this edge; calls still pending then
	// complete with ErrFanoutTimeout (0 = wait forever).
	Timeout time.Duration
	// Tail configures hedged requests and retries for this edge's calls.
	// The retry budget itself stays tier-global, so one edge's recovery
	// traffic cannot starve another's.
	Tail TailPolicy
	// Batch configures cross-request coalescing of this edge's calls.
	Batch BatchPolicy
	// Routing selects the key→shard placement strategy (default
	// cluster.Modulo).
	Routing cluster.Router
	// ConnsPerShard is the TCP connection count per downstream replica
	// (default: the tier's LeafConnsPerShard option).
	ConnsPerShard int
}

// edge is one named downstream of a mid-tier: a live cluster topology plus
// the per-edge adaptive state (latency digest, cached hedge and batch flush
// delays) that used to live on the MidTier itself.  Action counters stay
// tier-global so TierStats keeps its shape.
type edge struct {
	name   string
	mt     *MidTier
	policy EdgePolicy

	// topo owns this edge's live downstream topology: an epoch-versioned
	// snapshot chain the hot path reads lock-free, and the add/drain/remove
	// operations that mutate it at runtime.
	topo *cluster.Topology

	// Latency digest behind the percentile-tracked hedge delay and the
	// digest-tracked batch flush delay, with the cached values refreshed
	// every hedgeRefreshEvery observations.
	leafLat      *stats.Histogram
	latCount     atomic.Uint64
	hedgeDelayNs atomic.Int64
	batchDelayNs atomic.Int64
}

// newEdge builds an edge (not yet bootstrapped) with its own cluster
// topology, dialing downstreams with the tier's client plumbing.
func (m *MidTier) newEdge(name string, p EdgePolicy) *edge {
	if p.ConnsPerShard <= 0 {
		p.ConnsPerShard = m.opts.LeafConnsPerShard
	}
	e := &edge{name: name, mt: m, policy: p, leafLat: stats.NewHistogram()}
	cfg := cluster.Config{
		Dial: func(addr string) (*rpc.Pool, error) {
			return rpc.DialPool(addr, e.policy.ConnsPerShard, &rpc.ClientOptions{
				Probe:                m.probe,
				OnResponse:           m.onLeafResponse,
				PendingShards:        m.opts.PendingShards,
				DisableWriteCoalesce: m.opts.DisableWriteCoalesce,
			})
		},
		Router: p.Routing,
		Probe:  m.probe,
	}
	if p.Batch.enabled() {
		cfg.NewBatcher = e.newBatcher
	}
	e.topo = cluster.New(cfg)
	return e
}

// ConnectEdge dials a named downstream edge: groups[i] lists the replica
// addresses serving shard i, and policy governs every call the edge carries.
// Connecting the DefaultEdge name replaces the default edge's policy (built
// from the tier Options) before bootstrapping it — this is how a topology
// spec re-expresses a handwritten service's wiring byte-for-byte, since the
// handlers keep fanning out on the default edge.  Must be called before
// Start.
func (m *MidTier) ConnectEdge(name string, groups [][]string, policy EdgePolicy) error {
	if m.started.Load() {
		return errors.New("core: ConnectEdge after Start")
	}
	if name == "" {
		name = DefaultEdge
	}
	m.edgeMu.Lock()
	defer m.edgeMu.Unlock()
	if name == DefaultEdge {
		if m.def.topo.Current().NumLeaves() > 0 {
			return errors.New("core: default edge already connected")
		}
		// The default edge has no downstreams yet, so its topology holds no
		// connections: swap in a replacement carrying the spec's policy.
		m.def.topo.Close()
		m.def = m.newEdge(DefaultEdge, policy)
		m.edges[DefaultEdge] = m.def
		if err := m.def.topo.Bootstrap(groups); err != nil {
			return err
		}
		return nil
	}
	if _, dup := m.edges[name]; dup {
		return fmt.Errorf("core: edge %q already connected", name)
	}
	e := m.newEdge(name, policy)
	if err := e.topo.Bootstrap(groups); err != nil {
		e.topo.Close()
		return err
	}
	m.edges[name] = e
	return nil
}

// EdgeNames lists the mid-tier's connected edges (the default edge included
// even before it is bootstrapped).  Stable only before Start mutations stop;
// intended for introspection and tests.
func (m *MidTier) EdgeNames() []string {
	m.edgeMu.Lock()
	defer m.edgeMu.Unlock()
	names := make([]string, 0, len(m.edges))
	for n := range m.edges {
		names = append(names, n)
	}
	return names
}

// EdgeTopology exposes a named edge's live topology (the admin surface for
// non-default edges); nil when the edge does not exist.
func (m *MidTier) EdgeTopology(name string) *cluster.Topology {
	if name == "" || name == DefaultEdge {
		return m.def.topo
	}
	m.edgeMu.Lock()
	defer m.edgeMu.Unlock()
	if e := m.edges[name]; e != nil {
		return e.topo
	}
	return nil
}

// observeLatency feeds the digest behind this edge's percentile-tracked
// hedge delay and digest-tracked batch flush delay.  The quantile scans are
// amortized: the cached delays refresh every hedgeRefreshEvery observations
// rather than per call.
func (e *edge) observeLatency(d time.Duration) {
	e.leafLat.Record(d)
	if e.latCount.Add(1)%hedgeRefreshEvery != 0 {
		return
	}
	e.refreshHedgeDelay()
	e.refreshBatchDelay()
}

// refreshHedgeDelay recomputes the cached percentile-tracked hedge delay.
func (e *edge) refreshHedgeDelay() {
	t := e.policy.Tail
	if !t.hedging() || t.HedgeDelay > 0 {
		return
	}
	q := e.leafLat.Quantile(t.HedgePercentile)
	min := t.HedgeMinDelay
	if min <= 0 {
		min = defaultHedgeMinDelay
	}
	if q < min {
		q = min
	}
	e.hedgeDelayNs.Store(int64(q))
}

// hedgeDelay is the current delay before a pending call on this edge is
// hedged.
func (e *edge) hedgeDelay() time.Duration {
	if d := e.policy.Tail.HedgeDelay; d > 0 {
		return d
	}
	if d := e.hedgeDelayNs.Load(); d > 0 {
		return time.Duration(d)
	}
	return hedgeBootstrapDelay
}

// EdgeCtx is a request's view of one named downstream edge: the edge's
// policy plus a topology snapshot pinned for the request's lifetime, so
// every routing decision the request makes on this edge resolves against one
// epoch.  Obtained from Ctx.Edge; the zero value is not usable.
type EdgeCtx struct {
	c    *Ctx
	e    *edge
	snap *cluster.Snapshot
}

// edgePin records one non-default edge snapshot pinned by a request,
// released in finish.
type edgePin struct {
	e    *edge
	snap *cluster.Snapshot
}

// Edge resolves a named downstream edge for this request, pinning the edge's
// topology snapshot on first use (the default edge reuses the pin taken at
// arrival).  All pins release when the request finishes.
func (c *Ctx) Edge(name string) (EdgeCtx, error) {
	m := c.mt
	if name == "" || name == DefaultEdge {
		return EdgeCtx{c: c, e: m.def, snap: c.snap}, nil
	}
	e := m.edges[name] // read-only after Start
	if e == nil {
		return EdgeCtx{}, fmt.Errorf("core: no edge %q", name)
	}
	c.pinMu.Lock()
	for _, p := range c.pins {
		if p.e == e {
			c.pinMu.Unlock()
			return EdgeCtx{c: c, e: e, snap: p.snap}, nil
		}
	}
	snap := e.topo.Acquire()
	c.pins = append(c.pins, edgePin{e: e, snap: snap})
	c.pinMu.Unlock()
	return EdgeCtx{c: c, e: e, snap: snap}, nil
}

// NumShards reports the edge's downstream shard count, stable for the
// request's lifetime.
func (ec EdgeCtx) NumShards() int { return ec.snap.NumLeaves() }

// Shard maps a key hash to a downstream shard using the edge's routing
// strategy, against the pinned snapshot.
func (ec EdgeCtx) Shard(hash uint64) int { return ec.snap.Shard(hash) }

// Snapshot is the topology snapshot pinned for this edge.
func (ec EdgeCtx) Snapshot() *cluster.Snapshot { return ec.snap }

// Fanout asynchronously issues calls to this edge's shards and invokes merge
// with all results once the last response arrives — Ctx.Fanout, on a named
// edge, under the edge's timeout/tail/batch policy.
func (ec EdgeCtx) Fanout(calls []LeafCall, merge func([]LeafResult)) {
	ec.c.fanoutOn(ec.e, ec.snap, calls, merge)
}

// FanoutAll broadcasts one payload to every shard of this edge.
func (ec EdgeCtx) FanoutAll(method string, payload []byte, merge func([]LeafResult)) {
	ec.c.fanoutAllOn(ec.e, ec.snap, method, payload, merge)
}

// Call issues a single synchronous RPC to one shard of this edge, with the
// edge's retry policy.
func (ec EdgeCtx) Call(shard int, method string, payload []byte) ([]byte, error) {
	return ec.c.callOn(ec.e, ec.snap, shard, method, payload)
}
