package core

import (
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

func TestRateMeterBasics(t *testing.T) {
	m := newRateMeter(50 * time.Millisecond)
	// First epoch: previous count is zero, so the estimate is zero.
	if r := m.tick(); r != 0 {
		t.Fatalf("initial rate=%v", r)
	}
	// Fill the first epoch then cross into the second.
	for i := 0; i < 99; i++ {
		m.tick()
	}
	time.Sleep(60 * time.Millisecond)
	m.tick() // rolls the epoch, publishing ~100 events / 50ms = ~2000/s
	r := m.rate()
	if r < 1000 || r > 3000 {
		t.Fatalf("rate=%v want ≈2000", r)
	}
	// After an idle gap spanning multiple epochs, the rate resets to 0.
	time.Sleep(150 * time.Millisecond)
	m.tick()
	if r := m.rate(); r != 0 {
		t.Fatalf("post-idle rate=%v", r)
	}
}

// TestAutoDispatchLowLoadRunsInline: with arrivals far below the threshold,
// every request after the first epoch runs in-line (no worker dispatch).
func TestAutoDispatchLowLoadRunsInline(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	probe := telemetry.NewProbe()
	opts := Options{
		Dispatch:        DispatchAuto,
		AutoDispatchQPS: 1000,
		Workers:         2,
		Probe:           probe,
	}
	addr, mt := startMidTier(t, []string{leafAddr}, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 20
	for i := 0; i < n; i++ {
		if _, err := c.Call("echo1", []byte("x")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond) // ≈200 QPS ≪ threshold
	}
	if got := mt.Inlined(); got != n {
		t.Fatalf("inlined %d of %d at low load", got, n)
	}
}

// TestAutoDispatchHighLoadDispatches: a burst beyond the threshold must
// switch to dispatching (observable as worker ActiveExe samples).
func TestAutoDispatchHighLoadDispatches(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	probe := telemetry.NewProbe()
	opts := Options{
		Dispatch:        DispatchAuto,
		AutoDispatchQPS: 100, // low threshold so the burst crosses it fast
		Workers:         2,
		Probe:           probe,
	}
	addr, mt := startMidTier(t, []string{leafAddr}, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two+ epochs of back-to-back traffic: after the first epoch
	// completes at a high count, subsequent requests see rate > 100.
	deadline := time.Now().Add(400 * time.Millisecond)
	total := uint64(0)
	for time.Now().Before(deadline) {
		if _, err := c.Call("echo1", []byte("x")); err != nil {
			t.Fatal(err)
		}
		total++
	}
	dispatched := total - mt.Inlined()
	if dispatched == 0 {
		t.Fatalf("no request dispatched under burst (%d total, %d inlined)", total, mt.Inlined())
	}
	if probe.OverheadSnapshot(telemetry.OverheadActiveExe).Count == 0 {
		t.Fatal("no worker dispatch observed")
	}
}

func TestDispatchModeNames(t *testing.T) {
	if DispatchAuto.String() != "auto" {
		t.Fatalf("auto name=%q", DispatchAuto.String())
	}
}
