package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

func TestBoundedPoolShedsBeyondDepth(t *testing.T) {
	p := NewBoundedWorkerPool(1, 3, WaitBlocking, nil, telemetry.OverheadActiveExe)
	defer p.Stop()

	// Occupy the worker.
	release := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() {
		close(started)
		<-release
	})
	<-started

	// Fill the queue to its bound.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		if err := p.Submit(func() { wg.Done() }); err != nil {
			t.Fatalf("submit %d within bound: %v", i, err)
		}
	}
	// The next submit sheds.
	if err := p.Submit(func() {}); err != ErrQueueFull {
		t.Fatalf("over-bound submit: %v want ErrQueueFull", err)
	}
	if p.Shed() != 1 {
		t.Fatalf("shed=%d", p.Shed())
	}
	// Queued work still runs after the worker frees up.
	close(release)
	wg.Wait()
	// And capacity is available again.
	done := make(chan struct{})
	if err := p.Submit(func() { close(done) }); err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	<-done
}

func TestUnboundedPoolNeverSheds(t *testing.T) {
	p := NewWorkerPool(1, WaitBlocking, nil, telemetry.OverheadActiveExe)
	defer p.Stop()
	release := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() {
		close(started)
		<-release
	})
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 500; i++ {
		wg.Add(1)
		if err := p.Submit(func() { wg.Done() }); err != nil {
			t.Fatalf("unbounded submit %d: %v", i, err)
		}
	}
	close(release)
	wg.Wait()
	if p.Shed() != 0 {
		t.Fatalf("shed=%d on unbounded pool", p.Shed())
	}
}

// TestMidTierShedsUnderOverload floods a deliberately tiny mid-tier: shed
// requests must fail fast with the queue-full error while accepted ones
// complete, and the shed counter must account for the rejections.
func TestMidTierShedsUnderOverload(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	gate := make(chan struct{})
	mt := NewMidTier(func(ctx *Ctx) {
		<-gate // every request blocks until released
		ctx.Reply(nil)
	}, &Options{Workers: 1, MaxQueueDepth: 2})
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 12
	done := make(chan *rpc.Call, n)
	for i := 0; i < n; i++ {
		c.Go("q", nil, nil, done)
	}
	// Let the poller process the whole burst (shed replies arrive while
	// accepted requests still block on the gate), then release.
	time.Sleep(300 * time.Millisecond)
	close(gate)

	successes, sheds := 0, 0
	timeout := time.After(20 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case call := <-done:
			if call.Err != nil {
				sheds++
			} else {
				successes++
			}
		case <-timeout:
			t.Fatalf("resolved only %d of %d", successes+sheds, n)
		}
	}
	// At most 1 running + 2 queued are accepted; pickup timing may shed
	// one more.  The load must be mostly shed, quickly, and accounted.
	if successes < 1 || successes > 3 {
		t.Fatalf("successes=%d want 1..3", successes)
	}
	if sheds != n-successes {
		t.Fatalf("sheds=%d successes=%d", sheds, successes)
	}
	if got := mt.Shed(); got != uint64(sheds) {
		t.Fatalf("Shed()=%d want %d", got, sheds)
	}
}

func TestShedErrorIsDistinguishable(t *testing.T) {
	if !errors.Is(ErrQueueFull, ErrQueueFull) || errors.Is(ErrQueueFull, ErrPoolClosed) {
		t.Fatal("sentinel identity broken")
	}
}
