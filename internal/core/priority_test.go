package core

import (
	"sync"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

// TestPriorityOvertakesQueuedWork blocks the single worker, queues normal
// tasks, then a high-priority one: the high-priority task must run before
// every queued normal task.
func TestPriorityOvertakesQueuedWork(t *testing.T) {
	p := NewWorkerPool(1, WaitBlocking, nil, telemetry.OverheadActiveExe)
	defer p.Stop()

	release := make(chan struct{})
	started := make(chan struct{})
	p.Submit(func() {
		close(started)
		<-release
	})
	<-started

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	record := func(name string) func() {
		wg.Add(1)
		return func() {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			wg.Done()
		}
	}
	p.Submit(record("n1"))
	p.Submit(record("n2"))
	p.SubmitPriority(record("hi"), PriorityHigh)
	p.Submit(record("n3"))

	if depth := p.QueueDepth(); depth != 4 {
		t.Fatalf("queue depth=%d want 4", depth)
	}
	close(release)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if order[0] != "hi" {
		t.Fatalf("execution order %v: high priority did not overtake", order)
	}
	for i, want := range []string{"n1", "n2", "n3"} {
		if order[i+1] != want {
			t.Fatalf("normal FIFO broken: %v", order)
		}
	}
}

// TestMidTierClassifierPrioritizesRequests wires a classifier that marks
// "urgent" methods high-priority and verifies they overtake a backlog of
// slow normal requests through the full RPC path.
func TestMidTierClassifierPrioritizesRequests(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)

	var mu sync.Mutex
	var handled []string
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	mt := NewMidTier(func(ctx *Ctx) {
		if ctx.Req.Method == "block" {
			select {
			case started <- struct{}{}:
			default:
			}
			<-gate
			ctx.Reply(nil)
			return
		}
		mu.Lock()
		handled = append(handled, ctx.Req.Method)
		mu.Unlock()
		ctx.Reply(nil)
	}, &Options{
		Workers: 1, // single worker so queueing order is observable
		Classify: func(req *rpc.Request) Priority {
			if req.Method == "urgent" {
				return PriorityHigh
			}
			return PriorityNormal
		},
	})
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan *rpc.Call, 8)
	// Occupy the worker, then build a backlog.
	c.Go("block", nil, nil, done)
	<-started
	c.Go("normal-a", nil, nil, done)
	c.Go("normal-b", nil, nil, done)
	c.Go("urgent", nil, nil, done)
	// Let the backlog enqueue before releasing the worker.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	for i := 0; i < 4; i++ {
		select {
		case call := <-done:
			if call.Err != nil {
				t.Fatal(call.Err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("requests hung")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(handled) != 3 || handled[0] != "urgent" {
		t.Fatalf("handled order %v: urgent did not overtake", handled)
	}
}
