package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/stats"
	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// TailPolicy configures tail-tolerant fan-out: hedged requests, retries,
// and the retry budget bounding both.  The paper (§V–§VI) shows end-to-end
// latency is hostage to the slowest leaf of every fan-out; this policy adds
// the canonical recovery mechanisms without letting them amplify overload.
type TailPolicy struct {
	// HedgePercentile, in (0,1), arms hedging: a leaf call still pending
	// after this quantile of observed leaf latency gets a duplicate sent
	// to another replica, and the first response wins (the loser is
	// cancelled).  Zero disables hedging unless HedgeDelay is set.
	HedgePercentile float64
	// HedgeDelay, when positive, fixes the hedge delay instead of
	// tracking HedgePercentile through the latency digest.
	HedgeDelay time.Duration
	// HedgeMinDelay floors the tracked delay so sub-millisecond leaf
	// latencies don't turn hedging into a duplicate-everything storm
	// (default 500µs).
	HedgeMinDelay time.Duration
	// RetryBudgetRatio bounds hedges+retries to this fraction of primary
	// leaf traffic (default 0.1).
	RetryBudgetRatio float64
	// RetryBudgetBurst is the budget token bucket's cap and initial
	// credit (default 10).
	RetryBudgetBurst int
	// LeafRetries is the maximum re-issues per leaf call after a
	// retryable failure — timeout- or connection-class, never
	// application errors (default 0, no retries).
	LeafRetries int
}

// hedging reports whether the policy arms hedged requests.
func (t TailPolicy) hedging() bool { return t.HedgePercentile > 0 || t.HedgeDelay > 0 }

const (
	// defaultHedgeMinDelay floors the percentile-tracked hedge delay.
	defaultHedgeMinDelay = 500 * time.Microsecond
	// hedgeBootstrapDelay is used until the latency digest has samples.
	hedgeBootstrapDelay = time.Millisecond
	// hedgeRefreshEvery is how many latency observations elapse between
	// recomputations of the cached percentile delay (a quantile scan
	// walks every histogram bucket, too costly per call).
	hedgeRefreshEvery = 128
)

// Options configures a mid-tier microserver.
type Options struct {
	// Workers sizes the request worker pool (default 4).
	Workers int
	// ResponseThreads sizes the leaf-response pool (default 2).
	ResponseThreads int
	// Dispatch selects dispatched (default) or in-line execution.
	Dispatch DispatchMode
	// Wait selects blocking (default) or polling idle threads.
	Wait WaitMode
	// LeafConnsPerShard is the number of TCP connections opened to each
	// leaf (default 2), modelling one connection per serving thread.
	LeafConnsPerShard int
	// MaxQueueDepth bounds the dispatch queue; requests beyond it are
	// shed with a fast error instead of queueing unboundedly past
	// saturation (0 = unbounded, the paper's configuration).
	MaxQueueDepth int
	// AutoDispatchQPS is the arrival-rate threshold for DispatchAuto:
	// below it requests run in-line, above it they dispatch (default
	// 500 QPS).
	AutoDispatchQPS float64
	// FanoutTimeout bounds each fan-out; leaves that have not responded
	// by then contribute ErrFanoutTimeout results so the merge (and the
	// front-end) never hangs on a wedged leaf (0 = wait forever, the
	// paper's configuration).
	FanoutTimeout time.Duration
	// Classify, when set, assigns a dispatch priority per request —
	// §VII's "dispatched models can explicitly prioritize requests".
	// It runs on the network poller and must be fast.  Ignored by the
	// in-line mode, which has no queue to reorder.
	Classify func(*rpc.Request) Priority
	// Tail configures tail-tolerant fan-out (hedged requests, retries,
	// and the retry budget).  The zero value disables hedging and
	// retries; replica selection is always on.
	Tail TailPolicy
	// Batch configures adaptive cross-request batching of leaf RPCs: calls
	// bound for the same leaf replica coalesce into one carrier RPC.  The
	// zero value disables batching (every leaf call is its own RPC).
	Batch BatchPolicy
	// Tracer, when set, samples requests for per-stage latency
	// attribution through the pipeline.
	Tracer *trace.Tracer
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.ResponseThreads <= 0 {
		out.ResponseThreads = 2
	}
	if out.LeafConnsPerShard <= 0 {
		out.LeafConnsPerShard = 2
	}
	return out
}

// Handler is the service-specific mid-tier request logic.  It runs on a
// worker thread (or the poller in in-line mode), typically: decode the
// request, compute the per-leaf sub-queries, call Ctx.Fanout, and return.
// The reply is sent later by the fan-out merge callback.
type Handler func(*Ctx)

// MidTier is a mid-tier microserver: an RPC server whose requests flow
// through the §IV pipeline (poller → dispatch queue → worker → async fan-out
// → response threads → merged reply).
type MidTier struct {
	opts    Options
	handler Handler
	probe   *telemetry.Probe

	server    *rpc.Server
	workers   *WorkerPool
	responses *WorkerPool

	groups  []*replicaGroup
	started atomic.Bool
	closed  atomic.Bool

	arrivals *rateMeter // DispatchAuto's load signal
	inlined  atomic.Uint64
	served   atomic.Uint64

	// Tail-tolerance state: the hedge/retry token budget, the leaf
	// latency digest the percentile-tracked hedge delay derives from,
	// and the action counters surfaced through core.stats.
	budget       *retryBudget
	leafLat      *stats.Histogram
	latCount     atomic.Uint64
	hedgeDelayNs atomic.Int64
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64
	retries      atomic.Uint64
	budgetDenied atomic.Uint64

	// Batching state: the cached digest-tracked flush delay and the
	// occupancy/flush-cause counters surfaced through core.stats.
	batchDelayNs       atomic.Int64
	batchCarriers      atomic.Uint64
	batchMembers       atomic.Uint64
	batchFlushSize     atomic.Uint64
	batchFlushDeadline atomic.Uint64
	batchFlushShutdown atomic.Uint64
}

// NewMidTier creates a mid-tier with the given request handler.
func NewMidTier(handler Handler, opts *Options) *MidTier {
	o := opts.withDefaults()
	m := &MidTier{opts: o, handler: handler, probe: o.Probe}
	if o.AutoDispatchQPS <= 0 {
		o.AutoDispatchQPS = 500
		m.opts.AutoDispatchQPS = 500
	}
	m.arrivals = newRateMeter(100 * time.Millisecond)
	m.budget = newRetryBudget(o.Tail.RetryBudgetRatio, o.Tail.RetryBudgetBurst)
	m.leafLat = stats.NewHistogram()
	m.workers = NewBoundedWorkerPool(o.Workers, o.MaxQueueDepth, o.Wait, o.Probe, telemetry.OverheadActiveExe)
	m.responses = NewWorkerPool(o.ResponseThreads, o.Wait, o.Probe, telemetry.OverheadSched)
	m.server = rpc.NewServer(m.onRequest, &rpc.ServerOptions{Probe: o.Probe})
	return m
}

// ConnectLeaves dials every leaf shard with one replica each.  Must be
// called before Start.
func (m *MidTier) ConnectLeaves(addrs []string) error {
	groups, _ := GroupAddrs(addrs, 1)
	return m.ConnectLeafGroups(groups)
}

// ConnectLeafGroups dials every leaf shard's replica set: groups[i] lists
// the addresses of the replicas serving shard i (all must hold the same
// shard data).  Fanout and CallLeaf route each call to the least-loaded
// replica of its shard, and hedges/retries go to a different replica than
// the attempt they back up.  Must be called before Start.
func (m *MidTier) ConnectLeafGroups(groups [][]string) error {
	if m.started.Load() {
		return errors.New("core: ConnectLeaves after Start")
	}
	for _, addrs := range groups {
		if len(addrs) == 0 {
			m.Close()
			return errors.New("core: empty leaf replica group")
		}
		g := &replicaGroup{}
		for _, addr := range addrs {
			pool, err := rpc.DialPool(addr, m.opts.LeafConnsPerShard, &rpc.ClientOptions{
				Probe:      m.probe,
				OnResponse: m.onLeafResponse,
			})
			if err != nil {
				g.close()
				m.Close()
				return fmt.Errorf("core: dialing leaf %s: %w", addr, err)
			}
			g.pools = append(g.pools, pool)
			if m.opts.Batch.enabled() {
				g.batchers = append(g.batchers, m.newBatcher(pool))
			}
		}
		m.groups = append(m.groups, g)
	}
	return nil
}

// NumLeaves reports the number of connected leaf shards.
func (m *MidTier) NumLeaves() int { return len(m.groups) }

// NumReplicas reports the total leaf replica count across all shards.
func (m *MidTier) NumReplicas() int {
	n := 0
	for _, g := range m.groups {
		n += g.size()
	}
	return n
}

// Shed reports how many requests the dispatch-queue bound rejected.
func (m *MidTier) Shed() uint64 { return m.workers.Shed() }

// Inlined reports how many requests DispatchAuto ran in-line.
func (m *MidTier) Inlined() uint64 { return m.inlined.Load() }

// Start binds the mid-tier server and begins serving.
func (m *MidTier) Start(addr string) (string, error) {
	m.started.Store(true)
	return m.server.Start(addr)
}

// Close shuts down the server, leaf connections, and thread pools.
func (m *MidTier) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	if m.server != nil {
		m.server.Close()
	}
	for _, g := range m.groups {
		g.close()
	}
	m.workers.Stop()
	m.responses.Stop()
}

// onRequest runs on the network poller goroutine for every incoming RPC.
func (m *MidTier) onRequest(req *rpc.Request) {
	if req.Method == StatsMethod {
		req.Reply(encodeTierStats(m.stats()))
		return
	}
	ctx := &Ctx{Req: req, mt: m}
	ctx.tr = m.opts.Tracer.Sample()
	ctx.tr.StampAt(trace.StageArrival, req.Arrival)
	inline := m.opts.Dispatch == Inline
	if m.opts.Dispatch == DispatchAuto {
		// Adaptive choice (§VII): in-line while the recent arrival
		// rate is low (the regime where dispatch wakeups dominate),
		// dispatched once it rises.
		inline = m.arrivals.tick() < m.opts.AutoDispatchQPS
	}
	if inline {
		// In-line design (§VII): no hand-off, no worker wakeup; the
		// poller executes the handler and is blocked for its duration.
		if m.opts.Dispatch == DispatchAuto {
			m.inlined.Add(1)
		}
		ctx.tr.Stamp(trace.StageWorkerStart)
		m.handler(ctx)
		return
	}
	// Dispatch design: the payload must outlive the poller's read buffer.
	req.DetachPayload()
	pri := PriorityNormal
	if m.opts.Classify != nil {
		pri = m.opts.Classify(req)
	}
	handoffStart := time.Now()
	err := m.workers.SubmitPriority(func() {
		ctx.tr.Stamp(trace.StageWorkerStart)
		m.handler(ctx)
	}, pri)
	if err != nil {
		req.ReplyError(err)
		return
	}
	ctx.tr.Stamp(trace.StageEnqueued)
	// The poller's hand-off cost before it re-enters its blocking read —
	// the Block overhead class.
	m.probe.ObserveOverhead(telemetry.OverheadBlock, time.Since(handoffStart))
}

// onLeafResponse runs on a leaf connection's reader goroutine; it forwards
// the completed call to the response thread pool.
func (m *MidTier) onLeafResponse(call *rpc.Call) {
	slot, ok := call.Data.(*fanoutSlot)
	if !ok || slot == nil {
		return // a direct (non-fanout) call; nothing to route
	}
	if err := m.responses.Submit(func() { slot.fo.deliver(call) }); err != nil {
		// Pool stopped mid-flight (shutdown); deliver inline so the
		// fan-out still completes.
		slot.fo.deliver(call)
	}
}

// LeafCall names one sub-request of a fan-out.
type LeafCall struct {
	// Shard indexes the destination leaf (0..NumLeaves-1).
	Shard int
	// Method and Payload form the sub-request.
	Method  string
	Payload []byte
}

// LeafResult is one leaf's response within a fan-out.
type LeafResult struct {
	// Shard indexes the leaf that produced this result.
	Shard int
	// Reply is the response payload (nil on error).
	Reply []byte
	// Err is the per-leaf failure, if any.
	Err error
}

// Ctx is the per-request context handed to the mid-tier handler.
type Ctx struct {
	// Req is the originating front-end request.
	Req *rpc.Request
	mt  *MidTier
	tr  *trace.Trace
	fin atomic.Bool
}

// NumLeaves reports the fan-out width available to this request.
func (c *Ctx) NumLeaves() int { return len(c.mt.groups) }

// Reply completes the request successfully.
func (c *Ctx) Reply(payload []byte) {
	c.Req.Reply(payload)
	c.finish()
}

// ReplyError completes the request with an error.
func (c *Ctx) ReplyError(err error) {
	c.Req.ReplyError(err)
	c.finish()
}

// finish counts the completion and closes out the sampled trace, once.
func (c *Ctx) finish() {
	if !c.fin.CompareAndSwap(false, true) {
		return
	}
	c.mt.served.Add(1)
	if c.tr == nil {
		return
	}
	c.tr.Stamp(trace.StageReplySent)
	c.mt.opts.Tracer.Finish(c.tr)
}

// Fanout asynchronously issues calls to leaf shards and invokes merge with
// all results once the last response arrives.  The worker returns
// immediately after issuing the sub-requests ("fork for fan-out"); response
// threads count down and merge, with only the final one doing real work —
// the §IV asynchronous design.  merge runs on a response thread (or, for an
// empty call list, synchronously) and must call Reply/ReplyError.
func (c *Ctx) Fanout(calls []LeafCall, merge func([]LeafResult)) {
	if len(calls) == 0 {
		merge(nil)
		return
	}
	m := c.mt
	fo := &fanout{
		mt:      m,
		results: make([]LeafResult, len(calls)),
		merge:   merge,
		tr:      c.tr,
		slots:   make([]fanoutSlot, len(calls)),
	}
	fo.remaining.Store(int32(len(calls)))
	// Slots must be fully initialized before the expiry timer can fire.
	for i, lc := range calls {
		fo.slot(i, lc)
	}
	if d := m.opts.FanoutTimeout; d > 0 {
		fo.timer.Store(time.AfterFunc(d, fo.expire))
	}
	for i, lc := range calls {
		slot := &fo.slots[i]
		if lc.Shard < 0 || lc.Shard >= len(m.groups) {
			fo.deliverSlot(slot, LeafResult{Shard: lc.Shard, Err: fmt.Errorf("core: no such leaf shard %d", lc.Shard)}, nil)
			continue
		}
		m.issuePrimary(slot)
	}
	c.tr.Stamp(trace.StageFanoutIssued)
}

// FanoutAll broadcasts one payload to every leaf shard.
func (c *Ctx) FanoutAll(method string, payload []byte, merge func([]LeafResult)) {
	calls := make([]LeafCall, len(c.mt.groups))
	for i := range calls {
		calls[i] = LeafCall{Shard: i, Method: method, Payload: payload}
	}
	c.Fanout(calls, merge)
}

// CallLeaf issues a single synchronous leaf RPC (used by handlers that need
// a point read rather than a fan-out, e.g. Router gets).  The call goes to
// the shard's least-loaded replica; retryable failures are re-issued to
// another replica, up to Tail.LeafRetries and subject to the retry budget.
func (c *Ctx) CallLeaf(shard int, method string, payload []byte) ([]byte, error) {
	m := c.mt
	if shard < 0 || shard >= len(m.groups) {
		return nil, fmt.Errorf("core: no such leaf shard %d", shard)
	}
	g := m.groups[shard]
	m.budget.earn()
	exclude := -1
	for attempt := 0; ; attempt++ {
		pool, idx := g.pick(exclude)
		call := pool.Pick().Go(method, payload, nil, nil)
		<-call.Done
		if call.Err == nil {
			m.observeLeafLatency(call.Received.Sub(call.Sent))
			return call.Reply, nil
		}
		if attempt >= m.opts.Tail.LeafRetries || !rpc.Retryable(call.Err) {
			return nil, call.Err
		}
		if !m.budget.spend() {
			m.budgetDenied.Add(1)
			m.probe.IncTail(telemetry.TailBudgetDenied)
			return nil, call.Err
		}
		m.retries.Add(1)
		m.probe.IncTail(telemetry.TailRetry)
		exclude = idx
	}
}

// issuePrimary sends a slot's first attempt and, when hedging is armed,
// starts the hedge timer that will duplicate the call if no response lands
// within the hedge delay.
func (m *MidTier) issuePrimary(slot *fanoutSlot) {
	m.budget.earn()
	m.issueAttempt(slot, -1, attemptPrimary)
	if m.opts.Tail.hedging() {
		t := time.AfterFunc(m.hedgeDelay(), func() { m.hedge(slot) })
		slot.mu.Lock()
		slot.hedgeTimer = t
		slot.mu.Unlock()
		if slot.fired.Load() {
			// The primary answered (or the fan-out expired) before the
			// timer was registered; the cancel path missed it, stop here.
			t.Stop()
		}
	}
}

// issueAttempt sends one copy of the slot's sub-request to a replica of its
// shard, preferring one not carrying an earlier attempt of the same call.
// With batching enabled the call enqueues on the picked replica's batcher
// (a hedge or retry thereby coalesces into that replica's next carrier);
// otherwise it goes straight to a pooled connection.
func (m *MidTier) issueAttempt(slot *fanoutSlot, exclude int, kind attemptKind) {
	g := m.groups[slot.shard]
	pool, idx := g.pick(exclude)
	a := attempt{replica: idx, kind: kind}
	if b := g.batcher(idx); b != nil {
		a.batcher = b
		a.call = b.Go(slot.method, slot.payload, slot, nil)
	} else {
		a.client = pool.Pick()
		a.call = a.client.Go(slot.method, slot.payload, slot, nil)
	}
	slot.mu.Lock()
	slot.attempts = append(slot.attempts, a)
	fired := slot.fired.Load()
	slot.mu.Unlock()
	if fired {
		// The slot completed while this attempt was being issued, so the
		// cancel sweep may have run before the attempt was tracked.
		a.abandon()
	}
}

// hedge runs on the slot's hedge timer: if the primary is still pending and
// the retry budget allows, issue a duplicate to another replica.
func (m *MidTier) hedge(slot *fanoutSlot) {
	if slot.fired.Load() {
		return
	}
	slot.mu.Lock()
	if slot.hedged || len(slot.attempts) == 0 {
		slot.mu.Unlock()
		return
	}
	slot.hedged = true
	primary := slot.attempts[0].replica
	slot.mu.Unlock()
	if !m.budget.spend() {
		m.budgetDenied.Add(1)
		m.probe.IncTail(telemetry.TailBudgetDenied)
		return
	}
	m.hedges.Add(1)
	m.probe.IncTail(telemetry.TailHedge)
	m.issueAttempt(slot, primary, attemptHedge)
}

// maybeRetry re-issues a slot's sub-request after a retryable failure,
// bounded by Tail.LeafRetries per slot and the global retry budget.  It
// reports whether a retry is now in flight (the slot stays pending).
func (m *MidTier) maybeRetry(slot *fanoutSlot, failed *rpc.Call) bool {
	max := m.opts.Tail.LeafRetries
	if max <= 0 {
		return false
	}
	slot.mu.Lock()
	if slot.retries >= max {
		slot.mu.Unlock()
		return false
	}
	slot.retries++
	exclude := -1
	for _, a := range slot.attempts {
		if a.call == failed {
			exclude = a.replica
			break
		}
	}
	slot.mu.Unlock()
	if !m.budget.spend() {
		m.budgetDenied.Add(1)
		m.probe.IncTail(telemetry.TailBudgetDenied)
		return false
	}
	m.retries.Add(1)
	m.probe.IncTail(telemetry.TailRetry)
	m.issueAttempt(slot, exclude, attemptRetry)
	return true
}

// observeLeafLatency feeds the digest behind the percentile-tracked hedge
// delay and the digest-tracked batch flush delay.  The quantile scans are
// amortized: the cached delays refresh every hedgeRefreshEvery observations
// rather than per call.
func (m *MidTier) observeLeafLatency(d time.Duration) {
	m.leafLat.Record(d)
	if m.latCount.Add(1)%hedgeRefreshEvery != 0 {
		return
	}
	m.refreshHedgeDelay()
	m.refreshBatchDelay()
}

// refreshHedgeDelay recomputes the cached percentile-tracked hedge delay.
func (m *MidTier) refreshHedgeDelay() {
	t := m.opts.Tail
	if !t.hedging() || t.HedgeDelay > 0 {
		return
	}
	q := m.leafLat.Quantile(t.HedgePercentile)
	min := t.HedgeMinDelay
	if min <= 0 {
		min = defaultHedgeMinDelay
	}
	if q < min {
		q = min
	}
	m.hedgeDelayNs.Store(int64(q))
}

// hedgeDelay is the current delay before a pending leaf call is hedged.
func (m *MidTier) hedgeDelay() time.Duration {
	if d := m.opts.Tail.HedgeDelay; d > 0 {
		return d
	}
	if d := m.hedgeDelayNs.Load(); d > 0 {
		return time.Duration(d)
	}
	return hedgeBootstrapDelay
}

// ErrFanoutTimeout marks a leaf slot whose response missed the fan-out
// deadline.
var ErrFanoutTimeout = errors.New("core: leaf response timed out")

// fanout is the shared data structure through which an asynchronous event
// (a leaf response arriving on any reception thread) is matched back to its
// parent RPC — "all RPC state is explicit" (§IV).
type fanout struct {
	mt        *MidTier
	results   []LeafResult
	remaining atomic.Int32
	merge     func([]LeafResult)
	tr        *trace.Trace
	slots     []fanoutSlot
	// timer is set after AfterFunc returns; the callback can beat the
	// store, in which case there is nothing left worth stopping.
	timer atomic.Pointer[time.Timer]
}

// attemptKind distinguishes why a call copy was sent, for win-rate counting.
type attemptKind uint8

const (
	attemptPrimary attemptKind = iota
	attemptHedge
	attemptRetry
)

// attempt is one issued copy of a slot's sub-request.  Exactly one of
// client (direct send) or batcher (batched send) is set.
type attempt struct {
	call    *rpc.Call
	client  *rpc.Client
	batcher *rpc.Batcher
	replica int
	kind    attemptKind
}

// abandon cancels the attempt's call through whichever path issued it.
func (a *attempt) abandon() {
	if a.batcher != nil {
		a.batcher.Abandon(a.call)
	} else {
		a.client.Abandon(a.call)
	}
}

// fanoutSlot routes one leaf call's completions into its fan-out slot.  A
// slot may have several attempts in flight at once (primary + hedge, or a
// retry); the first to complete wins and the rest are abandoned.
type fanoutSlot struct {
	fo      *fanout
	index   int
	shard   int
	fired   atomic.Bool
	method  string
	payload []byte

	mu         sync.Mutex // guards the fields below
	attempts   []attempt
	hedgeTimer *time.Timer
	hedged     bool
	retries    int
}

func (f *fanout) slot(index int, lc LeafCall) *fanoutSlot {
	s := &f.slots[index]
	s.fo = f
	s.index = index
	s.shard = lc.Shard
	s.method = lc.Method
	s.payload = lc.Payload
	return s
}

// cancelLosers stops the slot's hedge timer and abandons every attempt
// other than the winner, so late responses are dropped at the reader
// instead of delivered.  It reports the winning attempt's kind (valid only
// when found).
func (s *fanoutSlot) cancelLosers(winner *rpc.Call) (kind attemptKind, found bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t := s.hedgeTimer; t != nil {
		s.hedgeTimer = nil
		t.Stop()
	}
	for i := range s.attempts {
		a := &s.attempts[i]
		if a.call == winner {
			kind, found = a.kind, true
			continue
		}
		a.abandon()
	}
	return kind, found
}

// deliver stashes one response and, if it is the last, runs the merge.  All
// but the final response thread do negligible work (stash + decrement),
// matching the paper's count-down design.  Successful completions feed the
// hedge-delay digest; retryable failures may re-issue instead of
// completing the slot.
func (f *fanout) deliver(call *rpc.Call) {
	slot := call.Data.(*fanoutSlot)
	if call.Err == nil {
		f.mt.observeLeafLatency(call.Received.Sub(call.Sent))
	} else if !slot.fired.Load() && rpc.Retryable(call.Err) && f.mt.maybeRetry(slot, call) {
		return // a retry is in flight; the slot stays pending
	}
	f.deliverSlot(slot, LeafResult{Shard: slot.shard, Reply: call.Reply, Err: call.Err}, call)
}

// deliverSlot completes one slot exactly once (concurrent attempts and the
// fan-out timeout may race; first wins, the rest are cancelled).
func (f *fanout) deliverSlot(slot *fanoutSlot, res LeafResult, winner *rpc.Call) {
	if !slot.fired.CompareAndSwap(false, true) {
		return
	}
	if kind, ok := slot.cancelLosers(winner); ok && kind == attemptHedge {
		f.mt.hedgeWins.Add(1)
		f.mt.probe.IncTail(telemetry.TailHedgeWin)
	}
	f.results[slot.index] = res
	if f.remaining.Add(-1) == 0 {
		if t := f.timer.Load(); t != nil {
			t.Stop()
		}
		f.tr.Stamp(trace.StageLastLeafResponse)
		f.merge(f.results)
	}
}

// expire fails every still-pending slot with ErrFanoutTimeout, cancelling
// any attempts still in flight.
func (f *fanout) expire() {
	for i := range f.slots {
		slot := &f.slots[i]
		f.deliverSlot(slot, LeafResult{Shard: slot.shard, Err: ErrFanoutTimeout}, nil)
	}
}
