package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// Options configures a mid-tier microserver.
type Options struct {
	// Workers sizes the request worker pool (default 4).
	Workers int
	// ResponseThreads sizes the leaf-response pool (default 2).
	ResponseThreads int
	// Dispatch selects dispatched (default) or in-line execution.
	Dispatch DispatchMode
	// Wait selects blocking (default) or polling idle threads.
	Wait WaitMode
	// LeafConnsPerShard is the number of TCP connections opened to each
	// leaf (default 2), modelling one connection per serving thread.
	LeafConnsPerShard int
	// MaxQueueDepth bounds the dispatch queue; requests beyond it are
	// shed with a fast error instead of queueing unboundedly past
	// saturation (0 = unbounded, the paper's configuration).
	MaxQueueDepth int
	// AutoDispatchQPS is the arrival-rate threshold for DispatchAuto:
	// below it requests run in-line, above it they dispatch (default
	// 500 QPS).
	AutoDispatchQPS float64
	// FanoutTimeout bounds each fan-out; leaves that have not responded
	// by then contribute ErrFanoutTimeout results so the merge (and the
	// front-end) never hangs on a wedged leaf (0 = wait forever, the
	// paper's configuration).
	FanoutTimeout time.Duration
	// Classify, when set, assigns a dispatch priority per request —
	// §VII's "dispatched models can explicitly prioritize requests".
	// It runs on the network poller and must be fast.  Ignored by the
	// in-line mode, which has no queue to reorder.
	Classify func(*rpc.Request) Priority
	// Tracer, when set, samples requests for per-stage latency
	// attribution through the pipeline.
	Tracer *trace.Tracer
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.ResponseThreads <= 0 {
		out.ResponseThreads = 2
	}
	if out.LeafConnsPerShard <= 0 {
		out.LeafConnsPerShard = 2
	}
	return out
}

// Handler is the service-specific mid-tier request logic.  It runs on a
// worker thread (or the poller in in-line mode), typically: decode the
// request, compute the per-leaf sub-queries, call Ctx.Fanout, and return.
// The reply is sent later by the fan-out merge callback.
type Handler func(*Ctx)

// MidTier is a mid-tier microserver: an RPC server whose requests flow
// through the §IV pipeline (poller → dispatch queue → worker → async fan-out
// → response threads → merged reply).
type MidTier struct {
	opts    Options
	handler Handler
	probe   *telemetry.Probe

	server    *rpc.Server
	workers   *WorkerPool
	responses *WorkerPool

	leaves  []*rpc.Pool
	started atomic.Bool
	closed  atomic.Bool

	arrivals *rateMeter // DispatchAuto's load signal
	inlined  atomic.Uint64
	served   atomic.Uint64
}

// NewMidTier creates a mid-tier with the given request handler.
func NewMidTier(handler Handler, opts *Options) *MidTier {
	o := opts.withDefaults()
	m := &MidTier{opts: o, handler: handler, probe: o.Probe}
	if o.AutoDispatchQPS <= 0 {
		o.AutoDispatchQPS = 500
		m.opts.AutoDispatchQPS = 500
	}
	m.arrivals = newRateMeter(100 * time.Millisecond)
	m.workers = NewBoundedWorkerPool(o.Workers, o.MaxQueueDepth, o.Wait, o.Probe, telemetry.OverheadActiveExe)
	m.responses = NewWorkerPool(o.ResponseThreads, o.Wait, o.Probe, telemetry.OverheadSched)
	m.server = rpc.NewServer(m.onRequest, &rpc.ServerOptions{Probe: o.Probe})
	return m
}

// ConnectLeaves dials every leaf shard.  Must be called before Start.
func (m *MidTier) ConnectLeaves(addrs []string) error {
	if m.started.Load() {
		return errors.New("core: ConnectLeaves after Start")
	}
	for _, addr := range addrs {
		pool, err := rpc.DialPool(addr, m.opts.LeafConnsPerShard, &rpc.ClientOptions{
			Probe:      m.probe,
			OnResponse: m.onLeafResponse,
		})
		if err != nil {
			m.Close()
			return fmt.Errorf("core: dialing leaf %s: %w", addr, err)
		}
		m.leaves = append(m.leaves, pool)
	}
	return nil
}

// NumLeaves reports the number of connected leaf shards.
func (m *MidTier) NumLeaves() int { return len(m.leaves) }

// Shed reports how many requests the dispatch-queue bound rejected.
func (m *MidTier) Shed() uint64 { return m.workers.Shed() }

// Inlined reports how many requests DispatchAuto ran in-line.
func (m *MidTier) Inlined() uint64 { return m.inlined.Load() }

// Start binds the mid-tier server and begins serving.
func (m *MidTier) Start(addr string) (string, error) {
	m.started.Store(true)
	return m.server.Start(addr)
}

// Close shuts down the server, leaf connections, and thread pools.
func (m *MidTier) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	if m.server != nil {
		m.server.Close()
	}
	for _, p := range m.leaves {
		p.Close()
	}
	m.workers.Stop()
	m.responses.Stop()
}

// onRequest runs on the network poller goroutine for every incoming RPC.
func (m *MidTier) onRequest(req *rpc.Request) {
	if req.Method == StatsMethod {
		req.Reply(encodeTierStats(m.stats()))
		return
	}
	ctx := &Ctx{Req: req, mt: m}
	ctx.tr = m.opts.Tracer.Sample()
	ctx.tr.StampAt(trace.StageArrival, req.Arrival)
	inline := m.opts.Dispatch == Inline
	if m.opts.Dispatch == DispatchAuto {
		// Adaptive choice (§VII): in-line while the recent arrival
		// rate is low (the regime where dispatch wakeups dominate),
		// dispatched once it rises.
		inline = m.arrivals.tick() < m.opts.AutoDispatchQPS
	}
	if inline {
		// In-line design (§VII): no hand-off, no worker wakeup; the
		// poller executes the handler and is blocked for its duration.
		if m.opts.Dispatch == DispatchAuto {
			m.inlined.Add(1)
		}
		ctx.tr.Stamp(trace.StageWorkerStart)
		m.handler(ctx)
		return
	}
	// Dispatch design: the payload must outlive the poller's read buffer.
	req.DetachPayload()
	pri := PriorityNormal
	if m.opts.Classify != nil {
		pri = m.opts.Classify(req)
	}
	handoffStart := time.Now()
	err := m.workers.SubmitPriority(func() {
		ctx.tr.Stamp(trace.StageWorkerStart)
		m.handler(ctx)
	}, pri)
	if err != nil {
		req.ReplyError(err)
		return
	}
	ctx.tr.Stamp(trace.StageEnqueued)
	// The poller's hand-off cost before it re-enters its blocking read —
	// the Block overhead class.
	m.probe.ObserveOverhead(telemetry.OverheadBlock, time.Since(handoffStart))
}

// onLeafResponse runs on a leaf connection's reader goroutine; it forwards
// the completed call to the response thread pool.
func (m *MidTier) onLeafResponse(call *rpc.Call) {
	slot, ok := call.Data.(*fanoutSlot)
	if !ok || slot == nil {
		return // a direct (non-fanout) call; nothing to route
	}
	if err := m.responses.Submit(func() { slot.fo.deliver(call) }); err != nil {
		// Pool stopped mid-flight (shutdown); deliver inline so the
		// fan-out still completes.
		slot.fo.deliver(call)
	}
}

// LeafCall names one sub-request of a fan-out.
type LeafCall struct {
	// Shard indexes the destination leaf (0..NumLeaves-1).
	Shard int
	// Method and Payload form the sub-request.
	Method  string
	Payload []byte
}

// LeafResult is one leaf's response within a fan-out.
type LeafResult struct {
	// Shard indexes the leaf that produced this result.
	Shard int
	// Reply is the response payload (nil on error).
	Reply []byte
	// Err is the per-leaf failure, if any.
	Err error
}

// Ctx is the per-request context handed to the mid-tier handler.
type Ctx struct {
	// Req is the originating front-end request.
	Req *rpc.Request
	mt  *MidTier
	tr  *trace.Trace
	fin atomic.Bool
}

// NumLeaves reports the fan-out width available to this request.
func (c *Ctx) NumLeaves() int { return len(c.mt.leaves) }

// Reply completes the request successfully.
func (c *Ctx) Reply(payload []byte) {
	c.Req.Reply(payload)
	c.finish()
}

// ReplyError completes the request with an error.
func (c *Ctx) ReplyError(err error) {
	c.Req.ReplyError(err)
	c.finish()
}

// finish counts the completion and closes out the sampled trace, once.
func (c *Ctx) finish() {
	if !c.fin.CompareAndSwap(false, true) {
		return
	}
	c.mt.served.Add(1)
	if c.tr == nil {
		return
	}
	c.tr.Stamp(trace.StageReplySent)
	c.mt.opts.Tracer.Finish(c.tr)
}

// Fanout asynchronously issues calls to leaf shards and invokes merge with
// all results once the last response arrives.  The worker returns
// immediately after issuing the sub-requests ("fork for fan-out"); response
// threads count down and merge, with only the final one doing real work —
// the §IV asynchronous design.  merge runs on a response thread (or, for an
// empty call list, synchronously) and must call Reply/ReplyError.
func (c *Ctx) Fanout(calls []LeafCall, merge func([]LeafResult)) {
	if len(calls) == 0 {
		merge(nil)
		return
	}
	fo := &fanout{
		results: make([]LeafResult, len(calls)),
		merge:   merge,
		tr:      c.tr,
		slots:   make([]fanoutSlot, len(calls)),
	}
	fo.remaining.Store(int32(len(calls)))
	// Slots must be fully initialized before the expiry timer can fire.
	for i, lc := range calls {
		fo.slot(i, lc.Shard)
	}
	if d := c.mt.opts.FanoutTimeout; d > 0 {
		fo.timer.Store(time.AfterFunc(d, fo.expire))
	}
	for i, lc := range calls {
		slot := &fo.slots[i]
		if lc.Shard < 0 || lc.Shard >= len(c.mt.leaves) {
			fo.deliverSlot(slot, LeafResult{Shard: lc.Shard, Err: fmt.Errorf("core: no such leaf shard %d", lc.Shard)})
			continue
		}
		client := c.mt.leaves[lc.Shard].Pick()
		client.Go(lc.Method, lc.Payload, slot, nil)
	}
	c.tr.Stamp(trace.StageFanoutIssued)
}

// FanoutAll broadcasts one payload to every leaf shard.
func (c *Ctx) FanoutAll(method string, payload []byte, merge func([]LeafResult)) {
	calls := make([]LeafCall, len(c.mt.leaves))
	for i := range calls {
		calls[i] = LeafCall{Shard: i, Method: method, Payload: payload}
	}
	c.Fanout(calls, merge)
}

// CallLeaf issues a single synchronous leaf RPC (used by handlers that need
// a point read rather than a fan-out, e.g. Router gets).
func (c *Ctx) CallLeaf(shard int, method string, payload []byte) ([]byte, error) {
	if shard < 0 || shard >= len(c.mt.leaves) {
		return nil, fmt.Errorf("core: no such leaf shard %d", shard)
	}
	return c.mt.leaves[shard].Pick().Call(method, payload)
}

// ErrFanoutTimeout marks a leaf slot whose response missed the fan-out
// deadline.
var ErrFanoutTimeout = errors.New("core: leaf response timed out")

// fanout is the shared data structure through which an asynchronous event
// (a leaf response arriving on any reception thread) is matched back to its
// parent RPC — "all RPC state is explicit" (§IV).
type fanout struct {
	results   []LeafResult
	remaining atomic.Int32
	merge     func([]LeafResult)
	tr        *trace.Trace
	slots     []fanoutSlot
	// timer is set after AfterFunc returns; the callback can beat the
	// store, in which case there is nothing left worth stopping.
	timer atomic.Pointer[time.Timer]
}

// fanoutSlot routes one leaf call's completion into its fan-out slot.
type fanoutSlot struct {
	fo    *fanout
	index int
	shard int
	fired atomic.Bool
}

func (f *fanout) slot(index, shard int) *fanoutSlot {
	s := &f.slots[index]
	s.fo = f
	s.index = index
	s.shard = shard
	return s
}

// deliver stashes one response and, if it is the last, runs the merge.  All
// but the final response thread do negligible work (stash + decrement),
// matching the paper's count-down design.
func (f *fanout) deliver(call *rpc.Call) {
	slot := call.Data.(*fanoutSlot)
	f.deliverSlot(slot, LeafResult{Shard: slot.shard, Reply: call.Reply, Err: call.Err})
}

// deliverSlot completes one slot exactly once (a real response and the
// fan-out timeout may race; first wins).
func (f *fanout) deliverSlot(slot *fanoutSlot, res LeafResult) {
	if !slot.fired.CompareAndSwap(false, true) {
		return
	}
	f.results[slot.index] = res
	if f.remaining.Add(-1) == 0 {
		if t := f.timer.Load(); t != nil {
			t.Stop()
		}
		f.tr.Stamp(trace.StageLastLeafResponse)
		f.merge(f.results)
	}
}

// expire fails every still-pending slot with ErrFanoutTimeout.
func (f *fanout) expire() {
	for i := range f.slots {
		slot := &f.slots[i]
		f.deliverSlot(slot, LeafResult{Shard: slot.shard, Err: ErrFanoutTimeout})
	}
}
