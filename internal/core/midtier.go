package core

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/cluster"
	"musuite/internal/rpc"
	"musuite/internal/telemetry"
	"musuite/internal/trace"
)

// TailPolicy configures tail-tolerant fan-out: hedged requests, retries,
// and the retry budget bounding both.  The paper (§V–§VI) shows end-to-end
// latency is hostage to the slowest leaf of every fan-out; this policy adds
// the canonical recovery mechanisms without letting them amplify overload.
type TailPolicy struct {
	// HedgePercentile, in (0,1), arms hedging: a leaf call still pending
	// after this quantile of observed leaf latency gets a duplicate sent
	// to another replica, and the first response wins (the loser is
	// cancelled).  Zero disables hedging unless HedgeDelay is set.
	HedgePercentile float64
	// HedgeDelay, when positive, fixes the hedge delay instead of
	// tracking HedgePercentile through the latency digest.
	HedgeDelay time.Duration
	// HedgeMinDelay floors the tracked delay so sub-millisecond leaf
	// latencies don't turn hedging into a duplicate-everything storm
	// (default 500µs).
	HedgeMinDelay time.Duration
	// RetryBudgetRatio bounds hedges+retries to this fraction of primary
	// leaf traffic (default 0.1).
	RetryBudgetRatio float64
	// RetryBudgetBurst is the budget token bucket's cap and initial
	// credit (default 10).
	RetryBudgetBurst int
	// LeafRetries is the maximum re-issues per leaf call after a
	// retryable failure — timeout- or connection-class, never
	// application errors (default 0, no retries).
	LeafRetries int
}

// hedging reports whether the policy arms hedged requests.
func (t TailPolicy) hedging() bool { return t.HedgePercentile > 0 || t.HedgeDelay > 0 }

const (
	// defaultHedgeMinDelay floors the percentile-tracked hedge delay.
	defaultHedgeMinDelay = 500 * time.Microsecond
	// hedgeBootstrapDelay is used until the latency digest has samples.
	hedgeBootstrapDelay = time.Millisecond
	// hedgeRefreshEvery is how many latency observations elapse between
	// recomputations of the cached percentile delay (a quantile scan
	// walks every histogram bucket, too costly per call).
	hedgeRefreshEvery = 128
)

// Options configures a mid-tier microserver.
type Options struct {
	// Workers sizes the request worker pool (default 4).
	Workers int
	// ResponseThreads sizes the leaf-response pool (default 2).
	ResponseThreads int
	// Dispatch selects dispatched (default) or in-line execution.
	Dispatch DispatchMode
	// Wait selects blocking (default) or polling idle threads.
	Wait WaitMode
	// LeafConnsPerShard is the number of TCP connections opened to each
	// leaf (default 2), modelling one connection per serving thread.
	LeafConnsPerShard int
	// MaxQueueDepth bounds the dispatch queue; requests beyond it are
	// shed with a fast error instead of queueing unboundedly past
	// saturation (0 = unbounded, the paper's configuration).
	MaxQueueDepth int
	// AutoDispatchQPS is the arrival-rate threshold for DispatchAuto:
	// below it requests run in-line, above it they dispatch (default
	// 500 QPS).
	AutoDispatchQPS float64
	// FanoutTimeout bounds each fan-out; leaves that have not responded
	// by then contribute ErrFanoutTimeout results so the merge (and the
	// front-end) never hangs on a wedged leaf (0 = wait forever, the
	// paper's configuration).
	FanoutTimeout time.Duration
	// Classify, when set, assigns a dispatch priority per request —
	// §VII's "dispatched models can explicitly prioritize requests".
	// It runs on the network poller and must be fast.  The queue
	// reordering is ignored by the in-line mode, but the admission
	// controller's priority headroom applies in every mode.
	Classify func(*rpc.Request) Priority
	// Admit configures the adaptive admission controller: an AIMD
	// concurrency limit with priority headroom plus deadline-aware
	// shedding, both replying with a typed overload error the client
	// never retries.  The zero value disables admission.
	Admit AdmitPolicy
	// Tail configures tail-tolerant fan-out (hedged requests, retries,
	// and the retry budget).  The zero value disables hedging and
	// retries; replica selection is always on.
	Tail TailPolicy
	// Batch configures adaptive cross-request batching of leaf RPCs: calls
	// bound for the same leaf replica coalesce into one carrier RPC.  The
	// zero value disables batching (every leaf call is its own RPC).
	Batch BatchPolicy
	// Routing selects the key→shard placement strategy (default
	// cluster.Modulo, the classic hash-mod-N).  cluster.Jump keeps
	// ~n/(n+1) of key placements stable through a resize.
	Routing cluster.Router
	// PendingShards is the per-connection pending-table shard count
	// (default 8, rounded up to a power of two by the rpc client).
	PendingShards int
	// DisableWriteCoalesce reverts both the server side and every leaf
	// connection to one write syscall per frame instead of coalescing
	// concurrent frames into batched writes.
	DisableWriteCoalesce bool
	// Tracer, when set, samples requests for per-stage latency
	// attribution through the pipeline.
	Tracer *trace.Tracer
	// Spans, when set, records distributed-tracing spans for requests that
	// arrive with a sampled span context: one server span per request (with
	// the stage breakdown attached as notes) and one client span per leaf
	// attempt — hedges, retries, and abandoned losers included.
	Spans *trace.Recorder
	// Probe receives telemetry; nil disables instrumentation.
	Probe *telemetry.Probe
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Workers <= 0 {
		out.Workers = 4
	}
	if out.ResponseThreads <= 0 {
		out.ResponseThreads = 2
	}
	if out.LeafConnsPerShard <= 0 {
		out.LeafConnsPerShard = 2
	}
	return out
}

// Handler is the service-specific mid-tier request logic.  It runs on a
// worker thread (or the poller in in-line mode), typically: decode the
// request, compute the per-leaf sub-queries, call Ctx.Fanout, and return.
// The reply is sent later by the fan-out merge callback.
type Handler func(*Ctx)

// MidTier is a mid-tier microserver: an RPC server whose requests flow
// through the §IV pipeline (poller → dispatch queue → worker → async fan-out
// → response threads → merged reply).
type MidTier struct {
	opts    Options
	handler Handler
	probe   *telemetry.Probe
	spans   *trace.Recorder

	server    *rpc.Server
	workers   *WorkerPool
	responses *WorkerPool
	// deliverFn routes one completed leaf call to its fan-out, handleFn
	// one dispatched request context to the handler; each is allocated
	// once so the per-response and per-request submits carry no closure.
	deliverFn func(any)
	handleFn  func(any)

	// def is the default downstream edge (DefaultEdge, the classic leaf
	// fan-out); edges maps every connected edge by name.  Both are mutable
	// only before Start (guarded by edgeMu) and read-only after, so the
	// hot path reads them without synchronization.
	def     *edge
	edges   map[string]*edge
	edgeMu  sync.Mutex
	started atomic.Bool
	closed  atomic.Bool

	arrivals *rateMeter // DispatchAuto's load signal
	inlined  atomic.Uint64
	served   atomic.Uint64

	// admit is the adaptive admission controller; nil when Options.Admit
	// is zero, so the unlimited path costs nothing.
	admit *admitController

	// Tail-tolerance state: the hedge/retry token budget (tier-global, so
	// one edge's recovery traffic cannot starve another's) and the action
	// counters surfaced through core.stats.  The latency digests and
	// cached hedge delays live per edge.
	budget       *retryBudget
	hedges       atomic.Uint64
	hedgeWins    atomic.Uint64
	retries      atomic.Uint64
	budgetDenied atomic.Uint64

	// Batching occupancy/flush-cause counters surfaced through core.stats
	// (the cached digest-tracked flush delay lives per edge).
	batchCarriers      atomic.Uint64
	batchMembers       atomic.Uint64
	batchFlushSize     atomic.Uint64
	batchFlushDeadline atomic.Uint64
	batchFlushShutdown atomic.Uint64
}

// NewMidTier creates a mid-tier with the given request handler.
func NewMidTier(handler Handler, opts *Options) *MidTier {
	o := opts.withDefaults()
	m := &MidTier{opts: o, handler: handler, probe: o.Probe, spans: o.Spans}
	if o.AutoDispatchQPS <= 0 {
		o.AutoDispatchQPS = 500
		m.opts.AutoDispatchQPS = 500
	}
	m.arrivals = newRateMeter(100 * time.Millisecond)
	m.budget = newRetryBudget(o.Tail.RetryBudgetRatio, o.Tail.RetryBudgetBurst)
	m.workers = NewBoundedWorkerPool(o.Workers, o.MaxQueueDepth, o.Wait, o.Probe, telemetry.OverheadActiveExe)
	m.responses = NewWorkerPool(o.ResponseThreads, o.Wait, o.Probe, telemetry.OverheadSched)
	m.deliverFn = func(a any) {
		call := a.(*rpc.Call)
		call.Data.(*fanoutSlot).fo.deliver(call)
	}
	if o.Admit.enabled() {
		m.admit = newAdmitController(o.Admit, o.Probe)
	}
	m.handleFn = func(a any) {
		ctx := a.(*Ctx)
		if m.admit != nil && m.admit.doomed(ctx.Req.Arrival) {
			// Deadline-aware shed at worker pickup: the queue wait has
			// consumed too much of the budget for the reply to arrive in
			// time, so reject instead of burning a worker on doomed work.
			ctx.shed = true
			ctx.ReplyError(rpc.Overloadf("deadline: remaining budget below tracked p99 service time"))
			return
		}
		ctx.tr.Stamp(trace.StageWorkerStart)
		m.handler(ctx)
	}
	m.server = rpc.NewServer(m.onRequest, &rpc.ServerOptions{
		Probe:                o.Probe,
		DisableWriteCoalesce: o.DisableWriteCoalesce,
	})
	// The tier-wide fan-out knobs in Options become the default edge's
	// policy; ConnectEdge can replace it (or add named siblings) before
	// Start.
	m.def = m.newEdge(DefaultEdge, EdgePolicy{
		Timeout: o.FanoutTimeout,
		Tail:    o.Tail,
		Batch:   o.Batch,
		Routing: o.Routing,
	})
	m.edges = map[string]*edge{DefaultEdge: m.def}
	return m
}

// ConnectLeaves dials every leaf shard with one replica each.  Must be
// called before Start.
func (m *MidTier) ConnectLeaves(addrs []string) error {
	groups, err := GroupAddrs(addrs, 1)
	if err != nil {
		return err
	}
	return m.ConnectLeafGroups(groups)
}

// ConnectLeafGroups dials every leaf shard's replica set: groups[i] lists
// the addresses of the replicas serving shard i (all must hold the same
// shard data).  Fanout and CallLeaf route each call to the least-loaded
// replica of its shard, and hedges/retries go to a different replica than
// the attempt they back up.  Must be called before Start.
func (m *MidTier) ConnectLeafGroups(groups [][]string) error {
	if m.started.Load() {
		return errors.New("core: ConnectLeaves after Start")
	}
	if err := m.def.topo.Bootstrap(groups); err != nil {
		m.Close()
		return err
	}
	return nil
}

// Topology exposes the mid-tier's live leaf topology (the default edge's) —
// the runtime admin surface (cluster.ServeAdmin) binds to it.
func (m *MidTier) Topology() *cluster.Topology { return m.def.topo }

// AddLeafGroup dials a new leaf replica group and places it in service at
// runtime, returning its shard index.  Requests already in flight keep the
// leaf count they arrived with; requests arriving after the publish see the
// new shard.
func (m *MidTier) AddLeafGroup(addrs []string) (int, error) {
	return m.def.topo.AddGroup(addrs)
}

// DrainLeafGroup gracefully removes shard's leaf group at runtime: new
// requests route around it, in-flight requests (and their queued batch
// members) finish against it, then its batchers flush and its pools close.
// deadline bounds the wait (≤ 0 selects cluster.DefaultDrainDeadline).
func (m *MidTier) DrainLeafGroup(shard int, deadline time.Duration) error {
	return m.def.topo.DrainGroup(shard, deadline)
}

// RemoveLeafGroup forcefully removes shard's leaf group, failing its
// in-flight calls.  Prefer DrainLeafGroup.
func (m *MidTier) RemoveLeafGroup(shard int) error {
	return m.def.topo.RemoveGroup(shard)
}

// NumLeaves reports the number of connected leaf shards (default edge).
func (m *MidTier) NumLeaves() int { return m.def.topo.Current().NumLeaves() }

// NumReplicas reports the total leaf replica count across all shards
// (default edge).
func (m *MidTier) NumReplicas() int { return m.def.topo.Current().NumReplicas() }

// Shed reports how many requests the dispatch-queue bound rejected.
func (m *MidTier) Shed() uint64 { return m.workers.Shed() }

// Inlined reports how many requests DispatchAuto ran in-line.
func (m *MidTier) Inlined() uint64 { return m.inlined.Load() }

// Start binds the mid-tier server and begins serving.
func (m *MidTier) Start(addr string) (string, error) {
	m.started.Store(true)
	return m.server.Start(addr)
}

// Close shuts down the server, leaf connections, and thread pools.
func (m *MidTier) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	if m.server != nil {
		m.server.Close()
	}
	m.edgeMu.Lock()
	for _, e := range m.edges {
		e.topo.Close()
	}
	m.edgeMu.Unlock()
	m.workers.Stop()
	m.responses.Stop()
}

// onRequest runs on the network poller goroutine for every incoming RPC.
func (m *MidTier) onRequest(req *rpc.Request) {
	if req.Method == StatsMethod {
		req.Reply(encodeTierStats(m.stats()))
		return
	}
	// Priority is classified before admission so the controller's
	// headroom can prefer high-priority traffic; the same value orders
	// the dispatch queue below.
	pri := PriorityNormal
	if m.opts.Classify != nil {
		pri = m.opts.Classify(req)
	}
	if m.admit != nil && !m.admit.acquire(pri) {
		// Shed at the door: a typed reject on the poller, before any
		// snapshot pin, payload copy, or worker wakeup is spent on a
		// request the tier cannot absorb.
		req.ReplyError(rpc.Overloadf("admission limit"))
		return
	}
	// The request pins the topology snapshot it arrived under: every
	// routing read for its lifetime (NumLeaves, fan-out, point reads,
	// hedges, retries) resolves against this one epoch, and a concurrent
	// drain waits for the pin before closing anything the request may
	// still call.  Released in finish (or below if dispatch sheds it).
	ctx := &Ctx{Req: req, mt: m, snap: m.def.topo.Acquire(), admitted: m.admit != nil}
	ctx.tr = m.opts.Tracer.Sample()
	if m.spans != nil && req.TraceContext().Sampled() {
		// The request arrived with a sampled span context: this tier's
		// server span is its child, and the leaf attempts below will be
		// children of that.  A stage trace rides along even when the local
		// Tracer did not sample, so the breakdown can annotate the span;
		// owned traces return to the pool in finish rather than through
		// the Tracer's ring.
		ctx.span = req.TraceContext().Child()
		if ctx.tr == nil {
			ctx.tr = trace.NewTrace()
			ctx.trOwned = true
		}
	}
	ctx.tr.StampAt(trace.StageArrival, req.Arrival)
	inline := m.opts.Dispatch == Inline
	if m.opts.Dispatch == DispatchAuto {
		// Adaptive choice (§VII): in-line while the recent arrival
		// rate is low (the regime where dispatch wakeups dominate),
		// dispatched once it rises.
		inline = m.arrivals.tick() < m.opts.AutoDispatchQPS
	}
	if inline {
		// In-line design (§VII): no hand-off, no worker wakeup; the
		// poller executes the handler and is blocked for its duration.
		if m.opts.Dispatch == DispatchAuto {
			m.inlined.Add(1)
		}
		ctx.tr.Stamp(trace.StageWorkerStart)
		m.handler(ctx)
		return
	}
	// Dispatch design: the payload must outlive the poller's read buffer.
	req.DetachPayload()
	handoffStart := time.Now()
	// Stamped before the hand-off: a fast worker can reply — and recycle a
	// pooled trace — before SubmitPriorityArg even returns, so a stamp
	// after it could land on the trace's next occupant.
	ctx.tr.Stamp(trace.StageEnqueued)
	err := m.workers.SubmitPriorityArg(m.handleFn, ctx, pri)
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			// The dispatch queue is the hard backstop behind the adaptive
			// limit; its sheds carry the same typed overload error so the
			// client treats both identically (no retry, no budget spend).
			m.probe.IncAdmit(telemetry.AdmitShedQueue)
			req.ReplyError(rpc.Overloadf("dispatch queue full"))
		} else {
			req.ReplyError(err)
		}
		// Shed before the handler ever ran: release the pin (and the
		// admission slot, without feeding the latency signal) directly —
		// not via finish, which would count the request as served.
		ctx.snap.Release()
		if ctx.admitted {
			m.admit.cancel()
		}
		if ctx.trOwned {
			trace.PutTrace(ctx.tr)
		}
		return
	}
	// The poller's hand-off cost before it re-enters its blocking read —
	// the Block overhead class.
	m.probe.ObserveOverhead(telemetry.OverheadBlock, time.Since(handoffStart))
}

// onLeafResponse runs on a leaf connection's reader goroutine; it forwards
// the completed call to the response thread pool.  Consuming the call
// (returning true) transfers ownership to the fan-out, which releases the
// struct back to the call pool after stashing the slot's result.
func (m *MidTier) onLeafResponse(call *rpc.Call) bool {
	slot, ok := call.Data.(*fanoutSlot)
	if !ok || slot == nil {
		return false // a direct (non-fanout) call; deliver on Done
	}
	if err := m.responses.SubmitArg(m.deliverFn, call); err != nil {
		// Pool stopped mid-flight (shutdown); deliver inline so the
		// fan-out still completes.
		slot.fo.deliver(call)
	}
	return true
}

// LeafCall names one sub-request of a fan-out.
type LeafCall struct {
	// Shard indexes the destination leaf (0..NumLeaves-1).
	Shard int
	// Method and Payload form the sub-request.
	Method  string
	Payload []byte
}

// LeafResult is one leaf's response within a fan-out.
type LeafResult struct {
	// Shard indexes the leaf that produced this result.
	Shard int
	// Reply is the response payload (nil on error).  It may alias a pooled
	// buffer that is recycled when the merge callback returns: a merge that
	// needs reply bytes past its own return must copy them.
	Reply []byte
	// Err is the per-leaf failure, if any.
	Err error
}

// Ctx is the per-request context handed to the mid-tier handler.
type Ctx struct {
	// Req is the originating front-end request.
	Req *rpc.Request
	mt  *MidTier
	// snap is the topology snapshot pinned at arrival; every routing
	// decision this request makes reads it, so the leaf count and shard
	// placement cannot change under a request mid-flight.
	snap *cluster.Snapshot
	tr   *trace.Trace
	// span is this tier's server span (a child of the caller's client span),
	// zero when the request arrived unsampled or span recording is off.
	span trace.SpanContext
	// trOwned marks a trace drawn from the pool purely to annotate the span
	// (the Tracer did not sample); finish returns it to the pool directly.
	trOwned bool
	// admitted marks a request holding an admission slot; finish must
	// release it.  shed marks one rejected after admission (deadline
	// shed), whose short latency must not feed the AIMD signal.
	admitted bool
	shed     bool
	errText  string
	fin      atomic.Bool

	// pins tracks the non-default edge snapshots this request pinned via
	// Edge, released in finish.  Guarded by pinMu: a multi-stage handler
	// may resolve edges from concurrent merge callbacks.
	pinMu sync.Mutex
	pins  []edgePin
}

// NumLeaves reports the fan-out width available to this request.  It is
// stable for the request's lifetime even while the cluster resizes: the
// value comes from the snapshot pinned at arrival.
func (c *Ctx) NumLeaves() int { return c.snap.NumLeaves() }

// Snapshot is the topology snapshot pinned for this request — handlers that
// make several placement decisions (a route computed here, a shard read
// there) take it once so all of them agree on one epoch.
func (c *Ctx) Snapshot() *cluster.Snapshot { return c.snap }

// Reply completes the request successfully.
func (c *Ctx) Reply(payload []byte) {
	c.Req.Reply(payload)
	c.finish()
}

// ReplyError completes the request with an error.
func (c *Ctx) ReplyError(err error) {
	if err != nil && c.span.Sampled() {
		c.errText = err.Error()
	}
	c.Req.ReplyError(err)
	c.finish()
}

// finish counts the completion, releases the topology pin, records the
// server span, and closes out the sampled trace, once.
func (c *Ctx) finish() {
	if !c.fin.CompareAndSwap(false, true) {
		return
	}
	c.snap.Release()
	c.pinMu.Lock()
	pins := c.pins
	c.pins = nil
	c.pinMu.Unlock()
	for _, p := range pins {
		p.snap.Release()
	}
	if c.admitted {
		if c.shed {
			c.mt.admit.cancel()
		} else {
			c.mt.admit.release(time.Since(c.Req.Arrival))
		}
	}
	c.mt.served.Add(1)
	if c.tr == nil {
		return
	}
	c.tr.Stamp(trace.StageReplySent)
	if c.span.Sampled() {
		c.recordServerSpan()
	}
	// Every stage stamp happens-before this point (Enqueued before the
	// worker hand-off, FanoutIssued before the first attempt is sent), so
	// recycling here cannot race a late stamp.
	if c.trOwned {
		trace.PutTrace(c.tr)
	} else {
		c.mt.opts.Tracer.Finish(c.tr)
	}
}

// recordServerSpan emits this tier's server span, with the request's stage
// breakdown attached as notes so trace consumers see where the time went
// without a second data channel.
func (c *Ctx) recordServerSpan() {
	end := c.tr.At(trace.StageReplySent)
	start := c.Req.Arrival
	if end.Before(start) {
		end = start
	}
	b := c.tr.Breakdown()
	notes := make([]string, 0, 5)
	addSeg := func(name string, d time.Duration) {
		if d > 0 {
			notes = append(notes, name+"="+d.String())
		}
	}
	addSeg("handoff", b.Handoff)
	addSeg("queue", b.Queue)
	addSeg("compute", b.Compute)
	addSeg("leaf-wait", b.LeafWait)
	addSeg("merge", b.Merge)
	c.mt.spans.Record(trace.Span{
		TraceID:  trace.ID(c.span.TraceID),
		SpanID:   trace.ID(c.span.SpanID),
		ParentID: trace.ID(c.span.ParentID),
		Name:     c.Req.Method,
		Kind:     trace.KindServer,
		Start:    start.UnixNano(),
		Duration: end.Sub(start).Nanoseconds(),
		Err:      c.errText,
		Notes:    notes,
	})
}

// Fanout asynchronously issues calls to leaf shards and invokes merge with
// all results once the last response arrives.  The worker returns
// immediately after issuing the sub-requests ("fork for fan-out"); response
// threads count down and merge, with only the final one doing real work —
// the §IV asynchronous design.  merge runs on a response thread (or, for an
// empty call list, synchronously) and must call Reply/ReplyError.
func (c *Ctx) Fanout(calls []LeafCall, merge func([]LeafResult)) {
	c.fanoutOn(c.mt.def, c.snap, calls, merge)
}

// fanoutOn is Fanout against one edge's policy and pinned snapshot.
func (c *Ctx) fanoutOn(e *edge, snap *cluster.Snapshot, calls []LeafCall, merge func([]LeafResult)) {
	if len(calls) == 0 {
		merge(nil)
		return
	}
	fo := getFanout(e, snap, len(calls), merge, c.tr, c.span)
	// Slots must be fully initialized before the expiry timer can fire.
	for i, lc := range calls {
		fo.slot(i, lc.Shard, lc.Method, lc.Payload)
	}
	c.runFanout(fo)
}

// FanoutAll broadcasts one payload to every leaf shard.  The calls are
// synthesized straight into the fan-out's slots — no LeafCall slice.
func (c *Ctx) FanoutAll(method string, payload []byte, merge func([]LeafResult)) {
	c.fanoutAllOn(c.mt.def, c.snap, method, payload, merge)
}

// fanoutAllOn is FanoutAll against one edge's policy and pinned snapshot.
func (c *Ctx) fanoutAllOn(e *edge, snap *cluster.Snapshot, method string, payload []byte, merge func([]LeafResult)) {
	n := snap.NumLeaves()
	if n == 0 {
		merge(nil)
		return
	}
	fo := getFanout(e, snap, n, merge, c.tr, c.span)
	for i := 0; i < n; i++ {
		fo.slot(i, i, method, payload)
	}
	c.runFanout(fo)
}

// runFanout arms the expiry timer and issues every slot's primary attempt.
func (c *Ctx) runFanout(fo *fanout) {
	m := c.mt
	// Stamped before the first attempt goes out: a leaf response can
	// complete the whole request — and recycle a pooled trace — before the
	// issue loop below returns.
	c.tr.Stamp(trace.StageFanoutIssued)
	if d := fo.e.policy.Timeout; d > 0 {
		fo.refs.Add(1) // expiry hold: released by expire or a won Stop
		fo.timer.Store(time.AfterFunc(d, fo.expire))
	}
	for i := range fo.slots {
		slot := &fo.slots[i]
		if slot.shard < 0 || slot.shard >= fo.snap.NumLeaves() {
			fo.deliverSlot(slot, LeafResult{Shard: slot.shard, Err: fmt.Errorf("core: no such leaf shard %d", slot.shard)}, nil)
			continue
		}
		m.issuePrimary(slot)
	}
}

// CallLeaf issues a single synchronous leaf RPC (used by handlers that need
// a point read rather than a fan-out, e.g. Router gets).  The call goes to
// the shard's least-loaded replica; retryable failures are re-issued to
// another replica, up to Tail.LeafRetries and subject to the retry budget.
func (c *Ctx) CallLeaf(shard int, method string, payload []byte) ([]byte, error) {
	return c.callOn(c.mt.def, c.snap, shard, method, payload)
}

// callOn is CallLeaf against one edge's policy and pinned snapshot.
func (c *Ctx) callOn(e *edge, snap *cluster.Snapshot, shard int, method string, payload []byte) ([]byte, error) {
	m := c.mt
	if shard < 0 || shard >= snap.NumLeaves() {
		return nil, fmt.Errorf("core: no such leaf shard %d", shard)
	}
	// The caller's pinned snapshot keeps the group's pools open for the
	// whole (synchronous) call, retries included.
	g := snap.Group(shard)
	m.budget.earn()
	traced := c.span.Sampled() && m.spans != nil
	exclude := -1
	for attempt := 0; ; attempt++ {
		pool, idx := g.Pick(exclude)
		var sc trace.SpanContext
		var start time.Time
		if traced {
			sc = c.span.Child()
			start = time.Now()
		}
		call := pool.Pick().GoSpan(method, payload, sc, nil, nil)
		<-call.Done
		if traced {
			end := call.Received
			if end.IsZero() {
				end = time.Now()
			}
			var errText string
			if call.Err != nil {
				errText = call.Err.Error()
			}
			notes := make([]string, 0, 2)
			if attempt > 0 {
				notes = append(notes, "retry")
			}
			notes = append(notes, "shard="+strconv.Itoa(shard))
			m.spans.Record(trace.Span{
				TraceID:  trace.ID(sc.TraceID),
				SpanID:   trace.ID(sc.SpanID),
				ParentID: trace.ID(sc.ParentID),
				Name:     method,
				Kind:     trace.KindClient,
				Start:    start.UnixNano(),
				Duration: end.Sub(start).Nanoseconds(),
				Err:      errText,
				Notes:    notes,
			})
		}
		if call.Err == nil {
			e.observeLatency(call.Received.Sub(call.Sent))
			reply := call.DetachReply()
			call.Release()
			return reply, nil
		}
		err := call.Err
		call.Release()
		if attempt >= e.policy.Tail.LeafRetries || !rpc.Retryable(err) {
			return nil, err
		}
		if !m.budget.spend() {
			m.budgetDenied.Add(1)
			m.probe.IncTail(telemetry.TailBudgetDenied)
			return nil, err
		}
		m.retries.Add(1)
		m.probe.IncTail(telemetry.TailRetry)
		exclude = idx
	}
}

// issuePrimary sends a slot's first attempt and, when hedging is armed,
// starts the hedge timer that will duplicate the call if no response lands
// within the hedge delay.
func (m *MidTier) issuePrimary(slot *fanoutSlot) {
	m.budget.earn()
	hedging := slot.fo.e.policy.Tail.hedging()
	if hedging {
		// The hedge timer's hold must exist before the primary attempt can
		// complete, or a fast response could recycle the fan-out under the
		// timer registration below.
		slot.fo.refs.Add(1)
	}
	m.issueAttempt(slot, -1, attemptPrimary)
	if hedging {
		t := time.AfterFunc(slot.fo.e.hedgeDelay(), func() {
			defer slot.fo.unref()
			m.hedge(slot)
		})
		slot.mu.Lock()
		slot.hedgeTimer = t
		slot.mu.Unlock()
		if slot.fired.Load() {
			// The primary answered (or the fan-out expired) before the
			// timer was registered; the cancel path missed it, stop here.
			if t.Stop() {
				slot.fo.unref() // the callback will never run
			}
		}
	}
}

// issueAttempt sends one copy of the slot's sub-request to a replica of its
// shard, preferring one not carrying an earlier attempt of the same call.
// With batching enabled the call enqueues on the picked replica's batcher
// (a hedge or retry thereby coalesces into that replica's next carrier);
// otherwise it goes straight to a pooled connection.
func (m *MidTier) issueAttempt(slot *fanoutSlot, exclude int, kind attemptKind) {
	// Late issuers — a hedge timer, a retry racing the fan-out expiry —
	// can outlive the request's own pin.  TryPin succeeds only while some
	// pin is still held, which proves the request is unanswered and the
	// shard's pools are guaranteed open for the duration of this send; a
	// failure proves the request was already answered (every slot fired),
	// so there is nothing worth issuing — and the shard may be mid-drain.
	snap := slot.fo.snap
	if !snap.TryPin() {
		return
	}
	defer snap.Release()
	// Captured while the pin proves the fan-out alive: the late-completion
	// branch below may run after a racing delivery has recycled the slot,
	// so it must not read slot fields then.
	method, shard := slot.method, slot.shard
	g := snap.Group(shard)
	pool, idx := g.Pick(exclude)
	a := attempt{replica: idx, kind: kind}
	if slot.fo.span.Sampled() && m.spans != nil {
		a.span = slot.fo.span.Child()
		a.start = time.Now()
	}
	// The attempt's fan-out hold must predate the send: the response can
	// land (and run the count-down) before GoRef even returns.
	slot.fo.refs.Add(1)
	// The ref is captured before the frame is written, so a completion that
	// races this return (and recycles the call) leaves only a harmlessly
	// stale ref behind — abandons through it are no-ops.
	if b := g.Batcher(idx); b != nil {
		a.batcher = b
		a.ref = b.GoRefSpan(slot.method, slot.payload, a.span, slot, nil)
	} else {
		a.client = pool.Pick()
		a.ref = a.client.GoRefSpan(slot.method, slot.payload, a.span, slot, nil)
	}
	slot.mu.Lock()
	slot.attempts = append(slot.attempts, a)
	fired := slot.fired.Load()
	record := false
	if fired && a.span.Sampled() {
		// Claim the recorded flag under the mutex: if the cancel sweep is
		// yet to run it will skip this attempt, and if it already ran it
		// missed it — either way this issuer owns the span.
		la := &slot.attempts[len(slot.attempts)-1]
		if !la.recorded {
			la.recorded = true
			record = true
		}
	}
	slot.mu.Unlock()
	if fired {
		// The slot completed while this attempt was being issued, so the
		// cancel sweep may have run before the attempt was tracked.  The
		// frame is already on the wire though — the leaf will serve it and
		// record a server span — so the loser's client span must still be
		// emitted or the exported tree ends up with an orphan.
		if record {
			m.recordAttemptSpan(method, shard, &a, time.Now(), "", true)
		}
		if a.abandon() {
			slot.fo.unref()
		}
	}
}

// hedge runs on the slot's hedge timer: if the primary is still pending and
// the retry budget allows, issue a duplicate to another replica.
func (m *MidTier) hedge(slot *fanoutSlot) {
	if slot.fired.Load() {
		return
	}
	slot.mu.Lock()
	if slot.hedged || len(slot.attempts) == 0 {
		slot.mu.Unlock()
		return
	}
	slot.hedged = true
	primary := slot.attempts[0].replica
	slot.mu.Unlock()
	if !m.budget.spend() {
		m.budgetDenied.Add(1)
		m.probe.IncTail(telemetry.TailBudgetDenied)
		return
	}
	m.hedges.Add(1)
	m.probe.IncTail(telemetry.TailHedge)
	m.issueAttempt(slot, primary, attemptHedge)
}

// maybeRetry re-issues a slot's sub-request after a retryable failure,
// bounded by Tail.LeafRetries per slot and the global retry budget.  It
// reports whether a retry is now in flight (the slot stays pending).
func (m *MidTier) maybeRetry(slot *fanoutSlot, failed *rpc.Call) bool {
	max := slot.fo.e.policy.Tail.LeafRetries
	if max <= 0 {
		return false
	}
	slot.mu.Lock()
	if slot.retries >= max {
		slot.mu.Unlock()
		return false
	}
	slot.retries++
	failedRef := failed.Ref()
	exclude := -1
	for _, a := range slot.attempts {
		if a.ref == failedRef {
			exclude = a.replica
			break
		}
	}
	slot.mu.Unlock()
	if !m.budget.spend() {
		m.budgetDenied.Add(1)
		m.probe.IncTail(telemetry.TailBudgetDenied)
		return false
	}
	m.retries.Add(1)
	m.probe.IncTail(telemetry.TailRetry)
	// The failed copy never reaches deliverSlot (the retry supersedes it),
	// so its span retires here, carrying the error that triggered the
	// retry.  Had the budget denied, the failure would have completed the
	// slot and been recorded as the winner instead.
	if m.spans != nil && slot.fo.span.Sampled() {
		var fa attempt
		var have bool
		slot.mu.Lock()
		for i := range slot.attempts {
			a := &slot.attempts[i]
			if a.ref == failedRef && !a.recorded {
				a.recorded = true
				fa, have = *a, true
				break
			}
		}
		slot.mu.Unlock()
		if have {
			end := failed.Received
			if end.IsZero() {
				end = time.Now()
			}
			var errText string
			if failed.Err != nil {
				errText = failed.Err.Error()
			}
			m.recordAttemptSpan(slot.method, slot.shard, &fa, end, errText, false)
		}
	}
	m.issueAttempt(slot, exclude, attemptRetry)
	return true
}

// recordAttemptSpan emits the client span of one retired leaf attempt.  The
// caller must have claimed the attempt's recorded flag under the slot mutex,
// and passes the slot's method and shard by value — a late issuer may record
// after the fan-out has recycled, when the slot's own fields are gone.  end
// is the retirement instant (a winner's receive time, a loser's cancel time
// clamped to the winner's).
func (m *MidTier) recordAttemptSpan(method string, shard int, a *attempt, end time.Time, errText string, abandoned bool) {
	if m.spans == nil || !a.span.Sampled() {
		return
	}
	start := a.start
	if start.IsZero() {
		start = end
	}
	if end.Before(start) {
		end = start
	}
	notes := make([]string, 0, 4)
	switch a.kind {
	case attemptHedge:
		notes = append(notes, "hedge")
	case attemptRetry:
		notes = append(notes, "retry")
	}
	if a.batcher != nil {
		notes = append(notes, "batched")
	}
	if abandoned {
		notes = append(notes, "abandoned")
	}
	notes = append(notes, "shard="+strconv.Itoa(shard))
	m.spans.Record(trace.Span{
		TraceID:  trace.ID(a.span.TraceID),
		SpanID:   trace.ID(a.span.SpanID),
		ParentID: trace.ID(a.span.ParentID),
		Name:     method,
		Kind:     trace.KindClient,
		Start:    start.UnixNano(),
		Duration: end.Sub(start).Nanoseconds(),
		Err:      errText,
		Notes:    notes,
	})
}

// observeLeafLatency feeds the default edge's latency digest — the
// per-edge observe path (edge.observeLatency) under its old name, kept for
// in-package tests that seed the digest directly.
func (m *MidTier) observeLeafLatency(d time.Duration) { m.def.observeLatency(d) }

// ErrFanoutTimeout marks a leaf slot whose response missed the fan-out
// deadline.
var ErrFanoutTimeout = errors.New("core: leaf response timed out")

// fanout is the shared data structure through which an asynchronous event
// (a leaf response arriving on any reception thread) is matched back to its
// parent RPC — "all RPC state is explicit" (§IV).
//
// Fan-outs are pooled: all the per-request machinery (the struct, the
// result/buffer/slot slices, each slot's inline attempt storage) is reused
// across requests.  Recycling is guarded by refs, a count of every party
// that may still touch the struct; a reference that provably can never be
// dropped (an attempt whose delivery was suppressed after it left our
// hands, e.g. a cancelled carrier member discarded by the batch demux)
// simply strands the fan-out to the garbage collector — correctness never
// depends on the pool.
type fanout struct {
	mt *MidTier
	// e is the edge this fan-out issues on: its policy governs timeout,
	// hedging, retries, and batching, and its digest absorbs the latency
	// observations.
	e *edge
	// snap is the parent request's pinned topology snapshot, borrowed (not
	// re-pinned) for the fan-out's lifetime: slot shard indices resolve
	// against it, and late attempt issuers TryPin it before touching its
	// groups.  The pointer stays valid even after the request's pin drops —
	// only the liveness of the pools behind it is then in question, which
	// is exactly what TryPin checks.
	snap    *cluster.Snapshot
	results []LeafResult
	// bufs holds each winning call's pooled reply buffer so results[i].Reply
	// stays valid through the merge; all are released right after merge
	// returns.
	bufs      []*rpc.Buf
	remaining atomic.Int32
	merge     func([]LeafResult)
	tr        *trace.Trace
	// span is the parent request's server span; each attempt's client span
	// is derived from it.  Zero when the request is unsampled.
	span  trace.SpanContext
	slots []fanoutSlot
	// timer is set after AfterFunc returns; the callback can beat the
	// store, in which case there is nothing left worth stopping.
	timer atomic.Pointer[time.Timer]
	// refs counts the outstanding holds on this struct: one for the merge,
	// one per issued attempt (dropped on delivery, or by the abandoner when
	// the abandon provably suppressed delivery), one per armed timer
	// (dropped by the callback, or by whoever wins Stop).  At zero the
	// fan-out recycles.
	refs atomic.Int32
}

// fanoutPool recycles fan-out machinery across requests.
var fanoutPool = sync.Pool{New: func() any { return new(fanout) }}

// getFanout readies a pooled fan-out for n slots.
func getFanout(e *edge, snap *cluster.Snapshot, n int, merge func([]LeafResult), tr *trace.Trace, span trace.SpanContext) *fanout {
	f := fanoutPool.Get().(*fanout)
	f.mt = e.mt
	f.e = e
	f.snap = snap
	f.merge = merge
	f.tr = tr
	f.span = span
	if cap(f.slots) < n {
		f.results = make([]LeafResult, n)
		f.bufs = make([]*rpc.Buf, n)
		f.slots = make([]fanoutSlot, n)
	} else {
		f.results = f.results[:n]
		f.bufs = f.bufs[:n]
		f.slots = f.slots[:n]
	}
	f.remaining.Store(int32(n))
	f.refs.Store(1) // the merge hold
	return f
}

// unref drops one hold; the last one recycles the fan-out.
func (f *fanout) unref() {
	if f.refs.Add(-1) == 0 {
		f.recycle()
	}
}

// recycle severs request-lifetime references and pools the machinery.  It
// runs only once refs hits zero: every delivery has landed and every timer
// has resolved, so nothing can reach the slots anymore.
func (f *fanout) recycle() {
	f.mt = nil
	f.e = nil
	f.snap = nil
	f.merge = nil
	f.tr = nil
	f.span = trace.SpanContext{}
	f.timer.Store(nil)
	for i := range f.results {
		f.results[i] = LeafResult{}
	}
	for i := range f.slots {
		s := &f.slots[i]
		s.fo = nil
		s.method = ""
		s.payload = nil
		s.hedgeTimer = nil
		s.hedged = false
		s.retries = 0
		for j := range s.attempts {
			s.attempts[j] = attempt{}
		}
		s.attempts = nil
	}
	fanoutPool.Put(f)
}

// attemptKind distinguishes why a call copy was sent, for win-rate counting.
type attemptKind uint8

const (
	attemptPrimary attemptKind = iota
	attemptHedge
	attemptRetry
)

// attempt is one issued copy of a slot's sub-request, tracked by a
// generation-stamped ref — never by the Call pointer, whose struct may be
// recycled into an unrelated RPC the moment its consumer releases it.
// Exactly one of client (direct send) or batcher (batched send) is set.
type attempt struct {
	ref     rpc.CallRef
	client  *rpc.Client
	batcher *rpc.Batcher
	replica int
	kind    attemptKind
	// span is this attempt's client span context (zero when unsampled) and
	// start its issue instant; recorded, guarded by the slot mutex, ensures
	// the span is emitted exactly once no matter which path — win, loss,
	// retry — retires the attempt.
	span     trace.SpanContext
	start    time.Time
	recorded bool
}

// abandon cancels the attempt's call through whichever path issued it.  A
// ref whose call already completed (and was recycled) no longer matches its
// generation, so the abandon is a no-op.  It reports whether delivery was
// provably suppressed here (the abandoner then owns the attempt's fan-out
// hold); false means a delivery happened or may still be in flight.
func (a *attempt) abandon() bool {
	if a.batcher != nil {
		return a.batcher.AbandonRef(a.ref)
	}
	return a.client.AbandonRef(a.ref)
}

// fanoutSlot routes one leaf call's completions into its fan-out slot.  A
// slot may have several attempts in flight at once (primary + hedge, or a
// retry); the first to complete wins and the rest are abandoned.
type fanoutSlot struct {
	fo      *fanout
	index   int
	shard   int
	fired   atomic.Bool
	method  string
	payload []byte

	mu         sync.Mutex // guards the fields below
	attempts   []attempt
	hedgeTimer *time.Timer
	hedged     bool
	retries    int
	// attemptsArr is attempts' inline storage: a primary plus one hedge or
	// retry fit without a heap slice, and the array recycles with the slot.
	attemptsArr [2]attempt
}

func (f *fanout) slot(index, shard int, method string, payload []byte) *fanoutSlot {
	s := &f.slots[index]
	s.fo = f
	s.index = index
	s.shard = shard
	s.method = method
	s.payload = payload
	s.fired.Store(false)
	s.attempts = s.attemptsArr[:0]
	return s
}

// cancelLosers stops the slot's hedge timer and abandons every attempt
// other than the winner, so late responses are dropped at the reader
// instead of delivered.  It returns a copy of the winning attempt (valid
// only when found) with its recorded flag claimed, and emits the span of
// every abandoned loser — annotated "abandoned", its end clamped to end so
// a cancelled duplicate never outlasts the response that beat it.
func (s *fanoutSlot) cancelLosers(winner rpc.CallRef, end time.Time) (win attempt, found bool) {
	released := 0
	var losers []attempt
	s.mu.Lock()
	if t := s.hedgeTimer; t != nil {
		s.hedgeTimer = nil
		if t.Stop() {
			released++ // the hedge callback will never run; its hold is ours
		}
	}
	for i := range s.attempts {
		a := &s.attempts[i]
		if a.ref == winner {
			win, found = *a, true
			a.recorded = true
			continue
		}
		if a.abandon() {
			released++ // delivery suppressed; the attempt hold is ours
		}
		if a.span.Sampled() && !a.recorded {
			a.recorded = true
			losers = append(losers, *a)
		}
	}
	s.mu.Unlock()
	for ; released > 0; released-- {
		s.fo.unref()
	}
	for i := range losers {
		s.fo.mt.recordAttemptSpan(s.method, s.shard, &losers[i], end, "", true)
	}
	return win, found
}

// deliver stashes one response and, if it is the last, runs the merge.  All
// but the final response thread do negligible work (stash + decrement),
// matching the paper's count-down design.  Successful completions feed the
// hedge-delay digest; retryable failures may re-issue instead of
// completing the slot.
func (f *fanout) deliver(call *rpc.Call) {
	slot := call.Data.(*fanoutSlot)
	if call.Err == nil {
		f.e.observeLatency(call.Received.Sub(call.Sent))
	} else if !slot.fired.Load() && rpc.Retryable(call.Err) && f.mt.maybeRetry(slot, call) {
		// A retry is in flight; the slot stays pending and this failed
		// copy — which the fan-out owns, having consumed it — retires.
		// (The retry took its own hold before this one drops.)
		call.Release()
		f.unref()
		return
	}
	f.deliverSlot(slot, LeafResult{Shard: slot.shard, Reply: call.Reply, Err: call.Err}, call)
	f.unref() // this delivery's attempt hold
}

// deliverSlot completes one slot exactly once (concurrent attempts and the
// fan-out timeout may race; first wins, the rest are cancelled).  The
// fan-out owns winner (nil for a timeout expiry): the loser of the race is
// released immediately, the winner after its pooled reply buffer — which
// res.Reply aliases — has been stashed for the merge.
func (f *fanout) deliverSlot(slot *fanoutSlot, res LeafResult, winner *rpc.Call) {
	if !slot.fired.CompareAndSwap(false, true) {
		winner.Release()
		return
	}
	var winnerRef rpc.CallRef
	var end time.Time
	var errText string
	if winner != nil {
		winnerRef = winner.Ref()
	}
	if f.span.Sampled() {
		end = time.Now()
		if winner != nil {
			if !winner.Received.IsZero() {
				end = winner.Received
			}
			if winner.Err != nil {
				errText = winner.Err.Error()
			}
		}
	}
	if win, ok := slot.cancelLosers(winnerRef, end); ok {
		if win.kind == attemptHedge {
			f.mt.hedgeWins.Add(1)
			f.mt.probe.IncTail(telemetry.TailHedgeWin)
		}
		f.mt.recordAttemptSpan(slot.method, slot.shard, &win, end, errText, false)
	}
	f.results[slot.index] = res
	if winner != nil {
		f.bufs[slot.index] = winner.TakeReplyBuf()
		winner.Release()
	}
	if f.remaining.Add(-1) == 0 {
		if t := f.timer.Load(); t != nil && t.Stop() {
			f.unref() // expire will never run; its hold is ours
		}
		f.tr.Stamp(trace.StageLastLeafResponse)
		f.merge(f.results)
		// The merge has returned (and with it the front-end reply has been
		// copied to the write path), so every reply view is dead: recycle
		// the buffers backing them.
		for i, b := range f.bufs {
			b.Release()
			f.bufs[i] = nil
		}
		f.unref() // the merge hold
	}
}

// expire fails every still-pending slot with ErrFanoutTimeout, cancelling
// any attempts still in flight.
func (f *fanout) expire() {
	for i := range f.slots {
		slot := &f.slots[i]
		f.deliverSlot(slot, LeafResult{Shard: slot.shard, Err: ErrFanoutTimeout}, nil)
	}
	f.unref() // the expiry hold taken when the timer was armed
}
