package core

import (
	"musuite/internal/rpc"
	"musuite/internal/wire"
)

// StatsMethod is the reserved RPC method every framework tier answers with
// its operational counters — the introspection hook deployment tooling
// (health checks, autoscalers, the thread-pool-sizing schedulers §VII
// imagines) reads.
const StatsMethod = "core.stats"

// TierStats are one tier's operational counters.
type TierStats struct {
	// Role is "midtier" or "leaf".
	Role string
	// Served counts completed requests.
	Served uint64
	// Shed counts requests rejected by the dispatch-queue bound.
	Shed uint64
	// Inlined counts requests DispatchAuto ran in-line.
	Inlined uint64
	// QueueDepth is the instantaneous dispatch-queue occupancy.
	QueueDepth int
	// Workers and ResponseThreads are the pool sizes (ResponseThreads is
	// zero for leaves).
	Workers, ResponseThreads int
	// Leaves is the connected leaf count (mid-tier only).
	Leaves int
}

// encodeTierStats serializes stats for the wire.
func encodeTierStats(s TierStats) []byte {
	e := wire.NewEncoder(64)
	e.String(s.Role)
	e.Uint64(s.Served)
	e.Uint64(s.Shed)
	e.Uint64(s.Inlined)
	e.Uvarint(uint64(s.QueueDepth))
	e.Uvarint(uint64(s.Workers))
	e.Uvarint(uint64(s.ResponseThreads))
	e.Uvarint(uint64(s.Leaves))
	return e.Bytes()
}

// DecodeTierStats deserializes a StatsMethod reply.
func DecodeTierStats(b []byte) (TierStats, error) {
	d := wire.NewDecoder(b)
	s := TierStats{
		Role:    d.String(),
		Served:  d.Uint64(),
		Shed:    d.Uint64(),
		Inlined: d.Uint64(),
	}
	s.QueueDepth = int(d.Uvarint())
	s.Workers = int(d.Uvarint())
	s.ResponseThreads = int(d.Uvarint())
	s.Leaves = int(d.Uvarint())
	return s, d.Err()
}

// QueryStats fetches a tier's counters over an existing client connection.
func QueryStats(c *rpc.Client) (TierStats, error) {
	reply, err := c.Call(StatsMethod, nil)
	if err != nil {
		return TierStats{}, err
	}
	return DecodeTierStats(reply)
}

// stats snapshots the mid-tier's counters.
func (m *MidTier) stats() TierStats {
	return TierStats{
		Role:            "midtier",
		Served:          m.served.Load(),
		Shed:            m.workers.Shed(),
		Inlined:         m.inlined.Load(),
		QueueDepth:      m.workers.QueueDepth(),
		Workers:         m.workers.Workers(),
		ResponseThreads: m.responses.Workers(),
		Leaves:          len(m.leaves),
	}
}

// statsLeaf snapshots a leaf's counters.
func (l *Leaf) stats() TierStats {
	return TierStats{
		Role:       "leaf",
		Served:     l.served.Load(),
		QueueDepth: l.workers.QueueDepth(),
		Workers:    l.workers.Workers(),
	}
}
