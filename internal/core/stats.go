package core

import (
	"time"

	"musuite/internal/rpc"
	"musuite/internal/wire"
)

// StatsMethod is the reserved RPC method every framework tier answers with
// its operational counters — the introspection hook deployment tooling
// (health checks, autoscalers, the thread-pool-sizing schedulers §VII
// imagines) reads.
const StatsMethod = "core.stats"

// TierStats are one tier's operational counters.
type TierStats struct {
	// Role is "midtier" or "leaf".
	Role string
	// Served counts completed requests.
	Served uint64
	// Shed counts requests rejected by the dispatch-queue bound.
	Shed uint64
	// Inlined counts requests DispatchAuto ran in-line.
	Inlined uint64
	// QueueDepth is the instantaneous dispatch-queue occupancy.
	QueueDepth int
	// Workers and ResponseThreads are the pool sizes (ResponseThreads is
	// zero for leaves).
	Workers, ResponseThreads int
	// Leaves is the connected leaf shard count (mid-tier only).
	Leaves int
	// Replicas is the total leaf replica count across shards (≥ Leaves
	// when replica groups are configured).
	Replicas int
	// Tail-tolerance counters (mid-tier only): hedges issued, hedges
	// whose duplicate won, retries issued, and hedges/retries suppressed
	// by the retry budget.
	Hedges, HedgeWins, Retries, BudgetDenied uint64
	// HedgeDelay is the current (fixed or percentile-tracked) hedge
	// delay; zero when hedging is disarmed.
	HedgeDelay time.Duration
	// Cross-request batching counters (mid-tier only): carrier RPCs sent,
	// member calls they transported (BatchMembers / BatchCarriers is the
	// mean batch occupancy), and the flush-cause breakdown.
	BatchCarriers, BatchMembers                            uint64
	BatchFlushSize, BatchFlushDeadline, BatchFlushShutdown uint64
	// BatchDelay is the current (fixed or digest-tracked) flush delay;
	// zero when batching is disabled.
	BatchDelay time.Duration
	// Epoch is the cluster topology version (mid-tier only); it increments
	// on every add/drain/remove, so a monitor can detect a resize by
	// watching this gauge.
	Epoch uint64
	// Topology mutation counters (mid-tier only): leaf groups added,
	// gracefully drained, forcefully removed, and drains whose quiescence
	// wait exceeded its deadline.
	TopoAdds, TopoDrains, TopoRemoves, TopoDrainTimeouts uint64
	// Compute-engine counters (leaf only): candidate points scored by the
	// leaf's kernel scans and wall nanoseconds spent inside them —
	// KernelPoints/KernelNanos·1e9 is the points-scanned/s throughput that
	// says whether the leaf is compute-bound.
	KernelPoints, KernelNanos uint64
	// Admission-control counters (mid-tier only, zero with admission
	// off): requests admitted, shed at the adaptive limit, and shed
	// deadline-doomed at worker pickup.
	Admitted, ShedLimit, ShedDeadline uint64
	// AdmitLimit and AdmitInflight are the live AIMD concurrency limit
	// and the admitted requests currently in flight — the gauges an
	// autoscaler reads to tell "limited by policy" from "limited by
	// capacity".
	AdmitLimit, AdmitInflight int
	// AdmitP99 is the tracked p99 service-time estimate the deadline
	// shed compares remaining budget against.
	AdmitP99 time.Duration
}

// encodeTierStats serializes stats for the wire.
func encodeTierStats(s TierStats) []byte {
	e := wire.NewEncoder(64)
	e.String(s.Role)
	e.Uint64(s.Served)
	e.Uint64(s.Shed)
	e.Uint64(s.Inlined)
	e.Uvarint(uint64(s.QueueDepth))
	e.Uvarint(uint64(s.Workers))
	e.Uvarint(uint64(s.ResponseThreads))
	e.Uvarint(uint64(s.Leaves))
	e.Uvarint(uint64(s.Replicas))
	e.Uint64(s.Hedges)
	e.Uint64(s.HedgeWins)
	e.Uint64(s.Retries)
	e.Uint64(s.BudgetDenied)
	e.Uint64(uint64(s.HedgeDelay))
	e.Uint64(s.BatchCarriers)
	e.Uint64(s.BatchMembers)
	e.Uint64(s.BatchFlushSize)
	e.Uint64(s.BatchFlushDeadline)
	e.Uint64(s.BatchFlushShutdown)
	e.Uint64(uint64(s.BatchDelay))
	e.Uint64(s.Epoch)
	e.Uint64(s.TopoAdds)
	e.Uint64(s.TopoDrains)
	e.Uint64(s.TopoRemoves)
	e.Uint64(s.TopoDrainTimeouts)
	e.Uint64(s.KernelPoints)
	e.Uint64(s.KernelNanos)
	e.Uint64(s.Admitted)
	e.Uint64(s.ShedLimit)
	e.Uint64(s.ShedDeadline)
	e.Uvarint(uint64(s.AdmitLimit))
	e.Uvarint(uint64(s.AdmitInflight))
	e.Uint64(uint64(s.AdmitP99))
	return e.Bytes()
}

// DecodeTierStats deserializes a StatsMethod reply.
func DecodeTierStats(b []byte) (TierStats, error) {
	d := wire.NewDecoder(b)
	s := TierStats{
		Role:    d.String(),
		Served:  d.Uint64(),
		Shed:    d.Uint64(),
		Inlined: d.Uint64(),
	}
	s.QueueDepth = int(d.Uvarint())
	s.Workers = int(d.Uvarint())
	s.ResponseThreads = int(d.Uvarint())
	s.Leaves = int(d.Uvarint())
	s.Replicas = int(d.Uvarint())
	s.Hedges = d.Uint64()
	s.HedgeWins = d.Uint64()
	s.Retries = d.Uint64()
	s.BudgetDenied = d.Uint64()
	s.HedgeDelay = time.Duration(d.Uint64())
	s.BatchCarriers = d.Uint64()
	s.BatchMembers = d.Uint64()
	s.BatchFlushSize = d.Uint64()
	s.BatchFlushDeadline = d.Uint64()
	s.BatchFlushShutdown = d.Uint64()
	s.BatchDelay = time.Duration(d.Uint64())
	s.Epoch = d.Uint64()
	s.TopoAdds = d.Uint64()
	s.TopoDrains = d.Uint64()
	s.TopoRemoves = d.Uint64()
	s.TopoDrainTimeouts = d.Uint64()
	s.KernelPoints = d.Uint64()
	s.KernelNanos = d.Uint64()
	s.Admitted = d.Uint64()
	s.ShedLimit = d.Uint64()
	s.ShedDeadline = d.Uint64()
	s.AdmitLimit = int(d.Uvarint())
	s.AdmitInflight = int(d.Uvarint())
	s.AdmitP99 = time.Duration(d.Uint64())
	return s, d.Err()
}

// QueryStats fetches a tier's counters over an existing client connection.
func QueryStats(c *rpc.Client) (TierStats, error) {
	reply, err := c.Call(StatsMethod, nil)
	if err != nil {
		return TierStats{}, err
	}
	return DecodeTierStats(reply)
}

// stats snapshots the mid-tier's counters.  Leaves/Replicas sum across all
// connected edges (identical to the classic values when only the default
// edge exists); the epoch and topology-mutation gauges come from the default
// edge, whose topology the admin surface binds to.
func (m *MidTier) stats() TierStats {
	topo := m.def.topo.Stats()
	leaves, replicas := 0, 0
	m.edgeMu.Lock()
	for _, e := range m.edges {
		snap := e.topo.Current()
		leaves += snap.NumLeaves()
		replicas += snap.NumReplicas()
	}
	m.edgeMu.Unlock()
	s := TierStats{
		Role:            "midtier",
		Served:          m.served.Load(),
		Shed:            m.workers.Shed(),
		Inlined:         m.inlined.Load(),
		QueueDepth:      m.workers.QueueDepth(),
		Workers:         m.workers.Workers(),
		ResponseThreads: m.responses.Workers(),
		Leaves:          leaves,
		Replicas:        replicas,
		Hedges:          m.hedges.Load(),
		HedgeWins:       m.hedgeWins.Load(),
		Retries:         m.retries.Load(),
		BudgetDenied:    m.budgetDenied.Load(),

		BatchCarriers:      m.batchCarriers.Load(),
		BatchMembers:       m.batchMembers.Load(),
		BatchFlushSize:     m.batchFlushSize.Load(),
		BatchFlushDeadline: m.batchFlushDeadline.Load(),
		BatchFlushShutdown: m.batchFlushShutdown.Load(),

		Epoch:             topo.Epoch,
		TopoAdds:          topo.Adds,
		TopoDrains:        topo.Drains,
		TopoRemoves:       topo.Removes,
		TopoDrainTimeouts: topo.DrainTimeouts,
	}
	if m.def.policy.Tail.hedging() {
		s.HedgeDelay = m.def.hedgeDelay()
	}
	if m.def.policy.Batch.enabled() {
		s.BatchDelay = m.def.batchDelay()
	}
	if m.admit != nil {
		s.Admitted = m.admit.admitted.Load()
		s.ShedLimit = m.admit.shedLimit.Load()
		s.ShedDeadline = m.admit.shedDeadline.Load()
		s.AdmitLimit = m.admit.currentLimit()
		s.AdmitInflight = m.admit.currentInflight()
		s.AdmitP99 = m.admit.p99()
	}
	return s
}

// Stats snapshots the mid-tier's operational counters in-process — the
// same data StatsMethod serves over the wire, for collocated consumers
// like the autoscaler.
func (m *MidTier) Stats() TierStats { return m.stats() }

// statsLeaf snapshots a leaf's counters.
func (l *Leaf) stats() TierStats {
	s := TierStats{
		Role:       "leaf",
		Served:     l.served.Load(),
		QueueDepth: l.workers.QueueDepth(),
		Workers:    l.workers.Workers(),
	}
	if l.kern != nil {
		ks := l.kern.Stats()
		s.KernelPoints = ks.Points
		s.KernelNanos = ks.Nanos
	}
	return s
}
