package core

import "testing"

func TestRetryBudgetSpendsDownToZero(t *testing.T) {
	b := newRetryBudget(0.1, 5)
	for i := 0; i < 5; i++ {
		if !b.spend() {
			t.Fatalf("spend %d denied with a full bucket", i)
		}
	}
	if b.spend() {
		t.Fatal("spend allowed on an empty bucket")
	}
}

func TestRetryBudgetEarnsFractionalTokens(t *testing.T) {
	// 0.25 is exactly representable, so the arithmetic is deterministic.
	b := newRetryBudget(0.25, 5)
	for i := 0; i < 5; i++ {
		b.spend()
	}
	// 3 primaries earn 0.75 tokens — still not enough for one hedge.
	for i := 0; i < 3; i++ {
		b.earn()
	}
	if b.spend() {
		t.Fatal("spend allowed with only 0.75 tokens banked")
	}
	b.earn()
	if !b.spend() {
		t.Fatal("spend denied after earning a whole token")
	}
	if b.spend() {
		t.Fatal("second spend allowed after banking exactly one token")
	}
}

func TestRetryBudgetCapsAtBurst(t *testing.T) {
	b := newRetryBudget(0.5, 3)
	// Long idle-earning period must not bank unbounded credit.
	for i := 0; i < 1000; i++ {
		b.earn()
	}
	spent := 0
	for b.spend() {
		spent++
	}
	if spent != 3 {
		t.Fatalf("spent %d tokens after capped earning, want burst=3", spent)
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	b := newRetryBudget(0, 0)
	if b.ratio != DefaultRetryBudgetRatio || b.burst != float64(DefaultRetryBudgetBurst) {
		t.Fatalf("defaults not applied: ratio=%v burst=%v", b.ratio, b.burst)
	}
}

func TestGroupAddrs(t *testing.T) {
	groups, err := GroupAddrs([]string{"a", "b", "c"}, 1)
	if err != nil || len(groups) != 3 || groups[1][0] != "b" {
		t.Fatalf("replicas=1: groups=%v err=%v", groups, err)
	}
	groups, err = GroupAddrs([]string{"a", "b", "c", "d"}, 2)
	if err != nil || len(groups) != 2 || groups[1][0] != "c" || groups[1][1] != "d" {
		t.Fatalf("replicas=2: groups=%v err=%v", groups, err)
	}
	if _, err = GroupAddrs([]string{"a", "b", "c"}, 2); err == nil {
		t.Fatal("3 addresses into groups of 2 must error")
	}
}
