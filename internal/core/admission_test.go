package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"musuite/internal/rpc"
)

// startAdmitMidTier builds a one-leaf mid-tier with admission enabled and
// a handler that sleeps work duration per request, returning a dialed client.
func startAdmitMidTier(t *testing.T, pol AdmitPolicy, opts Options, work time.Duration) *rpc.Client {
	t.Helper()
	leaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
		return payload, nil
	}, &LeafOptions{Workers: 2})
	leafAddr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)

	opts.Admit = pol
	mt := NewMidTier(func(ctx *Ctx) {
		if work > 0 {
			time.Sleep(work)
		}
		reply, err := ctx.CallLeaf(0, "echo", ctx.Req.Payload)
		if err != nil {
			ctx.ReplyError(err)
			return
		}
		ctx.Reply(reply)
	}, &opts)
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestAdmitLimitShedsTyped drives a limit-1 mid-tier with a slow handler
// from many concurrent callers: the overflow must come back as typed
// overload errors (never plain failures), successes must still flow, and
// the stats counters must account for every outcome.
func TestAdmitLimitShedsTyped(t *testing.T) {
	c := startAdmitMidTier(t, AdmitPolicy{
		MaxInflight: 1, InitInflight: 1, MinInflight: 1,
	}, Options{Workers: 2, Dispatch: Dispatched}, 2*time.Millisecond)

	const callers = 8
	var ok, shed, other atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_, err := c.Call("q", []byte("x"))
				switch {
				case err == nil:
					ok.Add(1)
				case rpc.IsOverload(err):
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("non-typed failures: %d", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under admission")
	}
	if shed.Load() == 0 {
		t.Fatal("limit 1 with 8 callers shed nothing")
	}
	st, err := QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedLimit == 0 || st.Admitted == 0 {
		t.Fatalf("stats: admitted=%d shedLimit=%d", st.Admitted, st.ShedLimit)
	}
	if st.AdmitLimit < 1 {
		t.Fatalf("limit gauge %d below MinInflight", st.AdmitLimit)
	}
}

// TestAdmitDeadlineShed sets a deadline smaller than the handler's service
// time: once the p99 estimate exists, dispatched requests whose remaining
// budget cannot cover it are shed typed at worker pickup.
func TestAdmitDeadlineShed(t *testing.T) {
	c := startAdmitMidTier(t, AdmitPolicy{
		MaxInflight: 64, Deadline: 500 * time.Microsecond,
	}, Options{Workers: 1, Dispatch: Dispatched}, 2*time.Millisecond)

	// Concurrent bursts make queue wait exceed the 500µs budget.
	var shed atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				if _, err := c.Call("q", []byte("x")); rpc.IsOverload(err) {
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	st, err := QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedDeadline == 0 {
		t.Fatalf("no deadline sheds (typed sheds seen: %d, stats: %+v)", shed.Load(), st)
	}
}

// TestAdmitPriorityHeadroom exercises the controller directly: with the
// normal-priority limit full, high-priority requests still fit in the
// headroom, so overload sheds normal traffic first.
func TestAdmitPriorityHeadroom(t *testing.T) {
	a := newAdmitController(AdmitPolicy{
		MaxInflight: 100, InitInflight: 10, PriorityHeadroom: 0.5,
	}, nil)
	for i := 0; i < 10; i++ {
		if !a.acquire(PriorityNormal) {
			t.Fatalf("acquire %d within limit shed", i)
		}
	}
	if a.acquire(PriorityNormal) {
		t.Fatal("normal admitted past the limit")
	}
	for i := 0; i < 5; i++ {
		if !a.acquire(PriorityHigh) {
			t.Fatalf("high-priority acquire %d within headroom shed", i)
		}
	}
	if a.acquire(PriorityHigh) {
		t.Fatal("high-priority admitted past limit+headroom")
	}
	for i := 0; i < 15; i++ {
		a.cancel()
	}
	if got := a.currentInflight(); got != 0 {
		t.Fatalf("inflight %d after full release", got)
	}
}

// TestAIMDConvergence checks both directions of the control law: latencies
// riding at the floor grow the limit to MaxInflight; latencies far above
// the established floor collapse it toward MinInflight — and never below.
func TestAIMDConvergence(t *testing.T) {
	a := newAdmitController(AdmitPolicy{
		MaxInflight: 32, InitInflight: 4, MinInflight: 1, Tolerance: 2,
	}, nil)
	feed := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			if a.acquire(PriorityNormal) {
				a.release(d)
			}
		}
	}
	// Flat latency: every window's mean equals its min, so the limit
	// climbs one slot per window up to the cap.
	feed(time.Millisecond, 64*64)
	if got := a.currentLimit(); got != 32 {
		t.Fatalf("limit %d after low-latency regime, want 32", got)
	}
	// 10× the floor with tolerance 2: multiplicative decrease to the min.
	feed(10*time.Millisecond, 64*64)
	if got := a.currentLimit(); got != 1 {
		t.Fatalf("limit %d after overload regime, want 1", got)
	}
	// Recovery: back at the floor, the limit climbs again.
	feed(time.Millisecond, 64*10)
	if got := a.currentLimit(); got < 5 {
		t.Fatalf("limit %d did not recover", got)
	}
}

// TestAIMDLimitBoundsProperty feeds random latency sequences and checks
// the invariants the control loop must never violate: the limit stays in
// [MinInflight, MaxInflight] and inflight returns to zero.
func TestAIMDLimitBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		max := 1 + rng.Intn(64)
		a := newAdmitController(AdmitPolicy{
			MaxInflight:  max,
			InitInflight: 1 + rng.Intn(max),
			MinInflight:  1,
		}, nil)
		for i := 0; i < 2000; i++ {
			if a.acquire(Priority(rng.Intn(2))) {
				a.release(time.Duration(rng.Intn(10_000_000)))
			}
			lim := a.currentLimit()
			if lim < 1 || lim > max {
				return false
			}
		}
		return a.currentInflight() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitNoDeadlockAtLimitOne hammers a limit-1 controller from many
// goroutines: every admitted slot is released, so the system must keep
// making progress and end idle — the "never deadlocks at limit=1" half of
// the nightly property.
func TestAdmitNoDeadlockAtLimitOne(t *testing.T) {
	a := newAdmitController(AdmitPolicy{
		MaxInflight: 1, InitInflight: 1, MinInflight: 1,
	}, nil)
	var admitted atomic.Uint64
	var wg sync.WaitGroup
	deadline := time.Now().Add(200 * time.Millisecond)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if a.acquire(PriorityNormal) {
					admitted.Add(1)
					a.release(time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Fatal("limit-1 controller admitted nothing: deadlocked shut")
	}
	if a.currentInflight() != 0 {
		t.Fatalf("inflight %d after quiesce", a.currentInflight())
	}
	if a.currentLimit() < 1 {
		t.Fatalf("limit %d dropped below 1", a.currentLimit())
	}
}

// TestOverloadDoesNotSpendRetryBudget verifies the budget interaction: a
// leaf replying with a typed shed is not retried even with retries armed,
// while a connection-class failure in the same configuration is.
func TestOverloadDoesNotSpendRetryBudget(t *testing.T) {
	var calls atomic.Uint64
	leaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
		calls.Add(1)
		return nil, rpc.Overloadf("leaf shedding")
	}, &LeafOptions{Workers: 1})
	leafAddr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)

	mt := NewMidTier(func(ctx *Ctx) {
		reply, err := ctx.CallLeaf(0, "q", ctx.Req.Payload)
		if err != nil {
			ctx.ReplyError(err)
			return
		}
		ctx.Reply(reply)
	}, &Options{Workers: 2, Tail: TailPolicy{LeafRetries: 3, RetryBudgetRatio: 1, RetryBudgetBurst: 100}})
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	_, err = c.Call("q", []byte("x"))
	if !rpc.IsOverload(err) {
		t.Fatalf("want overload error through the fan-out, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("leaf called %d times: typed shed was retried", got)
	}
	st, qerr := QueryStats(c)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if st.Retries != 0 {
		t.Fatalf("retries=%d after overload shed", st.Retries)
	}
}
