package core

import (
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

// Adaptive cross-request batching.  Every front-end request fans out to all
// leaves, so at high QPS the mid-tier issues a stream of small leaf RPCs
// whose per-call framing, syscall, and scheduling costs dominate (the
// overheads the paper's §VI–§VII characterization measures one at a time).
// A per-leaf-replica batcher coalesces outstanding calls bound for the same
// replica into one carrier RPC, flushing on whichever comes first of
// MaxBatch members or an adaptive delay — a small fraction of the tracked
// leaf-latency digest, floored by MinDelay, so waiting for batch-mates
// never costs a meaningful share of the latency it amortizes.

// BatchPolicy configures cross-request batching of leaf RPCs.
type BatchPolicy struct {
	// MaxBatch caps the members coalesced into one carrier RPC; reaching
	// it flushes immediately.  Values ≤ 1 disable batching.
	MaxBatch int
	// Delay, when positive, fixes the flush delay instead of tracking the
	// leaf-latency digest.
	Delay time.Duration
	// MinDelay floors the digest-tracked delay (default 20µs) so noisy
	// early samples cannot collapse it to zero and defeat coalescing.
	MinDelay time.Duration
	// Percentile, in (0,1), is the leaf-latency quantile the adaptive
	// delay follows (default 0.5, the median).
	Percentile float64
	// Fraction scales the tracked quantile into the flush delay (default
	// 1/8): a batch waits at most a small slice of a typical leaf call.
	Fraction float64
}

// enabled reports whether the policy turns batching on.
func (b BatchPolicy) enabled() bool { return b.MaxBatch > 1 }

const (
	// defaultBatchMinDelay floors the digest-tracked flush delay.
	defaultBatchMinDelay = 20 * time.Microsecond
	// defaultBatchPercentile is the tracked leaf-latency quantile.
	defaultBatchPercentile = 0.5
	// defaultBatchFraction scales the quantile into the flush delay.
	defaultBatchFraction = 0.125
	// batchBootstrapDelay is used until the latency digest has samples.
	batchBootstrapDelay = 50 * time.Microsecond
)

// newBatcher wraps one replica's connection pool with a batcher driven by
// this edge's adaptive delay and the tier's telemetry.
func (e *edge) newBatcher(pool *rpc.Pool) *rpc.Batcher {
	return rpc.NewBatcher(pool, rpc.BatcherOptions{
		MaxBatch: e.policy.Batch.MaxBatch,
		Delay:    e.batchDelay,
		OnFlush:  e.mt.onBatchFlush,
	})
}

// batchDelay is the flush delay armed when a batcher's queue goes from
// empty to non-empty: the fixed Delay if configured, else the cached
// digest-tracked value, else a bootstrap constant.
func (e *edge) batchDelay() time.Duration {
	if d := e.policy.Batch.Delay; d > 0 {
		return d
	}
	if d := e.batchDelayNs.Load(); d > 0 {
		return time.Duration(d)
	}
	if d := e.policy.Batch.MinDelay; d > 0 {
		return d
	}
	return batchBootstrapDelay
}

// refreshBatchDelay recomputes the cached adaptive flush delay from the
// edge's latency digest.  Called from the same amortized refresh point as
// the hedge delay (every hedgeRefreshEvery observations), since a quantile
// scan is too costly per call.
func (e *edge) refreshBatchDelay() {
	p := e.policy.Batch
	if !p.enabled() || p.Delay > 0 {
		return
	}
	pct := p.Percentile
	if pct <= 0 || pct >= 1 {
		pct = defaultBatchPercentile
	}
	frac := p.Fraction
	if frac <= 0 {
		frac = defaultBatchFraction
	}
	min := p.MinDelay
	if min <= 0 {
		min = defaultBatchMinDelay
	}
	d := time.Duration(float64(e.leafLat.Quantile(pct)) * frac)
	if d < min {
		d = min
	}
	e.batchDelayNs.Store(int64(d))
}

// batchDelay is the default edge's flush delay, kept under its old name for
// in-package tests that assert the adaptive tracking.
func (m *MidTier) batchDelay() time.Duration { return m.def.batchDelay() }

// onBatchFlush feeds the occupancy and flush-cause counters surfaced
// through core.stats and the probe.
func (m *MidTier) onBatchFlush(items int, cause rpc.FlushCause) {
	m.batchCarriers.Add(1)
	m.batchMembers.Add(uint64(items))
	m.probe.IncBatch(telemetry.BatchCarriers)
	m.probe.AddBatch(telemetry.BatchMembers, uint64(items))
	switch cause {
	case rpc.FlushSize:
		m.batchFlushSize.Add(1)
		m.probe.IncBatch(telemetry.BatchFlushSize)
	case rpc.FlushDeadline:
		m.batchFlushDeadline.Add(1)
		m.probe.IncBatch(telemetry.BatchFlushDeadline)
	case rpc.FlushShutdown:
		m.batchFlushShutdown.Add(1)
		m.probe.IncBatch(telemetry.BatchFlushShutdown)
	}
}
