package core

import (
	"fmt"
	"sync/atomic"

	"musuite/internal/rpc"
)

// replicaGroup is one leaf shard's replica set.  Each replica is an
// independent connection pool to one leaf process serving the same shard
// data; the group routes each call to the replica with the fewest
// outstanding calls (join-the-shortest-queue), which steers traffic away
// from a replica that is slow or backed up.
type replicaGroup struct {
	pools []*rpc.Pool
	// batchers, when cross-request batching is enabled, parallels pools:
	// batchers[i] coalesces calls bound for replica i into carrier RPCs.
	batchers []*rpc.Batcher
	// rr rotates the scan start so ties (the common idle case) spread
	// round-robin instead of pinning replica 0.
	rr atomic.Uint32
}

// size reports the replica count.
func (g *replicaGroup) size() int { return len(g.pools) }

// batcher returns replica idx's batcher, or nil when batching is disabled.
func (g *replicaGroup) batcher(idx int) *rpc.Batcher {
	if idx < len(g.batchers) {
		return g.batchers[idx]
	}
	return nil
}

// pick selects a replica by least-outstanding-calls, breaking ties
// round-robin.  exclude (-1 for none) skips a replica already carrying an
// attempt of the same call, so hedges and retries land elsewhere when the
// group has anywhere else to land.  Dead replicas are skipped while a live
// one exists; if every candidate is dead, pick falls back to round-robin and
// lets the pool's transparent redial take its shot.
func (g *replicaGroup) pick(exclude int) (*rpc.Pool, int) {
	n := len(g.pools)
	if n == 1 {
		return g.pools[0], 0
	}
	start := int(g.rr.Add(1)) % n
	best, bestOut := -1, 0
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if idx == exclude {
			continue
		}
		p := g.pools[idx]
		if !p.Healthy() {
			continue
		}
		if out := p.Outstanding(); best < 0 || out < bestOut {
			best, bestOut = idx, out
		}
	}
	if best < 0 {
		best = start
		if best == exclude {
			best = (best + 1) % n
		}
	}
	return g.pools[best], best
}

// close shuts every replica down: batchers flush their queued members
// first so nothing sits unsent when the pools beneath them close.
func (g *replicaGroup) close() {
	for _, b := range g.batchers {
		b.Close()
	}
	for _, p := range g.pools {
		p.Close()
	}
}

// GroupAddrs reshapes a flat leaf address list into replica groups of
// replicas consecutive addresses — the CLI form
// `-leaves s0a,s0b,s1a,s1b -replicas 2`.  replicas ≤ 1 yields one
// single-replica group per address (the classic ConnectLeaves topology).
func GroupAddrs(addrs []string, replicas int) ([][]string, error) {
	if replicas <= 1 {
		groups := make([][]string, len(addrs))
		for i, a := range addrs {
			groups[i] = []string{a}
		}
		return groups, nil
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("core: %d leaf addresses do not divide into groups of %d replicas", len(addrs), replicas)
	}
	groups := make([][]string, 0, len(addrs)/replicas)
	for i := 0; i < len(addrs); i += replicas {
		groups = append(groups, addrs[i:i+replicas])
	}
	return groups, nil
}
