package core

import "fmt"

// GroupAddrs reshapes a flat leaf address list into replica groups of
// replicas consecutive addresses — the CLI form
// `-leaves s0a,s0b,s1a,s1b -replicas 2`.  replicas ≤ 1 yields one
// single-replica group per address (the classic ConnectLeaves topology).
// A repeated address is rejected: the same leaf process serving two shard
// slots (or two replica slots of one shard) silently halves capacity and
// breaks the replica-diversity assumption hedges and retries rely on.
func GroupAddrs(addrs []string, replicas int) ([][]string, error) {
	seen := make(map[string]struct{}, len(addrs))
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			return nil, fmt.Errorf("core: duplicate leaf address %s", a)
		}
		seen[a] = struct{}{}
	}
	if replicas <= 1 {
		groups := make([][]string, len(addrs))
		for i, a := range addrs {
			groups[i] = []string{a}
		}
		return groups, nil
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("core: %d leaf addresses do not divide into groups of %d replicas", len(addrs), replicas)
	}
	groups := make([][]string, 0, len(addrs)/replicas)
	for i := 0; i < len(addrs); i += replicas {
		groups = append(groups, addrs[i:i+replicas])
	}
	return groups, nil
}
