package core

import (
	"testing"

	"musuite/internal/rpc"
)

func TestTierStatsRoundTrip(t *testing.T) {
	in := TierStats{
		Role: "midtier", Served: 42, Shed: 3, Inlined: 7,
		QueueDepth: 2, Workers: 4, ResponseThreads: 2, Leaves: 16,
		KernelPoints: 123456, KernelNanos: 7890,
	}
	got, err := DecodeTierStats(encodeTierStats(in))
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("got %+v want %+v", got, in)
	}
	if _, err := DecodeTierStats([]byte{0xFF}); err == nil {
		t.Fatal("garbage stats accepted")
	}
}

func TestMidTierStatsEndpoint(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	addr, _ := startMidTier(t, []string{leafAddr}, nil)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 15
	for i := 0; i < n; i++ {
		if _, err := c.Call("echo1", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "midtier" {
		t.Fatalf("role=%q", st.Role)
	}
	if st.Served != n {
		t.Fatalf("served=%d want %d", st.Served, n)
	}
	if st.Leaves != 1 || st.Workers != 4 || st.ResponseThreads != 2 {
		t.Fatalf("topology: %+v", st)
	}
	// Stats requests themselves are not counted as served work.
	st2, _ := QueryStats(c)
	if st2.Served != n {
		t.Fatalf("stats query counted as served: %d", st2.Served)
	}
}

func TestLeafStatsEndpoint(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	c, err := rpc.Dial(leafAddr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Call("echo", []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "leaf" || st.Served != 5 || st.Workers != 2 {
		t.Fatalf("leaf stats: %+v", st)
	}
}

func TestStatsReflectSheds(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	gate := make(chan struct{})
	mt := NewMidTier(func(ctx *Ctx) {
		<-gate
		ctx.Reply(nil)
	}, &Options{Workers: 1, MaxQueueDepth: 1})
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan *rpc.Call, 6)
	for i := 0; i < 6; i++ {
		c.Go("q", nil, nil, done)
	}
	// Stats remain answerable while workers are saturated (served on the
	// poller, not dispatched).
	st, err := QueryStats(c)
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed == 0 {
		t.Fatalf("stats show no sheds under overload: %+v", st)
	}
	close(gate)
	for i := 0; i < 6; i++ {
		<-done
	}
}
