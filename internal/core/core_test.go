package core

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

func TestWorkerPoolExecutesAll(t *testing.T) {
	for _, mode := range []WaitMode{WaitBlocking, WaitPolling} {
		t.Run(mode.String(), func(t *testing.T) {
			p := NewWorkerPool(3, mode, nil, telemetry.OverheadActiveExe)
			defer p.Stop()
			var count atomic.Int64
			var wg sync.WaitGroup
			const n = 500
			wg.Add(n)
			for i := 0; i < n; i++ {
				if err := p.Submit(func() {
					count.Add(1)
					wg.Done()
				}); err != nil {
					t.Fatal(err)
				}
			}
			wg.Wait()
			if count.Load() != n {
				t.Fatalf("executed %d of %d", count.Load(), n)
			}
		})
	}
}

func TestWorkerPoolStopRejectsSubmit(t *testing.T) {
	p := NewWorkerPool(2, WaitBlocking, nil, telemetry.OverheadActiveExe)
	p.Stop()
	if err := p.Submit(func() {}); err != ErrPoolClosed {
		t.Fatalf("err=%v want ErrPoolClosed", err)
	}
	// Stop is idempotent.
	p.Stop()
}

func TestWorkerPoolConcurrency(t *testing.T) {
	p := NewWorkerPool(4, WaitBlocking, nil, telemetry.OverheadActiveExe)
	defer p.Stop()
	// With 4 workers, 4 tasks that each block until all have started must
	// be able to run simultaneously.
	var started sync.WaitGroup
	started.Add(4)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		p.Submit(func() {
			started.Done()
			<-release
			wg.Done()
		})
	}
	ok := make(chan struct{})
	go func() { started.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(2 * time.Second):
		t.Fatal("workers did not run concurrently")
	}
	close(release)
	wg.Wait()
}

func TestWorkerPoolTelemetry(t *testing.T) {
	probe := telemetry.NewProbe()
	p := NewWorkerPool(2, WaitBlocking, probe, telemetry.OverheadActiveExe)
	defer p.Stop()
	var wg sync.WaitGroup
	const n = 50
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	if got := probe.SyscallCount(telemetry.SysWrite); got != n {
		t.Errorf("write proxies=%d want %d", got, n)
	}
	if got := probe.SyscallCount(telemetry.SysRead); got != n {
		t.Errorf("read proxies=%d want %d", got, n)
	}
	if probe.SyscallCount(telemetry.SysClone) < 2 {
		t.Error("clone proxies < worker count")
	}
	if probe.SyscallCount(telemetry.SysFutex) == 0 {
		t.Error("no futex proxies from cond traffic")
	}
	if probe.OverheadSnapshot(telemetry.OverheadActiveExe).Count != n {
		t.Errorf("ActiveExe observations=%d want %d", probe.OverheadSnapshot(telemetry.OverheadActiveExe).Count, n)
	}
}

func TestPollingModeAvoidsFutex(t *testing.T) {
	probe := telemetry.NewProbe()
	p := NewWorkerPool(1, WaitPolling, probe, telemetry.OverheadActiveExe)
	var wg sync.WaitGroup
	const n = 20
	wg.Add(n)
	for i := 0; i < n; i++ {
		p.Submit(func() { wg.Done() })
	}
	wg.Wait()
	p.Stop()
	// Polling workers never Wait/Signal; futex count stays at (near) zero —
	// only contended mutex acquisitions could contribute.
	futex := probe.SyscallCount(telemetry.SysFutex)
	blocking := func() uint64 {
		probe2 := telemetry.NewProbe()
		p2 := NewWorkerPool(1, WaitBlocking, probe2, telemetry.OverheadActiveExe)
		defer p2.Stop()
		var wg2 sync.WaitGroup
		wg2.Add(n)
		for i := 0; i < n; i++ {
			p2.Submit(func() { wg2.Done() })
			time.Sleep(time.Millisecond) // force a park between tasks
		}
		wg2.Wait()
		return probe2.SyscallCount(telemetry.SysFutex)
	}()
	if futex >= blocking {
		t.Errorf("polling futex=%d not below blocking futex=%d", futex, blocking)
	}
}

// startLeaf runs a leaf that echoes, doubles integers, or fails on demand.
func startLeaf(t *testing.T, probe *telemetry.Probe) (string, *Leaf) {
	t.Helper()
	leaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
		switch method {
		case "echo":
			out := make([]byte, len(payload))
			copy(out, payload)
			return out, nil
		case "double":
			n, err := strconv.Atoi(string(payload))
			if err != nil {
				return nil, err
			}
			return []byte(strconv.Itoa(2 * n)), nil
		case "fail":
			return nil, errors.New("leaf failure")
		case "panic":
			panic("deliberate")
		}
		return nil, fmt.Errorf("unknown method %q", method)
	}, &LeafOptions{Workers: 2, Probe: probe})
	addr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)
	return addr, leaf
}

// startMidTier wires a mid-tier that fans "sum" requests to all leaves
// (each leaf doubles the integer; the mid-tier sums the results) and
// forwards "echo1" to shard 0 only.
func startMidTier(t *testing.T, leafAddrs []string, opts *Options) (string, *MidTier) {
	t.Helper()
	mt := NewMidTier(func(ctx *Ctx) {
		switch ctx.Req.Method {
		case "sum":
			payload := make([]byte, len(ctx.Req.Payload))
			copy(payload, ctx.Req.Payload)
			ctx.FanoutAll("double", payload, func(results []LeafResult) {
				total := 0
				for _, r := range results {
					if r.Err != nil {
						ctx.ReplyError(r.Err)
						return
					}
					n, _ := strconv.Atoi(string(r.Reply))
					total += n
				}
				ctx.Reply([]byte(strconv.Itoa(total)))
			})
		case "echo1":
			reply, err := ctx.CallLeaf(0, "echo", ctx.Req.Payload)
			if err != nil {
				ctx.ReplyError(err)
				return
			}
			ctx.Reply(reply)
		case "failall":
			ctx.FanoutAll("fail", nil, func(results []LeafResult) {
				for _, r := range results {
					if r.Err != nil {
						ctx.ReplyError(r.Err)
						return
					}
				}
				ctx.Reply([]byte("no failure?"))
			})
		case "badshard":
			ctx.Fanout([]LeafCall{{Shard: 99, Method: "echo"}}, func(results []LeafResult) {
				ctx.ReplyError(results[0].Err)
			})
		default:
			ctx.ReplyError(fmt.Errorf("unknown method %q", ctx.Req.Method))
		}
	}, opts)
	if err := mt.ConnectLeaves(leafAddrs); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	return addr, mt
}

func testTopology(t *testing.T, opts *Options) (client *rpc.Client, mt *MidTier) {
	t.Helper()
	leafAddrs := make([]string, 3)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	addr, mt := startMidTier(t, leafAddrs, opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, mt
}

func TestMidTierFanoutMerge(t *testing.T) {
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"dispatch-blocking", Options{Dispatch: Dispatched, Wait: WaitBlocking}},
		{"dispatch-polling", Options{Dispatch: Dispatched, Wait: WaitPolling}},
		{"inline-blocking", Options{Dispatch: Inline, Wait: WaitBlocking}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			opts := cfg.opts
			c, mt := testTopology(t, &opts)
			if mt.NumLeaves() != 3 {
				t.Fatalf("leaves=%d", mt.NumLeaves())
			}
			// 3 leaves double 7 → merge sums to 42.
			reply, err := c.Call("sum", []byte("7"))
			if err != nil {
				t.Fatal(err)
			}
			if string(reply) != "42" {
				t.Fatalf("reply=%q want 42", reply)
			}
		})
	}
}

func TestMidTierManyConcurrentRequests(t *testing.T) {
	c, _ := testTopology(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				n := g*100 + i
				reply, err := c.Call("sum", []byte(strconv.Itoa(n)))
				if err != nil {
					errs <- err
					return
				}
				if want := strconv.Itoa(6 * n); string(reply) != want {
					errs <- fmt.Errorf("sum(%d)=%q want %q", n, reply, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMidTierSingleLeafCall(t *testing.T) {
	c, _ := testTopology(t, nil)
	reply, err := c.Call("echo1", []byte("point-read"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reply, []byte("point-read")) {
		t.Fatalf("reply=%q", reply)
	}
}

func TestMidTierLeafErrorPropagates(t *testing.T) {
	c, _ := testTopology(t, nil)
	_, err := c.Call("failall", nil)
	if err == nil || !strings.Contains(err.Error(), "leaf failure") {
		t.Fatalf("err=%v", err)
	}
}

func TestMidTierInvalidShard(t *testing.T) {
	c, _ := testTopology(t, nil)
	_, err := c.Call("badshard", nil)
	if err == nil || !strings.Contains(err.Error(), "no such leaf shard") {
		t.Fatalf("err=%v", err)
	}
}

func TestLeafPanicIsolated(t *testing.T) {
	addr, leaf := startLeaf(t, nil)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("panic", nil); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("err=%v", err)
	}
	// The leaf survives and keeps serving.
	reply, err := c.Call("echo", []byte("alive"))
	if err != nil || string(reply) != "alive" {
		t.Fatalf("post-panic echo: %q %v", reply, err)
	}
	if leaf.Served() < 2 {
		t.Errorf("served=%d", leaf.Served())
	}
}

func TestMidTierTelemetryPipeline(t *testing.T) {
	probe := telemetry.NewProbe()
	leafAddrs := make([]string, 2)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	opts := Options{Probe: probe}
	addr, _ := startMidTier(t, leafAddrs, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 30
	for i := 0; i < n; i++ {
		if _, err := c.Call("sum", []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	// Every request: 1 worker dispatch (ActiveExe) + Block hand-off.
	if got := probe.OverheadSnapshot(telemetry.OverheadActiveExe).Count; got < n {
		t.Errorf("ActiveExe=%d want ≥%d", got, n)
	}
	if got := probe.OverheadSnapshot(telemetry.OverheadBlock).Count; got != n {
		t.Errorf("Block=%d want %d", got, n)
	}
	// Every leaf response flows through the response pool (Sched class):
	// 2 leaves × n requests.
	if got := probe.OverheadSnapshot(telemetry.OverheadSched).Count; got != 2*n {
		t.Errorf("Sched=%d want %d", got, 2*n)
	}
	// The mid-tier measures Net for each front-end response.
	if got := probe.OverheadSnapshot(telemetry.OverheadNet).Count; got < n {
		t.Errorf("Net=%d want ≥%d", got, n)
	}
	if probe.SyscallCount(telemetry.SysFutex) == 0 {
		t.Error("no futex traffic in dispatch pipeline")
	}
}

func TestConnectLeavesAfterStartRejected(t *testing.T) {
	mt := NewMidTier(func(ctx *Ctx) { ctx.Reply(nil) }, nil)
	defer mt.Close()
	if _, err := mt.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := mt.ConnectLeaves([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("ConnectLeaves after Start succeeded")
	}
}

func TestConnectLeavesDialFailure(t *testing.T) {
	mt := NewMidTier(func(ctx *Ctx) {}, nil)
	if err := mt.ConnectLeaves([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("dial to dead leaf succeeded")
	}
}

func TestFanoutEmptyCallList(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	mt := NewMidTier(func(ctx *Ctx) {
		ctx.Fanout(nil, func(results []LeafResult) {
			if len(results) != 0 {
				ctx.ReplyError(errors.New("unexpected results"))
				return
			}
			ctx.Reply([]byte("empty-ok"))
		})
	}, nil)
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)
	c, _ := rpc.Dial(addr, nil)
	defer c.Close()
	reply, err := c.Call("anything", nil)
	if err != nil || string(reply) != "empty-ok" {
		t.Fatalf("%q %v", reply, err)
	}
}

func TestMidTierCloseIdempotent(t *testing.T) {
	mt := NewMidTier(func(ctx *Ctx) {}, nil)
	mt.Close()
	mt.Close()
}

func TestAdaptiveModeExecutesAll(t *testing.T) {
	p := NewWorkerPool(2, WaitAdaptive, nil, telemetry.OverheadActiveExe)
	defer p.Stop()
	var count atomic.Int64
	var wg sync.WaitGroup
	const n = 300
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := p.Submit(func() {
			count.Add(1)
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			// Idle gaps long enough to exhaust the spin budget and
			// park, exercising both adaptive paths.
			time.Sleep(5 * time.Millisecond)
		}
	}
	wg.Wait()
	if count.Load() != n {
		t.Fatalf("executed %d of %d", count.Load(), n)
	}
}

func TestAdaptiveFewerParksThanBlocking(t *testing.T) {
	// Under a continuous task stream, adaptive workers find work within
	// the spin budget and park less than blocking workers do.
	run := func(mode WaitMode) uint64 {
		probe := telemetry.NewProbe()
		p := NewWorkerPool(1, mode, probe, telemetry.OverheadActiveExe)
		defer p.Stop()
		var wg sync.WaitGroup
		const n = 400
		wg.Add(n)
		for i := 0; i < n; i++ {
			p.Submit(func() { wg.Done() })
		}
		wg.Wait()
		return probe.ContextSwitches()
	}
	adaptive, blocking := run(WaitAdaptive), run(WaitBlocking)
	if adaptive > blocking {
		t.Fatalf("adaptive parked more than blocking: %d vs %d", adaptive, blocking)
	}
}

func TestAdaptiveStopWhileParked(t *testing.T) {
	p := NewWorkerPool(2, WaitAdaptive, nil, telemetry.OverheadActiveExe)
	// Give workers time to exhaust spin budgets and park.
	time.Sleep(20 * time.Millisecond)
	doneCh := make(chan struct{})
	go func() {
		p.Stop()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung with parked adaptive workers")
	}
}

func TestWaitModeStrings(t *testing.T) {
	if WaitBlocking.String() != "blocking" || WaitPolling.String() != "polling" || WaitAdaptive.String() != "adaptive" {
		t.Fatal("wait mode names wrong")
	}
	if Dispatched.String() != "dispatched" || Inline.String() != "inline" {
		t.Fatal("dispatch mode names wrong")
	}
}
