package core

import "sync"

// Retry-budget defaults: tail-recovery traffic (hedges plus retries) is
// bounded to DefaultRetryBudgetRatio of primary leaf traffic, with a
// DefaultRetryBudgetBurst-token allowance so an isolated slow burst can
// still be hedged from a cold bucket.
const (
	DefaultRetryBudgetRatio = 0.1
	DefaultRetryBudgetBurst = 10
)

// retryBudget is a token bucket bounding hedges and retries to a fraction
// of primary traffic: every primary leaf call earns ratio tokens, every
// hedge or retry spends one whole token, and the bucket caps at burst so
// idle periods cannot bank unbounded credit.  When the cluster degrades
// broadly — every call slow, every call eligible to hedge — the bucket
// drains and stays near empty, so recovery traffic is capped at ~ratio of
// offered load instead of doubling it into a retry storm.
type retryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64
}

// newRetryBudget builds a bucket, substituting defaults for zero values.
func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio <= 0 {
		ratio = DefaultRetryBudgetRatio
	}
	if burst <= 0 {
		burst = DefaultRetryBudgetBurst
	}
	return &retryBudget{ratio: ratio, burst: float64(burst), tokens: float64(burst)}
}

// earn credits the budget for one primary call.
func (b *retryBudget) earn() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// spend consumes one token if available, reporting whether the hedge or
// retry may proceed.
func (b *retryBudget) spend() bool {
	b.mu.Lock()
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	b.mu.Unlock()
	return ok
}
