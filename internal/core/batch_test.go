package core

import (
	"sync"
	"testing"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

// TestBatchingCoalescesFanout drives a batching mid-tier with enough
// concurrency that cross-request coalescing must occur, and checks the
// correctness invariants: every request merges once, every leaf call is
// answered, and the carrier traffic is visible in the stats.
func TestBatchingCoalescesFanout(t *testing.T) {
	addrA, leafA := startWorkLeaf(t, noDelay)
	addrB, leafB := startWorkLeaf(t, noDelay)
	probe := telemetry.NewProbe()
	addr, mt := startTailMidTier(t, [][]string{{addrA}, {addrB}}, &Options{
		Workers: 4,
		Probe:   probe,
		Batch:   BatchPolicy{MaxBatch: 8, Delay: 200 * time.Microsecond},
	}, nil)

	const goroutines, perG = 16, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := rpc.Dial(addr, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < perG; i++ {
				if _, err := c.Call("q", []byte("x")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	const total = goroutines * perG
	if served := leafA.Served() + leafB.Served(); served != 2*total {
		t.Fatalf("leaves served %d calls, want %d", served, 2*total)
	}
	st := mt.stats()
	if st.BatchMembers != 2*total {
		t.Fatalf("BatchMembers=%d, want every leaf call (%d) to pass through a batcher",
			st.BatchMembers, 2*total)
	}
	if st.BatchCarriers >= st.BatchMembers {
		t.Fatalf("carriers=%d members=%d: no coalescing happened under %d concurrent clients",
			st.BatchCarriers, st.BatchMembers, goroutines)
	}
	if st.BatchFlushSize+st.BatchFlushDeadline+st.BatchFlushShutdown != st.BatchCarriers {
		t.Fatalf("flush causes %d+%d+%d don't sum to carriers %d",
			st.BatchFlushSize, st.BatchFlushDeadline, st.BatchFlushShutdown, st.BatchCarriers)
	}
	if st.BatchDelay <= 0 {
		t.Fatalf("BatchDelay=%v, want positive while batching is enabled", st.BatchDelay)
	}
	snap := probe.Snapshot()
	if snap.Batch[telemetry.BatchCarriers] != st.BatchCarriers ||
		snap.Batch[telemetry.BatchMembers] != st.BatchMembers {
		t.Fatalf("probe batch counters %v disagree with stats (%d carriers / %d members)",
			snap.Batch, st.BatchCarriers, st.BatchMembers)
	}
}

// TestBatchDisabledByDefault checks the zero-value policy leaves the batch
// counters untouched and the stats delay zeroed.
func TestBatchDisabledByDefault(t *testing.T) {
	addrA, _ := startWorkLeaf(t, noDelay)
	addr, mt := startTailMidTier(t, [][]string{{addrA}}, &Options{Workers: 2}, nil)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Call("q", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := mt.stats()
	if st.BatchCarriers != 0 || st.BatchMembers != 0 || st.BatchDelay != 0 {
		t.Fatalf("batching disabled yet stats show %+v", st)
	}
}

// TestBatchDelayAdaptsToLeafLatency checks the digest-tracked flush delay:
// after enough slow-leaf observations it must sit at Fraction × quantile
// rather than the bootstrap constant, and the MinDelay floor must hold when
// leaves are fast.
func TestBatchDelayAdaptsToLeafLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive digest tracking")
	}
	addrSlow, _ := startWorkLeaf(t, func() time.Duration { return 2 * time.Millisecond })
	addr, mt := startTailMidTier(t, [][]string{{addrSlow}}, &Options{
		Workers: 2,
		Batch:   BatchPolicy{MaxBatch: 4, Fraction: 0.25},
	}, nil)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The cached delay refreshes every hedgeRefreshEvery leaf latency
	// observations; push well past one refresh window.
	for i := 0; i < 2*hedgeRefreshEvery; i++ {
		if _, err := c.Call("q", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got := mt.batchDelay()
	// Median leaf latency ≥ 2ms, so 0.25 × p50 ≥ 500µs — far above both
	// the bootstrap constant and the default floor.
	if got < 200*time.Microsecond {
		t.Fatalf("adaptive delay %v did not track the 2ms leaf digest", got)
	}

	// Fast leaves: the floor must hold.  Feed the digest sub-floor samples
	// directly; past a refresh window the cached delay must sit at the floor.
	addrFast, _ := startWorkLeaf(t, noDelay)
	_, mtFast := startTailMidTier(t, [][]string{{addrFast}}, &Options{
		Workers: 2,
		Batch:   BatchPolicy{MaxBatch: 4, MinDelay: 100 * time.Microsecond},
	}, nil)
	for i := 0; i < 2*hedgeRefreshEvery; i++ {
		mtFast.observeLeafLatency(time.Microsecond)
	}
	if got := mtFast.batchDelay(); got != 100*time.Microsecond {
		t.Fatalf("floored delay = %v, want the 100µs MinDelay", got)
	}
}

// TestBatchShutdownFlushDelivery checks close ordering: members still queued
// when the mid-tier closes are flushed (FlushShutdown) before the pools go
// down, so in-flight front-end requests complete rather than hang.
func TestBatchShutdownFlushDelivery(t *testing.T) {
	addrA, _ := startWorkLeaf(t, noDelay)
	probe := telemetry.NewProbe()
	mt := NewMidTier(func(ctx *Ctx) {
		ctx.FanoutAll("work", ctx.Req.Payload, func(results []LeafResult) {
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
			}
			ctx.Reply([]byte("ok"))
		})
	}, &Options{
		Workers: 2,
		Probe:   probe,
		// A flush delay far beyond the test's lifetime: only Close can
		// flush whatever sits in a queue at teardown.
		Batch: BatchPolicy{MaxBatch: 64, Delay: time.Hour},
	})
	if err := mt.ConnectLeafGroups([][]string{{addrA}}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan *rpc.Call, 4)
	for i := 0; i < 4; i++ {
		c.Go("q", []byte("x"), nil, done)
	}
	// Give the fan-out time to enqueue the leaf calls into the batcher,
	// then close: the shutdown flush must deliver them.
	time.Sleep(50 * time.Millisecond)
	go mt.Close()
	for i := 0; i < 4; i++ {
		select {
		case <-done:
			// Completed — either with the merged reply (shutdown flush
			// delivered the leaf call) or a close-time error; hanging
			// forever is the failure mode this test rejects.
		case <-time.After(5 * time.Second):
			t.Fatal("request hung across close: queued batch members were dropped, not flushed")
		}
	}
	if got := mt.batchFlushShutdown.Load(); got == 0 {
		t.Fatal("no shutdown flush recorded despite queued members at close")
	}
}
