package core

import (
	"sync/atomic"
	"time"
)

// rateMeter estimates the recent request arrival rate with epoch counters:
// arrivals are counted into the current fixed-width epoch, and the previous
// epoch's count provides the rate estimate.  Lock-free and O(1) per event,
// cheap enough for the network poller's hot path.
type rateMeter struct {
	epoch time.Duration
	// state packs the epoch index (high 32 bits) and count (low 32).
	state atomic.Uint64
	// prevCount is the completed previous epoch's arrival count.
	prevCount atomic.Uint64
	start     time.Time
}

// newRateMeter creates a meter with the given epoch width.
func newRateMeter(epoch time.Duration) *rateMeter {
	if epoch <= 0 {
		epoch = 100 * time.Millisecond
	}
	return &rateMeter{epoch: epoch, start: time.Now()}
}

// tick records one arrival and returns the estimated rate in events/sec
// based on the previous complete epoch.
func (m *rateMeter) tick() float64 {
	nowEpoch := uint64(time.Since(m.start) / m.epoch)
	for {
		old := m.state.Load()
		oldEpoch, oldCount := old>>32, old&0xFFFFFFFF
		if nowEpoch == oldEpoch {
			if m.state.CompareAndSwap(old, old+1) {
				break
			}
			continue
		}
		// Epoch rolled over: publish the finished epoch's count.  If
		// more than one epoch elapsed (idle gap), the rate is zero.
		newState := nowEpoch<<32 | 1
		if m.state.CompareAndSwap(old, newState) {
			if nowEpoch == oldEpoch+1 {
				m.prevCount.Store(oldCount)
			} else {
				m.prevCount.Store(0)
			}
			break
		}
	}
	return float64(m.prevCount.Load()) / m.epoch.Seconds()
}

// rate returns the current estimate without recording an arrival.
func (m *rateMeter) rate() float64 {
	return float64(m.prevCount.Load()) / m.epoch.Seconds()
}
