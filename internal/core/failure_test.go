package core

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"musuite/internal/rpc"
)

// TestFanoutCompletesWhenLeafDiesMidFlight kills a leaf while requests are
// in flight; every outstanding front-end request must complete (with an
// error), never hang.
func TestFanoutCompletesWhenLeafDiesMidFlight(t *testing.T) {
	leafAddrs := make([]string, 3)
	leaves := make([]*Leaf, 3)
	for i := range leafAddrs {
		// Leaves slow enough that requests are in flight when we kill.
		leaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
			time.Sleep(10 * time.Millisecond)
			return payload, nil
		}, &LeafOptions{Workers: 2})
		addr, err := leaf.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(leaf.Close)
		leafAddrs[i] = addr
		leaves[i] = leaf
	}

	mt := NewMidTier(func(ctx *Ctx) {
		payload := make([]byte, len(ctx.Req.Payload))
		copy(payload, ctx.Req.Payload)
		ctx.FanoutAll("echo", payload, func(results []LeafResult) {
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
			}
			ctx.Reply([]byte("ok"))
		})
	}, nil)
	if err := mt.ConnectLeaves(leafAddrs); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Launch a burst, kill a leaf mid-burst, and require every call to
	// complete within the timeout.
	const n = 30
	done := make(chan *rpc.Call, n)
	for i := 0; i < n; i++ {
		c.Go("q", []byte(strconv.Itoa(i)), nil, done)
		if i == 10 {
			leaves[1].Close()
		}
	}
	deadline := time.After(30 * time.Second)
	completed, failed := 0, 0
	for i := 0; i < n; i++ {
		select {
		case call := <-done:
			if call.Err != nil {
				failed++
			} else {
				completed++
			}
		case <-deadline:
			t.Fatalf("hung: %d of %d completed (%d failed)", completed+failed, n, failed)
		}
	}
	if failed == 0 {
		t.Log("note: no request observed the leaf failure (timing); completion is the property under test")
	}
}

// TestMidTierCloseWithInFlightRequests closes the mid-tier under load;
// clients must see errors, not hangs, and Close must return.
func TestMidTierCloseWithInFlightRequests(t *testing.T) {
	leafAddr, _ := startLeaf(t, nil)
	slowLeaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return payload, nil
	}, nil)
	slowAddr, err := slowLeaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slowLeaf.Close)

	mt := NewMidTier(func(ctx *Ctx) {
		ctx.FanoutAll("echo", nil, func(results []LeafResult) {
			ctx.Reply(nil)
		})
	}, nil)
	if err := mt.ConnectLeaves([]string{leafAddr, slowAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan *rpc.Call, 16)
	for i := 0; i < 16; i++ {
		c.Go("q", nil, nil, done)
	}
	closed := make(chan struct{})
	go func() {
		mt.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("mid-tier Close hung with in-flight requests")
	}
	// All calls resolve one way or the other.
	drained := 0
	timeout := time.After(10 * time.Second)
	for drained < 16 {
		select {
		case <-done:
			drained++
		case <-timeout:
			t.Fatalf("only %d of 16 calls resolved after Close", drained)
		}
	}
}

// TestConcurrentFanoutsShareResponseThreads floods the mid-tier so multiple
// fan-outs are simultaneously pending in the response pool, checking the
// count-down merge never cross-wires results between requests.
func TestConcurrentFanoutsShareResponseThreads(t *testing.T) {
	leafAddrs := make([]string, 4)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	// Single response thread forces serialization across fan-outs.
	opts := Options{Workers: 4, ResponseThreads: 1}
	addr, _ := startMidTier(t, leafAddrs, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				n := g*1000 + i
				reply, err := c.Call("sum", []byte(strconv.Itoa(n)))
				if err != nil {
					errs <- err
					return
				}
				if want := strconv.Itoa(8 * n); string(reply) != want {
					errs <- &crossWireError{got: string(reply), want: want}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type crossWireError struct{ got, want string }

func (e *crossWireError) Error() string {
	return "cross-wired fanout: got " + e.got + " want " + e.want
}
