package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"musuite/internal/rpc"
)

// blackholeLeaf accepts requests and never replies.
func blackholeLeaf(t *testing.T) string {
	t.Helper()
	srv := rpc.NewServer(func(req *rpc.Request) {
		// Swallow the request forever.
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

// TestFanoutTimeoutUnwedgesHungLeaf: with one responsive and one silent
// leaf, a configured FanoutTimeout must complete the request with the
// timeout error instead of hanging forever.
func TestFanoutTimeoutUnwedgesHungLeaf(t *testing.T) {
	goodAddr, _ := startLeaf(t, nil)
	deadAddr := blackholeLeaf(t)

	mt := NewMidTier(func(ctx *Ctx) {
		ctx.FanoutAll("echo", nil, func(results []LeafResult) {
			for _, r := range results {
				if r.Err != nil {
					ctx.ReplyError(r.Err)
					return
				}
			}
			ctx.Reply([]byte("all-ok"))
		})
	}, &Options{FanoutTimeout: 150 * time.Millisecond})
	if err := mt.ConnectLeaves([]string{goodAddr, deadAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.CallTimeout("q", nil, 10*time.Second)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("request against a hung leaf succeeded")
	}
	if !strings.Contains(err.Error(), ErrFanoutTimeout.Error()) {
		t.Fatalf("err=%v want fan-out timeout", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed out after %v — FanoutTimeout not applied", elapsed)
	}
}

// TestFanoutTimeoutDoesNotAffectFastLeaves: responsive deployments behave
// identically with a generous timeout armed.
func TestFanoutTimeoutDoesNotAffectFastLeaves(t *testing.T) {
	leafAddrs := make([]string, 2)
	for i := range leafAddrs {
		leafAddrs[i], _ = startLeaf(t, nil)
	}
	opts := Options{FanoutTimeout: 5 * time.Second}
	addr, _ := startMidTier(t, leafAddrs, &opts)
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 30; i++ {
		reply, err := c.Call("sum", []byte("2"))
		if err != nil || string(reply) != "8" {
			t.Fatalf("call %d: %q %v", i, reply, err)
		}
	}
}

// TestFanoutTimeoutRaceWithLateResponse: a leaf that responds just around
// the deadline must not double-complete a slot (exactly-once delivery).
func TestFanoutTimeoutRaceWithLateResponse(t *testing.T) {
	// Leaf whose latency straddles the timeout.
	leaf := NewLeaf(func(method string, payload []byte) ([]byte, error) {
		time.Sleep(20 * time.Millisecond)
		return payload, nil
	}, nil)
	leafAddr, err := leaf.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(leaf.Close)

	mt := NewMidTier(func(ctx *Ctx) {
		ctx.FanoutAll("echo", nil, func(results []LeafResult) {
			if results[0].Err != nil {
				ctx.ReplyError(results[0].Err)
				return
			}
			ctx.Reply(nil)
		})
	}, &Options{FanoutTimeout: 20 * time.Millisecond})
	if err := mt.ConnectLeaves([]string{leafAddr}); err != nil {
		t.Fatal(err)
	}
	addr, err := mt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mt.Close)

	c, err := rpc.Dial(addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Every call resolves exactly once, win or lose the race.
	for i := 0; i < 40; i++ {
		_, err := c.CallTimeout("q", nil, 10*time.Second)
		if err != nil && !strings.Contains(err.Error(), ErrFanoutTimeout.Error()) {
			t.Fatalf("call %d: unexpected error %v", i, err)
		}
	}
}

func TestErrFanoutTimeoutSentinel(t *testing.T) {
	if !errors.Is(ErrFanoutTimeout, ErrFanoutTimeout) {
		t.Fatal("sentinel identity broken")
	}
}
