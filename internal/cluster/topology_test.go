package cluster

import (
	"errors"
	"strings"
	"testing"
	"time"

	"musuite/internal/rpc"
)

// startLeaf starts one echo leaf server for topology tests.
func startLeaf(t *testing.T) (string, func()) {
	t.Helper()
	srv := rpc.NewServer(func(req *rpc.Request) {
		req.Reply(req.Payload)
	}, nil)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("starting leaf: %v", err)
	}
	return addr, func() { srv.Close() }
}

// startLeaves starts n echo leaves and registers their cleanup.
func startLeaves(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addr, stop := startLeaf(t)
		t.Cleanup(stop)
		addrs[i] = addr
	}
	return addrs
}

func testConfig() Config {
	return Config{
		Dial: func(addr string) (*rpc.Pool, error) {
			return rpc.DialPool(addr, 1, nil)
		},
	}
}

func TestBootstrapPublishesEpochOne(t *testing.T) {
	addrs := startLeaves(t, 3)
	topo := New(testConfig())
	defer topo.Close()

	if got := topo.Current().Epoch(); got != 0 {
		t.Fatalf("pre-bootstrap epoch = %d, want 0", got)
	}
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1], addrs[2]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	s := topo.Current()
	if s.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", s.Epoch())
	}
	if s.NumLeaves() != 2 {
		t.Errorf("NumLeaves = %d, want 2", s.NumLeaves())
	}
	if s.NumReplicas() != 3 {
		t.Errorf("NumReplicas = %d, want 3", s.NumReplicas())
	}
	v := topo.View()
	if len(v.Groups) != 2 || v.Groups[1].State != "active" {
		t.Errorf("View = %+v, want 2 active groups", v)
	}
	if v.Router != "modulo" {
		t.Errorf("View.Router = %q, want modulo (default)", v.Router)
	}
}

func TestBootstrapRejectsEmptyGroup(t *testing.T) {
	topo := New(testConfig())
	defer topo.Close()
	err := topo.Bootstrap([][]string{{}})
	if err == nil || !strings.Contains(err.Error(), "empty leaf replica group") {
		t.Fatalf("Bootstrap(empty group) = %v, want empty-group error", err)
	}
}

func TestBootstrapRejectsDuplicateAddress(t *testing.T) {
	addrs := startLeaves(t, 1)
	topo := New(testConfig())
	defer topo.Close()
	err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[0]}})
	if err == nil || !strings.Contains(err.Error(), "duplicate leaf address") {
		t.Fatalf("Bootstrap(dup) = %v, want duplicate-address error", err)
	}
}

func TestAddGroupAppendsHighestShard(t *testing.T) {
	addrs := startLeaves(t, 3)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	shard, err := topo.AddGroup([]string{addrs[2]})
	if err != nil {
		t.Fatalf("AddGroup: %v", err)
	}
	if shard != 2 {
		t.Errorf("AddGroup shard = %d, want 2", shard)
	}
	s := topo.Current()
	if s.NumLeaves() != 3 || s.Epoch() != 2 {
		t.Errorf("after add: leaves=%d epoch=%d, want 3/2", s.NumLeaves(), s.Epoch())
	}
	if st := topo.Stats(); st.Adds != 1 || st.Epoch != 2 {
		t.Errorf("Stats = %+v, want Adds=1 Epoch=2", st)
	}

	// The same address cannot serve two shards.
	if _, err := topo.AddGroup([]string{addrs[2]}); err == nil ||
		!strings.Contains(err.Error(), "duplicate leaf address") {
		t.Errorf("AddGroup(dup) = %v, want duplicate-address error", err)
	}
	if _, err := topo.AddGroup(nil); err == nil {
		t.Errorf("AddGroup(empty) = nil error, want empty-group error")
	}
}

func TestDrainGroupShiftsShardsDown(t *testing.T) {
	addrs := startLeaves(t, 3)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1]}, {addrs[2]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	if err := topo.DrainGroup(1, time.Second); err != nil {
		t.Fatalf("DrainGroup: %v", err)
	}
	s := topo.Current()
	if s.NumLeaves() != 2 || s.Epoch() != 2 {
		t.Errorf("after drain: leaves=%d epoch=%d, want 2/2", s.NumLeaves(), s.Epoch())
	}
	// The surviving shards shifted: shard 1 now serves what was shard 2.
	if got := s.Group(1).Addrs()[0]; got != addrs[2] {
		t.Errorf("shard 1 addr = %s, want %s (shifted down)", got, addrs[2])
	}
	if st := topo.Stats(); st.Drains != 1 || st.DrainTimeouts != 0 {
		t.Errorf("Stats = %+v, want Drains=1 DrainTimeouts=0", st)
	}
}

func TestDrainGroupTimesOutUnderPinnedReader(t *testing.T) {
	addrs := startLeaves(t, 2)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	// A request still holds the pre-drain snapshot; the drain cannot
	// quiesce and must report a deadline overrun.
	pinned := topo.Acquire()
	err := topo.DrainGroup(1, 20*time.Millisecond)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("DrainGroup under pin = %v, want ErrDrainTimeout", err)
	}
	if st := topo.Stats(); st.DrainTimeouts != 1 {
		t.Errorf("Stats.DrainTimeouts = %d, want 1", st.DrainTimeouts)
	}
	// The topology stayed consistent despite the overrun.
	if got := topo.Current().NumLeaves(); got != 1 {
		t.Errorf("NumLeaves after timed-out drain = %d, want 1", got)
	}
	pinned.Release()
}

func TestRemoveGroupRefusesLastAndBadShard(t *testing.T) {
	addrs := startLeaves(t, 2)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	if err := topo.RemoveGroup(5); err == nil || !strings.Contains(err.Error(), "no such leaf shard") {
		t.Errorf("RemoveGroup(5) = %v, want no-such-shard error", err)
	}
	if err := topo.RemoveGroup(0); err != nil {
		t.Fatalf("RemoveGroup(0): %v", err)
	}
	if err := topo.RemoveGroup(0); err == nil || !strings.Contains(err.Error(), "last leaf group") {
		t.Errorf("RemoveGroup(last) = %v, want last-group refusal", err)
	}
	if st := topo.Stats(); st.Removes != 1 {
		t.Errorf("Stats.Removes = %d, want 1", st.Removes)
	}
}

func TestPinnedSnapshotIsImmutableAcrossMutations(t *testing.T) {
	addrs := startLeaves(t, 3)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	s := topo.Acquire()
	defer s.Release()
	if _, err := topo.AddGroup([]string{addrs[2]}); err != nil {
		t.Fatalf("AddGroup: %v", err)
	}
	// The pinned snapshot still describes the world at pin time.
	if s.NumLeaves() != 2 || s.Epoch() != 1 {
		t.Errorf("pinned snapshot: leaves=%d epoch=%d, want 2/1", s.NumLeaves(), s.Epoch())
	}
	if cur := topo.Current(); cur.NumLeaves() != 3 || cur.Epoch() != 2 {
		t.Errorf("current snapshot: leaves=%d epoch=%d, want 3/2", cur.NumLeaves(), cur.Epoch())
	}
}

func TestTryPinRefusesQuiescedSnapshot(t *testing.T) {
	addrs := startLeaves(t, 1)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	s := topo.Acquire()
	if !s.TryPin() {
		t.Fatal("TryPin on a pinned snapshot = false, want true")
	}
	s.Release()
	s.Release()
	if s.TryPin() {
		t.Fatal("TryPin on a zero-pin snapshot = true, want false")
	}
}

func TestMutationsAfterCloseFail(t *testing.T) {
	addrs := startLeaves(t, 2)
	topo := New(testConfig())
	if err := topo.Bootstrap([][]string{{addrs[0]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	topo.Close()

	if _, err := topo.AddGroup([]string{addrs[1]}); !errors.Is(err, ErrClosed) {
		t.Errorf("AddGroup after Close = %v, want ErrClosed", err)
	}
	if err := topo.Bootstrap([][]string{{addrs[1]}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Bootstrap after Close = %v, want ErrClosed", err)
	}
	topo.Close() // idempotent
}
