// Package cluster owns the mutable leaf topology of a mid-tier: which leaf
// replica groups exist, how keys route onto them, and how groups enter and
// leave service while requests are in flight.
//
// The design is RCU-style: the entire topology — leaf groups, replica sets,
// and the routing strategy — lives in an immutable epoch-versioned Snapshot
// published through one atomic pointer.  The request hot path acquires the
// current snapshot with two atomic operations and no allocation, reads it
// for the whole request, and releases it; mutations (add, drain, remove)
// build a new snapshot under a mutex and swap it in, so readers never take
// a lock and never observe a half-updated topology.
//
// Pins make graceful drain possible: a snapshot counts its active readers,
// so once a group has been dropped from the published snapshot the drainer
// merely waits for every older snapshot's pin count to reach zero — at that
// point no request can issue another call to the group and nothing of its
// traffic sits in a batcher queue — then flushes the group's batchers,
// waits out the calls still on the wire, and closes its pools.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/telemetry"
)

// DefaultDrainDeadline bounds a DrainGroup wait when the caller passes no
// deadline.
const DefaultDrainDeadline = 30 * time.Second

// ErrClosed reports a topology mutation after Close.
var ErrClosed = errors.New("cluster: topology closed")

// ErrDrainTimeout reports a drain whose quiescence wait exceeded its
// deadline; the group was closed anyway, so calls still in flight against
// it fail with connection errors.
var ErrDrainTimeout = errors.New("cluster: drain deadline exceeded")

// Config parameterizes a Topology.
type Config struct {
	// Dial opens the connection pool for one leaf address.  Required.
	Dial func(addr string) (*rpc.Pool, error)
	// NewBatcher, when set, wraps every replica pool with a cross-request
	// batcher at dial time (nil disables batching).
	NewBatcher func(pool *rpc.Pool) *rpc.Batcher
	// Router is the shard placement strategy (default Modulo).
	Router Router
	// Probe receives topology-change telemetry; nil disables it.
	Probe *telemetry.Probe
}

// Snapshot is one immutable epoch of the topology.  Everything a request
// needs to route — the group list and the strategy — is read from the one
// snapshot it pinned at arrival, so a request can never see the leaf count
// change mid-flight.
type Snapshot struct {
	epoch  uint64
	groups []*Group
	router Router
	// pins counts the requests (and late attempt issuers) still reading
	// this snapshot; a drain waits for retired snapshots to reach zero.
	pins atomic.Int64
}

// Epoch is the snapshot's version; it increments on every publish.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumLeaves reports the leaf shard count.
func (s *Snapshot) NumLeaves() int { return len(s.groups) }

// NumReplicas reports the total leaf replica count across all shards.
func (s *Snapshot) NumReplicas() int {
	n := 0
	for _, g := range s.groups {
		n += g.Size()
	}
	return n
}

// Group returns shard's replica group; the caller must bounds-check shard
// against NumLeaves.
func (s *Snapshot) Group(shard int) *Group { return s.groups[shard] }

// Router is the snapshot's placement strategy.
func (s *Snapshot) Router() Router { return s.router }

// Shard places a key hash onto one of the snapshot's shards.
func (s *Snapshot) Shard(hash uint64) int { return s.router.Shard(hash, len(s.groups)) }

// TryPin takes an additional pin only while the snapshot is already pinned
// by someone.  Late attempt issuers (a hedge timer, a retry racing a
// fan-out expiry) use it: if their request still holds its pin the TryPin
// succeeds and the groups are guaranteed live for the duration; if it
// returns false the request has already been answered, so there is nothing
// worth issuing — and the group may be mid-drain with its pools closing.
func (s *Snapshot) TryPin() bool {
	for {
		p := s.pins.Load()
		if p <= 0 {
			return false
		}
		if s.pins.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// Release drops one pin.
func (s *Snapshot) Release() { s.pins.Add(-1) }

// Topology is the mutable owner of the snapshot chain.  Reads are lock-free
// (Acquire/Current); mutations serialize on an internal mutex but never
// hold it while waiting for quiescence, so a slow drain doesn't block a
// concurrent add.
type Topology struct {
	cfg Config
	cur atomic.Pointer[Snapshot]

	mu sync.Mutex
	// retired holds published-out snapshots whose pins have not yet been
	// observed at zero; drains wait for this list to empty.
	retired []*Snapshot
	closed  bool

	adds, drains, removes, drainTimeouts atomic.Uint64
}

// New creates an empty topology (epoch 0, no leaves).  Bootstrap publishes
// the first serving snapshot.
func New(cfg Config) *Topology {
	if cfg.Router == nil {
		cfg.Router = Modulo{}
	}
	t := &Topology{cfg: cfg}
	t.cur.Store(&Snapshot{router: cfg.Router})
	return t
}

// Acquire pins and returns the current snapshot.  The acquire-then-verify
// loop closes the load/pin race: a snapshot retired between the load and
// the pin is released and the load retried, so a pinned snapshot was
// provably current at pin time and a drainer that saw zero pins on it can
// trust no reader holds it.
func (t *Topology) Acquire() *Snapshot {
	for {
		s := t.cur.Load()
		s.pins.Add(1)
		if t.cur.Load() == s {
			return s
		}
		s.pins.Add(-1)
	}
}

// Current returns the current snapshot without pinning — a point read for
// gauges and logs.  Callers that issue calls against the snapshot's groups
// must use Acquire instead.
func (t *Topology) Current() *Snapshot { return t.cur.Load() }

// dialGroup dials one replica group, closing partial work on failure.
func (t *Topology) dialGroup(addrs []string) (*Group, error) {
	g := &Group{addrs: append([]string(nil), addrs...)}
	for _, addr := range addrs {
		pool, err := t.cfg.Dial(addr)
		if err != nil {
			g.Close()
			return nil, fmt.Errorf("cluster: dialing leaf %s: %w", addr, err)
		}
		g.pools = append(g.pools, pool)
		if t.cfg.NewBatcher != nil {
			g.batchers = append(g.batchers, t.cfg.NewBatcher(pool))
		}
	}
	return g, nil
}

// dupAddr reports the first address in addrs already served by groups (or
// repeated within addrs itself); "" when none.
func dupAddr(groups []*Group, addrs []string) string {
	seen := make(map[string]struct{}, len(addrs))
	for _, g := range groups {
		for _, a := range g.addrs {
			seen[a] = struct{}{}
		}
	}
	for _, a := range addrs {
		if _, dup := seen[a]; dup {
			return a
		}
		seen[a] = struct{}{}
	}
	return ""
}

// publishLocked swaps a new snapshot in and retires the old one.  Caller
// holds t.mu.
func (t *Topology) publishLocked(groups []*Group) *Snapshot {
	old := t.cur.Load()
	s := &Snapshot{epoch: old.epoch + 1, groups: groups, router: old.router}
	t.cur.Store(s)
	t.retired = append(t.retired, old)
	t.sweepRetiredLocked()
	return s
}

// sweepRetiredLocked drops retired snapshots whose pins reached zero.  A
// zero-pin retired snapshot can never be re-pinned: Acquire's verify loop
// rejects it and TryPin refuses a zero count.
func (t *Topology) sweepRetiredLocked() {
	live := t.retired[:0]
	for _, s := range t.retired {
		if s.pins.Load() != 0 {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(t.retired); i++ {
		t.retired[i] = nil
	}
	t.retired = live
}

// retiredQuiesced sweeps and reports whether every retired snapshot's
// readers have finished.
func (t *Topology) retiredQuiesced() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sweepRetiredLocked()
	return len(t.retired) == 0
}

// awaitRetired polls for retired-snapshot quiescence until limit.
func (t *Topology) awaitRetired(limit time.Time) bool {
	for d := 50 * time.Microsecond; ; {
		if t.retiredQuiesced() {
			return true
		}
		if !time.Now().Before(limit) {
			return false
		}
		time.Sleep(d)
		if d < 2*time.Millisecond {
			d *= 2
		}
	}
}

// Bootstrap dials every leaf shard's replica set and publishes the first
// serving snapshot: groups[i] lists the addresses of the replicas serving
// shard i.  On any error every pool dialed so far is closed.
func (t *Topology) Bootstrap(groups [][]string) error {
	gs := make([]*Group, 0, len(groups))
	fail := func(err error) error {
		for _, g := range gs {
			g.Close()
		}
		return err
	}
	var flat []string
	for _, addrs := range groups {
		if len(addrs) == 0 {
			return fail(errors.New("cluster: empty leaf replica group"))
		}
		flat = append(flat, addrs...)
	}
	if dup := dupAddr(nil, flat); dup != "" {
		return fail(fmt.Errorf("cluster: duplicate leaf address %s", dup))
	}
	for _, addrs := range groups {
		g, err := t.dialGroup(addrs)
		if err != nil {
			return fail(err)
		}
		gs = append(gs, g)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fail(ErrClosed)
	}
	t.publishLocked(gs)
	return nil
}

// AddGroup dials a new leaf replica group and places it in service as the
// highest shard index, which it returns.  The group is fully connected
// before it is published, so the first request routed to it finds live
// pools.
func (t *Topology) AddGroup(addrs []string) (int, error) {
	if len(addrs) == 0 {
		return 0, errors.New("cluster: empty leaf replica group")
	}
	g, err := t.dialGroup(addrs)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		g.Close()
		return 0, ErrClosed
	}
	cur := t.cur.Load()
	if dup := dupAddr(cur.groups, addrs); dup != "" {
		t.mu.Unlock()
		g.Close()
		return 0, fmt.Errorf("cluster: duplicate leaf address %s", dup)
	}
	groups := make([]*Group, 0, len(cur.groups)+1)
	groups = append(groups, cur.groups...)
	groups = append(groups, g)
	s := t.publishLocked(groups)
	t.mu.Unlock()
	t.adds.Add(1)
	t.cfg.Probe.IncTopo(telemetry.TopoAdd)
	return s.NumLeaves() - 1, nil
}

// removeLocked unpublishes shard's group, marking it with the given state,
// and returns it.  Later shards shift down one index.
func (t *Topology) removeLocked(shard int, to GroupState) (*Group, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	cur := t.cur.Load()
	if shard < 0 || shard >= len(cur.groups) {
		return nil, fmt.Errorf("cluster: no such leaf shard %d", shard)
	}
	if len(cur.groups) == 1 {
		return nil, errors.New("cluster: cannot remove the last leaf group")
	}
	g := cur.groups[shard]
	g.state.Store(int32(to))
	rest := make([]*Group, 0, len(cur.groups)-1)
	rest = append(rest, cur.groups[:shard]...)
	rest = append(rest, cur.groups[shard+1:]...)
	t.publishLocked(rest)
	return g, nil
}

// DrainGroup gracefully removes shard's leaf group: publish a snapshot
// without it (new requests route around it), wait until every request
// pinned to an older snapshot has finished — at which point nothing can
// issue another call to the group and nothing of its traffic sits queued in
// a batcher — then flush its batchers, wait for the calls still on the wire,
// and close the pools.  Shards above shard shift down one index.
//
// deadline bounds the whole wait (≤ 0 selects DefaultDrainDeadline).  On
// expiry the group is closed anyway and the error wraps ErrDrainTimeout:
// the topology stays consistent, but calls still in flight against the
// group fail with connection errors.
func (t *Topology) DrainGroup(shard int, deadline time.Duration) error {
	g, err := t.removeLocked(shard, GroupDraining)
	if err != nil {
		return err
	}
	t.drains.Add(1)
	t.cfg.Probe.IncTopo(telemetry.TopoDrain)
	if deadline <= 0 {
		deadline = DefaultDrainDeadline
	}
	limit := time.Now().Add(deadline)
	switch {
	case !t.awaitRetired(limit):
		err = fmt.Errorf("cluster: draining shard %d: %w (readers still pinned to old snapshots)", shard, ErrDrainTimeout)
	default:
		// No pinned reader remains, so no new call can reach the group;
		// flush anything a batcher still holds and let the wire empty.
		g.closeBatchers()
		if !g.awaitIdle(limit) {
			err = fmt.Errorf("cluster: draining shard %d: %w (%d calls still in flight)", shard, ErrDrainTimeout, g.Outstanding())
		}
	}
	g.Close()
	if err != nil {
		t.drainTimeouts.Add(1)
		t.cfg.Probe.IncTopo(telemetry.TopoDrainTimeout)
	}
	return err
}

// RemoveGroup forcefully removes shard's leaf group, closing its pools
// immediately.  Calls in flight against the group fail with connection
// errors (the tail-tolerant retry machinery may recover them on another
// shard's replica only for replicated data).  Prefer DrainGroup; this is
// the operator's escape hatch for a wedged group a drain cannot quiesce.
func (t *Topology) RemoveGroup(shard int) error {
	g, err := t.removeLocked(shard, GroupClosed)
	if err != nil {
		return err
	}
	t.removes.Add(1)
	t.cfg.Probe.IncTopo(telemetry.TopoRemove)
	g.Close()
	return nil
}

// Stats are the topology's lifetime mutation counters and current epoch.
type Stats struct {
	// Epoch is the current snapshot's version.
	Epoch uint64
	// Adds, Drains, Removes count completed mutations; DrainTimeouts the
	// drains whose quiescence wait exceeded its deadline.
	Adds, Drains, Removes, DrainTimeouts uint64
}

// Stats snapshots the mutation counters.
func (t *Topology) Stats() Stats {
	return Stats{
		Epoch:         t.cur.Load().epoch,
		Adds:          t.adds.Load(),
		Drains:        t.drains.Load(),
		Removes:       t.removes.Load(),
		DrainTimeouts: t.drainTimeouts.Load(),
	}
}

// Close shuts down every group in the current snapshot and rejects further
// mutations.  Groups mid-drain are closed by their drainer.
func (t *Topology) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	cur := t.cur.Load()
	t.mu.Unlock()
	for _, g := range cur.groups {
		g.Close()
	}
}

// GroupView describes one leaf group for operators.
type GroupView struct {
	// Shard is the group's index in the current snapshot.
	Shard int
	// Addrs lists the replica addresses.
	Addrs []string
	// State is the drain state machine position ("active", "draining",
	// "closed").
	State string
	// Outstanding is the group's in-flight call count.
	Outstanding int
}

// View describes the current topology for operators.
type View struct {
	// Epoch is the current snapshot's version.
	Epoch uint64
	// Router names the placement strategy.
	Router string
	// Groups lists every serving leaf group in shard order.
	Groups []GroupView
}

// View captures the current topology for the admin surface.
func (t *Topology) View() View {
	s := t.cur.Load()
	v := View{Epoch: s.epoch, Router: s.router.Name()}
	for i, g := range s.groups {
		v.Groups = append(v.Groups, GroupView{
			Shard:       i,
			Addrs:       append([]string(nil), g.addrs...),
			State:       g.State().String(),
			Outstanding: g.Outstanding(),
		})
	}
	return v
}
