package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"musuite/internal/rpc"
)

// GroupState is a leaf group's position in the drain state machine.
type GroupState int32

const (
	// GroupActive — the group is in the current snapshot and receives new
	// calls.
	GroupActive GroupState = iota
	// GroupDraining — the group has been removed from the current snapshot;
	// requests pinned to older snapshots may still complete calls against
	// it, but no new request routes to it.
	GroupDraining
	// GroupClosed — batchers flushed and connection pools shut down.
	GroupClosed
)

// String names the state for operator-facing views.
func (s GroupState) String() string {
	switch s {
	case GroupActive:
		return "active"
	case GroupDraining:
		return "draining"
	case GroupClosed:
		return "closed"
	}
	return "unknown"
}

// Group is one leaf shard's replica set.  Each replica is an independent
// connection pool to one leaf process serving the same shard data; the group
// routes each call to the replica with the fewest outstanding calls
// (join-the-shortest-queue), which steers traffic away from a replica that
// is slow or backed up.
//
// A Group is immutable after construction except for its state word and the
// round-robin cursor, so snapshots can share it freely.
type Group struct {
	addrs []string
	pools []*rpc.Pool
	// batchers, when cross-request batching is enabled, parallels pools:
	// batchers[i] coalesces calls bound for replica i into carrier RPCs.
	batchers []*rpc.Batcher
	// rr rotates the scan start so ties (the common idle case) spread
	// round-robin instead of pinning replica 0.
	rr    atomic.Uint32
	state atomic.Int32
	once  sync.Once
}

// NewGroup assembles a group over already-dialed replica pools.  batchers
// may be nil (no batching) or parallel to pools.  Exposed for tests and
// custom assemblies; Topology dials its own groups.
func NewGroup(addrs []string, pools []*rpc.Pool, batchers []*rpc.Batcher) *Group {
	return &Group{addrs: addrs, pools: pools, batchers: batchers}
}

// Size reports the replica count.
func (g *Group) Size() int { return len(g.pools) }

// Addrs lists the replica addresses.  The caller must not mutate it.
func (g *Group) Addrs() []string { return g.addrs }

// State reports the group's drain state.
func (g *Group) State() GroupState { return GroupState(g.state.Load()) }

// Batcher returns replica idx's batcher, or nil when batching is disabled.
func (g *Group) Batcher(idx int) *rpc.Batcher {
	if idx < len(g.batchers) {
		return g.batchers[idx]
	}
	return nil
}

// Outstanding reports the in-flight calls across every replica pool.
// Members still queued in a batcher are not counted — quiescence detection
// must flush the batchers first (see Topology.DrainGroup).
func (g *Group) Outstanding() int {
	n := 0
	for _, p := range g.pools {
		n += p.Outstanding()
	}
	return n
}

// Pick selects a replica by least-outstanding-calls, breaking ties
// round-robin.  exclude (-1 for none) skips a replica already carrying an
// attempt of the same call, so hedges and retries land elsewhere when the
// group has anywhere else to land.  Dead replicas are skipped while a live
// one exists; if every candidate is dead, Pick still scans round-robin over
// the non-excluded replicas — honoring health on every fallback step, so a
// replica that recovered between the scans is preferred over a corpse — and
// lets the pool's transparent redial take its shot.
func (g *Group) Pick(exclude int) (*rpc.Pool, int) {
	n := len(g.pools)
	if n == 1 {
		return g.pools[0], 0
	}
	start := int(g.rr.Add(1)) % n
	best, bestOut := -1, 0
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if idx == exclude {
			continue
		}
		p := g.pools[idx]
		if !p.Healthy() {
			continue
		}
		if out := p.Outstanding(); best < 0 || out < bestOut {
			best, bestOut = idx, out
		}
	}
	if best < 0 {
		// Every candidate was dead (or excluded).  Fall back round-robin
		// across the non-excluded replicas, still preferring any that has
		// come back healthy since the first scan.
		for i := 0; i < n; i++ {
			idx := (start + i) % n
			if idx == exclude {
				continue
			}
			if best < 0 {
				best = idx
			}
			if g.pools[idx].Healthy() {
				best = idx
				break
			}
		}
		if best < 0 {
			best = start // nothing but the excluded replica exists
		}
	}
	return g.pools[best], best
}

// closeBatchers flushes and shuts every replica's batcher (idempotent;
// Batcher.Close sends any still-queued members as a final carrier).
func (g *Group) closeBatchers() {
	for _, b := range g.batchers {
		b.Close()
	}
}

// awaitIdle polls until every replica pool has zero in-flight calls or the
// limit passes, reporting whether quiescence was reached.
func (g *Group) awaitIdle(limit time.Time) bool {
	for d := 50 * time.Microsecond; ; {
		if g.Outstanding() == 0 {
			return true
		}
		if !time.Now().Before(limit) {
			return false
		}
		time.Sleep(d)
		if d < 2*time.Millisecond {
			d *= 2
		}
	}
}

// Close shuts the group down exactly once: batchers flush their queued
// members first so nothing sits unsent when the pools beneath them close.
func (g *Group) Close() {
	g.once.Do(func() {
		g.state.Store(int32(GroupClosed))
		g.closeBatchers()
		for _, p := range g.pools {
			p.Close()
		}
	})
}
