package cluster

import (
	"math/rand"
	"testing"
)

func TestShardDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range []Router{Modulo{}, Jump{}} {
		if got := r.Shard(42, 0); got != -1 {
			t.Errorf("%s.Shard(n=0) = %d, want -1", r.Name(), got)
		}
		if got := r.Shard(42, -3); got != -1 {
			t.Errorf("%s.Shard(n<0) = %d, want -1", r.Name(), got)
		}
		for n := 1; n <= 16; n++ {
			for i := 0; i < 200; i++ {
				h := rng.Uint64()
				if got := r.Shard(h, n); got < 0 || got >= n {
					t.Fatalf("%s.Shard(%d, %d) = %d, out of [0,%d)", r.Name(), h, n, got, n)
				}
			}
		}
	}
}

// TestJumpMinimalMovement checks the defining property of jump consistent
// hashing: growing from n to n+1 shards moves only ~1/(n+1) of keys, and
// every moved key lands on the new highest shard.  (Modulo, by contrast,
// moves almost everything.)
func TestJumpMinimalMovement(t *testing.T) {
	const keys = 20000
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 8, 12} {
		moved := 0
		for i := 0; i < keys; i++ {
			h := rng.Uint64()
			before := Jump{}.Shard(h, n)
			after := Jump{}.Shard(h, n+1)
			if before != after {
				moved++
				if after != n {
					t.Fatalf("n=%d: moved key landed on shard %d, want new shard %d", n, after, n)
				}
			}
		}
		frac := float64(moved) / keys
		want := 1.0 / float64(n+1)
		if frac < want*0.7 || frac > want*1.3 {
			t.Errorf("n=%d→%d moved %.3f of keys, want ≈%.3f", n, n+1, frac, want)
		}
	}
}

// TestModuloMovesMostKeys documents why Jump exists: a modulo resize
// reshuffles the large majority of placements.
func TestModuloMovesMostKeys(t *testing.T) {
	const keys, n = 20000, 8
	rng := rand.New(rand.NewSource(3))
	moved := 0
	for i := 0; i < keys; i++ {
		h := rng.Uint64()
		if (Modulo{}).Shard(h, n) != (Modulo{}).Shard(h, n+1) {
			moved++
		}
	}
	if frac := float64(moved) / keys; frac < 0.5 {
		t.Errorf("modulo resize moved only %.3f of keys; expected a majority", frac)
	}
}

func TestParseRouting(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"", "modulo", true},
		{"modulo", "modulo", true},
		{"jump", "jump", true},
		{"consistent", "jump", true},
		{"rendezvous", "", false},
	}
	for _, c := range cases {
		r, err := ParseRouting(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseRouting(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && r.Name() != c.want {
			t.Errorf("ParseRouting(%q) = %s, want %s", c.in, r.Name(), c.want)
		}
	}
}
