package cluster

import "fmt"

// Router maps a key hash onto one of n shards.  Strategies differ in how
// placements move when n changes: Modulo reshuffles almost every key, Jump
// moves only the ~1/(n+1) of keys that must move — the property that keeps
// a key-addressed service's hit rate intact through a resize.
//
// Implementations must be stateless value types: a Router is embedded in
// every topology snapshot and consulted on the request hot path, so Shard
// must be allocation-free and safe for unlimited concurrent use.
type Router interface {
	// Shard maps hash onto [0, n).  n ≤ 0 returns -1.
	Shard(hash uint64, n int) int
	// Name identifies the strategy ("modulo", "jump") for flags and
	// operator-facing views.
	Name() string
}

// Modulo is the classic hash-mod-N placement every μSuite service shipped
// with: perfectly balanced, but a resize remaps nearly all keys.
type Modulo struct{}

// Shard maps hash onto [0, n) by remainder.
func (Modulo) Shard(hash uint64, n int) int {
	if n <= 0 {
		return -1
	}
	return int(hash % uint64(n))
}

// Name identifies the strategy.
func (Modulo) Name() string { return "modulo" }

// Jump is Lamping & Veach's jump consistent hash: O(ln n) time, zero state,
// and when the shard count grows from n to n+1 exactly the expected 1/(n+1)
// fraction of keys moves (all onto the new shard).  Shrinking by dropping
// the highest shard index is equally minimal, which is why DrainGroup pairs
// best with draining the last shard under this strategy.
type Jump struct{}

// Shard maps hash onto [0, n) with the jump consistent hash construction.
func (Jump) Shard(hash uint64, n int) int {
	if n <= 0 {
		return -1
	}
	key := hash
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Name identifies the strategy.
func (Jump) Name() string { return "jump" }

// ParseRouting resolves a -routing flag value to a strategy.  The empty
// string selects Modulo, the historical default.
func ParseRouting(name string) (Router, error) {
	switch name {
	case "", "modulo":
		return Modulo{}, nil
	case "jump", "consistent":
		return Jump{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing strategy %q (want modulo or jump)", name)
}
