package cluster

import (
	"strings"
	"testing"
	"time"
)

func TestAdminRoundTrip(t *testing.T) {
	addrs := startLeaves(t, 3)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}, {addrs[1]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	adm, bound, err := ServeAdmin(topo, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer adm.Close()
	cli, err := DialAdmin(bound)
	if err != nil {
		t.Fatalf("DialAdmin: %v", err)
	}
	defer cli.Close()

	v, err := cli.Topology()
	if err != nil {
		t.Fatalf("Topology: %v", err)
	}
	if v.Epoch != 1 || len(v.Groups) != 2 || v.Router != "modulo" {
		t.Fatalf("Topology = %+v, want epoch 1, 2 groups, modulo", v)
	}
	if v.Groups[0].Addrs[0] != addrs[0] || v.Groups[0].State != "active" {
		t.Fatalf("Groups[0] = %+v, want active %s", v.Groups[0], addrs[0])
	}

	shard, err := cli.Add([]string{addrs[2]})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if shard != 2 {
		t.Errorf("Add shard = %d, want 2", shard)
	}
	// Duplicate adds are rejected server-side and the error text survives
	// the wire round trip.
	if _, err := cli.Add([]string{addrs[2]}); err == nil ||
		!strings.Contains(err.Error(), "duplicate leaf address") {
		t.Errorf("Add(dup) = %v, want duplicate-address error", err)
	}

	if err := cli.Drain(shard, time.Second); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if err := cli.Remove(1); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := cli.Remove(0); err == nil ||
		!strings.Contains(err.Error(), "last leaf group") {
		t.Errorf("Remove(last) = %v, want last-group refusal", err)
	}

	v, err = cli.Topology()
	if err != nil {
		t.Fatalf("Topology after mutations: %v", err)
	}
	// Bootstrap + add + drain + remove = four publishes.
	if v.Epoch != 4 || len(v.Groups) != 1 {
		t.Fatalf("final view = %+v, want epoch 4 with 1 group", v)
	}
	if v.Groups[0].Addrs[0] != addrs[0] {
		t.Errorf("surviving group = %s, want %s", v.Groups[0].Addrs[0], addrs[0])
	}
}

func TestAdminViewCodecRoundTrip(t *testing.T) {
	in := View{
		Epoch:  7,
		Router: "jump",
		Groups: []GroupView{
			{Shard: 0, Addrs: []string{"a:1", "a:2"}, State: "active", Outstanding: 3},
			{Shard: 1, Addrs: []string{"b:1"}, State: "draining"},
		},
	}
	out, err := DecodeView(EncodeView(in))
	if err != nil {
		t.Fatalf("DecodeView: %v", err)
	}
	if out.Epoch != in.Epoch || out.Router != in.Router || len(out.Groups) != 2 {
		t.Fatalf("round trip = %+v, want %+v", out, in)
	}
	if out.Groups[0].Outstanding != 3 || out.Groups[0].Addrs[1] != "a:2" ||
		out.Groups[1].State != "draining" {
		t.Fatalf("round trip groups = %+v, want %+v", out.Groups, in.Groups)
	}
}

func TestAdminUnknownMethod(t *testing.T) {
	addrs := startLeaves(t, 1)
	topo := New(testConfig())
	defer topo.Close()
	if err := topo.Bootstrap([][]string{{addrs[0]}}); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	adm, bound, err := ServeAdmin(topo, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeAdmin: %v", err)
	}
	defer adm.Close()
	cli, err := DialAdmin(bound)
	if err != nil {
		t.Fatalf("DialAdmin: %v", err)
	}
	defer cli.Close()
	if _, err := cli.rpc.Call("admin.bogus", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown admin method") {
		t.Errorf("bogus method = %v, want unknown-method error", err)
	}
}
