package cluster

import (
	"errors"
	"fmt"
	"time"

	"musuite/internal/rpc"
	"musuite/internal/wire"
)

// Runtime admin surface.  Every service binary can expose its mid-tier's
// topology on a second listener (-admin): operators query the current view
// and add, drain, or remove leaf groups while the data plane keeps serving.
// The surface speaks the repo's own RPC substrate, so the same wire tooling
// (and the same client library) works against it.

// Admin method names on the wire.
const (
	// MethodTopology returns the current View.
	MethodTopology = "admin.topology"
	// MethodAdd dials a new leaf replica group and places it in service.
	MethodAdd = "admin.add"
	// MethodDrain gracefully removes a leaf group (see Topology.DrainGroup).
	MethodDrain = "admin.drain"
	// MethodRemove forcefully removes a leaf group.
	MethodRemove = "admin.remove"
)

// --- wire codecs ---

// EncodeAddRequest encodes an add request: the new group's replica
// addresses.
func EncodeAddRequest(addrs []string) []byte {
	size := 8
	for _, a := range addrs {
		size += len(a) + 4
	}
	e := wire.NewEncoder(size)
	e.Uvarint(uint64(len(addrs)))
	for _, a := range addrs {
		e.String(a)
	}
	return e.Bytes()
}

// DecodeAddRequest decodes an add request.
func DecodeAddRequest(b []byte) ([]string, error) {
	d := wire.NewDecoder(b)
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > wire.MaxSliceLen {
		return nil, wire.ErrTooLarge
	}
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = d.String()
	}
	return addrs, d.Err()
}

// EncodeShard encodes an add reply or a remove request: one shard index.
func EncodeShard(shard int) []byte {
	e := wire.NewEncoder(4)
	e.Uvarint(uint64(shard))
	return e.Bytes()
}

// DecodeShard decodes a shard index.
func DecodeShard(b []byte) (int, error) {
	d := wire.NewDecoder(b)
	shard := int(d.Uvarint())
	return shard, d.Err()
}

// EncodeDrainRequest encodes a drain request: shard index and deadline.
func EncodeDrainRequest(shard int, deadline time.Duration) []byte {
	e := wire.NewEncoder(12)
	e.Uvarint(uint64(shard))
	e.Uint64(uint64(deadline))
	return e.Bytes()
}

// DecodeDrainRequest decodes a drain request.
func DecodeDrainRequest(b []byte) (int, time.Duration, error) {
	d := wire.NewDecoder(b)
	shard := int(d.Uvarint())
	deadline := time.Duration(d.Uint64())
	return shard, deadline, d.Err()
}

// EncodeView encodes a topology view.
func EncodeView(v View) []byte {
	e := wire.NewEncoder(64)
	e.Uint64(v.Epoch)
	e.String(v.Router)
	e.Uvarint(uint64(len(v.Groups)))
	for _, g := range v.Groups {
		e.Uvarint(uint64(g.Shard))
		e.String(g.State)
		e.Uvarint(uint64(g.Outstanding))
		e.Uvarint(uint64(len(g.Addrs)))
		for _, a := range g.Addrs {
			e.String(a)
		}
	}
	return e.Bytes()
}

// DecodeView decodes a topology view.
func DecodeView(b []byte) (View, error) {
	d := wire.NewDecoder(b)
	v := View{Epoch: d.Uint64(), Router: d.String()}
	n := int(d.Uvarint())
	if err := d.Err(); err != nil {
		return View{}, err
	}
	if n < 0 || n > wire.MaxSliceLen {
		return View{}, wire.ErrTooLarge
	}
	v.Groups = make([]GroupView, n)
	for i := range v.Groups {
		g := &v.Groups[i]
		g.Shard = int(d.Uvarint())
		g.State = d.String()
		g.Outstanding = int(d.Uvarint())
		na := int(d.Uvarint())
		if err := d.Err(); err != nil {
			return View{}, err
		}
		if na < 0 || na > wire.MaxSliceLen {
			return View{}, wire.ErrTooLarge
		}
		g.Addrs = make([]string, na)
		for j := range g.Addrs {
			g.Addrs[j] = d.String()
		}
	}
	return v, d.Err()
}

// --- server ---

// AdminServer serves the topology admin methods on its own listener, off
// the data plane.
type AdminServer struct {
	topo   *Topology
	server *rpc.Server
}

// ServeAdmin starts an admin server for topo on addr (":0" picks a port)
// and returns it with the bound address.
func ServeAdmin(topo *Topology, addr string) (*AdminServer, string, error) {
	a := &AdminServer{topo: topo}
	a.server = rpc.NewServer(a.onRequest, nil)
	bound, err := a.server.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return a, bound, nil
}

// onRequest dispatches one admin RPC.  Drains block for up to their
// deadline, so they move off the connection's reader goroutine.
func (a *AdminServer) onRequest(req *rpc.Request) {
	switch req.Method {
	case MethodTopology:
		req.Reply(EncodeView(a.topo.View()))
	case MethodAdd:
		addrs, err := DecodeAddRequest(req.Payload)
		if err != nil {
			req.ReplyError(err)
			return
		}
		shard, err := a.topo.AddGroup(addrs)
		if err != nil {
			req.ReplyError(err)
			return
		}
		req.Reply(EncodeShard(shard))
	case MethodDrain:
		shard, deadline, err := DecodeDrainRequest(req.Payload)
		if err != nil {
			req.ReplyError(err)
			return
		}
		req.DetachPayload()
		go func() {
			if err := a.topo.DrainGroup(shard, deadline); err != nil {
				req.ReplyError(err)
				return
			}
			req.Reply(nil)
		}()
	case MethodRemove:
		shard, err := DecodeShard(req.Payload)
		if err != nil {
			req.ReplyError(err)
			return
		}
		if err := a.topo.RemoveGroup(shard); err != nil {
			req.ReplyError(err)
			return
		}
		req.Reply(nil)
	default:
		req.ReplyError(fmt.Errorf("cluster: unknown admin method %q", req.Method))
	}
}

// Close stops the admin listener (the topology is left untouched).
func (a *AdminServer) Close() {
	if a.server != nil {
		a.server.Close()
	}
}

// --- client ---

// AdminClient is an operator's typed handle on a mid-tier's admin listener.
type AdminClient struct {
	rpc *rpc.Client
}

// DialAdmin connects to an admin listener.
func DialAdmin(addr string) (*AdminClient, error) {
	c, err := rpc.Dial(addr, nil)
	if err != nil {
		return nil, err
	}
	return &AdminClient{rpc: c}, nil
}

// Topology fetches the current topology view.
func (c *AdminClient) Topology() (View, error) {
	reply, err := c.rpc.Call(MethodTopology, nil)
	if err != nil {
		return View{}, err
	}
	return DecodeView(reply)
}

// Add places a new leaf replica group in service, returning its shard index.
func (c *AdminClient) Add(addrs []string) (int, error) {
	if len(addrs) == 0 {
		return 0, errors.New("cluster: empty leaf replica group")
	}
	reply, err := c.rpc.Call(MethodAdd, EncodeAddRequest(addrs))
	if err != nil {
		return 0, err
	}
	return DecodeShard(reply)
}

// Drain gracefully removes shard's leaf group, waiting up to deadline for
// quiescence (≤ 0 selects the server's default).
func (c *AdminClient) Drain(shard int, deadline time.Duration) error {
	if deadline <= 0 {
		deadline = DefaultDrainDeadline
	}
	_, err := c.rpc.CallTimeout(MethodDrain, EncodeDrainRequest(shard, deadline), deadline+5*time.Second)
	return err
}

// Remove forcefully removes shard's leaf group.
func (c *AdminClient) Remove(shard int) error {
	_, err := c.rpc.Call(MethodRemove, EncodeShard(shard))
	return err
}

// Close releases the connection.
func (c *AdminClient) Close() error { return c.rpc.Close() }
