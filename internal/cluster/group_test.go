package cluster

import (
	"testing"

	"musuite/internal/rpc"
)

// dialGroupT dials one pool per address and assembles a Group.
func dialGroupT(t *testing.T, addrs []string) *Group {
	t.Helper()
	pools := make([]*rpc.Pool, len(addrs))
	for i, addr := range addrs {
		p, err := rpc.DialPool(addr, 1, nil)
		if err != nil {
			t.Fatalf("dialing %s: %v", addr, err)
		}
		pools[i] = p
	}
	g := NewGroup(addrs, pools, nil)
	t.Cleanup(g.Close)
	return g
}

// kill makes replica idx look dead to health checks without tearing down
// the whole group.
func kill(g *Group, idx int) { g.pools[idx].Close() }

func TestPickSkipsDeadReplica(t *testing.T) {
	addrs := startLeaves(t, 3)
	g := dialGroupT(t, addrs)
	kill(g, 1)

	for i := 0; i < 32; i++ {
		_, idx := g.Pick(-1)
		if idx == 1 {
			t.Fatalf("Pick returned dead replica 1 while live replicas exist")
		}
	}
}

func TestPickAllDeadStillReturnsReplica(t *testing.T) {
	addrs := startLeaves(t, 3)
	g := dialGroupT(t, addrs)
	for i := range g.pools {
		kill(g, i)
	}

	// Nothing is healthy: Pick must still hand back some replica so the
	// caller fails fast (and the pool's redial gets its shot) instead of
	// panicking or spinning.
	for i := 0; i < 32; i++ {
		pool, idx := g.Pick(-1)
		if idx < 0 || idx >= len(g.pools) || pool == nil {
			t.Fatalf("Pick(all dead) = (%v, %d), want a valid replica", pool, idx)
		}
	}
}

func TestPickAllButExcludedDeadAvoidsExcluded(t *testing.T) {
	addrs := startLeaves(t, 3)
	g := dialGroupT(t, addrs)
	kill(g, 0)
	kill(g, 1)

	// Replica 2 is the only healthy one but already carries an attempt of
	// this call; the fallback must land on a dead non-excluded replica —
	// not double up on the excluded one.
	for i := 0; i < 32; i++ {
		_, idx := g.Pick(2)
		if idx == 2 {
			t.Fatalf("Pick(exclude=2) returned the excluded replica")
		}
	}
}

func TestPickSingleReplicaIgnoresExclude(t *testing.T) {
	addrs := startLeaves(t, 1)
	g := dialGroupT(t, addrs)
	if _, idx := g.Pick(0); idx != 0 {
		t.Fatalf("Pick on a 1-replica group = %d, want 0 (nowhere else to go)", idx)
	}
}

func TestGroupStateString(t *testing.T) {
	cases := map[GroupState]string{
		GroupActive:    "active",
		GroupDraining:  "draining",
		GroupClosed:    "closed",
		GroupState(99): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("GroupState(%d).String() = %q, want %q", s, got, want)
		}
	}
}
