package lsh

import (
	"testing"
	"testing/quick"

	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

func buildClustered(t *testing.T, n, dim int) (*dataset.ImageCorpus, *Index) {
	t.Helper()
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: n, Dim: dim, Clusters: 10, Noise: 0.12, Seed: 42,
	})
	idx, err := New(Config{Dim: dim, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	const shards = 4
	for id, v := range corpus.Vectors {
		if err := idx.Insert(v, int32(id%shards), uint32(id)); err != nil {
			t.Fatal(err)
		}
	}
	return corpus, idx
}

func TestNewRejectsBadDim(t *testing.T) {
	if _, err := New(Config{Dim: 0}); err == nil {
		t.Fatal("dim=0 accepted")
	}
}

func TestInsertRejectsWrongDim(t *testing.T) {
	idx, _ := New(Config{Dim: 8})
	if err := idx.Insert(make(vec.Vector, 4), 0, 0); err == nil {
		t.Fatal("wrong-dim insert accepted")
	}
}

func TestLookupReturnsOnlyIndexedEntries(t *testing.T) {
	corpus, idx := buildClustered(t, 500, 24)
	if idx.Size() != 500 {
		t.Fatalf("size=%d", idx.Size())
	}
	for qi, q := range corpus.Queries(30, 1) {
		for _, e := range idx.Lookup(q) {
			if e.PointID >= 500 {
				t.Fatalf("query %d returned unindexed point %d", qi, e.PointID)
			}
			if int32(e.PointID%4) != e.Shard {
				t.Fatalf("entry shard mismatch: %+v", e)
			}
		}
	}
}

func TestLookupNoDuplicates(t *testing.T) {
	corpus, idx := buildClustered(t, 300, 16)
	for _, q := range corpus.Queries(20, 2) {
		seen := make(map[Entry]bool)
		for _, e := range idx.Lookup(q) {
			if seen[e] {
				t.Fatalf("duplicate entry %+v", e)
			}
			seen[e] = true
		}
	}
}

// TestRecallAtLeast93 is the paper's accuracy floor: the LSH candidate set,
// scored exactly, must contain the true nearest neighbor for ≥93% of
// queries at tuned parameters.
func TestRecallAtLeast93(t *testing.T) {
	corpus, idx := buildClustered(t, 2000, 32)
	queries := corpus.Queries(200, 5)
	hits := 0
	for _, q := range queries {
		truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
		for _, e := range idx.Lookup(q) {
			if e.PointID == truth {
				hits++
				break
			}
		}
	}
	recall := float64(hits) / float64(len(queries))
	if recall < 0.93 {
		t.Fatalf("recall@1 = %.3f < 0.93", recall)
	}
	t.Logf("recall@1 = %.3f over %d queries", recall, len(queries))
}

// TestPruning verifies the point of the index: candidates are far fewer than
// the corpus.
func TestPruning(t *testing.T) {
	corpus, idx := buildClustered(t, 2000, 32)
	total := 0
	queries := corpus.Queries(50, 6)
	for _, q := range queries {
		total += len(idx.Lookup(q))
	}
	avg := float64(total) / float64(len(queries))
	if avg > 2000*0.6 {
		t.Fatalf("average candidate set %.0f is not pruning (corpus 2000)", avg)
	}
	t.Logf("average candidates = %.0f of 2000", avg)
}

func TestMoreProbesRaiseRecall(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 1500, Dim: 32, Clusters: 12, Noise: 0.12, Seed: 5,
	})
	recall := func(probes int) float64 {
		idx, _ := New(Config{Dim: 32, Tables: 4, Bits: 14, Probes: probes, Seed: 9})
		for id, v := range corpus.Vectors {
			idx.Insert(v, 0, uint32(id))
		}
		queries := corpus.Queries(150, 11)
		hits := 0
		for _, q := range queries {
			truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
			for _, e := range idx.Lookup(q) {
				if e.PointID == truth {
					hits++
					break
				}
			}
		}
		return float64(hits) / float64(len(queries))
	}
	r0, r4 := recall(0), recall(4)
	if r4 < r0 {
		t.Fatalf("probes lowered recall: %.3f → %.3f", r0, r4)
	}
	t.Logf("recall probes=0: %.3f, probes=4: %.3f", r0, r4)
}

func TestLookupByShardPartition(t *testing.T) {
	corpus, idx := buildClustered(t, 400, 16)
	q := corpus.Queries(1, 3)[0]
	flat := idx.Lookup(q)
	grouped := idx.LookupByShard(q)
	count := 0
	for shard, ids := range grouped {
		count += len(ids)
		for _, id := range ids {
			if int32(id%4) != shard {
				t.Fatalf("point %d grouped under shard %d", id, shard)
			}
		}
	}
	if count != len(flat) {
		t.Fatalf("grouped %d, flat %d", count, len(flat))
	}
}

func TestStats(t *testing.T) {
	_, idx := buildClustered(t, 200, 16)
	s := idx.Stats()
	if s.Entries != 200 || s.Tables != 8 {
		t.Fatalf("stats=%+v", s)
	}
	if s.Buckets == 0 || s.MaxBucketSize == 0 {
		t.Fatalf("empty stats=%+v", s)
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{N: 100, Dim: 8, Seed: 3})
	build := func() *Index {
		idx, _ := New(Config{Dim: 8, Seed: 11})
		for id, v := range corpus.Vectors {
			idx.Insert(v, 0, uint32(id))
		}
		return idx
	}
	a, b := build(), build()
	q := corpus.Queries(1, 4)[0]
	ea, eb := a.Lookup(q), b.Lookup(q)
	if len(ea) != len(eb) {
		t.Fatalf("non-deterministic lookup: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

// Property: an inserted vector, looked up exactly, is always among its own
// candidates (a point collides with itself in every table).
func TestSelfLookupProperty(t *testing.T) {
	idx, _ := New(Config{Dim: 6, Tables: 3, Bits: 10, Seed: 13})
	nextID := uint32(0)
	f := func(raw [6]int8) bool {
		v := make(vec.Vector, 6)
		for i, r := range raw {
			v[i] = float32(r) / 16
		}
		id := nextID
		nextID++
		if err := idx.Insert(v, 1, id); err != nil {
			return false
		}
		for _, e := range idx.Lookup(v) {
			if e.PointID == id {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookup(b *testing.B) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 5000, Dim: 64, Clusters: 16, Seed: 21,
	})
	idx, _ := New(Config{Dim: 64, Seed: 22})
	for id, v := range corpus.Vectors {
		idx.Insert(v, int32(id%4), uint32(id))
	}
	q := corpus.Queries(1, 23)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup(q)
	}
}
