// Package lsh implements the multi-table, multi-probe locality-sensitive
// hashing index that HDSearch's mid-tier uses to prune the k-NN search
// space, in the style of the FLANN LSH index the paper extends.
//
// Following the paper, the index does not store feature vectors: each table
// entry references a {leaf shard, point ID} tuple, and the vectors
// themselves live in the leaves.  A query hashes into every table, gathers
// candidate tuples (optionally probing adjacent buckets, ordered by
// hyperplane margin), and returns the candidates grouped by shard so the
// mid-tier can fan one RPC out to each leaf.
package lsh

import (
	"fmt"
	"math/rand"
	"sort"

	"musuite/internal/vec"
)

// Entry references one indexed point: which leaf shard stores it and the
// point's ID within that shard's corpus.
type Entry struct {
	Shard   int32
	PointID uint32
}

// Config parameterizes an index.  More tables and probes raise recall at the
// cost of more candidates (larger leaf point lists); more bits shrink
// buckets.  The defaults are tuned so recall@1 ≥ 93% on clustered corpora,
// the paper's accuracy floor.
type Config struct {
	// Tables is the number of independent hash tables (default 8).
	Tables int
	// Bits is the signature width per table (default 12, max 30).
	Bits int
	// Probes is the number of extra adjacent buckets probed per table
	// (default 2).
	Probes int
	// Dim is the vector dimensionality (required).
	Dim int
	// Seed makes hyperplane generation deterministic.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Tables <= 0 {
		c.Tables = 8
	}
	if c.Bits <= 0 {
		c.Bits = 12
	}
	if c.Bits > 30 {
		c.Bits = 30
	}
	if c.Probes < 0 {
		c.Probes = 2
	}
	return c
}

// Index is a multi-table LSH index over {shard, point} entries.  Index
// construction is the paper's offline step; Lookup is the mid-tier's
// query-path operation.  An Index is safe for concurrent Lookup after all
// Insert calls complete.
type Index struct {
	cfg    Config
	planes [][]vec.Vector // [table][bit] hyperplane normals
	tables []map[uint32][]Entry
	size   int
}

// New creates an empty index.
func New(cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("lsh: dimension must be positive, got %d", cfg.Dim)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := &Index{
		cfg:    cfg,
		planes: make([][]vec.Vector, cfg.Tables),
		tables: make([]map[uint32][]Entry, cfg.Tables),
	}
	for t := 0; t < cfg.Tables; t++ {
		idx.planes[t] = make([]vec.Vector, cfg.Bits)
		for b := 0; b < cfg.Bits; b++ {
			plane := make(vec.Vector, cfg.Dim)
			for d := 0; d < cfg.Dim; d++ {
				plane[d] = float32(rng.NormFloat64())
			}
			idx.planes[t][b] = plane
		}
		idx.tables[t] = make(map[uint32][]Entry)
	}
	return idx, nil
}

// Size reports the number of indexed entries.
func (idx *Index) Size() int { return idx.size }

// Dim reports the indexed vector dimensionality.
func (idx *Index) Dim() int { return idx.cfg.Dim }

// Insert indexes v under the given {shard, point} reference.
func (idx *Index) Insert(v vec.Vector, shard int32, pointID uint32) error {
	if len(v) != idx.cfg.Dim {
		return fmt.Errorf("lsh: vector dim %d, index dim %d", len(v), idx.cfg.Dim)
	}
	e := Entry{Shard: shard, PointID: pointID}
	for t := range idx.tables {
		sig, _ := idx.signature(t, v)
		idx.tables[t][sig] = append(idx.tables[t][sig], e)
	}
	idx.size++
	return nil
}

// signature computes the table-t hash of v and the per-bit projection
// margins used for multi-probe ordering.
func (idx *Index) signature(t int, v vec.Vector) (uint32, []float32) {
	var sig uint32
	margins := make([]float32, idx.cfg.Bits)
	for b, plane := range idx.planes[t] {
		p := vec.Dot(plane, v)
		margins[b] = p
		if p >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig, margins
}

// Lookup returns the candidate entries for query q, deduplicated, gathered
// across all tables with multi-probe expansion.
func (idx *Index) Lookup(q vec.Vector) []Entry {
	seen := make(map[Entry]struct{})
	var out []Entry
	add := func(entries []Entry) {
		for _, e := range entries {
			if _, dup := seen[e]; !dup {
				seen[e] = struct{}{}
				out = append(out, e)
			}
		}
	}
	type probe struct {
		bit    int
		margin float32
	}
	for t := range idx.tables {
		sig, margins := idx.signature(t, q)
		add(idx.tables[t][sig])
		if idx.cfg.Probes == 0 {
			continue
		}
		// Multi-probe: flip the bits whose hyperplane the query is
		// closest to — those are the likeliest misclassifications.
		probes := make([]probe, len(margins))
		for b, m := range margins {
			if m < 0 {
				m = -m
			}
			probes[b] = probe{bit: b, margin: m}
		}
		sort.Slice(probes, func(i, j int) bool { return probes[i].margin < probes[j].margin })
		n := idx.cfg.Probes
		if n > len(probes) {
			n = len(probes)
		}
		for p := 0; p < n; p++ {
			add(idx.tables[t][sig^(1<<uint(probes[p].bit))])
		}
	}
	return out
}

// LookupByShard groups Lookup's candidates by shard, yielding the point-ID
// list each leaf RPC should carry.  Shards with no candidates are absent.
func (idx *Index) LookupByShard(q vec.Vector) map[int32][]uint32 {
	entries := idx.Lookup(q)
	out := make(map[int32][]uint32)
	for _, e := range entries {
		out[e.Shard] = append(out[e.Shard], e.PointID)
	}
	return out
}

// Stats summarizes index shape for capacity planning.
type Stats struct {
	Tables        int
	Entries       int
	Buckets       int
	MaxBucketSize int
}

// Stats reports index occupancy.
func (idx *Index) Stats() Stats {
	s := Stats{Tables: idx.cfg.Tables, Entries: idx.size}
	for _, tbl := range idx.tables {
		s.Buckets += len(tbl)
		for _, b := range tbl {
			if len(b) > s.MaxBucketSize {
				s.MaxBucketSize = len(b)
			}
		}
	}
	return s
}
