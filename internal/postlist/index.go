package postlist

import (
	"sort"
)

// Index is an inverted index over a document shard: for each term, the
// sorted posting list of local documents containing it.  Terms on the stop
// list — the most collection-frequent terms, which carry little selective
// value — are discarded during indexing, as §III-C describes.
type Index struct {
	postings map[int]*PostingList
	stop     map[int]bool
	docs     int
}

// IndexConfig parameterizes index construction.
type IndexConfig struct {
	// StopTerms is how many of the most frequent terms to stop-list
	// (0 disables stop listing).
	StopTerms int
	// SkipSize overrides the posting-list skip stride (default
	// DefaultSkipSize).
	SkipSize int
}

// BuildIndex indexes docs: docs[i] is the word-ID sequence of the document
// with local ID i.
func BuildIndex(docs [][]int, cfg IndexConfig) *Index {
	skipSize := cfg.SkipSize
	if skipSize <= 0 {
		skipSize = DefaultSkipSize
	}

	// Pass 1: collection frequency (total occurrences, per the paper's
	// stop-list definition).
	freq := make(map[int]int)
	for _, words := range docs {
		for _, w := range words {
			freq[w]++
		}
	}

	// Stop list: the StopTerms most frequent terms.
	stop := make(map[int]bool, cfg.StopTerms)
	if cfg.StopTerms > 0 && len(freq) > 0 {
		type tf struct{ term, n int }
		all := make([]tf, 0, len(freq))
		for term, n := range freq {
			all = append(all, tf{term, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].term < all[j].term
		})
		limit := cfg.StopTerms
		if limit > len(all) {
			limit = len(all)
		}
		for _, t := range all[:limit] {
			stop[t.term] = true
		}
	}

	// Pass 2: postings, skipping stop-listed terms.
	raw := make(map[int][]uint32)
	for docID, words := range docs {
		seen := make(map[int]bool, len(words))
		for _, w := range words {
			if stop[w] || seen[w] {
				continue
			}
			seen[w] = true
			raw[w] = append(raw[w], uint32(docID))
		}
	}
	idx := &Index{
		postings: make(map[int]*PostingList, len(raw)),
		stop:     stop,
		docs:     len(docs),
	}
	for term, ids := range raw {
		idx.postings[term] = NewWithSkipSize(ids, skipSize)
	}
	return idx
}

// Docs reports the number of indexed documents.
func (x *Index) Docs() int { return x.docs }

// Terms reports the number of indexed (non-stopped) terms.
func (x *Index) Terms() int { return len(x.postings) }

// IsStopWord reports whether term was stop-listed.
func (x *Index) IsStopWord(term int) bool { return x.stop[term] }

// Postings returns the posting list for term (nil if unindexed).
func (x *Index) Postings(term int) *PostingList { return x.postings[term] }

// Search returns the local doc IDs containing all non-stop query terms, via
// skip-accelerated intersection.  Stop-listed terms are dropped from the
// query (standard IR practice — they select nothing).  A term that is
// neither stopped nor indexed matches no documents, so the result is empty.
// A query of only stop words matches nothing.
func (x *Index) Search(terms []int) []uint32 {
	lists := make([]*PostingList, 0, len(terms))
	for _, t := range terms {
		if x.stop[t] {
			continue
		}
		p := x.postings[t]
		if p == nil {
			return nil
		}
		lists = append(lists, p)
	}
	if len(lists) == 0 {
		return nil
	}
	return Intersect(lists...).IDs()
}
