package postlist

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// randList builds a sorted, deduplicated random ID list whose density the
// caller controls through the ID range.
func randList(r *rand.Rand, n int, idRange uint32) []uint32 {
	if n > int(idRange) {
		n = int(idRange)
	}
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[uint32(r.Intn(int(idRange)))] = true
	}
	out := make([]uint32, 0, n)
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestIntersectBitsetEquivalence: the dense-range bitset kernel returns
// exactly what the linear reference intersection returns, dense or sparse,
// whether or not the heuristic would have picked it.
func TestIntersectBitsetEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Mix densities: sometimes dense (bitset-friendly), sometimes not.
		rangeA := uint32(1 + r.Intn(4096))
		rangeB := uint32(1 + r.Intn(4096))
		na := 1 + r.Intn(int(rangeA))
		nb := 1 + r.Intn(int(rangeB))
		a := New(randList(r, na, rangeA))
		b := New(randList(r, nb, rangeB))
		got := Intersect2Bitset(a, b).IDs()
		want := Intersect2(a, b).IDs()
		if len(got) == 0 && len(want) == 0 {
			return true
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestIntersectBitsetEmpty: degenerate shapes don't panic and return empty.
func TestIntersectBitsetEmpty(t *testing.T) {
	empty := New(nil)
	one := New([]uint32{5})
	far := New([]uint32{1000000})
	for _, pair := range [][2]*PostingList{{empty, one}, {one, empty}, {one, far}} {
		if got := Intersect2Bitset(pair[0], pair[1]); got.Len() != 0 {
			t.Fatalf("expected empty, got %v", got.IDs())
		}
	}
	if useBitset(empty, one) || useBitset(one, far) {
		t.Fatal("heuristic selected bitset for empty/disjoint lists")
	}
}

// TestIntersectBitsetHeuristic: dense overlaps take the bitset path, sparse
// huge spans don't.
func TestIntersectBitsetHeuristic(t *testing.T) {
	dense := New([]uint32{0, 1, 2, 3, 4, 5, 6, 7})
	if !useBitset(dense, dense) {
		t.Fatal("dense overlap rejected")
	}
	sparse := New([]uint32{0, 1 << 30})
	if useBitset(sparse, sparse) {
		t.Fatal("sparse span accepted")
	}
}

// TestMergeSortedEquivalence: the k-way merge union equals sort+dedup of the
// concatenation, for any number of segments including empty ones.
func TestMergeSortedEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nseg := r.Intn(6)
		segs := make([][]uint32, nseg)
		var all []uint32
		for s := range segs {
			if r.Intn(5) == 0 {
				continue // leave a nil segment
			}
			segs[s] = randList(r, 1+r.Intn(200), uint32(1+r.Intn(1000)))
			all = append(all, segs[s]...)
		}
		got := MergeSortedInto(nil, segs)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var want []uint32
		for i, id := range all {
			if i == 0 || id != want[len(want)-1] {
				want = append(want, id)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeSortedIntoReusesDst: the merge appends into the provided slice.
func TestMergeSortedIntoReusesDst(t *testing.T) {
	dst := make([]uint32, 0, 64)
	out := MergeSortedInto(dst, [][]uint32{{1, 3}, {2, 3, 4}})
	if !reflect.DeepEqual(out, []uint32{1, 2, 3, 4}) {
		t.Fatalf("got %v", out)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("merge did not reuse dst's backing array")
	}
}
