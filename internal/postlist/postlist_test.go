package postlist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"musuite/internal/dataset"
)

func ids(p *PostingList) []uint32 { return p.IDs() }

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// naiveIntersect is the reference semantics: set intersection, sorted.
func naiveIntersect(lists ...[]uint32) []uint32 {
	if len(lists) == 0 {
		return nil
	}
	count := make(map[uint32]int)
	for _, l := range lists {
		seen := make(map[uint32]bool)
		for _, id := range l {
			if !seen[id] {
				seen[id] = true
				count[id]++
			}
		}
	}
	var out []uint32
	for id, n := range count {
		if n == len(lists) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func naiveUnion(lists ...[]uint32) []uint32 {
	seen := make(map[uint32]bool)
	for _, l := range lists {
		for _, id := range l {
			seen[id] = true
		}
	}
	var out []uint32
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestNewSortsAndDedups(t *testing.T) {
	p := New([]uint32{5, 1, 3, 1, 5, 2})
	want := []uint32{1, 2, 3, 5}
	if !equalIDs(ids(p), want) {
		t.Fatalf("got %v", ids(p))
	}
	if p.Len() != 4 {
		t.Fatalf("len=%d", p.Len())
	}
}

func TestSkipsBuilt(t *testing.T) {
	raw := make([]uint32, 100)
	for i := range raw {
		raw[i] = uint32(i * 3)
	}
	p := NewWithSkipSize(raw, 10)
	if p.Skips() != 9 {
		t.Fatalf("skips=%d want 9", p.Skips())
	}
}

func TestContains(t *testing.T) {
	raw := make([]uint32, 200)
	for i := range raw {
		raw[i] = uint32(i * 2) // evens only
	}
	p := NewWithSkipSize(raw, 8)
	for i := uint32(0); i < 400; i++ {
		want := i%2 == 0
		if got := p.Contains(i); got != want {
			t.Fatalf("Contains(%d)=%v want %v", i, got, want)
		}
	}
	empty := New(nil)
	if empty.Contains(1) {
		t.Fatal("empty list contains")
	}
}

func TestIntersect2Basic(t *testing.T) {
	a := New([]uint32{1, 2, 3, 4, 5})
	b := New([]uint32{2, 4, 6})
	got := Intersect2(a, b)
	if !equalIDs(ids(got), []uint32{2, 4}) {
		t.Fatalf("got %v", ids(got))
	}
	// Disjoint.
	if got := Intersect2(New([]uint32{1, 3}), New([]uint32{2, 4})); got.Len() != 0 {
		t.Fatalf("disjoint intersect=%v", ids(got))
	}
	// Empty operand.
	if got := Intersect2(New(nil), b); got.Len() != 0 {
		t.Fatalf("empty intersect=%v", ids(got))
	}
}

func TestIntersectVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		mk := func(n, space int) []uint32 {
			out := make([]uint32, n)
			for i := range out {
				out[i] = uint32(rng.Intn(space))
			}
			return out
		}
		rawA, rawB := mk(rng.Intn(300), 500), mk(rng.Intn(300), 500)
		a := NewWithSkipSize(rawA, 2+rng.Intn(20))
		b := NewWithSkipSize(rawB, 2+rng.Intn(20))
		want := naiveIntersect(ids(a), ids(b))
		if got := Intersect2(a, b); !equalIDs(ids(got), want) {
			t.Fatalf("linear merge: got %v want %v", ids(got), want)
		}
		if got := Intersect2Skip(a, b); !equalIDs(ids(got), want) {
			t.Fatalf("skip merge: got %v want %v", ids(got), want)
		}
		if got := Intersect2Skip(b, a); !equalIDs(ids(got), want) {
			t.Fatalf("skip merge swapped: got %v want %v", ids(got), want)
		}
	}
}

func TestIntersectMultiWay(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(4)
		lists := make([]*PostingList, k)
		raws := make([][]uint32, k)
		for i := 0; i < k; i++ {
			n := rng.Intn(200)
			raw := make([]uint32, n)
			for j := range raw {
				raw[j] = uint32(rng.Intn(150))
			}
			raws[i] = raw
			lists[i] = New(raw)
		}
		want := naiveIntersect(raws...)
		got := Intersect(lists...)
		// naiveIntersect dedups per list; New also dedups.
		if !equalIDs(ids(got), want) {
			t.Fatalf("k=%d got %v want %v", k, ids(got), want)
		}
	}
}

func TestIntersectEdgeArities(t *testing.T) {
	if got := Intersect(); got.Len() != 0 {
		t.Fatalf("0-ary intersect=%v", ids(got))
	}
	one := New([]uint32{3, 1})
	got := Intersect(one)
	if !equalIDs(ids(got), []uint32{1, 3}) {
		t.Fatalf("1-ary intersect=%v", ids(got))
	}
	// Result must be a copy, not an alias.
	got.ids[0] = 99
	if one.ids[0] != 1 {
		t.Fatal("1-ary intersect aliases input")
	}
}

func TestUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(5)
		lists := make([]*PostingList, k)
		raws := make([][]uint32, k)
		for i := 0; i < k; i++ {
			n := rng.Intn(100)
			raw := make([]uint32, n)
			for j := range raw {
				raw[j] = uint32(rng.Intn(120))
			}
			raws[i] = raw
			lists[i] = New(raw)
		}
		want := naiveUnion(raws...)
		if got := Union(lists...); !equalIDs(ids(got), want) {
			t.Fatalf("union got %v want %v", ids(got), want)
		}
		if got := UnionIDs(raws...); !equalIDs(got, want) {
			t.Fatalf("unionIDs got %v want %v", got, want)
		}
	}
	if got := Union(); got.Len() != 0 {
		t.Fatal("0-ary union non-empty")
	}
}

// Property tests on random sets: intersection/union match set semantics,
// results are sorted and duplicate-free.
func TestQuickSetSemantics(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		a32 := make([]uint32, len(rawA))
		for i, v := range rawA {
			a32[i] = uint32(v % 300)
		}
		b32 := make([]uint32, len(rawB))
		for i, v := range rawB {
			b32[i] = uint32(v % 300)
		}
		a, b := New(a32), New(b32)
		inter := Intersect2Skip(a, b)
		uni := Union(a, b)
		if !equalIDs(ids(inter), naiveIntersect(a32, b32)) {
			return false
		}
		if !equalIDs(ids(uni), naiveUnion(a32, b32)) {
			return false
		}
		// Sorted, no duplicates.
		for i := 1; i < inter.Len(); i++ {
			if inter.ids[i] <= inter.ids[i-1] {
				return false
			}
		}
		// Intersection ⊆ union; both bounded by operands.
		for _, id := range ids(inter) {
			if !uni.Contains(id) || !a.Contains(id) || !b.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildIndexAndSearch(t *testing.T) {
	docs := [][]int{
		{1, 2, 3},    // doc 0
		{2, 3, 4},    // doc 1
		{3, 4, 5},    // doc 2
		{1, 3, 5, 1}, // doc 3 (dup word)
	}
	idx := BuildIndex(docs, IndexConfig{})
	if idx.Docs() != 4 {
		t.Fatalf("docs=%d", idx.Docs())
	}
	if got := idx.Search([]int{3}); !equalIDs(got, []uint32{0, 1, 2, 3}) {
		t.Fatalf("search(3)=%v", got)
	}
	if got := idx.Search([]int{2, 3}); !equalIDs(got, []uint32{0, 1}) {
		t.Fatalf("search(2,3)=%v", got)
	}
	if got := idx.Search([]int{1, 4}); len(got) != 0 {
		t.Fatalf("search(1,4)=%v", got)
	}
	if got := idx.Search([]int{99}); got != nil {
		t.Fatalf("search(unknown)=%v", got)
	}
	if got := idx.Search(nil); got != nil {
		t.Fatalf("search(empty)=%v", got)
	}
}

func TestStopListDiscardsTopTerms(t *testing.T) {
	// Term 0 appears in every doc and multiple times — highest collection
	// frequency — so StopTerms=1 must stop-list exactly it.
	docs := [][]int{
		{0, 0, 1, 2},
		{0, 2, 3},
		{0, 0, 0, 3},
	}
	idx := BuildIndex(docs, IndexConfig{StopTerms: 1})
	if !idx.IsStopWord(0) {
		t.Fatal("term 0 not stop-listed")
	}
	if idx.Postings(0) != nil {
		t.Fatal("stop word has postings")
	}
	// Stopped terms are dropped from queries: {0, 3} behaves as {3}.
	if got := idx.Search([]int{0, 3}); !equalIDs(got, []uint32{1, 2}) {
		t.Fatalf("search(stop,3)=%v", got)
	}
	// All-stop query matches nothing.
	if got := idx.Search([]int{0}); got != nil {
		t.Fatalf("search(stop)=%v", got)
	}
}

func TestIndexSearchMatchesNaiveOnCorpus(t *testing.T) {
	corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: 300, VocabSize: 800, MeanDocLen: 60, Seed: 4,
	})
	idx := BuildIndex(corpus.Docs, IndexConfig{StopTerms: 10})
	queries := corpus.Queries(100, 5, 5)
	for qi, q := range queries {
		// Reference: filter stop words, then scan documents.
		var live []int
		for _, term := range q {
			if !idx.IsStopWord(term) {
				live = append(live, term)
			}
		}
		var want []uint32
		if len(live) > 0 {
			for docID, words := range corpus.Docs {
				has := make(map[int]bool)
				for _, w := range words {
					has[w] = true
				}
				all := true
				for _, term := range live {
					if !has[term] {
						all = false
						break
					}
				}
				if all {
					want = append(want, uint32(docID))
				}
			}
		}
		got := idx.Search(q)
		if !equalIDs(got, want) {
			t.Fatalf("query %d (%v): got %v want %v", qi, q, got, want)
		}
	}
}

func BenchmarkIntersect2Linear(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(n int) *PostingList {
		raw := make([]uint32, n)
		for i := range raw {
			raw[i] = uint32(rng.Intn(n * 4))
		}
		return New(raw)
	}
	a, c := mk(10000), mk(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect2(a, c)
	}
}

func BenchmarkIntersect2SkipAsymmetric(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	small := make([]uint32, 100)
	for i := range small {
		small[i] = uint32(rng.Intn(400000))
	}
	big := make([]uint32, 100000)
	for i := range big {
		big[i] = uint32(rng.Intn(400000))
	}
	a, c := New(small), New(big)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Intersect2Skip(a, c)
	}
}

func BenchmarkIndexSearch(b *testing.B) {
	corpus := dataset.NewDocCorpus(dataset.DocCorpusConfig{
		Docs: 2000, VocabSize: 5000, MeanDocLen: 100, Seed: 7,
	})
	idx := BuildIndex(corpus.Docs, IndexConfig{StopTerms: 25})
	queries := corpus.Queries(256, 6, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(queries[i%len(queries)])
	}
}
