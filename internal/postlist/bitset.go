package postlist

import (
	"math/bits"
)

// Dense-range bitset intersection: when two lists overlap a doc-ID range
// that is small relative to their combined length (high selectivity — many
// hits per range word), materializing both lists as bitsets over the overlap
// range and AND-ing 64 documents per word beats galloping, which pays a
// branchy probe per document.  The heuristic and the kernel live here; the
// generic Intersect dispatches per pair.

// bitsetSpanFactor gates the bitset path: the overlap span (in documents)
// must be at most this multiple of the combined list length, so the bitsets
// stay dense enough that whole-word ANDs do useful work and the O(span/64)
// allocation + sweep is bounded by the work galloping would do anyway.
const bitsetSpanFactor = 16

// useBitset reports whether the dense-range kernel should intersect a and b.
func useBitset(a, b *PostingList) bool {
	if len(a.ids) == 0 || len(b.ids) == 0 {
		return false
	}
	lo := max32(a.ids[0], b.ids[0])
	hi := min32(a.ids[len(a.ids)-1], b.ids[len(b.ids)-1])
	if hi < lo {
		return false
	}
	span := uint64(hi-lo) + 1
	return span <= uint64(bitsetSpanFactor)*uint64(len(a.ids)+len(b.ids))
}

// Intersect2Bitset intersects two lists with the dense-range bitset kernel:
// each list's IDs inside the overlap range set bits in a bitset anchored at
// the range start, the bitsets are AND-ed word by word, and surviving bits
// are converted back to doc IDs with trailing-zero extraction.  The result
// is identical to Intersect2; only the cost shape differs.
func Intersect2Bitset(a, b *PostingList) *PostingList {
	if len(a.ids) == 0 || len(b.ids) == 0 {
		return fromSorted(nil, a.skipSize)
	}
	lo := max32(a.ids[0], b.ids[0])
	hi := min32(a.ids[len(a.ids)-1], b.ids[len(b.ids)-1])
	if hi < lo {
		return fromSorted(nil, a.skipSize)
	}
	words := (int(hi-lo) >> 6) + 1
	wa := make([]uint64, words)
	wb := make([]uint64, words)
	fillBits(wa, a.ids, lo, hi)
	fillBits(wb, b.ids, lo, hi)
	// AND in place and count survivors so the output allocates exactly once.
	n := 0
	for i := range wa {
		wa[i] &= wb[i]
		n += bits.OnesCount64(wa[i])
	}
	out := make([]uint32, 0, n)
	for i, w := range wa {
		base := lo + uint32(i<<6)
		for w != 0 {
			out = append(out, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return fromSorted(out, a.skipSize)
}

// fillBits sets the bit for every id in [lo, hi], bit index id−lo.
func fillBits(words []uint64, ids []uint32, lo, hi uint32) {
	// Skip the prefix below the overlap range with a binary-ish scan: lists
	// are sorted, so find the first in-range element linearly from whichever
	// end is cheaper is overkill — a simple scan with early exit suffices
	// because out-of-range prefixes/suffixes were already paid for in len().
	for _, id := range ids {
		if id < lo {
			continue
		}
		if id > hi {
			break
		}
		off := id - lo
		words[off>>6] |= 1 << (off & 63)
	}
}

// MergeSortedInto merges already-sorted, deduplicated segments into dst with
// a linear k-way merge, deduplicating across segments — the mid-tier union
// for leaf results, which arrive sorted, so re-sorting the concatenation
// (O(n log n)) is wasted work.  dst is appended to and returned.
func MergeSortedInto(dst []uint32, segs [][]uint32) []uint32 {
	// Cursor per segment; each step picks the minimal head.  For the small
	// k of a fan-out (leaf count) a linear min scan beats a heap.
	pos := make([]int, len(segs))
	for {
		best := -1
		var bestID uint32
		for s, seg := range segs {
			if pos[s] >= len(seg) {
				continue
			}
			if id := seg[pos[s]]; best == -1 || id < bestID {
				best, bestID = s, id
			}
		}
		if best == -1 {
			return dst
		}
		if len(dst) == 0 || dst[len(dst)-1] != bestID {
			dst = append(dst, bestID)
		}
		// Advance every segment sitting on bestID so duplicates collapse in
		// one step.
		for s, seg := range segs {
			if pos[s] < len(seg) && seg[pos[s]] == bestID {
				pos[s]++
			}
		}
	}
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
