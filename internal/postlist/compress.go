package postlist

import (
	"errors"
	"fmt"
)

// Posting lists compress extremely well as delta-encoded varints because
// doc IDs are sorted: gaps are small, and small numbers take one byte.
// §III-C notes the paper's posting lists "can be stored using different
// compression schemes" — this is the classic gap+varint member of that
// family, used on the leaf→mid-tier wire to shrink intersected lists.

// ErrCorruptPostings reports an undecodable compressed list.
var ErrCorruptPostings = errors.New("postlist: corrupt compressed postings")

// CompressIDs delta+varint encodes a sorted, duplicate-free ID list.
// Unsorted input is an error (the caller owns list discipline).
func CompressIDs(ids []uint32) ([]byte, error) {
	return CompressIDsInto(make([]byte, 0, len(ids)+4), ids)
}

// CompressIDsInto is CompressIDs appending to dst, so hot-path callers can
// reuse a scratch buffer across requests.
func CompressIDsInto(dst []byte, ids []uint32) ([]byte, error) {
	out := dst
	// Leading count makes the empty/garbage distinction unambiguous.
	out = appendUvarint(out, uint64(len(ids)))
	prev := uint32(0)
	for i, id := range ids {
		if i > 0 && id <= prev {
			return nil, fmt.Errorf("postlist: CompressIDs input unsorted at %d (%d after %d)", i, id, prev)
		}
		delta := uint64(id - prev)
		if i == 0 {
			delta = uint64(id)
		}
		out = appendUvarint(out, delta)
		prev = id
	}
	return out, nil
}

// DecompressIDs reverses CompressIDs.
func DecompressIDs(b []byte) ([]uint32, error) {
	return DecompressIDsInto(nil, b)
}

// DecompressIDsInto reverses CompressIDs, appending the IDs to dst so
// hot-path callers can reuse capacity; a decode error returns dst unchanged.
func DecompressIDsInto(dst []uint32, b []byte) ([]uint32, error) {
	n, rest, err := takeUvarint(b)
	if err != nil {
		return dst, err
	}
	if n > uint64(len(b))*5+1 {
		// A varint encodes at least... each ID takes ≥1 byte, so a
		// count beyond the remaining bytes is corruption.
		return dst, ErrCorruptPostings
	}
	out := dst
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var d uint64
		d, rest, err = takeUvarint(rest)
		if err != nil {
			return dst, err
		}
		var v uint64
		if i == 0 {
			v = d
		} else {
			v = prev + d
		}
		if v > 0xFFFFFFFF || (i > 0 && d == 0) {
			return dst, ErrCorruptPostings
		}
		out = append(out, uint32(v))
		prev = v
	}
	return out, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		if shift > 63 {
			return 0, nil, ErrCorruptPostings
		}
		v |= uint64(b[i]&0x7f) << shift
		if b[i] < 0x80 {
			return v, b[i+1:], nil
		}
		shift += 7
	}
	return 0, nil, ErrCorruptPostings
}
