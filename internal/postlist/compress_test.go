package postlist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompressRoundTrip(t *testing.T) {
	cases := [][]uint32{
		nil,
		{0},
		{0, 1, 2, 3},
		{5},
		{1, 1000, 1000000, 0xFFFFFFFF},
		{7, 8, 9, 4000000000},
	}
	for _, ids := range cases {
		enc, err := CompressIDs(ids)
		if err != nil {
			t.Fatalf("%v: %v", ids, err)
		}
		got, err := DecompressIDs(enc)
		if err != nil {
			t.Fatalf("%v: %v", ids, err)
		}
		if len(got) != len(ids) {
			t.Fatalf("%v → %v", ids, got)
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("%v → %v", ids, got)
			}
		}
	}
}

func TestCompressRejectsUnsorted(t *testing.T) {
	if _, err := CompressIDs([]uint32{3, 2}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := CompressIDs([]uint32{3, 3}); err == nil {
		t.Fatal("duplicate input accepted")
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	garbage := [][]byte{
		{},        // no count
		{0xFF},    // truncated varint
		{5, 1, 2}, // count 5 but 2 deltas
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // 70-bit varint
	}
	for i, g := range garbage {
		if _, err := DecompressIDs(g); err == nil {
			t.Fatalf("garbage %d accepted", i)
		}
	}
}

// TestCompressionRatio: dense sorted lists must compress far below the raw
// 4 bytes/ID — the reason the scheme exists.
func TestCompressionRatio(t *testing.T) {
	ids := make([]uint32, 10000)
	next := uint32(0)
	rng := rand.New(rand.NewSource(1))
	for i := range ids {
		next += uint32(1 + rng.Intn(16)) // small gaps, typical for common terms
		ids[i] = next
	}
	enc, err := CompressIDs(ids)
	if err != nil {
		t.Fatal(err)
	}
	raw := 4 * len(ids)
	if len(enc) >= raw/3 {
		t.Fatalf("compressed %d bytes vs raw %d — ratio too poor", len(enc), raw)
	}
	t.Logf("compressed %d → %d bytes (%.1fx)", raw, len(enc), float64(raw)/float64(len(enc)))
}

func TestQuickCompressRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		// Sort+dedup to satisfy the input contract.
		sort.Slice(raw, func(i, j int) bool { return raw[i] < raw[j] })
		ids := raw[:0]
		for i, v := range raw {
			if i == 0 || v != ids[len(ids)-1] {
				ids = append(ids, v)
			}
		}
		enc, err := CompressIDs(ids)
		if err != nil {
			return false
		}
		got, err := DecompressIDs(enc)
		if err != nil || len(got) != len(ids) {
			return false
		}
		for i := range ids {
			if got[i] != ids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecompressNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		_, _ = DecompressIDs(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
