// Package postlist implements the document-retrieval substrate of Set
// Algebra: sorted posting lists with skip pointers (Pugh-style skips over a
// sorted doc-ID array), an inverted index with collection-frequency stop
// listing, linear-merge and skip-accelerated intersection, and k-way union —
// the exact operations the paper's leaves and mid-tier perform.
package postlist

import (
	"sort"
)

// DefaultSkipSize is the skip interval; √n-ish skips are classical, but a
// fixed stride keeps construction O(n) and works well across list lengths.
const DefaultSkipSize = 16

// PostingList is the sorted list of document IDs containing one term, with
// skip pointers for sub-linear intersection.  For a term t this is the
// paper's tuple (St, Ct): St the skip sequence, Ct the documents between
// skips.
type PostingList struct {
	ids      []uint32
	skips    []int // indexes into ids at skipSize strides
	skipSize int
}

// New builds a posting list from doc IDs (any order, duplicates tolerated).
func New(ids []uint32) *PostingList {
	return NewWithSkipSize(ids, DefaultSkipSize)
}

// NewWithSkipSize builds a posting list with an explicit skip stride.
func NewWithSkipSize(ids []uint32, skipSize int) *PostingList {
	if skipSize < 2 {
		skipSize = 2
	}
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Dedup in place.
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	p := &PostingList{ids: out, skipSize: skipSize}
	for i := skipSize; i < len(out); i += skipSize {
		p.skips = append(p.skips, i)
	}
	return p
}

// Len reports the number of documents in the list.
func (p *PostingList) Len() int { return len(p.ids) }

// IDs returns the sorted document IDs.  The slice must not be modified.
func (p *PostingList) IDs() []uint32 { return p.ids }

// Skips reports the number of skip pointers (diagnostics).
func (p *PostingList) Skips() int { return len(p.skips) }

// Contains reports whether doc is in the list, using skips then a bounded
// scan.
func (p *PostingList) Contains(doc uint32) bool {
	lo, hi := 0, len(p.ids)
	// Narrow with skip pointers first.
	for _, s := range p.skips {
		if p.ids[s] <= doc {
			lo = s
		} else {
			hi = s
			break
		}
	}
	for i := lo; i < hi; i++ {
		if p.ids[i] == doc {
			return true
		}
		if p.ids[i] > doc {
			return false
		}
	}
	return false
}

// Intersect2 computes the intersection of two lists with the classical
// linear merge ("merge" step of merge sort), O(|a|+|b|) — the leaf's
// operation in the paper.
func Intersect2(a, b *PostingList) *PostingList {
	out := make([]uint32, 0, min(len(a.ids), len(b.ids)))
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] == b.ids[j]:
			out = append(out, a.ids[i])
			i++
			j++
		case a.ids[i] < b.ids[j]:
			i++
		default:
			j++
		}
	}
	return fromSorted(out, a.skipSize)
}

// Intersect2Skip intersects using skip pointers on the longer list: when the
// next skip target is still below the probe document, whole blocks are
// skipped.  Asymptotically better when |a| ≪ |b|.
func Intersect2Skip(a, b *PostingList) *PostingList {
	if len(a.ids) > len(b.ids) {
		a, b = b, a
	}
	out := make([]uint32, 0, len(a.ids))
	j := 0        // position in b
	nextSkip := 0 // index into b.skips
	for _, doc := range a.ids {
		// Fast-forward over skip blocks.
		for nextSkip < len(b.skips) && b.ids[b.skips[nextSkip]] <= doc {
			j = b.skips[nextSkip]
			nextSkip++
		}
		for j < len(b.ids) && b.ids[j] < doc {
			j++
		}
		if j < len(b.ids) && b.ids[j] == doc {
			out = append(out, doc)
		}
	}
	return fromSorted(out, a.skipSize)
}

// Intersect computes the intersection of any number of lists, shortest
// first so intermediate results shrink fastest.  Each pairwise step picks
// its kernel: the dense-range bitset when the lists' overlap span is small
// relative to their sizes (high selectivity), skip-accelerated galloping
// otherwise.  No lists yields an empty result; one list yields a copy.
func Intersect(lists ...*PostingList) *PostingList {
	if len(lists) == 0 {
		return fromSorted(nil, DefaultSkipSize)
	}
	ordered := make([]*PostingList, len(lists))
	copy(ordered, lists)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Len() < ordered[j].Len() })
	acc := fromSorted(append([]uint32(nil), ordered[0].ids...), ordered[0].skipSize)
	for _, l := range ordered[1:] {
		if acc.Len() == 0 {
			break
		}
		if useBitset(acc, l) {
			acc = Intersect2Bitset(acc, l)
		} else {
			acc = Intersect2Skip(acc, l)
		}
	}
	return acc
}

// Union computes the k-way union (the mid-tier's response-path merge across
// leaf results).
func Union(lists ...*PostingList) *PostingList {
	switch len(lists) {
	case 0:
		return fromSorted(nil, DefaultSkipSize)
	case 1:
		return fromSorted(append([]uint32(nil), lists[0].ids...), lists[0].skipSize)
	}
	// Lists are already sorted and deduplicated, so a linear k-way merge
	// does the union in O(total · k) comparisons with no re-sort.
	total := 0
	segs := make([][]uint32, len(lists))
	for i, l := range lists {
		total += l.Len()
		segs[i] = l.ids
	}
	out := MergeSortedInto(make([]uint32, 0, total), segs)
	return fromSorted(out, lists[0].skipSize)
}

// UnionIDs unions raw sorted-or-not ID slices — the convenient form for the
// mid-tier, which receives plain ID lists over RPC.
func UnionIDs(lists ...[]uint32) []uint32 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]uint32, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, id := range all {
		if i == 0 || id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

func fromSorted(sorted []uint32, skipSize int) *PostingList {
	p := &PostingList{ids: sorted, skipSize: skipSize}
	for i := skipSize; i < len(sorted); i += skipSize {
		p.skips = append(p.skips, i)
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
