// Package knn provides exact k-nearest-neighbor primitives: a brute-force
// linear scan (HDSearch's accuracy ground truth, per the paper), a top-k
// selection over candidate distance lists (the leaf and mid-tier merge
// steps), and the allknn-style neighborhood search Recommend's leaves use
// for collaborative filtering.
package knn

import (
	"container/heap"
	"sort"

	"musuite/internal/vec"
)

// Neighbor is one scored result: a point ID and its squared distance (or
// generic score, smaller = nearer).
type Neighbor struct {
	ID       uint32
	Distance float32
}

// nearer is the total order on neighbors: ascending distance, ties broken by
// ascending ID so results are deterministic.
func nearer(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ID < b.ID
}

// maxHeap keeps the k current-worst neighbors on top for O(n log k) select.
type maxHeap []Neighbor

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return nearer(h[j], h[i]) }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Neighbor)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Select returns the k nearest of the given scored candidates, sorted by
// ascending distance (ties broken by ID for determinism).
func Select(candidates []Neighbor, k int) []Neighbor {
	if k <= 0 {
		return nil
	}
	if len(candidates) <= k {
		out := make([]Neighbor, len(candidates))
		copy(out, candidates)
		sortNeighbors(out)
		return out
	}
	h := make(maxHeap, 0, k)
	for _, c := range candidates {
		if len(h) < k {
			heap.Push(&h, c)
		} else if nearer(c, h[0]) {
			h[0] = c
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	sortNeighbors(out)
	return out
}

func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Distance != ns[j].Distance {
			return ns[i].Distance < ns[j].Distance
		}
		return ns[i].ID < ns[j].ID
	})
}

// Merge combines per-shard sorted neighbor lists into the global top-k —
// the mid-tier's response-path merge in HDSearch.
func Merge(lists [][]Neighbor, k int) []Neighbor {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	all := make([]Neighbor, 0, total)
	for _, l := range lists {
		all = append(all, l...)
	}
	return Select(all, k)
}

// BruteForce scans every corpus vector and returns the exact top-k by
// squared Euclidean distance.  IDs index the corpus slice.
func BruteForce(query vec.Vector, corpus []vec.Vector, k int) []Neighbor {
	h := make(maxHeap, 0, k)
	for id, v := range corpus {
		c := Neighbor{ID: uint32(id), Distance: vec.SquaredEuclidean(query, v)}
		if len(h) < k {
			heap.Push(&h, c)
		} else if nearer(c, h[0]) {
			h[0] = c
			heap.Fix(&h, 0)
		}
	}
	out := []Neighbor(h)
	sortNeighbors(out)
	return out
}

// Subset computes distances from query to the corpus points named by ids
// and returns the k nearest — the HDSearch leaf's per-request computation
// (the point list arrives from the mid-tier's LSH lookup).
func Subset(query vec.Vector, corpus []vec.Vector, ids []uint32, k int) []Neighbor {
	cands := make([]Neighbor, 0, len(ids))
	for _, id := range ids {
		if int(id) >= len(corpus) {
			continue
		}
		cands = append(cands, Neighbor{ID: id, Distance: vec.SquaredEuclidean(query, corpus[int(id)])})
	}
	return Select(cands, k)
}

// Metric scores the similarity between two vectors for neighborhood search;
// smaller is nearer.  Metrics are defined over vec.Vector (float32) so
// neighborhood search shares the vec kernels instead of converting per
// point; callers with float64 data (e.g. trained latent-factor matrices)
// convert once at build time.
type Metric func(a, b vec.Vector) float32

// EuclideanMetric is squared Euclidean distance, delegating to the unrolled
// vec kernel (equal lengths required — the kernel panics on ragged input).
func EuclideanMetric(a, b vec.Vector) float32 {
	return vec.SquaredEuclidean(a, b)
}

// CosineMetric is 1 − cosine similarity, so smaller is nearer, matching
// allknn's cosine option.  Zero vectors score distance 1 (similarity 0).
func CosineMetric(a, b vec.Vector) float32 {
	na, nb := vec.Norm(a), vec.Norm(b)
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - vec.Dot(a, b)/(na*nb)
}

// AllKNN finds, for the single query row, the k nearest rows of points under
// metric, excluding any row index listed in exclude.  This is the reference
// for the neighborhood step of Recommend's user-based collaborative
// filtering: given a user's latent factors, find the most similar users (the
// kernel engine holds the tuned version).
func AllKNN(query vec.Vector, points []vec.Vector, k int, metric Metric, exclude map[int]bool) []Neighbor {
	cands := make([]Neighbor, 0, len(points))
	for i, p := range points {
		if exclude != nil && exclude[i] {
			continue
		}
		cands = append(cands, Neighbor{ID: uint32(i), Distance: metric(query, p)})
	}
	return Select(cands, k)
}
