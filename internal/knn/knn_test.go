package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"musuite/internal/vec"
)

func TestSelectBasics(t *testing.T) {
	cands := []Neighbor{{ID: 1, Distance: 5}, {ID: 2, Distance: 1}, {ID: 3, Distance: 3}, {ID: 4, Distance: 2}}
	got := Select(cands, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 4 {
		t.Fatalf("got %v", got)
	}
	if got := Select(cands, 0); got != nil {
		t.Fatalf("k=0 → %v", got)
	}
	if got := Select(nil, 3); len(got) != 0 {
		t.Fatalf("empty candidates → %v", got)
	}
	// k larger than candidates returns everything sorted.
	all := Select(cands, 10)
	if len(all) != 4 || all[0].ID != 2 || all[3].ID != 1 {
		t.Fatalf("got %v", all)
	}
}

func TestSelectTieBreaksByID(t *testing.T) {
	cands := []Neighbor{{ID: 9, Distance: 1}, {ID: 3, Distance: 1}, {ID: 7, Distance: 1}}
	got := Select(cands, 2)
	if got[0].ID != 3 || got[1].ID != 7 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

func TestSelectMatchesFullSort(t *testing.T) {
	f := func(raw []uint32, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		cands := make([]Neighbor, len(raw))
		for i, r := range raw {
			cands[i] = Neighbor{ID: uint32(i), Distance: float32(r % 1000)}
		}
		got := Select(cands, k)

		ref := make([]Neighbor, len(cands))
		copy(ref, cands)
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Distance != ref[j].Distance {
				return ref[i].Distance < ref[j].Distance
			}
			return ref[i].ID < ref[j].ID
		})
		if k > len(ref) {
			k = len(ref)
		}
		ref = ref[:k]
		if len(got) != len(ref) {
			return false
		}
		for i := range got {
			if got[i] != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForce(t *testing.T) {
	corpus := []vec.Vector{{0, 0}, {1, 0}, {0, 2}, {5, 5}}
	got := BruteForce(vec.Vector{0.1, 0}, corpus, 2)
	if len(got) != 2 || got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestSubsetRespectsIDListAndBounds(t *testing.T) {
	corpus := []vec.Vector{{0, 0}, {1, 0}, {0, 2}, {5, 5}}
	got := Subset(vec.Vector{0, 0}, corpus, []uint32{1, 3, 99}, 5)
	if len(got) != 2 {
		t.Fatalf("got %v (out-of-range ID not skipped?)", got)
	}
	if got[0].ID != 1 || got[1].ID != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMergeEqualsGlobalSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	corpus := make([]vec.Vector, 200)
	for i := range corpus {
		corpus[i] = vec.Vector{rng.Float32(), rng.Float32(), rng.Float32()}
	}
	q := vec.Vector{0.5, 0.5, 0.5}
	// Shard into 4 and take per-shard top-10, then merge.
	const k = 10
	var lists [][]Neighbor
	for s := 0; s < 4; s++ {
		var ids []uint32
		for id := s; id < len(corpus); id += 4 {
			ids = append(ids, uint32(id))
		}
		lists = append(lists, Subset(q, corpus, ids, k))
	}
	merged := Merge(lists, k)
	exact := BruteForce(q, corpus, k)
	if len(merged) != k {
		t.Fatalf("merged len=%d", len(merged))
	}
	for i := range exact {
		if merged[i] != exact[i] {
			t.Fatalf("merge differs from brute force at %d: %v vs %v", i, merged[i], exact[i])
		}
	}
}

func TestMetrics(t *testing.T) {
	a := vec.Vector{1, 0}
	b := vec.Vector{0, 1}
	if d := EuclideanMetric(a, b); d != 2 {
		t.Errorf("euclidean=%v", d)
	}
	if d := EuclideanMetric(a, a); d != 0 {
		t.Errorf("self euclidean=%v", d)
	}
	if d := CosineMetric(a, b); math.Abs(float64(d)-1) > 1e-6 {
		t.Errorf("orthogonal cosine metric=%v", d)
	}
	if d := CosineMetric(a, vec.Vector{2, 0}); math.Abs(float64(d)) > 1e-6 {
		t.Errorf("parallel cosine metric=%v", d)
	}
	if d := CosineMetric(a, vec.Vector{0, 0}); d != 1 {
		t.Errorf("zero-vector cosine metric=%v", d)
	}
}

func TestAllKNN(t *testing.T) {
	points := []vec.Vector{
		{0, 0},   // 0
		{0.1, 0}, // 1 nearest to 0
		{1, 1},   // 2
		{5, 5},   // 3
	}
	got := AllKNN(points[0], points, 2, EuclideanMetric, map[int]bool{0: true})
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("got %v", got)
	}
	// Without exclusion the query point itself wins at distance 0.
	got = AllKNN(points[0], points, 1, EuclideanMetric, nil)
	if got[0].ID != 0 {
		t.Fatalf("got %v", got)
	}
}

func BenchmarkBruteForce10K(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	corpus := make([]vec.Vector, 10000)
	for i := range corpus {
		v := make(vec.Vector, 64)
		for d := range v {
			v[d] = rng.Float32()
		}
		corpus[i] = v
	}
	q := corpus[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(q, corpus, 10)
	}
}

func BenchmarkSelect1K(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	cands := make([]Neighbor, 1000)
	for i := range cands {
		cands[i] = Neighbor{ID: uint32(i), Distance: rng.Float32()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(cands, 10)
	}
}
