package kmeans

import (
	"testing"

	"musuite/internal/dataset"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

func buildCorpusIndex(t *testing.T, n, dim, k int) (*dataset.ImageCorpus, *Index) {
	t.Helper()
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: n, Dim: dim, Clusters: 8, Noise: 0.1, Seed: 4,
	})
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{Shard: int32(i % 4), PointID: uint32(i)}
	}
	idx, err := Build(corpus.Vectors, refs, Config{K: k, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, idx
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Config{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Build([]vec.Vector{{1}}, make([]Ref, 2), Config{}); err == nil {
		t.Fatal("mismatched refs accepted")
	}
	if _, err := Build([]vec.Vector{{1, 2}, {1}}, make([]Ref, 2), Config{}); err == nil {
		t.Fatal("ragged dims accepted")
	}
}

func TestInertiaMonotone(t *testing.T) {
	_, idx := buildCorpusIndex(t, 1000, 16, 12)
	if len(idx.InertiaTrace) == 0 {
		t.Fatal("no inertia trace")
	}
	for i := 1; i < len(idx.InertiaTrace); i++ {
		if idx.InertiaTrace[i] > idx.InertiaTrace[i-1]*(1+1e-9) {
			t.Fatalf("inertia increased at sweep %d: %v → %v",
				i, idx.InertiaTrace[i-1], idx.InertiaTrace[i])
		}
	}
}

func TestAllPointsAssignedExactlyOnce(t *testing.T) {
	_, idx := buildCorpusIndex(t, 500, 12, 10)
	seen := make(map[int]bool)
	total := 0
	for c := 0; c < idx.K(); c++ {
		total += idx.ClusterSize(c)
		for _, i := range idx.members[c] {
			if seen[i] {
				t.Fatalf("point %d in two clusters", i)
			}
			seen[i] = true
		}
	}
	if total != idx.Size() {
		t.Fatalf("assigned %d of %d", total, idx.Size())
	}
}

// TestRecoverPlantedClusters: with K equal to the generating mixture size,
// most clusters should be dominated by a single planted component.
func TestRecoverPlantedClusters(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 1200, Dim: 16, Clusters: 6, Noise: 0.08, Seed: 6,
	})
	refs := make([]Ref, len(corpus.Vectors))
	for i := range refs {
		refs[i] = Ref{PointID: uint32(i)}
	}
	idx, err := Build(corpus.Vectors, refs, Config{K: 6, Iterations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pure, total := 0, 0
	for c := 0; c < idx.K(); c++ {
		if idx.ClusterSize(c) == 0 {
			continue
		}
		counts := make(map[int]int)
		for _, i := range idx.members[c] {
			counts[corpus.ClusterOf[i]]++
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		pure += max
		total += idx.ClusterSize(c)
	}
	purity := float64(pure) / float64(total)
	if purity < 0.8 {
		t.Fatalf("cluster purity %.3f", purity)
	}
	t.Logf("cluster purity %.3f", purity)
}

func TestExhaustiveProbesExact(t *testing.T) {
	corpus, idx := buildCorpusIndex(t, 600, 12, 10)
	for qi, q := range corpus.Queries(30, 8) {
		got := idx.Search(q, 5, idx.K())
		want := knn.BruteForce(q, corpus.Vectors, 5)
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i].Ref.PointID != want[i].ID {
				t.Fatalf("query %d rank %d: got %d want %d", qi, i, got[i].Ref.PointID, want[i].ID)
			}
		}
	}
}

func TestFewProbesHighRecall(t *testing.T) {
	corpus, idx := buildCorpusIndex(t, 2000, 24, 16)
	queries := corpus.Queries(120, 9)
	hits := 0
	for _, q := range queries {
		truth := knn.BruteForce(q, corpus.Vectors, 1)[0].ID
		for _, r := range idx.Search(q, 1, 3) {
			if r.Ref.PointID == truth {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(len(queries))
	if recall < 0.9 {
		t.Fatalf("recall@1 = %.3f with 3 of %d probes", recall, idx.K())
	}
	t.Logf("recall@1 = %.3f with 3/%d probes", recall, idx.K())
}

// TestTrainCentroidsReproducible: equal seeds over equal inputs must yield
// bit-identical centroids (and a different seed a different initialization),
// so IVF/PQ index builds reproduce exactly across runs.
func TestTrainCentroidsReproducible(t *testing.T) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 800, Dim: 16, Clusters: 8, Noise: 0.1, Seed: 21,
	})
	cfg := Config{K: 12, Iterations: 15, Seed: 99}
	a, traceA, err := TrainCentroids(corpus.Vectors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, traceB, err := TrainCentroids(corpus.Vectors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(traceA) != len(traceB) {
		t.Fatalf("shape mismatch: %d/%d centroids, %d/%d sweeps", len(a), len(b), len(traceA), len(traceB))
	}
	for c := range a {
		for d := range a[c] {
			if a[c][d] != b[c][d] {
				t.Fatalf("centroid %d dim %d differs across identically-seeded builds: %v vs %v",
					c, d, a[c][d], b[c][d])
			}
		}
	}
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("inertia trace differs at sweep %d: %v vs %v", i, traceA[i], traceB[i])
		}
	}
	cfg.Seed = 100
	c, _, err := TrainCentroids(corpus.Vectors, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for d := range a[i] {
			if a[i][d] != c[i][d] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical centroids (seed unused?)")
	}
}

func TestLookupByShardGrouping(t *testing.T) {
	corpus, idx := buildCorpusIndex(t, 400, 8, 8)
	q := corpus.Queries(1, 10)[0]
	grouped := idx.LookupByShard(q, 2)
	total := 0
	for shard, ids := range grouped {
		total += len(ids)
		for _, id := range ids {
			if int32(id%4) != shard {
				t.Fatalf("point %d grouped under shard %d", id, shard)
			}
		}
	}
	if total == 0 || total >= 400 {
		t.Fatalf("candidates=%d (no pruning?)", total)
	}
}

func TestDegenerateCorpora(t *testing.T) {
	// Identical points: must terminate and cluster trivially.
	points := make([]vec.Vector, 50)
	refs := make([]Ref, 50)
	for i := range points {
		points[i] = vec.Vector{7, 7}
		refs[i] = Ref{PointID: uint32(i)}
	}
	idx, err := Build(points, refs, Config{K: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Search(vec.Vector{7, 7}, 3, idx.K())
	if len(res) != 3 || res[0].Distance != 0 {
		t.Fatalf("degenerate search: %+v", res)
	}
	// K larger than corpus clamps.
	idx2, err := Build(points[:3], refs[:3], Config{K: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if idx2.K() > 3 {
		t.Fatalf("k=%d exceeds corpus", idx2.K())
	}
}

func BenchmarkKMeansSearch(b *testing.B) {
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: 5000, Dim: 64, Clusters: 16, Seed: 11,
	})
	refs := make([]Ref, 5000)
	for i := range refs {
		refs[i] = Ref{Shard: int32(i % 4), PointID: uint32(i)}
	}
	idx, err := Build(corpus.Vectors, refs, Config{Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	q := corpus.Queries(1, 13)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Search(q, 5, 4)
	}
}
