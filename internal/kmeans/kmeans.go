// Package kmeans implements Lloyd's k-means clustering and a cluster-based
// approximate k-NN index (inverted-file style): the "k-means clusters"
// member of the paper's indexing trio (LSH tables, kd-trees, k-means
// clusters).  A query probes its nearest centroids and scores only the
// points assigned to those clusters.
//
// TrainCentroids is the reusable trainer: the ann package's IVF coarse
// quantizer and per-subspace PQ codebooks train through it.  Training is
// deterministic from Config.Seed — same points, same config, same seed ⇒
// identical centroids — so index builds reproduce exactly across runs.
package kmeans

import (
	"fmt"
	"math/rand"
	"runtime"

	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

// Ref identifies an indexed point, mirroring lsh.Entry / kdtree.Ref.
type Ref struct {
	Shard   int32
	PointID uint32
}

// Config parameterizes clustering.
type Config struct {
	// K is the number of clusters (default √n, the classic IVF rule).
	K int
	// Iterations bounds Lloyd's sweeps (default 25).
	Iterations int
	// Seed makes k-means++ initialization — and therefore the whole
	// deterministic Lloyd's descent — reproducible.  Equal seeds over equal
	// inputs produce identical centroids.
	Seed int64
}

// Index is the trained cluster index.
type Index struct {
	points    []vec.Vector
	refs      []Ref
	centroids []vec.Vector
	members   [][]int // point indexes per cluster
	// InertiaTrace records the total within-cluster squared distance
	// after each sweep; Lloyd's algorithm never increases it.
	InertiaTrace []float64
}

// dist2 is the training-sweep distance: the norm trick over the kernel
// engine's dot product, so centroid assignment runs on the SIMD kernel when
// the CPU has one.  The clamp absorbs the small negative results
// cancellation can produce for near-coincident points.
func dist2(p vec.Vector, pn float32, c vec.Vector, cn float32) float32 {
	d := pn + cn - 2*kernel.Dot(p, c)
	if d < 0 {
		return 0
	}
	return d
}

// norms2 precomputes ‖v‖² for a vector set.
func norms2(vs []vec.Vector) []float32 {
	out := make([]float32, len(vs))
	for i, v := range vs {
		out[i] = kernel.Dot(v, v)
	}
	return out
}

// TrainCentroids runs k-means++ initialization followed by Lloyd's sweeps
// and returns the trained centroids plus the per-sweep inertia trace.  It is
// the shared trainer behind Build, the ann IVF coarse quantizer, and the ann
// PQ subspace codebooks.  The returned centroids are freshly allocated and
// do not alias points.
func TrainCentroids(points []vec.Vector, cfg Config) ([]vec.Vector, []float64, error) {
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("kmeans: empty corpus")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, nil, fmt.Errorf("kmeans: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	k := cfg.K
	if k <= 0 {
		k = isqrt(len(points))
	}
	if k > len(points) {
		k = len(points)
	}
	if k < 1 {
		k = 1
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 25
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pNorms := norms2(points)

	// k-means++ initialization: spread the seeds proportionally to
	// squared distance from the seeds chosen so far.
	centroids := make([]vec.Vector, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].Clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		last := centroids[len(centroids)-1]
		lastNorm := kernel.Dot(last, last)
		for i, p := range points {
			d := float64(dist2(p, pNorms[i], last, lastNorm))
			if len(centroids) == 1 || d < d2[i] {
				d2[i] = d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with a centroid.
			centroids = append(centroids, points[rng.Intn(len(points))].Clone())
			continue
		}
		r := rng.Float64() * total
		pick := 0
		for i := range points {
			r -= d2[i]
			if r <= 0 {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].Clone())
	}

	var inertiaTrace []float64
	assign := make([]int, len(points))
	dists := make([]float32, len(points))
	cNorms := make([]float32, k)
	for sweep := 0; sweep < iters; sweep++ {
		// Assignment step: parallel over points (each chunk writes only its
		// own assign/dists entries), then a serial deterministic inertia sum
		// so the trace — and every float that follows — is independent of
		// worker scheduling.
		for c, cent := range centroids {
			cNorms[c] = kernel.Dot(cent, cent)
		}
		kernel.ParallelFor(runtime.NumCPU(), len(points), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				p := points[i]
				best, bestD := 0, float32(0)
				for c, cent := range centroids {
					d := dist2(p, pNorms[i], cent, cNorms[c])
					if c == 0 || d < bestD {
						best, bestD = c, d
					}
				}
				assign[i] = best
				dists[i] = bestD
			}
		})
		inertia := 0.0
		for _, d := range dists {
			inertia += float64(d)
		}
		inertiaTrace = append(inertiaTrace, inertia)

		// Update step.
		counts := make([]int, k)
		sums := make([]vec.Vector, k)
		for c := range sums {
			sums[c] = make(vec.Vector, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				sums[c][d] += p[d]
			}
		}
		moved := false
		for c := range centroids {
			if counts[c] == 0 {
				continue // empty cluster keeps its centroid
			}
			inv := 1 / float32(counts[c])
			for d := 0; d < dim; d++ {
				nv := sums[c][d] * inv
				if nv != centroids[c][d] {
					centroids[c][d] = nv
					moved = true
				}
			}
		}
		if !moved {
			break
		}
	}
	return centroids, inertiaTrace, nil
}

// Build clusters the corpus and constructs the index.  points and refs are
// captured, not copied.
func Build(points []vec.Vector, refs []Ref, cfg Config) (*Index, error) {
	if len(points) != len(refs) {
		return nil, fmt.Errorf("kmeans: %d points but %d refs", len(points), len(refs))
	}
	centroids, trace, err := TrainCentroids(points, cfg)
	if err != nil {
		return nil, err
	}
	idx := &Index{points: points, refs: refs, centroids: centroids, InertiaTrace: trace}

	// Final assignment → member lists.
	idx.members = make([][]int, len(centroids))
	for i, p := range points {
		best, bestD := 0, float32(0)
		for c, cent := range idx.centroids {
			d := vec.SquaredEuclidean(p, cent)
			if c == 0 || d < bestD {
				best, bestD = c, d
			}
		}
		idx.members[best] = append(idx.members[best], i)
	}
	return idx, nil
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// K reports the cluster count.
func (x *Index) K() int { return len(x.centroids) }

// Dim reports the indexed vector dimensionality (0 for an empty index).
func (x *Index) Dim() int {
	if len(x.centroids) == 0 {
		return 0
	}
	return len(x.centroids[0])
}

// Size reports the number of indexed points.
func (x *Index) Size() int { return len(x.points) }

// Centroid returns cluster c's center (read-only).
func (x *Index) Centroid(c int) vec.Vector { return x.centroids[c] }

// ClusterSize reports cluster c's member count.
func (x *Index) ClusterSize(c int) int { return len(x.members[c]) }

// Result is one scored neighbor.
type Result struct {
	Ref      Ref
	Distance float32
}

// Search probes the `probes` nearest clusters and returns the k nearest
// points among their members (probes ≥ K scores everything → exact).
func (x *Index) Search(q vec.Vector, k, probes int) []Result {
	if probes <= 0 {
		probes = 1
	}
	if probes > len(x.centroids) {
		probes = len(x.centroids)
	}
	// Rank centroids by distance.
	cents := make([]knn.Neighbor, len(x.centroids))
	for c, cent := range x.centroids {
		cents[c] = knn.Neighbor{ID: uint32(c), Distance: vec.SquaredEuclidean(q, cent)}
	}
	nearest := knn.Select(cents, probes)

	var cands []knn.Neighbor
	for _, cn := range nearest {
		for _, i := range x.members[cn.ID] {
			cands = append(cands, knn.Neighbor{
				ID:       uint32(i),
				Distance: vec.SquaredEuclidean(q, x.points[i]),
			})
		}
	}
	top := knn.Select(cands, k)
	out := make([]Result, len(top))
	for i, n := range top {
		out[i] = Result{Ref: x.refs[n.ID], Distance: n.Distance}
	}
	return out
}

// LookupByShard returns the probed clusters' candidate point IDs grouped by
// shard — interchangeable with the LSH and kd-tree indexes in HDSearch.
func (x *Index) LookupByShard(q vec.Vector, probes int) map[int32][]uint32 {
	if probes <= 0 {
		probes = 1
	}
	if probes > len(x.centroids) {
		probes = len(x.centroids)
	}
	cents := make([]knn.Neighbor, len(x.centroids))
	for c, cent := range x.centroids {
		cents[c] = knn.Neighbor{ID: uint32(c), Distance: vec.SquaredEuclidean(q, cent)}
	}
	out := make(map[int32][]uint32)
	for _, cn := range knn.Select(cents, probes) {
		for _, i := range x.members[cn.ID] {
			r := x.refs[i]
			out[r.Shard] = append(out[r.Shard], r.PointID)
		}
	}
	return out
}
