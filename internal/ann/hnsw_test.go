package ann

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

// TestHNSWRecall: the graph traversal at the default efSearch must land well
// above the gate floor on a clustered corpus — the whole point of the index.
func TestHNSWRecall(t *testing.T) {
	corpus, store := clusteredStore(t, 8000, 32, 16, 51)
	h, err := BuildHNSW(store, Config{Kind: KindHNSW, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eng := kernel.Default()
	const k = 10
	hits, total := 0, 0
	for _, q := range corpus.Queries(50, 52) {
		got, err := h.Search(eng, q, k, 0, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Scan(store, q, k, nil)
		if err != nil {
			t.Fatal(err)
		}
		truth := make(map[uint32]bool, k)
		for _, n := range want {
			truth[n.ID] = true
		}
		for _, n := range got {
			if truth[n.ID] {
				hits++
			}
		}
		total += k
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("hnsw recall@10 = %.3f, want >= 0.95", recall)
	}
}

// TestHNSWDeterministicBuild: two parallel builds of the same spec must be
// structurally identical — the round-synchronized scheme's core promise.
// A different seed must produce a different graph (the RNG is live).
func TestHNSWDeterministicBuild(t *testing.T) {
	_, store := clusteredStore(t, 6000, 24, 12, 53)
	cfg := Config{Kind: KindHNSW, M: 12, EFConstruction: 80, Seed: 9}
	a, err := BuildHNSW(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildHNSW(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("two builds of the same spec produced different graphs")
	}
	cfg.Seed = 10
	c, err := BuildHNSW(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical graphs — level RNG not live")
	}
}

// TestHNSWSearchEdgeCases mirrors the IVF edge-case battery: empty index,
// k <= 0, dimension mismatch, k > n, tiny corpora.
func TestHNSWSearchEdgeCases(t *testing.T) {
	eng := kernel.Default()

	empty, err := kernel.BuildStore(nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := BuildHNSW(empty, Config{Kind: KindHNSW})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := h.Search(eng, []float32{1, 2}, 5, 0, 0, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty index: got %v, %v", got, err)
	}

	_, store := clusteredStore(t, 200, 16, 4, 55)
	h, err = BuildHNSW(store, Config{Kind: KindHNSW, M: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := h.Search(eng, make([]float32, 16), 0, 0, 0, nil); err != nil || len(got) != 0 {
		t.Fatalf("k=0: got %v, %v", got, err)
	}
	if _, err := h.Search(eng, make([]float32, 7), 3, 0, 0, nil); err != vec.ErrDimensionMismatch {
		t.Fatalf("dim mismatch: want ErrDimensionMismatch, got %v", err)
	}
	// k > n with an exhaustive beam must return every row.
	got, err := h.Search(eng, make([]float32, 16), 500, store.Len(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != store.Len() {
		t.Fatalf("k > n: got %d results, want %d", len(got), store.Len())
	}

	for _, n := range []int{1, 2, 3, 5} {
		rows := make([]vec.Vector, n)
		for i := range rows {
			rows[i] = vec.Vector{float32(i), float32(i * i)}
		}
		tiny, err := kernel.BuildStore(rows)
		if err != nil {
			t.Fatal(err)
		}
		h, err := BuildHNSW(tiny, Config{Kind: KindHNSW, M: 4, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Search(eng, vec.Vector{0, 0}, n, n, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d results", n, len(got))
		}
		if got[0].ID != 0 {
			t.Fatalf("n=%d: nearest to origin should be row 0, got %d", n, got[0].ID)
		}
	}
}

// TestHNSWExhaustiveBeamMatchesBruteForce is the testing/quick property the
// issue asks for: with efSearch = N over a single-layer graph (M large
// enough that the base layer stays connected at these sizes), beam search
// visits every reachable node and must match brute-force top-k exactly.
func TestHNSWExhaustiveBeamMatchesBruteForce(t *testing.T) {
	eng := kernel.Default()
	prop := func(seed int64, nRaw, dimRaw uint8) bool {
		n := 20 + int(nRaw)%180
		dim := 4 + int(dimRaw)%12
		rng := rand.New(rand.NewSource(seed))
		rows := make([]vec.Vector, n)
		for i := range rows {
			v := make(vec.Vector, dim)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			rows[i] = v
		}
		store, err := kernel.BuildStore(rows)
		if err != nil {
			return false
		}
		// M >= n collapses the level RNG's tower benefit and makes layer 0
		// near-complete, so ef = n is genuinely exhaustive.
		h, err := BuildHNSW(store, Config{Kind: KindHNSW, M: 16, EFConstruction: n, Seed: seed})
		if err != nil {
			return false
		}
		q := make([]float32, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		got, err := h.Search(eng, q, 5, n, 0, nil)
		if err != nil {
			return false
		}
		want, err := eng.Scan(store, q, 5, nil)
		if err != nil {
			return false
		}
		return sameNeighbors(got, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestHNSWConcurrentSearch: searches after Build are read-only — many
// goroutines sharing one index must agree with a serial reference.  Run
// under -race in the nightly battery.
func TestHNSWConcurrentSearch(t *testing.T) {
	corpus, store := clusteredStore(t, 4000, 24, 8, 57)
	h, err := BuildHNSW(store, Config{Kind: KindHNSW, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := kernel.Default()
	queries := corpus.Queries(32, 58)
	want := make([][]knn.Neighbor, len(queries))
	for i, q := range queries {
		if want[i], err = h.Search(eng, q, 10, 0, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				got, err := h.Search(eng, q, 10, 0, 0, nil)
				if err != nil {
					errs <- err
					return
				}
				if !sameNeighbors(got, want[i]) {
					t.Errorf("concurrent search diverged on query %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBuildKindDispatch: the Searcher factory must route kinds to their
// builders and reject unknown kinds.
func TestBuildKindDispatch(t *testing.T) {
	_, store := clusteredStore(t, 500, 16, 4, 59)
	s, err := BuildKind(store, Config{Kind: KindIVF, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*Index); !ok {
		t.Fatalf("KindIVF built %T", s)
	}
	s, err = BuildKind(store, Config{Kind: KindHNSW, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*HNSW); !ok {
		t.Fatalf("KindHNSW built %T", s)
	}
	if _, err := BuildKind(store, Config{Kind: Kind(99)}); err == nil {
		t.Fatal("unknown kind: want error")
	}
}

// TestIndexFingerprintStable: the IVF fingerprint must be reproducible per
// spec and sensitive to the seed, like the HNSW one — the shard-identity
// test in hdsearch leans on this.
func TestIndexFingerprintStable(t *testing.T) {
	_, store := clusteredStore(t, 1500, 16, 6, 61)
	for _, quant := range []Quant{QuantNone, QuantInt8, QuantPQ} {
		cfg := Config{NList: 12, Quant: quant, Seed: 7}
		a, err := Build(store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("quant %v: same spec, different fingerprints", quant)
		}
		cfg.Seed = 8
		c, err := Build(store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() == c.Fingerprint() {
			t.Fatalf("quant %v: different seeds, identical fingerprints", quant)
		}
	}
}
