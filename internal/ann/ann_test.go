package ann

import (
	"math"
	"testing"
	"testing/quick"

	"musuite/internal/dataset"
	"musuite/internal/kernel"
	"musuite/internal/knn"
	"musuite/internal/vec"
)

func clusteredStore(t testing.TB, n, dim, clusters int, seed int64) (*dataset.ImageCorpus, *kernel.Store) {
	t.Helper()
	corpus := dataset.NewImageCorpus(dataset.ImageCorpusConfig{
		N: n, Dim: dim, Clusters: clusters, Noise: 0.15, Seed: seed,
	})
	store, err := kernel.BuildStore(corpus.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	return corpus, store
}

func sameNeighbors(a, b []knn.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Distance != b[i].Distance {
			return false
		}
	}
	return true
}

// TestExhaustiveProbesExact: nprobe = NList over the plain IVF index must be
// bit-identical to the engine's brute-force scan — the index only routes,
// scoring and selection are the same kernels.
func TestExhaustiveProbesExact(t *testing.T) {
	corpus, store := clusteredStore(t, 3000, 24, 10, 31)
	x, err := Build(store, Config{NList: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := kernel.Default()
	for qi, q := range corpus.Queries(40, 32) {
		got, err := x.Search(eng, q, 10, x.NList(), 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Scan(store, q, 10, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameNeighbors(got, want) {
			t.Fatalf("query %d: exhaustive IVF differs from brute force:\n got %v\nwant %v", qi, got, want)
		}
	}
}

// TestCompressedExhaustiveFullRerank: with every cluster probed and the
// re-rank depth covering the whole corpus, the compressed paths must also
// match brute force exactly — compression then only reorders candidates
// before an all-covering exact pass.
func TestCompressedExhaustiveFullRerank(t *testing.T) {
	corpus, store := clusteredStore(t, 2000, 32, 8, 33)
	eng := kernel.Default()
	for _, quant := range []Quant{QuantInt8, QuantPQ} {
		x, err := Build(store, Config{NList: 16, Quant: quant, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range corpus.Queries(20, 34) {
			got, err := x.Search(eng, q, 10, x.NList(), store.Len(), nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := eng.Scan(store, q, 10, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameNeighbors(got, want) {
				t.Fatalf("%v query %d: exhaustive+full-rerank differs from brute force:\n got %v\nwant %v",
					quant, qi, got, want)
			}
		}
	}
}

// TestIVFRecall: on clustered data a handful of probes must recover nearly
// all true neighbors while scanning a fraction of the corpus.
func TestIVFRecall(t *testing.T) {
	corpus, store := clusteredStore(t, 8000, 32, 32, 35)
	eng := kernel.Default()
	for _, quant := range []Quant{QuantNone, QuantInt8, QuantPQ} {
		x, err := Build(store, Config{NList: 64, Quant: quant, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		queries := corpus.Queries(100, 36)
		hits, want := 0, 0
		for _, q := range queries {
			truth, err := eng.Scan(store, q, 10, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := x.Search(eng, q, 10, 8, 100, nil)
			if err != nil {
				t.Fatal(err)
			}
			in := make(map[uint32]bool, len(got))
			for _, n := range got {
				in[n.ID] = true
			}
			for _, n := range truth {
				want++
				if in[n.ID] {
					hits++
				}
			}
		}
		recall := float64(hits) / float64(want)
		if recall < 0.9 {
			t.Fatalf("%v recall@10 = %.3f with 8/%d probes", quant, recall, x.NList())
		}
		t.Logf("%v recall@10 = %.3f with 8/%d probes", quant, recall, x.NList())
	}
}

// TestInt8RoundTripBound: every dequantized element must be within half a
// quantization step (scale/2) of the original — the symmetric-rounding
// bound, checked as a quick property over random rows.
func TestInt8RoundTripBound(t *testing.T) {
	prop := func(raw []int16) bool {
		dim := 16
		v := make(vec.Vector, dim)
		for i := range v {
			if len(raw) > 0 {
				v[i] = float32(raw[i%len(raw)]) / 997
			}
		}
		store, err := kernel.BuildStore([]vec.Vector{v})
		if err != nil {
			return false
		}
		st := BuildInt8(store)
		dec := st.Decode(0, nil)
		bound := st.Scale(0)/2 + 1e-6
		for i := range v {
			if float32(math.Abs(float64(dec[i]-v[i]))) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPQADCProperties: (1) the ADC lookup-table distance equals the exact
// squared distance to the row's reconstruction (the subspaces partition the
// dimensions, so the identity is exact up to float tolerance); (2) by the
// triangle inequality, √ADC is within the row's reconstruction error of the
// true √distance.  Checked as a quick property over random queries.
func TestPQADCProperties(t *testing.T) {
	_, store := clusteredStore(t, 1000, 32, 8, 41)
	st, err := BuildPQ(store, PQConfig{M: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	recon := make([][]float32, store.Len())
	reconErr := make([]float64, store.Len())
	for i := range recon {
		recon[i] = st.Decode(i, nil)
		var e float64
		row := store.Row(i)
		for j := range row {
			d := float64(row[j] - recon[i][j])
			e += d * d
		}
		reconErr[i] = math.Sqrt(e)
	}
	prop := func(raw []int16, pick uint16) bool {
		q := make([]float32, store.Dim())
		for i := range q {
			if len(raw) > 0 {
				q[i] = float32(raw[i%len(raw)]) / 997
			}
		}
		i := int(pick) % store.Len()
		adc := float64(st.ADC(q, i))

		// (1) ADC ≡ reconstruction distance.
		var rd float64
		for j := range q {
			d := float64(q[j] - recon[i][j])
			rd += d * d
		}
		if math.Abs(adc-rd) > 1e-3*(1+rd) {
			t.Logf("row %d: adc %v vs reconstruction %v", i, adc, rd)
			return false
		}

		// (2) |√ADC − √exact| ≤ reconstruction error.
		var ed float64
		row := store.Row(i)
		for j := range q {
			d := float64(q[j] - row[j])
			ed += d * d
		}
		if math.Abs(math.Sqrt(adc)-math.Sqrt(ed)) > reconErr[i]+1e-3 {
			t.Logf("row %d: √adc %v vs √exact %v, recon err %v",
				i, math.Sqrt(adc), math.Sqrt(ed), reconErr[i])
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedMemoryFootprint: the int8 store must be under 1/3 and the
// PQ store under 1/4 of the float32 store — the compression the issue's
// acceptance bar demands.
func TestCompressedMemoryFootprint(t *testing.T) {
	_, store := clusteredStore(t, 4096, 64, 16, 43)
	full := store.Bytes()

	x8, err := Build(store, Config{Quant: QuantInt8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := x8.CompressedBytes(); got > full/3 {
		t.Fatalf("int8 store %d bytes, want ≤ %d (full %d)", got, full/3, full)
	}
	xpq, err := Build(store, Config{Quant: QuantPQ, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := xpq.CompressedBytes(); got > full/4 {
		t.Fatalf("pq store %d bytes, want ≤ %d (full %d)", got, full/4, full)
	}
	t.Logf("full %d B, int8 %d B (%.1f×), pq %d B (%.1f×)",
		full, x8.CompressedBytes(), float64(full)/float64(x8.CompressedBytes()),
		xpq.CompressedBytes(), float64(full)/float64(xpq.CompressedBytes()))
}

// TestBuildReproducible: equal seeds must reproduce the identical index —
// same inverted lists and same PQ codes — across builds.
func TestBuildReproducible(t *testing.T) {
	_, store := clusteredStore(t, 3000, 32, 12, 47)
	cfg := Config{NList: 24, Quant: QuantPQ, Seed: 6}
	a, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NList() != b.NList() {
		t.Fatalf("nlist %d vs %d", a.NList(), b.NList())
	}
	for c := range a.lists {
		if len(a.lists[c]) != len(b.lists[c]) {
			t.Fatalf("list %d: %d vs %d members", c, len(a.lists[c]), len(b.lists[c]))
		}
		for i := range a.lists[c] {
			if a.lists[c][i] != b.lists[c][i] {
				t.Fatalf("list %d member %d differs", c, i)
			}
		}
	}
	for i := range a.pq.codes {
		if a.pq.codes[i] != b.pq.codes[i] {
			t.Fatalf("pq code %d differs across identically-seeded builds", i)
		}
	}
}

// TestSearchEdgeCases: empty indexes, k bounds, and dimension mismatches
// must fail softly, matching the engine's contracts.
func TestSearchEdgeCases(t *testing.T) {
	eng := kernel.Default()

	empty, err := Build(&kernel.Store{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := empty.Search(eng, []float32{1, 2}, 5, 0, 0, nil); err != nil || len(res) != 0 {
		t.Fatalf("empty index: %v, %v", res, err)
	}

	corpus, store := clusteredStore(t, 200, 8, 4, 53)
	x, err := Build(store, Config{NList: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q := corpus.Queries(1, 54)[0]
	if _, err := x.Search(eng, q[:4], 5, 0, 0, nil); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if res, err := x.Search(eng, q, 0, 0, 0, nil); err != nil || len(res) != 0 {
		t.Fatalf("k=0: %v, %v", res, err)
	}
	res, err := x.Search(eng, q, 500, x.NList(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != store.Len() {
		t.Fatalf("k>n returned %d of %d", len(res), store.Len())
	}

	if _, err := Build(store, Config{Quant: QuantPQ, PQM: 3, Seed: 8}); err == nil {
		t.Fatal("pq m=3 over dim=8 accepted")
	}
}

// TestTinyCorpus: stores smaller than the default cluster count must still
// build and search exactly.
func TestTinyCorpus(t *testing.T) {
	points := []vec.Vector{{1, 2}, {3, 4}, {5, 6}}
	store, err := kernel.BuildStore(points)
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(store, Config{NList: 10, Quant: QuantInt8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := x.Search(kernel.Default(), []float32{3, 4}, 2, x.NList(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 1 {
		t.Fatalf("tiny corpus search: %+v", res)
	}
}
