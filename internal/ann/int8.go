package ann

import (
	"math"

	"musuite/internal/kernel"
	"musuite/internal/knn"
)

// Int8Store is the scalar-quantized mirror of a kernel.Store: each row is
// quantized symmetrically to int8 with its own max-abs scale, cutting the
// row block from 4 bytes to 1 byte per element (~3.6× smaller end to end
// with the per-row scale and norm riding along).  Scoring dequantizes on
// the fly — distance = ‖q‖² + ‖roŵ‖² − 2·s·(q · codes) — so the approximate
// pass streams a quarter of the memory the float32 scan would.
type Int8Store struct {
	codes []int8    // n×dim quantized rows
	scale []float32 // per-row dequantization scale
	norms []float32 // per-row ‖dequantized row‖²
	n     int
	dim   int
}

// BuildInt8 quantizes every store row (parallel over rows; the result is
// deterministic because each row's quantization depends only on that row).
func BuildInt8(s *kernel.Store) *Int8Store {
	n, dim := s.Len(), s.Dim()
	st := &Int8Store{
		codes: make([]int8, n*dim),
		scale: make([]float32, n),
		norms: make([]float32, n),
		n:     n,
		dim:   dim,
	}
	kernel.ParallelFor(kernel.Default().Parallelism(), n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := s.Row(i)
			var maxAbs float32
			for _, v := range row {
				if a := float32(math.Abs(float64(v))); a > maxAbs {
					maxAbs = a
				}
			}
			sc := maxAbs / 127
			if sc == 0 {
				sc = 1 // all-zero row quantizes to all-zero codes
			}
			inv := 1 / sc
			code := st.codes[i*dim : (i+1)*dim]
			var nrm float32
			for j, v := range row {
				q := math.Round(float64(v * inv))
				if q > 127 {
					q = 127
				} else if q < -127 {
					q = -127
				}
				code[j] = int8(q)
				dq := sc * float32(code[j])
				nrm += dq * dq
			}
			st.scale[i] = sc
			st.norms[i] = nrm
		}
	})
	return st
}

// Len reports the number of quantized rows.
func (st *Int8Store) Len() int { return st.n }

// Dim reports the row dimensionality.
func (st *Int8Store) Dim() int { return st.dim }

// Bytes reports the resident size: 1-byte codes plus the per-row scale and
// norm.
func (st *Int8Store) Bytes() int {
	return len(st.codes) + 4*(len(st.scale)+len(st.norms))
}

// Decode appends row i's dequantized elements to dst.  Each element is
// within scale/2 of the original (the symmetric rounding bound) — the
// round-trip property the tests assert.
func (st *Int8Store) Decode(i int, dst []float32) []float32 {
	sc := st.scale[i]
	for _, c := range st.codes[i*st.dim : (i+1)*st.dim] {
		dst = append(dst, sc*float32(c))
	}
	return dst
}

// Scale returns row i's dequantization scale (the per-element round-trip
// error bound is scale/2).
func (st *Int8Store) Scale(i int) float32 { return st.scale[i] }

// dist2 is the approximate squared distance between the query and the
// dequantized row, via the norm trick on the mixed f32×i8 dot product.
func (st *Int8Store) dist2(q []float32, qn float32, i int) float32 {
	d := qn + st.norms[i] - 2*st.scale[i]*dotF32I8(q, st.codes[i*st.dim:(i+1)*st.dim])
	if d < 0 {
		return 0
	}
	return d
}

// dotF32I8 is the mixed-precision inner loop: the query stays float32, the
// row dequantizes lane by lane.  4-way unrolled — the win here is memory
// bandwidth (4× fewer row bytes), not FLOPs.
func dotF32I8(q []float32, c []int8) float32 {
	n := len(q)
	c = c[:n]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += q[i] * float32(c[i])
		s1 += q[i+1] * float32(c[i+1])
		s2 += q[i+2] * float32(c[i+2])
		s3 += q[i+3] * float32(c[i+3])
	}
	for ; i < n; i++ {
		s0 += q[i] * float32(c[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// scanSubset scores the candidate rows on the quantized codes and returns
// the r best (ascending approximate distance) — the approximate pass the
// exact re-rank then corrects.
func (st *Int8Store) scanSubset(par int, q []float32, ids []uint32, r int, sc *searchScratch) []knn.Neighbor {
	qn := kernel.Dot(q, q)
	heaps := sc.scanHeaps(par, r)
	kernel.ParallelFor(par, len(ids), func(w, lo, hi int) {
		top := &heaps[w]
		thr := top.Threshold()
		for _, id := range ids[lo:hi] {
			if int(id) >= st.n {
				continue
			}
			d := st.dist2(q, qn, int(id))
			if d <= thr {
				top.Consider(id, d)
				thr = top.Threshold()
			}
		}
	})
	return mergeHeapsSorted(heaps, sc.approx[:0])
}
